package pipeline

// storeSets is a simplified Store Sets memory-dependence predictor
// (Chrysos & Emer, ISCA 1998), the structure gem5's O3 core uses to stop
// loads from repeatedly speculating past stores they have conflicted with
// before. It is an ABLATION feature here (Core.StoreSets, default off):
//
//   - off reproduces the paper's evaluation machine, where load speculation
//     is unconditional and memory-order violations squash;
//   - on demonstrates two things worth measuring: the violation-recovery
//     cost disappears from violation-heavy code, and the naive Spectre V4
//     PoC stops working after its first training round (the load is made
//     to wait), which is why real V4 attacks must defeat the predictor too.
//
// Implementation: a PC-indexed store-set ID table (SSIT). When a store
// exposes a violation, the load PC and store PC are merged into one set.
// A load whose PC has a set ID is not eligible to issue while any OLDER
// store in the store queue with the same set ID has not yet issued.
type storeSets struct {
	ssit   []uint16 // (pc>>3) & mask -> set ID; 0 means "no set"
	mask   uint64
	nextID uint16
	// Merges counts violation-driven set assignments; Stalls counts
	// eligibility denials (diagnostics).
	Merges uint64
	Stalls uint64
}

// newStoreSets builds an SSIT with entries slots (power of two).
func newStoreSets(entries int) *storeSets {
	if entries&(entries-1) != 0 || entries <= 0 {
		panic("pipeline: store-set entries must be a power of two")
	}
	return &storeSets{ssit: make([]uint16, entries), mask: uint64(entries - 1), nextID: 1}
}

func (ss *storeSets) index(pc uint64) uint64 { return (pc >> 3) & ss.mask }

// id returns the store-set ID for pc (0 = none).
func (ss *storeSets) id(pc uint64) uint16 { return ss.ssit[ss.index(pc)] }

// merge records a violation between a load and a store, placing both PCs
// in the same set (allocating one if neither has one).
func (ss *storeSets) merge(loadPC, storePC uint64) {
	li, si := ss.index(loadPC), ss.index(storePC)
	switch {
	case ss.ssit[li] != 0:
		ss.ssit[si] = ss.ssit[li]
	case ss.ssit[si] != 0:
		ss.ssit[li] = ss.ssit[si]
	default:
		ss.ssit[li] = ss.nextID
		ss.ssit[si] = ss.nextID
		ss.nextID++
		if ss.nextID == 0 {
			ss.nextID = 1
		}
	}
	ss.Merges++
}

// loadMustWait reports whether the load (by PC and age) must hold its issue
// because an older same-set store has not resolved its address yet.
func (c *CPU) loadMustWait(u *uop) bool {
	if c.storeSets == nil {
		return false
	}
	id := c.storeSets.id(u.pc)
	if id == 0 {
		return false
	}
	for _, st := range c.stq {
		if st == nil || st.seq >= u.seq || st.addrReady {
			continue
		}
		if c.storeSets.id(st.pc) == id {
			// Count one stall per load per cycle, however many select
			// passes re-examine it, so the counter reads as deferred
			// load-cycles rather than select-loop iterations.
			if u.ssStallCycle != c.cycle {
				u.ssStallCycle = c.cycle
				c.storeSets.Stalls++
			}
			return true
		}
	}
	return false
}
