package exp

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"conspec/internal/attack"
	"conspec/internal/config"
	"conspec/internal/core"
	"conspec/internal/hw"
	"conspec/internal/mem"
	"conspec/internal/pipeline"
	"conspec/internal/workload"
)

// Table6Row is one benchmark's overheads on one sensitivity core.
type Table6Row struct {
	Benchmark string
	Baseline  float64
	CacheHit  float64
	TPBuf     float64
}

// Table6Core is Table VI for one core configuration.
type Table6Core struct {
	Core string
	Rows []Table6Row
	Avg  Table6Row
}

// Table6 regenerates Table VI: the three defense mechanisms on the
// A57-like, I7-like and Xeon-like cores. Each core's evaluation shares the
// engine cache, so a repeated core/spec combination simulates nothing new.
func (r *Runner) Table6(ctx context.Context, spec RunSpec, names []string) ([]Table6Core, error) {
	var out []Table6Core
	for _, cfg := range config.SensitivityCores() {
		s := spec
		s.Core = cfg
		ev, err := r.evaluation(ctx, SuiteTable6, s, names)
		if err != nil {
			return nil, err
		}
		tc := Table6Core{Core: cfg.Name}
		for _, b := range ev.Benches {
			tc.Rows = append(tc.Rows, Table6Row{
				Benchmark: b.Name,
				Baseline:  b.Overhead(core.Baseline),
				CacheHit:  b.Overhead(core.CacheHit),
				TPBuf:     b.Overhead(core.CacheHitTPBuf),
			})
		}
		tc.Avg = Table6Row{
			Benchmark: "Average",
			Baseline:  ev.AverageOverhead(core.Baseline),
			CacheHit:  ev.AverageOverhead(core.CacheHit),
			TPBuf:     ev.AverageOverhead(core.CacheHitTPBuf),
		}
		out = append(out, tc)
	}
	return out, nil
}

// Table6Text renders the Table VI results with the paper's averages.
func Table6Text(cores []Table6Core) string {
	var sb strings.Builder
	paperAvg := map[string][3]string{
		"A57-like":  {"41.1%", "11.0%", "6.0%"},
		"I7-like":   {"46.3%", "15.1%", "9.0%"},
		"Xeon-like": {"51.4%", "15.9%", "9.6%"},
	}
	for _, tc := range cores {
		fmt.Fprintf(&sb, "== %s ==\n", tc.Core)
		tw := newTable(&sb)
		tw.row("Benchmark", "Baseline", "Cache-hit", "CH+TPBuf")
		tw.sep()
		pct := func(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
		for _, r := range tc.Rows {
			tw.row(r.Benchmark, pct(r.Baseline), pct(r.CacheHit), pct(r.TPBuf))
		}
		tw.sep()
		tw.row("Average", pct(tc.Avg.Baseline), pct(tc.Avg.CacheHit), pct(tc.Avg.TPBuf))
		if pa, ok := paperAvg[tc.Core]; ok {
			tw.row("Paper avg", pa[0], pa[1], pa[2])
		}
		tw.flush()
		sb.WriteString("\n")
	}
	return sb.String()
}

// ScopeResult is the §VI.C(1) decomposition: how much of the Baseline's
// cost comes from branch-memory dependences alone versus the full
// branch+memory matrix.
type ScopeResult struct {
	BranchOnlyAvg float64
	FullAvg       float64
	// PerBench maps benchmark -> [branch-only, full] overheads.
	PerBench map[string][2]float64
	// UnresolvedBranchFrac is the fraction of dispatched instructions that
	// entered the machine while a branch was unresolved (astar analysis).
	UnresolvedBranchFrac map[string]float64
}

// Scope measures Baseline overheads under the two matrix scopes. The
// Origin and full-matrix Baseline runs share cache keys with the fig5
// evaluation.
func (r *Runner) Scope(ctx context.Context, spec RunSpec, names []string) (*ScopeResult, error) {
	profiles, err := resolveProfiles(names)
	if err != nil {
		return nil, err
	}
	out := &ScopeResult{
		PerBench:             make(map[string][2]float64),
		UnresolvedBranchFrac: make(map[string]float64),
	}
	var mu sync.Mutex
	n := float64(len(profiles))
	err = r.eachProfile(ctx, profiles, func(p workload.Profile) error {
		s := spec
		s.Sec = pipeline.SecurityConfig{Mechanism: core.Origin}
		origin, err := r.run(ctx, SuiteScope, p, s)
		if err != nil {
			return suiteErr(ctx, err)
		}
		s.Sec = pipeline.SecurityConfig{Mechanism: core.Baseline, Scope: core.ScopeBranchOnly}
		bo, err := r.run(ctx, SuiteScope, p, s)
		if err != nil {
			return suiteErr(ctx, err)
		}
		s.Sec = pipeline.SecurityConfig{Mechanism: core.Baseline, Scope: core.ScopeBranchMem}
		full, err := r.run(ctx, SuiteScope, p, s)
		if err != nil {
			return suiteErr(ctx, err)
		}
		ovBO, ovFull := Overhead(origin, bo), Overhead(origin, full)
		mu.Lock()
		out.PerBench[p.Name] = [2]float64{ovBO, ovFull}
		out.BranchOnlyAvg += ovBO / n
		out.FullAvg += ovFull / n
		if full.Committed > 0 {
			out.UnresolvedBranchFrac[p.Name] =
				float64(full.UnresolvedBranchAtDispatch) / float64(full.Committed)
		}
		mu.Unlock()
		r.emit(ProgressEvent{Suite: SuiteScope, Benchmark: p.Name, Phase: PhaseBenchDone,
			Line: fmt.Sprintf("%-12s branch-only %+6.1f%%  full %+6.1f%%",
				p.Name, 100*ovBO, 100*ovFull)})
		return nil
	})
	return out, err
}

// ScopeText renders the §VI.C(1) decomposition.
func ScopeText(r *ScopeResult) string {
	var sb strings.Builder
	tw := newTable(&sb)
	tw.row("Benchmark", "Branch-only", "Branch+Mem", "UnresolvedBr@disp")
	tw.sep()
	for _, name := range workload.Names() {
		v, ok := r.PerBench[name]
		if !ok {
			continue
		}
		tw.row(name,
			fmt.Sprintf("%.1f%%", 100*v[0]),
			fmt.Sprintf("%.1f%%", 100*v[1]),
			fmt.Sprintf("%.1f%%", 100*r.UnresolvedBranchFrac[name]))
	}
	tw.sep()
	tw.row("Average", fmt.Sprintf("%.1f%%", 100*r.BranchOnlyAvg),
		fmt.Sprintf("%.1f%%", 100*r.FullAvg), "")
	tw.row("Paper avg", "23.0%", "53.6%", "")
	tw.flush()
	return sb.String()
}

// LRUResult is the §VII.A secure replacement-update study on top of the
// full Cache-hit + TPBuf mechanism.
type LRUResult struct {
	// Overheads vs the Origin machine, averaged across benchmarks, for the
	// conventional, no-update and delayed-update policies.
	Always, NoUpdate, Delayed float64
}

// LRU measures the three §VII.A policies under CacheHit+TPBuf. The Origin
// and conventional-update runs share cache keys with the fig5 evaluation.
func (r *Runner) LRU(ctx context.Context, spec RunSpec, names []string) (*LRUResult, error) {
	profiles, err := resolveProfiles(names)
	if err != nil {
		return nil, err
	}
	var out LRUResult
	var mu sync.Mutex
	n := float64(len(profiles))
	err = r.eachProfile(ctx, profiles, func(p workload.Profile) error {
		s := spec
		s.Sec = pipeline.SecurityConfig{Mechanism: core.Origin}
		origin, err := r.run(ctx, SuiteLRU, p, s)
		if err != nil {
			return suiteErr(ctx, err)
		}
		s.Sec = pipeline.SecurityConfig{Mechanism: core.CacheHitTPBuf}
		var deltas [3]float64
		for i, pol := range []mem.UpdatePolicy{mem.UpdateAlways, mem.UpdateNoSpec, mem.UpdateDelayed} {
			s.L1DUpdate = pol
			res, err := r.run(ctx, SuiteLRU, p, s)
			if err != nil {
				return suiteErr(ctx, err)
			}
			deltas[i] = Overhead(origin, res)
		}
		mu.Lock()
		out.Always += deltas[0] / n
		out.NoUpdate += deltas[1] / n
		out.Delayed += deltas[2] / n
		mu.Unlock()
		r.emit(ProgressEvent{Suite: SuiteLRU, Benchmark: p.Name, Phase: PhaseBenchDone,
			Line: "lru: " + p.Name})
		return nil
	})
	return &out, err
}

// LRUText renders the §VII.A comparison.
func LRUText(r *LRUResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "CacheHit+TPBuf overhead vs Origin, by L1D replacement-update policy:\n")
	fmt.Fprintf(&sb, "  conventional update : %6.2f%%\n", 100*r.Always)
	fmt.Fprintf(&sb, "  no-update policy    : %6.2f%%  (paper: +0.71%% over conventional)\n", 100*r.NoUpdate)
	fmt.Fprintf(&sb, "  delayed-update      : %6.2f%%  (paper: recovers 0.26%% of no-update)\n", 100*r.Delayed)
	fmt.Fprintf(&sb, "  no-update cost      : %+6.2f%%\n", 100*(r.NoUpdate-r.Always))
	fmt.Fprintf(&sb, "  delayed-update gain : %+6.2f%%\n", 100*(r.NoUpdate-r.Delayed))
	return sb.String()
}

// ICacheResult is the §VII.B extension study.
type ICacheResult struct {
	Without float64 // CacheHit+TPBuf overhead vs Origin
	With    float64 // same plus the ICache-hit filter
	// Stalls is the per-benchmark count of filter-induced fetch stalls.
	Stalls map[string]uint64
}

// ICache measures the ICache-hit filter's additional cost. Beyond the
// requested benchmarks it always includes the dedicated icache-stress
// kernel, because loop-resident SPEC-shaped kernels never miss the L1I and
// would report the filter as free by construction.
func (r *Runner) ICache(ctx context.Context, spec RunSpec, names []string) (*ICacheResult, error) {
	profiles, err := resolveProfiles(names)
	if err != nil {
		return nil, err
	}
	profiles = append(profiles, workload.ICacheStress())
	out := &ICacheResult{Stalls: make(map[string]uint64)}
	var mu sync.Mutex
	n := float64(len(profiles))
	err = r.eachProfile(ctx, profiles, func(p workload.Profile) error {
		s := spec
		s.Sec = pipeline.SecurityConfig{Mechanism: core.Origin}
		origin, err := r.run(ctx, SuiteICache, p, s)
		if err != nil {
			return suiteErr(ctx, err)
		}
		s.Sec = pipeline.SecurityConfig{Mechanism: core.CacheHitTPBuf}
		base, err := r.run(ctx, SuiteICache, p, s)
		if err != nil {
			return suiteErr(ctx, err)
		}
		without := Overhead(origin, base)
		s.Sec = pipeline.SecurityConfig{Mechanism: core.CacheHitTPBuf, ICacheFilter: true}
		res, err := r.run(ctx, SuiteICache, p, s)
		if err != nil {
			return suiteErr(ctx, err)
		}
		mu.Lock()
		out.Without += without / n
		out.With += Overhead(origin, res) / n
		out.Stalls[p.Name] = res.FetchStallsICacheFilter
		mu.Unlock()
		r.emit(ProgressEvent{Suite: SuiteICache, Benchmark: p.Name, Phase: PhaseBenchDone,
			Line: "icache: " + p.Name})
		return nil
	})
	return out, err
}

// ICacheText renders the §VII.B study.
func ICacheText(r *ICacheResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "ICache-hit filter extension (§VII.B), CacheHit+TPBuf overhead vs Origin:\n")
	fmt.Fprintf(&sb, "  without ICache filter: %6.2f%%\n", 100*r.Without)
	fmt.Fprintf(&sb, "  with ICache filter   : %6.2f%%\n", 100*r.With)
	fmt.Fprintf(&sb, "  additional cost      : %+6.2f%%\n", 100*(r.With-r.Without))
	return sb.String()
}

// Table4 regenerates Table IV by running every attack scenario under every
// mechanism. Attack runs are not RunSpec-shaped and bypass the memo cache,
// but they honor cancellation: on ctx expiry the outcomes completed so far
// are returned alongside ctx.Err().
func (r *Runner) Table4(ctx context.Context, cfg config.Core) ([]attack.Outcome, error) {
	var out []attack.Outcome
	for _, h := range attack.Scenarios(cfg) {
		for _, m := range core.Mechanisms {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			o := h.Run(cfg, pipeline.SecurityConfig{Mechanism: m})
			out = append(out, o)
			r.emit(ProgressEvent{Suite: SuiteTable4, Benchmark: o.Scenario,
				Mechanism: o.Mechanism, Phase: PhaseBenchDone, Line: o.String()})
		}
	}
	return out, nil
}

// Table4Text renders the attack matrix with the paper's expectations.
func Table4Text(outcomes []attack.Outcome) string {
	var sb strings.Builder
	tw := newTable(&sb)
	tw.row("Scenario", "Mechanism", "Recovered", "Result", "Paper")
	tw.sep()
	for _, o := range outcomes {
		status := "DEFENDED"
		if o.Leaked {
			status = "LEAKED"
		}
		// Expectation by mechanism name and scenario class.
		h := o.Scenario
		shared := !strings.Contains(h, "samepage")
		want := "✓ defends"
		if !attack.ExpectedDefense("", shared, o.Mechanism) {
			want = "✗ leaks"
		}
		tw.row(o.Scenario, o.Mechanism,
			fmt.Sprintf("%d/%d", o.Correct, len(o.Secret)), status, want)
	}
	tw.flush()
	return sb.String()
}

// OverheadText renders the §VI.E hardware model for all cores.
func OverheadText() string {
	var sb strings.Builder
	tech := hw.SMIC40()
	cores := append([]config.Core{config.PaperCore()}, config.SensitivityCores()...)
	for _, cfg := range cores {
		sb.WriteString(hw.Evaluate(tech, cfg).String())
		sb.WriteString("\n")
	}
	sb.WriteString("paper reference: matrix 0.05mm² (3.5% of 32KB cache), +1.4% critical path;\n")
	sb.WriteString("                 TPBuf 0.00079mm² (0.055% of 32KB cache)\n")
	return sb.String()
}

// DTLBResult measures this reproduction's DTLB-hit filter extension.
type DTLBResult struct {
	Without float64 // CacheHit+TPBuf overhead vs Origin
	With    float64 // same plus the DTLB-hit filter
	// Blocks counts filter-induced blocks per benchmark.
	Blocks map[string]uint64
}

// DTLB measures the DTLB-hit filter's additional cost.
func (r *Runner) DTLB(ctx context.Context, spec RunSpec, names []string) (*DTLBResult, error) {
	profiles, err := resolveProfiles(names)
	if err != nil {
		return nil, err
	}
	out := &DTLBResult{Blocks: make(map[string]uint64)}
	var mu sync.Mutex
	n := float64(len(profiles))
	err = r.eachProfile(ctx, profiles, func(p workload.Profile) error {
		s := spec
		s.Sec = pipeline.SecurityConfig{Mechanism: core.Origin}
		origin, err := r.run(ctx, SuiteDTLB, p, s)
		if err != nil {
			return suiteErr(ctx, err)
		}
		s.Sec = pipeline.SecurityConfig{Mechanism: core.CacheHitTPBuf}
		base, err := r.run(ctx, SuiteDTLB, p, s)
		if err != nil {
			return suiteErr(ctx, err)
		}
		without := Overhead(origin, base)
		s.Sec = pipeline.SecurityConfig{Mechanism: core.CacheHitTPBuf, DTLBFilter: true}
		res, err := r.run(ctx, SuiteDTLB, p, s)
		if err != nil {
			return suiteErr(ctx, err)
		}
		mu.Lock()
		out.Without += without / n
		out.With += Overhead(origin, res) / n
		out.Blocks[p.Name] = res.DTLBFilterBlocks
		mu.Unlock()
		r.emit(ProgressEvent{Suite: SuiteDTLB, Benchmark: p.Name, Phase: PhaseBenchDone,
			Line: "dtlb: " + p.Name})
		return nil
	})
	return out, err
}

// DTLBText renders the DTLB-filter study.
func DTLBText(r *DTLBResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "DTLB-hit filter extension (closes the translation side channel):\n")
	fmt.Fprintf(&sb, "  CacheHit+TPBuf overhead without it: %6.2f%%\n", 100*r.Without)
	fmt.Fprintf(&sb, "  with the DTLB-hit filter          : %6.2f%%\n", 100*r.With)
	fmt.Fprintf(&sb, "  additional cost                   : %+6.2f%%\n", 100*(r.With-r.Without))
	return sb.String()
}
