package pipeline

import (
	"errors"
	"strings"
	"testing"

	"conspec/internal/asm"
	"conspec/internal/core"
	"conspec/internal/isa"
)

// deadlockProgram stages the hand-written deadlock reproducer: a load whose
// address chains on a cold miss, so it sits unissued in the issue queue
// long enough for the test to corrupt its security dependence row.
func deadlockProgram() *asm.Program {
	b := asm.New()
	b.Li(asm.A0, 0x200000)
	b.Ld(asm.T0, asm.A0, 0) // cold miss: ~MemLat cycles
	b.Add(asm.T1, asm.T0, asm.A0)
	b.Ld(asm.T2, asm.T1, 0) // victim: waits on the chain, then blocks forever
	b.Halt()
	return b.MustAssemble(testBase)
}

// TestWatchdogDeadlockReproducer is the acceptance scenario: a suspect load
// whose security dependence never clears must end the run via ErrNoProgress
// with a diagnostic dump naming the blocked uop — not spin to the cycle cap.
func TestWatchdogDeadlockReproducer(t *testing.T) {
	prog := deadlockProgram()
	backing := isa.NewFlatMem()
	prog.Load(backing)
	cpu := NewWithMemory(smallCore(), SecurityConfig{Mechanism: core.Baseline}, backing)
	cpu.SetPC(prog.Base)

	// Step until the victim load is live and waiting in the issue queue.
	victim := -1
	for i := 0; i < 5000 && victim < 0; i++ {
		cpu.StepCycle()
		for x, u := range cpu.iq {
			if u != nil && u.inst.Op.IsLoad() && !u.issued && u.waitCnt > 0 {
				victim = x
			}
		}
	}
	if victim < 0 {
		t.Fatal("victim load never appeared in the issue queue")
	}
	// Corrupt its dependence row: a bit pointing at a free IQ slot. The slot
	// never issues, so the column never clears and Baseline blocks the load
	// forever. Retry if a pending update-vector clear undoes the flip.
	free := -1
	for y, u := range cpu.iq {
		if u == nil && y != victim {
			free = y
			break
		}
	}
	if free < 0 {
		t.Fatal("no free IQ slot to point the poisoned dependence at")
	}
	for i := 0; i < 4; i++ {
		if cpu.secmat.Get(victim, free) {
			break
		}
		cpu.secmat.Flip(victim, free)
		cpu.StepCycle()
	}
	if !cpu.secmat.Get(victim, free) {
		t.Fatal("poisoned dependence bit did not stick")
	}

	const cap = 10_000_000
	res := cpu.Run(cap)
	if res.Outcome != OutcomeDeadlock {
		t.Fatalf("outcome %v, want deadlock", res.Outcome)
	}
	if res.Outcome.Completed() {
		t.Fatal("deadlock must not count as completed")
	}
	if !errors.Is(cpu.Err(), ErrNoProgress) {
		t.Fatalf("Err() = %v, want ErrNoProgress", cpu.Err())
	}
	var npe *NoProgressError
	if !errors.As(cpu.Err(), &npe) {
		t.Fatalf("Err() = %T, want *NoProgressError", cpu.Err())
	}
	if npe.Window == 0 || npe.Cycle-npe.LastCommit < npe.Window {
		t.Fatalf("trip bookkeeping inconsistent: %+v", npe)
	}
	// The dump must name the blocked uop and its poisoned dependence row.
	for _, want := range []string{"rob head: seq=", "secmatrix row", "tpbuf occ"} {
		if !strings.Contains(npe.Dump, want) {
			t.Errorf("dump missing %q:\n%s", want, npe.Dump)
		}
	}
	if res.Diag != npe.Dump {
		t.Error("Result.Diag must carry the watchdog dump")
	}
	if res.Cycles >= cap {
		t.Fatalf("watchdog must fire far below the cycle cap, ran %d", res.Cycles)
	}
	if res.Hardening.WatchdogTrips != 1 {
		t.Fatalf("WatchdogTrips = %d, want 1", res.Hardening.WatchdogTrips)
	}
	// The error is sticky: further runs refuse to advance the wedge.
	again := cpu.Run(1000)
	if again.Outcome != OutcomeDeadlock || !errors.Is(cpu.Err(), ErrNoProgress) {
		t.Fatal("a wedged machine must stay failed on subsequent runs")
	}
}

// TestRunOutcomes covers the healthy and cap-bounded endings.
func TestRunOutcomes(t *testing.T) {
	halting := func() *asm.Program {
		b := asm.New()
		b.Li(asm.A0, 1)
		b.Halt()
		return b.MustAssemble(testBase)
	}()

	t.Run("halted", func(t *testing.T) {
		backing := isa.NewFlatMem()
		halting.Load(backing)
		cpu := NewWithMemory(smallCore(), SecurityConfig{Mechanism: core.Origin}, backing)
		cpu.SetPC(halting.Base)
		res := cpu.Run(100000)
		if res.Outcome != OutcomeHalted || !res.Outcome.Completed() || cpu.Err() != nil {
			t.Fatalf("outcome %v err %v", res.Outcome, cpu.Err())
		}
	})

	t.Run("inst-target", func(t *testing.T) {
		prog := allocKernel()
		backing := isa.NewFlatMem()
		prog.Load(backing)
		cpu := NewWithMemory(smallCore(), SecurityConfig{Mechanism: core.Origin}, backing)
		cpu.SetPC(prog.Base)
		res := cpu.RunFor(500, 1_000_000)
		if res.Outcome != OutcomeInstTarget || !res.Outcome.Completed() {
			t.Fatalf("outcome %v", res.Outcome)
		}
		if res.Committed < 500 {
			t.Fatalf("committed %d, want >= 500", res.Committed)
		}
	})

	t.Run("cycle-cap", func(t *testing.T) {
		prog := allocKernel()
		backing := isa.NewFlatMem()
		prog.Load(backing)
		cpu := NewWithMemory(smallCore(), SecurityConfig{Mechanism: core.Origin}, backing)
		cpu.SetPC(prog.Base)
		res := cpu.Run(300)
		if res.Outcome != OutcomeCycleCapExceeded || res.Outcome.Completed() {
			t.Fatalf("outcome %v", res.Outcome)
		}
		if cpu.Err() != nil {
			t.Fatalf("cycle cap is not an error state: %v", cpu.Err())
		}
	})

	t.Run("watchdog-disabled-by-config", func(t *testing.T) {
		cfg := smallCore()
		cfg.Watchdog = -1
		backing := isa.NewFlatMem()
		halting.Load(backing)
		cpu := NewWithMemory(cfg, SecurityConfig{Mechanism: core.Origin}, backing)
		if cpu.watchdogLimit != 0 {
			t.Fatalf("negative config must disable the watchdog, got limit %d", cpu.watchdogLimit)
		}
	})

	t.Run("watchdog-explicit-config", func(t *testing.T) {
		cfg := smallCore()
		cfg.Watchdog = 777
		backing := isa.NewFlatMem()
		halting.Load(backing)
		cpu := NewWithMemory(cfg, SecurityConfig{Mechanism: core.Origin}, backing)
		if cpu.watchdogLimit != 777 {
			t.Fatalf("limit %d, want 777", cpu.watchdogLimit)
		}
	})
}

// TestSelfCheckCleanRun: a healthy run under -selfcheck 1 sweeps every cycle
// and finds nothing.
func TestSelfCheckCleanRun(t *testing.T) {
	for _, m := range core.Mechanisms {
		prog := deadlockProgram() // healthy when nobody poisons the matrix
		backing := isa.NewFlatMem()
		prog.Load(backing)
		cpu := NewWithMemory(smallCore(), SecurityConfig{Mechanism: m}, backing)
		cpu.SetSelfCheck(1)
		cpu.SetPC(prog.Base)
		res := cpu.Run(1_000_000)
		if res.Outcome != OutcomeHalted {
			t.Fatalf("%v: outcome %v (err %v, diag %s)", m, res.Outcome, cpu.Err(), res.Diag)
		}
		if res.Hardening.SelfCheckSweeps == 0 {
			t.Fatalf("%v: no sweeps recorded", m)
		}
		if res.Hardening.SelfCheckViolations != 0 {
			t.Fatalf("%v: %d violations on a healthy run", m, res.Hardening.SelfCheckViolations)
		}
	}
}
