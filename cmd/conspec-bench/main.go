// Command conspec-bench regenerates the paper's evaluation artifacts:
//
//	-suite fig5     Figure 5  (normalized performance, 22 benchmarks)
//	-suite table4   Table IV  (security: attacks vs mechanisms)
//	-suite table5   Table V   (filter analysis)
//	-suite table6   Table VI  (A57/I7/Xeon sensitivity)
//	-suite scope    §VI.C(1)  (branch-only vs branch+memory matrix)
//	-suite lru      §VII.A    (secure replacement-update policies)
//	-suite icache   §VII.B    (ICache-hit filter extension)
//	-suite compare  extension (CH+TPBuf vs InvisiSpec-like vs LFENCE baseline)
//	-suite overhead §VI.E     (area/timing model)
//	-suite all      everything above
//
// Figure 5 and Table V come from the same runs and are always printed
// together. Use -benches to restrict to a comma-separated subset and
// -measure to change the per-run instruction budget.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"conspec/internal/config"
	"conspec/internal/exp"
)

func main() {
	var (
		suite   = flag.String("suite", "all", "fig5|table4|table5|table6|scope|lru|icache|dtlb|compare|overhead|all")
		benches = flag.String("benches", "", "comma-separated benchmark subset (default: all 22)")
		warmup  = flag.Uint64("warmup", 20_000, "warmup instructions per run")
		measure = flag.Uint64("measure", 120_000, "measured instructions per run")
		verbose = flag.Bool("v", false, "print per-run progress")
		asJSON  = flag.Bool("json", false, "emit fig5/table5/table4 results as JSON instead of text")
	)
	flag.Parse()

	var names []string
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}
	spec := exp.DefaultSpec()
	spec.Warmup = *warmup
	spec.Measure = *measure

	progress := func(string) {}
	if *verbose {
		progress = func(line string) { fmt.Fprintln(os.Stderr, line) }
	}
	want := func(s string) bool { return *suite == "all" || *suite == s }
	start := time.Now()

	var report jsonReport
	if want("fig5") || want("table5") {
		ev, err := exp.RunEvaluation(spec, names, progress)
		if err != nil {
			fatal(err)
		}
		if *asJSON {
			report.Fig5 = fig5JSON(ev)
			report.Table5 = table5JSON(ev)
		} else {
			fmt.Println("=== Figure 5: runtime normalized to Origin ===")
			fmt.Println(ev.Fig5Text())
			fmt.Println("=== Table V: filter analysis ===")
			fmt.Println(ev.Table5Text())
		}
	}
	if want("table4") {
		cfg := config.PaperCore()
		cfg.Mem.L2Size = 256 * 1024
		cfg.Mem.L3Size = 1024 * 1024
		outcomes := exp.RunTable4(cfg, progress)
		if *asJSON {
			report.Table4 = table4JSON(outcomes)
		} else {
			fmt.Println("=== Table IV: security analysis ===")
			fmt.Println(exp.Table4Text(outcomes))
		}
	}
	if want("table6") {
		cores, err := exp.RunTable6(spec, names, progress)
		if err != nil {
			fatal(err)
		}
		fmt.Println("=== Table VI: core sensitivity ===")
		fmt.Println(exp.Table6Text(cores))
	}
	if want("scope") {
		r, err := exp.RunScope(spec, names, progress)
		if err != nil {
			fatal(err)
		}
		fmt.Println("=== §VI.C(1): matrix scope decomposition ===")
		fmt.Println(exp.ScopeText(r))
	}
	if want("lru") {
		r, err := exp.RunLRU(spec, names, progress)
		if err != nil {
			fatal(err)
		}
		fmt.Println("=== §VII.A: secure replacement-update policies ===")
		fmt.Println(exp.LRUText(r))
	}
	if want("icache") {
		r, err := exp.RunICache(spec, names, progress)
		if err != nil {
			fatal(err)
		}
		fmt.Println("=== §VII.B: ICache-hit filter extension ===")
		fmt.Println(exp.ICacheText(r))
	}
	if want("dtlb") {
		r, err := exp.RunDTLBFilter(spec, names, progress)
		if err != nil {
			fatal(err)
		}
		fmt.Println("=== DTLB-hit filter extension ===")
		fmt.Println(exp.DTLBText(r))
	}
	if want("compare") {
		r, err := exp.RunComparison(spec, names, progress)
		if err != nil {
			fatal(err)
		}
		fmt.Println("=== Defense comparison: CH+TPBuf vs InvisiSpec vs SW fence ===")
		fmt.Println(exp.CompareText(r))
	}
	if want("overhead") {
		fmt.Println("=== §VI.E: hardware overhead model ===")
		fmt.Println(exp.OverheadText())
	}
	if *asJSON {
		emitJSON(report)
	}
	fmt.Fprintf(os.Stderr, "total wall time: %v\n", time.Since(start))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
