// Package trace is a small span tracer for the experiment and serving
// layers: preallocated span ring, monotonic timestamps, parent/child IDs,
// and Chrome trace-event JSON export that Perfetto and chrome://tracing
// load directly.
//
// The tracer is built for the millisecond-granularity layers above the
// simulator (suite/run/phase spans, HTTP request spans), not the cycle
// loop — the flight recorder covers that. "Zero-alloc" here means the span
// ring is allocated once at construction and Begin/Annotate/End perform no
// allocation, so tracing a hot server adds a mutex acquire and a few
// stores per span. When the ring fills, new spans are dropped and counted
// rather than grown or overwritten: parents must stay valid for the
// lifetime of their children, so eviction is not an option.
//
// All methods are nil-safe on a nil *Tracer, and every operation on the
// zero SpanID (NoSpan) is a no-op, so instrumented code needs no "is
// tracing on" guards.
package trace

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"time"
)

// SpanID identifies a span within one Tracer. The zero value (NoSpan) is
// "no span": Begin(NoSpan, ...) starts a new root, and End/Annotate on
// NoSpan do nothing.
type SpanID int32

// NoSpan is the zero SpanID.
const NoSpan SpanID = 0

// maxArgs is the fixed number of annotation slots per span. Annotations
// beyond the limit are dropped (counted in Stats) rather than allocated.
const maxArgs = 4

// Span is one completed or in-progress span. Fields are exported for the
// exporter and tests; mutate spans only through the Tracer.
type Span struct {
	ID     SpanID
	Parent SpanID
	Name   string
	TID    int64 // export track: roots get fresh tracks, children inherit
	Start  int64 // nanoseconds since the tracer epoch
	End    int64 // 0 while the span is open
	NArgs  int
	Keys   [maxArgs]string
	Vals   [maxArgs]string
}

// Tracer records spans into a preallocated ring.
type Tracer struct {
	mu      sync.Mutex
	t0      time.Time
	spans   []Span
	n       int // spans allocated so far
	nextTID int64
	dropped uint64
}

// New builds a tracer with room for capacity spans. Capacity <= 0 selects
// a default of 4096.
func New(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Tracer{t0: time.Now(), spans: make([]Span, capacity)}
}

// now returns monotonic nanoseconds since the tracer epoch. time.Since
// reads the monotonic clock, so wall-clock steps cannot reorder spans.
func (t *Tracer) now() int64 { return int64(time.Since(t.t0)) }

// Begin starts a span under parent (NoSpan for a root) and returns its ID.
// Roots are assigned a fresh export track; children render on their
// parent's track, which Perfetto nests by timestamp. Returns NoSpan when
// the tracer is nil or the ring is full.
func (t *Tracer) Begin(parent SpanID, name string) SpanID {
	if t == nil {
		return NoSpan
	}
	ts := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.n == len(t.spans) {
		t.dropped++
		return NoSpan
	}
	tid := int64(0)
	if parent > 0 && int(parent) <= t.n {
		tid = t.spans[parent-1].TID
	} else {
		t.nextTID++
		tid = t.nextTID
		parent = NoSpan
	}
	t.n++
	id := SpanID(t.n)
	t.spans[id-1] = Span{ID: id, Parent: parent, Name: name, TID: tid, Start: ts}
	return id
}

// Annotate attaches a key/value argument to an open or closed span. Each
// span has a fixed number of slots; extra annotations are dropped.
func (t *Tracer) Annotate(id SpanID, key, val string) {
	if t == nil || id <= 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) > t.n {
		return
	}
	s := &t.spans[id-1]
	if s.NArgs == maxArgs {
		t.dropped++
		return
	}
	s.Keys[s.NArgs], s.Vals[s.NArgs] = key, val
	s.NArgs++
}

// End closes a span. Ending NoSpan or an already-closed span is a no-op.
func (t *Tracer) End(id SpanID) {
	if t == nil || id <= 0 {
		return
	}
	ts := t.now()
	t.mu.Lock()
	defer t.mu.Unlock()
	if int(id) > t.n {
		return
	}
	if s := &t.spans[id-1]; s.End == 0 {
		s.End = ts
	}
}

// Stats reports the number of recorded spans and the number of spans or
// annotations dropped because the ring (or a span's argument slots) was
// full.
func (t *Tracer) Stats() (spans int, dropped uint64) {
	if t == nil {
		return 0, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n, t.dropped
}

// WriteChrome exports every span as Chrome trace-event JSON
// ({"traceEvents":[...]}). Open spans are exported as if they ended at the
// export timestamp, so a live server trace is still loadable.
func (t *Tracer) WriteChrome(w io.Writer) error {
	return t.export(w, NoSpan)
}

// WriteChromeSubtree exports root and every transitive child of root —
// the shape the per-job trace endpoint serves.
func (t *Tracer) WriteChromeSubtree(w io.Writer, root SpanID) error {
	if root <= 0 {
		return fmt.Errorf("trace: no such span %d", root)
	}
	return t.export(w, root)
}

func (t *Tracer) export(w io.Writer, root SpanID) error {
	if t == nil {
		_, err := io.WriteString(w, `{"traceEvents":[]}`)
		return err
	}
	nowNS := t.now()
	t.mu.Lock()
	spans := t.spans[:t.n]
	// Membership pass: a span is in the subtree if it is the root or its
	// parent is. Parents always precede children (IDs are allocation
	// order), so one forward scan settles membership.
	include := make([]bool, t.n+1)
	for _, s := range spans {
		if root == NoSpan || s.ID == root || (s.Parent > 0 && include[s.Parent]) {
			include[s.ID] = true
		}
	}
	// Copy the included spans out so JSON encoding runs outside the lock.
	out := make([]Span, 0, t.n)
	for _, s := range spans {
		if include[s.ID] {
			out = append(out, s)
		}
	}
	t.mu.Unlock()

	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(`{"traceEvents":[`); err != nil {
		return err
	}
	for i, s := range out {
		if i > 0 {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		end := s.End
		if end == 0 {
			end = nowNS
		}
		if err := writeChromeEvent(bw, s, end); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// writeChromeEvent emits one complete ("ph":"X") trace event. Timestamps
// are microseconds with nanosecond precision, per the trace-event spec.
func writeChromeEvent(w io.Writer, s Span, end int64) error {
	name, err := json.Marshal(s.Name)
	if err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, `{"name":%s,"ph":"X","ts":%.3f,"dur":%.3f,"pid":1,"tid":%d,"args":{"span_id":%d,"parent_id":%d`,
		name, float64(s.Start)/1e3, float64(end-s.Start)/1e3, s.TID, s.ID, s.Parent); err != nil {
		return err
	}
	for i := 0; i < s.NArgs; i++ {
		k, err := json.Marshal(s.Keys[i])
		if err != nil {
			return err
		}
		v, err := json.Marshal(s.Vals[i])
		if err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, ",%s:%s", k, v); err != nil {
			return err
		}
	}
	_, err = io.WriteString(w, "}}")
	return err
}
