package pipeline

import (
	"io"

	"conspec/internal/obs"
)

// AttachSink registers an event sink: every pipeline event (fetch, dispatch,
// issue, writeback, commit, squash) is delivered to it as an obs.TraceEvent.
// Multiple sinks may be attached (e.g. a text tracer plus an O3PipeView
// writer); they see the same events in the same order. Sinks are outside the
// zero-allocation contract — with none attached, each event site costs one
// predicted branch.
func (c *CPU) AttachSink(s obs.EventSink) {
	if s != nil {
		c.sinks = append(c.sinks, s)
	}
}

// DetachSinks removes every attached sink without flushing.
func (c *CPU) DetachSinks() { c.sinks = nil }

// FlushSinks flushes every attached sink (call once after the run); the
// first error wins.
func (c *CPU) FlushSinks() error {
	var first error
	for _, s := range c.sinks {
		if err := s.Flush(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// AttachTracer streams a line per pipeline event to w — the classic debug
// tracer, now a TextSink over the event stream. Intended for debugging guest
// programs and for teaching: `conspec-asm -trace` and `conspec-sim -trace`
// use it. A nil w detaches ALL sinks (the historical detach semantics).
func (c *CPU) AttachTracer(w io.Writer) {
	if w == nil {
		c.DetachSinks()
		return
	}
	c.AttachSink(obs.NewTextSink(w))
}

// traceEvent emits one per-instruction event. The security flags carry what
// is known at emission time: Suspect is assigned at issue, Blocked means a
// hazard filter blocked this instruction at least once.
func (c *CPU) traceEvent(kind obs.EventKind, u *uop) {
	if c.sinks == nil {
		return
	}
	ev := obs.TraceEvent{
		Cycle:   c.cycle,
		Kind:    kind,
		Seq:     u.seq,
		PC:      u.pc,
		Suspect: u.suspect,
		Blocked: u.wasBlocked,
		Disasm:  u.inst.String(),
	}
	for _, s := range c.sinks {
		s.Event(ev)
	}
}

// traceSquash emits the pipeline-level squash event: everything with
// seq >= fromSeq left the machine and fetch was re-steered to redirectPC.
func (c *CPU) traceSquash(fromSeq, redirectPC uint64) {
	if c.sinks == nil {
		return
	}
	ev := obs.TraceEvent{Cycle: c.cycle, Kind: obs.EvSquash, Seq: fromSeq, PC: redirectPC}
	for _, s := range c.sinks {
		s.Event(ev)
	}
}
