package exp

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"conspec/internal/core"
	"conspec/internal/mem"
	"conspec/internal/pipeline"
	"conspec/internal/workload"
)

// tinySpec is the smallest budget that still exercises the whole path;
// engine tests assert scheduling behavior, not statistical shape.
func tinySpec() RunSpec {
	s := DefaultSpec()
	s.Warmup = 2_000
	s.Measure = 8_000
	return s
}

func TestCacheKeyDeterminism(t *testing.T) {
	p, _ := workload.ByName("astar")
	spec := tinySpec()
	base := keyOf(p, spec)
	if base != keyOf(p, spec) {
		t.Fatal("identical inputs must produce identical keys")
	}

	mutations := map[string]func(*workload.Profile, *RunSpec){
		"core":        func(_ *workload.Profile, s *RunSpec) { s.Core.ROB++ },
		"mechanism":   func(_ *workload.Profile, s *RunSpec) { s.Sec.Mechanism = core.Baseline },
		"scope":       func(_ *workload.Profile, s *RunSpec) { s.Sec.Scope = core.ScopeBranchOnly },
		"icache":      func(_ *workload.Profile, s *RunSpec) { s.Sec.ICacheFilter = true },
		"dtlb":        func(_ *workload.Profile, s *RunSpec) { s.Sec.DTLBFilter = true },
		"l1d-policy":  func(_ *workload.Profile, s *RunSpec) { s.L1DUpdate = mem.UpdateNoSpec },
		"warmup":      func(_ *workload.Profile, s *RunSpec) { s.Warmup++ },
		"measure":     func(_ *workload.Profile, s *RunSpec) { s.Measure++ },
		"max-cycles":  func(_ *workload.Profile, s *RunSpec) { s.MaxCycles = 123 },
		"selfcheck":   func(_ *workload.Profile, s *RunSpec) { s.SelfCheck = 3 },
		"bench-name":  func(p *workload.Profile, _ *RunSpec) { p.Name = "astar2" },
		"bench-shape": func(p *workload.Profile, _ *RunSpec) { p.FenceAfterBranches = true },
	}
	for name, mutate := range mutations {
		mp, ms := p, spec
		mutate(&mp, &ms)
		if keyOf(mp, ms) == base {
			t.Errorf("%s: single-field change must change the cache key", name)
		}
	}
}

// TestCrossSuiteDedup submits overlapping work from three suites to one
// Runner and checks the scheduler executed each unique simulation once.
func TestCrossSuiteDedup(t *testing.T) {
	r := NewRunner(RunnerOptions{})
	ctx := context.Background()
	spec := tinySpec()
	names := []string{"astar"}

	// fig5/table5: 4 mechanisms, all unique.
	if _, err := r.Evaluation(ctx, spec, names); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Executed != 4 || st.Hits != 0 {
		t.Fatalf("after evaluation: %+v, want 4 executed / 0 hits", st)
	}

	// lru: Origin and CacheHitTPBuf+conventional-update are cache hits;
	// the no-update and delayed-update runs are new.
	if _, err := r.LRU(ctx, spec, names); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Executed != 6 || st.Hits != 2 {
		t.Fatalf("after lru: %+v, want 6 executed / 2 hits", st)
	}

	// scope: Origin and the full-matrix Baseline are cache hits (the full
	// matrix is the default scope); branch-only is new.
	if _, err := r.Scope(ctx, spec, names); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Executed != 7 || st.Hits != 4 {
		t.Fatalf("after scope: %+v, want 7 executed / 4 hits", st)
	}

	// Re-running a whole suite costs zero simulations.
	if _, err := r.Evaluation(ctx, spec, names); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Executed != 7 || st.Hits != 8 {
		t.Fatalf("after re-evaluation: %+v, want 7 executed / 8 hits", st)
	}
}

// TestGoldenCachedMatchesUncached renders fig5 from a cold engine, a warm
// engine, and an independent fresh engine; all three must be byte-identical.
func TestGoldenCachedMatchesUncached(t *testing.T) {
	spec := tinySpec()
	names := []string{"astar", "lbm"}

	r := NewRunner(RunnerOptions{})
	cold, err := r.Evaluation(context.Background(), spec, names)
	if err != nil {
		t.Fatal(err)
	}
	executed := r.Stats().Executed
	warm, err := r.Evaluation(context.Background(), spec, names)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats().Executed != executed {
		t.Fatalf("warm evaluation executed %d new runs", r.Stats().Executed-executed)
	}
	if cold.Fig5Text() != warm.Fig5Text() {
		t.Error("cached fig5 text differs from uncached")
	}
	if cold.Table5Text() != warm.Table5Text() {
		t.Error("cached table5 text differs from uncached")
	}

	fresh, err := NewRunner(RunnerOptions{}).Evaluation(context.Background(), spec, names)
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Fig5Text() != cold.Fig5Text() {
		t.Error("independent engine fig5 text differs from Runner output")
	}
}

func TestCancellationMidSuite(t *testing.T) {
	before := runtime.NumGoroutine()
	r := NewRunner(RunnerOptions{Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int32
	r.onEvent = func(ev ProgressEvent) {
		if ev.Phase == PhaseRunDone && done.Add(1) == 1 {
			cancel()
		}
	}
	_, err := r.Evaluation(ctx, tinySpec(), []string{"astar", "lbm", "hmmer"})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if st := r.Stats(); st.Submitted() >= 12 {
		t.Errorf("cancellation did not stop the suite: %+v", st)
	}
	// All suite goroutines are joined before Evaluation returns.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+1 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := runtime.NumGoroutine(); got > before+1 {
		t.Errorf("goroutines leaked: %d before, %d after", before, got)
	}
}

func TestCancellationBeforeStart(t *testing.T) {
	r := NewRunner(RunnerOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, id := range []SuiteID{SuiteFig5, SuiteTable4, SuiteTable6, SuiteScope,
		SuiteLRU, SuiteICache, SuiteDTLB, SuiteCompare} {
		if _, err := r.RunSuite(ctx, id, Options{Spec: tinySpec(), Benches: []string{"astar"}}); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", id, err)
		}
	}
	if st := r.Stats(); st.Executed != 0 {
		t.Errorf("cancelled-before-start engine still executed %d runs", st.Executed)
	}
}

func TestPanicIsolation(t *testing.T) {
	r := NewRunner(RunnerOptions{})
	r.testExec = func(w *workload.Workload, spec RunSpec) pipeline.Result {
		panic("boom")
	}
	ev, err := r.Evaluation(context.Background(), tinySpec(), []string{"astar"})
	if err != nil {
		t.Fatalf("suites must degrade gracefully past panicked runs, got %v", err)
	}
	if len(ev.Benches) != 1 || len(ev.Benches[0].Results) != 0 {
		t.Error("panicked runs must not contribute results")
	}
	if st := r.Stats(); st.Panics == 0 {
		t.Error("panic not counted")
	}
	errs := r.Errors()
	if len(errs) != 4 { // one per mechanism
		t.Fatalf("recorded %d errors, want 4: %+v", len(errs), errs)
	}
	for _, e := range errs {
		if e.Outcome != "panic" || e.Err == nil || !strings.Contains(e.Err.Error(), "panicked") {
			t.Errorf("unexpected error record: %+v", e)
		}
	}
	// Failed runs are not memoized: with the fault cleared the same spec
	// executes for real.
	r.testExec = nil
	if _, err := r.Evaluation(context.Background(), tinySpec(), []string{"astar"}); err != nil {
		t.Fatalf("engine did not recover after panic: %v", err)
	}
}

// TestFailedOutcomeDegradation: a run that ends in a non-completed outcome
// is excluded from the suite aggregates, recorded for Errors() with its
// diagnostic dump, kept out of the memo cache, and does not abort the rest
// of the suite.
func TestFailedOutcomeDegradation(t *testing.T) {
	r := NewRunner(RunnerOptions{})
	var calls atomic.Int32
	r.testExec = func(w *workload.Workload, spec RunSpec) pipeline.Result {
		calls.Add(1)
		if spec.Sec.Mechanism == core.Baseline {
			return pipeline.Result{Cycles: 123,
				Outcome: pipeline.OutcomeDeadlock, Diag: "rob head: seq=7"}
		}
		return pipeline.Result{Cycles: 100, Committed: 100,
			Outcome: pipeline.OutcomeInstTarget}
	}
	ev, err := r.Evaluation(context.Background(), tinySpec(), []string{"astar"})
	if err != nil {
		t.Fatalf("suite must continue past failed runs: %v", err)
	}
	b := ev.Benches[0]
	if _, ok := b.Results[core.Baseline]; ok {
		t.Error("deadlocked run must not enter the aggregates")
	}
	if len(b.Results) != len(core.Mechanisms)-1 {
		t.Errorf("healthy runs missing: got %d results", len(b.Results))
	}
	errs := r.Errors()
	if len(errs) != 1 {
		t.Fatalf("recorded %d errors, want 1: %+v", len(errs), errs)
	}
	e := errs[0]
	if e.Outcome != "deadlock" || e.Suite != SuiteFig5 || e.Benchmark != "astar" {
		t.Errorf("bad error record: %+v", e)
	}
	if !strings.Contains(e.Err.Error(), "rob head") {
		t.Error("recorded error must carry the diagnostic dump")
	}
	if st := r.Stats(); st.Executed != 3 {
		t.Errorf("executed %d, want 3 (the failed run is not memoized)", st.Executed)
	}
	// Re-running the suite retries only the failed run; the healthy three
	// come from the cache.
	before := calls.Load()
	if _, err := r.Evaluation(context.Background(), tinySpec(), []string{"astar"}); err != nil {
		t.Fatal(err)
	}
	if got := calls.Load() - before; got != 1 {
		t.Errorf("re-run executed %d simulations, want 1", got)
	}
}

// TestRunTimeout: a per-run wall-clock timeout is a recorded failure, not a
// suite abort.
func TestRunTimeout(t *testing.T) {
	r := NewRunner(RunnerOptions{Timeout: time.Nanosecond})
	ev, err := r.Evaluation(context.Background(), tinySpec(), []string{"astar"})
	if err != nil {
		t.Fatalf("timeouts must degrade, not abort: %v", err)
	}
	if len(ev.Benches[0].Results) != 0 {
		t.Error("timed-out runs must not contribute results")
	}
	errs := r.Errors()
	if len(errs) == 0 {
		t.Fatal("timeout not recorded")
	}
	for _, e := range errs {
		if e.Outcome != "timeout" {
			t.Errorf("outcome %q, want timeout", e.Outcome)
		}
	}
}

// mapCache is an in-memory ResultCache standing in for the disk store.
type mapCache struct {
	mu   sync.Mutex
	m    map[string]pipeline.Result
	gets int
	puts int
}

func newMapCache() *mapCache { return &mapCache{m: make(map[string]pipeline.Result)} }

func (c *mapCache) Get(key string) (pipeline.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gets++
	res, ok := c.m[key]
	return res, ok
}

func (c *mapCache) Put(key string, res pipeline.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.puts++
	c.m[key] = res
}

// TestPersistentCacheTiers: a Runner with a ResultCache writes completed
// runs through, and a fresh Runner (a restarted process) replays the same
// evaluation entirely from the persistent tier — zero executions, with the
// cached events labelled by tier.
func TestPersistentCacheTiers(t *testing.T) {
	store := newMapCache()
	spec := tinySpec()
	names := []string{"astar"}

	cold := NewRunner(RunnerOptions{Cache: store})
	ev1, err := cold.Evaluation(context.Background(), spec, names)
	if err != nil {
		t.Fatal(err)
	}
	st := cold.Stats()
	if st.Executed != 4 || st.DiskHits != 0 {
		t.Fatalf("cold engine: %+v, want 4 executed / 0 disk hits", st)
	}
	if store.puts != 4 {
		t.Fatalf("store received %d puts, want 4", store.puts)
	}

	var tiers []string
	warm := NewRunner(RunnerOptions{Cache: store, OnEvent: func(ev ProgressEvent) {
		if ev.Phase == PhaseCached {
			tiers = append(tiers, ev.Tier)
		}
	}})
	ev2, err := warm.Evaluation(context.Background(), spec, names)
	if err != nil {
		t.Fatal(err)
	}
	st = warm.Stats()
	if st.Executed != 0 || st.DiskHits != 4 {
		t.Fatalf("warm engine: %+v, want 0 executed / 4 disk hits", st)
	}
	if st.Submitted() != 4 {
		t.Fatalf("Submitted() = %d, want 4", st.Submitted())
	}
	for _, tier := range tiers {
		if tier != TierDisk {
			t.Errorf("cached event tier %q, want %q", tier, TierDisk)
		}
	}
	if ev1.Fig5Text() != ev2.Fig5Text() {
		t.Error("disk-served fig5 text differs from executed run")
	}

	// A second pass on the warm engine is served by the memory tier.
	tiers = nil
	if _, err := warm.Evaluation(context.Background(), spec, names); err != nil {
		t.Fatal(err)
	}
	st = warm.Stats()
	if st.Hits != 4 || st.DiskHits != 4 || st.Executed != 0 {
		t.Fatalf("re-run on warm engine: %+v, want 4 memory hits", st)
	}
	for _, tier := range tiers {
		if tier != TierMemory {
			t.Errorf("cached event tier %q, want %q", tier, TierMemory)
		}
	}
}

// TestPersistentCacheSkipsFailedRuns: failed runs must stay out of the
// persistent tier just as they stay out of the memory tier.
func TestPersistentCacheSkipsFailedRuns(t *testing.T) {
	store := newMapCache()
	r := NewRunner(RunnerOptions{Cache: store})
	r.testExec = func(w *workload.Workload, spec RunSpec) pipeline.Result {
		return pipeline.Result{Cycles: 1, Outcome: pipeline.OutcomeDeadlock}
	}
	if _, err := r.Evaluation(context.Background(), tinySpec(), []string{"astar"}); err != nil {
		t.Fatal(err)
	}
	if store.puts != 0 {
		t.Errorf("failed runs were persisted: %d puts", store.puts)
	}
}

func TestRunSuiteUnknown(t *testing.T) {
	r := NewRunner(RunnerOptions{})
	if _, err := r.RunSuite(context.Background(), SuiteID("nope"), Options{}); err == nil {
		t.Fatal("unknown suite must error")
	}
}

// TestRunSuiteTypedGetters checks each suite routes to its typed result.
func TestRunSuiteTypedGetters(t *testing.T) {
	r := NewRunner(RunnerOptions{})
	opts := Options{Spec: tinySpec(), Benches: []string{"astar"}}
	ctx := context.Background()

	res, err := r.RunSuite(ctx, SuiteFig5, opts)
	if err != nil || res.Evaluation() == nil {
		t.Fatalf("fig5: %v / %v", err, res)
	}
	if res.Text() == "" || !strings.Contains(res.Text(), "Average") {
		t.Error("fig5 text rendering empty")
	}
	res, err = r.RunSuite(ctx, SuiteLRU, opts)
	if err != nil || res.LRU() == nil {
		t.Fatalf("lru: %v / %v", err, res)
	}
	res, err = r.RunSuite(ctx, SuiteOverhead, opts)
	if err != nil || !strings.Contains(res.Text(), "TPBuf") {
		t.Fatalf("overhead: %v", err)
	}
	// fig5 + lru on one runner share the Origin and CacheHitTPBuf runs.
	if st := r.Stats(); st.Hits < 2 {
		t.Errorf("expected cross-suite cache hits, got %+v", st)
	}
}
