package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// defaultSSEKeepalive is how often an idle event stream emits a comment
// frame so intermediaries don't drop the connection (Config.SSEKeepalive
// overrides it).
const defaultSSEKeepalive = 15 * time.Second

// handleEvents streams a job's events as Server-Sent Events: first the full
// history (a late subscriber misses nothing), then live frames until the
// terminal state frame, after which the stream ends. Each frame is
//
//	event: state|progress
//	data: <Event JSON>
//
// Closing the request (client disconnect) unsubscribes; if the job asked
// for cancel_on_disconnect and this was its last watcher, it is canceled.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.lookup(r)
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such job"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeJSON(w, http.StatusInternalServerError, apiError{Error: "streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)

	history, ch, unsub := j.subscribe()
	defer unsub()

	for _, ev := range history {
		if err := writeSSE(w, ev); err != nil {
			return
		}
		if ev.Terminal() {
			fl.Flush()
			return
		}
	}
	fl.Flush()

	keepalive := time.NewTicker(s.cfg.SSEKeepalive)
	defer keepalive.Stop()
	for {
		select {
		case ev, ok := <-ch:
			if !ok {
				// Evicted as a slow consumer or the job finished and closed
				// the channel after its final frame was delivered.
				return
			}
			if err := writeSSE(w, ev); err != nil {
				return
			}
			fl.Flush()
			if ev.Terminal() {
				return
			}
		case <-keepalive.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// writeSSE renders one SSE frame.
func writeSSE(w http.ResponseWriter, ev Event) error {
	data, err := json.Marshal(ev)
	if err != nil {
		return err
	}
	_, err = fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, data)
	return err
}
