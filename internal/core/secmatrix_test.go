package core

import (
	"math/rand"
	"testing"
)

// entriesWith builds an issue-queue snapshot with the given occupied slots.
func entriesWith(n int, occupied map[int]EntryState) []EntryState {
	es := make([]EntryState, n)
	for i, e := range occupied {
		es[i] = e
	}
	return es
}

func TestSecMatrixPaperFormula(t *testing.T) {
	s := NewSecMatrix(8, ScopeBranchMem)
	// Slot 0: valid unissued branch. Slot 1: valid unissued load.
	// Slot 2: valid but already issued store. Slot 3: valid ALU op.
	snapshot := entriesWith(8, map[int]EntryState{
		0: {Valid: true, Issued: false, Class: ClassBranch},
		1: {Valid: true, Issued: false, Class: ClassMem},
		2: {Valid: true, Issued: true, Class: ClassMem},
		3: {Valid: true, Issued: false, Class: ClassOther},
	})
	// Dispatch a memory instruction into slot 4.
	s.OnDispatch(4, ClassMem, snapshot)
	if !s.Get(4, 0) {
		t.Error("must depend on unissued branch")
	}
	if !s.Get(4, 1) {
		t.Error("must depend on unissued memory")
	}
	if s.Get(4, 2) {
		t.Error("must NOT depend on already-issued memory")
	}
	if s.Get(4, 3) {
		t.Error("must NOT depend on ALU instruction")
	}
	if !s.HasHazard(4) {
		t.Error("row-OR must flag a hazard")
	}
	// Dispatch a non-memory instruction into slot 5: no row bits at all.
	s.OnDispatch(5, ClassOther, snapshot)
	if s.HasHazard(5) {
		t.Error("non-memory instruction cannot be security dependent")
	}
}

func TestSecMatrixBranchOnlyScope(t *testing.T) {
	s := NewSecMatrix(8, ScopeBranchOnly)
	snapshot := entriesWith(8, map[int]EntryState{
		0: {Valid: true, Class: ClassBranch},
		1: {Valid: true, Class: ClassMem},
	})
	s.OnDispatch(4, ClassMem, snapshot)
	if !s.Get(4, 0) {
		t.Error("branch-only scope must keep branch producers")
	}
	if s.Get(4, 1) {
		t.Error("branch-only scope must ignore memory producers")
	}
	if s.Scope() != ScopeBranchOnly || s.Scope().String() != "branch-only" {
		t.Error("scope accessors")
	}
	if ScopeBranchMem.String() != "branch+mem" {
		t.Error("scope name")
	}
}

func TestSecMatrixColumnClearIsDelayedOneCycle(t *testing.T) {
	s := NewSecMatrix(4, ScopeBranchMem)
	snapshot := entriesWith(4, map[int]EntryState{
		0: {Valid: true, Class: ClassBranch},
	})
	s.OnDispatch(1, ClassMem, snapshot)
	if !s.Peek(1) {
		t.Fatal("hazard expected")
	}
	// The branch issues. Same cycle: dependence still visible.
	s.OnIssue(0)
	if !s.Peek(1) {
		t.Fatal("column must clear at the NEXT cycle, not immediately")
	}
	s.ClockEdge()
	if s.Peek(1) {
		t.Fatal("column must be cleared after the clock edge")
	}
	if s.Stats.ColumnClears != 1 {
		t.Fatalf("column clears = %d", s.Stats.ColumnClears)
	}
}

func TestSecMatrixSquashClearsRowAndColumn(t *testing.T) {
	s := NewSecMatrix(4, ScopeBranchMem)
	snap := entriesWith(4, map[int]EntryState{
		0: {Valid: true, Class: ClassBranch},
	})
	s.OnDispatch(1, ClassMem, snap)
	snap2 := entriesWith(4, map[int]EntryState{
		0: {Valid: true, Class: ClassBranch},
		1: {Valid: true, Class: ClassMem},
	})
	s.OnDispatch(2, ClassMem, snap2)
	// Squash entry 1: row 1 gone, and column 1 gone from row 2.
	s.OnSquash(1)
	if s.Peek(1) {
		t.Fatal("squashed entry's row must clear")
	}
	if s.Get(2, 1) {
		t.Fatal("squashed entry's column must clear")
	}
	if !s.Get(2, 0) {
		t.Fatal("unrelated dependence must survive")
	}
}

func TestSecMatrixReallocationClearsStaleRow(t *testing.T) {
	s := NewSecMatrix(4, ScopeBranchMem)
	snap := entriesWith(4, map[int]EntryState{
		0: {Valid: true, Class: ClassBranch},
	})
	s.OnDispatch(1, ClassMem, snap)
	// Reallocate slot 1 for a non-memory instruction with an empty queue
	// snapshot: stale bits must not leak into the new occupant.
	s.OnDispatch(1, ClassOther, entriesWith(4, nil))
	if s.Peek(1) {
		t.Fatal("stale row bits leaked across reallocation")
	}
}

func TestSecMatrixIssueBeforeEdgePendingVector(t *testing.T) {
	s := NewSecMatrix(4, ScopeBranchMem)
	snap := entriesWith(4, map[int]EntryState{
		0: {Valid: true, Class: ClassBranch},
		2: {Valid: true, Class: ClassMem},
	})
	s.OnDispatch(1, ClassMem, snap)
	s.OnIssue(0)
	s.OnIssue(2)
	s.ClockEdge()
	if s.Peek(1) {
		t.Fatal("both columns must clear after one edge")
	}
	// Idempotent: further edges change nothing.
	s.ClockEdge()
}

func TestSecMatrixStats(t *testing.T) {
	s := NewSecMatrix(4, ScopeBranchMem)
	snap := entriesWith(4, map[int]EntryState{
		0: {Valid: true, Class: ClassBranch},
	})
	s.OnDispatch(1, ClassMem, snap)
	s.OnDispatch(2, ClassOther, snap)
	if s.Stats.Dispatches != 2 || s.Stats.MemDispatches != 1 || s.Stats.DepsRecorded != 1 {
		t.Fatalf("stats %+v", s.Stats)
	}
	s.HasHazard(1)
	if s.Stats.HazardsFlagged != 1 {
		t.Fatalf("hazards = %d", s.Stats.HazardsFlagged)
	}
}

func TestSecMatrixReset(t *testing.T) {
	s := NewSecMatrix(4, ScopeBranchMem)
	snap := entriesWith(4, map[int]EntryState{0: {Valid: true, Class: ClassBranch}})
	s.OnDispatch(1, ClassMem, snap)
	s.OnIssue(0)
	s.Reset()
	if s.Peek(1) {
		t.Fatal("reset must clear matrix")
	}
	s.ClockEdge() // pending flag must also be gone; no panic, no clears
	if s.Stats.ColumnClears != 0 {
		t.Fatal("reset must drop the pending update vector")
	}
}

func TestSecMatrixSelfDependenceExcluded(t *testing.T) {
	s := NewSecMatrix(4, ScopeBranchMem)
	// Snapshot claims slot 1 itself is a valid unissued memory instruction
	// (as it would be mid-dispatch); the formula must skip y==x.
	snap := entriesWith(4, map[int]EntryState{
		1: {Valid: true, Class: ClassMem},
	})
	s.OnDispatch(1, ClassMem, snap)
	if s.Get(1, 1) {
		t.Fatal("an instruction cannot be security dependent on itself")
	}
}

// TestSecMatrixDispatchMaskDifferential drives long random dispatch / issue
// / squash / clock-edge sequences through two matrices — one using the
// scalar OnDispatch reference, one using the word-wide OnDispatchMask — and
// requires identical matrix contents and statistics after every step.
func TestSecMatrixDispatchMaskDifferential(t *testing.T) {
	for _, tc := range []struct {
		n     int
		scope Scope
	}{{8, ScopeBranchMem}, {40, ScopeBranchMem}, {40, ScopeBranchOnly}, {64, ScopeBranchMem}, {65, ScopeBranchMem}, {128, ScopeBranchOnly}} {
		rng := rand.New(rand.NewSource(int64(1000*tc.n) + int64(tc.scope)))
		ref := NewSecMatrix(tc.n, tc.scope)
		fast := NewSecMatrix(tc.n, tc.scope)
		// Issue-queue model: class per occupied slot, ClassOther+!occ = free.
		occ := make([]bool, tc.n)
		cls := make([]Class, tc.n)
		snap := make([]EntryState, tc.n)
		mask := make([]uint64, fast.Words())
		rebuild := func(exclude int) {
			for i := range snap {
				snap[i] = EntryState{}
				if occ[i] && i != exclude {
					snap[i] = EntryState{Valid: true, Class: cls[i]}
				}
			}
			for k := range mask {
				mask[k] = 0
			}
			for i := range occ {
				if occ[i] && i != exclude && ref.IsProducer(cls[i]) {
					mask[i/64] |= 1 << (uint(i) % 64)
				}
			}
		}
		for step := 0; step < 6000; step++ {
			x := rng.Intn(tc.n)
			switch rng.Intn(5) {
			case 0: // dispatch into a (possibly recycled) slot
				occ[x] = true
				cls[x] = Class(rng.Intn(3))
				rebuild(x)
				ref.OnDispatch(x, cls[x], snap)
				fast.OnDispatchMask(x, cls[x], mask)
			case 1:
				if occ[x] {
					occ[x] = false
					ref.OnIssue(x)
					fast.OnIssue(x)
				}
			case 2:
				occ[x] = false
				ref.OnSquash(x)
				fast.OnSquash(x)
			case 3:
				ref.ClockEdge()
				fast.ClockEdge()
			case 4:
				if ref.HasHazard(x) != fast.HasHazard(x) {
					t.Fatalf("n=%d scope=%v step=%d: HasHazard(%d) diverged", tc.n, tc.scope, step, x)
				}
			}
			if ref.Stats != fast.Stats {
				t.Fatalf("n=%d scope=%v step=%d: stats diverged\nref  %+v\nfast %+v", tc.n, tc.scope, step, ref.Stats, fast.Stats)
			}
		}
		for x := 0; x < tc.n; x++ {
			for y := 0; y < tc.n; y++ {
				if ref.Get(x, y) != fast.Get(x, y) {
					t.Fatalf("n=%d scope=%v: bit (%d,%d) diverged", tc.n, tc.scope, x, y)
				}
			}
		}
	}
}
