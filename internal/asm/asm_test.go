package asm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"conspec/internal/isa"
)

// runProgram assembles, loads and interprets a builder's program.
func runProgram(t *testing.T, b *Builder, base uint64, maxInsts uint64) *isa.Interp {
	t.Helper()
	p, err := b.Assemble(base)
	if err != nil {
		t.Fatal(err)
	}
	mem := isa.NewFlatMem()
	p.Load(mem)
	in := isa.NewInterp(mem, base)
	if _, err := in.Run(maxInsts); err != nil {
		t.Fatal(err)
	}
	if !in.Halted {
		t.Fatal("program did not halt")
	}
	return in
}

func TestBuilderLoopSum(t *testing.T) {
	b := New()
	b.Li(S0, 0)  // sum
	b.Li(S1, 1)  // i
	b.Li(S2, 10) // n
	b.Bind("loop")
	b.Add(S0, S0, S1)
	b.Addi(S1, S1, 1)
	b.Bge(S2, S1, "loop")
	b.Halt()
	in := runProgram(t, b, 0x1000, 1000)
	if in.Regs[S0] != 55 {
		t.Fatalf("sum = %d, want 55", in.Regs[S0])
	}
}

func TestBuilderForwardLabel(t *testing.T) {
	b := New()
	b.Li(T0, 1)
	b.Beq(T0, T0, "skip") // always taken, forward
	b.Li(T1, 99)          // skipped
	b.Bind("skip")
	b.Li(T2, 7)
	b.Halt()
	in := runProgram(t, b, 0, 100)
	if in.Regs[T1] != 0 || in.Regs[T2] != 7 {
		t.Fatalf("t1=%d t2=%d, want 0 and 7", in.Regs[T1], in.Regs[T2])
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := New()
	b.Jmp("nowhere").Halt()
	if _, err := b.Assemble(0); err == nil {
		t.Fatal("expected undefined-label error")
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := New()
	b.Bind("x").Nop().Bind("x").Halt()
	if _, err := b.Assemble(0); err == nil {
		t.Fatal("expected duplicate-label error")
	}
}

func TestBuilderCallRet(t *testing.T) {
	b := New()
	b.Jal(RA, "fn")
	b.Addi(T1, T0, 1)
	b.Halt()
	b.Bind("fn")
	b.Li(T0, 41)
	b.Ret()
	in := runProgram(t, b, 0x2000, 100)
	if in.Regs[T1] != 42 {
		t.Fatalf("t1 = %d, want 42", in.Regs[T1])
	}
}

func TestLi64RoundTrip(t *testing.T) {
	f := func(v uint64) bool {
		b := New()
		b.Li64(A0, v)
		b.Halt()
		p, err := b.Assemble(0)
		if err != nil {
			return false
		}
		mem := isa.NewFlatMem()
		p.Load(mem)
		in := isa.NewInterp(mem, 0)
		if _, err := in.Run(20); err != nil {
			return false
		}
		return in.Regs[A0] == v
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLi64SpecificValues(t *testing.T) {
	for _, v := range []uint64{0, 1, 0xFFFF, 0x7FFFFFFF, 0x80000000,
		0xFFFFFFFF, 0x100000000, 0xDEADBEEFCAFEBABE, ^uint64(0),
		1 << 63, 0x0000FFFF00000000} {
		b := New()
		b.Li64(A0, v).Halt()
		p := b.MustAssemble(0)
		mem := isa.NewFlatMem()
		p.Load(mem)
		in := isa.NewInterp(mem, 0)
		if _, err := in.Run(20); err != nil {
			t.Fatal(err)
		}
		if in.Regs[A0] != v {
			t.Errorf("Li64(%#x) produced %#x", v, in.Regs[A0])
		}
	}
}

func TestLi64SmallIsOneInst(t *testing.T) {
	b := New()
	b.Li64(A0, 42)
	if b.Len() != 1 {
		t.Fatalf("Li64(42) expanded to %d instructions, want 1", b.Len())
	}
	b2 := New()
	b2.Li64(A0, ^uint64(4)) // -5: sign-extended 32-bit imm
	if b2.Len() != 1 {
		t.Fatalf("Li64(-5) expanded to %d instructions, want 1", b2.Len())
	}
}

func TestSymbols(t *testing.T) {
	b := New()
	b.Nop().Bind("here").Halt()
	p := b.MustAssemble(0x4000)
	if got := p.Symbols["here"]; got != 0x4008 {
		t.Fatalf("symbol = %#x, want 0x4008", got)
	}
	if pc, ok := b.PCOf(0x4000, "here"); !ok || pc != 0x4008 {
		t.Fatalf("PCOf = %#x,%v", pc, ok)
	}
	if _, ok := b.PCOf(0, "missing"); ok {
		t.Fatal("PCOf must report unbound labels")
	}
}

func TestProgramEndAndListing(t *testing.T) {
	b := New()
	b.Nop().Nop().Halt()
	p := b.MustAssemble(0x100)
	if p.End() != 0x100+3*isa.InstBytes {
		t.Fatalf("End = %#x", p.End())
	}
	if p.Listing() == "" {
		t.Fatal("empty listing")
	}
}

func TestParseTextBasics(t *testing.T) {
	b, err := ParseText(`
		# sum 1..n
		li   s0, 0
		li   s1, 1
		li   s2, 10
	loop:
		add  s0, s0, s1
		addi s1, s1, 1
		bge  s2, s1, loop   ; keep going
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	in := runProgram(t, b, 0x1000, 1000)
	if in.Regs[S0] != 55 {
		t.Fatalf("sum = %d, want 55", in.Regs[S0])
	}
}

func TestParseTextMemoryForms(t *testing.T) {
	b, err := ParseText(`
		li   a0, 0x2000
		li   a1, 0xAB
		st   a1, 16(a0)
		ld   a2, 16(a0)
		st1  a2, (a0)
		ld1  a3, 0(a0)
		clflush 16(a0)
		rdcycle a4
		fence
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	in := runProgram(t, b, 0, 100)
	if in.Regs[A2] != 0xAB || in.Regs[A3] != 0xAB {
		t.Fatalf("a2=%#x a3=%#x, want 0xAB", in.Regs[A2], in.Regs[A3])
	}
}

func TestParseTextJumps(t *testing.T) {
	b, err := ParseText(`
		jal  ra, fn
		addi t1, t0, 1
		halt
	fn: li   t0, 9
		jalr x0, 0(ra)
	`)
	if err != nil {
		t.Fatal(err)
	}
	in := runProgram(t, b, 0, 100)
	if in.Regs[T1] != 10 {
		t.Fatalf("t1 = %d, want 10", in.Regs[T1])
	}
}

func TestParseTextErrors(t *testing.T) {
	for _, src := range []string{
		"bogus x1, x2, x3",
		"add x1, x2",
		"ld x1, x2",       // not a memory operand
		"li x99, 0",       // bad register
		"beq x1, x2",      // missing target
		"addi x1, x2, zz", // bad immediate
	} {
		if _, err := ParseText(src); err == nil {
			t.Errorf("ParseText(%q) succeeded, want error", src)
		}
	}
}

func TestParseTextImm64(t *testing.T) {
	b, err := ParseText("li a0, 0xDEADBEEFCAFEBABE\nhalt")
	if err != nil {
		t.Fatal(err)
	}
	in := runProgram(t, b, 0, 100)
	if in.Regs[A0] != 0xDEADBEEFCAFEBABE {
		t.Fatalf("a0 = %#x", in.Regs[A0])
	}
}

// TestParseTextRoundTrip: disassembling any encodable instruction and
// re-parsing it yields the same instruction (for ops with stable syntax).
func TestParseTextRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 300; trial++ {
		in := isa.Inst{
			Op:  isa.Op(rng.Intn(int(isa.OpRdcycle) + 1)),
			Rd:  uint8(rng.Intn(isa.NumRegs)),
			Rs1: uint8(rng.Intn(isa.NumRegs)),
			Rs2: uint8(rng.Intn(isa.NumRegs)),
			Imm: int32(rng.Uint32() >> 8), // keep positive and small-ish
		}
		switch in.Op {
		case isa.OpLi:
			continue // li may legitimately expand differently
		}
		text := in.String()
		b, err := ParseText(text)
		if err != nil {
			t.Fatalf("reparse %q: %v", text, err)
		}
		p := b.MustAssemble(0)
		if len(p.Insts) != 1 {
			t.Fatalf("reparse %q: %d insts", text, len(p.Insts))
		}
		got := p.Insts[0]
		// Normalize fields the textual form does not carry.
		want := in
		switch {
		case want.Op == isa.OpNop || want.Op == isa.OpHalt || want.Op == isa.OpFence:
			want = isa.Inst{Op: want.Op}
		case want.Op == isa.OpRdcycle:
			want = isa.Inst{Op: want.Op, Rd: want.Rd}
		case want.Op.IsLoad(), want.Op == isa.OpJalr:
			want.Rs2 = 0
		case want.Op.IsStore():
			want.Rd = 0
		case want.Op == isa.OpClflush:
			want.Rd, want.Rs2 = 0, 0
		case want.Op == isa.OpJal:
			want.Rs1, want.Rs2 = 0, 0
		case want.Op.IsCondBranch():
			want.Rd = 0
		case want.Op >= isa.OpAddi && want.Op <= isa.OpSrai:
			want.Rs2 = 0
		default: // R-type ALU
			want.Imm = 0
		}
		if got != want {
			t.Fatalf("round trip %q: got %+v want %+v", text, got, want)
		}
	}
}

func TestLiAddr(t *testing.T) {
	b := New()
	b.LiAddr(A0, "target")
	b.Halt()
	b.Bind("target")
	b.Nop()
	p := b.MustAssemble(0x123456780)
	mem := isa.NewFlatMem()
	p.Load(mem)
	in := isa.NewInterp(mem, p.Base)
	if _, err := in.Run(20); err != nil {
		t.Fatal(err)
	}
	want := p.Symbols["target"]
	if in.Regs[A0] != want {
		t.Fatalf("LiAddr loaded %#x, want %#x", in.Regs[A0], want)
	}
}

func TestLiAddrAlwaysFiveInsts(t *testing.T) {
	b := New()
	b.Bind("t0")
	b.LiAddr(A0, "t0")
	if b.Len() != 5 {
		t.Fatalf("LiAddr emitted %d instructions, want 5", b.Len())
	}
	p := b.MustAssemble(0) // address 0: all immediates zero
	mem := isa.NewFlatMem()
	p.Load(mem)
	in := isa.NewInterp(mem, 0)
	for i := 0; i < 5; i++ {
		if err := in.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if in.Regs[A0] != 0 {
		t.Fatalf("address-0 LiAddr produced %#x", in.Regs[A0])
	}
}

func TestPadTo(t *testing.T) {
	b := New()
	b.Nop().Nop()
	b.PadTo(10)
	if b.Len() != 10 {
		t.Fatalf("PadTo left %d instructions", b.Len())
	}
	b.PadTo(5) // backwards: error at Assemble
	if _, err := b.Assemble(0); err == nil {
		t.Fatal("PadTo backwards must fail")
	}
}

func TestDataDirectives(t *testing.T) {
	b, err := ParseText(`
		.data 0x2000
		.word 0x1122334455667788
		.byte 0xAB
		.ascii "hi"
		li   a0, 0x2000
		ld   a1, 0(a0)
		ld1  a2, 8(a0)
		ld1  a3, 9(a0)
		halt
	`)
	if err != nil {
		t.Fatal(err)
	}
	in := runProgram(t, b, 0x100, 100)
	if in.Regs[A1] != 0x1122334455667788 {
		t.Fatalf("word = %#x", in.Regs[A1])
	}
	if in.Regs[A2] != 0xAB {
		t.Fatalf("byte = %#x", in.Regs[A2])
	}
	if in.Regs[A3] != 'h' {
		t.Fatalf("ascii = %#x", in.Regs[A3])
	}
}

func TestDataBuilderAPI(t *testing.T) {
	b := New()
	b.DataAt(0x3000).Word(7).Byte(9).Ascii("ok")
	b.Halt()
	p := b.MustAssemble(0)
	m := isa.NewFlatMem()
	p.Load(m)
	if m.Read(0x3000, 8) != 7 || m.ByteAt(0x3008) != 9 ||
		m.ByteAt(0x3009) != 'o' || m.ByteAt(0x300A) != 'k' {
		t.Fatal("data not materialized")
	}
}

func TestDataBeforeCursorFails(t *testing.T) {
	b := New()
	b.Word(1) // no DataAt yet
	b.Halt()
	if _, err := b.Assemble(0); err == nil {
		t.Fatal("data without a cursor must fail")
	}
}

func TestDirectiveErrors(t *testing.T) {
	for _, src := range []string{
		".data zz", ".word zz", ".byte 300", ".ascii noquotes", ".bogus 1",
		".word 1", // no .data first
	} {
		if _, err := ParseText(src); err == nil {
			t.Errorf("ParseText(%q) should fail", src)
		}
	}
}
