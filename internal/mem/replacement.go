package mem

import "fmt"

// ReplacementKind selects the victim-choice algorithm. True LRU is the
// paper's configuration; tree-PLRU and random are ablations — commodity
// cores usually ship PLRU, and §VII.A's replacement-state channel exists
// for any policy whose metadata speculative hits can perturb.
type ReplacementKind int

const (
	// ReplLRU is exact least-recently-used (timestamp-based).
	ReplLRU ReplacementKind = iota
	// ReplTreePLRU is the classic tree pseudo-LRU (ways must be a power
	// of two).
	ReplTreePLRU
	// ReplRandom picks victims with a deterministic xorshift PRNG and
	// keeps no use-ordering metadata at all (its replacement state leaks
	// nothing — the degenerate fix §VII.A's no-update policy approximates).
	ReplRandom
)

// String names the policy.
func (k ReplacementKind) String() string {
	switch k {
	case ReplTreePLRU:
		return "tree-plru"
	case ReplRandom:
		return "random"
	default:
		return "lru"
	}
}

// plruState holds one uint32 of tree bits per set (supports up to 32 ways).
type plruState struct {
	bits []uint32
	ways int
}

func newPLRU(sets, ways int) *plruState {
	if ways&(ways-1) != 0 || ways > 32 {
		panic(fmt.Sprintf("mem: tree-PLRU needs power-of-two ways <= 32, got %d", ways))
	}
	return &plruState{bits: make([]uint32, sets), ways: ways}
}

// touch points the tree away from way (marking it most recently used).
func (p *plruState) touch(set, way int) {
	node := 1
	levels := log2(p.ways)
	for l := levels - 1; l >= 0; l-- {
		bit := (way >> l) & 1
		if bit == 0 {
			p.bits[set] |= 1 << uint(node) // point right (away from 0-side)
		} else {
			p.bits[set] &^= 1 << uint(node)
		}
		node = node*2 + bit
	}
}

// victim walks the tree toward the pseudo-LRU leaf.
func (p *plruState) victim(set int) int {
	node := 1
	way := 0
	levels := log2(p.ways)
	for l := 0; l < levels; l++ {
		bit := int(p.bits[set]>>uint(node)) & 1
		way = way*2 + bit
		node = node*2 + bit
	}
	return way
}

func log2(v int) int {
	n := 0
	for 1<<n < v {
		n++
	}
	return n
}

// xorshift64 is the deterministic PRNG behind ReplRandom.
type xorshift64 uint64

func (x *xorshift64) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift64(v)
	return v
}
