package pipeline

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"conspec/internal/asm"
	"conspec/internal/core"
	"conspec/internal/isa"
	"conspec/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files instead of comparing")

// goldenKernel is a short, fully deterministic guest program: a loop over
// a small buffer with a data-dependent branch (mispredicts → squashed,
// tick-0 records) and loads issued under an unresolved branch (suspect
// annotations under tpbuf), ending in HALT.
func goldenKernel() *asm.Program {
	b := asm.New()
	b.Li(asm.A0, 0x40000) // buffer
	b.Li(asm.S0, 0)       // i
	b.Li(asm.S1, 7)       // index mask
	b.Li(asm.S2, 24)      // iterations
	b.Li(asm.S3, 0)       // checksum
	b.Bind("loop")
	b.And(asm.T0, asm.S0, asm.S1)
	b.Shli(asm.T0, asm.T0, 3)
	b.Add(asm.T1, asm.A0, asm.T0)
	b.St(asm.S3, asm.T1, 0)
	b.Ld(asm.T2, asm.T1, 0)
	b.Add(asm.S3, asm.S3, asm.T2)
	b.Addi(asm.S0, asm.S0, 1)
	b.Andi(asm.T4, asm.S3, 1)
	b.Beq(asm.T4, asm.Zero, "skip")
	b.Ld(asm.T5, asm.A0, 0)
	b.Add(asm.S3, asm.S3, asm.T5)
	b.Bind("skip")
	b.Blt(asm.S0, asm.S2, "loop")
	b.Halt()
	return b.MustAssemble(testBase)
}

// TestPipeViewGolden pins the O3PipeView trace byte-for-byte: the gem5
// record grammar, the cycle numbering, the retire/flush sentinels and the
// suspect/blocked disasm annotations are all format contracts consumed by
// external viewers (Konata, gem5's o3-pipeview.py), so any drift must be a
// conscious decision. Regenerate with:
//
//	go test ./internal/pipeline -run TestPipeViewGolden -update
func TestPipeViewGolden(t *testing.T) {
	prog := goldenKernel()
	backing := isa.NewFlatMem()
	prog.Load(backing)
	cpu := NewWithMemory(smallCore(),
		SecurityConfig{Mechanism: core.CacheHitTPBuf, Scope: core.ScopeBranchMem}, backing)
	var buf bytes.Buffer
	cpu.AttachSink(obs.NewPipeViewSink(&buf))
	cpu.SetPC(prog.Base)
	cpu.Run(100_000)
	if !cpu.Halted() {
		t.Fatal("golden kernel did not halt")
	}
	if err := cpu.FlushSinks(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "pipeview_golden.trace")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		gotL := bytes.Split(got, []byte("\n"))
		wantL := bytes.Split(want, []byte("\n"))
		line := 0
		for line < len(gotL) && line < len(wantL) && bytes.Equal(gotL[line], wantL[line]) {
			line++
		}
		g, w := "<eof>", "<eof>"
		if line < len(gotL) {
			g = string(gotL[line])
		}
		if line < len(wantL) {
			w = string(wantL[line])
		}
		t.Fatalf("pipeview trace drifted from golden at line %d:\n got: %s\nwant: %s\n(%d vs %d bytes; regenerate with -update if intended)",
			line+1, g, w, len(got), len(want))
	}
}
