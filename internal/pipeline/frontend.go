package pipeline

import (
	"conspec/internal/isa"
	"conspec/internal/mem"
	"conspec/internal/obs"
)

// fetchStage fetches up to FetchWidth instructions along the predicted path,
// predecodes control flow, and enqueues decoded uops for dispatch after the
// front-end pipeline delay. L1I misses stall fetch for the miss latency.
// With the §VII.B ICache-hit filter enabled, an L1I miss whose next-PC is
// unsafe (an unresolved branch is in flight) stalls WITHOUT refilling.
func (c *CPU) fetchStage() {
	if c.fetchHalted || c.cycle < c.fetchStallUntil {
		return
	}
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.fqLen >= c.fetchQCap {
			return
		}
		pc := c.fetchPC

		if c.sec.ICacheFilter && !c.hier.ProbeL1I(pc) && c.unresolvedBranchInFlight() {
			// Unsafe NPC missing L1I: the fetch request is not issued at
			// all; retry when the branches have resolved.
			c.stats.FetchStallsICacheFilter++
			return
		}
		r := c.hier.AccessInst(pc)
		if r.Level != mem.LevelL1 {
			// Miss: charge the full fill latency before instructions from
			// this line can enter the pipeline.
			c.fetchStallUntil = c.cycle + uint64(r.Latency)
			return
		}

		in := isa.Decode(c.hier.Backing.Read(pc, isa.InstBytes))
		if !in.Valid() {
			// Fetch ran off the program (almost always down a wrong path).
			// Stop fetching until a squash redirects.
			c.fetchHalted = true
			return
		}

		c.seq++
		u := c.allocUop()
		// Whole-struct assignment both resets a recycled uop and
		// initializes a fresh one.
		*u = uop{
			seq:   c.seq,
			pc:    pc,
			inst:  in,
			fu:    in.Op.Unit(),
			iqIdx: -1, ldqIdx: -1, stqIdx: -1,
			pdst: -1, psrc1: -1, psrc2: -1, oldPdst: -1,
			wait1: -1, wait2: -1,
			readyAt: c.cycle + uint64(c.cfg.FrontendDepth),
		}

		next := pc + isa.InstBytes
		endGroup := false
		switch {
		case in.Op == isa.OpHalt:
			c.fqPush(u)
			c.fetchHalted = true
			return
		case in.Op == isa.OpJal:
			// Direct jump: resolved at predecode, never speculated.
			next = pc + uint64(int64(in.Imm))
			if in.Rd != 0 {
				c.bp.PushRAS(pc + isa.InstBytes)
			}
			endGroup = true
		case in.Op == isa.OpJalr:
			u.isBranch = true
			u.bpCP = c.bp.Checkpoint()
			u.ghrAtPred = u.bpCP.GHR
			var target uint64
			var ok bool
			if in.Rd == 0 && in.Rs1 == 1 { // return: jalr x0, 0(ra)
				target, ok = c.bp.PopRAS()
			} else {
				target, ok = c.bp.PredictTarget(pc)
			}
			if in.Rd != 0 {
				c.bp.PushRAS(pc + isa.InstBytes)
			}
			if !ok {
				target = pc + isa.InstBytes // cold: guess fall-through
			}
			u.predTaken = true
			u.predTarget = target
			next = target
			endGroup = true
		case in.Op.IsCondBranch():
			u.isBranch = true
			u.bpCP = c.bp.Checkpoint()
			u.ghrAtPred = u.bpCP.GHR
			taken := c.bp.PredictCond(pc)
			u.predTaken = taken
			if taken {
				u.predTarget = pc + uint64(int64(in.Imm))
				next = u.predTarget
				endGroup = true
			} else {
				u.predTarget = pc + isa.InstBytes
			}
		}

		c.traceEvent(obs.EvFetch, u)
		c.fr.Record(c.cycle, obs.FlightFetch, u.seq, u.pc, 0, false)
		c.fqPush(u)
		c.fetchPC = next
		if endGroup {
			return // taken control flow ends the fetch group
		}
	}
}

// dispatchStage renames and dispatches fetched uops in order, allocating
// ROB, issue-queue and LSQ entries, and initializes the security dependence
// matrix row for memory instructions.
func (c *CPU) dispatchStage() {
	for n := 0; n < c.cfg.FetchWidth; n++ {
		if c.fqLen == 0 {
			return
		}
		u := c.fetchQ[c.fqHead]
		if u.readyAt > c.cycle || c.robFull() {
			return
		}
		op := u.inst.Op

		needsIQ := op != isa.OpNop && op != isa.OpHalt && op != isa.OpFence
		var iqSlot, ldqSlot, stqSlot = -1, -1, -1
		if needsIQ {
			iqSlot = maskFirstSet(c.iqFree)
			if iqSlot < 0 {
				return
			}
		}
		if op.IsLoad() {
			ldqSlot = maskFirstSet(c.ldqFree)
			if ldqSlot < 0 {
				return
			}
		}
		if op.IsStore() {
			stqSlot = maskFirstSet(c.stqFree)
			if stqSlot < 0 {
				return
			}
		}
		useRs1, useRs2 := u.inst.Sources()
		if u.inst.HasDest() && len(c.freeList) == 0 {
			return
		}

		// All resources available: commit to dispatching this uop.
		c.fqPop()
		if useRs1 {
			u.psrc1 = c.renameMap[u.inst.Rs1]
		}
		if useRs2 {
			u.psrc2 = c.renameMap[u.inst.Rs2]
		}
		if u.inst.HasDest() {
			u.archRd = u.inst.Rd
			u.oldPdst = c.renameMap[u.inst.Rd]
			p := c.freeList[len(c.freeList)-1]
			c.freeList = c.freeList[:len(c.freeList)-1]
			u.pdst = p
			c.physReady[p] = false
			// Drop wakeup registrations left on p by a squashed former
			// writer: a register can only gain waiters again once it is
			// re-allocated as a destination, which is exactly now.
			c.truncWaiters(p)
			c.renameMap[u.inst.Rd] = p
		}

		if c.unresolvedBranchInFlight() {
			c.stats.UnresolvedBranchAtDispatch++
		}

		c.traceEvent(obs.EvDispatch, u)
		c.fr.Record(c.cycle, obs.FlightDispatch, u.seq, u.pc, 0, false)
		c.robPush(u)
		u.dispatched = true
		u.dispatchCycle = c.cycle
		if u.isBranch {
			c.unresolvedBranches++
		}
		if c.def.SerializeBranches && u.isBranch && c.serializeSeq == 0 {
			// Fence defense: a newly dispatched branch is the youngest, so it
			// only becomes the watermark when no older branch is unresolved.
			c.serializeSeq = u.seq
		}

		switch op {
		case isa.OpNop, isa.OpHalt:
			u.completed = true
		case isa.OpFence:
			if c.fenceSeq == 0 {
				c.fenceSeq = u.seq
			}
		}

		if iqSlot >= 0 {
			c.iq[iqSlot] = u
			u.iqIdx = iqSlot
			c.iqCount++
			maskClear(c.iqFree, iqSlot)
			if c.secmat != nil {
				// prodMask is exactly the snapshot the §V.B formula consumes:
				// every occupied, unissued producer-class slot except iqSlot
				// (the new occupant's bit is only set below).
				c.secmat.OnDispatchMask(iqSlot, u.class(), c.prodMask)
				c.fr.Record(c.cycle, obs.FlightSecRowSet, u.seq, u.pc, uint64(iqSlot), false)
				if c.secmat.IsProducer(u.class()) {
					maskSet(c.prodMask, iqSlot)
				}
			}
			c.linkWakeups(u)
		}
		if ldqSlot >= 0 {
			c.ldq[ldqSlot] = u
			u.ldqIdx = ldqSlot
			maskClear(c.ldqFree, ldqSlot)
			c.tpbuf.Allocate(ldqSlot)
			c.fr.Record(c.cycle, obs.FlightTPBufAlloc, u.seq, u.pc, uint64(ldqSlot), false)
		}
		if stqSlot >= 0 {
			c.stq[stqSlot] = u
			u.stqIdx = stqSlot
			maskClear(c.stqFree, stqSlot)
			c.tpbuf.Allocate(c.cfg.LDQ + stqSlot)
			c.fr.Record(c.cycle, obs.FlightTPBufAlloc, u.seq, u.pc, uint64(c.cfg.LDQ+stqSlot), false)
			c.noteStoreDispatched(u)
		}
	}
}
