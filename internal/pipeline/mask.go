package pipeline

import "math/bits"

// Slot bitmap helpers for the free-slot masks and the security producer
// mask. Bit i of word i/64 corresponds to structure slot i.

// newFullMask returns a mask of n slots with every valid bit set.
func newFullMask(n int) []uint64 {
	m := make([]uint64, (n+63)/64)
	for i := range m {
		m[i] = ^uint64(0)
	}
	if r := uint(n) % 64; r != 0 {
		m[len(m)-1] = (uint64(1) << r) - 1
	}
	return m
}

func maskSet(m []uint64, i int)   { m[i>>6] |= 1 << (uint(i) & 63) }
func maskClear(m []uint64, i int) { m[i>>6] &^= 1 << (uint(i) & 63) }
func maskHas(m []uint64, i int) bool {
	return m[i>>6]&(1<<(uint(i)&63)) != 0
}

// maskFirstSet returns the lowest set bit index, or -1 when the mask is
// empty — the bitmap form of the "first nil slot" allocation scan.
func maskFirstSet(m []uint64) int {
	for k, w := range m {
		if w != 0 {
			return k<<6 + bits.TrailingZeros64(w)
		}
	}
	return -1
}
