package exp

import (
	"reflect"
	"testing"

	"conspec/internal/core"
	"conspec/internal/pipeline"
	"conspec/internal/workload"
)

// TestRunWorkloadUnaffectedByStallSkip drives the full exp path — warmup,
// stat reset, chunked runPhase (so fast-forward interacts with the 1<<16
// chunk boundaries), metrics sampling — with the stall skipper on and off,
// for a defense with heavy stall content and for the unprotected machine.
// The Results must be interchangeable modulo the skip meta-counters, which
// is what makes memoized cache entries (keyed on inputs only) valid across
// both configurations.
func TestRunWorkloadUnaffectedByStallSkip(t *testing.T) {
	defer pipeline.SetDefaultStallSkip(true)

	p, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("mcf profile missing")
	}
	w := workload.MustGenerate(p)
	for _, name := range []string{"origin", "cachehit"} {
		d, err := core.LookupDefense(name)
		if err != nil {
			t.Fatal(err)
		}
		spec := fastSpec()
		spec.Sec = SecFor(d)
		spec.MetricsInterval = 1024

		pipeline.SetDefaultStallSkip(true)
		fast := RunWorkload(w, spec)
		pipeline.SetDefaultStallSkip(false)
		slow := RunWorkload(w, spec)

		if slow.Stages.SkipSpans != 0 || slow.Stages.SkippedCycles != 0 {
			t.Fatalf("%s: skip-disabled run recorded skips: %+v", name, slow.Stages)
		}
		masked := fast
		masked.Stages.SkippedCycles = 0
		masked.Stages.SkipSpans = 0
		if !reflect.DeepEqual(masked, slow) {
			t.Errorf("%s: Result diverged under skip:\n  skip   %+v\n  noskip %+v",
				name, masked, slow)
		}
	}
}
