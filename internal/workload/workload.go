// Package workload generates the 22 SPEC CPU2006-shaped synthetic kernels
// the evaluation runs in place of the real suite (reference inputs cannot be
// run inside the simulator). Each benchmark is described by a Profile whose
// knobs target the microarchitectural behaviours Table V shows actually
// drive the results:
//
//   - HotFrac splits memory traffic between a small L1-resident region and a
//     large cold region, steering the L1D hit rate toward the paper's
//     per-benchmark "L1 Hit Rate" column.
//   - ColdPattern selects sequential (page-local) or random (page-hopping)
//     cold traffic, steering the S-Pattern mismatch rate: page-local misses
//     mostly mismatch (safe under TPBuf, lbm-like), page-hopping misses
//     mostly match (unsafe, libquantum-like).
//   - BranchNoise adds data-dependent 50/50 branches (astar/gobmk-like
//     misprediction rates).
//   - StoreFrac and ChaseFrac model store pressure (memory-memory
//     dependences) and pointer chasing (mcf-like).
//
// Generated programs are self-contained infinite loops over an LCG-driven
// body; the harness runs them for a fixed committed-instruction budget after
// a warmup period, mirroring the paper's warmup+measure methodology.
package workload

import (
	"fmt"
	"math/rand"

	"conspec/internal/asm"
	"conspec/internal/isa"
)

// ColdPattern selects how the cold region is walked.
type ColdPattern int

const (
	// ColdSeq walks the cold region sequentially with a small stride:
	// consecutive misses fall on the same page (high S-Pattern mismatch).
	ColdSeq ColdPattern = iota
	// ColdRandom jumps to a random cold address every access: consecutive
	// misses fall on different pages (low S-Pattern mismatch).
	ColdRandom
	// ColdPageHop walks sequentially but with a page-sized stride: every
	// access lands on a new page (lowest mismatch).
	ColdPageHop
)

// Profile describes one synthetic benchmark.
type Profile struct {
	Name string

	// HotFrac in [0,1] is the fraction of memory accesses aimed at the
	// L1-resident hot region; the remainder goes to the cold region.
	HotFrac float64
	// HotBytes and ColdBytes size the two regions (powers of two).
	HotBytes  int
	ColdBytes int
	// ColdPattern selects the cold walk; ColdStride applies to ColdSeq.
	ColdPattern ColdPattern
	ColdStride  int

	// ChaseFrac in [0,1] replaces that fraction of cold accesses with a
	// dependent pointer chase through the cold region.
	ChaseFrac float64
	// StoreFrac in [0,1] is the fraction of memory operations that are
	// stores (to the same region mix).
	StoreFrac float64

	// MemBlocks is the number of memory operations per loop iteration;
	// FillerALU is the number of independent ALU ops inserted per memory
	// operation (lower = more memory-bound).
	MemBlocks int
	FillerALU int
	// ChainDepth adds a serial dependence chain per iteration (lower ILP).
	ChainDepth int

	// NoisyBranches per iteration flip on LCG bits (50% mispredict until
	// the counters dither); PredictableBranches are never taken.
	NoisyBranches       int
	PredictableBranches int

	// PhaseLen holds the hot/cold region decision for this many consecutive
	// iterations (a power of two; 0 or 1 re-decides every iteration).
	// Streaming applications run in long phases, which is also what gives
	// them their high S-Pattern mismatch rates: during a cold streaming
	// phase the only in-flight accesses are to neighbouring pages.
	PhaseLen int

	// LaggardEvery, when non-zero, inserts one "laggard" access every that
	// many iterations (a power of two): a load whose address depends on the
	// accumulator, which chains on cold-miss data. The laggard sits
	// unissued in the issue queue for roughly a memory latency — the
	// long-latency producer that makes Conditional Speculation's blocking
	// expensive under Baseline (everything younger waits) yet nearly free
	// under the Cache-hit filter (younger HITS keep flowing). SPEC codes
	// get this structure from loads feeding address computations across
	// loop-carried dependences.
	LaggardEvery int

	// LaggardChain, when non-zero, replaces the laggard's cold anchor with
	// an ALU dependence chain of that many operations seeded by a hot load:
	// the laggard stays unissued for tens of cycles (not hundreds), and —
	// critically — nothing about it misses the cache, so the Cache-hit
	// filter recovers essentially all of the Baseline's cost. This is the
	// hmmer/dealII structure: long arithmetic recurrences feeding addresses.
	LaggardChain int

	// ColdDepFrac is the fraction of blocks that are dependent loads INTO
	// THE CURRENT REGION: address = selected base + (recent load value
	// masked to a page offset). In cold streaming phases these chain on
	// miss data (a long-latency unissued producer, like LaggardEvery) but
	// their targets stay on the stream's own page — so under TPBuf the
	// blocked youngers re-qualify as safe (no S-Pattern), reproducing the
	// paper's "TPBuf rescues lbm" behaviour.
	ColdDepFrac float64

	// IndirectFrac is the fraction of load blocks whose ADDRESS depends on
	// the previous load's value (a[b[i]]-style indirection). Indirection is
	// what keeps memory instructions waiting in the issue queue — and
	// therefore what gives the security dependence matrix real teeth: a
	// suspect access behind an unissued indirect producer genuinely stalls.
	IndirectFrac float64
	// LoadBranchFrac makes that fraction of noisy branches read their
	// condition from loaded data instead of the LCG register, so branch
	// resolution (and dependence clearance) waits on the memory system.
	LoadBranchFrac float64

	// FenceAfterBranches models the LFENCE software mitigation (§VIII):
	// the "compiler" inserts a speculation fence after every conditional
	// branch, so no memory access starts under an unresolved branch. Run on
	// the UNPROTECTED core, this is the software baseline the hardware
	// mechanisms are compared against.
	FenceAfterBranches bool

	// CodeSegments, when > 1, replicates the loop body into that many code
	// segments and dispatches through an indirect jump to an LCG-chosen
	// segment each iteration. With enough segments the code working set
	// exceeds the L1 ICache and fetch misses become common — the pressure
	// the §VII.B ICache-hit filter needs to matter at all.
	CodeSegments int
	// SegmentPadding appends that many NOPs to each segment (code bloat).
	SegmentPadding int

	// PaperL1HitRate is Table V's Origin L1 hit rate for this benchmark,
	// recorded for EXPERIMENTS.md comparison (not used by the generator).
	PaperL1HitRate float64
}

// Workload is a generated, loadable benchmark program.
type Workload struct {
	Profile Profile
	Prog    *asm.Program
	// Entry is the first executed address.
	Entry uint64
	// hot/cold region bases used by Seed.
	hotBase, coldBase uint64
}

// Register roles inside generated code (documented for the disassembly
// reader; the generator owns all registers).
const (
	rLCG    = asm.S2      // linear congruential generator state
	rHot    = asm.S3      // hot region base
	rCold   = asm.S4      // cold region base
	rSeq    = asm.S5      // sequential cold offset
	rChase  = asm.S6      // pointer-chase cursor
	rAcc    = asm.S7      // accumulator (serial chain)
	rK1     = asm.A4      // LCG multiplier
	rColdM  = asm.A3      // cold offset mask
	rThresh = asm.A2      // cold-selection threshold (16-bit scale)
	rHotM   = asm.S0      // hot offset mask
	rHotB   = asm.S1      // this iteration's hot base candidate
	rColdB  = asm.Reg(16) // this iteration's cold base candidate
	rSel    = asm.Reg(17) // selected base for this iteration's accesses
	rIdxM   = asm.A5      // index mask for dependent (indirect) addressing
	rSelM   = asm.Reg(26) // phase-held hot/cold select mask
	rIter   = asm.Reg(27) // iteration counter (phase clock)
	rInd    = asm.Reg(24) // indirect-chain cursor (hot index data)
)

const (
	codeBase = 0x40_0000
	segTable = 0x3F_0000 // segment address table (CodeSegments > 1)
	hotBase  = 0x100_0000
	coldBase = 0x4000_0000
)

// Generate assembles the kernel for p.
// emitIteration emits one loop-body instance; id disambiguates labels when
// the body is replicated across code segments.
func emitIteration(b *asm.Builder, p Profile, id string) {
	// One LCG step per iteration feeds all random decisions.
	b.Mul(rLCG, rLCG, rK1)
	b.I(isa.OpAddi, rLCG, rLCG, 12345)

	// Hot/cold region selection happens ONCE per iteration, branchlessly:
	// compute both candidate bases, compare an LCG window against the cold
	// threshold, and mask-select. Individual accesses then cost one or two
	// instructions each (static offsets off the selected base), which keeps
	// the generated code's memory density at SPEC-like levels — essential
	// for the issue queue to actually contain older unissued memory
	// instructions when younger ones dispatch (the security dependence
	// matrix's entire raison d'être).
	stride := p.ColdStride
	if p.ColdPattern == ColdPageHop {
		stride = isa.PageSize + 64
	}
	if stride <= 0 {
		stride = 64
	}
	// Advance the sequential cold cursor by the whole iteration's window.
	b.Addi(rSeq, rSeq, int32(stride*p.MemBlocks))
	b.And(rSeq, rSeq, rColdM)
	// Hot candidate: random line in the hot region.
	b.Shri(asm.T0, rLCG, 13)
	b.And(asm.T0, asm.T0, rHotM)
	b.Add(rHotB, rHot, asm.T0)
	// Cold candidate.
	if p.ColdPattern == ColdRandom {
		b.Shri(asm.T1, rLCG, 27)
		b.And(asm.T1, asm.T1, rColdM)
		b.Add(rColdB, rCold, asm.T1)
	} else {
		b.Add(rColdB, rCold, rSeq)
	}
	// Select: mask = (lcgWindow < threshold) ? ~0 : 0. With PhaseLen > 1
	// the decision is re-drawn only at phase boundaries, so the workload
	// streams in hot or cold phases like real applications do.
	b.Addi(rIter, rIter, 1)
	if p.PhaseLen > 1 {
		b.Andi(asm.T5, rIter, int32(p.PhaseLen-1))
		b.Bne(asm.T5, asm.Zero, asm.Label("keep_sel"+id))
	}
	b.Shri(asm.T5, rLCG, 33)
	b.Andi(asm.T5, asm.T5, 0xFFFF)
	b.R(isa.OpSltu, asm.T5, asm.T5, rThresh)
	b.Sub(rSelM, asm.Zero, asm.T5)
	if p.PhaseLen > 1 {
		b.Bind(asm.Label("keep_sel" + id))
		if p.FenceAfterBranches {
			b.Fence()
		}
	}
	b.Xor(asm.T6, rHotB, rColdB)
	b.And(asm.T6, asm.T6, rSelM)
	b.Xor(rSel, rHotB, asm.T6)

	storeEvery := ratioEvery(p.StoreFrac)
	chaseEvery := ratioEvery(p.ChaseFrac)
	indirectEvery := ratioEvery(p.IndirectFrac)
	coldDepEvery := ratioEvery(p.ColdDepFrac)
	loadBranchEvery := ratioEvery(p.LoadBranchFrac)
	acc := []asm.Reg{asm.T2, asm.T3, asm.T4}

	for blk := 0; blk < p.MemBlocks; blk++ {
		isStore := storeEvery > 0 && (blk+1)%storeEvery == 0
		isChase := chaseEvery > 0 && (blk+1)%chaseEvery == 0
		isIndirect := indirectEvery > 0 && (blk+2)%indirectEvery == 0
		isColdDep := coldDepEvery > 0 && (blk+3)%coldDepEvery == 0
		off := int32(blk * stride)

		switch {
		case isColdDep:
			t := acc[blk%len(acc)]
			b.Andi(asm.T6, acc[(blk+1)%len(acc)], 0xFC0)
			b.Add(asm.T6, rSel, asm.T6)
			b.Ld(t, asm.T6, 0)
		case isChase:
			b.Ld(rChase, rChase, 0) // dependent pointer chase
			b.Add(rAcc, rAcc, rChase)
		case isStore:
			b.St(rAcc, rSel, off)
		case isIndirect:
			// a[b[i]]-style dependent addressing through HOT index data:
			// each indirect load's address comes from the previous indirect
			// load's value, forming hit-latency chains (the hmmer/dealII
			// dependence structure) without chaining onto cold misses —
			// real index arrays are hot.
			b.And(asm.T6, rInd, rIdxM)
			b.Add(asm.T6, rHot, asm.T6)
			b.Ld(rInd, asm.T6, 0)
		default:
			t := acc[blk%len(acc)]
			b.Ld(t, rSel, off)
			if blk%2 == 0 {
				b.Add(rAcc, rAcc, t) // consume half the loads
			}
		}

		for f := 0; f < p.FillerALU; f++ {
			t := acc[f%len(acc)]
			b.Addi(t, t, int32(f+1))
		}
	}

	if p.LaggardEvery > 0 {
		if p.LaggardEvery > 1 {
			b.Andi(asm.T5, rIter, int32(p.LaggardEvery-1))
			b.Bne(asm.T5, asm.Zero, asm.Label("skip_laggard"+id))
		}
		if p.LaggardChain > 0 {
			// Chain anchor: a hot load followed by a serial ALU chain; the
			// dependent load below waits tens of cycles in the issue queue.
			b.Ld(asm.T6, rHot, 64)
			for k := 0; k < p.LaggardChain; k++ {
				b.Addi(asm.T6, asm.T6, 1)
			}
		} else {
			// Cold anchor: an always-cold load (fresh lines via the LCG);
			// the dependent load below waits ~a full miss latency.
			b.Shri(asm.T6, rLCG, 21)
			b.And(asm.T6, asm.T6, rColdM)
			b.Add(asm.T6, rCold, asm.T6)
			b.Ld(asm.T2, asm.T6, 0)
			b.And(asm.T6, asm.T2, rIdxM)
		}
		b.And(asm.T6, asm.T6, rIdxM)
		b.Add(asm.T6, rHot, asm.T6)
		b.Ld(asm.T2, asm.T6, 0)
		if p.LaggardEvery > 1 {
			b.Bind(asm.Label("skip_laggard" + id))
			if p.FenceAfterBranches {
				b.Fence()
			}
		}
	}

	for i := 0; i < p.NoisyBranches; i++ {
		lbl := asm.Label(fmt.Sprintf("noisy%s_%d", id, i))
		if loadBranchEvery > 0 && (i+1)%loadBranchEvery == 0 {
			// Condition depends on loaded data: the branch cannot resolve
			// until the memory system delivers it.
			b.Andi(asm.T5, acc[i%len(acc)], 1)
		} else {
			bit := int32(20 + i*3) // independent LCG bits per branch
			b.Shri(asm.T5, rLCG, bit)
			b.Andi(asm.T5, asm.T5, 1)
		}
		b.Beq(asm.T5, asm.Zero, lbl)
		b.Addi(rAcc, rAcc, 1)
		b.Bind(lbl)
		if p.FenceAfterBranches {
			b.Fence()
		}
	}
	for i := 0; i < p.PredictableBranches; i++ {
		lbl := asm.Label(fmt.Sprintf("pred%s_%d", id, i))
		b.Blt(rHot, asm.Zero, lbl) // never taken
		b.Bind(lbl)
		if p.FenceAfterBranches {
			b.Fence()
		} else {
			b.Nop()
		}
	}

	for i := 0; i < p.ChainDepth; i++ {
		b.Addi(rAcc, rAcc, 1) // serial chain on rAcc
	}

}

func Generate(p Profile) (*Workload, error) {
	if err := validate(p); err != nil {
		return nil, err
	}
	b := asm.New()

	// Prologue.
	b.Li64(rLCG, 0x9E3779B97F4A7C15)
	b.Li64(rK1, 6364136223846793005)
	b.Li64(rHot, hotBase)
	b.Li64(rCold, coldBase)
	b.Li64(rColdM, uint64(p.ColdBytes-1)&^7)
	b.Li64(rHotM, uint64(p.HotBytes-1)&^63)
	b.Li64(rIdxM, uint64(p.HotBytes-1)&^63)
	b.Li(rThresh, int32((1-p.HotFrac)*65536))
	b.Li(rSeq, 0)
	b.Li(rIter, 0)
	b.Li(rSelM, 0)
	b.Li(rInd, 0)
	b.R(isa.OpAdd, rChase, rCold, asm.Zero) // chase cursor starts at cold base
	b.Li(rAcc, 0)

	if p.CodeSegments > 1 {
		// Segmented form: each iteration jumps through a memory-resident
		// table to an LCG-chosen copy of the body. With enough copies the
		// code footprint exceeds the L1 ICache, creating the fetch misses
		// the §VII.B ICache-hit filter exists for.
		b.Li64(asm.A0, segTable)
		b.Bind("loop")
		b.Shri(asm.T6, rLCG, 45)
		b.Andi(asm.T6, asm.T6, int32(p.CodeSegments-1))
		b.Shli(asm.T6, asm.T6, 3)
		b.Add(asm.T6, asm.A0, asm.T6)
		b.Ld(asm.T6, asm.T6, 0)
		b.Jalr(asm.Zero, asm.T6, 0) // indirect dispatch into a segment
		for seg := 0; seg < p.CodeSegments; seg++ {
			b.Bind(asm.Label(fmt.Sprintf("seg%d", seg)))
			emitIteration(b, p, fmt.Sprintf("s%d", seg))
			for n := 0; n < p.SegmentPadding; n++ {
				b.Nop()
			}
			b.Jmp("loop")
		}
	} else {
		b.Bind("loop")
		emitIteration(b, p, "")
		b.Jmp("loop")
	}

	prog, err := b.Assemble(codeBase)
	if err != nil {
		return nil, err
	}
	return &Workload{
		Profile: p, Prog: prog, Entry: codeBase,
		hotBase: hotBase, coldBase: coldBase,
	}, nil
}

// ratioEvery converts a fraction into an "every Nth block" period; 0 means
// never.
func ratioEvery(frac float64) int {
	if frac <= 0 {
		return 0
	}
	if frac >= 1 {
		return 1
	}
	return int(1/frac + 0.5)
}

func validate(p Profile) error {
	if p.Name == "" {
		return fmt.Errorf("workload: profile without a name")
	}
	if p.MemBlocks <= 0 {
		return fmt.Errorf("workload %s: MemBlocks must be positive", p.Name)
	}
	for _, sz := range []int{p.HotBytes, p.ColdBytes} {
		if sz <= 0 || sz&(sz-1) != 0 {
			return fmt.Errorf("workload %s: region sizes must be powers of two, got %d", p.Name, sz)
		}
	}
	if p.ColdPattern == ColdSeq && p.ColdStride <= 0 {
		return fmt.Errorf("workload %s: ColdSeq needs a positive stride", p.Name)
	}
	if p.PhaseLen > 1 && p.PhaseLen&(p.PhaseLen-1) != 0 {
		return fmt.Errorf("workload %s: PhaseLen must be a power of two", p.Name)
	}
	if p.LaggardEvery > 1 && p.LaggardEvery&(p.LaggardEvery-1) != 0 {
		return fmt.Errorf("workload %s: LaggardEvery must be a power of two", p.Name)
	}
	if p.CodeSegments > 1 && p.CodeSegments&(p.CodeSegments-1) != 0 {
		return fmt.Errorf("workload %s: CodeSegments must be a power of two", p.Name)
	}
	return nil
}

// MustGenerate is Generate for known-good (package-internal) profiles.
func MustGenerate(p Profile) *Workload {
	w, err := Generate(p)
	if err != nil {
		panic(err)
	}
	return w
}

// Load installs the program and seeds the data regions: the chase ring is a
// random cycle through the cold region so dependent chases visit every node.
func (w *Workload) Load(m *isa.FlatMem) {
	w.Prog.Load(m)
	// Segment dispatch table (segmented kernels only).
	for seg := 0; seg < w.Profile.CodeSegments; seg++ {
		if addr, ok := w.Prog.Symbols[asm.Label(fmt.Sprintf("seg%d", seg))]; ok {
			m.Write(segTable+uint64(seg)*8, 8, addr)
		}
	}
	// Seed a pointer ring through the cold region at 4KB spacing (the exact
	// granularity matters less than it being a single full-length cycle).
	const step = 4096
	n := w.Profile.ColdBytes / step
	if n > 4096 {
		n = 4096
	}
	if n > 1 {
		rng := rand.New(rand.NewSource(int64(len(w.Profile.Name)) * 7919))
		perm := rng.Perm(n)
		for i := 0; i < n; i++ {
			from := w.coldBase + uint64(perm[i])*step
			to := w.coldBase + uint64(perm[(i+1)%n])*step
			m.Write(from, 8, to)
		}
	}
	// Pseudo-random hot data: indirect addressing reads these as indices,
	// so every line carries a distinct, well-spread value.
	rng2 := rand.New(rand.NewSource(0x5EED))
	for off := 0; off < w.Profile.HotBytes; off += 64 {
		m.Write(w.hotBase+uint64(off), 8, rng2.Uint64())
	}
}

// Names lists the benchmark names in Table V order.
func Names() []string {
	ps := Profiles()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// ByName returns the profile with the given name.
func ByName(name string) (Profile, bool) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

// Profiles returns the 22 SPEC-named profiles in Table V order. The knob
// assignments are derived from the paper's per-benchmark measurements (L1
// hit rate, S-Pattern mismatch rate, branch behaviour described in §VI.C).
func Profiles() []Profile {
	kb := func(n int) int { return n * 1024 }
	mb := func(n int) int { return n * 1024 * 1024 }
	ps := []Profile{
		// astar: path-finding; decent hit rate, notoriously bad branches.
		{Name: "astar", HotFrac: 0.95, HotBytes: kb(32), ColdBytes: mb(16),
			ColdPattern: ColdSeq, ColdStride: 192, StoreFrac: 0.2,
			MemBlocks: 6, FillerALU: 1, ChainDepth: 2, NoisyBranches: 1,
			PredictableBranches: 4, PhaseLen: 4, LaggardEvery: 8, IndirectFrac: 0.4, LoadBranchFrac: 1,
			PaperL1HitRate: 0.944},
		// bwaves: dense FP stencils; streaming misses hop pages.
		{Name: "bwaves", HotFrac: 0.84, HotBytes: kb(32), ColdBytes: mb(32),
			ColdPattern: ColdPageHop, StoreFrac: 0.25, MemBlocks: 8,
			FillerALU: 2, ChainDepth: 2, PredictableBranches: 2,
			PhaseLen: 16, LaggardEvery: 0, ColdDepFrac: 0.2, IndirectFrac: 0.5, LoadBranchFrac: 0,
			PaperL1HitRate: 0.813},
		// bzip2: compression; hot tables, few cold misses, mild noise.
		{Name: "bzip2", HotFrac: 0.975, HotBytes: kb(32), ColdBytes: mb(8),
			ColdPattern: ColdRandom, StoreFrac: 0.3, MemBlocks: 6,
			FillerALU: 2, ChainDepth: 1, NoisyBranches: 1, PredictableBranches: 3,
			LaggardEvery: 4, IndirectFrac: 0.5, LoadBranchFrac: 1,
			PaperL1HitRate: 0.967},
		// dealII: FE library; very hot, misses page-local.
		{Name: "dealII", HotFrac: 0.982, HotBytes: kb(32), ColdBytes: mb(8),
			ColdPattern: ColdSeq, ColdStride: 256, StoreFrac: 0.2, MemBlocks: 6,
			FillerALU: 3, ChainDepth: 2, PredictableBranches: 2,
			PhaseLen: 4, LaggardEvery: 16, IndirectFrac: 0.2, LoadBranchFrac: 0,
			PaperL1HitRate: 0.973},
		// gamess: quantum chemistry; compute-heavy, hot.
		{Name: "gamess", HotFrac: 0.97, HotBytes: kb(32), ColdBytes: mb(8),
			ColdPattern: ColdSeq, ColdStride: 320, StoreFrac: 0.15, MemBlocks: 5,
			FillerALU: 4, ChainDepth: 3, PredictableBranches: 1,
			LaggardEvery: 8, IndirectFrac: 0.4, LoadBranchFrac: 0,
			PaperL1HitRate: 0.960},
		// gcc: compiler; hot with scattered cold pointers, branchy.
		{Name: "gcc", HotFrac: 0.972, HotBytes: kb(32), ColdBytes: mb(16),
			ColdPattern: ColdSeq, ColdStride: 512, StoreFrac: 0.25,
			MemBlocks: 6, FillerALU: 1, ChainDepth: 1, NoisyBranches: 2,
			PredictableBranches: 4, PhaseLen: 4, LaggardEvery: 16, IndirectFrac: 0.25, LoadBranchFrac: 1,
			PaperL1HitRate: 0.962},
		// GemsFDTD: FDTD stencil; near-perfect locality.
		{Name: "GemsFDTD", HotFrac: 0.999, HotBytes: kb(32), ColdBytes: mb(8),
			ColdPattern: ColdSeq, ColdStride: 64, StoreFrac: 0.3, MemBlocks: 8,
			FillerALU: 2, ChainDepth: 2, PredictableBranches: 1,
			LaggardEvery: 8, IndirectFrac: 0.4, LoadBranchFrac: 0,
			PaperL1HitRate: 0.999},
		// gobmk: go-playing; branch-dominated, misses page-local.
		{Name: "gobmk", HotFrac: 0.962, HotBytes: kb(32), ColdBytes: mb(8),
			ColdPattern: ColdSeq, ColdStride: 96, StoreFrac: 0.2, MemBlocks: 4,
			FillerALU: 1, ChainDepth: 1, NoisyBranches: 2, PredictableBranches: 3,
			LaggardEvery: 16, IndirectFrac: 0.3, LoadBranchFrac: 1,
			PaperL1HitRate: 0.953},
		// gromacs: molecular dynamics.
		{Name: "gromacs", HotFrac: 0.95, HotBytes: kb(32), ColdBytes: mb(16),
			ColdPattern: ColdSeq, ColdStride: 160, StoreFrac: 0.2, MemBlocks: 6,
			FillerALU: 3, ChainDepth: 2, PredictableBranches: 1,
			PhaseLen: 8, LaggardEvery: 8, IndirectFrac: 0.5, LoadBranchFrac: 0,
			PaperL1HitRate: 0.938},
		// h264ref: video encode; hot, misses strongly page-local.
		{Name: "h264ref", HotFrac: 0.996, HotBytes: kb(32), ColdBytes: mb(8),
			ColdPattern: ColdSeq, ColdStride: 64, StoreFrac: 0.3, MemBlocks: 7,
			FillerALU: 2, ChainDepth: 1, NoisyBranches: 1, PredictableBranches: 4,
			LaggardEvery: 16, IndirectFrac: 0.3, LoadBranchFrac: 1,
			PaperL1HitRate: 0.991},
		// hmmer: profile HMM; hot tables, page-hopping rare misses.
		{Name: "hmmer", HotFrac: 0.99, HotBytes: kb(32), ColdBytes: mb(8),
			ColdPattern: ColdPageHop, StoreFrac: 0.25, MemBlocks: 7,
			FillerALU: 2, ChainDepth: 2, PredictableBranches: 1,
			PhaseLen: 8, LaggardEvery: 1, LaggardChain: 40, IndirectFrac: 0.8, LoadBranchFrac: 0,
			PaperL1HitRate: 0.979},
		// lbm: lattice Boltzmann; pure streaming — its L1 hits are SPATIAL
		// locality within the streamed pages themselves (stride << line), so
		// suspect misses only ever see same-page neighbours: the highest
		// S-Pattern mismatch of the suite, the benchmark TPBuf rescues.
		{Name: "lbm", HotFrac: 0.02, HotBytes: kb(32), ColdBytes: mb(32),
			ColdPattern: ColdSeq, ColdStride: 24, StoreFrac: 0.45, MemBlocks: 10,
			FillerALU: 1, ChainDepth: 1, PredictableBranches: 1,
			PhaseLen: 16, LaggardEvery: 0, ColdDepFrac: 0.3, IndirectFrac: 0, LoadBranchFrac: 0,
			PaperL1HitRate: 0.618},
		// leslie3d: CFD.
		{Name: "leslie3d", HotFrac: 0.963, HotBytes: kb(32), ColdBytes: mb(16),
			ColdPattern: ColdSeq, ColdStride: 128, StoreFrac: 0.3, MemBlocks: 7,
			FillerALU: 2, ChainDepth: 2, PredictableBranches: 1,
			PhaseLen: 8, LaggardEvery: 8, IndirectFrac: 0.4, LoadBranchFrac: 0,
			PaperL1HitRate: 0.951},
		// libquantum: quantum simulation; streaming but page-hopping misses.
		{Name: "libquantum", HotFrac: 0.90, HotBytes: kb(32), ColdBytes: mb(32),
			ColdPattern: ColdPageHop, StoreFrac: 0.3, MemBlocks: 8,
			FillerALU: 1, ChainDepth: 1, PredictableBranches: 1,
			PhaseLen: 16, LaggardEvery: 4, IndirectFrac: 0.25, LoadBranchFrac: 0,
			PaperL1HitRate: 0.796},
		// mcf: network simplex; pointer chasing over a huge graph.
		{Name: "mcf", HotFrac: 0.89, HotBytes: kb(32), ColdBytes: mb(32),
			ColdPattern: ColdSeq, ColdStride: 224, ChaseFrac: 0.15, StoreFrac: 0.15,
			MemBlocks: 7, FillerALU: 1, ChainDepth: 1, NoisyBranches: 1,
			PredictableBranches: 3, PhaseLen: 8, LaggardEvery: 16, IndirectFrac: 0.2, LoadBranchFrac: 1,
			PaperL1HitRate: 0.739},
		// milc: lattice QCD; random-ish cold traffic.
		{Name: "milc", HotFrac: 0.62, HotBytes: kb(32), ColdBytes: mb(32),
			ColdPattern: ColdRandom, StoreFrac: 0.3, MemBlocks: 8,
			FillerALU: 2, ChainDepth: 2, PredictableBranches: 1,
			PhaseLen: 16, LaggardEvery: 4, ColdDepFrac: 0, IndirectFrac: 0.3, LoadBranchFrac: 0,
			PaperL1HitRate: 0.662},
		// namd: molecular dynamics; very hot.
		{Name: "namd", HotFrac: 0.986, HotBytes: kb(32), ColdBytes: mb(8),
			ColdPattern: ColdSeq, ColdStride: 128, StoreFrac: 0.2, MemBlocks: 6,
			FillerALU: 4, ChainDepth: 2, PredictableBranches: 1,
			LaggardEvery: 8, IndirectFrac: 0.4, LoadBranchFrac: 0,
			PaperL1HitRate: 0.975},
		// omnetpp: discrete event simulation; pointer-heavy, page-hopping.
		{Name: "omnetpp", HotFrac: 0.95, HotBytes: kb(32), ColdBytes: mb(32),
			ColdPattern: ColdPageHop, StoreFrac: 0.3,
			MemBlocks: 6, FillerALU: 1, ChainDepth: 1, NoisyBranches: 1,
			PredictableBranches: 3, PhaseLen: 8, LaggardEvery: 16, IndirectFrac: 0.5, LoadBranchFrac: 1,
			PaperL1HitRate: 0.929},
		// sjeng: chess; hot, branch-noisy.
		{Name: "sjeng", HotFrac: 0.997, HotBytes: kb(32), ColdBytes: mb(8),
			ColdPattern: ColdSeq, ColdStride: 96, StoreFrac: 0.2, MemBlocks: 5,
			FillerALU: 2, ChainDepth: 1, NoisyBranches: 2, PredictableBranches: 4,
			LaggardEvery: 16, IndirectFrac: 0.3, LoadBranchFrac: 1,
			PaperL1HitRate: 0.994},
		// soplex: LP solver; sparse matrices, page-hopping misses.
		{Name: "soplex", HotFrac: 0.92, HotBytes: kb(32), ColdBytes: mb(32),
			ColdPattern: ColdPageHop, StoreFrac: 0.2, MemBlocks: 7,
			FillerALU: 2, ChainDepth: 2, NoisyBranches: 1, PredictableBranches: 3,
			PhaseLen: 8, IndirectFrac: 0, LoadBranchFrac: 0,
			PaperL1HitRate: 0.849},
		// sphinx3: speech recognition.
		{Name: "sphinx3", HotFrac: 0.99, HotBytes: kb(32), ColdBytes: mb(16),
			ColdPattern: ColdSeq, ColdStride: 256, StoreFrac: 0.2, MemBlocks: 6,
			FillerALU: 2, ChainDepth: 2, NoisyBranches: 1, PredictableBranches: 4,
			LaggardEvery: 8, IndirectFrac: 0.5, LoadBranchFrac: 1,
			PaperL1HitRate: 0.979},
		// zeusmp: astrophysics CFD; like lbm a streaming code whose hits are
		// spatial locality inside the streams (larger stride: worse hit
		// rate, moderate S-Pattern mismatch).
		{Name: "zeusmp", HotFrac: 0.02, HotBytes: kb(32), ColdBytes: mb(32),
			ColdPattern: ColdSeq, ColdStride: 30, StoreFrac: 0.35, MemBlocks: 9,
			FillerALU: 1, ChainDepth: 1, PredictableBranches: 1,
			PhaseLen: 8, LaggardEvery: 0, ColdDepFrac: 0.25, IndirectFrac: 0, LoadBranchFrac: 0,
			PaperL1HitRate: 0.553},
	}
	return ps
}

// ICacheStress returns a kernel whose CODE working set exceeds a 64KB L1
// instruction cache: 32 replicated body segments dispatched through an
// indirect jump, each padded to ~3KB. Fetch misses are frequent, and with
// load-dependent branches in flight they are exactly the "unsafe NPC"
// events the §VII.B ICache-hit filter stalls on. It is not part of the 22
// SPEC-shaped profiles; the ICache experiment adds it explicitly.
func ICacheStress() Profile {
	return Profile{
		Name:        "icache-stress",
		HotFrac:     0.97,
		HotBytes:    32 * 1024,
		ColdBytes:   8 * 1024 * 1024,
		ColdPattern: ColdSeq, ColdStride: 256,
		StoreFrac: 0.2, MemBlocks: 5, FillerALU: 1, ChainDepth: 1,
		NoisyBranches: 2, LoadBranchFrac: 1, PredictableBranches: 1,
		LaggardEvery: 8, IndirectFrac: 0.3,
		CodeSegments: 32, SegmentPadding: 330,
		PaperL1HitRate: 0.97,
	}
}
