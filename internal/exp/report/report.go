// Package report renders experiment results as the machine-readable JSON
// document shared by conspec-bench -json and the conspec-served job API:
// one wire format, produced locally or fetched from GET /v1/jobs/{id}.
// The field names and their order are a compatibility surface — they were
// lifted verbatim from conspec-bench's original -json output — so tools
// built against either producer keep working.
package report

import (
	"encoding/json"
	"io"

	"conspec/internal/attack"
	"conspec/internal/buildinfo"
	"conspec/internal/core"
	"conspec/internal/exp"
	"conspec/internal/obs"
	"conspec/internal/workload"
)

// Fig5Row is one benchmark's normalized runtimes.
type Fig5Row struct {
	Benchmark string  `json:"benchmark"`
	Baseline  float64 `json:"baseline"`
	CacheHit  float64 `json:"cachehit"`
	TPBuf     float64 `json:"tpbuf"`
}

// Table5Row is one benchmark's filter analysis.
type Table5Row struct {
	Benchmark       string  `json:"benchmark"`
	L1HitRate       float64 `json:"l1_hit_rate"`
	BaselineBlocked float64 `json:"baseline_blocked_rate"`
	CacheHitBlocked float64 `json:"cachehit_blocked_rate"`
	SpecHitRate     float64 `json:"speculative_hit_rate"`
	TPBufBlocked    float64 `json:"tpbuf_blocked_rate"`
	MismatchRate    float64 `json:"spattern_mismatch_rate"`
}

// AttackRow is one Table IV cell.
type AttackRow struct {
	Scenario  string `json:"scenario"`
	Class     string `json:"class,omitempty"`
	Mechanism string `json:"mechanism"`
	Correct   int    `json:"bytes_recovered"`
	Total     int    `json:"bytes_total"`
	Leaked    bool   `json:"leaked"`
}

// Table6Row is one benchmark's overheads on one sensitivity core.
type Table6Row struct {
	Benchmark string  `json:"benchmark"`
	Baseline  float64 `json:"baseline_overhead"`
	CacheHit  float64 `json:"cachehit_overhead"`
	TPBuf     float64 `json:"tpbuf_overhead"`
}

// Table6Core is Table VI for one core.
type Table6Core struct {
	Core    string      `json:"core"`
	Rows    []Table6Row `json:"rows"`
	Average Table6Row   `json:"average"`
}

// ScopeRow is one benchmark's §VI.C(1) decomposition.
type ScopeRow struct {
	Benchmark            string  `json:"benchmark"`
	BranchOnly           float64 `json:"branch_only_overhead"`
	Full                 float64 `json:"full_matrix_overhead"`
	UnresolvedBranchFrac float64 `json:"unresolved_branch_frac"`
}

// Scope is the §VI.C(1) suite.
type Scope struct {
	Rows          []ScopeRow `json:"rows"`
	BranchOnlyAvg float64    `json:"branch_only_avg"`
	FullAvg       float64    `json:"full_matrix_avg"`
}

// LRU is the §VII.A replacement-update study.
type LRU struct {
	Always   float64 `json:"conventional_update_overhead"`
	NoUpdate float64 `json:"no_update_overhead"`
	Delayed  float64 `json:"delayed_update_overhead"`
}

// ICache is the §VII.B filter study.
type ICache struct {
	Without     float64           `json:"overhead_without"`
	With        float64           `json:"overhead_with"`
	FetchStalls map[string]uint64 `json:"fetch_stalls"`
}

// DTLB is the DTLB-filter study.
type DTLB struct {
	Without float64           `json:"overhead_without"`
	With    float64           `json:"overhead_with"`
	Blocks  map[string]uint64 `json:"filter_blocks"`
}

// CompareRow is one benchmark's defense-comparison overheads.
type CompareRow struct {
	Benchmark string  `json:"benchmark"`
	TPBuf     float64 `json:"chtpbuf_overhead"`
	Invisi    float64 `json:"invisispec_overhead"`
	SWFence   float64 `json:"sw_fence_overhead"`
}

// Compare is the defense comparison suite.
type Compare struct {
	Rows    []CompareRow `json:"rows"`
	Average CompareRow   `json:"average"`
}

// DefenseRow is one registered backend's overhead-vs-security position in
// the defenses suite.
type DefenseRow struct {
	Defense        string  `json:"defense"`
	Backend        string  `json:"backend"`
	NormRuntime    float64 `json:"norm_runtime"`
	Leaked         bool    `json:"leaked"`
	BytesRecovered int     `json:"bytes_recovered"`
	BytesTotal     int     `json:"bytes_total"`
	ExpectBlock    bool    `json:"expect_block"`
}

// SeriesEntry is one run's sampled metric time series (fig5/table5 runs
// with a non-zero MetricsInterval only).
type SeriesEntry struct {
	Benchmark string      `json:"benchmark"`
	Mechanism string      `json:"mechanism"`
	Series    *obs.Series `json:"series"`
}

// EngineStats summarizes what the scheduler did for this document: how
// many unique simulations executed and how many submissions each cache
// tier absorbed. A warm disk cache shows up here as executed == 0.
type EngineStats struct {
	Executed  uint64 `json:"executed"`
	MemHits   uint64 `json:"mem_hits"`
	DiskHits  uint64 `json:"disk_hits"`
	Submitted uint64 `json:"submitted"`
	Panics    uint64 `json:"panics,omitempty"`
	// SkippedCycles/SkipSpans aggregate the stall skipper's meta-counters
	// over the document's executed runs: simulated cycles fast-forwarded
	// rather than stepped, and in how many spans.
	SkippedCycles uint64 `json:"skipped_cycles,omitempty"`
	SkipSpans     uint64 `json:"skip_spans,omitempty"`
}

// Engine converts the Runner's counters to their wire form.
func Engine(st exp.Stats) *EngineStats {
	return &EngineStats{
		Executed:      st.Executed,
		MemHits:       st.Hits,
		DiskHits:      st.DiskHits,
		Submitted:     st.Submitted(),
		Panics:        st.Panics,
		SkippedCycles: st.SkippedCycles,
		SkipSpans:     st.SkipSpans,
	}
}

// Report aggregates whatever suites ran. The fig5/table5/table4 fields
// keep their original names and positions so single-suite JSON output is
// unchanged; the remaining suites follow in -suite all order. Build stamps
// the producing binary into every document. Errors lists failed runs
// excluded from the aggregates (their wire shape is pinned by
// exp.RunError's MarshalJSON); a document with a non-empty errors array is
// partial. Engine carries the scheduler/cache-tier counters.
type Report struct {
	Build    buildinfo.Info `json:"build"`
	Fig5     []Fig5Row      `json:"fig5,omitempty"`
	Table5   []Table5Row    `json:"table5,omitempty"`
	Table4   []AttackRow    `json:"table4,omitempty"`
	Table6   []Table6Core   `json:"table6,omitempty"`
	Scope    *Scope         `json:"scope,omitempty"`
	LRU      *LRU           `json:"lru,omitempty"`
	ICache   *ICache        `json:"icache,omitempty"`
	DTLB     *DTLB          `json:"dtlb,omitempty"`
	Compare  *Compare       `json:"compare,omitempty"`
	Defenses []DefenseRow   `json:"defenses,omitempty"`
	Overhead string         `json:"overhead_text,omitempty"`
	Series   []SeriesEntry  `json:"series,omitempty"`
	Errors   []exp.RunError `json:"errors,omitempty"`
	Engine   *EngineStats   `json:"engine,omitempty"`
}

// New returns a Report stamped with the running binary's build identity.
func New() *Report {
	return &Report{Build: buildinfo.Get()}
}

// AddSuite folds one suite's typed result into the document. Fig5 and
// Table5 come from the same evaluation: adding either fills both (plus the
// per-run time series, when sampled).
func (r *Report) AddSuite(res *exp.SuiteResult) {
	switch res.Suite {
	case exp.SuiteFig5, exp.SuiteTable5:
		ev := res.Evaluation()
		r.Fig5 = fig5Rows(ev)
		r.Table5 = table5Rows(ev)
		r.Series = seriesEntries(ev)
	case exp.SuiteTable4:
		r.Table4 = attackRows(res.Table4())
	case exp.SuiteTable6:
		r.Table6 = table6Cores(res.Table6())
	case exp.SuiteScope:
		r.Scope = scopeDoc(res.Scope())
	case exp.SuiteLRU:
		v := res.LRU()
		r.LRU = &LRU{Always: v.Always, NoUpdate: v.NoUpdate, Delayed: v.Delayed}
	case exp.SuiteICache:
		v := res.ICache()
		r.ICache = &ICache{Without: v.Without, With: v.With, FetchStalls: v.Stalls}
	case exp.SuiteDTLB:
		v := res.DTLB()
		r.DTLB = &DTLB{Without: v.Without, With: v.With, Blocks: v.Blocks}
	case exp.SuiteCompare:
		r.Compare = compareDoc(res.Compare())
	case exp.SuiteDefenses:
		r.Defenses = defenseRows(res.Defenses())
	case exp.SuiteOverhead:
		r.Overhead = res.Text()
	}
}

// Finish stamps the engine's failed-run list and scheduler counters.
func (r *Report) Finish(runner *exp.Runner) {
	r.Errors = runner.Errors()
	r.Engine = Engine(runner.Stats())
}

// Encode writes the document as indented JSON.
func (r *Report) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

func fig5Rows(ev *exp.Evaluation) []Fig5Row {
	rows := make([]Fig5Row, 0, len(ev.Benches))
	for _, b := range ev.Benches {
		rows = append(rows, Fig5Row{
			Benchmark: b.Name,
			Baseline:  1 + b.Overhead(core.Baseline),
			CacheHit:  1 + b.Overhead(core.CacheHit),
			TPBuf:     1 + b.Overhead(core.CacheHitTPBuf),
		})
	}
	return rows
}

func table5Rows(ev *exp.Evaluation) []Table5Row {
	rows := make([]Table5Row, 0, len(ev.Benches))
	for _, b := range ev.Benches {
		rows = append(rows, Table5Row{
			Benchmark:       b.Name,
			L1HitRate:       b.Results[core.Origin].L1D.HitRate(),
			BaselineBlocked: b.Results[core.Baseline].Filter.BlockedRate(),
			CacheHitBlocked: b.Results[core.CacheHit].Filter.BlockedRate(),
			SpecHitRate:     b.Results[core.CacheHit].Filter.SpecHitRate(),
			TPBufBlocked:    b.Results[core.CacheHitTPBuf].Filter.BlockedRate(),
			MismatchRate:    b.Results[core.CacheHitTPBuf].TPBuf.MismatchRate(),
		})
	}
	return rows
}

// seriesEntries collects the per-run metric time series out of an
// evaluation, in benchmark then mechanism order. Empty unless the runs
// were executed with a non-zero MetricsInterval.
func seriesEntries(ev *exp.Evaluation) []SeriesEntry {
	var out []SeriesEntry
	for _, b := range ev.Benches {
		for _, m := range core.Mechanisms {
			if s := b.Results[m].Series; s != nil {
				out = append(out, SeriesEntry{Benchmark: b.Name, Mechanism: m.String(), Series: s})
			}
		}
	}
	return out
}

func attackRows(outcomes []attack.Outcome) []AttackRow {
	rows := make([]AttackRow, 0, len(outcomes))
	for _, o := range outcomes {
		rows = append(rows, AttackRow{
			Scenario:  o.Scenario,
			Mechanism: o.Mechanism,
			Correct:   o.Correct,
			Total:     len(o.Secret),
			Leaked:    o.Leaked,
		})
	}
	return rows
}

func table6Cores(cores []exp.Table6Core) []Table6Core {
	out := make([]Table6Core, 0, len(cores))
	for _, tc := range cores {
		jc := Table6Core{
			Core: tc.Core,
			Average: Table6Row{
				Benchmark: tc.Avg.Benchmark,
				Baseline:  tc.Avg.Baseline,
				CacheHit:  tc.Avg.CacheHit,
				TPBuf:     tc.Avg.TPBuf,
			},
		}
		for _, r := range tc.Rows {
			jc.Rows = append(jc.Rows, Table6Row{
				Benchmark: r.Benchmark,
				Baseline:  r.Baseline,
				CacheHit:  r.CacheHit,
				TPBuf:     r.TPBuf,
			})
		}
		out = append(out, jc)
	}
	return out
}

func scopeDoc(r *exp.ScopeResult) *Scope {
	out := &Scope{BranchOnlyAvg: r.BranchOnlyAvg, FullAvg: r.FullAvg}
	for _, name := range workload.Names() {
		v, ok := r.PerBench[name]
		if !ok {
			continue
		}
		out.Rows = append(out.Rows, ScopeRow{
			Benchmark:            name,
			BranchOnly:           v[0],
			Full:                 v[1],
			UnresolvedBranchFrac: r.UnresolvedBranchFrac[name],
		})
	}
	return out
}

func defenseRows(r *exp.DefensesResult) []DefenseRow {
	rows := make([]DefenseRow, 0, len(r.Rows))
	for _, row := range r.Rows {
		rows = append(rows, DefenseRow{
			Defense:        row.Name,
			Backend:        row.Title,
			NormRuntime:    1 + row.Overhead,
			Leaked:         row.Leaked,
			BytesRecovered: row.Recovered,
			BytesTotal:     row.SecretLen,
			ExpectBlock:    row.ExpectBlock,
		})
	}
	return rows
}

func compareDoc(r *exp.CompareResult) *Compare {
	out := &Compare{Average: CompareRow{
		Benchmark: r.Avg.Benchmark,
		TPBuf:     r.Avg.TPBuf,
		Invisi:    r.Avg.Invisi,
		SWFence:   r.Avg.SWFence,
	}}
	for _, row := range r.Rows {
		out.Rows = append(out.Rows, CompareRow{
			Benchmark: row.Benchmark,
			TPBuf:     row.TPBuf,
			Invisi:    row.Invisi,
			SWFence:   row.SWFence,
		})
	}
	return out
}
