// Command conspec-bench regenerates the paper's evaluation artifacts:
//
//	-suite fig5     Figure 5  (normalized performance, 22 benchmarks)
//	-suite table4   Table IV  (security: attacks vs mechanisms)
//	-suite table5   Table V   (filter analysis)
//	-suite table6   Table VI  (A57/I7/Xeon sensitivity)
//	-suite scope    §VI.C(1)  (branch-only vs branch+memory matrix)
//	-suite lru      §VII.A    (secure replacement-update policies)
//	-suite icache   §VII.B    (ICache-hit filter extension)
//	-suite dtlb     extension (DTLB-hit filter)
//	-suite compare  extension (CH+TPBuf vs InvisiSpec-like vs LFENCE baseline)
//	-suite overhead §VI.E     (area/timing model)
//	-suite defenses extension (every registered defense backend: overhead vs V1 leak verdict)
//	-suite all      everything above
//
// Figure 5 and Table V come from the same runs and are always printed
// together. Use -benches to restrict to a comma-separated subset and
// -measure to change the per-run instruction budget.
//
// All suites submit their runs to one exp.Runner, which deduplicates
// identical (core, security, policy, workload, budget) simulations across
// suites — `-suite all` executes each unique run exactly once. SIGINT
// cancels the engine: completed suite results are flushed and the process
// exits non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"conspec/internal/buildinfo"
	"conspec/internal/diskcache"
	"conspec/internal/exp"
	"conspec/internal/exp/report"
	"conspec/internal/obs/trace"
	"conspec/internal/profutil"
)

func main() {
	var (
		suite    = flag.String("suite", "all", "fig5|table4|table5|table6|scope|lru|icache|dtlb|compare|overhead|defenses|all")
		benches  = flag.String("benches", "", "comma-separated benchmark subset (default: all 22)")
		defenses = flag.String("defenses", "", "comma-separated defense subset for -suite defenses (default: all registered; see conspec-sim -mech for names)")
		warmup   = flag.Uint64("warmup", 20_000, "warmup instructions per run")
		measure  = flag.Uint64("measure", 120_000, "measured instructions per run")
		interval = flag.Uint64("metrics-interval", 0, "sample the obs metric registry every N cycles of the measured phase; the -json fig5/table5 output then carries the per-run time series (0 = off)")
		selfchk  = flag.Uint64("selfcheck", 0, "audit pipeline and security invariants every N cycles of every run; a violation fails that run (0 = off)")
		runTmo   = flag.Duration("run-timeout", 0, "wall-clock bound per simulation; a run exceeding it is recorded as failed and its suite continues (0 = none)")
		cacheDir = flag.String("cache-dir", "", "persist memoized simulation results under this directory and reuse them across invocations (content-addressed, namespaced by build identity; a warm rerun executes zero simulations)")
		cacheMax = flag.Int64("cache-max-bytes", 0, "size budget for -cache-dir; least-recently-used entries are evicted past it (0 = unbounded)")
		workers  = flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS); values below GOMAXPROCS also cap GOMAXPROCS so -workers 1 -cpuprofile profiles a single attributable thread")
		traceF   = flag.String("trace", "", "write a Chrome trace-event span trace of the whole invocation (suite > run > phase, with cache-tier annotations) to FILE; load it at https://ui.perfetto.dev")
		flight   = flag.Uint64("flight-window", 0, "arm each run's microarchitectural flight recorder over the last N cycles; failed runs report the dump (0 = off)")
		verbose  = flag.Bool("v", false, "print per-run progress")
		asJSON   = flag.Bool("json", false, "emit results as JSON instead of text")
		version  = flag.Bool("version", false, "print build information and exit")
	)
	prof := profutil.Register()
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Short("conspec-bench"))
		return
	}
	profStop, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer profStop()
	*workers = profutil.CapProcs(*workers)

	var names []string
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}
	var defNames []string
	if *defenses != "" {
		defNames = strings.Split(*defenses, ",")
	}
	spec := exp.DefaultSpec()
	spec.Warmup = *warmup
	spec.Measure = *measure
	spec.MetricsInterval = *interval
	spec.SelfCheck = *selfchk
	spec.FlightWindow = *flight

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var onEvent func(exp.ProgressEvent)
	if *verbose {
		onEvent = func(ev exp.ProgressEvent) {
			if ev.Line != "" {
				fmt.Fprintln(os.Stderr, ev.Line)
			}
		}
	}
	ropts := exp.RunnerOptions{Workers: *workers, OnEvent: onEvent, Timeout: *runTmo}
	var tracer *trace.Tracer
	if *traceF != "" {
		tracer = trace.New(0)
		ropts.Trace = tracer
	}
	if *cacheDir != "" {
		store, err := diskcache.OpenWith(*cacheDir, diskcache.Options{MaxBytes: *cacheMax})
		if err != nil {
			fatal(err)
		}
		ropts.Cache = store
	}
	runner := exp.NewRunner(ropts)
	opts := exp.Options{Spec: spec, Benches: names, Defenses: defNames}

	want := func(s string) bool { return *suite == "all" || *suite == s }
	start := time.Now()

	rep := report.New()
	// fail flushes whatever completed and exits. On SIGINT the JSON
	// document holds every suite that finished before cancellation.
	fail := func(err error) {
		profStop() // os.Exit skips deferred handlers: flush profiles first
		writeTrace(*traceF, tracer)
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "interrupted: flushing completed suite results")
			if *asJSON {
				rep.Finish(runner)
				emitJSON(rep)
			}
			printEngineStats(runner, start)
			os.Exit(1)
		}
		fatal(err)
	}

	if want("fig5") || want("table5") {
		res, err := runner.RunSuite(ctx, exp.SuiteFig5, opts)
		if err != nil {
			fail(err)
		}
		if *asJSON {
			rep.AddSuite(res)
		} else {
			ev := res.Evaluation()
			fmt.Println("=== Figure 5: runtime normalized to Origin ===")
			fmt.Println(ev.Fig5Text())
			fmt.Println("=== Table V: filter analysis ===")
			fmt.Println(ev.Table5Text())
		}
	}
	// The remaining suites share one emit shape: JSON documents fold into
	// the report, text output prints a banner plus the suite rendering.
	textSuites := []struct {
		name   string
		id     exp.SuiteID
		banner string
	}{
		{"table4", exp.SuiteTable4, "=== Table IV: security analysis ==="},
		{"table6", exp.SuiteTable6, "=== Table VI: core sensitivity ==="},
		{"scope", exp.SuiteScope, "=== §VI.C(1): matrix scope decomposition ==="},
		{"lru", exp.SuiteLRU, "=== §VII.A: secure replacement-update policies ==="},
		{"icache", exp.SuiteICache, "=== §VII.B: ICache-hit filter extension ==="},
		{"dtlb", exp.SuiteDTLB, "=== DTLB-hit filter extension ==="},
		{"compare", exp.SuiteCompare, "=== Defense comparison: CH+TPBuf vs InvisiSpec vs SW fence ==="},
		{"overhead", exp.SuiteOverhead, "=== §VI.E: hardware overhead model ==="},
		{"defenses", exp.SuiteDefenses, "=== Defense matrix: overhead vs Spectre V1 verdict ==="},
	}
	for _, s := range textSuites {
		if !want(s.name) {
			continue
		}
		res, err := runner.RunSuite(ctx, s.id, opts)
		if err != nil {
			fail(err)
		}
		if *asJSON {
			rep.AddSuite(res)
		} else {
			fmt.Println(s.banner)
			fmt.Println(res.Text())
		}
	}
	// Failed runs (deadlocks, audit violations, cycle caps, timeouts) were
	// excluded from the suite aggregates above; summarize them here and make
	// the process exit non-zero so CI notices degraded output.
	failed := runner.Errors()
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "%d run(s) failed and were excluded from the aggregates:\n", len(failed))
		for _, e := range failed {
			fmt.Fprintf(os.Stderr, "  [%s] %s / %s: %s\n", e.Suite, e.Benchmark, e.Mechanism, e.Outcome)
		}
	}
	if *asJSON {
		rep.Finish(runner)
		emitJSON(rep)
	}
	writeTrace(*traceF, tracer)
	printEngineStats(runner, start)
	if len(failed) > 0 {
		profStop()
		os.Exit(1)
	}
}

// writeTrace exports the invocation's span trace as Chrome trace-event
// JSON. A nil tracer (no -trace flag) is a no-op; export errors warn but do
// not fail the run, since the results on stdout are already complete.
func writeTrace(path string, tracer *trace.Tracer) {
	if tracer == nil {
		return
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace: %v\n", err)
		return
	}
	err = tracer.WriteChrome(f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "trace: %v\n", err)
		return
	}
	fmt.Fprintf(os.Stderr, "trace: wrote %s (load at https://ui.perfetto.dev)\n", path)
}

// printEngineStats reports the scheduler's deduplication work and the wall
// time on stderr, next to the timing line the tool has always printed. The
// disk tier appears only when a -cache-dir is in play.
func printEngineStats(runner *exp.Runner, start time.Time) {
	st := runner.Stats()
	if st.Submitted() > 0 {
		line := fmt.Sprintf("engine: %d unique simulations, %d cache hits", st.Executed, st.Hits)
		if st.DiskHits > 0 {
			line += fmt.Sprintf(", %d disk hits", st.DiskHits)
		}
		fmt.Fprintf(os.Stderr, "%s (%d submitted)\n", line, st.Submitted())
	}
	fmt.Fprintf(os.Stderr, "total wall time: %v\n", time.Since(start))
}

func emitJSON(rep *report.Report) {
	if err := rep.Encode(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
