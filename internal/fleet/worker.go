package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"conspec/internal/buildinfo"
	"conspec/internal/exp"
	"conspec/internal/exp/report"
	"conspec/internal/serve"
)

// WorkerOptions parameterizes a Worker.
type WorkerOptions struct {
	// Coordinator is the coordinator's base URL (http://host:port).
	Coordinator string
	// Name is the stable worker name to register under (empty = the
	// coordinator assigns one).
	Name string
	// Slots is how many leases to execute concurrently (default 1).
	Slots int
	// SimWorkers bounds per-run simulation parallelism, like the
	// standalone server's -sim-workers.
	SimWorkers int
	// RunTimeout bounds one simulation, like the standalone server's
	// -run-timeout. Zero means no bound.
	RunTimeout time.Duration
	// LocalCache is the worker's local result tier (typically a
	// *diskcache.Store); it is layered under a RemoteStore reaching the
	// coordinator. May be nil (remote-only).
	LocalCache ResultStore
	// Identity overrides the binary's build identity (tests only).
	Identity string
	// HTTPClient overrides the transport (tests only).
	HTTPClient *http.Client
	// ProgressFlush is the progress batching interval (default 300ms).
	ProgressFlush time.Duration
	// Logf, when non-nil, receives one line per worker event.
	Logf func(format string, args ...any)

	// execOverride replaces the exp.Runner execution path (tests only).
	execOverride func(ctx context.Context, spec serve.JobSpec, emit func(exp.ProgressEvent)) (*report.Report, exp.Stats, int, error)
}

// Worker is one fleet execution node: it registers with the coordinator,
// heartbeats, long-polls for leases on each slot, executes them with a
// local exp.Runner against a tiered local+remote result store, streams
// progress back, and publishes the terminal result. All traffic is
// outbound; a worker needs no inbound port.
type Worker struct {
	opts   WorkerOptions
	client *http.Client
	remote *RemoteStore
	store  *TieredStore

	mu       sync.Mutex
	id       string
	draining bool
	active   map[string]*activeLease
	counters map[string]uint64
}

// activeLease tracks one executing lease's cancel hooks.
type activeLease struct {
	cancel        context.CancelFunc
	coordCanceled bool // coordinator asked for the cancel (vs worker shutdown)
}

// NewWorker builds a Worker; Run drives it.
func NewWorker(opts WorkerOptions) *Worker {
	if opts.Identity == "" {
		opts.Identity = buildinfo.Get().Identity()
	}
	if opts.Slots < 1 {
		opts.Slots = 1
	}
	if opts.ProgressFlush <= 0 {
		opts.ProgressFlush = 300 * time.Millisecond
	}
	client := opts.HTTPClient
	if client == nil {
		client = &http.Client{}
	}
	w := &Worker{
		opts:     opts,
		client:   client,
		remote:   NewRemoteStore(opts.Coordinator, client),
		active:   make(map[string]*activeLease),
		counters: make(map[string]uint64),
	}
	w.store = &TieredStore{Local: opts.LocalCache, Remote: w.remote}
	return w
}

func (w *Worker) logf(format string, args ...any) {
	if w.opts.Logf != nil {
		w.opts.Logf(format, args...)
	}
}

// ID returns the coordinator-assigned worker id ("" before registration).
func (w *Worker) ID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// Run registers and serves leases until ctx is canceled, re-registering
// whenever the coordinator forgets the worker (coordinator restart, or
// a heartbeat gap long enough to be declared lost). It returns nil on a
// clean shutdown and a terminal error — an *IdentityMismatchError — when
// the coordinator refuses this binary.
func (w *Worker) Run(ctx context.Context) error {
	for {
		if err := ctx.Err(); err != nil {
			return nil
		}
		reg, err := w.register(ctx)
		if err != nil {
			var mismatch *IdentityMismatchError
			if errors.As(err, &mismatch) {
				return err
			}
			if ctx.Err() != nil {
				return nil
			}
			return err
		}
		w.mu.Lock()
		w.id = reg.Worker
		w.draining = false
		w.mu.Unlock()
		hb := time.Duration(reg.HeartbeatMS) * time.Millisecond
		if hb <= 0 {
			hb = 2 * time.Second
		}
		w.logf("fleet: registered as %s (heartbeat %v, %d slots)", reg.Worker, hb, w.opts.Slots)
		w.session(ctx, reg.Worker, hb)
		if ctx.Err() != nil {
			return nil
		}
		w.logf("fleet: session with coordinator ended; re-registering")
	}
}

// session runs one registration's heartbeat loop and slot loops until the
// coordinator answers 410 (stale) or ctx is canceled. Active leases are
// always finished and posted (possibly as abandoned) before it returns.
func (w *Worker) session(ctx context.Context, id string, hb time.Duration) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1 + w.opts.Slots)
	go func() {
		defer wg.Done()
		w.heartbeatLoop(sctx, cancel, id, hb)
	}()
	for i := 0; i < w.opts.Slots; i++ {
		go func() {
			defer wg.Done()
			w.leaseLoop(sctx, cancel, id)
		}()
	}
	wg.Wait()
}

// heartbeatLoop beats every hb, pushing the counter snapshot and applying
// the reply's control signals. A 410 cancels the session (stale id).
func (w *Worker) heartbeatLoop(ctx context.Context, stale context.CancelFunc, id string, hb time.Duration) {
	t := time.NewTicker(hb)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
		}
		req := HeartbeatRequest{Worker: id, Leases: w.activeIDs(), Metrics: w.metricsSnapshot()}
		var resp HeartbeatResponse
		code, err := w.postJSON(ctx, "/fleet/v1/heartbeat", req, &resp)
		if err != nil {
			if ctx.Err() != nil {
				return
			}
			w.logf("fleet: heartbeat: %v", err)
			continue
		}
		if code == http.StatusGone {
			w.logf("fleet: coordinator no longer knows us; re-registering")
			stale()
			return
		}
		if code != http.StatusOK {
			continue
		}
		if resp.Draining {
			w.mu.Lock()
			was := w.draining
			w.draining = true
			w.mu.Unlock()
			if !was {
				w.logf("fleet: draining (finishing active leases, taking no new ones)")
			}
		}
		for _, leaseID := range resp.Canceled {
			w.cancelLease(leaseID)
		}
	}
}

// cancelLease aborts an active lease at the coordinator's request.
func (w *Worker) cancelLease(leaseID string) {
	w.mu.Lock()
	al := w.active[leaseID]
	if al != nil {
		al.coordCanceled = true
	}
	w.mu.Unlock()
	if al != nil {
		w.logf("fleet: lease %s canceled by coordinator", leaseID)
		al.cancel()
	}
}

// leaseLoop long-polls one slot for grants and executes them.
func (w *Worker) leaseLoop(ctx context.Context, stale context.CancelFunc, id string) {
	backoff := 200 * time.Millisecond
	for {
		if ctx.Err() != nil {
			return
		}
		if w.isDraining() {
			// Drained: stop asking. The heartbeat loop keeps the session
			// alive so active leases on other slots can finish.
			select {
			case <-ctx.Done():
				return
			case <-time.After(time.Second):
			}
			continue
		}
		var grant LeaseGrant
		code, err := w.postJSON(ctx, "/fleet/v1/lease", LeaseRequest{Worker: id, WaitMS: 5000}, &grant)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return
			}
			w.logf("fleet: lease poll: %v", err)
			select {
			case <-ctx.Done():
				return
			case <-time.After(backoff):
			}
			if backoff < 5*time.Second {
				backoff *= 2
			}
			continue
		case code == http.StatusGone:
			stale()
			return
		case code == http.StatusNoContent:
			backoff = 200 * time.Millisecond
			continue
		case code != http.StatusOK:
			w.logf("fleet: lease poll: unexpected status %d", code)
			select {
			case <-ctx.Done():
				return
			case <-time.After(backoff):
			}
			continue
		}
		backoff = 200 * time.Millisecond
		w.execute(ctx, id, grant)
	}
}

// execute runs one granted lease end to end: progress batching, the
// simulation itself against the tiered store, and the terminal result
// post. ctx canceling mid-run abandons the lease (the job is re-queued
// immediately); a coordinator cancel posts canceled.
func (w *Worker) execute(ctx context.Context, workerID string, grant LeaseGrant) {
	lctx, cancel := context.WithCancel(ctx)
	defer cancel()
	al := &activeLease{cancel: cancel}
	w.mu.Lock()
	w.active[grant.Lease] = al
	w.mu.Unlock()
	defer func() {
		w.mu.Lock()
		delete(w.active, grant.Lease)
		w.mu.Unlock()
	}()

	w.logf("fleet: executing lease %s (gen %d)", grant.Lease, grant.Gen)
	pb := newProgressBatcher(w, workerID, grant, al, w.opts.ProgressFlush)
	rep, stats, failedRuns, err := w.runSpec(lctx, grant.Spec, pb.add)
	pb.close() // final flush; stop the flusher before posting the result

	post := ResultPost{Worker: workerID, Gen: grant.Gen, Engine: stats, FailedRuns: failedRuns}
	switch {
	case err == nil:
		b, merr := json.Marshal(rep)
		if merr != nil {
			post.Status = ResultFailed
			post.Error = "marshal result document: " + merr.Error()
		} else {
			post.Status = ResultDone
			post.Report = b
		}
	case errors.Is(err, context.Canceled):
		w.mu.Lock()
		coord := al.coordCanceled
		w.mu.Unlock()
		if coord {
			post.Status = ResultCanceled
		} else {
			// Worker shutting down, not a job cancel: hand the lease back
			// so the coordinator re-queues it without waiting for the
			// heartbeat timeout. Finished simulations are already in the
			// coordinator's store, so no work is lost.
			post.Status = ResultAbandoned
		}
	default:
		post.Status = ResultFailed
		post.Error = err.Error()
	}

	w.postResult(grant.Lease, post)
	w.bump("leases_" + post.Status + "_total")
	w.bumpBy("runs_executed_total", stats.Executed)
	w.logf("fleet: lease %s %s (executed %d runs)", grant.Lease, post.Status, stats.Executed)
}

// runSpec is the execution seam: the real path goes through
// serve.ExecuteSpec with the tiered store as the runner cache.
func (w *Worker) runSpec(ctx context.Context, spec serve.JobSpec, emit func(exp.ProgressEvent)) (*report.Report, exp.Stats, int, error) {
	if w.opts.execOverride != nil {
		return w.opts.execOverride(ctx, spec, emit)
	}
	return serve.ExecuteSpec(ctx, spec, serve.ExecOptions{
		Cache:      w.store,
		SimWorkers: w.opts.SimWorkers,
		RunTimeout: w.opts.RunTimeout,
	}, emit)
}

// postResult publishes a terminal lease status. The session context is
// often already canceled here (shutdown posting abandoned), so it uses a
// fresh bounded context and retries transient failures briefly — after
// that the heartbeat-timeout reaper covers us.
func (w *Worker) postResult(leaseID string, post ResultPost) {
	for attempt := 0; attempt < 3; attempt++ {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		var reply ResultReply
		code, err := w.postJSON(ctx, "/fleet/v1/leases/"+leaseID+"/result", post, &reply)
		cancel()
		if err == nil && code/100 == 2 {
			if !reply.Accepted {
				w.logf("fleet: result for lease %s ignored (stale generation)", leaseID)
			}
			return
		}
		if err == nil {
			w.logf("fleet: result post for lease %s: status %d", leaseID, code)
			return
		}
		w.logf("fleet: result post for lease %s: %v (attempt %d)", leaseID, err, attempt+1)
		time.Sleep(500 * time.Millisecond)
	}
}

// register announces the worker, retrying transient errors with backoff.
// An identity 409 is terminal: a stale binary must not join the fleet.
func (w *Worker) register(ctx context.Context) (RegisterResponse, error) {
	req := RegisterRequest{Name: w.opts.Name, Identity: w.opts.Identity, Slots: w.opts.Slots}
	backoff := 200 * time.Millisecond
	for {
		rctx, cancel := context.WithTimeout(ctx, 10*time.Second)
		var resp RegisterResponse
		var mismatch IdentityMismatchError
		code, body, err := w.postJSONRaw(rctx, "/fleet/v1/register", req)
		cancel()
		switch {
		case err == nil && code == http.StatusOK:
			if jerr := json.Unmarshal(body, &resp); jerr != nil {
				err = fmt.Errorf("bad register response: %w", jerr)
				break
			}
			return resp, nil
		case err == nil && code == http.StatusConflict:
			if json.Unmarshal(body, &mismatch) == nil && mismatch.CoordinatorIdentity != "" {
				return RegisterResponse{}, &mismatch
			}
			return RegisterResponse{}, fmt.Errorf("registration refused: %s", strings.TrimSpace(string(body)))
		case err == nil:
			err = fmt.Errorf("register: unexpected status %d: %s", code, strings.TrimSpace(string(body)))
		}
		w.logf("fleet: %v (retrying in %v)", err, backoff)
		select {
		case <-ctx.Done():
			return RegisterResponse{}, ctx.Err()
		case <-time.After(backoff):
		}
		if backoff < 5*time.Second {
			backoff *= 2
		}
	}
}

func (w *Worker) isDraining() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.draining
}

func (w *Worker) activeIDs() []string {
	w.mu.Lock()
	defer w.mu.Unlock()
	ids := make([]string, 0, len(w.active))
	for id := range w.active {
		ids = append(ids, id)
	}
	return ids
}

// bump / bumpBy maintain the worker's cumulative counters, pushed to the
// coordinator on every heartbeat and exposed there with a worker label.
func (w *Worker) bump(name string) { w.bumpBy(name, 1) }

func (w *Worker) bumpBy(name string, n uint64) {
	w.mu.Lock()
	w.counters[name] += n
	w.mu.Unlock()
}

// metricsSnapshot merges the manual counters with the store tiers' live
// traffic counts.
func (w *Worker) metricsSnapshot() map[string]uint64 {
	ts := w.store.Stats()
	rs := w.remote.Stats()
	w.mu.Lock()
	m := make(map[string]uint64, len(w.counters)+6)
	for k, v := range w.counters {
		m[k] = v
	}
	m["active_leases"] = uint64(len(w.active))
	w.mu.Unlock()
	m["cache_hits_local_total"] = ts.LocalHits
	m["cache_hits_remote_total"] = ts.RemoteHits
	m["remote_result_gets_total"] = rs.Gets
	m["remote_result_puts_total"] = rs.Puts
	m["remote_result_errors_total"] = rs.Errs
	return m
}

// postJSON posts v to path and decodes a 2xx body into out (when non-nil).
// Non-2xx statuses are returned without error so callers can branch on
// protocol codes (204, 409, 410).
func (w *Worker) postJSON(ctx context.Context, path string, v, out any) (int, error) {
	code, body, err := w.postJSONRaw(ctx, path, v)
	if err != nil {
		return 0, err
	}
	if code/100 == 2 && out != nil && len(body) > 0 {
		if err := json.Unmarshal(body, out); err != nil {
			return code, fmt.Errorf("decode %s response: %w", path, err)
		}
	}
	return code, nil
}

func (w *Worker) postJSONRaw(ctx context.Context, path string, v any) (int, []byte, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return 0, nil, err
	}
	base := strings.TrimRight(w.opts.Coordinator, "/")
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+path, bytes.NewReader(b))
	if err != nil {
		return 0, nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxResultBody))
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, body, nil
}

// progressBatcher batches a lease's engine progress events and flushes
// them to the coordinator on an interval from a single goroutine (which
// preserves emission order). A flush reply carrying Canceled aborts the
// lease, so client cancels propagate at flush latency, not heartbeat
// latency.
type progressBatcher struct {
	w        *Worker
	workerID string
	grant    LeaseGrant
	al       *activeLease

	mu   sync.Mutex
	buf  []exp.ProgressEvent
	stop chan struct{}
	done chan struct{}
}

func newProgressBatcher(w *Worker, workerID string, grant LeaseGrant, al *activeLease, every time.Duration) *progressBatcher {
	pb := &progressBatcher{
		w: w, workerID: workerID, grant: grant, al: al,
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	go pb.loop(every)
	return pb
}

// add enqueues one event; called from the runner's emit path (any
// goroutine).
func (pb *progressBatcher) add(ev exp.ProgressEvent) {
	pb.mu.Lock()
	pb.buf = append(pb.buf, ev)
	pb.mu.Unlock()
}

func (pb *progressBatcher) loop(every time.Duration) {
	defer close(pb.done)
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			pb.flush()
		case <-pb.stop:
			pb.flush()
			return
		}
	}
}

func (pb *progressBatcher) flush() {
	pb.mu.Lock()
	events := pb.buf
	pb.buf = nil
	pb.mu.Unlock()
	if len(events) == 0 {
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var reply ProgressReply
	code, err := pb.w.postJSON(ctx, "/fleet/v1/leases/"+pb.grant.Lease+"/progress",
		ProgressPost{Worker: pb.workerID, Gen: pb.grant.Gen, Events: events}, &reply)
	if err != nil || code != http.StatusOK {
		return // progress is best-effort; results carry the truth
	}
	if reply.Canceled {
		pb.w.cancelLease(pb.grant.Lease)
	}
}

// close flushes the remaining events and stops the flusher.
func (pb *progressBatcher) close() {
	select {
	case <-pb.stop:
	default:
		close(pb.stop)
	}
	<-pb.done
}
