// Package diskcache is the persistent, content-addressed result store
// layered under the experiment engine's in-memory memo cache. Each
// completed simulation is one JSON file addressed by its deterministic
// runKey, inside a directory namespaced by the producing binary's build
// identity — so identical runs are served from disk across process
// restarts and across clients, and a rebuilt binary (which may simulate
// differently) starts a fresh namespace instead of replaying stale
// results.
//
// Layout:
//
//	<root>/<build-id>/meta.json          — the full buildinfo identity
//	<root>/<build-id>/<kk>/<key>.json    — one entry; kk = key[:2]
//
// Writes are atomic (temp file + rename), so concurrent processes sharing
// a root — several CLIs, a server's worker pool — can only ever observe
// whole entries. Reads tolerate corruption: an unreadable or mismatched
// entry is a miss (and is deleted), never an error, because the store's
// failure mode must be "simulate again", not "fail the suite".
package diskcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"conspec/internal/buildinfo"
	"conspec/internal/pipeline"
)

// formatVersion is bumped when the entry envelope changes incompatibly;
// it participates in the namespace hash, so old entries become invisible
// rather than misread.
const formatVersion = 1

// Store is a persistent exp.ResultCache. The zero value is not usable;
// obtain one from Open. A nil *Store is a valid no-op cache, so callers
// can thread an optional store without nil checks at every use.
type Store struct {
	dir string // <root>/<build-id>, created by Open

	gets, hits, puts, putErrs atomic.Uint64
}

// entry is the on-disk envelope: the key is stored redundantly so a
// misplaced or truncated file can be detected and treated as a miss.
type entry struct {
	Key     string          `json:"key"`
	SavedAt time.Time       `json:"saved_at"`
	Result  pipeline.Result `json:"result"`
}

// meta is the human-readable namespace description written next to the
// entries, for operators inspecting a cache directory.
type meta struct {
	Format   int            `json:"format"`
	Identity string         `json:"identity"`
	Build    buildinfo.Info `json:"build"`
}

// BuildID derives the namespace directory name from a build identity: a
// short hash over the identity string and the store format version.
func BuildID(info buildinfo.Info) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("format=%d\n%s", formatVersion, info.Identity())))
	return hex.EncodeToString(h[:])[:16]
}

// Open creates (or reuses) the store rooted at root, namespaced by the
// running binary's build identity.
func Open(root string) (*Store, error) {
	return OpenFor(root, buildinfo.Get())
}

// OpenFor is Open with an explicit build identity (test hook, and the seam
// that makes "a rebuilt binary gets a fresh namespace" checkable without
// rebuilding).
func OpenFor(root string, info buildinfo.Info) (*Store, error) {
	dir := filepath.Join(root, BuildID(info))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	m := meta{Format: formatVersion, Identity: info.Identity(), Build: info}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	// Racing writers produce identical bytes, so last-write-wins is fine.
	if err := writeAtomic(filepath.Join(dir, "meta.json"), b); err != nil {
		return nil, err
	}
	return &Store{dir: dir}, nil
}

// Dir returns the namespace directory entries are stored under.
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// path maps a key to its entry file, sharding by the first two hex chars
// to keep directories small. Keys are validated defensively: anything that
// isn't plain lowercase hex of reasonable length (i.e. not a runKey) is
// rejected so a malformed key can never escape the store directory.
func (s *Store) path(key string) (string, bool) {
	if len(key) < 8 || len(key) > 128 {
		return "", false
	}
	for _, c := range key {
		if !strings.ContainsRune("0123456789abcdef", c) {
			return "", false
		}
	}
	return filepath.Join(s.dir, key[:2], key+".json"), true
}

// Get implements exp.ResultCache. Misses on nil stores, unknown keys, and
// corrupt entries (which are removed).
func (s *Store) Get(key string) (pipeline.Result, bool) {
	if s == nil {
		return pipeline.Result{}, false
	}
	s.gets.Add(1)
	p, ok := s.path(key)
	if !ok {
		return pipeline.Result{}, false
	}
	b, err := os.ReadFile(p)
	if err != nil {
		return pipeline.Result{}, false
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil || e.Key != key {
		os.Remove(p)
		return pipeline.Result{}, false
	}
	s.hits.Add(1)
	return e.Result, true
}

// Put implements exp.ResultCache. Errors are swallowed by design (see the
// package comment) but counted, so an operator can notice a full disk in
// the stats rather than in silently colder caches.
func (s *Store) Put(key string, res pipeline.Result) {
	if s == nil {
		return
	}
	s.puts.Add(1)
	p, ok := s.path(key)
	if !ok {
		s.putErrs.Add(1)
		return
	}
	b, err := json.Marshal(entry{Key: key, SavedAt: time.Now().UTC(), Result: res})
	if err != nil {
		s.putErrs.Add(1)
		return
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		s.putErrs.Add(1)
		return
	}
	if err := writeAtomic(p, b); err != nil {
		s.putErrs.Add(1)
	}
}

// Stats reports the store's activity since Open: lookups, lookup hits,
// attempted writes, and writes that failed.
func (s *Store) Stats() (gets, hits, puts, putErrs uint64) {
	if s == nil {
		return 0, 0, 0, 0
	}
	return s.gets.Load(), s.hits.Load(), s.puts.Load(), s.putErrs.Load()
}

// Len walks the namespace and counts stored entries (operator/test
// convenience; not on any hot path).
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	n := 0
	filepath.Walk(s.dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() &&
			strings.HasSuffix(path, ".json") && filepath.Base(path) != "meta.json" {
			n++
		}
		return nil
	})
	return n
}

// writeAtomic writes b to path via a same-directory temp file and rename.
func writeAtomic(path string, b []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	tmp := f.Name()
	_, werr := f.Write(b)
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("diskcache: %w", werr)
	}
	return nil
}
