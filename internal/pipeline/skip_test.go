package pipeline

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"conspec/internal/core"
	"conspec/internal/isa"
	"conspec/internal/obs"
	"conspec/internal/workload"
)

// runDeadlock stages the watchdog deadlock reproducer (see watchdog_test.go)
// with the stall skipper on or off and returns the wedged machine and its
// result. The poisoning phase uses StepCycle, which never skips, so both
// configurations enter Run from an identical machine state.
func runDeadlock(t *testing.T, skip bool) (*CPU, Result) {
	t.Helper()
	prog := deadlockProgram()
	backing := isa.NewFlatMem()
	prog.Load(backing)
	cpu := NewWithMemory(smallCore(), SecurityConfig{Mechanism: core.Baseline}, backing)
	cpu.SetStallSkip(skip)
	cpu.SetPC(prog.Base)

	victim := -1
	for i := 0; i < 5000 && victim < 0; i++ {
		cpu.StepCycle()
		for x, u := range cpu.iq {
			if u != nil && u.inst.Op.IsLoad() && !u.issued && u.waitCnt > 0 {
				victim = x
			}
		}
	}
	if victim < 0 {
		t.Fatal("victim load never appeared in the issue queue")
	}
	free := -1
	for y, u := range cpu.iq {
		if u == nil && y != victim {
			free = y
			break
		}
	}
	if free < 0 {
		t.Fatal("no free IQ slot to point the poisoned dependence at")
	}
	for i := 0; i < 4; i++ {
		if cpu.secmat.Get(victim, free) {
			break
		}
		cpu.secmat.Flip(victim, free)
		cpu.StepCycle()
	}
	if !cpu.secmat.Get(victim, free) {
		t.Fatal("poisoned dependence bit did not stick")
	}
	return cpu, cpu.Run(10_000_000)
}

// TestWatchdogTripsIdenticallyUnderSkip: fast-forwarded spans must count
// toward the watchdog's no-progress window, so a wedged machine trips at
// exactly the same wall-cycle whether the skipper stepped or jumped there.
func TestWatchdogTripsIdenticallyUnderSkip(t *testing.T) {
	fast, fres := runDeadlock(t, true)
	slow, sres := runDeadlock(t, false)

	if fres.Outcome != OutcomeDeadlock || sres.Outcome != OutcomeDeadlock {
		t.Fatalf("outcomes %v / %v, want deadlock in both", fres.Outcome, sres.Outcome)
	}
	if fres.Stages.SkipSpans == 0 {
		t.Fatal("skipper never engaged on the deadlock run; the test proves nothing")
	}
	if sres.Stages.SkipSpans != 0 || sres.Stages.SkippedCycles != 0 {
		t.Fatalf("skip-disabled run recorded skips: %d spans, %d cycles",
			sres.Stages.SkipSpans, sres.Stages.SkippedCycles)
	}
	if fres.Cycles != sres.Cycles {
		t.Fatalf("trip cycle diverged: %d with skip, %d without", fres.Cycles, sres.Cycles)
	}

	var fnpe, snpe *NoProgressError
	if !errors.As(fast.Err(), &fnpe) || !errors.As(slow.Err(), &snpe) {
		t.Fatalf("errors %v / %v, want *NoProgressError in both", fast.Err(), slow.Err())
	}
	if fnpe.Cycle != snpe.Cycle || fnpe.LastCommit != snpe.LastCommit || fnpe.Window != snpe.Window {
		t.Fatalf("trip bookkeeping diverged:\n  skip   %+v\n  noskip %+v", fnpe, snpe)
	}
	if fres.Hardening.WatchdogTrips != 1 || sres.Hardening.WatchdogTrips != 1 {
		t.Fatalf("WatchdogTrips %d / %d, want 1 in both",
			fres.Hardening.WatchdogTrips, sres.Hardening.WatchdogTrips)
	}
}

// skipRun runs one workload on a fresh machine with every observer attached
// (text tracer, O3PipeView writer, sampled metrics) and returns the result
// plus the raw observer outputs.
func skipRun(t *testing.T, w *workload.Workload, sec SecurityConfig, skip bool) (Result, []byte, []byte, *obs.Series) {
	t.Helper()
	backing := isa.NewFlatMem()
	w.Load(backing)
	cpu := NewWithMemory(smallCore(), sec, backing)
	cpu.SetStallSkip(skip)

	var trace, pview bytes.Buffer
	cpu.AttachTracer(&trace)
	cpu.AttachSink(obs.NewPipeViewSink(&pview))
	m := NewMetrics()
	m.EnableSampling(512, 4096)
	cpu.AttachMetrics(m)

	cpu.SetPC(w.Entry)
	res := cpu.RunFor(30_000, 3_000_000)
	if !res.Outcome.Completed() {
		t.Fatalf("outcome %v (diag %s)", res.Outcome, res.Diag)
	}
	if err := cpu.FlushSinks(); err != nil {
		t.Fatalf("flush sinks: %v", err)
	}
	return res, trace.Bytes(), pview.Bytes(), m.Series()
}

// TestSkipDifferentialAllDefenses: for every registered defense backend, a
// run with event-driven stall skipping must be byte-identical to the stepped
// run — same Result (modulo the two skip meta-counters), same trace stream,
// same O3PipeView output, same sampled metric series.
func TestSkipDifferentialAllDefenses(t *testing.T) {
	prof, ok := workload.ByName("mcf")
	if !ok {
		t.Fatal("mcf profile missing")
	}
	w := workload.MustGenerate(prof)

	engaged := false
	for _, d := range core.Defenses() {
		d := d
		t.Run(d.Name(), func(t *testing.T) {
			sec := SecurityConfig{Mechanism: d.Mechanism(), SSBD: d.SSBD()}
			fres, ftrace, fpview, fseries := skipRun(t, w, sec, true)
			sres, strace, spview, sseries := skipRun(t, w, sec, false)

			if sres.Stages.SkipSpans != 0 || sres.Stages.SkippedCycles != 0 {
				t.Fatalf("skip-disabled run recorded skips: %+v", sres.Stages)
			}
			if fres.Stages.SkipSpans > 0 {
				engaged = true
			}

			// Mask the simulator meta-counters; everything else must match.
			masked := fres
			masked.Stages.SkippedCycles = 0
			masked.Stages.SkipSpans = 0
			if !reflect.DeepEqual(masked, sres) {
				t.Errorf("Result diverged under skip:\n  skip   %+v\n  noskip %+v", masked, sres)
			}
			if !bytes.Equal(ftrace, strace) {
				t.Errorf("trace diverged: %d bytes with skip, %d without", len(ftrace), len(strace))
			}
			if !bytes.Equal(fpview, spview) {
				t.Errorf("pipeview diverged: %d bytes with skip, %d without", len(fpview), len(spview))
			}
			if !reflect.DeepEqual(fseries, sseries) {
				t.Errorf("metric series diverged: %d rows with skip, %d without",
					len(fseries.Rows), len(sseries.Rows))
			}
		})
	}
	if !engaged {
		t.Error("skipper never engaged on any backend; the differential proves nothing")
	}
}
