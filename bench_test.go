// Package conspec's top-level benchmarks regenerate every table and figure
// of the paper's evaluation (run with `go test -bench=. -benchmem`):
//
//	BenchmarkFig5              Figure 5  — normalized performance
//	BenchmarkTable4            Table IV  — security matrix
//	BenchmarkTable5            Table V   — filter analysis (same runs as Fig5)
//	BenchmarkTable6            Table VI  — A57/I7/Xeon sensitivity
//	BenchmarkMatrixScope       §VI.C(1)  — branch-only vs full matrix
//	BenchmarkLRUPolicies       §VII.A    — secure replacement updates
//	BenchmarkICacheFilter      §VII.B    — ICache-hit filter extension
//	BenchmarkHardwareOverhead  §VI.E     — area/timing model
//
// Each reports the headline numbers as custom metrics (overhead percentages
// etc.) so `go test -bench` output doubles as a results summary. Component
// microbenchmarks at the bottom measure the simulator itself.
package conspec

import (
	"context"
	"fmt"
	"testing"

	"conspec/internal/asm"
	"conspec/internal/attack"
	"conspec/internal/branch"
	"conspec/internal/config"
	"conspec/internal/core"
	"conspec/internal/exp"
	"conspec/internal/hw"
	"conspec/internal/isa"
	"conspec/internal/mem"
	"conspec/internal/pipeline"
	"conspec/internal/workload"
)

// benchSpec keeps per-iteration cost manageable; the cmd/conspec-bench tool
// runs the full-budget versions.
func benchSpec() exp.RunSpec {
	s := exp.DefaultSpec()
	s.Warmup = 10_000
	s.Measure = 50_000
	return s
}

// benchNames is the subset used by the heavyweight suites under -bench;
// pass -benchtime=1x and use cmd/conspec-bench for all 22.
var benchNames = []string{"astar", "hmmer", "lbm", "libquantum", "zeusmp", "GemsFDTD"}

// benchRunner builds a fresh experiment engine per iteration so benchmark
// timings measure real simulations, not the memo cache.
func benchRunner() *exp.Runner { return exp.NewRunner(exp.RunnerOptions{}) }

func BenchmarkFig5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ev, err := benchRunner().Evaluation(context.Background(), benchSpec(), benchNames)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*ev.AverageOverhead(core.Baseline), "baseline-ovh-%")
		b.ReportMetric(100*ev.AverageOverhead(core.CacheHit), "cachehit-ovh-%")
		b.ReportMetric(100*ev.AverageOverhead(core.CacheHitTPBuf), "tpbuf-ovh-%")
	}
}

func BenchmarkTable4(b *testing.B) {
	cfg := config.PaperCore()
	cfg.Mem.L2Size = 256 * 1024
	cfg.Mem.L3Size = 1024 * 1024
	for i := 0; i < b.N; i++ {
		outcomes, err := benchRunner().Table4(context.Background(), cfg)
		if err != nil {
			b.Fatal(err)
		}
		matches := 0
		for _, o := range outcomes {
			shared := o.Scenario != "v1-samepage/prime+probe" && o.Scenario != "v1-samepage/evict+time"
			if o.Leaked != attack.ExpectedDefense("", shared, o.Mechanism) {
				matches++
			}
		}
		b.ReportMetric(float64(matches), "cells-matching-paper")
		b.ReportMetric(float64(len(outcomes)), "cells-total")
	}
}

func BenchmarkTable5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ev, err := benchRunner().Evaluation(context.Background(), benchSpec(), benchNames)
		if err != nil {
			b.Fatal(err)
		}
		var l1, blocked float64
		for _, bench := range ev.Benches {
			l1 += bench.Results[core.Origin].L1D.HitRate()
			blocked += bench.Results[core.Baseline].Filter.BlockedRate()
		}
		n := float64(len(ev.Benches))
		b.ReportMetric(100*l1/n, "l1-hit-%")
		b.ReportMetric(100*blocked/n, "baseline-blocked-%")
	}
}

func BenchmarkTable6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cores, err := benchRunner().Table6(context.Background(), benchSpec(), []string{"astar", "hmmer", "lbm"})
		if err != nil {
			b.Fatal(err)
		}
		for _, tc := range cores {
			b.ReportMetric(100*tc.Avg.TPBuf, tc.Core+"-tpbuf-ovh-%")
		}
	}
}

func BenchmarkMatrixScope(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := benchRunner().Scope(context.Background(), benchSpec(), []string{"astar", "hmmer", "lbm"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.BranchOnlyAvg, "branch-only-ovh-%")
		b.ReportMetric(100*r.FullAvg, "full-matrix-ovh-%")
	}
}

func BenchmarkLRUPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := benchRunner().LRU(context.Background(), benchSpec(), []string{"astar", "bzip2"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(r.NoUpdate-r.Always), "noupdate-cost-%")
		b.ReportMetric(100*(r.NoUpdate-r.Delayed), "delayed-gain-%")
	}
}

func BenchmarkICacheFilter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := benchRunner().ICache(context.Background(), benchSpec(), []string{"astar", "gobmk"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(r.With-r.Without), "icache-filter-cost-%")
	}
}

func BenchmarkHardwareOverhead(b *testing.B) {
	tech := hw.SMIC40()
	var last hw.Report
	for i := 0; i < b.N; i++ {
		for _, cfg := range append([]config.Core{config.PaperCore()}, config.SensitivityCores()...) {
			last = hw.Evaluate(tech, cfg)
		}
	}
	b.ReportMetric(last.Matrix.MM2, "xeon-matrix-mm2")
}

// --- component microbenchmarks ----------------------------------------------

// BenchmarkSimulatorThroughput measures raw simulation speed in committed
// guest instructions per host operation (the figure of merit for scaling
// the instruction budgets up).
func BenchmarkSimulatorThroughput(b *testing.B) {
	p, _ := workload.ByName("GemsFDTD")
	w := workload.MustGenerate(p)
	backing := isa.NewFlatMem()
	w.Load(backing)
	cpu := pipeline.NewWithMemory(config.PaperCore(),
		pipeline.SecurityConfig{Mechanism: core.CacheHitTPBuf}, backing)
	cpu.SetPC(w.Entry)
	b.ResetTimer()
	cpu.RunFor(uint64(b.N), ^uint64(0))
}

// BenchmarkSecMatrixDispatch drives the dispatch stage's production path
// (OnDispatchMask over a word-wide producer mask) at worst-case density:
// every other issue-queue slot holds a valid, unissued memory producer.
func BenchmarkSecMatrixDispatch(b *testing.B) {
	m := core.NewSecMatrix(64, core.ScopeBranchMem)
	producers := make([]uint64, m.Words())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x := i % 64
		producers[0] = ^(uint64(1) << uint(x)) // everyone but the new occupant
		m.OnDispatchMask(x, core.ClassMem, producers)
	}
}

func BenchmarkSecMatrixHazardCheck(b *testing.B) {
	m := core.NewSecMatrix(64, core.ScopeBranchMem)
	entries := make([]core.EntryState, 64)
	for i := range entries {
		entries[i] = core.EntryState{Valid: true, Class: core.ClassMem}
	}
	m.OnDispatch(7, core.ClassMem, entries)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Peek(7)
	}
}

func BenchmarkTPBufQuery(b *testing.B) {
	t := core.NewTPBuf(56)
	for i := 0; i < 56; i++ {
		t.Allocate(i)
		t.SetSuspect(i, i%3 == 0)
		t.SetPPN(i, uint64(i)/4)
		if i%2 == 0 {
			t.SetWriteback(i)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.QuerySafe(55, uint64(i)&7)
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c := mem.NewCache("bench", 64*1024, 4, 64, 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint64(i) * 64 % (1 << 20)
		if !c.Access(addr, true) {
			c.Refill(addr)
		}
	}
}

func BenchmarkAssembler(b *testing.B) {
	for i := 0; i < b.N; i++ {
		bb := asm.New()
		bb.Li(asm.S0, 0)
		bb.Bind("loop")
		for j := 0; j < 20; j++ {
			bb.Addi(asm.S0, asm.S0, 1)
		}
		bb.Blt(asm.S0, asm.S1, "loop")
		bb.Halt()
		if _, err := bb.Assemble(0x1000); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, p := range workload.Profiles() {
			if _, err := workload.Generate(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- ablation benchmarks ------------------------------------------------------
// Design-choice studies DESIGN.md calls out: each reports its headline
// deltas as custom metrics.

// BenchmarkAblationPredictorKind compares direction predictors on the
// branchy benchmarks (astar-class sensitivity per §VI.C(1)).
func BenchmarkAblationPredictorKind(b *testing.B) {
	p, _ := workload.ByName("astar")
	w := workload.MustGenerate(p)
	for i := 0; i < b.N; i++ {
		for _, kind := range []branch.Kind{branch.KindBimodal, branch.KindGshare, branch.KindTournament} {
			cfg := config.PaperCore()
			cfg.Predictor.Kind = kind
			spec := benchSpec()
			spec.Core = cfg
			res := exp.RunWorkload(w, spec)
			b.ReportMetric(100*res.Branch.MispredictRate(), kind.String()+"-mispredict-%")
		}
	}
}

// BenchmarkAblationStoreSets measures the memory-dependence predictor's
// effect on violation-heavy code: a kernel whose store address resolves
// late while a younger load reads the same slot every iteration.
func BenchmarkAblationStoreSets(b *testing.B) {
	bb := asm.New()
	bb.Li(asm.A0, 0x30000)
	bb.Li(asm.S0, 0)
	bb.Li(asm.S1, 3000)
	bb.Bind("loop")
	bb.Li(asm.T0, 1)
	for i := 0; i < 8; i++ {
		bb.Mul(asm.T0, asm.T0, asm.T0) // delay the store's address
	}
	bb.Add(asm.T1, asm.A0, asm.T0)
	bb.Addi(asm.T1, asm.T1, -1)
	bb.St(asm.T2, asm.T1, 0)
	bb.Ld(asm.T3, asm.A0, 0) // speculates past the store, same address
	bb.Addi(asm.S0, asm.S0, 1)
	bb.Blt(asm.S0, asm.S1, "loop")
	bb.Halt()
	prog := bb.MustAssemble(0x1000)

	for i := 0; i < b.N; i++ {
		for _, on := range []bool{false, true} {
			cfg := config.PaperCore()
			cfg.StoreSets = on
			backing := isa.NewFlatMem()
			prog.Load(backing)
			cpu := pipeline.NewWithMemory(cfg,
				pipeline.SecurityConfig{Mechanism: core.Origin}, backing)
			cpu.SetPC(prog.Base)
			res := cpu.Run(10_000_000)
			name := "violations-without"
			if on {
				name = "violations-with-storesets"
			}
			b.ReportMetric(float64(res.MemViolations), name)
		}
	}
}

// BenchmarkAblationPrefetcher measures the next-line prefetcher's effect on
// a streaming workload's hit rate and runtime, with the defense active.
func BenchmarkAblationPrefetcher(b *testing.B) {
	p, _ := workload.ByName("lbm")
	w := workload.MustGenerate(p)
	for i := 0; i < b.N; i++ {
		var cycles [2]uint64
		for j, on := range []bool{false, true} {
			cfg := config.PaperCore()
			cfg.Mem.NextLinePrefetch = on
			spec := benchSpec()
			spec.Core = cfg
			spec.Sec = pipeline.SecurityConfig{Mechanism: core.CacheHitTPBuf}
			res := exp.RunWorkload(w, spec)
			cycles[j] = res.Cycles
			if on {
				b.ReportMetric(100*res.L1D.HitRate(), "l1-hit-with-prefetch-%")
			}
		}
		b.ReportMetric(100*(float64(cycles[0])/float64(cycles[1])-1), "prefetch-speedup-%")
	}
}

// BenchmarkDefenseComparison reports the three-way defense comparison.
func BenchmarkDefenseComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := benchRunner().Compare(context.Background(), benchSpec(), []string{"astar", "lbm", "libquantum"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*r.Avg.TPBuf, "tpbuf-ovh-%")
		b.ReportMetric(100*r.Avg.Invisi, "invisispec-ovh-%")
		b.ReportMetric(100*r.Avg.SWFence, "swfence-ovh-%")
	}
}

// BenchmarkAblationReplacement compares cache victim policies under the
// full defense (LRU is the paper's machine; PLRU is what ships; random
// trades performance for metadata-free replacement).
func BenchmarkAblationReplacement(b *testing.B) {
	p, _ := workload.ByName("astar")
	w := workload.MustGenerate(p)
	for i := 0; i < b.N; i++ {
		for _, k := range []mem.ReplacementKind{mem.ReplLRU, mem.ReplTreePLRU, mem.ReplRandom} {
			cfg := config.PaperCore()
			cfg.Mem.Replacement = k
			spec := benchSpec()
			spec.Core = cfg
			spec.Sec = pipeline.SecurityConfig{Mechanism: core.CacheHitTPBuf}
			res := exp.RunWorkload(w, spec)
			b.ReportMetric(100*res.L1D.HitRate(), k.String()+"-l1hit-%")
		}
	}
}

// BenchmarkAblationMSHR sweeps the outstanding-miss budget on a
// memory-level-parallelism-hungry stream.
func BenchmarkAblationMSHR(b *testing.B) {
	p, _ := workload.ByName("zeusmp")
	w := workload.MustGenerate(p)
	for i := 0; i < b.N; i++ {
		base := uint64(0)
		for _, mshrs := range []int{0, 8, 2, 1} {
			cfg := config.PaperCore()
			cfg.MaxMSHRs = mshrs
			spec := benchSpec()
			spec.Core = cfg
			res := exp.RunWorkload(w, spec)
			if mshrs == 0 {
				base = res.Cycles
			} else {
				b.ReportMetric(100*(float64(res.Cycles)/float64(base)-1),
					fmt.Sprintf("mshr%d-slowdown-%%", mshrs))
			}
		}
	}
}

// BenchmarkAblationDTLBFilter reports the translation-channel filter's cost.
func BenchmarkAblationDTLBFilter(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r, err := benchRunner().DTLB(context.Background(), benchSpec(), []string{"astar", "milc", "zeusmp"})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(r.With-r.Without), "dtlb-filter-cost-%")
	}
}

// BenchmarkAblationTPBufVariant sweeps the S-Pattern matching rule on lbm
// (the benchmark TPBuf rescues): the paper's page-granular W-gated rule,
// the stricter no-W rule, and the degenerate line-granular rule.
func BenchmarkAblationTPBufVariant(b *testing.B) {
	p, _ := workload.ByName("lbm")
	w := workload.MustGenerate(p)
	for i := 0; i < b.N; i++ {
		for _, v := range []core.TPBufVariant{core.VariantPaper, core.VariantNoW, core.VariantLine} {
			spec := benchSpec()
			spec.Sec = pipeline.SecurityConfig{Mechanism: core.CacheHitTPBuf, TPBufVariant: v}
			res := exp.RunWorkload(w, spec)
			b.ReportMetric(100*res.TPBuf.MismatchRate(), v.String()+"-mismatch-%")
		}
	}
}

// BenchmarkAblationFusedStores quantifies the gem5-style store-issue model's
// effect on the Baseline mechanism (the DESIGN.md §7 fidelity discussion).
func BenchmarkAblationFusedStores(b *testing.B) {
	p, _ := workload.ByName("lbm")
	w := workload.MustGenerate(p)
	for i := 0; i < b.N; i++ {
		for _, fused := range []bool{false, true} {
			cfg := config.PaperCore()
			cfg.FusedStores = fused
			spec := benchSpec()
			spec.Core = cfg
			spec.Sec = pipeline.SecurityConfig{Mechanism: core.Baseline}
			res := exp.RunWorkload(w, spec)
			name := "split-stores-cycles"
			if fused {
				name = "fused-stores-cycles"
			}
			b.ReportMetric(float64(res.Cycles), name)
		}
	}
}
