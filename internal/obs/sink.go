package obs

import (
	"fmt"
	"io"
)

// EventKind classifies one pipeline trace event.
type EventKind uint8

const (
	// EvFetch: the instruction entered the fetch queue.
	EvFetch EventKind = iota
	// EvDispatch: renamed and allocated into ROB/IQ/LSQ.
	EvDispatch
	// EvIssue: accepted by the select logic and sent to a functional unit.
	EvIssue
	// EvWriteback: result became visible to the issue queue.
	EvWriteback
	// EvCommit: retired architecturally.
	EvCommit
	// EvSquash is a pipeline-level event, not a per-instruction one: every
	// in-flight instruction with sequence number >= Seq was squashed and
	// fetch was re-steered to PC.
	EvSquash
)

// String returns the stage label used by the text tracer.
func (k EventKind) String() string {
	switch k {
	case EvFetch:
		return "FETCH"
	case EvDispatch:
		return "DISPATCH"
	case EvIssue:
		return "ISSUE"
	case EvWriteback:
		return "WB"
	case EvCommit:
		return "COMMIT"
	case EvSquash:
		return "SQUASH"
	}
	return "UNKNOWN"
}

// TraceEvent is one pipeline event. For per-instruction kinds Seq/PC/Disasm
// identify the dynamic instruction; Suspect and Blocked carry the security
// state known at emission time (the suspect speculation flag is assigned at
// issue, so fetch/dispatch events never carry it).
type TraceEvent struct {
	Cycle   uint64
	Kind    EventKind
	Seq     uint64
	PC      uint64
	Suspect bool
	Blocked bool
	Disasm  string
}

// EventSink consumes pipeline trace events. Sinks run only when attached —
// they may allocate and buffer; Flush is called once after the run to drain
// any buffered state.
type EventSink interface {
	Event(ev TraceEvent)
	Flush() error
}

// TextSink renders events in the human-readable one-line-per-event format
// the debug tracer has always used.
type TextSink struct {
	w io.Writer
}

// NewTextSink builds a text sink over w.
func NewTextSink(w io.Writer) *TextSink { return &TextSink{w: w} }

// Event writes one line.
func (t *TextSink) Event(ev TraceEvent) {
	if ev.Kind == EvSquash {
		fmt.Fprintf(t.w, "%8d SQUASH   from seq=%d, redirect pc=%#x\n",
			ev.Cycle, ev.Seq, ev.PC)
		return
	}
	fmt.Fprintf(t.w, "%8d %-8s seq=%-6d pc=%#x  %s\n",
		ev.Cycle, ev.Kind, ev.Seq, ev.PC, ev.Disasm)
}

// Flush is a no-op: the text sink writes through.
func (t *TextSink) Flush() error { return nil }
