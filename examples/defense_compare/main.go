// Defense comparison: the paper's Conditional Speculation against the two
// alternatives its Related Work section discusses — an InvisiSpec-style
// invisible-load mechanism (hardware) and LFENCE-style recompilation
// (software). Three questions, answered live:
//
//  1. performance: what does each defense cost on representative kernels?
//
//  2. security: which channels does each one close?
//
//  3. character: where do the hardware mechanisms' costs come from?
//
//     go run ./examples/defense_compare
package main

import (
	"context"
	"fmt"
	"log"

	"conspec/internal/attack"
	"conspec/internal/config"
	"conspec/internal/core"
	"conspec/internal/exp"
	"conspec/internal/pipeline"
)

func main() {
	fmt.Println("-- performance (overhead vs the unprotected core) --")
	runner := exp.NewRunner(exp.RunnerOptions{})
	r, err := runner.Compare(context.Background(), exp.DefaultSpec(),
		[]string{"astar", "hmmer", "lbm", "libquantum"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(exp.CompareText(r))
	fmt.Println()

	fmt.Println("-- security (the channels TPBuf cannot see) --")
	cfg := config.PaperCore()
	cfg.Mem.L2Size = 256 * 1024
	cfg.Mem.L3Size = 1024 * 1024
	h, _ := attack.ByName(cfg, "v1-samepage/prime+probe")
	for _, m := range []core.Mechanism{core.CacheHitTPBuf, core.InvisiSpec} {
		o := h.Run(cfg, pipeline.SecurityConfig{Mechanism: m})
		verdict := "DEFENDED"
		if o.Leaked {
			verdict = "LEAKED (S-Pattern never forms on same-page transmission)"
		}
		fmt.Printf("%-34s %s: %d/%d bytes\n", m, verdict, o.Correct, len(o.Secret))
	}
	fmt.Println()
	fmt.Println("Conditional Speculation blocks only what matches its attack model;")
	fmt.Println("InvisiSpec hides everything and instead pays on speculative refill")
	fmt.Println("reuse (see lbm above). The paper argues the two are orthogonal and")
	fmt.Println("composable — this repo lets you measure both sides of that claim.")
}
