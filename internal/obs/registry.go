// Package obs is the zero-allocation observability layer threaded through
// the simulator's cycle loop. It has three parts:
//
//   - a typed metric Registry (counters, gauges, fixed-bucket histograms
//     backed by plain arrays) that the pipeline records security-specific
//     distributions into: suspect-window lengths, discarded-miss re-issue
//     latencies, TPBuf occupancy, structure occupancies, squash depths;
//   - an interval Sampler that snapshots every registered metric into an
//     in-memory time series every N cycles, exported as JSONL or CSV;
//   - an EventSink interface fed one TraceEvent per pipeline event, with a
//     human-readable TextSink and an O3PipeView (Konata-compatible)
//     PipeViewSink implementation.
//
// The hot-path contract: with nothing attached every recording call is a
// nil-receiver no-op (a single branch-predicted test); with metrics
// attached, recording is a bounds scan plus an array write — never an
// allocation. Allocation is confined to construction and to export, which
// run outside the measured cycle loop. Event sinks are debug/analysis
// machinery and carry no such guarantee.
package obs

import "fmt"

// DefaultBounds is the shared power-of-two histogram bucket layout: it
// covers both cycle-denominated latencies (miss penalties, suspect windows)
// and structure occupancies (IQ/ROB/LSQ sizes) with one fixed array.
var DefaultBounds = []uint64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
	2048, 4096, 16384, 65536}

// Counter is a monotonically increasing uint64. The zero value is unusable;
// obtain one from Registry.Counter. All methods are nil-safe so a detached
// metric set costs one predicted branch per call site.
type Counter struct {
	v uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.v++
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.v += n
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a settable instantaneous value.
type Gauge struct {
	v uint64
}

// Set replaces the value.
func (g *Gauge) Set(v uint64) {
	if g == nil {
		return
	}
	g.v = v
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() uint64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram is a fixed-bucket histogram over uint64 observations. Bucket i
// counts observations v <= Bounds[i]; one implicit overflow bucket counts
// the rest. Count, Sum and Max are maintained alongside so interval samples
// stay cheap (three words per histogram, not the whole bucket array).
type Histogram struct {
	bounds []uint64
	counts []uint64 // len(bounds)+1; last bucket = overflow
	count  uint64
	sum    uint64
	max    uint64
}

// Observe records v: a linear scan over the (small, fixed) bounds array and
// one array increment. Nil-safe.
func (h *Histogram) Observe(v uint64) {
	if h == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.count++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// ObserveN records n identical observations of v in O(1) — the bulk form
// the event-driven stall skipper uses to credit an occupancy histogram for
// a whole skipped span at once. Equivalent to calling Observe(v) n times.
// Nil-safe.
func (h *Histogram) ObserveN(v, n uint64) {
	if h == nil || n == 0 {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i] += n
	h.count += n
	h.sum += v * n
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Max returns the largest observation seen.
func (h *Histogram) Max() uint64 {
	if h == nil {
		return 0
	}
	return h.max
}

// Mean returns Sum/Count (0 when empty).
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// HistogramSnapshot is a histogram's exportable final state. Counts has one
// more entry than Bounds: the overflow bucket.
type HistogramSnapshot struct {
	Name   string   `json:"name"`
	Bounds []uint64 `json:"bounds"`
	Counts []uint64 `json:"counts"`
	Count  uint64   `json:"count"`
	Sum    uint64   `json:"sum"`
	Max    uint64   `json:"max"`
}

// column is one sampled value stream: a name plus a closure reading the
// current value. Counters, gauges and histogram summaries all reduce to
// columns, so the sampler is a single loop.
type column struct {
	name string
	read func() uint64
}

// Registry holds the named metrics of one simulation. Registration happens
// at construction time (and may allocate); recording and sampling do not.
type Registry struct {
	cols  []column
	names map[string]bool
	hists []*Histogram
	hname []string
	// unsampled holds metrics excluded from interval sample rows (see
	// CounterUnsampled); Prometheus exposition still exports them.
	unsampled []column
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

func (r *Registry) addColumn(name string, read func() uint64) {
	if r.names[name] {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.names[name] = true
	r.cols = append(r.cols, column{name: name, read: read})
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.addColumn(name, c.Value)
	return c
}

// CounterUnsampled registers and returns a counter that is exported by
// WritePrometheus but excluded from interval sample rows. This is for
// meta-metrics about the simulation itself (e.g. the stall skipper's
// skipped_cycles/skip_spans): putting them in the sampled series would make
// otherwise byte-identical runs differ just because one engaged a
// simulator-level optimization.
func (r *Registry) CounterUnsampled(name string) *Counter {
	if r.names[name] {
		panic(fmt.Sprintf("obs: duplicate metric %q", name))
	}
	r.names[name] = true
	c := &Counter{}
	r.unsampled = append(r.unsampled, column{name: name, read: c.Value})
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name string) *Gauge {
	g := &Gauge{}
	r.addColumn(name, g.Value)
	return g
}

// GaugeFunc registers an externally computed readout — the bridge that
// pulls already-maintained statistics (cache hit counters, filter stats)
// into the time series without instrumenting their hot paths. fn is called
// only at sample boundaries and must not allocate.
func (r *Registry) GaugeFunc(name string, fn func() uint64) {
	r.addColumn(name, fn)
}

// Histogram registers a histogram with the given bucket upper bounds
// (ascending). Its time-series columns are <name>.count, <name>.sum and
// <name>.max; the full bucket array is exported once per run via Snapshots.
func (r *Registry) Histogram(name string, bounds []uint64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram %q bounds not ascending", name))
		}
	}
	h := &Histogram{bounds: bounds, counts: make([]uint64, len(bounds)+1)}
	r.addColumn(name+".count", h.Count)
	r.addColumn(name+".sum", h.Sum)
	r.addColumn(name+".max", h.Max)
	r.hists = append(r.hists, h)
	r.hname = append(r.hname, name)
	return h
}

// Columns returns the sampled column names in registration order.
// NumColumns returns the number of registered sample columns.
func (r *Registry) NumColumns() int { return len(r.cols) }

func (r *Registry) Columns() []string {
	out := make([]string, len(r.cols))
	for i, c := range r.cols {
		out[i] = c.name
	}
	return out
}

// AppendSample appends every column's current value to dst and returns it.
// With sufficient capacity this performs no allocation.
func (r *Registry) AppendSample(dst []uint64) []uint64 {
	for _, c := range r.cols {
		dst = append(dst, c.read())
	}
	return dst
}

// Snapshots returns the final state of every registered histogram.
func (r *Registry) Snapshots() []HistogramSnapshot {
	out := make([]HistogramSnapshot, len(r.hists))
	for i, h := range r.hists {
		out[i] = HistogramSnapshot{
			Name:   r.hname[i],
			Bounds: append([]uint64(nil), h.bounds...),
			Counts: append([]uint64(nil), h.counts...),
			Count:  h.count,
			Sum:    h.sum,
			Max:    h.max,
		}
	}
	return out
}
