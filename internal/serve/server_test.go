package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"conspec/internal/diskcache"
	"conspec/internal/exp"
	"conspec/internal/exp/report"
)

// fakeExec swaps the production suite executor for a controllable one.
type fakeExec struct {
	mu      sync.Mutex
	started chan string   // receives job ids as they begin executing
	release chan struct{} // each receive lets one exec return
	running int32
	maxSeen int32
	stats   exp.Stats
	err     error
}

func newFakeExec() *fakeExec {
	return &fakeExec{
		started: make(chan string, 64),
		release: make(chan struct{}, 64),
	}
}

func (f *fakeExec) run(ctx context.Context, j *job, emit func(exp.ProgressEvent)) (*report.Report, exp.Stats, int, error) {
	n := atomic.AddInt32(&f.running, 1)
	defer atomic.AddInt32(&f.running, -1)
	for {
		old := atomic.LoadInt32(&f.maxSeen)
		if n <= old || atomic.CompareAndSwapInt32(&f.maxSeen, old, n) {
			break
		}
	}
	f.started <- j.id
	emit(exp.ProgressEvent{Suite: exp.SuiteID(j.spec.Suite), Benchmark: "fake", Mechanism: "fake", Phase: exp.PhaseRunStart})
	select {
	case <-f.release:
	case <-ctx.Done():
		return nil, exp.Stats{}, 0, ctx.Err()
	}
	if f.err != nil {
		return nil, exp.Stats{}, 0, f.err
	}
	emit(exp.ProgressEvent{Suite: exp.SuiteID(j.spec.Suite), Benchmark: "fake", Mechanism: "fake", Phase: exp.PhaseRunDone})
	return report.New(), f.stats, 0, nil
}

// releaseAll lets n pending execs finish.
func (f *fakeExec) releaseAll(n int) {
	for i := 0; i < n; i++ {
		f.release <- struct{}{}
	}
}

func newTestServer(t *testing.T, cfg Config, fake *fakeExec) (*Server, *httptest.Server) {
	t.Helper()
	if fake != nil {
		// Via Config, not assigned after New: recovered jobs reach a worker
		// (which reads s.exec) before New returns.
		cfg.execOverride = fake.run
	}
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func submit(t *testing.T, base string, spec JobSpec) JobStatus {
	t.Helper()
	st, code := trySubmit(t, base, spec)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	return st
}

func trySubmit(t *testing.T, base string, spec JobSpec) (JobStatus, int) {
	t.Helper()
	body, _ := json.Marshal(spec)
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("submit decode: %v", err)
		}
	}
	return st, resp.StatusCode
}

func getJob(t *testing.T, base, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(base + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get %s: status %d", id, resp.StatusCode)
	}
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("get decode: %v", err)
	}
	return st
}

func waitStatus(t *testing.T, base, id string, want Status) JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		st := getJob(t, base, id)
		if st.Status == want {
			return st
		}
		if st.Status.Terminal() {
			t.Fatalf("job %s reached %s (error %q), want %s", id, st.Status, st.Error, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
	return JobStatus{}
}

// readSSE consumes one SSE stream to completion, returning the decoded
// events in order.
func readSSE(t *testing.T, body io.Reader) []Event {
	t.Helper()
	var events []Event
	sc := bufio.NewScanner(body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			var ev Event
			if err := json.Unmarshal([]byte(data), &ev); err != nil {
				t.Fatalf("bad SSE data %q: %v", data, err)
			}
			events = append(events, ev)
		}
	}
	return events
}

// tinySpec keeps real-simulation tests fast (< a few seconds).
func tinySpec(suite string) JobSpec {
	return JobSpec{Suite: suite, Benches: []string{"astar"}, Warmup: 2000, Measure: 8000}
}

func TestSubmitStreamResult(t *testing.T) {
	fake := newFakeExec()
	fake.stats = exp.Stats{Executed: 4}
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4}, fake)

	st := submit(t, ts.URL, JobSpec{Suite: "lru"})
	if st.Status != StatusQueued && st.Status != StatusRunning {
		t.Fatalf("initial status %s", st.Status)
	}

	// Attach the event stream while the job is live.
	<-fake.started
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	fake.releaseAll(1)
	events := readSSE(t, resp.Body)

	if len(events) < 4 {
		t.Fatalf("got %d events, want >= 4: %+v", len(events), events)
	}
	if events[0].Type != "state" || events[0].Status != StatusQueued {
		t.Fatalf("first event %+v, want queued state", events[0])
	}
	last := events[len(events)-1]
	if !last.Terminal() || last.Status != StatusDone {
		t.Fatalf("last event %+v, want done state", last)
	}
	var progress int
	for i, ev := range events {
		if ev.Seq != i {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
		if ev.Type == "progress" {
			progress++
			if ev.Progress == nil {
				t.Fatalf("progress event without payload: %+v", ev)
			}
		}
	}
	if progress != 2 {
		t.Fatalf("got %d progress events, want 2", progress)
	}

	done := getJob(t, ts.URL, st.ID)
	if done.Status != StatusDone || done.Result == nil {
		t.Fatalf("GET after done: status %s, result nil=%v", done.Status, done.Result == nil)
	}
	if done.Engine == nil || done.Engine.Executed != 4 {
		t.Fatalf("engine stats %+v, want executed 4", done.Engine)
	}
}

func TestSSEReplayAfterCompletion(t *testing.T) {
	fake := newFakeExec()
	_, ts := newTestServer(t, Config{Workers: 1}, fake)
	st := submit(t, ts.URL, JobSpec{Suite: "lru"})
	<-fake.started
	fake.releaseAll(1)
	waitStatus(t, ts.URL, st.ID, StatusDone)

	// A subscriber arriving after the fact still gets the full history and
	// a stream that terminates on its own.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readSSE(t, resp.Body)
	if len(events) == 0 || !events[len(events)-1].Terminal() {
		t.Fatalf("replayed stream did not end with terminal event: %+v", events)
	}
}

func TestQueueFullRejectsWith429(t *testing.T) {
	fake := newFakeExec()
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 1}, fake)

	first := submit(t, ts.URL, JobSpec{Suite: "lru"})
	<-fake.started // worker busy on first
	second := submit(t, ts.URL, JobSpec{Suite: "lru"})

	// Worker occupied, queue holds one: the third submission must bounce.
	body, _ := json.Marshal(JobSpec{Suite: "lru"})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	fake.releaseAll(2)
	waitStatus(t, ts.URL, first.ID, StatusDone)
	waitStatus(t, ts.URL, second.ID, StatusDone)
}

func TestWorkerPoolBound(t *testing.T) {
	fake := newFakeExec()
	_, ts := newTestServer(t, Config{Workers: 2, QueueCap: 16}, fake)

	var ids []string
	for i := 0; i < 8; i++ {
		ids = append(ids, submit(t, ts.URL, JobSpec{Suite: "lru"}).ID)
	}
	// Exactly Workers jobs may execute at once; release them one at a time
	// so every job cycles through.
	for i := 0; i < 8; i++ {
		<-fake.started
		fake.releaseAll(1)
	}
	for _, id := range ids {
		waitStatus(t, ts.URL, id, StatusDone)
	}
	if max := atomic.LoadInt32(&fake.maxSeen); max > 2 {
		t.Fatalf("observed %d concurrent jobs, worker pool bound is 2", max)
	}
}

func TestCancelViaDelete(t *testing.T) {
	fake := newFakeExec()
	_, ts := newTestServer(t, Config{Workers: 1}, fake)
	st := submit(t, ts.URL, JobSpec{Suite: "lru"})
	<-fake.started

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	got := waitStatus(t, ts.URL, st.ID, StatusCanceled)
	if got.Result != nil {
		t.Fatal("canceled job has a result")
	}
}

func TestCancelOnClientDisconnect(t *testing.T) {
	fake := newFakeExec()
	_, ts := newTestServer(t, Config{Workers: 1}, fake)
	st := submit(t, ts.URL, JobSpec{Suite: "lru", CancelOnDisconnect: true})
	<-fake.started

	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/v1/jobs/"+st.ID+"/events", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read one frame so the subscription is live, then hang up.
	buf := make([]byte, 1)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatal(err)
	}
	cancel()
	resp.Body.Close()

	waitStatus(t, ts.URL, st.ID, StatusCanceled)
}

func TestGracefulDrain(t *testing.T) {
	fake := newFakeExec()
	s, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4}, fake)

	running := submit(t, ts.URL, JobSpec{Suite: "lru"})
	<-fake.started
	queued := submit(t, ts.URL, JobSpec{Suite: "lru"})

	drained := make(chan error, 1)
	go func() { drained <- s.Drain(context.Background()) }()

	// New submissions are refused while draining. Poll: the drain flag is
	// set by the goroutine above.
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, code := trySubmit(t, ts.URL, JobSpec{Suite: "lru"})
		if code == http.StatusServiceUnavailable {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("drain never started refusing submissions (last code %d)", code)
		}
		time.Sleep(5 * time.Millisecond)
	}

	// Both in-flight jobs complete and keep their results.
	fake.releaseAll(2)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	for _, id := range []string{running.ID, queued.ID} {
		st := getJob(t, ts.URL, id)
		if st.Status != StatusDone {
			t.Fatalf("job %s drained to %s, want done", id, st.Status)
		}
	}
}

func TestDrainDeadlineCancelsLiveJobs(t *testing.T) {
	fake := newFakeExec()
	s, ts := newTestServer(t, Config{Workers: 1}, fake)
	st := submit(t, ts.URL, JobSpec{Suite: "lru"})
	<-fake.started // never released: only the drain deadline can end it

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("drain err %v, want deadline exceeded", err)
	}
	got := getJob(t, ts.URL, st.ID)
	if got.Status != StatusCanceled {
		t.Fatalf("job status %s after forced drain, want canceled", got.Status)
	}
}

func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1}, newFakeExec())
	for _, spec := range []JobSpec{
		{Suite: "nope"},
		{Suite: "lru", Benches: []string{"not-a-benchmark"}},
		{Suite: "lru", Workers: -1},
	} {
		body, _ := json.Marshal(spec)
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("spec %+v: status %d, want 400", spec, resp.StatusCode)
		}
	}
}

func TestMetricsExposition(t *testing.T) {
	fake := newFakeExec()
	fake.stats = exp.Stats{Executed: 3, DiskHits: 1}
	_, ts := newTestServer(t, Config{Workers: 1}, fake)
	st := submit(t, ts.URL, JobSpec{Suite: "lru"})
	<-fake.started
	fake.releaseAll(1)
	waitStatus(t, ts.URL, st.ID, StatusDone)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"conspec_served_jobs_submitted_total 1\n",
		"conspec_served_jobs_done_total 1\n",
		"conspec_served_runs_executed_total 3\n",
		"conspec_served_cache_hits_disk_total 1\n",
		"conspec_served_jobs_running 0\n",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

// TestDiskCacheAcrossRestart is the acceptance-criteria test: a cold job
// simulates, then a second server over the same cache directory serves the
// identical submission entirely from disk.
func TestDiskCacheAcrossRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations")
	}
	dir := t.TempDir()
	spec := tinySpec("lru")

	open := func() (*Server, *httptest.Server, func()) {
		store, err := diskcache.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		s := New(Config{Workers: 1, Cache: store})
		ts := httptest.NewServer(s.Handler())
		return s, ts, func() { ts.Close(); s.Close() }
	}

	s1, ts1, close1 := open()
	_ = s1
	st := submit(t, ts1.URL, spec)
	cold := waitStatus(t, ts1.URL, st.ID, StatusDone)
	if cold.Engine == nil || cold.Engine.Executed == 0 {
		t.Fatalf("cold job executed nothing: %+v", cold.Engine)
	}
	if cold.Result == nil || cold.Result.LRU == nil {
		t.Fatal("cold job missing lru result section")
	}
	coldJSON, _ := json.Marshal(cold.Result.LRU)
	close1()

	s2, ts2, close2 := open()
	_ = s2
	defer close2()
	st2 := submit(t, ts2.URL, spec)
	warm := waitStatus(t, ts2.URL, st2.ID, StatusDone)
	if warm.Engine == nil {
		t.Fatal("warm job missing engine stats")
	}
	if warm.Engine.Executed != 0 {
		t.Fatalf("warm job executed %d simulations, want 0", warm.Engine.Executed)
	}
	if warm.Engine.DiskHits == 0 {
		t.Fatal("warm job reported no disk hits")
	}
	warmJSON, _ := json.Marshal(warm.Result.LRU)
	if !bytes.Equal(coldJSON, warmJSON) {
		t.Fatalf("results differ across restart:\ncold %s\nwarm %s", coldJSON, warmJSON)
	}

	// Server counters confirm the disk tier served everything.
	resp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(out), "conspec_served_runs_executed_total 0\n") {
		t.Errorf("restarted server executed simulations:\n%s", out)
	}
	if !strings.Contains(string(out), fmt.Sprintf("conspec_served_cache_hits_disk_total %d\n", warm.Engine.DiskHits)) {
		t.Errorf("disk hit counter mismatch:\n%s", out)
	}
}

func TestRealRunnerProgressEvents(t *testing.T) {
	if testing.Short() {
		t.Skip("real simulations")
	}
	s := New(Config{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer func() { ts.Close(); s.Close() }()

	st := submit(t, ts.URL, tinySpec("lru"))
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readSSE(t, resp.Body)
	var runDone int
	for _, ev := range events {
		if ev.Type == "progress" && ev.Progress != nil && ev.Progress.Phase == exp.PhaseRunDone {
			runDone++
		}
	}
	if runDone == 0 {
		t.Fatalf("no run-done progress events in %d events", len(events))
	}
	if last := events[len(events)-1]; last.Status != StatusDone {
		t.Fatalf("stream ended with %+v", last)
	}
}
