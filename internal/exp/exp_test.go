package exp

import (
	"context"
	"math"
	"strings"
	"testing"

	"conspec/internal/config"
	"conspec/internal/core"
	"conspec/internal/pipeline"
	"conspec/internal/workload"
)

// fastSpec trades statistical smoothness for speed in unit tests.
func fastSpec() RunSpec {
	s := DefaultSpec()
	s.Warmup = 8_000
	s.Measure = 40_000
	return s
}

// fastNames is a representative subset covering the qualitative classes:
// hit-dominated (GemsFDTD), branchy (astar), stream-rescued-by-TPBuf (lbm),
// page-hopping-unrescued (libquantum), chain-dominated (hmmer).
var fastNames = []string{"GemsFDTD", "astar", "lbm", "libquantum", "hmmer"}

func TestRunWorkloadProducesStats(t *testing.T) {
	p, _ := workload.ByName("astar")
	w := workload.MustGenerate(p)
	spec := fastSpec()
	res := RunWorkload(w, spec)
	if res.Committed < spec.Measure {
		t.Fatalf("committed %d < measure budget %d", res.Committed, spec.Measure)
	}
	if res.Cycles == 0 || res.L1D.Accesses == 0 {
		t.Fatal("empty statistics")
	}
}

// TestRunWorkloadSelfCheck threads RunSpec.SelfCheck through to the
// machine: a healthy run sweeps, finds nothing, and completes normally.
func TestRunWorkloadSelfCheck(t *testing.T) {
	p, _ := workload.ByName("astar")
	w := workload.MustGenerate(p)
	spec := fastSpec()
	spec.SelfCheck = 64
	res := RunWorkload(w, spec)
	if !res.Outcome.Completed() {
		t.Fatalf("outcome %v (diag %s)", res.Outcome, res.Diag)
	}
	if res.Hardening.SelfCheckSweeps == 0 {
		t.Error("no self-check sweeps recorded")
	}
	if res.Hardening.SelfCheckViolations != 0 {
		t.Errorf("%d violations on a healthy run", res.Hardening.SelfCheckViolations)
	}
}

func TestOverheadHelper(t *testing.T) {
	a := pipeline.Result{Cycles: 100}
	b := pipeline.Result{Cycles: 150}
	if got := Overhead(a, b); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("overhead = %v, want 0.5", got)
	}
	if Overhead(pipeline.Result{}, b) != 0 {
		t.Fatal("zero-cycle origin must not divide by zero")
	}
}

func TestEvaluationShape(t *testing.T) {
	ev, err := NewRunner(RunnerOptions{}).Evaluation(context.Background(), fastSpec(), fastNames)
	if err != nil {
		t.Fatal(err)
	}
	if len(ev.Benches) != len(fastNames) {
		t.Fatalf("got %d benches", len(ev.Benches))
	}
	// The paper's central ordering: Baseline >= CacheHit >= CacheHit+TPBuf
	// on average, with real gaps.
	base := ev.AverageOverhead(core.Baseline)
	ch := ev.AverageOverhead(core.CacheHit)
	tp := ev.AverageOverhead(core.CacheHitTPBuf)
	if !(base > ch && ch >= tp) {
		t.Errorf("mechanism ordering violated: base=%.3f ch=%.3f tp=%.3f", base, ch, tp)
	}
	if base < 0.10 {
		t.Errorf("Baseline average overhead %.3f suspiciously small", base)
	}

	for _, b := range ev.Benches {
		or := b.Results[core.Origin]
		if or.Committed == 0 {
			t.Fatalf("%s: no instructions measured", b.Name)
		}
		switch b.Name {
		case "lbm":
			// TPBuf must rescue lbm markedly relative to the cache-hit
			// filter (the paper's §VI.C(2) headline example).
			if b.Overhead(core.CacheHitTPBuf) > b.Overhead(core.CacheHit)-0.2 {
				t.Errorf("lbm not rescued: CH %.3f vs TPBuf %.3f",
					b.Overhead(core.CacheHit), b.Overhead(core.CacheHitTPBuf))
			}
			if b.Results[core.CacheHitTPBuf].TPBuf.MismatchRate() < 0.5 {
				t.Errorf("lbm S-Pattern mismatch rate %.2f, want high",
					b.Results[core.CacheHitTPBuf].TPBuf.MismatchRate())
			}
		case "libquantum":
			// libquantum's misses match the S-Pattern: TPBuf must NOT help.
			if b.Overhead(core.CacheHit)-b.Overhead(core.CacheHitTPBuf) > 0.1 {
				t.Errorf("libquantum should not be rescued: CH %.3f vs TPBuf %.3f",
					b.Overhead(core.CacheHit), b.Overhead(core.CacheHitTPBuf))
			}
			if b.Results[core.CacheHitTPBuf].TPBuf.MismatchRate() > 0.2 {
				t.Errorf("libquantum mismatch rate %.2f, want near zero",
					b.Results[core.CacheHitTPBuf].TPBuf.MismatchRate())
			}
		case "hmmer":
			// Chain-dominated: the cache-hit filter recovers ~everything.
			if b.Overhead(core.CacheHit) > 0.15 {
				t.Errorf("hmmer CacheHit overhead %.3f, want near zero",
					b.Overhead(core.CacheHit))
			}
			if b.Overhead(core.Baseline) < 0.4 {
				t.Errorf("hmmer Baseline overhead %.3f, want large",
					b.Overhead(core.Baseline))
			}
		}
	}

	if !strings.Contains(ev.Fig5Text(), "Average") {
		t.Error("Fig5Text missing average row")
	}
	if !strings.Contains(ev.Table5Text(), "Mismatch") {
		t.Error("Table5Text missing mismatch column")
	}
}

func TestEvaluationUnknownBenchmark(t *testing.T) {
	if _, err := NewRunner(RunnerOptions{}).Evaluation(context.Background(), fastSpec(), []string{"nope"}); err == nil {
		t.Fatal("unknown benchmark must error")
	}
}

func TestL1HitRatesTrackPaper(t *testing.T) {
	// Origin L1D hit rates must stay within 8 points of the paper's
	// Table V column for every benchmark — the workload calibration
	// regression test.
	spec := fastSpec()
	spec.Measure = 60_000
	for _, p := range workload.Profiles() {
		w := workload.MustGenerate(p)
		s := spec
		s.Sec.Mechanism = core.Origin
		res := RunWorkload(w, s)
		got := res.L1D.HitRate()
		if math.Abs(got-p.PaperL1HitRate) > 0.08 {
			t.Errorf("%s: L1D hit rate %.3f, paper %.3f", p.Name, got, p.PaperL1HitRate)
		}
	}
}

func TestScopeDecomposition(t *testing.T) {
	r, err := NewRunner(RunnerOptions{}).Scope(context.Background(), fastSpec(), []string{"astar", "lbm"})
	if err != nil {
		t.Fatal(err)
	}
	// §VI.C(1): the full matrix costs at least as much as branch-only.
	if r.FullAvg < r.BranchOnlyAvg-0.02 {
		t.Errorf("full matrix (%.3f) should cost >= branch-only (%.3f)",
			r.FullAvg, r.BranchOnlyAvg)
	}
	if ScopeText(r) == "" {
		t.Error("empty scope text")
	}
	if r.UnresolvedBranchFrac["astar"] <= 0 {
		t.Error("astar must dispatch instructions under unresolved branches")
	}
}

func TestLRUSuite(t *testing.T) {
	r, err := NewRunner(RunnerOptions{}).LRU(context.Background(), fastSpec(), []string{"astar", "bzip2"})
	if err != nil {
		t.Fatal(err)
	}
	// §VII.A: both secure policies cost a little; sanity bounds only
	// (sub-percent effects need the full suite to stabilize).
	if math.Abs(r.NoUpdate-r.Always) > 0.2 {
		t.Errorf("no-update delta %.3f implausible", r.NoUpdate-r.Always)
	}
	if LRUText(r) == "" {
		t.Error("empty LRU text")
	}
}

func TestICacheSuite(t *testing.T) {
	r, err := NewRunner(RunnerOptions{}).ICache(context.Background(), fastSpec(), []string{"astar"})
	if err != nil {
		t.Fatal(err)
	}
	if r.With < r.Without-0.05 {
		t.Errorf("ICache filter should not speed things up: %.3f vs %.3f",
			r.With, r.Without)
	}
	if ICacheText(r) == "" {
		t.Error("empty icache text")
	}
}

func TestTable6Ordering(t *testing.T) {
	spec := fastSpec()
	cores, err := NewRunner(RunnerOptions{}).Table6(context.Background(), spec, []string{"astar", "hmmer"})
	if err != nil {
		t.Fatal(err)
	}
	if len(cores) != 3 {
		t.Fatalf("expected 3 sensitivity cores, got %d", len(cores))
	}
	for _, tc := range cores {
		if tc.Avg.Baseline < tc.Avg.TPBuf-0.02 {
			t.Errorf("%s: Baseline (%.3f) below TPBuf (%.3f)",
				tc.Core, tc.Avg.Baseline, tc.Avg.TPBuf)
		}
	}
	if !strings.Contains(Table6Text(cores), "A57-like") {
		t.Error("Table6Text missing core sections")
	}
}

func TestTable4Driver(t *testing.T) {
	cfg := config.PaperCore()
	cfg.Mem.L2Size = 256 * 1024
	cfg.Mem.L3Size = 1024 * 1024
	outcomes, err := NewRunner(RunnerOptions{}).Table4(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(outcomes) != 10*len(core.Mechanisms) {
		t.Fatalf("got %d outcomes", len(outcomes))
	}
	for _, o := range outcomes {
		if o.Mechanism == core.Origin.String() && !o.Leaked {
			t.Errorf("%s must leak on Origin", o.Scenario)
		}
		if o.Mechanism == core.Baseline.String() && o.Leaked {
			t.Errorf("%s must be defended by Baseline", o.Scenario)
		}
	}
	if !strings.Contains(Table4Text(outcomes), "Mechanism") {
		t.Error("Table4Text malformed")
	}
}

func TestOverheadText(t *testing.T) {
	txt := OverheadText()
	for _, want := range []string{"0.05", "Xeon-like", "TPBuf"} {
		if !strings.Contains(txt, want) {
			t.Errorf("overhead text missing %q", want)
		}
	}
}

func TestComparisonSuite(t *testing.T) {
	r, err := NewRunner(RunnerOptions{}).Compare(context.Background(), fastSpec(), []string{"astar", "lbm"})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 {
		t.Fatalf("got %d rows", len(r.Rows))
	}
	// The software fence baseline should be markedly more expensive than
	// the hardware mechanism on branchy code (astar).
	for _, row := range r.Rows {
		if row.Benchmark == "astar" && row.SWFence < row.TPBuf {
			t.Errorf("astar: SW fence (%.3f) should cost more than CH+TPBuf (%.3f)",
				row.SWFence, row.TPBuf)
		}
	}
	if CompareText(r) == "" {
		t.Error("empty comparison text")
	}
}

func TestDTLBFilterSuite(t *testing.T) {
	r, err := NewRunner(RunnerOptions{}).DTLB(context.Background(), fastSpec(), []string{"astar", "milc"})
	if err != nil {
		t.Fatal(err)
	}
	if r.With < r.Without-0.05 {
		t.Errorf("DTLB filter should not speed things up: %.3f vs %.3f", r.With, r.Without)
	}
	if DTLBText(r) == "" {
		t.Error("empty dtlb text")
	}
}
