// Command conspec-attack runs Spectre proof-of-concept attacks inside the
// simulator against each Conditional Speculation mechanism and reports
// whether the secret leaked — the reproduction of the paper's Table IV.
//
// Usage:
//
//	conspec-attack -list
//	conspec-attack -all
//	conspec-attack -scenario spectre-v1/flush+reload -mech tpbuf
//	conspec-attack -lru          # §VII.A replacement-state channel
//	conspec-attack -tlb          # DTLB channel + the filter extension
//	conspec-attack -crosscore    # two cores, two programs, mailbox IPC
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"conspec/internal/attack"
	"conspec/internal/buildinfo"
	"conspec/internal/config"
	"conspec/internal/core"
	"conspec/internal/exp"
	"conspec/internal/mem"
	"conspec/internal/obs"
	"conspec/internal/pipeline"
)

func main() {
	var (
		list      = flag.Bool("list", false, "list scenarios and exit")
		all       = flag.Bool("all", false, "run every scenario under every mechanism (Table IV)")
		scenario  = flag.String("scenario", "", "scenario name (see -list)")
		mech      = flag.String("mech", "", "defense: origin|baseline|cachehit|cachehit+tpbuf|ssbd|fence|delay-on-miss|invisispec (empty = the four paper variants)")
		lru       = flag.Bool("lru", false, "run the §VII.A LRU side channel across update policies")
		crossCore = flag.Bool("crosscore", false, "run the two-core, two-program attack (victim per mechanism)")
		tlb       = flag.Bool("tlb", false, "run the DTLB-refill side channel and its filter extension")
		pipeview  = flag.String("pipeview", "", "write an O3PipeView trace (Konata-compatible) of a -scenario run to FILE (requires -mech)")
		version   = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Short("conspec-attack"))
		return
	}

	// SIGINT cancels the run: whatever outcomes completed are already
	// printed, and the process exits non-zero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// A slimmed hierarchy keeps PoC runs quick without changing L1 geometry
	// (the receivers' set arithmetic depends only on the L1).
	cfg := config.PaperCore()
	cfg.Mem.L2Size = 256 * 1024
	cfg.Mem.L3Size = 1024 * 1024

	if *list {
		for _, h := range attack.Scenarios(cfg) {
			fmt.Printf("%-28s %-30s variant %s\n", h.Name, h.Class, h.Variant)
		}
		return
	}

	// checkCancelled exits non-zero once the context is cancelled; the
	// outcomes printed so far are the flushed partial results.
	checkCancelled := func() {
		if ctx.Err() != nil {
			fmt.Fprintln(os.Stderr, "interrupted")
			os.Exit(1)
		}
	}

	if *lru {
		h := attack.LRUSideChannel(cfg)
		fmt.Printf("scenario: %s — suspect L1D HITS leak through replacement state\n\n", h.Name)
		for _, pol := range []mem.UpdatePolicy{mem.UpdateAlways, mem.UpdateNoSpec, mem.UpdateDelayed} {
			checkCancelled()
			c := cfg
			c.Mem.L1DUpdate = pol
			o := h.Run(c, pipeline.SecurityConfig{Mechanism: core.CacheHitTPBuf})
			fmt.Printf("L1D update policy %-15v recovered %x  %d/%d bytes\n",
				pol, o.Recovered, o.Correct, len(o.Secret))
		}
		return
	}

	if *tlb {
		h := attack.V1TLBChannel(cfg)
		fmt.Println("scenario:", h.Name, "— probe timing includes the DTLB walk")
		fmt.Println()
		type cse struct {
			m core.Mechanism
			f bool
		}
		for _, tc := range []cse{{core.Origin, false}, {core.Baseline, false},
			{core.CacheHitTPBuf, false}, {core.CacheHitTPBuf, true}} {
			checkCancelled()
			o := h.Run(cfg, pipeline.SecurityConfig{Mechanism: tc.m, DTLBFilter: tc.f})
			status := "DEFENDED"
			if o.Leaked {
				status = "LEAKED"
			}
			fmt.Printf("%-34s dtlb-filter=%-5v recovered %x  %s\n", tc.m, tc.f, o.Recovered, status)
		}
		return
	}

	if *crossCore {
		fmt.Println("cross-core attack: attacker process on core A (unprotected),")
		fmt.Println("victim service on core B, shared L2/L3, mailbox IPC")
		fmt.Println()
		for _, m := range core.Mechanisms {
			checkCancelled()
			o := attack.RunCrossCore(cfg, m)
			status := "DEFENDED"
			if o.Leaked {
				status = "LEAKED"
			}
			fmt.Printf("victim core: %-34s recovered %x  %d/%d  %s\n",
				m, o.Recovered, o.Correct, len(o.Secret), status)
		}
		return
	}

	if *all {
		runner := exp.NewRunner(exp.RunnerOptions{OnEvent: func(ev exp.ProgressEvent) {
			if ev.Line != "" {
				fmt.Println(ev.Line)
			}
		}})
		outcomes, err := runner.Table4(ctx, cfg)
		if err != nil {
			// Flush the outcomes that completed before cancellation.
			if errors.Is(err, context.Canceled) && len(outcomes) > 0 {
				fmt.Println()
				fmt.Println(exp.Table4Text(outcomes))
			}
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
		fmt.Println(exp.Table4Text(outcomes))
		return
	}

	h, ok := attack.ByName(cfg, *scenario)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scenario %q (try -list)\n", *scenario)
		os.Exit(2)
	}
	// Empty -mech keeps the historical default: the four paper variants.
	names := []string{"origin", "baseline", "cachehit", "cachehit+tpbuf"}
	if *mech != "" {
		names = []string{*mech}
	}
	var secs []pipeline.SecurityConfig
	for _, n := range names {
		d, err := core.LookupDefense(n)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		secs = append(secs, pipeline.SecurityConfig{Mechanism: d.Mechanism(), SSBD: d.SSBD()})
	}
	if *pipeview != "" && len(secs) != 1 {
		fmt.Fprintln(os.Stderr, "-pipeview traces one run: pick a mechanism with -mech")
		os.Exit(2)
	}
	for _, sec := range secs {
		checkCancelled()
		setup := func(*pipeline.CPU) {}
		if *pipeview != "" {
			f, err := os.Create(*pipeview)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			defer f.Close()
			setup = func(c *pipeline.CPU) { c.AttachSink(obs.NewPipeViewSink(f)) }
		}
		o := h.RunWith(cfg, sec, setup)
		fmt.Println(o)
		fmt.Printf("    secret %x, recovered %x (%d cycles)\n", o.Secret, o.Recovered, o.Cycles)
	}
}
