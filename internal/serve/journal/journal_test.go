package journal

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
)

func mustOpen(t *testing.T, dir string, opts Options) (*Journal, []State) {
	t.Helper()
	j, recovered, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return j, recovered
}

func spec(s string) json.RawMessage { return json.RawMessage(`{"suite":"` + s + `"}`) }

func TestReplayRecoversNonTerminalJobs(t *testing.T) {
	dir := t.TempDir()
	j, recovered := mustOpen(t, dir, Options{})
	if len(recovered) != 0 {
		t.Fatalf("fresh journal recovered %d jobs", len(recovered))
	}
	// j1 finished, j2 was running, j3 never started, j4 was canceled.
	j.Append(OpSubmitted, "j1", spec("fig5"), "")
	j.Append(OpSubmitted, "j2", spec("lru"), "")
	j.Append(OpSubmitted, "j3", spec("scope"), "")
	j.Append(OpSubmitted, "j4", spec("dtlb"), "")
	j.Append(OpStarted, "j1", nil, "")
	j.Append(OpDone, "j1", nil, "")
	j.Append(OpStarted, "j2", nil, "")
	j.Append(OpCanceled, "j4", nil, "")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recovered := mustOpen(t, dir, Options{})
	defer j2.Close()
	if len(recovered) != 2 {
		t.Fatalf("recovered %d jobs, want 2 (j2, j3): %+v", len(recovered), recovered)
	}
	// Submission order is preserved.
	if recovered[0].Job != "j2" || recovered[1].Job != "j3" {
		t.Fatalf("recovered order %s, %s; want j2, j3", recovered[0].Job, recovered[1].Job)
	}
	if recovered[0].Op != OpStarted || recovered[1].Op != OpSubmitted {
		t.Fatalf("recovered ops %s, %s; want started, submitted", recovered[0].Op, recovered[1].Op)
	}
	var s struct {
		Suite string `json:"suite"`
	}
	if err := json.Unmarshal(recovered[0].Spec, &s); err != nil || s.Suite != "lru" {
		t.Fatalf("recovered spec %s (err %v), want lru", recovered[0].Spec, err)
	}
}

func TestTornTailIsTruncated(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	j.Append(OpSubmitted, "j1", spec("fig5"), "")
	j.Append(OpSubmitted, "j2", spec("lru"), "")
	j.Close()

	// Simulate a crash mid-append: a partial record at the tail.
	f, err := os.OpenFile(walPath(dir), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":3,"time":"2026-0`)
	f.Close()

	j2, recovered := mustOpen(t, dir, Options{})
	if len(recovered) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(recovered))
	}
	// The torn bytes are gone: appends continue on a clean line.
	if err := j2.Append(OpStarted, "j1", nil, ""); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	b, _ := os.ReadFile(walPath(dir))
	for _, line := range strings.Split(strings.TrimRight(string(b), "\n"), "\n") {
		var rec Record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("WAL line %q unparsable after torn-tail recovery: %v", line, err)
		}
	}
}

func TestMidFileCorruptionIsAnError(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	j.Append(OpSubmitted, "j1", spec("fig5"), "")
	j.Append(OpSubmitted, "j2", spec("lru"), "")
	j.Close()

	b, _ := os.ReadFile(walPath(dir))
	lines := strings.SplitAfter(string(b), "\n")
	// Corrupt the first record while keeping the second intact: records
	// after the rot were acknowledged durable, so replay must refuse to
	// silently drop them.
	mangled := "{rot}\n" + lines[1]
	os.WriteFile(walPath(dir), []byte(mangled), 0o644)

	if _, _, err := Open(dir, Options{}); err == nil {
		t.Fatal("mid-file corruption replayed without error")
	}
}

func TestCompactionDropsTerminalAndSurvivesReplay(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{NoSync: true})
	for i := 0; i < 50; i++ {
		id := fmt.Sprintf("j%03d", i)
		j.Append(OpSubmitted, id, spec("lru"), "")
		j.Append(OpStarted, id, nil, "")
		if i%2 == 0 {
			j.Append(OpDone, id, nil, "")
		}
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	wal, appends, compactions := j.Sizes()
	if wal != 0 || compactions != 1 {
		t.Fatalf("after compaction: wal %d bytes, %d compactions", wal, compactions)
	}
	if appends != 125 {
		t.Fatalf("appends = %d, want 125", appends)
	}
	// Post-compaction appends land in the fresh WAL.
	j.Append(OpDone, "j001", nil, "")
	j.Close()

	j2, recovered := mustOpen(t, dir, Options{})
	defer j2.Close()
	// 25 odd-numbered jobs were live; j001 finished after the compaction.
	if len(recovered) != 24 {
		t.Fatalf("recovered %d jobs, want 24", len(recovered))
	}
	for _, s := range recovered {
		if s.Op != OpStarted {
			t.Fatalf("recovered %s in op %s, want started", s.Job, s.Op)
		}
		if s.Job == "j001" {
			t.Fatal("job finished after compaction was recovered")
		}
	}
}

func TestAutoCompactionTriggersOnSize(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{CompactBytes: 512, NoSync: true})
	defer j.Close()
	for i := 0; i < 64; i++ {
		id := fmt.Sprintf("j%03d", i)
		j.Append(OpSubmitted, id, spec("lru"), "")
		j.Append(OpDone, id, nil, "")
	}
	if _, _, compactions := j.Sizes(); compactions == 0 {
		t.Fatal("WAL grew past CompactBytes without compacting")
	}
	if wal, _, _ := j.Sizes(); wal > 512 {
		t.Fatalf("WAL still %d bytes after auto-compaction", wal)
	}
	if j.Live() != 0 {
		t.Fatalf("%d live jobs, want 0", j.Live())
	}
}

// TestCrashBetweenSnapshotAndTruncate: the compaction's worst-case crash
// point — snapshot renamed into place, WAL not yet truncated — must replay
// to the same state, not duplicate jobs.
func TestCrashBetweenSnapshotAndTruncate(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{NoSync: true})
	j.Append(OpSubmitted, "j1", spec("fig5"), "")
	j.Append(OpSubmitted, "j2", spec("lru"), "")
	j.Append(OpDone, "j1", nil, "")
	// Simulate: keep a copy of the WAL, compact (which truncates), then
	// restore the old WAL next to the new snapshot.
	wal, err := os.ReadFile(walPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	j.Close()
	if err := os.WriteFile(walPath(dir), wal, 0o644); err != nil {
		t.Fatal(err)
	}

	j2, recovered := mustOpen(t, dir, Options{})
	defer j2.Close()
	if len(recovered) != 1 || recovered[0].Job != "j2" {
		t.Fatalf("recovered %+v, want exactly j2", recovered)
	}
}

func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{NoSync: true, CompactBytes: 2048})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				id := fmt.Sprintf("g%dj%d", g, i)
				j.Append(OpSubmitted, id, spec("lru"), "")
				if i%2 == 0 {
					j.Append(OpDone, id, nil, "")
				}
			}
		}(g)
	}
	wg.Wait()
	live := j.Live()
	j.Close()
	j2, recovered := mustOpen(t, dir, Options{})
	defer j2.Close()
	if len(recovered) != live || live != 8*20 {
		t.Fatalf("recovered %d, live %d, want %d", len(recovered), live, 8*20)
	}
}

func TestNilJournalIsNoop(t *testing.T) {
	var j *Journal
	if err := j.Append(OpSubmitted, "j1", nil, ""); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if j.Live() != 0 {
		t.Fatal("nil journal has live jobs")
	}
	if w, a, c := j.Sizes(); w != 0 || a != 0 || c != 0 {
		t.Fatal("nil journal has sizes")
	}
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
}

func TestLeaseOpsRecoverWithWorker(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	// j1 was leased to w1, lost when w1 died, re-leased to w2; j2 finished
	// on w3 — only j1 needs recovery, and its state names the last worker.
	j.Append(OpSubmitted, "j1", spec("defenses"), "")
	j.Append(OpSubmitted, "j2", spec("lru"), "")
	j.AppendLease(OpLeased, "j1", "w1")
	j.AppendLease(OpRequeued, "j1", "w1")
	j.AppendLease(OpLeased, "j1", "w2")
	j.AppendLease(OpLeased, "j2", "w3")
	j.Append(OpDone, "j2", nil, "")
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	j2, recovered := mustOpen(t, dir, Options{})
	defer j2.Close()
	if len(recovered) != 1 {
		t.Fatalf("recovered %d jobs, want 1", len(recovered))
	}
	st := recovered[0]
	if st.Job != "j1" || st.Op != OpLeased || st.Worker != "w2" {
		t.Fatalf("recovered state = %+v, want j1 leased to w2", st)
	}
	if string(st.Spec) != string(spec("defenses")) {
		t.Fatalf("recovered spec = %s", st.Spec)
	}
}

func TestLeaseOpsSurviveCompaction(t *testing.T) {
	dir := t.TempDir()
	j, _ := mustOpen(t, dir, Options{})
	j.Append(OpSubmitted, "j1", spec("fig5"), "")
	j.AppendLease(OpLeased, "j1", "w9")
	if err := j.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	j2, recovered := mustOpen(t, dir, Options{})
	defer j2.Close()
	if len(recovered) != 1 || recovered[0].Op != OpLeased || recovered[0].Worker != "w9" {
		t.Fatalf("post-compaction recovery = %+v, want j1 leased to w9", recovered)
	}
}
