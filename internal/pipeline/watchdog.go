package pipeline

import (
	"errors"
	"fmt"
	"strings"
)

// RunOutcome classifies how a Run/RunFor call ended. The zero value means
// the machine has not finished a run (or predates the outcome tracking).
type RunOutcome uint8

const (
	// OutcomeNone is the zero value: no run has completed.
	OutcomeNone RunOutcome = iota
	// OutcomeHalted: a HALT instruction committed.
	OutcomeHalted
	// OutcomeInstTarget: the RunFor instruction budget was reached. This is
	// the normal ending for the exp layer's budgeted measurement runs.
	OutcomeInstTarget
	// OutcomeCycleCapExceeded: maxCycles elapsed with neither a HALT nor the
	// instruction budget reached — historically this returned a plausible
	// Result that silently polluted aggregates.
	OutcomeCycleCapExceeded
	// OutcomeDeadlock: the forward-progress watchdog tripped — no uop
	// committed for the configured window. CPU.Err carries a *NoProgressError
	// with the diagnostic dump.
	OutcomeDeadlock
	// OutcomeAuditFailed: an in-run self-check sweep (-selfcheck K) found an
	// invariant violation. CPU.Err carries the violation.
	OutcomeAuditFailed
)

// String names the outcome.
func (o RunOutcome) String() string {
	switch o {
	case OutcomeHalted:
		return "halted"
	case OutcomeInstTarget:
		return "inst-target"
	case OutcomeCycleCapExceeded:
		return "cycle-cap-exceeded"
	case OutcomeDeadlock:
		return "deadlock"
	case OutcomeAuditFailed:
		return "audit-failed"
	default:
		return "none"
	}
}

// Completed reports whether the run ended the way a healthy run can: HALT
// committed or the instruction budget was reached.
func (o RunOutcome) Completed() bool {
	return o == OutcomeHalted || o == OutcomeInstTarget
}

// ErrNoProgress is the sentinel the forward-progress watchdog wraps:
// errors.Is(cpu.Err(), ErrNoProgress) identifies a deadlocked machine.
var ErrNoProgress = errors.New("pipeline: no forward progress")

// NoProgressError is the watchdog's typed error: no uop committed for
// Window cycles. Dump holds a bounded diagnostic snapshot of the machine
// at trip time (ROB head, its security-dependence row, queue occupancies,
// TPBuf status bits).
type NoProgressError struct {
	Cycle      uint64 // cycle the watchdog tripped
	LastCommit uint64 // last cycle that committed a uop
	Window     uint64 // configured no-progress limit
	Dump       string
}

// Error summarizes the trip; the full dump is in Dump.
func (e *NoProgressError) Error() string {
	return fmt.Sprintf("pipeline: no forward progress for %d cycles (cycle %d, last commit at %d)",
		e.Window, e.Cycle, e.LastCommit)
}

// Unwrap makes errors.Is(err, ErrNoProgress) work.
func (e *NoProgressError) Unwrap() error { return ErrNoProgress }

// HardeningStats counts the self-checking layer's activity; all zero unless
// the watchdog trips, selfcheck sweeps run, or faults are injected — so a
// run with the hardening layer disabled reports a byte-identical Result.
type HardeningStats struct {
	WatchdogTrips       uint64
	SelfCheckSweeps     uint64
	SelfCheckViolations uint64
	FaultsInjected      uint64
}

// defaultWatchdogLimit derives the no-progress window from the memory
// latency: the longest legitimate commit gap is a dependence chain of
// serialized misses stalling the ROB head, each costing on the order of
// MemLat; 64 of them plus a fixed floor is far above anything a live
// machine produces (~16K cycles on the paper core) and far below the
// multi-million-cycle caps runs used to spin to.
func defaultWatchdogLimit(memLat int) uint64 {
	return 4096 + 64*uint64(memLat)
}

// SetWatchdog overrides the forward-progress window: the run fails with
// OutcomeDeadlock when no uop commits for limit cycles. 0 disables the
// watchdog. The default comes from config.Core.Watchdog (or, when that is
// zero, from the memory latency).
func (c *CPU) SetWatchdog(limit uint64) { c.watchdogLimit = limit }

// SetSelfCheck makes the machine audit its own invariants (CheckInvariants,
// including the security-structure audits) every `every` cycles; a
// violation ends the run with OutcomeAuditFailed. 0 (the default) disables
// sweeps and leaves the hot path untouched. Sweeps allocate; they are
// debugging/hardening machinery, not part of the zero-alloc contract.
func (c *CPU) SetSelfCheck(every uint64) { c.selfCheckEvery = every }

// Err returns the error that ended the current run (nil for healthy
// machines): a *NoProgressError after a watchdog trip, or the invariant
// violation after a failed self-check sweep. The error is sticky — a
// wedged or corrupted machine stays failed across Run calls.
func (c *CPU) Err() error { return c.runErr }

// tripWatchdog records the deadlock: builds the bounded diagnostic dump
// (the only allocation the watchdog ever performs — on the failure path),
// marks the run failed, and counts the trip. step() stops advancing once
// runErr is set.
func (c *CPU) tripWatchdog() {
	c.stats.Hardening.WatchdogTrips++
	c.m.watchdogTrips.Inc()
	err := &NoProgressError{
		Cycle:      c.cycle,
		LastCommit: c.lastProgress,
		Window:     c.watchdogLimit,
	}
	err.Dump = c.progressDump()
	c.runErr = err
	c.runOutcome = OutcomeDeadlock
	c.stats.Outcome = OutcomeDeadlock
	c.stats.Diag = err.Dump
	c.stats.Flight = c.fr.Dump(c.cycle)
}

// failAudit records a self-check violation as the run's terminal error.
func (c *CPU) failAudit(violation error) {
	err := fmt.Errorf("pipeline: self-check audit failed at cycle %d: %w", c.cycle, violation)
	c.runErr = err
	c.runOutcome = OutcomeAuditFailed
	c.stats.Outcome = OutcomeAuditFailed
	c.stats.Diag = err.Error() + "\n" + c.progressDump()
	c.stats.Flight = c.fr.Dump(c.cycle)
}

// progressDump renders a bounded snapshot of the stuck machine: ROB head
// (the blocked uop), its security-dependence matrix row, queue occupancies,
// and the TPBuf status bits — everything needed to diagnose a wedged
// security policy without re-running under a tracer.
func (c *CPU) progressDump() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "cycle %d: last commit at cycle %d (watchdog window %d)\n",
		c.cycle, c.lastProgress, c.watchdogLimit)
	fmt.Fprintf(&sb, "occupancy: rob %d/%d  iq %d/%d  ready %d  fetchq %d  inflight %d  awaiting-data %d  mshr %d\n",
		c.robCount, len(c.rob), c.iqCount, len(c.iq), len(c.readyList),
		c.fqLen, len(c.inflight), len(c.awaitingData), c.outstandingMisses)
	if c.robCount == 0 {
		fmt.Fprintf(&sb, "rob empty; fetchHalted=%v fetchPC=%#x\n", c.fetchHalted, c.fetchPC)
		return sb.String()
	}
	u := c.robAt(0)
	fmt.Fprintf(&sb, "rob head: seq=%d pc=%#x op=%v iq=%d ldq=%d stq=%d issued=%v completed=%v suspect=%v blockedSec=%v tpbufUnsafe=%v waitCnt=%d\n",
		u.seq, u.pc, u.inst.Op, u.iqIdx, u.ldqIdx, u.stqIdx,
		u.issued, u.completed, u.suspect, u.blockedSec, u.tpbufUnsafe, u.waitCnt)
	if c.secmat != nil && u.iqIdx >= 0 {
		fmt.Fprintf(&sb, "secmatrix row %d: hazard=%v cols=[", u.iqIdx, c.secmat.Peek(u.iqIdx))
		printed := 0
		for y := 0; y < c.secmat.Size() && printed < 16; y++ {
			if c.secmat.Get(u.iqIdx, y) {
				if printed > 0 {
					sb.WriteByte(' ')
				}
				fmt.Fprintf(&sb, "%d", y)
				printed++
			}
		}
		sb.WriteString("]\n")
	}
	// Oldest unissued IQ entries: the candidates actually blocking commit.
	fmt.Fprintf(&sb, "iq (oldest unissued, max 8):")
	shown := 0
	for i := 0; i < c.robCount && shown < 8; i++ {
		r := c.robAt(i)
		if r.iqIdx < 0 || r.issued {
			continue
		}
		fmt.Fprintf(&sb, " [seq=%d pc=%#x %v blockedSec=%v]", r.seq, r.pc, r.inst.Op, r.blockedSec)
		shown++
	}
	sb.WriteString("\n")
	// TPBuf V/W/S status, bounded to the first 16 allocated entries.
	fmt.Fprintf(&sb, "tpbuf occ %d:", c.tpbuf.Occupancy())
	printed := 0
	for i := 0; i < c.tpbuf.Size() && printed < 16; i++ {
		a, v, w, s, ppn := c.tpbuf.Entry(i)
		if !a {
			continue
		}
		flags := [4]byte{'a', '-', '-', '-'}
		if v {
			flags[1] = 'V'
		}
		if w {
			flags[2] = 'W'
		}
		if s {
			flags[3] = 'S'
		}
		fmt.Fprintf(&sb, " [%d:%s ppn=%#x]", i, flags[:], ppn)
		printed++
	}
	sb.WriteString("\n")
	return sb.String()
}
