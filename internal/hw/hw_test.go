package hw

import (
	"math"
	"strings"
	"testing"

	"conspec/internal/config"
)

func approx(got, want, tol float64) bool {
	return math.Abs(got-want) <= tol*math.Abs(want)
}

// TestPaperCalibration: the paper configuration must reproduce §VI.E's
// published numbers exactly (they are the calibration points).
func TestPaperCalibration(t *testing.T) {
	tech := SMIC40()
	m := tech.MatrixArea(64)
	if !approx(m.MM2, 0.05, 1e-9) {
		t.Errorf("matrix area = %v mm², want 0.05", m.MM2)
	}
	if !approx(m.PercentOfCache, 3.5, 1e-9) {
		t.Errorf("matrix %% of cache = %v, want 3.5", m.PercentOfCache)
	}
	tp := tech.TPBufArea(56)
	if !approx(tp.MM2, 0.00079, 1e-9) {
		t.Errorf("TPBuf area = %v mm², want 0.00079", tp.MM2)
	}
	if !approx(tp.PercentOfCache, 0.055, 0.01) {
		t.Errorf("TPBuf %% of cache = %v, want ~0.055", tp.PercentOfCache)
	}
	if !approx(tech.CriticalPathIncrease(64), 0.014, 1e-9) {
		t.Errorf("critical path = %v, want 0.014", tech.CriticalPathIncrease(64))
	}
}

func TestAreaScalesQuadratically(t *testing.T) {
	tech := SMIC40()
	a32, a64 := tech.MatrixArea(32), tech.MatrixArea(64)
	if !approx(a64.MM2/a32.MM2, 4, 1e-9) {
		t.Errorf("doubling IQ entries must quadruple matrix area: %v vs %v", a32.MM2, a64.MM2)
	}
}

func TestTPBufScalesSuperlinearly(t *testing.T) {
	tech := SMIC40()
	a28, a56 := tech.TPBufArea(28), tech.TPBufArea(56)
	ratio := a56.MM2 / a28.MM2
	if ratio <= 2 || ratio >= 4 {
		t.Errorf("TPBuf doubling ratio = %v, want in (2,4) (mask grows with entries)", ratio)
	}
}

func TestCriticalPathMonotonic(t *testing.T) {
	tech := SMIC40()
	prev := -1.0
	for _, n := range []int{8, 16, 32, 64, 128} {
		cp := tech.CriticalPathIncrease(n)
		if cp <= prev {
			t.Errorf("critical path not monotonic at n=%d: %v <= %v", n, cp, prev)
		}
		prev = cp
	}
}

func TestEvaluateAllCores(t *testing.T) {
	tech := SMIC40()
	paper := Evaluate(tech, config.PaperCore())
	if paper.IQEntries != 64 || paper.LSQEntries != 56 {
		t.Fatalf("paper core structure sizes wrong: %+v", paper)
	}
	if paper.String() == "" {
		t.Fatal("empty report")
	}
	for _, cfg := range config.SensitivityCores() {
		r := Evaluate(tech, cfg)
		if r.Matrix.MM2 <= 0 || r.TPBuf.MM2 <= 0 || r.CriticalPath <= 0 {
			t.Errorf("%s: non-positive areas: %+v", cfg.Name, r)
		}
		// Sanity: every core's defense hardware is a tiny fraction of a
		// 32KB cache — the paper's headline claim.
		if r.Matrix.PercentOfCache > 10 {
			t.Errorf("%s: matrix suspiciously large: %v", cfg.Name, r.Matrix)
		}
		if r.TPBuf.PercentOfCache > 0.2 {
			t.Errorf("%s: TPBuf suspiciously large: %v", cfg.Name, r.TPBuf)
		}
	}
}

func TestAreaString(t *testing.T) {
	if SMIC40().MatrixArea(64).String() == "" {
		t.Fatal("empty area string")
	}
}

func TestReportMentionsStructures(t *testing.T) {
	r := Evaluate(SMIC40(), config.PaperCore())
	s := r.String()
	for _, want := range []string{"security dependence matrix", "TPBuf", "critical path"} {
		if !strings.Contains(s, want) {
			t.Errorf("report missing %q:\n%s", want, s)
		}
	}
}

func TestPPNBitsSane(t *testing.T) {
	if PPNBits != 28 {
		t.Fatalf("PPNBits = %d; TPBuf sizing and §VI.E calibration assume 28", PPNBits)
	}
}
