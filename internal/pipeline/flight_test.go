package pipeline

import (
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"

	"conspec/internal/core"
	"conspec/internal/isa"
	"conspec/internal/obs"
)

// poisonedDeadlockCPU stages the PR 4 deadlock reproducer (see
// watchdog_test.go): a Baseline machine whose victim load's security
// dependence row points at a free IQ slot, so the column never clears and
// the watchdog must trip. prep runs before any cycle executes — the place
// to arm the flight recorder so the ring sees the whole run.
func poisonedDeadlockCPU(t *testing.T, prep func(*CPU)) *CPU {
	t.Helper()
	prog := deadlockProgram()
	backing := isa.NewFlatMem()
	prog.Load(backing)
	cpu := NewWithMemory(smallCore(), SecurityConfig{Mechanism: core.Baseline}, backing)
	if prep != nil {
		prep(cpu)
	}
	cpu.SetPC(prog.Base)
	victim := -1
	for i := 0; i < 5000 && victim < 0; i++ {
		cpu.StepCycle()
		for x, u := range cpu.iq {
			if u != nil && u.inst.Op.IsLoad() && !u.issued && u.waitCnt > 0 {
				victim = x
			}
		}
	}
	if victim < 0 {
		t.Fatal("victim load never appeared in the issue queue")
	}
	free := -1
	for y, u := range cpu.iq {
		if u == nil && y != victim {
			free = y
			break
		}
	}
	if free < 0 {
		t.Fatal("no free IQ slot to point the poisoned dependence at")
	}
	for i := 0; i < 4; i++ {
		if cpu.secmat.Get(victim, free) {
			break
		}
		cpu.secmat.Flip(victim, free)
		cpu.StepCycle()
	}
	if !cpu.secmat.Get(victim, free) {
		t.Fatal("poisoned dependence bit did not stick")
	}
	return cpu
}

// checkFlightDump asserts the properties every failure dump must have: it
// is bounded by its window, lost nothing (so it provably contains every
// event of the final K cycles), and survives a JSON round trip unchanged.
func checkFlightDump(t *testing.T, d *obs.FlightDump, window uint64) map[obs.FlightKind]int {
	t.Helper()
	if d == nil {
		t.Fatal("failure Result carries no flight dump")
	}
	if d.Window != window {
		t.Fatalf("dump window %d, want %d", d.Window, window)
	}
	if d.Dropped != 0 {
		t.Fatalf("ring dropped %d events; the dump does not cover the window", d.Dropped)
	}
	if len(d.Events) == 0 {
		t.Fatal("dump contains no events")
	}
	var horizon uint64
	if d.Cycle > window {
		horizon = d.Cycle - window + 1
	}
	if d.FirstCycle < horizon || d.LastCycle > d.Cycle {
		t.Fatalf("events [%d,%d] outside dump window [%d,%d]",
			d.FirstCycle, d.LastCycle, horizon, d.Cycle)
	}
	prev := uint64(0)
	kinds := map[obs.FlightKind]int{}
	for _, ev := range d.Events {
		if ev.Cycle < prev {
			t.Fatalf("events out of order: %d after %d", ev.Cycle, prev)
		}
		prev = ev.Cycle
		kinds[ev.Kind]++
	}
	b, err := json.Marshal(d)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back obs.FlightDump
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(*d, back) {
		t.Fatal("dump does not round-trip through JSON")
	}
	return kinds
}

// TestFlightRecorderDeadlockDump is the trace-smoke gate: the deadlock
// reproducer with the recorder armed must produce a watchdog dump that
// parses and covers the final K cycles — with the stall skipper both
// engaged (spans appear as skip-span events) and disabled.
func TestFlightRecorderDeadlockDump(t *testing.T) {
	const window, capacity = 1 << 15, 1 << 16
	for _, tc := range []struct {
		name string
		skip bool
	}{{"skip-on", true}, {"skip-off", false}} {
		t.Run(tc.name, func(t *testing.T) {
			cpu := poisonedDeadlockCPU(t, func(c *CPU) {
				c.ArmFlightRecorder(window, capacity)
				c.SetStallSkip(tc.skip)
			})
			res := cpu.Run(10_000_000)
			if res.Outcome != OutcomeDeadlock {
				t.Fatalf("outcome %v, want deadlock", res.Outcome)
			}
			var npe *NoProgressError
			if !errors.As(cpu.Err(), &npe) {
				t.Fatalf("Err() = %v, want *NoProgressError", cpu.Err())
			}
			kinds := checkFlightDump(t, res.Flight, window)
			if res.Flight.Cycle != npe.Cycle {
				t.Fatalf("dump cycle %d != trip cycle %d", res.Flight.Cycle, npe.Cycle)
			}
			// The lead-up must show the machinery that wedged: dispatched
			// instructions with security rows, and the issues that drained.
			for _, k := range []obs.FlightKind{obs.FlightFetch, obs.FlightDispatch, obs.FlightSecRowSet, obs.FlightIssue} {
				if kinds[k] == 0 {
					t.Errorf("dump has no %v events", k)
				}
			}
			if tc.skip {
				// The silent tail is explained by a skip span ending just
				// before the trip.
				if kinds[obs.FlightSkipSpan] == 0 {
					t.Fatal("skipper engaged but no skip-span event recorded")
				}
				last := res.Flight.Events[len(res.Flight.Events)-1]
				if last.Kind != obs.FlightSkipSpan || res.Flight.Cycle-last.Cycle > 2 {
					t.Errorf("last event %+v does not abut the trip at %d", last, res.Flight.Cycle)
				}
			}
			if !strings.Contains(res.Flight.PipeView, "O3PipeView:fetch:") {
				t.Errorf("dump pipeview tail missing fetch records:\n%s", res.Flight.PipeView)
			}
			// The dump rides the same Result the Diag string does.
			if res.Diag != npe.Dump {
				t.Error("Result.Diag must still carry the watchdog dump")
			}
		})
	}
}

// TestFlightRecorderAuditDump covers the second automatic dump path: a
// self-check sweep finding a poisoned security matrix fails the run with
// OutcomeAuditFailed and the same flight dump attached.
func TestFlightRecorderAuditDump(t *testing.T) {
	const window, capacity = 1 << 15, 1 << 16
	cpu := poisonedDeadlockCPU(t, func(c *CPU) {
		c.ArmFlightRecorder(window, capacity)
	})
	cpu.SetSelfCheck(1)
	res := cpu.Run(1_000_000)
	if res.Outcome != OutcomeAuditFailed {
		t.Fatalf("outcome %v, want audit-failed (err %v)", res.Outcome, cpu.Err())
	}
	kinds := checkFlightDump(t, res.Flight, window)
	if kinds[obs.FlightSecRowSet] == 0 {
		t.Error("audit dump has no secrow-set events")
	}
	if res.Flight.Cycle != cpu.Cycle() {
		t.Fatalf("dump cycle %d != audit cycle %d", res.Flight.Cycle, cpu.Cycle())
	}
}

// TestFlightRecorderHealthyRunNoDump: healthy outcomes carry no dump even
// with the recorder armed, and DumpFlight still serves the conviction path.
func TestFlightRecorderHealthyRunNoDump(t *testing.T) {
	prog := deadlockProgram() // healthy when nobody poisons the matrix
	backing := isa.NewFlatMem()
	prog.Load(backing)
	cpu := NewWithMemory(smallCore(), SecurityConfig{Mechanism: core.Baseline}, backing)
	cpu.ArmFlightRecorder(0, 0)
	cpu.SetPC(prog.Base)
	res := cpu.Run(1_000_000)
	if res.Outcome != OutcomeHalted {
		t.Fatalf("outcome %v, want halted", res.Outcome)
	}
	if res.Flight != nil {
		t.Fatal("healthy run must not carry a flight dump")
	}
	d := cpu.DumpFlight()
	if d == nil || len(d.Events) == 0 {
		t.Fatal("explicit DumpFlight returned nothing")
	}
	if kinds := checkFlightDump(t, d, obs.DefaultFlightWindow); kinds[obs.FlightCommit] == 0 {
		t.Error("explicit dump has no commit events")
	}
	cpu.DisarmFlightRecorder()
	if cpu.DumpFlight() != nil || cpu.FlightRecorder() != nil {
		t.Fatal("disarmed recorder must dump nothing")
	}
}
