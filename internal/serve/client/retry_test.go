package client

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"conspec/internal/serve"
)

// fastRetry keeps test backoffs in the microsecond range.
func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{MaxAttempts: attempts, BaseDelay: time.Millisecond, MaxDelay: 4 * time.Millisecond}
}

func TestRetryTransientThenSucceed(t *testing.T) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch atomic.AddInt32(&calls, 1) {
		case 1:
			w.Header().Set("Retry-After", "0")
			http.Error(w, `{"error":"server is draining"}`, http.StatusServiceUnavailable)
		case 2:
			http.Error(w, `{"error":"job queue is full"}`, http.StatusTooManyRequests)
		default:
			fmt.Fprint(w, `{"id":"j1","status":"queued"}`)
		}
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = fastRetry(5)
	var retries []int
	c.Retry.OnRetry = func(attempt int, d time.Duration, err error) { retries = append(retries, attempt) }

	st, err := c.Submit(context.Background(), serve.JobSpec{Suite: "lru"})
	if err != nil {
		t.Fatalf("submit after transients: %v", err)
	}
	if st.ID != "j1" {
		t.Fatalf("submit returned %+v", st)
	}
	if got := atomic.LoadInt32(&calls); got != 3 {
		t.Fatalf("server saw %d calls, want 3", got)
	}
	if len(retries) != 2 {
		t.Fatalf("OnRetry fired %d times, want 2", len(retries))
	}
}

func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		http.Error(w, `{"error":"job queue is full"}`, http.StatusTooManyRequests)
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = fastRetry(3)
	_, err := c.Submit(context.Background(), serve.JobSpec{Suite: "lru"})
	var apiErr *APIError
	if !errors.As(err, &apiErr) || apiErr.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("err %v, want 429 APIError", err)
	}
	if got := atomic.LoadInt32(&calls); got != 3 {
		t.Fatalf("server saw %d calls, want exactly MaxAttempts=3", got)
	}
}

func TestNonRetryableFailsFast(t *testing.T) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		http.Error(w, `{"error":"unknown suite"}`, http.StatusBadRequest)
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = fastRetry(5)
	if _, err := c.Submit(context.Background(), serve.JobSpec{Suite: "nope"}); err == nil {
		t.Fatal("400 did not surface")
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Fatalf("400 was retried: %d calls", got)
	}
}

func TestRetryDisabledByDefault(t *testing.T) {
	var calls int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		atomic.AddInt32(&calls, 1)
		http.Error(w, `{"error":"server is draining"}`, http.StatusServiceUnavailable)
	}))
	defer ts.Close()

	c := New(ts.URL) // zero RetryPolicy
	if _, err := c.Submit(context.Background(), serve.JobSpec{Suite: "lru"}); err == nil {
		t.Fatal("503 did not surface")
	}
	if got := atomic.LoadInt32(&calls); got != 1 {
		t.Fatalf("zero-value policy retried: %d calls", got)
	}
}

func TestRetryDelayHonorsRetryAfter(t *testing.T) {
	p := fastRetry(5)
	err := &APIError{StatusCode: 429, RetryAfter: 7 * time.Second}
	if d := p.delay(0, err); d != 7*time.Second {
		t.Fatalf("delay with Retry-After = %v, want 7s", d)
	}
	// Without Retry-After: jittered exponential within [base/2, max].
	for attempt := 0; attempt < 6; attempt++ {
		d := p.delay(attempt, errors.New("transient"))
		if d < p.BaseDelay/2 || d > p.MaxDelay {
			t.Fatalf("delay(attempt=%d) = %v outside [%v/2, %v]", attempt, d, p.BaseDelay, p.MaxDelay)
		}
	}
}

func TestRetryableClassification(t *testing.T) {
	if retryable(nil) {
		t.Fatal("nil is retryable")
	}
	if retryable(context.Canceled) || retryable(fmt.Errorf("wrap: %w", context.DeadlineExceeded)) {
		t.Fatal("context errors are retryable")
	}
	if retryable(&APIError{StatusCode: 404}) || retryable(&APIError{StatusCode: 400}) {
		t.Fatal("definitive 4xx is retryable")
	}
	if !retryable(&APIError{StatusCode: 429}) || !retryable(&APIError{StatusCode: 503}) {
		t.Fatal("429/503 not retryable")
	}
	if !retryable(errors.New("connection refused")) {
		t.Fatal("transport error not retryable")
	}
}

// sseHandler scripts one /events connection: each call returns the frames
// for that connection attempt, closing the stream afterwards.
func sseHandler(t *testing.T, conns *int32, frames func(conn int32) []string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		conn := atomic.AddInt32(conns, 1)
		w.Header().Set("Content-Type", "text/event-stream")
		for _, f := range frames(conn) {
			fmt.Fprintf(w, "data: %s\n\n", f)
		}
		if fl, ok := w.(http.Flusher); ok {
			fl.Flush()
		}
	}
}

// TestWatchReconnectSameEpoch: the stream drops mid-job; on reconnect the
// server (same process) replays history, and the client delivers only the
// frames it has not seen.
func TestWatchReconnectSameEpoch(t *testing.T) {
	var conns int32
	ts := httptest.NewServer(sseHandler(t, &conns, func(conn int32) []string {
		if conn == 1 {
			return []string{
				`{"seq":0,"epoch":"aaaa","type":"state","status":"queued"}`,
				`{"seq":1,"epoch":"aaaa","type":"state","status":"running"}`,
				// connection drops here, no terminal frame
			}
		}
		return []string{
			`{"seq":0,"epoch":"aaaa","type":"state","status":"queued"}`,
			`{"seq":1,"epoch":"aaaa","type":"state","status":"running"}`,
			`{"seq":2,"epoch":"aaaa","type":"state","status":"done"}`,
		}
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = fastRetry(4)
	var seqs []int
	err := c.Watch(context.Background(), "j1", func(ev serve.Event) error {
		seqs = append(seqs, ev.Seq)
		return nil
	})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if fmt.Sprint(seqs) != "[0 1 2]" {
		t.Fatalf("delivered seqs %v, want [0 1 2] (replay deduped)", seqs)
	}
	if atomic.LoadInt32(&conns) != 2 {
		t.Fatalf("%d connections, want 2", conns)
	}
}

// TestWatchReconnectAcrossRestart: the server restarts (new epoch) and the
// recovered job's history restarts at seq 0. The client must deliver the
// new history in full rather than dropping frames with "old" seq numbers.
func TestWatchReconnectAcrossRestart(t *testing.T) {
	var conns int32
	ts := httptest.NewServer(sseHandler(t, &conns, func(conn int32) []string {
		if conn == 1 {
			return []string{
				`{"seq":0,"epoch":"aaaa","type":"state","status":"queued"}`,
				`{"seq":1,"epoch":"aaaa","type":"state","status":"running"}`,
			}
		}
		return []string{
			`{"seq":0,"epoch":"bbbb","type":"state","status":"queued"}`,
			`{"seq":1,"epoch":"bbbb","type":"state","status":"running"}`,
			`{"seq":2,"epoch":"bbbb","type":"state","status":"done"}`,
		}
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = fastRetry(4)
	var got []string
	err := c.Watch(context.Background(), "j1", func(ev serve.Event) error {
		got = append(got, fmt.Sprintf("%s:%d", ev.Epoch, ev.Seq))
		return nil
	})
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	want := "[aaaa:0 aaaa:1 bbbb:0 bbbb:1 bbbb:2]"
	if fmt.Sprint(got) != want {
		t.Fatalf("delivered %v, want %v", got, want)
	}
}

// TestWatchBudgetRefreshesOnProgress: reconnect attempts are only bounded
// while the stream makes no progress; each delivered frame resets them, so
// a long job survives many well-spaced restarts.
func TestWatchBudgetRefreshesOnProgress(t *testing.T) {
	var conns int32
	ts := httptest.NewServer(sseHandler(t, &conns, func(conn int32) []string {
		if conn < 5 {
			// Each connection yields exactly one fresh frame, then drops.
			return []string{fmt.Sprintf(`{"seq":%d,"epoch":"aaaa","type":"progress"}`, conn-1)}
		}
		return []string{`{"seq":9,"epoch":"aaaa","type":"state","status":"done"}`}
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = fastRetry(2) // budget of ONE reconnect without progress
	var n int
	err := c.Watch(context.Background(), "j1", func(ev serve.Event) error { n++; return nil })
	if err != nil {
		t.Fatalf("watch: %v", err)
	}
	if n != 5 || atomic.LoadInt32(&conns) != 5 {
		t.Fatalf("delivered %d frames over %d conns, want 5 over 5", n, conns)
	}
}

// TestWatchCallbackErrorStopsReconnect: fn's error surfaces immediately,
// never triggering a reconnect.
func TestWatchCallbackErrorStopsReconnect(t *testing.T) {
	var conns int32
	ts := httptest.NewServer(sseHandler(t, &conns, func(conn int32) []string {
		return []string{`{"seq":0,"epoch":"aaaa","type":"state","status":"queued"}`}
	}))
	defer ts.Close()

	c := New(ts.URL)
	c.Retry = fastRetry(5)
	boom := errors.New("boom")
	if err := c.Watch(context.Background(), "j1", func(serve.Event) error { return boom }); !errors.Is(err, boom) {
		t.Fatalf("watch err %v, want the callback's error", err)
	}
	if atomic.LoadInt32(&conns) != 1 {
		t.Fatalf("callback error caused %d connections, want 1", conns)
	}
}

// TestWatchNoRetryPreservesOldBehavior: with the zero policy a dropped
// stream is an error, exactly as before.
func TestWatchNoRetryPreservesOldBehavior(t *testing.T) {
	var conns int32
	ts := httptest.NewServer(sseHandler(t, &conns, func(conn int32) []string {
		return []string{`{"seq":0,"epoch":"aaaa","type":"state","status":"queued"}`}
	}))
	defer ts.Close()

	c := New(ts.URL)
	err := c.Watch(context.Background(), "j1", func(serve.Event) error { return nil })
	if err == nil {
		t.Fatal("dropped stream did not error with retries disabled")
	}
	if atomic.LoadInt32(&conns) != 1 {
		t.Fatalf("%d connections with retries disabled, want 1", conns)
	}
}
