package pipeline_test

import (
	"fmt"

	"conspec/internal/asm"
	"conspec/internal/config"
	"conspec/internal/core"
	"conspec/internal/isa"
	"conspec/internal/pipeline"
)

// Run a program on the out-of-order core under the full Conditional
// Speculation mechanism and read back architectural state.
func ExampleCPU() {
	b := asm.New()
	b.Li(asm.A0, 21)
	b.Add(asm.A0, asm.A0, asm.A0)
	b.Halt()
	prog := b.MustAssemble(0x1000)

	backing := isa.NewFlatMem()
	prog.Load(backing)
	cpu := pipeline.NewWithMemory(config.PaperCore(),
		pipeline.SecurityConfig{Mechanism: core.CacheHitTPBuf}, backing)
	cpu.SetPC(prog.Base)
	cpu.Run(10_000)
	fmt.Println("a0:", cpu.ArchReg(int(asm.A0)), "halted:", cpu.Halted())
	// Output: a0: 42 halted: true
}
