// Command conspec-sim runs one synthetic benchmark on one simulated core
// under one defense backend and prints the detailed statistics: cycles,
// IPC, cache behaviour, and the security-filter counters behind Table V.
// -mech accepts any name in the core defense registry (the four paper
// variants plus ssbd, fence, delay-on-miss, invisispec); the historical
// spellings ("tpbuf", "cache-hit") are aliases.
//
// Usage:
//
//	conspec-sim -list
//	conspec-sim -bench lbm -mech tpbuf
//	conspec-sim -bench astar -mech baseline -core xeon -measure 200000
//	conspec-sim -bench lbm -mech delay-on-miss
//
// The hardening layer is exposed for reproduction and debugging: -selfcheck
// audits the machine's invariants in-run, and -inject plants one seeded
// microarchitectural fault (see internal/faultinject) that those audits, the
// forward-progress watchdog, or downstream leak checks must catch:
//
//	conspec-sim -bench lbm -mech tpbuf -selfcheck 64
//	conspec-sim -bench astar -mech tpbuf -selfcheck 1 -inject secmatrix-bit -inject-seed 11 -inject-at 2000
//
// -flight-recorder N arms the microarchitectural flight recorder over the
// last N cycles; a failed run dumps it to stderr as JSON (with an
// O3PipeView tail), and -flight-out FILE captures it unconditionally:
//
//	conspec-sim -bench lbm -mech tpbuf -inject dropped-wakeup -flight-recorder 32768
//	conspec-sim -bench astar -mech tpbuf -flight-recorder 4096 -flight-out astar.flight.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"conspec/internal/buildinfo"
	"conspec/internal/config"
	"conspec/internal/core"
	"conspec/internal/exp"
	"conspec/internal/faultinject"
	"conspec/internal/mem"
	"conspec/internal/obs"
	"conspec/internal/pipeline"
	"conspec/internal/profutil"
	"conspec/internal/workload"
)

func coreByName(name string) (config.Core, bool) {
	switch strings.ToLower(name) {
	case "paper", "":
		return config.PaperCore(), true
	case "a57", "a57-like":
		return config.A57Like(), true
	case "i7", "i7-like":
		return config.I7Like(), true
	case "xeon", "xeon-like":
		return config.XeonLike(), true
	}
	return config.Core{}, false
}

// defenseByName resolves a -mech value through the core defense registry
// ("" keeps the historical origin default). The old per-CLI spellings
// ("tpbuf", "cache-hit") are registered aliases, so they keep working.
func defenseByName(name string) (core.Defense, error) {
	if name == "" {
		name = "origin"
	}
	return core.LookupDefense(name)
}

func lruByName(name string) (mem.UpdatePolicy, bool) {
	switch strings.ToLower(name) {
	case "always", "":
		return mem.UpdateAlways, true
	case "noupdate", "no-update":
		return mem.UpdateNoSpec, true
	case "delayed", "delayed-update":
		return mem.UpdateDelayed, true
	}
	return 0, false
}

func main() {
	var (
		list    = flag.Bool("list", false, "list benchmarks and exit")
		bench   = flag.String("bench", "", "benchmark name (see -list)")
		mech    = flag.String("mech", "origin", "defense: "+strings.Join(core.DefenseNames(), "|")+" (aliases: tpbuf, lfence, dom, ...)")
		coreF   = flag.String("core", "paper", "core: paper|a57|i7|xeon")
		scope   = flag.String("scope", "full", "matrix scope: full|branch-only")
		icache  = flag.Bool("icache", false, "enable the §VII.B ICache-hit filter")
		lru     = flag.String("lru", "always", "L1D update policy: always|noupdate|delayed")
		ssbd    = flag.Bool("ssbd", false, "disable speculative store bypass (V4 mitigation)")
		dtlbF   = flag.Bool("dtlbfilter", false, "enable the DTLB-hit filter extension")
		warmup  = flag.Uint64("warmup", 20_000, "warmup instructions")
		measure = flag.Uint64("measure", 120_000, "measured instructions")
		stages  = flag.Bool("stages", false, "print per-stage cycle-accounting counters")
		noSkip  = flag.Bool("no-skip", false, "disable event-driven stall skipping (debug escape hatch; results must not change)")

		selfchk    = flag.Uint64("selfcheck", 0, "audit pipeline and security invariants every N cycles; a violation fails the run (0 = off)")
		injectF    = flag.String("inject", "", "fault class to inject: secmatrix-bit|suspect-clear|tpbuf-bit|dropped-wakeup|lru-skew")
		injectSeed = flag.Int64("inject-seed", 1, "deterministic victim-selection seed for -inject")
		injectAt   = flag.Uint64("inject-at", 0, "first cycle eligible for injection")
		injectPers = flag.Bool("inject-persistent", false, "re-inject every cycle instead of once")
		injectFld  = flag.String("inject-field", "S", "TPBuf bit for -inject tpbuf-bit: V|W|S|P")

		flightRec = flag.Uint64("flight-recorder", 0, "arm the microarchitectural flight recorder over the last N cycles (0 = off)")
		flightOut = flag.String("flight-out", "", "write the flight dump as JSON to FILE ('-' = stderr); default stderr on failed runs only")

		traceF   = flag.String("trace", "", "write a text pipeline event trace to FILE ('-' = stderr)")
		pipeview = flag.String("pipeview", "", "write an O3PipeView trace (Konata-compatible) to FILE")
		metricsF = flag.String("metrics", "", "write the sampled metric time series to FILE (.csv = CSV, otherwise JSONL)")
		interval = flag.Uint64("metrics-interval", 1000, "metric sampling interval in cycles (with -metrics)")
		version  = flag.Bool("version", false, "print build information and exit")
	)
	pflags := profutil.Register()
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Short("conspec-sim"))
		return
	}
	profStop, err := pflags.Start()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer profStop()

	if *list {
		for _, p := range workload.Profiles() {
			fmt.Printf("%-12s paper L1 hit %.1f%%\n", p.Name, 100*p.PaperL1HitRate)
		}
		return
	}

	prof, ok := workload.ByName(*bench)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown benchmark %q (try -list)\n", *bench)
		os.Exit(2)
	}
	cfg, ok := coreByName(*coreF)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown core %q\n", *coreF)
		os.Exit(2)
	}
	d, err := defenseByName(*mech)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	hooks := d.Hooks()
	pol, ok := lruByName(*lru)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown lru policy %q\n", *lru)
		os.Exit(2)
	}
	sc := core.ScopeBranchMem
	if *scope == "branch-only" {
		sc = core.ScopeBranchOnly
	}

	w, err := workload.Generate(prof)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	spec := exp.RunSpec{
		Core: cfg,
		Sec: pipeline.SecurityConfig{Mechanism: d.Mechanism(), Scope: sc,
			ICacheFilter: *icache, SSBD: *ssbd || d.SSBD(), DTLBFilter: *dtlbF},
		L1DUpdate: pol,
		Warmup:    *warmup,
		Measure:   *measure,
	}
	if *metricsF != "" {
		spec.MetricsInterval = *interval
	}
	spec.SelfCheck = *selfchk

	var inj *faultinject.Injector
	if *injectF != "" {
		class, err := faultinject.ByName(*injectF)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if len(*injectFld) != 1 || !strings.ContainsAny(*injectFld, "VWSP") {
			fmt.Fprintf(os.Stderr, "bad -inject-field %q (want V, W, S or P)\n", *injectFld)
			os.Exit(2)
		}
		inj = faultinject.New(faultinject.Config{
			Class:      class,
			Seed:       *injectSeed,
			Start:      *injectAt,
			Persistent: *injectPers,
			Field:      (*injectFld)[0],
		})
	}

	// Observability setup: sinks attach before warmup (a trace covers the
	// whole run); the metric registry attaches after warmup inside
	// RunWorkloadWith, so histograms cover exactly the measured phase.
	var sim *pipeline.CPU
	var closers []io.Closer
	setup := func(c *pipeline.CPU) {
		sim = c
		if *noSkip {
			c.SetStallSkip(false)
		}
		if *flightRec > 0 || *flightOut != "" {
			c.ArmFlightRecorder(*flightRec, 0)
		}
		if inj != nil {
			c.SetFaultHook(inj.Hook())
		}
		if *traceF != "" {
			tw, err := openOut(*traceF)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			closers = append(closers, tw)
			c.AttachTracer(tw)
		}
		if *pipeview != "" {
			pw, err := openOut(*pipeview)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			closers = append(closers, pw)
			c.AttachSink(obs.NewPipeViewSink(pw))
		}
	}
	res := exp.RunWorkloadWith(w, spec, setup)
	if err := sim.FlushSinks(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, cl := range closers {
		if err := cl.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *metricsF != "" {
		if err := writeSeries(*metricsF, res.Series); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	fmt.Printf("benchmark   : %s on %s\n", prof.Name, cfg.Name)
	fmt.Printf("mechanism   : %v (scope %v, icache-filter %v, lru %v)\n", d.Title(), sc, *icache, pol)
	fmt.Printf("instructions: %d (after %d warmup)\n", res.Committed, *warmup)
	fmt.Printf("cycles      : %d  (IPC %.3f)\n", res.Cycles, res.IPC())
	fmt.Printf("L1D         : %.2f%% hit (%d accesses)\n", 100*res.L1D.HitRate(), res.L1D.Accesses)
	fmt.Printf("L1I         : %.2f%% hit\n", 100*res.L1I.HitRate())
	fmt.Printf("branches    : %.2f%% mispredicted (%d predicts)\n",
		100*res.Branch.MispredictRate(), res.Branch.CondPredicts)
	fmt.Printf("squashes    : %d (%d memory-order violations)\n", res.Squashes, res.MemViolations)
	if hooks.TracksDependence {
		fmt.Printf("suspect     : %d issued, %.2f%% hit L1D\n",
			res.Filter.SuspectIssued, 100*res.Filter.SpecHitRate())
		fmt.Printf("blocked     : %.2f%% of committed memory instructions (%d events)\n",
			100*res.Filter.BlockedRate(), res.Filter.BlockedEvents)
	}
	if hooks.TPBufFilter {
		fmt.Printf("TPBuf       : %d queries, %.2f%% S-Pattern mismatch (safe)\n",
			res.TPBuf.Queries, 100*res.TPBuf.MismatchRate())
	}
	if *icache {
		fmt.Printf("icache-stall: %d fetch stalls from the ICache-hit filter\n",
			res.FetchStallsICacheFilter)
	}
	if *selfchk > 0 || inj != nil {
		fmt.Printf("hardening   : %d selfcheck sweeps, %d violations, %d watchdog trips\n",
			res.Hardening.SelfCheckSweeps, res.Hardening.SelfCheckViolations,
			res.Hardening.WatchdogTrips)
	}
	if inj != nil {
		fmt.Printf("faults      : %d injected (%s, seed %d, from cycle %d, persistent %v)\n",
			inj.Injected, *injectF, *injectSeed, *injectAt, *injectPers)
	}
	if *stages {
		printStages(res)
	}
	if *flightRec > 0 || *flightOut != "" {
		// Watchdog trips and audit failures auto-dump into the result;
		// otherwise snapshot the ring as of the final cycle.
		dump := res.Flight
		if dump == nil {
			dump = sim.DumpFlight()
		}
		switch {
		case dump == nil:
			fmt.Fprintln(os.Stderr, "flight recorder: nothing recorded")
		case *flightOut != "":
			if err := writeFlight(*flightOut, dump); err != nil {
				fmt.Fprintln(os.Stderr, err)
				profStop()
				os.Exit(1)
			}
		case !res.Outcome.Completed():
			writeFlight("-", dump)
		}
	}
	if !res.Outcome.Completed() {
		fmt.Fprintf(os.Stderr, "run failed: %s", res.Outcome)
		if err := sim.Err(); err != nil {
			fmt.Fprintf(os.Stderr, ": %v", err)
		}
		fmt.Fprintln(os.Stderr)
		if res.Diag != "" {
			fmt.Fprint(os.Stderr, res.Diag)
		}
		profStop() // os.Exit skips deferred handlers
		os.Exit(1)
	}
}

// nopCloser wraps a writer the process must not close (stderr).
type nopCloser struct{ io.Writer }

func (nopCloser) Close() error { return nil }

// openOut opens an output file for a trace ('-' = stderr, so traces can be
// separated from the statistics report on stdout).
func openOut(path string) (io.WriteCloser, error) {
	if path == "-" {
		return nopCloser{os.Stderr}, nil
	}
	return os.Create(path)
}

// writeFlight exports a flight-recorder dump as indented JSON ('-' =
// stderr, keeping it separable from the statistics report on stdout).
func writeFlight(path string, d *obs.FlightDump) error {
	f, err := openOut(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(d)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// writeSeries exports the sampled time series: CSV when the filename says
// so, JSONL (with histogram trailer) otherwise.
func writeSeries(path string, s *obs.Series) error {
	if s == nil {
		return fmt.Errorf("no metric series recorded (measured phase shorter than the sampling interval?)")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if strings.HasSuffix(path, ".csv") {
		err = s.WriteCSV(f)
	} else {
		err = s.WriteJSONL(f)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// printStages renders the per-stage cycle-accounting counters: average
// structure occupancies plus the stall breakdown, the first place to look
// when asking where a configuration's cycles go.
func printStages(res pipeline.Result) {
	cyc := float64(res.Cycles)
	if cyc == 0 {
		cyc = 1
	}
	st := res.Stages
	fmt.Println("--- stage cycle accounting ---")
	fmt.Printf("fetchq occ  : %.2f avg entries\n", float64(st.FetchQOccupancy)/cyc)
	fmt.Printf("iq occ      : %.2f avg entries (%.2f data-ready)\n",
		float64(st.IQOccupancy)/cyc, float64(st.ReadyOccupancy)/cyc)
	fmt.Printf("rob occ     : %.2f avg entries\n", float64(st.ROBOccupancy)/cyc)
	fmt.Printf("exec inflt  : %.2f avg in-flight ops\n", float64(st.ExecInflight)/cyc)
	fmt.Printf("issue       : %.3f uops/cycle, %.1f%% idle cycles (IQ non-empty, nothing issued)\n",
		float64(st.IssuedUops)/cyc, 100*float64(st.IssueIdleCycles)/cyc)
	fmt.Printf("commit      : %.1f%% stall cycles (ROB non-empty, nothing committed)\n",
		100*float64(st.CommitStalls)/cyc)
	fmt.Printf("stall skip  : %d cycles fast-forwarded in %d spans (%.1f%% of cycles)\n",
		st.SkippedCycles, st.SkipSpans, 100*float64(st.SkippedCycles)/cyc)
}
