package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync/atomic"
	"time"

	"conspec/internal/exp"
	"conspec/internal/pipeline"
)

// ResultStore is the pluggable persistent result tier the fleet threads
// under each worker's Runner. It is exactly exp.ResultCache — keys are hex
// runKeys, misses must never fail a run — named here because the fleet is
// where "which store" becomes a deployment choice: a *diskcache.Store for
// a local directory, a *RemoteStore for the coordinator over HTTP, or a
// *TieredStore layering both.
type ResultStore = exp.ResultCache

// RemoteStore is a ResultStore backed by the coordinator's result
// endpoints (GET/PUT /fleet/v1/results/{key}), giving workers the
// coordinator's content-addressed store without a shared filesystem. All
// errors degrade to misses/dropped writes, per the ResultCache contract.
type RemoteStore struct {
	base    string // coordinator base URL, no trailing slash
	client  *http.Client
	timeout time.Duration

	gets, hits, puts, errs atomic.Uint64
}

// RemoteStoreStats is a snapshot of a RemoteStore's traffic.
type RemoteStoreStats struct {
	Gets, Hits, Puts, Errs uint64
}

// NewRemoteStore returns a store over the coordinator at baseURL. A nil
// client uses http.DefaultClient; requests are bounded by an internal
// per-call timeout so a hung coordinator degrades to cache misses, not a
// wedged worker.
func NewRemoteStore(baseURL string, client *http.Client) *RemoteStore {
	if client == nil {
		client = http.DefaultClient
	}
	return &RemoteStore{
		base:    strings.TrimRight(baseURL, "/"),
		client:  client,
		timeout: 30 * time.Second,
	}
}

// Get implements ResultStore.
func (r *RemoteStore) Get(key string) (pipeline.Result, bool) {
	if r == nil {
		return pipeline.Result{}, false
	}
	r.gets.Add(1)
	ctx, cancel := context.WithTimeout(context.Background(), r.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, r.base+"/fleet/v1/results/"+key, nil)
	if err != nil {
		r.errs.Add(1)
		return pipeline.Result{}, false
	}
	resp, err := r.client.Do(req)
	if err != nil {
		r.errs.Add(1)
		return pipeline.Result{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		if resp.StatusCode != http.StatusNotFound {
			r.errs.Add(1)
		}
		return pipeline.Result{}, false
	}
	var res pipeline.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil {
		r.errs.Add(1)
		return pipeline.Result{}, false
	}
	r.hits.Add(1)
	return res, true
}

// Put implements ResultStore: every finished simulation is published to
// the coordinator as it completes, which is what makes a worker kill -9
// lose no results — the next holder of the lease fetches them back.
func (r *RemoteStore) Put(key string, res pipeline.Result) {
	if r == nil {
		return
	}
	r.puts.Add(1)
	b, err := json.Marshal(res)
	if err != nil {
		r.errs.Add(1)
		return
	}
	ctx, cancel := context.WithTimeout(context.Background(), r.timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, r.base+"/fleet/v1/results/"+key, bytes.NewReader(b))
	if err != nil {
		r.errs.Add(1)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := r.client.Do(req)
	if err != nil {
		r.errs.Add(1)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		r.errs.Add(1)
	}
}

// Stats snapshots the store's counters.
func (r *RemoteStore) Stats() RemoteStoreStats {
	if r == nil {
		return RemoteStoreStats{}
	}
	return RemoteStoreStats{
		Gets: r.gets.Load(), Hits: r.hits.Load(),
		Puts: r.puts.Load(), Errs: r.errs.Load(),
	}
}

// TieredStore layers a fast local ResultStore (typically a per-worker
// diskcache) over the coordinator's RemoteStore: reads hit local first and
// copy remote hits through; writes land in both, so a simulation finished
// anywhere in the fleet is eventually a local hit everywhere it is needed
// again. Either tier may be nil.
type TieredStore struct {
	Local  ResultStore
	Remote ResultStore

	localHits, remoteHits atomic.Uint64
}

// TieredStats counts which tier served the hits.
type TieredStats struct {
	LocalHits, RemoteHits uint64
}

// Get implements ResultStore.
func (t *TieredStore) Get(key string) (pipeline.Result, bool) {
	if t.Local != nil {
		if res, ok := t.Local.Get(key); ok {
			t.localHits.Add(1)
			return res, true
		}
	}
	if t.Remote != nil {
		if res, ok := t.Remote.Get(key); ok {
			t.remoteHits.Add(1)
			if t.Local != nil {
				t.Local.Put(key, res) // copy-through for the next local read
			}
			return res, true
		}
	}
	return pipeline.Result{}, false
}

// Put implements ResultStore.
func (t *TieredStore) Put(key string, res pipeline.Result) {
	if t.Local != nil {
		t.Local.Put(key, res)
	}
	if t.Remote != nil {
		t.Remote.Put(key, res)
	}
}

// Stats snapshots the per-tier hit counters.
func (t *TieredStore) Stats() TieredStats {
	return TieredStats{LocalHits: t.localHits.Load(), RemoteHits: t.remoteHits.Load()}
}
