# conspec build/verify targets.
#
#   make tier1   — the PR gate: build, vet, full test suite, plus the race
#                  detector over the experiment engine's worker pool.

GO ?= go

.PHONY: all build vet test race tier1 bench

all: tier1

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# The engine schedules simulations on a bounded worker pool with a shared
# memo cache; run it under the race detector on every PR.
race:
	$(GO) test -race ./internal/exp

tier1: build vet test race

bench:
	$(GO) test -bench=. -benchmem -benchtime=1x
