package obs

import (
	"strings"
	"testing"
)

func TestTextSinkFormat(t *testing.T) {
	var sb strings.Builder
	s := NewTextSink(&sb)
	s.Event(TraceEvent{Cycle: 12, Kind: EvFetch, Seq: 3, PC: 0x1000, Disasm: "addi x5, x0, 1"})
	s.Event(TraceEvent{Cycle: 15, Kind: EvSquash, Seq: 4, PC: 0x2000})
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	want := "      12 FETCH    seq=3      pc=0x1000  addi x5, x0, 1\n" +
		"      15 SQUASH   from seq=4, redirect pc=0x2000\n"
	if sb.String() != want {
		t.Fatalf("text sink output:\n%q\nwant:\n%q", sb.String(), want)
	}
}

// TestPipeViewSinkRecord drives one committed and one squashed instruction
// through the sink and pins the O3PipeView line format Konata parses.
func TestPipeViewSinkRecord(t *testing.T) {
	var sb strings.Builder
	p := NewPipeViewSink(&sb)
	// Committed load, suspect at issue.
	p.Event(TraceEvent{Cycle: 1, Kind: EvFetch, Seq: 1, PC: 0x1000, Disasm: "ld x5, 0(x6)"})
	p.Event(TraceEvent{Cycle: 4, Kind: EvDispatch, Seq: 1, PC: 0x1000})
	p.Event(TraceEvent{Cycle: 6, Kind: EvIssue, Seq: 1, PC: 0x1000, Suspect: true})
	p.Event(TraceEvent{Cycle: 9, Kind: EvWriteback, Seq: 1, PC: 0x1000})
	p.Event(TraceEvent{Cycle: 10, Kind: EvCommit, Seq: 1, PC: 0x1000})
	// Wrong-path instruction: fetched, dispatched, squashed.
	p.Event(TraceEvent{Cycle: 2, Kind: EvFetch, Seq: 2, PC: 0x1004, Disasm: "addi x7, x7, 1"})
	p.Event(TraceEvent{Cycle: 5, Kind: EvDispatch, Seq: 2, PC: 0x1004})
	p.Event(TraceEvent{Cycle: 11, Kind: EvSquash, Seq: 2, PC: 0x2000})
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	want := strings.Join([]string{
		"O3PipeView:fetch:1:0x0000000000001000:0:1:ld x5, 0(x6) [suspect]",
		"O3PipeView:decode:4",
		"O3PipeView:rename:4",
		"O3PipeView:dispatch:4",
		"O3PipeView:issue:6",
		"O3PipeView:complete:9",
		"O3PipeView:retire:10:store:0",
		"O3PipeView:fetch:2:0x0000000000001004:0:2:addi x7, x7, 1",
		"O3PipeView:decode:5",
		"O3PipeView:rename:5",
		"O3PipeView:dispatch:5",
		"O3PipeView:issue:0",
		"O3PipeView:complete:0",
		"O3PipeView:retire:0:store:0",
		"",
	}, "\n")
	if sb.String() != want {
		t.Fatalf("pipeview output:\n%s\nwant:\n%s", sb.String(), want)
	}
}

// TestPipeViewSinkIgnoresUnknownSeq covers mid-run attachment: events for
// instructions fetched before the sink existed must not create records.
func TestPipeViewSinkIgnoresUnknownSeq(t *testing.T) {
	var sb strings.Builder
	p := NewPipeViewSink(&sb)
	p.Event(TraceEvent{Cycle: 4, Kind: EvDispatch, Seq: 9, PC: 0x1000})
	p.Event(TraceEvent{Cycle: 6, Kind: EvCommit, Seq: 9, PC: 0x1000})
	if err := p.Flush(); err != nil {
		t.Fatal(err)
	}
	if sb.String() != "" {
		t.Fatalf("expected no output for unknown seq, got:\n%s", sb.String())
	}
}
