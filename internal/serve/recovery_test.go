package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"conspec/internal/diskcache"
	"conspec/internal/exp"
	"conspec/internal/exp/report"
	"conspec/internal/serve/journal"
)

// TestJournalRecoveryAcrossRestart is the tentpole's acceptance test at the
// package level: jobs accepted (one of them already running) when the
// process dies are re-queued by the next server over the same journal,
// marked recovered, and run to completion.
func TestJournalRecoveryAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	jr1, recovered, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 0 {
		t.Fatalf("fresh journal recovered %d jobs", len(recovered))
	}

	fake1 := newFakeExec()
	_, ts1 := newTestServer(t, Config{Workers: 1, QueueCap: 4, Journal: jr1}, fake1)
	first := submit(t, ts1.URL, JobSpec{Suite: "lru"})
	<-fake1.started // first's OpStarted is durable once exec begins
	second := submit(t, ts1.URL, JobSpec{Suite: "scope"})
	third := submit(t, ts1.URL, JobSpec{Suite: "dtlb"})

	// Crash: no Drain, no cancels — just drop the journal's file handle the
	// way kill -9 would. The still-running server's later appends fail and
	// are logged, exactly as they would vanish in a real crash.
	if err := jr1.Close(); err != nil {
		t.Fatal(err)
	}

	jr2, recovered, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(recovered) != 3 {
		t.Fatalf("recovered %d jobs, want 3: %+v", len(recovered), recovered)
	}
	if recovered[0].Job != first.ID || recovered[0].Op != journal.OpStarted {
		t.Fatalf("recovered[0] = %s/%s, want %s/started", recovered[0].Job, recovered[0].Op, first.ID)
	}

	// QueueCap 1 < 3 recovered jobs: the backlog must still be accepted in
	// full (the queue is sized for it), with fresh submissions rejected
	// until it drains below the cap.
	fake2 := newFakeExec()
	_, ts2 := newTestServer(t, Config{Workers: 1, QueueCap: 1, Journal: jr2, Recovered: recovered}, fake2)
	if _, code := trySubmit(t, ts2.URL, JobSpec{Suite: "lru"}); code != http.StatusTooManyRequests {
		t.Fatalf("fresh submit over a full recovered backlog: status %d, want 429", code)
	}

	for _, id := range []string{first.ID, second.ID, third.ID} {
		st := getJob(t, ts2.URL, id)
		if !st.Recovered {
			t.Fatalf("job %s not flagged recovered: %+v", id, st)
		}
	}
	for i := 0; i < 3; i++ {
		<-fake2.started
		fake2.releaseAll(1)
	}
	for _, id := range []string{first.ID, second.ID, third.ID} {
		if st := waitStatus(t, ts2.URL, id, StatusDone); !st.Recovered {
			t.Fatalf("job %s lost its recovered flag at completion", id)
		}
	}
	if live := jr2.Live(); live != 0 {
		t.Fatalf("journal still tracks %d live jobs after all completed", live)
	}

	resp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"conspec_served_jobs_recovered_total 3\n",
		"conspec_served_journal_live_jobs 0\n",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}

// TestCancelQueuedJobIsDurable: a queued job canceled over the API must not
// be resurrected by recovery, even if the process dies before a worker ever
// dequeues it.
func TestCancelQueuedJobIsDurable(t *testing.T) {
	dir := t.TempDir()
	jr, _, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fake := newFakeExec()
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4, Journal: jr}, fake)
	running := submit(t, ts.URL, JobSpec{Suite: "lru"})
	<-fake.started
	queued := submit(t, ts.URL, JobSpec{Suite: "scope"})

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	// Crash before the worker reaches the canceled job.
	if err := jr.Close(); err != nil {
		t.Fatal(err)
	}
	jr2, recovered, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jr2.Close()
	if len(recovered) != 1 || recovered[0].Job != running.ID {
		t.Fatalf("recovered %+v, want exactly the running job %s", recovered, running.ID)
	}
}

// TestJournalRejectsUnreadableSpec: a journaled spec that no longer
// unmarshals or validates is failed cleanly at recovery, not crash-looped.
func TestRecoveryFailsInvalidSpecsCleanly(t *testing.T) {
	dir := t.TempDir()
	jr, _, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	jr.Append(journal.OpSubmitted, "jgone", json.RawMessage(`{"suite":"no-such-suite"}`), "")
	jr.Append(journal.OpSubmitted, "jrot", json.RawMessage(`{"suite":`), "")
	jr.Close()

	jr2, recovered, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := New(Config{Workers: 1, Journal: jr2, Recovered: recovered})
	defer s.Close()
	if q, r := s.counts(); q != 0 || r != 0 {
		t.Fatalf("invalid specs were queued: queued %d running %d", q, r)
	}
	jr2.Close()

	// Both were journaled as failed: nothing to recover on the next open.
	jr3, recovered, err := journal.Open(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jr3.Close()
	if len(recovered) != 0 {
		t.Fatalf("invalid specs still live after recovery: %+v", recovered)
	}
}

func TestRetryAfterSecs(t *testing.T) {
	cases := []struct {
		ahead, workers int
		avg            time.Duration
		fallback, want int
	}{
		{1, 2, 0, 2, 2},                      // no history: fallback
		{5, 4, 0, 10, 10},                    // no history: fallback
		{1, 1, 4 * time.Second, 2, 4},        // one job, one worker
		{1, 2, 4 * time.Second, 2, 2},        // pool halves the wait
		{10, 2, 4 * time.Second, 10, 20},     // backlog scales it
		{1, 8, 100 * time.Millisecond, 2, 1}, // rounds up to the 1s floor
		{500, 1, 30 * time.Second, 10, 600},  // clamped to 10 minutes
		{0, 0, 2 * time.Second, 2, 2},        // degenerate inputs normalize
	}
	for _, c := range cases {
		if got := retryAfterSecs(c.ahead, c.workers, c.avg, c.fallback); got != c.want {
			t.Errorf("retryAfterSecs(%d, %d, %v, %d) = %d, want %d",
				c.ahead, c.workers, c.avg, c.fallback, got, c.want)
		}
	}
}

// TestRetryAfterDerivedFromLatency: once a job has completed, 429 responses
// carry an estimate from observed latency instead of the hardcoded fallback.
func TestRetryAfterDerivedFromLatency(t *testing.T) {
	fake := newFakeExec()
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 1}, fake)

	first := submit(t, ts.URL, JobSpec{Suite: "lru"})
	<-fake.started
	fake.releaseAll(1)
	waitStatus(t, ts.URL, first.ID, StatusDone)

	// Worker busy + queue full again.
	submit(t, ts.URL, JobSpec{Suite: "lru"})
	<-fake.started
	submit(t, ts.URL, JobSpec{Suite: "lru"})

	body, _ := json.Marshal(JobSpec{Suite: "lru"})
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	// The fake job completed in well under a second, so the derived
	// estimate is the 1-second floor — distinguishable from the 2-second
	// no-history fallback.
	if ra := resp.Header.Get("Retry-After"); ra != "1" {
		t.Fatalf("Retry-After %q, want the derived 1s estimate", ra)
	}
	fake.releaseAll(2)
}

// TestEventsCarryEpoch: every SSE frame is stamped with the server process
// epoch, the signal reconnecting watchers use to detect a restart.
func TestEventsCarryEpoch(t *testing.T) {
	fake := newFakeExec()
	s, ts := newTestServer(t, Config{Workers: 1}, fake)
	st := submit(t, ts.URL, JobSpec{Suite: "lru"})
	<-fake.started
	fake.releaseAll(1)
	waitStatus(t, ts.URL, st.ID, StatusDone)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	events := readSSE(t, resp.Body)
	if len(events) == 0 {
		t.Fatal("no events")
	}
	for _, ev := range events {
		if ev.Epoch != s.epoch {
			t.Fatalf("event %+v carries epoch %q, want server epoch %q", ev, ev.Epoch, s.epoch)
		}
	}
}

// TestSubmitDuringDrainHammer races a storm of submissions against Drain:
// every 202 job must reach a terminal state (never accepted-then-dropped),
// every rejection must be a clean 503 or 429.
func TestSubmitDuringDrainHammer(t *testing.T) {
	s := New(Config{Workers: 2, QueueCap: 8, execOverride: func(ctx context.Context, j *job, emit func(exp.ProgressEvent)) (*report.Report, exp.Stats, int, error) {
		return report.New(), exp.Stats{}, 0, nil
	}})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var (
		mu       sync.Mutex
		accepted []string
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			body, _ := json.Marshal(JobSpec{Suite: "lru"})
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(body))
				if err != nil {
					return // server socket closing down
				}
				var st JobStatus
				code := resp.StatusCode
				if code == http.StatusAccepted {
					json.NewDecoder(resp.Body).Decode(&st)
				}
				resp.Body.Close()
				switch code {
				case http.StatusAccepted:
					mu.Lock()
					accepted = append(accepted, st.ID)
					mu.Unlock()
				case http.StatusServiceUnavailable, http.StatusTooManyRequests:
				default:
					t.Errorf("submission during drain: status %d", code)
					return
				}
			}
		}()
	}

	time.Sleep(20 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	close(stop)
	wg.Wait()

	mu.Lock()
	defer mu.Unlock()
	if len(accepted) == 0 {
		t.Fatal("hammer accepted no jobs; the race was never exercised")
	}
	for _, id := range accepted {
		st := getJob(t, ts.URL, id)
		if !st.Status.Terminal() {
			t.Fatalf("accepted job %s left in %s after drain", id, st.Status)
		}
	}
}

// TestStoreMetricsExposition: a server over a stats-capable disk cache and
// a journal exports both stores' gauges through /metrics.
func TestStoreMetricsExposition(t *testing.T) {
	cacheDir := t.TempDir()
	store, err := diskcache.OpenWith(cacheDir, diskcache.Options{MaxBytes: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	jr, recovered, err := journal.Open(t.TempDir(), journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer jr.Close()

	fake := newFakeExec()
	_, ts := newTestServer(t, Config{Workers: 1, Cache: store, Journal: jr, Recovered: recovered}, fake)
	st := submit(t, ts.URL, JobSpec{Suite: "lru"})
	<-fake.started
	fake.releaseAll(1)
	waitStatus(t, ts.URL, st.ID, StatusDone)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	for _, want := range []string{
		"conspec_served_cache_disk_gets_total ",
		"conspec_served_cache_disk_hits_total ",
		"conspec_served_cache_disk_bytes ",
		"conspec_served_cache_disk_entries ",
		"conspec_served_cache_disk_evictions_total ",
		"conspec_served_cache_disk_quarantined_total ",
		"conspec_served_journal_wal_bytes ",
		"conspec_served_journal_appends_total ",
		"conspec_served_journal_compactions_total ",
		"conspec_served_jobs_recovered_total 0\n",
	} {
		if !strings.Contains(string(out), want) {
			t.Errorf("metrics missing %q:\n%s", want, out)
		}
	}
}
