// Package hw provides the analytical area/timing model behind §VI.E's
// hardware overhead evaluation. The paper synthesized the security
// dependence matrix and TPBuf at RTL with the SMIC 40nm library; we cannot
// run a synthesis flow, so this model counts storage cells and logic per
// structure and applies per-cell area constants calibrated so that the
// paper configuration reproduces the published absolute numbers:
//
//   - 64-entry issue queue matrix: 0.05 mm², 3.5% of a 4-way 32KB cache,
//     +1.4% on the issue-select critical path;
//   - 56-entry TPBuf: 0.00079 mm², 0.055% of the same cache.
//
// With the constants fixed, the model extrapolates to the other cores
// (A57-like, I7-like, Xeon-like) by structure size, which is exactly how
// the area of bit-matrix and CAM structures scales to first order.
package hw

import (
	"fmt"

	"conspec/internal/config"
)

// Tech holds per-cell area constants for one process node.
type Tech struct {
	Name string
	// MatrixCellUM2 is the effective area of one security-dependence
	// matrix bit: a multi-ported register cell plus its share of the row
	// OR-reduction and column-clear drivers.
	MatrixCellUM2 float64
	// TPBufCellUM2 is the effective area of one TPBuf storage bit (CAM tag
	// bits, mask bits and status flops averaged).
	TPBufCellUM2 float64
	// Cache32KB4WayMM2 is the reference macro the paper normalizes
	// against: a complete 4-way 32KB cache including tags and periphery.
	Cache32KB4WayMM2 float64
	// SelectPathPsPerLevel approximates the extra delay of one gate level
	// on the issue-select path, as a fraction of the baseline select path
	// per level (used for the critical-path estimate).
	SelectPathFracPerLevel float64
}

// SMIC40 returns the 40nm constants calibrated against the paper's numbers.
func SMIC40() Tech {
	return Tech{
		Name: "SMIC 40nm",
		// 0.05mm² / (64*64 bits) = 12.2 µm² per matrix bit.
		MatrixCellUM2: 0.05 * 1e6 / (64 * 64),
		// 0.00079mm² / (56*(28+56+4) bits) = 0.16 µm² per TPBuf bit.
		TPBufCellUM2: 0.00079 * 1e6 / (56 * 88),
		// 0.05mm² is 3.5% of the reference cache => 1.4286mm².
		Cache32KB4WayMM2: 0.05 / 0.035,
		// One extra select stage level at IQ=64 costs 1.4%/log2(64)
		// ≈ 0.2333% per level.
		SelectPathFracPerLevel: 0.014 / 6,
	}
}

// PPNBits is the physical page number width the TPBuf stores; 40 physical
// address bits minus the 12-bit page offset.
const PPNBits = 28

// Area is one structure's modelled area.
type Area struct {
	Bits           int
	MM2            float64
	PercentOfCache float64 // relative to the 4-way 32KB reference macro
}

func (a Area) String() string {
	return fmt.Sprintf("%d bits, %.5f mm² (%.3f%% of a 4-way 32KB cache)",
		a.Bits, a.MM2, a.PercentOfCache)
}

// MatrixArea models the NxN security dependence matrix for an issue queue
// of n entries.
func (t Tech) MatrixArea(n int) Area {
	bits := n * n
	mm2 := float64(bits) * t.MatrixCellUM2 / 1e6
	return Area{Bits: bits, MM2: mm2, PercentOfCache: 100 * mm2 / t.Cache32KB4WayMM2}
}

// TPBufArea models a TPBuf with one entry per LSQ slot: PPN tag, an
// age-mask bit per entry, and the four status bits (S, W, V, A).
func (t Tech) TPBufArea(entries int) Area {
	bitsPerEntry := PPNBits + entries + 4
	bits := entries * bitsPerEntry
	mm2 := float64(bits) * t.TPBufCellUM2 / 1e6
	return Area{Bits: bits, MM2: mm2, PercentOfCache: 100 * mm2 / t.Cache32KB4WayMM2}
}

// CriticalPathIncrease estimates the relative lengthening of the issue
// select path from consulting the security matrix: the row-OR reduction
// adds log2(n) gate levels.
func (t Tech) CriticalPathIncrease(n int) float64 {
	levels := 0
	for v := 1; v < n; v <<= 1 {
		levels++
	}
	return float64(levels) * t.SelectPathFracPerLevel
}

// Report is the full §VI.E evaluation for one core configuration.
type Report struct {
	Core         string
	Tech         string
	IQEntries    int
	LSQEntries   int
	Matrix       Area
	TPBuf        Area
	CriticalPath float64 // fractional increase, e.g. 0.014
}

// Evaluate models the hardware cost of Conditional Speculation on cfg.
func Evaluate(t Tech, cfg config.Core) Report {
	lsq := cfg.LDQ + cfg.STQ
	return Report{
		Core:         cfg.Name,
		Tech:         t.Name,
		IQEntries:    cfg.IQ,
		LSQEntries:   lsq,
		Matrix:       t.MatrixArea(cfg.IQ),
		TPBuf:        t.TPBufArea(lsq),
		CriticalPath: t.CriticalPathIncrease(cfg.IQ),
	}
}

// String renders the report in the shape of §VI.E's prose.
func (r Report) String() string {
	return fmt.Sprintf(
		"core %s (%s)\n"+
			"  security dependence matrix (%d-entry IQ): %v\n"+
			"  critical path increase: %.1f%%\n"+
			"  TPBuf (%d LSQ entries): %v\n",
		r.Core, r.Tech, r.IQEntries, r.Matrix,
		100*r.CriticalPath, r.LSQEntries, r.TPBuf)
}
