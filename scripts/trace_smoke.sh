#!/bin/sh
# trace-smoke: end-to-end check of the observability artifacts.
#
# Runs the §12 deadlock reproducer (a seeded dropped-wakeup fault) with the
# microarchitectural flight recorder armed, asserts the run fails AND the
# dump it leaves behind parses, is cycle-ordered, and covers the final K
# cycles before the watchdog trip (scripts/tracecheck validates the ring
# invariants from the outside). Then it runs a small real suite with span
# tracing on and asserts the Chrome trace carries the suite > run > phase
# span tree. Artifacts land in $TRACE_DIR (default: a temp dir) so CI can
# upload them for loading in Perfetto/Konata.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT INT TERM
out=${TRACE_DIR:-$tmp}
mkdir -p "$out"

echo "trace-smoke: building binaries"
$GO build -o "$tmp/bin/" ./cmd/conspec-sim ./cmd/conspec-bench

# The flight window must exceed the watchdog's no-progress limit so the
# dump reaches back past the silent tail to the wedge itself.
echo "trace-smoke: deadlock reproducer with flight recorder armed"
if "$tmp/bin/conspec-sim" -bench lbm -mech tpbuf -warmup 2000 -measure 5000 \
    -inject dropped-wakeup -inject-at 2000 \
    -flight-recorder 32768 -flight-out "$out/deadlock.flight.json" \
    >"$tmp/sim.out" 2>"$tmp/sim.err"; then
    echo "trace-smoke: dropped-wakeup run succeeded, expected a watchdog trip" >&2
    cat "$tmp/sim.out" "$tmp/sim.err" >&2
    exit 1
fi
grep -q "deadlock" "$tmp/sim.err" || {
    echo "trace-smoke: run failed for a reason other than deadlock:" >&2
    cat "$tmp/sim.err" >&2
    exit 1
}
$GO run ./scripts/tracecheck -flight "$out/deadlock.flight.json"

echo "trace-smoke: span-traced suite run"
"$tmp/bin/conspec-bench" -suite fig5 -benches astar -warmup 2000 -measure 4000 \
    -trace "$out/fig5.trace.json" >/dev/null 2>"$tmp/bench.err" || {
    echo "trace-smoke: traced bench run failed:" >&2
    cat "$tmp/bench.err" >&2
    exit 1
}
$GO run ./scripts/tracecheck -chrome "$out/fig5.trace.json" \
    "suite:fig5" "run:astar" "warmup" "measure"

echo "trace-smoke: OK (artifacts in $out)"
