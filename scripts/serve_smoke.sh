#!/bin/sh
# serve-smoke: end-to-end check of the simulation service.
#
# Builds conspec-served and conspec-ctl, starts the daemon on a random port
# with a fresh persistent result store, submits a small real suite through
# conspec-ctl, and asserts it completes. Then it restarts the server
# (graceful SIGTERM drain) over the same store and resubmits the identical
# job: the rerun must execute ZERO simulations — every run served from the
# disk tier, verified through the server's own /metrics counters — and must
# produce the identical result document.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
srv_pid=
cleanup() {
    [ -n "$srv_pid" ] && kill "$srv_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "serve-smoke: building binaries"
$GO build -o "$tmp/bin/" ./cmd/conspec-served ./cmd/conspec-ctl

log="$tmp/served.log"
start_server() {
    : >"$log"
    "$tmp/bin/conspec-served" -addr 127.0.0.1:0 -cache-dir "$tmp/cache" -workers 1 >>"$log" 2>&1 &
    srv_pid=$!
    i=0
    while [ $i -lt 100 ]; do
        CONSPEC_SERVER=$(sed -n 's#.*listening on \(http://[0-9.:]*\).*#\1#p' "$log" | head -1)
        if [ -n "$CONSPEC_SERVER" ]; then
            export CONSPEC_SERVER
            return 0
        fi
        if ! kill -0 "$srv_pid" 2>/dev/null; then
            echo "serve-smoke: server exited during startup" >&2
            cat "$log" >&2
            exit 1
        fi
        i=$((i + 1))
        sleep 0.1
    done
    echo "serve-smoke: server never announced its address" >&2
    cat "$log" >&2
    exit 1
}

stop_server() {
    kill -TERM "$srv_pid"
    wait "$srv_pid" || true
    srv_pid=
}

submit() {
    "$tmp/bin/conspec-ctl" submit -suite lru -benches astar \
        -warmup 2000 -measure 8000 -watch 2>"$tmp/watch.log"
}

# The result documents embed the engine's cache and stall-skip accounting,
# which is the one part expected to differ between the cold and warm runs
# (a warm rerun executes zero simulations, so it skips zero cycles); strip
# those lines before comparing.
strip_engine_stats() {
    grep -v '"executed"\|"mem_hits"\|"disk_hits"\|"submitted"\|"skipped_cycles"\|"skip_spans"' "$1"
}

assert_metric() {
    # assert_metric <name> <expected-value>
    got=$("$tmp/bin/conspec-ctl" metrics | sed -n "s/^conspec_served_$1 //p")
    if [ "$got" != "$2" ]; then
        echo "serve-smoke: conspec_served_$1 = ${got:-<missing>}, want $2" >&2
        "$tmp/bin/conspec-ctl" metrics >&2
        exit 1
    fi
}

echo "serve-smoke: cold run (fresh store)"
start_server
submit >"$tmp/cold.json"
grep -q '"lru"' "$tmp/cold.json" || {
    echo "serve-smoke: cold result has no lru section" >&2
    cat "$tmp/cold.json" >&2
    exit 1
}
assert_metric jobs_done_total 1
cold_executed=$("$tmp/bin/conspec-ctl" metrics | sed -n 's/^conspec_served_runs_executed_total //p')
if [ "${cold_executed:-0}" -eq 0 ]; then
    echo "serve-smoke: cold run executed no simulations" >&2
    exit 1
fi

echo "serve-smoke: graceful restart (SIGTERM drain)"
stop_server

echo "serve-smoke: warm run (same store, restarted server)"
start_server
submit >"$tmp/warm.json"
# The acceptance criterion: after a restart the identical submission is
# served entirely from the disk store — zero simulations, all runs counted
# as disk hits by the server's own exposition.
assert_metric runs_executed_total 0
assert_metric cache_hits_disk_total "$cold_executed"
assert_metric jobs_done_total 1

if ! strip_engine_stats "$tmp/cold.json" >"$tmp/cold.stripped" ||
    ! strip_engine_stats "$tmp/warm.json" >"$tmp/warm.stripped" ||
    ! cmp -s "$tmp/cold.stripped" "$tmp/warm.stripped"; then
    echo "serve-smoke: warm result differs from cold result" >&2
    diff "$tmp/cold.stripped" "$tmp/warm.stripped" >&2 || true
    exit 1
fi

stop_server
echo "serve-smoke: OK (cold executed $cold_executed runs; warm rerun executed 0, all disk hits)"
