package mem

import (
	"conspec/internal/isa"
	"conspec/internal/obs"
)

// HierarchyConfig sizes every level of the memory system. All byte sizes
// and associativities must be powers of two times the line size.
type HierarchyConfig struct {
	LineBytes int

	L1ISize, L1IWays, L1ILat int
	L1DSize, L1DWays, L1DLat int
	L2Size, L2Ways, L2Lat    int
	L3Size, L3Ways, L3Lat    int
	MemLat                   int

	ITLBEntries, DTLBEntries int
	PageWalkLat              int

	// L1DUpdate is the replacement-metadata update policy for suspect
	// speculative L1D hits (§VII.A). Deeper levels always update.
	L1DUpdate UpdatePolicy

	// Replacement selects the cache victim policy for every level (LRU is
	// the paper's configuration; tree-PLRU and random are ablations).
	Replacement ReplacementKind

	// NextLinePrefetch enables a simple next-line prefetcher on L1D misses
	// (ablation; the paper's gem5 configuration has no prefetcher). The
	// prefetched line fills the whole hierarchy. Note the security
	// interplay this exposes: only accesses the defense ALLOWS reach the
	// miss path, so blocked suspect misses never trigger prefetches — the
	// prefetcher cannot be used to resurrect the blocked refill.
	NextLinePrefetch bool
}

// Hierarchy is the full memory system: four cache levels, two TLBs, and the
// architectural backing store.
type Hierarchy struct {
	L1I, L1D, L2, L3 *Cache
	ITLB, DTLB       *TLB
	MemLat           int
	Backing          *isa.FlatMem
	cfg              HierarchyConfig

	// Prefetches counts next-line prefetch fills (0 unless enabled).
	Prefetches uint64

	// DataLat, when non-nil, records the total latency of every refilling
	// data access (the obs layer attaches it; Observe on nil is a no-op).
	DataLat *obs.Histogram

	// peers are other cores' hierarchies sharing this L2/L3: stores and
	// flushes invalidate their private L1 lines (write-invalidate
	// coherence at line granularity).
	peers []*Hierarchy
}

// NewHierarchy builds a hierarchy over backing according to cfg.
func NewHierarchy(cfg HierarchyConfig, backing *isa.FlatMem) *Hierarchy {
	return &Hierarchy{
		L1I:     NewCache("L1I", cfg.L1ISize, cfg.L1IWays, cfg.LineBytes, cfg.L1ILat).SetReplacement(cfg.Replacement),
		L1D:     NewCache("L1D", cfg.L1DSize, cfg.L1DWays, cfg.LineBytes, cfg.L1DLat).SetReplacement(cfg.Replacement),
		L2:      NewCache("L2", cfg.L2Size, cfg.L2Ways, cfg.LineBytes, cfg.L2Lat).SetReplacement(cfg.Replacement),
		L3:      NewCache("L3", cfg.L3Size, cfg.L3Ways, cfg.LineBytes, cfg.L3Lat).SetReplacement(cfg.Replacement),
		ITLB:    NewTLB("ITLB", cfg.ITLBEntries, cfg.PageWalkLat),
		DTLB:    NewTLB("DTLB", cfg.DTLBEntries, cfg.PageWalkLat),
		MemLat:  cfg.MemLat,
		Backing: backing,
		cfg:     cfg,
	}
}

// NewSharedHierarchy builds a second core's hierarchy that shares the
// given hierarchy's L2, L3 and backing store but has private L1s and TLBs.
// The two are registered as coherence peers of each other.
func NewSharedHierarchy(cfg HierarchyConfig, with *Hierarchy) *Hierarchy {
	h := &Hierarchy{
		L1I:     NewCache("L1I", cfg.L1ISize, cfg.L1IWays, cfg.LineBytes, cfg.L1ILat).SetReplacement(cfg.Replacement),
		L1D:     NewCache("L1D", cfg.L1DSize, cfg.L1DWays, cfg.LineBytes, cfg.L1DLat).SetReplacement(cfg.Replacement),
		L2:      with.L2,
		L3:      with.L3,
		ITLB:    NewTLB("ITLB", cfg.ITLBEntries, cfg.PageWalkLat),
		DTLB:    NewTLB("DTLB", cfg.DTLBEntries, cfg.PageWalkLat),
		MemLat:  cfg.MemLat,
		Backing: with.Backing,
		cfg:     cfg,
	}
	with.peers = append(with.peers, h)
	h.peers = append(h.peers, with)
	return h
}

// StoreCommitted applies write-invalidate coherence for a committed store:
// every peer core's private L1 copy of the line is invalidated, so their
// next load observes the new value's timing (a miss to the shared levels).
func (h *Hierarchy) StoreCommitted(addr uint64) {
	for _, p := range h.peers {
		p.L1D.Flush(addr)
	}
}

// Config returns the configuration the hierarchy was built with.
func (h *Hierarchy) Config() HierarchyConfig { return h.cfg }

// AccessResult describes one data-side access.
type AccessResult struct {
	Latency int   // total cycles until data available
	Level   Level // where the access hit
	PPN     uint64
	// PendingTouch is set under the delayed-update policy when the L1D hit's
	// LRU refresh was deferred; the pipeline applies it via TouchL1D when the
	// access becomes non-speculative.
	PendingTouch bool
}

// AccessData performs a full data access: DTLB translation, L1D lookup, and
// on miss a walk down L2/L3/memory with refills into every level above the
// hit. suspect marks the access as carrying the paper's suspect-speculation
// flag; it selects the L1D replacement-update behaviour per the configured
// policy. Callers that must NOT refill on a miss (blocked suspect loads)
// should use ProbeL1D/AccessL1DHitOnly instead — a blocked miss never
// reaches this method.
func (h *Hierarchy) AccessData(addr uint64, suspect bool) AccessResult {
	ppn, tlbLat := h.DTLB.Translate(addr)
	res := AccessResult{PPN: ppn, Latency: tlbLat}

	touch := true
	if suspect {
		switch h.cfg.L1DUpdate {
		case UpdateNoSpec:
			touch = false
		case UpdateDelayed:
			touch = false
			res.PendingTouch = true
		}
	}
	if h.L1D.Access(addr, touch) {
		res.Latency += h.L1D.HitLat
		res.Level = LevelL1
		h.DataLat.Observe(uint64(res.Latency))
		return res
	}
	res.PendingTouch = false // refill below installs MRU anyway
	if h.L2.Access(addr, true) {
		res.Latency += h.L2.HitLat
		res.Level = LevelL2
	} else if h.L3.Access(addr, true) {
		res.Latency += h.L3.HitLat
		res.Level = LevelL3
	} else {
		res.Latency += h.MemLat
		res.Level = LevelMem
		h.L3.Refill(addr)
	}
	// Fill path: mem -> L3 -> L2 -> L1 (inclusive hierarchy).
	if res.Level == LevelL3 || res.Level == LevelMem {
		h.L2.Refill(addr)
	}
	h.L1D.Refill(addr)
	if h.cfg.NextLinePrefetch {
		h.prefetch(addr + uint64(h.cfg.LineBytes))
	}
	h.DataLat.Observe(uint64(res.Latency))
	return res
}

// prefetch installs addr's line at every data level if absent (no latency
// is charged: the fill happens off the critical path).
func (h *Hierarchy) prefetch(addr uint64) {
	if h.L1D.Probe(addr) {
		return
	}
	h.Prefetches++
	h.L3.Refill(addr)
	h.L2.Refill(addr)
	h.L1D.Refill(addr)
}

// AccessL1DHitOnly performs an L1D lookup that is forbidden from refilling:
// the cache-hit filter's probe. On a hit it behaves exactly like AccessData
// (latency, update policy); on a miss it returns ok=false having changed no
// cache content — the miss request is discarded, as §V.C requires.
func (h *Hierarchy) AccessL1DHitOnly(addr uint64, suspect bool) (AccessResult, bool) {
	ppn, tlbLat := h.DTLB.Translate(addr)
	res := AccessResult{PPN: ppn, Latency: tlbLat}

	touch := true
	if suspect {
		switch h.cfg.L1DUpdate {
		case UpdateNoSpec:
			touch = false
		case UpdateDelayed:
			touch = false
			res.PendingTouch = true
		}
	}
	if h.L1D.Access(addr, touch) {
		res.Latency += h.L1D.HitLat
		res.Level = LevelL1
		return res, true
	}
	return res, false
}

// AccessDataNoRefill performs a data access that is forbidden from
// refilling ANY level: the InvisiSpec-style invisible load. Latency and hit
// level reflect the current cache state; tags, LRU and content stay
// untouched below the DTLB (InvisiSpec hides cache state, not translations).
func (h *Hierarchy) AccessDataNoRefill(addr uint64) AccessResult {
	ppn, tlbLat := h.DTLB.Translate(addr)
	res := AccessResult{PPN: ppn, Latency: tlbLat}
	switch {
	case h.L1D.Probe(addr):
		res.Latency += h.L1D.HitLat
		res.Level = LevelL1
	case h.L2.Probe(addr):
		res.Latency += h.L2.HitLat
		res.Level = LevelL2
	case h.L3.Probe(addr):
		res.Latency += h.L3.HitLat
		res.Level = LevelL3
	default:
		res.Latency += h.MemLat
		res.Level = LevelMem
	}
	return res
}

// ProbeL1D reports L1D residency with no side effects at all.
func (h *Hierarchy) ProbeL1D(addr uint64) bool { return h.L1D.Probe(addr) }

// TouchL1D applies a deferred LRU refresh (delayed-update policy).
func (h *Hierarchy) TouchL1D(addr uint64) { h.L1D.Touch(addr) }

// AccessInst performs an instruction fetch lookup: ITLB plus L1I, refilling
// from L2/L3/memory on miss. Fetch is never blocked by the data-side
// defense; the §VII.B ICache-hit filter makes its own decision with
// ProbeL1I before calling this.
func (h *Hierarchy) AccessInst(addr uint64) AccessResult {
	_, tlbLat := h.ITLB.Translate(addr)
	res := AccessResult{Latency: tlbLat}
	if h.L1I.Access(addr, true) {
		res.Latency += h.L1I.HitLat
		res.Level = LevelL1
		return res
	}
	if h.L2.Access(addr, true) {
		res.Latency += h.L2.HitLat
		res.Level = LevelL2
	} else if h.L3.Access(addr, true) {
		res.Latency += h.L3.HitLat
		res.Level = LevelL3
	} else {
		res.Latency += h.MemLat
		res.Level = LevelMem
		h.L3.Refill(addr)
	}
	if res.Level == LevelL3 || res.Level == LevelMem {
		h.L2.Refill(addr)
	}
	h.L1I.Refill(addr)
	return res
}

// ProbeL1I reports L1I residency with no side effects.
func (h *Hierarchy) ProbeL1I(addr uint64) bool { return h.L1I.Probe(addr) }

// Flush removes addr's line from every cache level (CLFLUSH semantics).
// CLFLUSH is architecturally global: peer cores' private L1s are flushed
// too (shared levels are flushed once, through this hierarchy's pointers).
func (h *Hierarchy) Flush(addr uint64) {
	h.L1I.Flush(addr)
	h.L1D.Flush(addr)
	h.L2.Flush(addr)
	h.L3.Flush(addr)
	for _, p := range h.peers {
		p.L1I.Flush(addr)
		p.L1D.Flush(addr)
	}
}

// InvalidateAll empties all caches and TLBs.
func (h *Hierarchy) InvalidateAll() {
	h.L1I.InvalidateAll()
	h.L1D.InvalidateAll()
	h.L2.InvalidateAll()
	h.L3.InvalidateAll()
	h.ITLB.InvalidateAll()
	h.DTLB.InvalidateAll()
}

// ReadData reads architectural data (size bytes at addr) from backing store.
func (h *Hierarchy) ReadData(addr uint64, size int) uint64 {
	return h.Backing.Read(addr, size)
}

// WriteData writes architectural data to the backing store.
func (h *Hierarchy) WriteData(addr uint64, size int, val uint64) {
	h.Backing.Write(addr, size, val)
}
