package pipeline

import "conspec/internal/core"

// Fault-injection primitives: each perturbs exactly one microarchitectural
// fact the security mechanism depends on, picking its victim from the
// machine's current state with the caller-supplied selector n (so a seeded
// caller is deterministic). Every primitive returns whether it applied — a
// machine with no eligible victim this cycle reports false and the caller
// retries on a later cycle.
//
// Candidates are restricted to states where the corruption is *observable*:
// e.g. clearing the V bit of a load that never recorded its page would be
// indistinguishable from the load simply not having issued yet, so the V
// primitive only targets entries where the flip breaks an audited
// implication. That restriction is what lets the corpus test demand 100%
// detection — an injected-but-invisible fault would be a vacuous test.
//
// The primitives live in this package because they reach into private
// state; policy (which class, when, how often, seeding) lives in
// internal/faultinject.

// SetFaultHook installs fn to run once per cycle at the end of step(),
// after the stages and the secmatrix clock edge and immediately before the
// watchdog/self-check epilogue — so a same-cycle audit sweep sees the
// corruption before any stage logic can mask it. nil removes the hook; with
// no hook installed the cycle loop pays one nil check.
func (c *CPU) SetFaultHook(fn func(*CPU)) { c.faultHook = fn }

func (c *CPU) noteFault() {
	c.stats.Hardening.FaultsInjected++
	c.m.faultsInjected.Inc()
}

// InjectSecMatrixBitFlip inverts one bit in the security dependence matrix
// row of a live memory instruction. Detected by the secmatrix row audit
// (the row no longer equals the recomputed set of live older producers).
func (c *CPU) InjectSecMatrixBitFlip(n int) bool {
	if c.secmat == nil || n < 0 {
		return false
	}
	rows := 0
	for _, u := range c.iq {
		if u != nil && u.class() == core.ClassMem {
			rows++
		}
	}
	if rows == 0 {
		return false
	}
	pick := n % rows
	for x, u := range c.iq {
		if u == nil || u.class() != core.ClassMem {
			continue
		}
		if pick > 0 {
			pick--
			continue
		}
		y := (n / rows) % c.secmat.Size()
		c.secmat.Flip(x, y)
		c.noteFault()
		return true
	}
	return false
}

// InjectSuspectClear clears suspect (S) bits in the TPBuf — the exact
// corruption that would let an S-Pattern assemble undetected. n >= 0 clears
// the n-th currently-set bit (one-shot; detected by the S-vs-uop audit);
// n < 0 clears every set bit, the persistent mode whose effect is only
// visible as an end-to-end secret leak in the attack harness.
func (c *CPU) InjectSuspectClear(n int) bool {
	if c.tpbuf == nil {
		return false
	}
	set := 0
	for i := 0; i < c.tpbuf.Size(); i++ {
		if _, _, _, s, _ := c.tpbuf.Entry(i); s {
			set++
		}
	}
	if set == 0 {
		return false
	}
	if n < 0 {
		for i := 0; i < c.tpbuf.Size(); i++ {
			if _, _, _, s, _ := c.tpbuf.Entry(i); s {
				c.tpbuf.CorruptBit(i, 'S')
				c.noteFault()
			}
		}
		return true
	}
	pick := n % set
	for i := 0; i < c.tpbuf.Size(); i++ {
		if _, _, _, s, _ := c.tpbuf.Entry(i); !s {
			continue
		}
		if pick > 0 {
			pick--
			continue
		}
		c.tpbuf.CorruptBit(i, 'S')
		c.noteFault()
		return true
	}
	return false
}

// InjectTPBufBit inverts one TPBuf status bit ('V', 'W', 'S') or the low
// page-tag bit ('P') on an entry where the flip is observable:
//
//	V: entries that are valid-and-issued (flip breaks issued ⇒ V) or
//	   invalid (flip breaks V ⇒ address-resolved / page-tag recompute);
//	W: any allocated entry (W is pinned to the occupant's completion);
//	S: issued occupants (S is pinned to the occupant's suspect flag);
//	P: valid entries (the tag is a pure function of the address).
func (c *CPU) InjectTPBufBit(n int, field byte) bool {
	if c.tpbuf == nil || n < 0 {
		return false
	}
	eligible := func(i int) bool {
		u := c.tpOccupant(i)
		if u == nil {
			return false
		}
		a, v, _, _, _ := c.tpbuf.Entry(i)
		if !a {
			return false
		}
		switch field {
		case 'V':
			return (v && u.issued) || !v
		case 'W':
			return true
		case 'S':
			return u.issued && !(i < c.cfg.LDQ && c.def.InvisibleLoads)
		case 'P':
			return v
		default:
			return false
		}
	}
	count := 0
	for i := 0; i < c.tpbuf.Size(); i++ {
		if eligible(i) {
			count++
		}
	}
	if count == 0 {
		return false
	}
	pick := n % count
	for i := 0; i < c.tpbuf.Size(); i++ {
		if !eligible(i) {
			continue
		}
		if pick > 0 {
			pick--
			continue
		}
		c.tpbuf.CorruptBit(i, field)
		c.noteFault()
		return true
	}
	return false
}

// InjectDropWakeup removes one pending wakeup registration from a physical
// register's waiter list: the consumer's waitCnt never reaches zero, so it
// sits in the issue queue forever. Detected by the ready-list audit
// (data-ready but absent) once the producer writes back, or — with
// self-checking off — by the forward-progress watchdog.
func (c *CPU) InjectDropWakeup(n int) bool {
	if n < 0 {
		return false
	}
	count := 0
	for p := range c.regWaiters {
		for _, u := range c.regWaiters[p] {
			if u != nil && (u.wait1 == p || u.wait2 == p) {
				count++
			}
		}
	}
	if count == 0 {
		return false
	}
	pick := n % count
	for p := range c.regWaiters {
		ws := c.regWaiters[p]
		for k, u := range ws {
			if u == nil || (u.wait1 != p && u.wait2 != p) {
				continue
			}
			if pick > 0 {
				pick--
				continue
			}
			copy(ws[k:], ws[k+1:])
			ws[len(ws)-1] = nil
			c.regWaiters[p] = ws[:len(ws)-1]
			c.noteFault()
			return true
		}
	}
	return false
}

// InjectLRUTouch applies a deferred LRU refresh early: loads that owe their
// replacement-state update at commit (§VII.A delayed update) get it now,
// while still speculative — re-opening the replacement-state side channel
// the delayed policy closes. n >= 0 touches the n-th owing load; n < 0
// touches all of them (persistent mode; only the attack harness's leak
// check can see it, since no invariant ties LRU age to the pipeline).
func (c *CPU) InjectLRUTouch(n int) bool {
	count := 0
	for _, u := range c.ldq {
		if u != nil && u.pendingTouch {
			count++
		}
	}
	if count == 0 {
		return false
	}
	if n < 0 {
		for _, u := range c.ldq {
			if u != nil && u.pendingTouch {
				c.hier.TouchL1D(u.memAddr)
				u.pendingTouch = false
				c.noteFault()
			}
		}
		return true
	}
	pick := n % count
	for _, u := range c.ldq {
		if u == nil || !u.pendingTouch {
			continue
		}
		if pick > 0 {
			pick--
			continue
		}
		c.hier.TouchL1D(u.memAddr)
		u.pendingTouch = false
		c.noteFault()
		return true
	}
	return false
}
