// Quickstart: assemble a tiny program with the text assembler, run it on
// the out-of-order core under the unprotected Origin configuration and
// under the full Conditional Speculation mechanism, and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"conspec/internal/asm"
	"conspec/internal/config"
	"conspec/internal/core"
	"conspec/internal/isa"
	"conspec/internal/pipeline"
)

// The guest program: sum a small array, with one cold pointer dereference
// per element to give the memory system something to do.
const src = `
	li   s0, 0          ; sum
	li   s1, 0          ; i
	li   s2, 512        ; n
	li   a0, 0x100000   ; array base
loop:
	shli t0, s1, 3
	add  t0, a0, t0
	ld   t1, 0(t0)      ; array[i]
	add  s0, s0, t1
	addi s1, s1, 1
	blt  s1, s2, loop
	halt
`

func main() {
	b, err := asm.ParseText(src)
	if err != nil {
		log.Fatal(err)
	}
	prog, err := b.Assemble(0x1000)
	if err != nil {
		log.Fatal(err)
	}

	for _, mech := range []core.Mechanism{core.Origin, core.CacheHitTPBuf} {
		backing := isa.NewFlatMem()
		prog.Load(backing)
		for i := 0; i < 512; i++ {
			backing.Write(0x100000+uint64(i)*8, 8, uint64(i))
		}

		cpu := pipeline.NewWithMemory(config.PaperCore(),
			pipeline.SecurityConfig{Mechanism: mech}, backing)
		cpu.SetPC(prog.Base)
		res := cpu.Run(1_000_000)

		fmt.Printf("== %v ==\n", mech)
		fmt.Printf("  sum        = %d (expect %d)\n", cpu.ArchReg(int(asm.S0)), 511*512/2)
		fmt.Printf("  cycles     = %d (IPC %.2f)\n", res.Cycles, res.IPC())
		fmt.Printf("  L1D hits   = %.1f%%\n", 100*res.L1D.HitRate())
		if mech.TracksDependence() {
			fmt.Printf("  suspect    = %d issued, %d blocked events\n",
				res.Filter.SuspectIssued, res.Filter.BlockedEvents)
		}
		fmt.Println()
	}
}
