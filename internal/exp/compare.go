package exp

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"conspec/internal/core"
	"conspec/internal/pipeline"
	"conspec/internal/workload"
)

// CompareRow holds one benchmark's overheads for the defense comparison.
type CompareRow struct {
	Benchmark string
	TPBuf     float64 // Cache-hit + TPBuf (the paper's mechanism)
	Invisi    float64 // InvisiSpec-like comparator
	SWFence   float64 // LFENCE-style software mitigation
}

// CompareResult is the head-to-head defense comparison: the paper's full
// mechanism, the InvisiSpec-like related-work comparator, and the software
// fence mitigation (§VIII), all against the same Origin runs.
type CompareResult struct {
	Rows []CompareRow
	Avg  CompareRow
}

// Compare measures the three defenses across the benchmarks. The Origin
// and CacheHit+TPBuf runs share cache keys with the fig5 evaluation; the
// fence-recompiled kernel is a distinct workload (the full profile, not
// just its name, feeds the cache key) and is simulated separately.
func (r *Runner) Compare(ctx context.Context, spec RunSpec, names []string) (*CompareResult, error) {
	profiles, err := resolveProfiles(names)
	if err != nil {
		return nil, err
	}
	out := &CompareResult{}
	var mu sync.Mutex
	rows := make(map[string]CompareRow)
	n := float64(len(profiles))
	err = r.eachProfile(ctx, profiles, func(p workload.Profile) error {
		name := p.Name
		s := spec
		s.Sec = pipeline.SecurityConfig{Mechanism: core.Origin}
		origin, err := r.run(ctx, SuiteCompare, p, s)
		if err != nil {
			return suiteErr(ctx, err)
		}
		s.Sec = pipeline.SecurityConfig{Mechanism: core.CacheHitTPBuf}
		tpRes, err := r.run(ctx, SuiteCompare, p, s)
		if err != nil {
			return suiteErr(ctx, err)
		}
		tp := Overhead(origin, tpRes)
		s.Sec = pipeline.SecurityConfig{Mechanism: core.InvisiSpec}
		invRes, err := r.run(ctx, SuiteCompare, p, s)
		if err != nil {
			return suiteErr(ctx, err)
		}
		inv := Overhead(origin, invRes)

		// Software mitigation: the same kernel recompiled with a fence
		// after every conditional branch, run on the UNPROTECTED core.
		pf := p
		pf.FenceAfterBranches = true
		s.Sec = pipeline.SecurityConfig{Mechanism: core.Origin}
		swRes, err := r.run(ctx, SuiteCompare, pf, s)
		if err != nil {
			return suiteErr(ctx, err)
		}
		sw := Overhead(origin, swRes)

		mu.Lock()
		rows[name] = CompareRow{Benchmark: name, TPBuf: tp, Invisi: inv, SWFence: sw}
		out.Avg.TPBuf += tp / n
		out.Avg.Invisi += inv / n
		out.Avg.SWFence += sw / n
		mu.Unlock()
		r.emit(ProgressEvent{Suite: SuiteCompare, Benchmark: name, Phase: PhaseBenchDone,
			Line: fmt.Sprintf("%-12s tpbuf %+6.1f%%  invisispec %+6.1f%%  sw-fence %+6.1f%%",
				name, 100*tp, 100*inv, 100*sw)})
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, p := range profiles {
		if row, ok := rows[p.Name]; ok {
			out.Rows = append(out.Rows, row)
		}
	}
	out.Avg.Benchmark = "Average"
	return out, nil
}

// CompareText renders the comparison table.
func CompareText(r *CompareResult) string {
	var sb strings.Builder
	tw := newTable(&sb)
	tw.row("Benchmark", "CH+TPBuf", "InvisiSpec", "SW fence")
	tw.sep()
	pct := func(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
	for _, row := range r.Rows {
		tw.row(row.Benchmark, pct(row.TPBuf), pct(row.Invisi), pct(row.SWFence))
	}
	tw.sep()
	tw.row("Average", pct(r.Avg.TPBuf), pct(r.Avg.Invisi), pct(r.Avg.SWFence))
	tw.flush()
	sb.WriteString("\nCH+TPBuf and InvisiSpec are hardware mechanisms (InvisiSpec also\n")
	sb.WriteString("defends the non-shared-memory channels TPBuf misses, at the cost\n")
	sb.WriteString("shown). SW fence is the LFENCE-style recompilation baseline.\n")
	return sb.String()
}
