// Command conspec-benchstat turns `go test -bench -benchmem` output into
// committed JSON snapshots and diffs two snapshots, so benchmark
// regressions show up in review instead of months later.
//
// Snapshot mode parses benchmark result lines from stdin and writes one
// JSON document (optionally tagged with the git sha it was measured at):
//
//	go test -run '^$' -bench '^BenchmarkFig5$' -benchmem . |
//	    conspec-benchstat -snapshot -sha $(git rev-parse --short HEAD) -out BENCH_abc1234.json
//
// Compare mode reads two snapshot files and prints a per-benchmark,
// per-metric delta table (negative ns/op and allocs/op deltas are
// improvements):
//
//	conspec-benchstat -compare BENCH_old.json BENCH_new.json
//
// With -fail-on-regress N, compare mode becomes a gate: it exits 1 when
// any benchmark matched by -gate regresses its ns/op by more than N
// percent. `make bench-compare` runs the gate at 5% over the tracked
// perf-critical set, so a slowdown fails the build instead of landing
// silently.
//
// The parser keeps every metric a benchmark reports — the standard
// ns/op, B/op, allocs/op triple as well as custom b.ReportMetric units
// like baseline-ovh-% — and derives ops/sec from ns/op so throughput
// deltas read naturally. Metrics present on only one side of a compare
// are listed but not diffed.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"

	"conspec/internal/buildinfo"
)

// Benchmark is one parsed result line: the name with the -<procs>
// suffix stripped, the iteration count, and every reported metric.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Snapshot is the committed document: where it was measured and what. SHA
// is the caller-supplied measurement commit; Build records the benchstat
// binary's own embedded build identity (empty fields when built without a
// VCS stamp).
type Snapshot struct {
	SHA        string         `json:"sha,omitempty"`
	GoVersion  string         `json:"go_version"`
	Build      buildinfo.Info `json:"build,omitempty"`
	Benchmarks []Benchmark    `json:"benchmarks"`
}

func main() {
	var (
		snapshot = flag.Bool("snapshot", false, "parse `go test -bench` output on stdin into a JSON snapshot")
		compare  = flag.Bool("compare", false, "diff two snapshot files: -compare old.json new.json")
		sha      = flag.String("sha", "", "git sha to record in the snapshot")
		out      = flag.String("out", "", "snapshot output file (default stdout)")
		failPct  = flag.Float64("fail-on-regress", 0, "exit 1 when a gated benchmark's ns/op regresses by more than this percentage (0 disables the gate)")
		gatePat  = flag.String("gate", "^(BenchmarkFig5|BenchmarkSecMatrix)", "regexp selecting the benchmarks the -fail-on-regress gate covers")
		version  = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Short("conspec-benchstat"))
		return
	}

	switch {
	case *snapshot:
		if err := runSnapshot(*sha, *out); err != nil {
			fatal(err)
		}
	case *compare:
		if flag.NArg() != 2 {
			fatal(fmt.Errorf("-compare needs exactly two snapshot files, got %d", flag.NArg()))
		}
		if err := runCompare(flag.Arg(0), flag.Arg(1), *failPct, *gatePat); err != nil {
			fatal(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "conspec-benchstat:", err)
	os.Exit(1)
}

// parseBench parses one benchmark result line, e.g.
//
//	BenchmarkFig5-8  3  4553412271 ns/op  12.34 baseline-ovh-%  1150589658 B/op  5643406 allocs/op
//
// Lines that don't start with "Benchmark" or don't follow the
// name/iterations/value-unit-pair shape return ok=false.
func parseBench(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 || !strings.HasPrefix(f[0], "Benchmark") {
		return Benchmark{}, false
	}
	name := f[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[f[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	if ns, ok := b.Metrics["ns/op"]; ok && ns > 0 {
		b.Metrics["ops/sec"] = 1e9 / ns
	}
	return b, true
}

func runSnapshot(sha, out string) error {
	snap := Snapshot{SHA: sha, GoVersion: runtime.Version(), Build: buildinfo.Get()}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		if b, ok := parseBench(strings.TrimSpace(sc.Text())); ok {
			snap.Benchmarks = append(snap.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(snap.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines found on stdin")
	}
	sort.Slice(snap.Benchmarks, func(i, j int) bool {
		return snap.Benchmarks[i].Name < snap.Benchmarks[j].Name
	})
	enc, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if out == "" {
		_, err = os.Stdout.Write(enc)
		return err
	}
	return os.WriteFile(out, enc, 0o644)
}

func readSnapshot(path string) (Snapshot, error) {
	var s Snapshot
	data, err := os.ReadFile(path)
	if err != nil {
		return s, err
	}
	if err := json.Unmarshal(data, &s); err != nil {
		return s, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// lowerIsBetter marks metrics where a negative delta is an improvement;
// everything else (ops/sec, hit rates) is treated as higher-is-better,
// and pure observations (overhead percentages) just get their sign.
func lowerIsBetter(unit string) bool {
	switch unit {
	case "ns/op", "B/op", "allocs/op":
		return true
	}
	return false
}

func runCompare(oldPath, newPath string, failPct float64, gatePat string) error {
	oldS, err := readSnapshot(oldPath)
	if err != nil {
		return err
	}
	newS, err := readSnapshot(newPath)
	if err != nil {
		return err
	}
	var gate *regexp.Regexp
	if failPct > 0 {
		gate, err = regexp.Compile(gatePat)
		if err != nil {
			return fmt.Errorf("-gate: %w", err)
		}
	}
	oldBy := map[string]Benchmark{}
	for _, b := range oldS.Benchmarks {
		oldBy[b.Name] = b
	}
	fmt.Printf("old: %s (%s)\nnew: %s (%s)\n\n",
		oldPath, orDash(oldS.SHA), newPath, orDash(newS.SHA))

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	var regressions []string
	for _, nb := range newS.Benchmarks {
		ob, ok := oldBy[nb.Name]
		fmt.Fprintf(w, "%s\n", nb.Name)
		if !ok {
			fmt.Fprintf(w, "  (new benchmark, no old data)\n")
			continue
		}
		delete(oldBy, nb.Name)
		if gate != nil && gate.MatchString(nb.Name) {
			ov, nv := ob.Metrics["ns/op"], nb.Metrics["ns/op"]
			if ov > 0 && nv > 0 {
				if pct := 100 * (nv - ov) / ov; pct > failPct {
					regressions = append(regressions,
						fmt.Sprintf("%s ns/op %+.1f%% (limit +%.1f%%)", nb.Name, pct, failPct))
				}
			}
		}
		units := make([]string, 0, len(nb.Metrics))
		for u := range nb.Metrics {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, u := range units {
			nv := nb.Metrics[u]
			ov, has := ob.Metrics[u]
			if !has {
				fmt.Fprintf(w, "  %-18s %14s -> %14s\n", u, "-", fmtVal(nv))
				continue
			}
			fmt.Fprintf(w, "  %-18s %14s -> %14s  %s\n", u, fmtVal(ov), fmtVal(nv), describeDelta(u, ov, nv))
		}
		for u, ov := range ob.Metrics {
			if _, has := nb.Metrics[u]; !has {
				fmt.Fprintf(w, "  %-18s %14s -> %14s\n", u, fmtVal(ov), "-")
			}
		}
	}
	for _, ob := range oldS.Benchmarks {
		if _, gone := oldBy[ob.Name]; gone {
			fmt.Fprintf(w, "%s\n  (removed, no new data)\n", ob.Name)
		}
	}
	if len(regressions) > 0 {
		fmt.Fprintf(w, "\nGATE FAILED (%s):\n", gatePat)
		for _, r := range regressions {
			fmt.Fprintf(w, "  %s\n", r)
		}
		w.Flush()
		return fmt.Errorf("%d gated benchmark(s) regressed ns/op beyond %.1f%%",
			len(regressions), failPct)
	}
	return nil
}

func describeDelta(unit string, old, new float64) string {
	if old == new {
		return "(=)"
	}
	if old == 0 {
		return "(from zero)"
	}
	pct := 100 * (new - old) / old
	s := fmt.Sprintf("%+.1f%%", pct)
	if lowerIsBetter(unit) {
		if new == 0 {
			return s + " (better, eliminated)"
		}
		if new < old {
			return s + " (better, " + fmt.Sprintf("%.2fx", old/new) + ")"
		}
		return s + " (worse)"
	}
	if unit == "ops/sec" {
		if new > old {
			return s + " (better, " + fmt.Sprintf("%.2fx", new/old) + ")"
		}
		return s + " (worse)"
	}
	return s
}

func fmtVal(v float64) string {
	if v == float64(int64(v)) && v < 1e15 && v > -1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}
