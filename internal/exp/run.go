// Package exp contains the experiment drivers that regenerate every table
// and figure of the paper's evaluation: Figure 5 (normalized performance),
// Table IV (security), Table V (filter analysis), Table VI (core
// sensitivity), the §VI.C(1) matrix-scope decomposition, the §VI.E hardware
// overhead model, the §VII.A LRU policies and the §VII.B ICache filter.
package exp

import (
	"context"

	"conspec/internal/config"
	"conspec/internal/isa"
	"conspec/internal/mem"
	"conspec/internal/pipeline"
	"conspec/internal/workload"
)

// RunSpec parameterizes one measurement run, mirroring the paper's
// methodology of a warmup phase followed by cycle-accurate measurement.
type RunSpec struct {
	Core      config.Core
	Sec       pipeline.SecurityConfig
	L1DUpdate mem.UpdatePolicy
	// Warmup and Measure are committed-instruction budgets.
	Warmup  uint64
	Measure uint64
	// MaxCycles bounds each phase defensively (0 = a generous default).
	MaxCycles uint64
	// MetricsInterval, when non-zero, attaches an obs metric registry for
	// the measured phase and samples it every MetricsInterval cycles; the
	// returned Result carries the time series. Zero (the default) attaches
	// nothing: the simulation is byte-identical with and without the obs
	// subsystem compiled in.
	MetricsInterval uint64
	// SelfCheck, when non-zero, audits the machine's pipeline and security
	// invariants every SelfCheck cycles (both phases); a violation ends the
	// run with OutcomeAuditFailed. Zero (the default) disables sweeps.
	SelfCheck uint64
	// FlightWindow, when non-zero, arms the pipeline flight recorder with a
	// dump window of that many cycles (default ring capacity): a run that
	// trips the watchdog or fails an audit comes back with Result.Flight
	// holding its last FlightWindow cycles of microarchitectural events.
	// Recording is observation only — results are identical with and without
	// it — so the field deliberately does not participate in run keys
	// (keyOf): armed and unarmed submissions share cache entries.
	FlightWindow uint64
}

// DefaultSpec returns the budget used by the standard experiment suites.
// The paper warms for 1B instructions and measures 1B on gem5; the same
// shape at laptop scale is tens of thousands of warmup instructions and a
// few hundred thousand measured.
func DefaultSpec() RunSpec {
	return RunSpec{
		Core:    config.PaperCore(),
		Warmup:  20_000,
		Measure: 120_000,
	}
}

// RunWorkload builds a fresh machine, loads w, warms up, resets statistics
// and measures. The returned Result covers only the measured phase.
func RunWorkload(w *workload.Workload, spec RunSpec) pipeline.Result {
	return RunWorkloadWith(w, spec, nil)
}

// RunWorkloadWith is RunWorkload with an observability hook: setup, when
// non-nil, runs on the freshly built machine before warmup — the place to
// attach event sinks (tracers, O3PipeView writers), which then see the whole
// run. When spec.MetricsInterval is non-zero a metric registry is attached
// after warmup, so its histograms and time series cover exactly the measured
// phase, and the returned Result carries the series.
func RunWorkloadWith(w *workload.Workload, spec RunSpec, setup func(*pipeline.CPU)) pipeline.Result {
	res, _ := RunWorkloadCtx(context.Background(), w, spec, setup)
	return res
}

// runPhaseChunk bounds how many cycles runPhase simulates between
// cancellation checks. It is deliberately larger than the default watchdog
// window, so a deadlocked machine trips the watchdog inside one chunk
// rather than having its no-progress window reset at a chunk boundary.
const runPhaseChunk = 1 << 16

// runPhase drives one committed-instruction phase in bounded chunks so the
// caller can honor ctx between chunks without putting a check on the cycle
// loop. The committed-instruction target and the total cycle budget are
// fixed up front, so the machine evolves — and the returned Result reads —
// exactly as a single RunFor(insts, maxCycles) call.
func runPhase(ctx context.Context, cpu *pipeline.CPU, insts, maxCycles uint64) (pipeline.Result, error) {
	start := cpu.Cycle()
	done := cpu.Result().Committed
	target := done + insts
	if target < done { // overflow: no instruction limit
		target = ^uint64(0)
	}
	for {
		if err := ctx.Err(); err != nil {
			return cpu.Result(), err
		}
		budget := maxCycles - (cpu.Cycle() - start)
		if budget > runPhaseChunk {
			budget = runPhaseChunk
		}
		res := cpu.RunFor(target-cpu.Result().Committed, budget)
		if res.Outcome != pipeline.OutcomeCycleCapExceeded {
			return res, nil // halted, budget reached, or the machine failed
		}
		if cpu.Cycle()-start >= maxCycles {
			return res, nil // the real cycle cap, not a chunk boundary
		}
	}
}

// RunWorkloadCtx is RunWorkloadWith with cancellation: the simulation checks
// ctx between bounded chunks of cycles, so a Runner timeout or a SIGINT
// stops a wedged run mid-flight. The returned error is non-nil only for
// cancellation; simulation failures (deadlock, audit violation, cycle cap)
// are reported through Result.Outcome. A warmup phase that fails returns
// that phase's Result immediately — its Outcome and Diag describe the
// failure — instead of measuring a broken machine.
func RunWorkloadCtx(ctx context.Context, w *workload.Workload, spec RunSpec, setup func(*pipeline.CPU)) (pipeline.Result, error) {
	return RunWorkloadObs(ctx, w, spec, setup, nil)
}

// RunWorkloadObs is RunWorkloadCtx with a phase hook: onPhase, when non-nil,
// is called at the start of each committed-instruction phase ("warmup", then
// "measure") and must return a closure invoked when the phase ends — the
// shape a span tracer wants. The hook observes phase boundaries only; the
// simulation is byte-identical with and without it.
func RunWorkloadObs(ctx context.Context, w *workload.Workload, spec RunSpec, setup func(*pipeline.CPU), onPhase func(name string) func()) (pipeline.Result, error) {
	maxCycles := spec.MaxCycles
	if maxCycles == 0 {
		maxCycles = 400 * (spec.Warmup + spec.Measure)
	}
	cfg := spec.Core
	cfg.Mem.L1DUpdate = spec.L1DUpdate

	backing := isa.NewFlatMem()
	w.Load(backing)
	cpu := pipeline.NewWithMemory(cfg, spec.Sec, backing)
	if setup != nil {
		setup(cpu)
	}
	if spec.FlightWindow > 0 {
		cpu.ArmFlightRecorder(spec.FlightWindow, 0)
	}
	cpu.SetSelfCheck(spec.SelfCheck)
	cpu.SetPC(w.Entry)
	wres, err := runObsPhase(ctx, cpu, spec.Warmup, maxCycles, "warmup", onPhase)
	if err != nil || !wres.Outcome.Completed() {
		return wres, err
	}
	cpu.ResetStats()
	var m *pipeline.Metrics
	if spec.MetricsInterval > 0 {
		m = pipeline.NewMetrics()
		m.EnableSampling(spec.MetricsInterval, 4096)
		cpu.AttachMetrics(m)
	}
	res, err := runObsPhase(ctx, cpu, spec.Measure, maxCycles, "measure", onPhase)
	if m != nil {
		res.Series = m.Series()
	}
	return res, err
}

// runObsPhase wraps runPhase in the onPhase begin/end pair.
func runObsPhase(ctx context.Context, cpu *pipeline.CPU, insts, maxCycles uint64, name string, onPhase func(string) func()) (pipeline.Result, error) {
	if onPhase != nil {
		if end := onPhase(name); end != nil {
			defer end()
		}
	}
	return runPhase(ctx, cpu, insts, maxCycles)
}

// Overhead returns the runtime overhead of res relative to origin runs of
// the same instruction budget: cyclesRes/cyclesOrigin - 1.
func Overhead(origin, res pipeline.Result) float64 {
	if origin.Cycles == 0 {
		return 0
	}
	return float64(res.Cycles)/float64(origin.Cycles) - 1
}
