package config

import (
	"testing"

	"conspec/internal/isa"
)

func allCores() []Core {
	return append([]Core{PaperCore()}, SensitivityCores()...)
}

func TestPaperCoreMatchesTableIII(t *testing.T) {
	c := PaperCore()
	if c.IssueWidth != 4 || c.CommitWidth != 4 {
		t.Error("Table III: 4-way out-of-order, 4 commits/cycle")
	}
	if c.ROB != 192 || c.IQ != 64 || c.LDQ != 32 || c.STQ != 24 {
		t.Errorf("Table III structure sizes: ROB=%d IQ=%d LDQ=%d STQ=%d",
			c.ROB, c.IQ, c.LDQ, c.STQ)
	}
	m := c.Mem
	if m.L1DSize != 64*1024 || m.L1DWays != 4 || m.L1DLat != 2 {
		t.Error("Table III: L1D 64KB 4-way 2-cycle")
	}
	if m.L2Size != 2*1024*1024 || m.L2Ways != 16 || m.L2Lat != 10 {
		t.Error("Table III: L2 2MB 16-way 10-cycle")
	}
	if m.L3Size != 8*1024*1024 || m.L3Ways != 32 || m.L3Lat != 60 {
		t.Error("Table III: L3 8MB 32-way 60-cycle")
	}
	if m.MemLat != 192 {
		t.Error("Table III: 192-cycle memory")
	}
	if m.ITLBEntries != 64 || m.DTLBEntries != 64 {
		t.Error("Table III: 64-entry TLBs")
	}
}

func TestSensitivityCoreOrdering(t *testing.T) {
	cores := SensitivityCores()
	if len(cores) != 3 {
		t.Fatalf("expected A57/I7/Xeon, got %d cores", len(cores))
	}
	a57, i7, xeon := cores[0], cores[1], cores[2]
	if a57.Name != "A57-like" || i7.Name != "I7-like" || xeon.Name != "Xeon-like" {
		t.Fatalf("core order wrong: %s %s %s", a57.Name, i7.Name, xeon.Name)
	}
	// Speculation window must grow with core class: it is what Table VI's
	// increasing overheads come from.
	if !(a57.ROB < i7.ROB && i7.ROB < xeon.ROB) {
		t.Error("ROB sizes must grow A57 < I7 < Xeon")
	}
	if !(a57.IQ < i7.IQ && i7.IQ < xeon.IQ) {
		t.Error("IQ sizes must grow A57 < I7 < Xeon")
	}
	if !(a57.IssueWidth <= i7.IssueWidth && i7.IssueWidth <= xeon.IssueWidth) {
		t.Error("issue width must not shrink with core class")
	}
}

func TestAllCoresAreConsistent(t *testing.T) {
	for _, c := range allCores() {
		if c.PhysRegs < isa.NumRegs+c.ROB {
			t.Errorf("%s: %d physical registers cannot rename a %d-entry ROB",
				c.Name, c.PhysRegs, c.ROB)
		}
		if c.IQ > c.ROB {
			t.Errorf("%s: IQ (%d) larger than ROB (%d)", c.Name, c.IQ, c.ROB)
		}
		if c.LDQ+c.STQ > c.ROB {
			t.Errorf("%s: LSQ larger than ROB", c.Name)
		}
		if c.FetchWidth <= 0 || c.IssueWidth <= 0 || c.CommitWidth <= 0 {
			t.Errorf("%s: zero widths", c.Name)
		}
		if c.MulLat <= 0 || c.DivLat <= c.MulLat {
			t.Errorf("%s: implausible latencies mul=%d div=%d", c.Name, c.MulLat, c.DivLat)
		}
		m := c.Mem
		for _, geom := range []struct {
			name             string
			size, ways, line int
		}{
			{"L1I", m.L1ISize, m.L1IWays, m.LineBytes},
			{"L1D", m.L1DSize, m.L1DWays, m.LineBytes},
			{"L2", m.L2Size, m.L2Ways, m.LineBytes},
			{"L3", m.L3Size, m.L3Ways, m.LineBytes},
		} {
			if geom.size%(geom.ways*geom.line) != 0 {
				t.Errorf("%s %s: size %d not divisible by ways*line", c.Name, geom.name, geom.size)
			}
			sets := geom.size / (geom.ways * geom.line)
			if sets&(sets-1) != 0 {
				t.Errorf("%s %s: %d sets not a power of two", c.Name, geom.name, sets)
			}
		}
		if !(m.L1DLat < m.L2Lat && m.L2Lat < m.L3Lat && m.L3Lat < m.MemLat) {
			t.Errorf("%s: latency ordering broken", c.Name)
		}
	}
}

func TestCacheLatencyHierarchyGrowsWithSize(t *testing.T) {
	for _, c := range allCores() {
		if c.Mem.L1DSize > c.Mem.L2Size || c.Mem.L2Size > c.Mem.L3Size {
			t.Errorf("%s: cache sizes must grow down the hierarchy", c.Name)
		}
	}
}
