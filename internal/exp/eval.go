package exp

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"conspec/internal/core"
	"conspec/internal/pipeline"
)

// BenchResult holds one benchmark's runs under every mechanism.
type BenchResult struct {
	Name           string
	PaperL1HitRate float64
	Results        map[core.Mechanism]pipeline.Result
}

// Overhead returns the benchmark's runtime overhead of m relative to Origin.
func (b BenchResult) Overhead(m core.Mechanism) float64 {
	return Overhead(b.Results[core.Origin], b.Results[m])
}

// Evaluation is the shared dataset behind Figure 5 and Table V: every
// benchmark run under every mechanism with identical instruction budgets.
type Evaluation struct {
	Spec    RunSpec
	Benches []BenchResult
}

// Evaluation measures the named benchmarks (all 22 when names is nil)
// under all four mechanisms through the engine's memo cache. Runs execute
// in parallel on the worker pool; each completed run emits a bench-done
// event carrying the legacy progress line.
func (r *Runner) Evaluation(ctx context.Context, spec RunSpec, names []string) (*Evaluation, error) {
	return r.evaluation(ctx, SuiteFig5, spec, names)
}

// evaluation is Evaluation with the suite attribution parameterized, so
// table6's embedded evaluations tag their events as table6.
func (r *Runner) evaluation(ctx context.Context, suite SuiteID, spec RunSpec, names []string) (*Evaluation, error) {
	profiles, err := resolveProfiles(names)
	if err != nil {
		return nil, err
	}
	ev := &Evaluation{Spec: spec, Benches: make([]BenchResult, len(profiles))}
	type job struct {
		bench int
		mech  core.Mechanism
	}
	var jobs []job
	for i, p := range profiles {
		ev.Benches[i] = BenchResult{
			Name:           p.Name,
			PaperL1HitRate: p.PaperL1HitRate,
			Results:        make(map[core.Mechanism]pipeline.Result),
		}
		for _, m := range core.Mechanisms {
			jobs = append(jobs, job{bench: i, mech: m})
		}
	}

	var mu sync.Mutex
	var wg sync.WaitGroup
	var firstErr error
	for _, j := range jobs {
		wg.Add(1)
		go func(j job) {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			p := profiles[j.bench]
			s := spec
			s.Sec.Mechanism = j.mech
			res, err := r.run(ctx, suite, p, s)
			if err != nil {
				// A failed run is recorded for Errors(); the benchmark's
				// result map simply lacks this mechanism. Only engine-wide
				// cancellation aborts the whole evaluation.
				if suiteErr(ctx, err) != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
				return
			}
			mu.Lock()
			ev.Benches[j.bench].Results[j.mech] = res
			mu.Unlock()
			r.emit(ProgressEvent{Suite: suite, Benchmark: p.Name,
				Mechanism: j.mech.String(), Phase: PhaseBenchDone, Cycles: res.Cycles,
				Line: fmt.Sprintf("%-12s %-34s %8d cycles (IPC %.2f)",
					p.Name, j.mech, res.Cycles, res.IPC())})
		}(j)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return ev, err
	}
	return ev, firstErr
}

// AverageOverhead returns the arithmetic-mean overhead of m across benches.
func (e *Evaluation) AverageOverhead(m core.Mechanism) float64 {
	if len(e.Benches) == 0 {
		return 0
	}
	sum := 0.0
	for _, b := range e.Benches {
		sum += b.Overhead(m)
	}
	return sum / float64(len(e.Benches))
}

// averageRate averages f over benches.
func (e *Evaluation) averageRate(f func(BenchResult) float64) float64 {
	if len(e.Benches) == 0 {
		return 0
	}
	sum := 0.0
	for _, b := range e.Benches {
		sum += f(b)
	}
	return sum / float64(len(e.Benches))
}

// Fig5Text renders Figure 5: per-benchmark runtime normalized to Origin for
// the three defense mechanisms, plus the suite average. The paper's
// reference averages (Baseline 1.536, Cache-hit 1.128, +TPBuf 1.068) are
// printed alongside for comparison.
func (e *Evaluation) Fig5Text() string {
	var sb strings.Builder
	tw := newTable(&sb)
	tw.row("Benchmark", "Baseline", "Cache-hit", "CH+TPBuf")
	tw.sep()
	for _, b := range e.Benches {
		tw.row(b.Name,
			fmt.Sprintf("%.3f", 1+b.Overhead(core.Baseline)),
			fmt.Sprintf("%.3f", 1+b.Overhead(core.CacheHit)),
			fmt.Sprintf("%.3f", 1+b.Overhead(core.CacheHitTPBuf)))
	}
	tw.sep()
	tw.row("Average",
		fmt.Sprintf("%.3f", 1+e.AverageOverhead(core.Baseline)),
		fmt.Sprintf("%.3f", 1+e.AverageOverhead(core.CacheHit)),
		fmt.Sprintf("%.3f", 1+e.AverageOverhead(core.CacheHitTPBuf)))
	tw.row("Paper avg", "1.536", "1.128", "1.068")
	tw.flush()
	return sb.String()
}

// Table5Text renders Table V: the filter analysis.
func (e *Evaluation) Table5Text() string {
	var sb strings.Builder
	tw := newTable(&sb)
	tw.row("Benchmark", "L1Hit", "Base:Blocked", "CH:Blocked", "CH:SpecHit", "TP:Blocked", "TP:Mismatch")
	tw.sep()
	pct := func(v float64) string { return fmt.Sprintf("%.1f%%", 100*v) }
	for _, b := range e.Benches {
		or := b.Results[core.Origin]
		ba := b.Results[core.Baseline]
		ch := b.Results[core.CacheHit]
		tp := b.Results[core.CacheHitTPBuf]
		tw.row(b.Name,
			pct(or.L1D.HitRate()),
			pct(ba.Filter.BlockedRate()),
			pct(ch.Filter.BlockedRate()),
			pct(ch.Filter.SpecHitRate()),
			pct(tp.Filter.BlockedRate()),
			pct(tp.TPBuf.MismatchRate()))
	}
	tw.sep()
	tw.row("Average",
		pct(e.averageRate(func(b BenchResult) float64 { return b.Results[core.Origin].L1D.HitRate() })),
		pct(e.averageRate(func(b BenchResult) float64 { return b.Results[core.Baseline].Filter.BlockedRate() })),
		pct(e.averageRate(func(b BenchResult) float64 { return b.Results[core.CacheHit].Filter.BlockedRate() })),
		pct(e.averageRate(func(b BenchResult) float64 { return b.Results[core.CacheHit].Filter.SpecHitRate() })),
		pct(e.averageRate(func(b BenchResult) float64 { return b.Results[core.CacheHitTPBuf].Filter.BlockedRate() })),
		pct(e.averageRate(func(b BenchResult) float64 { return b.Results[core.CacheHitTPBuf].TPBuf.MismatchRate() })))
	tw.row("Paper avg", "88.7%", "73.6%", "3.6%", "89.6%", "1.7%", "18.2%")
	tw.flush()
	return sb.String()
}

// SortedBenchNames returns bench names in run order (test helper).
func (e *Evaluation) SortedBenchNames() []string {
	names := make([]string, len(e.Benches))
	for i, b := range e.Benches {
		names[i] = b.Name
	}
	sort.Strings(names)
	return names
}
