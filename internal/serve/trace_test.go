package serve

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"conspec/internal/exp"
)

// traceDoc decodes a Chrome trace-event export body.
func traceDoc(t *testing.T, body io.Reader) []map[string]any {
	t.Helper()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(body).Decode(&doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	return doc.TraceEvents
}

// TestJobTraceEndpoint: GET /v1/jobs/{id}/trace returns the job's span
// subtree — queue-wait and execute under the job root — as Perfetto-loadable
// Chrome trace-event JSON, and excludes other jobs' spans.
func TestJobTraceEndpoint(t *testing.T) {
	fake := newFakeExec()
	_, ts := newTestServer(t, Config{Workers: 1, QueueCap: 4}, fake)

	st1 := submit(t, ts.URL, JobSpec{Suite: "lru"})
	st2 := submit(t, ts.URL, JobSpec{Suite: "fig5"})
	<-fake.started
	fake.releaseAll(2)
	<-fake.started
	waitStatus(t, ts.URL, st1.ID, StatusDone)
	waitStatus(t, ts.URL, st2.ID, StatusDone)

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st1.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content type %q", ct)
	}
	events := traceDoc(t, resp.Body)
	names := map[string]int{}
	for _, ev := range events {
		name, _ := ev["name"].(string)
		names[name]++
	}
	for _, want := range []string{"job:" + st1.ID, "queue-wait", "execute"} {
		if names[want] != 1 {
			t.Errorf("trace has %d %q spans, want 1 (all: %v)", names[want], want, names)
		}
	}
	if names["job:"+st2.ID] != 0 {
		t.Errorf("job %s trace leaks job %s spans", st1.ID, st2.ID)
	}

	// Unknown job: 404.
	resp2, err := http.Get(ts.URL + "/v1/jobs/nope/trace")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job trace: status %d", resp2.StatusCode)
	}
}

// TestMetricsBuildInfoAndSkipCounters: /metrics carries the labeled
// conspec_build_info identity gauge plus the stall skipper's aggregated
// meta-counters.
func TestMetricsBuildInfoAndSkipCounters(t *testing.T) {
	fake := newFakeExec()
	fake.stats = exp.Stats{Executed: 2, SkippedCycles: 12345, SkipSpans: 67}
	_, ts := newTestServer(t, Config{Workers: 1}, fake)
	st := submit(t, ts.URL, JobSpec{Suite: "lru"})
	<-fake.started
	fake.releaseAll(1)
	waitStatus(t, ts.URL, st.ID, StatusDone)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	text := string(out)
	for _, want := range []string{
		"# TYPE conspec_build_info gauge\n",
		"conspec_served_sim_skipped_cycles_total 12345\n",
		"conspec_served_sim_skip_spans_total 67\n",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}
	// The identity gauge is one labeled constant-1 sample with every
	// buildinfo label present (values vary by build environment).
	var infoLine string
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "conspec_build_info{") {
			infoLine = line
			break
		}
	}
	if infoLine == "" {
		t.Fatalf("metrics missing conspec_build_info sample:\n%s", text)
	}
	if !strings.HasSuffix(infoLine, "} 1") {
		t.Errorf("build info gauge is not constant 1: %q", infoLine)
	}
	for _, label := range []string{"module=", "version=", "revision=", "dirty=", "go_version="} {
		if !strings.Contains(infoLine, label) {
			t.Errorf("build info gauge missing %s label: %q", label, infoLine)
		}
	}
}

// TestSSEKeepaliveConfigurable: an idle event stream emits comment frames at
// the configured cadence so proxies don't drop long watches.
func TestSSEKeepaliveConfigurable(t *testing.T) {
	fake := newFakeExec()
	_, ts := newTestServer(t, Config{Workers: 1, SSEKeepalive: 20 * time.Millisecond}, fake)
	st := submit(t, ts.URL, JobSpec{Suite: "lru"})
	<-fake.started // running; the stream will be idle until released

	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	type lineOrErr struct {
		line string
		err  error
	}
	lines := make(chan lineOrErr, 64)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			lines <- lineOrErr{line: sc.Text()}
		}
		lines <- lineOrErr{err: sc.Err()}
	}()

	deadline := time.After(5 * time.Second)
	keepalives := 0
	for keepalives < 2 {
		select {
		case l := <-lines:
			if l.err != nil {
				t.Fatalf("stream ended early: %v", l.err)
			}
			if strings.HasPrefix(l.line, ":") {
				keepalives++
			}
		case <-deadline:
			t.Fatalf("saw %d keepalive comments in 5s at a 20ms cadence", keepalives)
		}
	}
	fake.releaseAll(1)
	waitStatus(t, ts.URL, st.ID, StatusDone)
}

// TestPprofMounted: Config.Pprof mounts the profile index under /debug/;
// without it the path is absent.
func TestPprofMounted(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Pprof: true}, newFakeExec())
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index: status %d body %.80s", resp.StatusCode, body)
	}

	_, tsOff := newTestServer(t, Config{Workers: 1}, newFakeExec())
	respOff, err := http.Get(tsOff.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, respOff.Body)
	respOff.Body.Close()
	if respOff.StatusCode != http.StatusNotFound {
		t.Fatalf("pprof should be absent by default: status %d", respOff.StatusCode)
	}
}
