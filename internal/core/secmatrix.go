package core

import "math/bits"

// Class is the instruction classification the security dependence matrix
// operates on. The matrix does not care about opcodes, only whether an
// entry is a memory access, a speculation source (branch), or neither.
type Class uint8

// Issue-queue entry classes.
const (
	ClassOther  Class = iota
	ClassMem          // load, store, clflush
	ClassBranch       // conditional branch or indirect jump
)

// Scope selects which producer classes create security dependences. The
// paper's full mechanism is ScopeBranchMem; ScopeBranchOnly models the
// branch-memory-only matrix of §VI.C(1) (23.0% average overhead) used to
// decompose where the Baseline's cost comes from.
type Scope uint8

const (
	// ScopeBranchMem marks dependences on unissued branches AND memory
	// instructions (the paper's full formula).
	ScopeBranchMem Scope = iota
	// ScopeBranchOnly marks dependences on unissued branches only.
	ScopeBranchOnly
)

// String names the scope.
func (s Scope) String() string {
	if s == ScopeBranchOnly {
		return "branch-only"
	}
	return "branch+mem"
}

// EntryState is the issue-queue-side view of one entry that the matrix
// consults at dispatch: the inputs of the paper's formula.
type EntryState struct {
	Valid  bool
	Issued bool
	Class  Class
}

// SecMatrixStats counts matrix events for Table V-style reporting.
type SecMatrixStats struct {
	Dispatches     uint64 // matrix rows initialized
	MemDispatches  uint64 // rows for memory instructions
	DepsRecorded   uint64 // bits set at dispatch
	HazardsFlagged uint64 // issue-time row-OR hits (suspect flags assigned)
	ColumnClears   uint64
}

// SecMatrix is the security dependence matrix of §V.B: an NxN bit matrix
// indexed by issue-queue position, plus the Update Vector Register that
// defers column clears by one cycle.
type SecMatrix struct {
	m     *BitMatrix
	scope Scope
	// updateVec is the Update Vector Register as a column bit mask: bit x is
	// set at issue and the column is cleared at the next ClockEdge, in one
	// word-wide ClearColumnBatch pass instead of a per-column row walk.
	updateVec []uint64
	pending   bool
	Stats     SecMatrixStats
}

// NewSecMatrix builds a matrix for an issue queue of n entries.
func NewSecMatrix(n int, scope Scope) *SecMatrix {
	m := NewBitMatrix(n)
	return &SecMatrix{m: m, scope: scope, updateVec: make([]uint64, m.Words())}
}

func (s *SecMatrix) updBit(x int) bool {
	return s.updateVec[x/wordBits]&(1<<(uint(x)%wordBits)) != 0
}

func (s *SecMatrix) updClear(x int) {
	s.updateVec[x/wordBits] &^= 1 << (uint(x) % wordBits)
}

// Size returns the issue queue size the matrix was built for.
func (s *SecMatrix) Size() int { return s.m.Size() }

// Scope returns the producer scope.
func (s *SecMatrix) Scope() Scope { return s.scope }

func (s *SecMatrix) producer(c Class) bool {
	switch s.scope {
	case ScopeBranchOnly:
		return c == ClassBranch
	default:
		return c == ClassBranch || c == ClassMem
	}
}

// IsProducer reports whether instruction class c creates security
// dependences under this matrix's scope — the predicate used by
// OnDispatch, exported so audits can recompute rows independently.
func (s *SecMatrix) IsProducer(c Class) bool { return s.producer(c) }

// OnDispatch initializes row x when instruction X enters the issue queue.
// entries is the current state of every issue-queue position; the formula
// from §V.B is applied verbatim:
//
//	Matrix[X,Y] = (X is MEMORY) & (Y is MEMORY or BRANCH)
//	            & entries[Y].Valid & !entries[Y].Issued
//
// Row x is cleared first (the entry is being reallocated).
//
// OnDispatch is the scalar reference implementation: the hot dispatch path
// uses OnDispatchMask, and differential tests pin the two against each
// other.
func (s *SecMatrix) OnDispatch(x int, xClass Class, entries []EntryState) {
	s.dispatchProlog(x, xClass)
	if xClass != ClassMem {
		return
	}
	for y, e := range entries {
		if y == x {
			continue
		}
		if e.Valid && !e.Issued && s.producer(e.Class) {
			s.m.Set(x, y)
			s.Stats.DepsRecorded++
		}
	}
}

// OnDispatchMask is the word-wide form of OnDispatch: producers is a column
// bit mask with bit y set iff issue-queue entry y is valid, unissued, and
// of a producer class under this matrix's scope (the caller maintains it
// incrementally). Bit x must not be set — the dispatching entry is its own
// slot's new occupant. Statistics match OnDispatch bit for bit.
func (s *SecMatrix) OnDispatchMask(x int, xClass Class, producers []uint64) {
	s.dispatchProlog(x, xClass)
	if xClass != ClassMem {
		return
	}
	s.Stats.DepsRecorded += uint64(s.m.MergeRowMasked(x, producers))
}

func (s *SecMatrix) dispatchProlog(x int, xClass Class) {
	s.m.ClearRow(x)
	if s.updBit(x) {
		// The previous occupant issued and was deallocated before its
		// pending column clear fired; apply the clear now so the stale
		// dependence does not transfer to the new occupant.
		s.m.ClearCol(x)
		s.updClear(x)
	}
	s.Stats.Dispatches++
	if xClass == ClassMem {
		s.Stats.MemDispatches++
	}
}

// HasHazard reports whether entry x still has an uncleared security
// dependence — the row-OR consulted at the select stage. When it returns
// true the issuing instruction is tagged with the suspect speculation flag.
func (s *SecMatrix) HasHazard(x int) bool {
	h := s.m.RowAny(x)
	if h {
		s.Stats.HazardsFlagged++
	}
	return h
}

// Peek is HasHazard without statistics (for re-issue checks each cycle).
func (s *SecMatrix) Peek(x int) bool { return s.m.RowAny(x) }

// OnIssue records that entry x issued this cycle. Its column is cleared at
// the next ClockEdge, exactly one cycle later, via the Update Vector
// Register — younger instructions stop depending on x then.
func (s *SecMatrix) OnIssue(x int) {
	s.updateVec[x/wordBits] |= 1 << (uint(x) % wordBits)
	s.pending = true
}

// OnSquash removes entry x entirely (squash or deallocation): both its row
// and its column vanish immediately, since the entry no longer exists.
func (s *SecMatrix) OnSquash(x int) {
	s.m.ClearRow(x)
	s.m.ClearCol(x)
	s.updClear(x)
}

// ClockEdge applies pending column clears from the Update Vector Register
// in a single word-wide ClearColumnBatch pass. Call once per simulated
// cycle, after issue selection.
func (s *SecMatrix) ClockEdge() {
	if !s.pending {
		return
	}
	cols := 0
	for _, w := range s.updateVec {
		cols += bits.OnesCount64(w)
	}
	if cols > 0 {
		s.m.ClearColumnBatch(s.updateVec)
		s.Stats.ColumnClears += uint64(cols)
		for k := range s.updateVec {
			s.updateVec[k] = 0
		}
	}
	s.pending = false
}

// Get exposes one matrix bit (tests, diagnostics).
func (s *SecMatrix) Get(x, y int) bool { return s.m.Get(x, y) }

// Flip inverts one matrix bit. This is a fault-injection hook — the real
// mechanism never toggles a bit in isolation — used to model single-event
// upsets in the dependence matrix.
func (s *SecMatrix) Flip(x, y int) {
	if s.m.Get(x, y) {
		s.m.Clear(x, y)
	} else {
		s.m.Set(x, y)
	}
}

// Words returns the number of 64-bit words in the column masks
// OnDispatchMask consumes (and in updateVec).
func (s *SecMatrix) Words() int { return s.m.Words() }

// RowOutside reports whether entry x's row references any column outside
// mask — a word-wide audit primitive (see pipeline.CheckInvariants).
func (s *SecMatrix) RowOutside(x int, mask []uint64) bool {
	return s.m.RowAndNotAny(x, mask)
}

// UpdatePending reports whether column x has a clear pending in the Update
// Vector Register (audit use).
func (s *SecMatrix) UpdatePending(x int) bool { return s.updBit(x) }

// Reset clears all state between runs.
func (s *SecMatrix) Reset() {
	s.m.Reset()
	for i := range s.updateVec {
		s.updateVec[i] = 0
	}
	s.pending = false
}
