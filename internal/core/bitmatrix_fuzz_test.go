package core

import (
	"math/rand"
	"testing"
)

// naiveMatrix is the obvious bool-grid reference the cached-summary
// BitMatrix is checked against.
type naiveMatrix struct {
	n int
	b [][]bool
}

func newNaive(n int) *naiveMatrix {
	m := &naiveMatrix{n: n, b: make([][]bool, n)}
	for i := range m.b {
		m.b[i] = make([]bool, n)
	}
	return m
}

func (m *naiveMatrix) set(i, j int)   { m.b[i][j] = true }
func (m *naiveMatrix) clear(i, j int) { m.b[i][j] = false }
func (m *naiveMatrix) clearRow(i int) {
	for j := range m.b[i] {
		m.b[i][j] = false
	}
}
func (m *naiveMatrix) clearCol(j int) {
	for i := range m.b {
		m.b[i][j] = false
	}
}
func (m *naiveMatrix) rowAny(i int) bool {
	for _, v := range m.b[i] {
		if v {
			return true
		}
	}
	return false
}
func (m *naiveMatrix) popCount() int {
	n := 0
	for i := range m.b {
		for _, v := range m.b[i] {
			if v {
				n++
			}
		}
	}
	return n
}

// applyOp drives one mutation on both implementations and cross-checks the
// queryable state. op selects the operation, i/j the coordinates.
func applyOp(t *testing.T, m *BitMatrix, ref *naiveMatrix, op, i, j int) {
	t.Helper()
	switch op % 6 {
	case 0:
		m.Set(i, j)
		ref.set(i, j)
	case 1:
		m.Clear(i, j)
		ref.clear(i, j)
	case 2:
		m.ClearRow(i)
		ref.clearRow(i)
	case 3:
		m.ClearCol(j)
		ref.clearCol(j)
	case 4:
		// Double-set then clear: exercises idempotent-set counting.
		m.Set(i, j)
		m.Set(i, j)
		ref.set(i, j)
	case 5:
		m.Reset()
		for r := 0; r < ref.n; r++ {
			ref.clearRow(r)
		}
	}
	if got, want := m.Get(i, j), ref.b[i][j]; got != want {
		t.Fatalf("Get(%d,%d) = %v, reference %v", i, j, got, want)
	}
	if got, want := m.RowAny(i), ref.rowAny(i); got != want {
		t.Fatalf("RowAny(%d) = %v, reference %v", i, got, want)
	}
	if got, want := m.PopCount(), ref.popCount(); got != want {
		t.Fatalf("PopCount = %d, reference %d", got, want)
	}
}

// checkAll verifies every queryable cell and row summary agrees.
func checkAll(t *testing.T, m *BitMatrix, ref *naiveMatrix) {
	t.Helper()
	for i := 0; i < ref.n; i++ {
		if got, want := m.RowAny(i), ref.rowAny(i); got != want {
			t.Fatalf("RowAny(%d) = %v, reference %v", i, got, want)
		}
		for j := 0; j < ref.n; j++ {
			if got, want := m.Get(i, j), ref.b[i][j]; got != want {
				t.Fatalf("Get(%d,%d) = %v, reference %v", i, j, got, want)
			}
		}
	}
	if got, want := m.PopCount(), ref.popCount(); got != want {
		t.Fatalf("PopCount = %d, reference %d", got, want)
	}
}

// TestBitMatrixPropertyRandomOps runs long random operation sequences on
// several sizes (crossing the 64-bit word boundary) against the reference.
func TestBitMatrixPropertyRandomOps(t *testing.T) {
	for _, n := range []int{1, 7, 63, 64, 65, 97, 128} {
		rng := rand.New(rand.NewSource(int64(0xC0FFEE + n)))
		m := NewBitMatrix(n)
		ref := newNaive(n)
		for step := 0; step < 4000; step++ {
			applyOp(t, m, ref, rng.Intn(6), rng.Intn(n), rng.Intn(n))
		}
		checkAll(t, m, ref)
	}
}

// FuzzBitMatrix interprets the fuzz input as an op script over a 40-entry
// matrix (the paper's IQ size) and checks the cached row summaries against
// the naive reference after every operation.
func FuzzBitMatrix(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 3, 0, 0, 2, 0, 0})
	f.Fuzz(func(t *testing.T, script []byte) {
		const n = 40
		m := NewBitMatrix(n)
		ref := newNaive(n)
		for k := 0; k+2 < len(script); k += 3 {
			applyOp(t, m, ref, int(script[k]), int(script[k+1])%n, int(script[k+2])%n)
		}
		checkAll(t, m, ref)
	})
}
