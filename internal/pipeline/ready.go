package pipeline

// This file holds the allocation-free hot-path machinery: the uop free
// pool, the incrementally maintained ready list the select logic walks
// instead of rescanning the whole issue queue, the per-register wakeup
// lists that feed it, and the SSBD unresolved-store watermark.
//
// Invariants (checked by CheckInvariants):
//
//   - readyList is sorted by ascending seq and contains exactly the
//     issue-queue entries whose issue operands are all ready
//     (u.iqIdx >= 0 && u.waitCnt == 0 ⟺ u.inReady);
//   - a uop waits on at most the operands eligible() requires: psrc1,
//     and psrc2 only when it is not a split store;
//   - unresolvedStoreSeq is the seq of the oldest STQ entry with an
//     unresolved address, or 0 when every store address is known.
//
// Source readiness is monotonic for live issue-queue entries — a physical
// register read by a live consumer cannot be freed and re-allocated before
// that consumer leaves the queue (in-order commit and squash-all-younger
// guarantee it) — so entries never leave the ready list except by issuing
// or being squashed.

// allocUop returns a uop from the free pool, or a fresh one. Callers fully
// reinitialize it with a whole-struct assignment, so no clearing happens
// here.
func (c *CPU) allocUop() *uop {
	if n := len(c.uopPool); n > 0 {
		u := c.uopPool[n-1]
		c.uopPool = c.uopPool[:n-1]
		return u
	}
	return new(uop)
}

// freeUop returns a retired or squashed uop to the pool. The caller must
// have unlinked it from every machine structure first; its fields (notably
// `squashed`) stay readable until the pool recycles it at fetch.
func (c *CPU) freeUop(u *uop) {
	c.uopPool = append(c.uopPool, u)
}

// readySearch returns the position of seq in the ready list (or the
// insertion point keeping ascending order). Seqs are unique.
func (c *CPU) readySearch(seq uint64) int {
	lo, hi := 0, len(c.readyList)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if c.readyList[mid].seq < seq {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// readyInsert adds u to the ready list, keeping ascending seq order so the
// select loop sees candidates oldest-first.
func (c *CPU) readyInsert(u *uop) {
	if u.inReady {
		return
	}
	u.inReady = true
	i := c.readySearch(u.seq)
	c.readyList = append(c.readyList, nil)
	copy(c.readyList[i+1:], c.readyList[i:])
	c.readyList[i] = u
}

// readyRemove drops u from the ready list (issue acceptance or squash).
func (c *CPU) readyRemove(u *uop) {
	if !u.inReady {
		return
	}
	u.inReady = false
	i := c.readySearch(u.seq)
	copy(c.readyList[i:], c.readyList[i+1:])
	c.readyList[len(c.readyList)-1] = nil
	c.readyList = c.readyList[:len(c.readyList)-1]
}

// linkWakeups registers a freshly dispatched issue-queue entry on the
// waiter lists of its not-yet-ready issue operands, or puts it straight on
// the ready list when none are pending. Split stores only need psrc1 (the
// address operand) to issue, mirroring eligible(); their data operand is
// delivered by the awaiting-data scan in writeback instead.
func (c *CPU) linkWakeups(u *uop) {
	if u.psrc1 >= 0 && !c.physReady[u.psrc1] {
		u.wait1 = u.psrc1
		u.waitCnt++
		c.regWaiters[u.psrc1] = append(c.regWaiters[u.psrc1], u)
	}
	if (c.cfg.FusedStores || !u.inst.Op.IsStore()) && u.psrc2 >= 0 && !c.physReady[u.psrc2] {
		u.wait2 = u.psrc2
		u.waitCnt++
		c.regWaiters[u.psrc2] = append(c.regWaiters[u.psrc2], u)
	}
	if u.waitCnt == 0 {
		c.readyInsert(u)
	}
}

// wake drains physical register p's waiter list after writeback marks it
// ready, moving consumers whose last pending operand this was onto the
// ready list. Entries whose wait fields no longer name p are stale
// registrations left behind by a squash (the uop was recycled); they are
// skipped. Stale entries can never fire wrongly: a recycled uop only has
// wait1/wait2 == p if its new incarnation also registered on p's list, in
// which case consuming either entry is equivalent — only the count matters.
func (c *CPU) wake(p int) {
	ws := c.regWaiters[p]
	if len(ws) == 0 {
		return
	}
	for i, u := range ws {
		ws[i] = nil
		switch p {
		case u.wait1:
			u.wait1 = -1
		case u.wait2:
			u.wait2 = -1
		default:
			continue // stale registration from a squashed former occupant
		}
		u.waitCnt--
		if u.waitCnt == 0 && u.iqIdx >= 0 {
			c.readyInsert(u)
		}
	}
	c.regWaiters[p] = ws[:0]
}

// truncWaiters empties physical register p's waiter list when p is
// re-allocated as a destination. Any entries present at that moment are
// stale: p could only have been freed once no live consumer remained, so
// everything still registered belongs to squashed uops.
func (c *CPU) truncWaiters(p int) {
	ws := c.regWaiters[p]
	for i := range ws {
		ws[i] = nil
	}
	c.regWaiters[p] = ws[:0]
}

// fqPush appends u to the fetch-queue ring. The caller checks capacity.
func (c *CPU) fqPush(u *uop) {
	c.fetchQ[(c.fqHead+c.fqLen)%c.fetchQCap] = u
	c.fqLen++
}

// fqPop removes the oldest fetch-queue entry (which the caller holds).
func (c *CPU) fqPop() {
	c.fetchQ[c.fqHead] = nil
	c.fqHead = (c.fqHead + 1) % c.fetchQCap
	c.fqLen--
}

// fqFlush empties the fetch queue on a squash, returning every pending uop
// to the pool (nothing in the queue has been dispatched, so no other
// structure references them).
func (c *CPU) fqFlush() {
	for c.fqLen > 0 {
		u := c.fetchQ[c.fqHead]
		c.fqPop()
		c.freeUop(u)
	}
	c.fqHead = 0
}

// noteStoreDispatched maintains the SSBD watermark when a store enters the
// STQ: a newly dispatched store is the youngest, so it only becomes the
// watermark when no other unresolved store exists.
func (c *CPU) noteStoreDispatched(u *uop) {
	if c.unresolvedStoreSeq == 0 {
		c.unresolvedStoreSeq = u.seq
	}
}

// noteStoreResolved maintains the SSBD watermark when a store's address
// resolves at issue. Resolving a younger store leaves the oldest unresolved
// seq unchanged; resolving the watermark itself triggers an STQ rescan for
// the next oldest (the only remaining O(STQ) step, paid once per store
// rather than once per load-eligibility check).
func (c *CPU) noteStoreResolved(u *uop) {
	if u.seq != c.unresolvedStoreSeq {
		return
	}
	c.unresolvedStoreSeq = 0
	for _, st := range c.stq {
		if st == nil || st.addrReady {
			continue
		}
		if c.unresolvedStoreSeq == 0 || st.seq < c.unresolvedStoreSeq {
			c.unresolvedStoreSeq = st.seq
		}
	}
}

// noteSquash maintains the SSBD watermark after squashFrom: if the oldest
// unresolved store was itself squashed (seq >= fromSeq), every unresolved
// store was — they are all at least as young — so the watermark clears.
func (c *CPU) noteSquashWatermark(fromSeq uint64) {
	if c.unresolvedStoreSeq >= fromSeq {
		c.unresolvedStoreSeq = 0
	}
}
