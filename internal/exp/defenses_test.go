package exp

import (
	"context"
	"strings"
	"testing"

	"conspec/internal/config"
	"conspec/internal/core"
)

// TestDefenseMatrix is the smoke matrix behind `make defense-matrix`: every
// registered defense backend runs two workloads for overhead and faces the
// canonical Spectre V1 Flush+Reload PoC for a leak verdict. The verdicts
// are the security half of the redesign's contract: fence and delay-on-miss
// must block V1, origin must leak, SSBD must not help against V1.
func TestDefenseMatrix(t *testing.T) {
	cfg := config.PaperCore()
	cfg.Mem.L2Size = 256 * 1024
	cfg.Mem.L3Size = 1024 * 1024

	r := NewRunner(RunnerOptions{})
	res, err := r.Defenses(context.Background(), fastSpec(),
		[]string{"astar", "lbm"}, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(core.Defenses()) {
		t.Fatalf("got %d rows for %d registered defenses", len(res.Rows), len(core.Defenses()))
	}
	for _, row := range res.Rows {
		if row.Leaked == row.ExpectBlock {
			verb := "leaked"
			if !row.Leaked {
				verb = "blocked"
			}
			t.Errorf("%s: V1 %s (%d/%d bytes), expected the opposite",
				row.Name, verb, row.Recovered, row.SecretLen)
		}
		if row.Name == "origin" && row.Overhead != 0 {
			t.Errorf("origin overhead vs itself = %v, want 0", row.Overhead)
		}
		if row.Overhead < -0.05 {
			t.Errorf("%s: overhead %.3f — a defense should not beat the unprotected core", row.Name, row.Overhead)
		}
	}

	txt := DefensesText(res)
	for _, want := range []string{"fence", "delay-on-miss", "invisispec", "DEFENDED", "LEAKED"} {
		if !strings.Contains(txt, want) {
			t.Errorf("defenses table missing %q:\n%s", want, txt)
		}
	}
}

// TestDefensesSubsetAndUnknown covers the name-resolution path shared with
// the CLIs and the serve JobSpec.
func TestDefensesSubsetAndUnknown(t *testing.T) {
	cfg := config.PaperCore()
	cfg.Mem.L2Size = 256 * 1024
	cfg.Mem.L3Size = 1024 * 1024

	r := NewRunner(RunnerOptions{})
	res, err := r.Defenses(context.Background(), fastSpec(),
		[]string{"astar"}, []string{"origin", "lfence"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || res.Rows[1].Name != "fence" {
		t.Fatalf("alias subset resolved to %+v", res.Rows)
	}

	if _, err := r.Defenses(context.Background(), fastSpec(),
		[]string{"astar"}, []string{"nope"}, cfg); err == nil {
		t.Fatal("unknown defense name must be rejected")
	} else if !strings.Contains(err.Error(), "cachehit+tpbuf") {
		t.Errorf("rejection should list the registry: %v", err)
	}
}
