package branch

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newP() *Predictor { return New(DefaultConfig()) }

func TestColdPredictionIsNotTaken(t *testing.T) {
	p := newP()
	if p.PredictCond(0x1000) {
		t.Fatal("cold gshare must predict weakly not-taken")
	}
}

func TestTrainingFlipsPrediction(t *testing.T) {
	p := newP()
	pc := uint64(0x4000)
	// Train taken repeatedly with consistent history (restore each time to
	// mimic a loop with stable GHR).
	for i := 0; i < 4; i++ {
		cp := p.Checkpoint()
		p.PredictCond(pc)
		p.ResolveCond(pc, true, false, cp.GHR)
		p.Restore(cp)
		p.CorrectGHRAfterRestore(true)
		p.Restore(cp) // reset history so the index repeats
	}
	if !p.PredictCond(pc) {
		t.Fatal("after taken training the branch must predict taken")
	}
}

func TestCountersSaturate(t *testing.T) {
	p := newP()
	pc := uint64(0x10)
	cp := p.Checkpoint()
	for i := 0; i < 10; i++ {
		p.ResolveCond(pc, true, false, cp.GHR)
	}
	if c := p.CounterAt(pc, cp.GHR); c != 3 {
		t.Fatalf("counter = %d, want saturated 3", c)
	}
	for i := 0; i < 10; i++ {
		p.ResolveCond(pc, false, false, cp.GHR)
	}
	if c := p.CounterAt(pc, cp.GHR); c != 0 {
		t.Fatalf("counter = %d, want saturated 0", c)
	}
}

func TestCheckpointRestoreGHR(t *testing.T) {
	p := newP()
	cp := p.Checkpoint()
	p.CorrectGHRAfterRestore(true) // shift in a taken bit
	p.PredictCond(0x200)
	if p.GHR() == cp.GHR {
		t.Fatal("shifted history must differ from the checkpoint")
	}
	p.Restore(cp)
	if p.GHR() != cp.GHR {
		t.Fatal("restore must rewind the GHR")
	}
}

func TestBTBTrainAndPredict(t *testing.T) {
	p := newP()
	pc, target := uint64(0x8000), uint64(0x9000)
	if _, ok := p.PredictTarget(pc); ok {
		t.Fatal("cold BTB must miss")
	}
	p.ResolveTarget(pc, target, true)
	got, ok := p.PredictTarget(pc)
	if !ok || got != target {
		t.Fatalf("BTB predict = %#x,%v", got, ok)
	}
	if p.Stats.BTBMispredict != 1 {
		t.Fatalf("BTB mispredicts = %d", p.Stats.BTBMispredict)
	}
}

// TestBTBAliasing demonstrates the property Spectre V2 relies on: an
// attacker branch aliasing to the same BTB entry poisons the victim's
// prediction.
func TestBTBAliasing(t *testing.T) {
	p := New(Config{PHTBits: 10, GHRBits: 10, BTBEntries: 64, RASEntries: 8})
	victimPC := uint64(0x1000)
	attackerPC := victimPC + 64*8 // same index: (pc>>3) mod 64 equal
	gadget := uint64(0xBAD0)
	p.ResolveTarget(attackerPC, gadget, false)
	got, ok := p.PredictTarget(victimPC)
	if !ok || got != gadget {
		t.Fatalf("aliased BTB prediction = %#x,%v; want poisoned %#x", got, ok, gadget)
	}
}

func TestRASPushPop(t *testing.T) {
	p := newP()
	p.PushRAS(0x111)
	p.PushRAS(0x222)
	if v, ok := p.PopRAS(); !ok || v != 0x222 {
		t.Fatalf("pop = %#x,%v", v, ok)
	}
	if v, ok := p.PopRAS(); !ok || v != 0x111 {
		t.Fatalf("pop = %#x,%v", v, ok)
	}
}

func TestRASCheckpointRestore(t *testing.T) {
	p := newP()
	p.PushRAS(0x111)
	cp := p.Checkpoint()
	p.PushRAS(0x222)
	p.PushRAS(0x333)
	p.Restore(cp)
	if v, ok := p.PopRAS(); !ok || v != 0x111 {
		t.Fatalf("after restore pop = %#x,%v, want 0x111", v, ok)
	}
}

func TestRASWrapAround(t *testing.T) {
	p := New(Config{PHTBits: 8, GHRBits: 8, BTBEntries: 16, RASEntries: 4})
	for i := 1; i <= 6; i++ {
		p.PushRAS(uint64(i) * 0x10)
	}
	// Stack holds the last 4: 0x30,0x40,0x50,0x60; pops come back LIFO.
	for want := 6; want >= 3; want-- {
		v, ok := p.PopRAS()
		if !ok || v != uint64(want)*0x10 {
			t.Fatalf("pop = %#x,%v, want %#x", v, ok, uint64(want)*0x10)
		}
	}
}

func TestMispredictRate(t *testing.T) {
	var s Stats
	if s.MispredictRate() != 0 {
		t.Fatal("no predictions -> rate 0")
	}
	s = Stats{CondPredicts: 8, CondMispredict: 2}
	if s.MispredictRate() != 0.25 {
		t.Fatalf("rate = %v", s.MispredictRate())
	}
}

func TestBadConfigPanics(t *testing.T) {
	for _, cfg := range []Config{
		{PHTBits: 0, GHRBits: 8, BTBEntries: 16, RASEntries: 4},
		{PHTBits: 8, GHRBits: 0, BTBEntries: 16, RASEntries: 4},
		{PHTBits: 8, GHRBits: 8, BTBEntries: 12, RASEntries: 4},
		{PHTBits: 8, GHRBits: 8, BTBEntries: 16, RASEntries: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("config %+v must panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

// Property: Restore is always exact for the GHR regardless of the sequence
// of predictions in between.
func TestRestoreProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		p := newP()
		rng := rand.New(rand.NewSource(seed))
		// Random warmup.
		for i := 0; i < int(n%40); i++ {
			p.PredictCond(uint64(rng.Intn(1 << 20)))
		}
		cp := p.Checkpoint()
		for i := 0; i < int(n); i++ {
			p.PredictCond(uint64(rng.Intn(1 << 20)))
			if rng.Intn(3) == 0 {
				p.PushRAS(uint64(rng.Intn(1 << 20)))
			}
		}
		p.Restore(cp)
		return p.GHR() == cp.GHR
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a perfectly biased branch is eventually predicted perfectly
// (with stable history), for either bias.
func TestBiasedBranchLearned(t *testing.T) {
	for _, bias := range []bool{true, false} {
		p := newP()
		pc := uint64(0x7700)
		cp := p.Checkpoint()
		for i := 0; i < 8; i++ {
			p.ResolveCond(pc, bias, false, cp.GHR)
		}
		if got := p.PredictCond(pc); got != bias {
			t.Errorf("bias %v not learned", bias)
		}
	}
}

func newKind(k Kind) *Predictor {
	cfg := DefaultConfig()
	cfg.Kind = k
	return New(cfg)
}

func TestKindStrings(t *testing.T) {
	if KindGshare.String() != "gshare" || KindBimodal.String() != "bimodal" ||
		KindTournament.String() != "tournament" {
		t.Fatal("kind names changed")
	}
}

func TestBimodalIgnoresHistory(t *testing.T) {
	p := newKind(KindBimodal)
	pc := uint64(0x1000)
	// Train taken under one history.
	for i := 0; i < 4; i++ {
		p.ResolveCond(pc, true, false, 0)
	}
	// Scramble the history: bimodal must still predict taken.
	for i := 0; i < 20; i++ {
		p.PredictCond(uint64(0x9000 + i*8))
	}
	if !p.PredictCond(pc) {
		t.Fatal("bimodal prediction must not depend on global history")
	}
}

func TestGshareUsesHistory(t *testing.T) {
	p := newKind(KindGshare)
	pc := uint64(0x1000)
	// Train taken at history=0 only.
	for i := 0; i < 4; i++ {
		p.ResolveCond(pc, true, false, 0)
	}
	if got := p.direction(pc, 0); !got {
		t.Fatal("trained history must predict taken")
	}
	if got := p.direction(pc, 0xFFF); got {
		t.Fatal("untrained history must stay at the cold default (not-taken)")
	}
}

// TestTournamentLearnsAlternation: a branch alternating taken/not-taken is
// hopeless for bimodal but learnable by gshare with history; the tournament
// chooser must converge to gshare and predict well.
func TestTournamentLearnsAlternation(t *testing.T) {
	measure := func(k Kind) float64 {
		p := newKind(k)
		pc := uint64(0x4000)
		wrong := 0
		const rounds = 400
		for i := 0; i < rounds; i++ {
			cp := p.Checkpoint()
			pred := p.PredictCond(pc)
			actual := i%2 == 0
			mis := pred != actual
			if mis {
				wrong++
				p.Restore(cp)
				p.CorrectGHRAfterRestore(actual)
			}
			p.ResolveCond(pc, actual, mis, cp.GHR)
		}
		return float64(wrong) / rounds
	}
	bim := measure(KindBimodal)
	tour := measure(KindTournament)
	gsh := measure(KindGshare)
	if bim < 0.4 {
		t.Fatalf("bimodal should be hopeless on alternation, got %.2f", bim)
	}
	if gsh > 0.1 {
		t.Fatalf("gshare should learn alternation, got %.2f", gsh)
	}
	if tour > 0.2 {
		t.Fatalf("tournament should converge to the history predictor, got %.2f", tour)
	}
}

func TestAllKindsLearnBias(t *testing.T) {
	for _, k := range []Kind{KindGshare, KindBimodal, KindTournament} {
		p := newKind(k)
		pc := uint64(0x7700)
		cp := p.Checkpoint()
		for i := 0; i < 8; i++ {
			p.ResolveCond(pc, true, false, cp.GHR)
		}
		if !p.direction(pc, cp.GHR) {
			t.Errorf("%v did not learn a constant-taken branch", k)
		}
	}
}
