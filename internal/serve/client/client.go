// Package client is the Go client for the conspec-served HTTP API. It is
// the library behind conspec-ctl and the serve-smoke harness, and keeps the
// wire types (serve.JobSpec, serve.JobStatus, serve.Event) as the single
// source of truth for both sides.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"conspec/internal/serve"
)

// Client talks to one conspec-served instance.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8344".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient. Watch streams
	// indefinitely, so the client must not set an overall Timeout; bound
	// watches with the context instead.
	HTTPClient *http.Client
}

// New returns a client for baseURL.
func New(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) http() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// APIError is a non-2xx response, carrying the server's error body.
type APIError struct {
	StatusCode int
	Message    string
	// RetryAfter is the parsed Retry-After header, if the server sent one
	// (429 queue-full and 503 draining responses do).
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	if e.Message != "" {
		return fmt.Sprintf("server: %s (HTTP %d)", e.Message, e.StatusCode)
	}
	return fmt.Sprintf("server: HTTP %d", e.StatusCode)
}

// IsRetryable reports whether the request can be retried later (queue full
// or draining).
func (e *APIError) IsRetryable() bool {
	return e.StatusCode == http.StatusTooManyRequests || e.StatusCode == http.StatusServiceUnavailable
}

func apiErr(resp *http.Response) error {
	var body struct {
		Error string `json:"error"`
	}
	json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body)
	e := &APIError{StatusCode: resp.StatusCode, Message: body.Error}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		var secs int
		if _, err := fmt.Sscanf(ra, "%d", &secs); err == nil {
			e.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	return e
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		return apiErr(resp)
	}
	if out == nil {
		io.Copy(io.Discard, resp.Body)
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// Submit queues a job and returns its initial status.
func (c *Client) Submit(ctx context.Context, spec serve.JobSpec) (serve.JobStatus, error) {
	var st serve.JobStatus
	err := c.do(ctx, http.MethodPost, "/v1/jobs", spec, &st)
	return st, err
}

// Get fetches one job, including the result document once it is done.
func (c *Client) Get(ctx context.Context, id string) (serve.JobStatus, error) {
	var st serve.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// List fetches all jobs, newest first (no result bodies).
func (c *Client) List(ctx context.Context) ([]serve.JobStatus, error) {
	var out []serve.JobStatus
	err := c.do(ctx, http.MethodGet, "/v1/jobs", nil, &out)
	return out, err
}

// Cancel requests cancellation of a queued or running job.
func (c *Client) Cancel(ctx context.Context, id string) (serve.JobStatus, error) {
	var st serve.JobStatus
	err := c.do(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, &st)
	return st, err
}

// Trace fetches a job's span trace as Chrome trace-event JSON (the raw
// document, loadable in Perfetto) and writes it to w.
func (c *Client) Trace(ctx context.Context, id string, w io.Writer) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/trace", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiErr(resp)
	}
	_, err = io.Copy(w, resp.Body)
	return err
}

// Metrics fetches the Prometheus exposition text.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", apiErr(resp)
	}
	out, err := io.ReadAll(resp.Body)
	return string(out), err
}

// Watch streams a job's events, calling fn for each (history replay first,
// then live frames). It returns nil when the stream ends with a terminal
// state event, the first non-nil error from fn, or the transport error.
func (c *Client) Watch(ctx context.Context, id string, fn func(serve.Event) error) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return apiErr(resp)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	terminal := false
	for sc.Scan() {
		data, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue // event:/comment/blank lines
		}
		var ev serve.Event
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return fmt.Errorf("bad event frame: %w", err)
		}
		if err := fn(ev); err != nil {
			return err
		}
		if ev.Terminal() {
			terminal = true
			break
		}
	}
	if err := sc.Err(); err != nil && !terminal {
		return err
	}
	if !terminal {
		return fmt.Errorf("event stream ended before the job finished")
	}
	return nil
}

// WaitDone watches id until it reaches a terminal state and returns the
// final status (with the result document).
func (c *Client) WaitDone(ctx context.Context, id string) (serve.JobStatus, error) {
	err := c.Watch(ctx, id, func(serve.Event) error { return nil })
	if err != nil {
		return serve.JobStatus{}, err
	}
	return c.Get(ctx, id)
}
