package exp

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	var sb strings.Builder
	tw := newTable(&sb)
	tw.row("Name", "Value")
	tw.sep()
	tw.row("short", "1")
	tw.row("a-much-longer-name", "123456")
	tw.sep()
	tw.flush()
	out := sb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 6 { // header, rule, 2 rows, rule... header+rule+2+rule = 5? verify below
		// header, sep, row, row, sep  -> 5 lines
		if len(lines) != 5 {
			t.Fatalf("got %d lines:\n%s", len(lines), out)
		}
	}
	if !strings.Contains(out, "-") {
		t.Fatal("separator missing")
	}
	// Columns align: the Value column is right-aligned, so both data rows
	// must end at the same width.
	var dataRows []string
	for _, l := range lines {
		if strings.Contains(l, "short") || strings.Contains(l, "longer") {
			dataRows = append(dataRows, l)
		}
	}
	if len(dataRows) != 2 || len(strings.TrimRight(dataRows[0], " ")) == 0 {
		t.Fatalf("data rows malformed: %q", dataRows)
	}
}

func TestTableEmptyFlush(t *testing.T) {
	var sb strings.Builder
	newTable(&sb).flush()
	if sb.String() != "" {
		t.Fatal("empty table must render nothing")
	}
}
