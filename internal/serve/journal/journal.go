// Package journal is the durable job journal under the serve tier: an
// append-only write-ahead log of job lifecycle records that survives
// process death. Every accepted job is journaled (fsynced) before the
// submitter sees a 202, so a kill -9 loses no accepted work: on the next
// startup the journal is replayed and every job whose last record is
// non-terminal is handed back to the server for re-execution. Re-running
// is cheap and idempotent because results are content-addressed in the
// disk cache — the recovered job's already-finished simulations are served
// from disk and only the interrupted tail simulates again.
//
// Layout (inside the data directory):
//
//	<dir>/journal.wal   — JSONL, one Record per line, fsynced per append
//	<dir>/journal.snap  — compaction snapshot: {"last_seq":N,"jobs":[...]}
//
// Once the WAL grows past Options.CompactBytes, it is compacted: the
// current state of every still-live job is written to a snapshot (terminal
// jobs need no recovery and are dropped — that is the GC), the snapshot is
// atomically renamed into place, and the WAL restarts empty. Recovery
// reads the snapshot first, then replays WAL records with Seq beyond the
// snapshot's last_seq, so a crash anywhere in the compaction sequence is
// safe: the worst case is replaying records the snapshot already covers,
// which the seq filter discards. A torn final WAL line (crash mid-append)
// is detected and truncated away on open.
//
// The journal is deliberately ignorant of the server's JobSpec type — the
// spec rides through as raw JSON — so the planned coordinator can reuse it
// as its queue store with a different payload.
package journal

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Op is a job lifecycle transition.
type Op string

const (
	// OpSubmitted: the job was accepted; the record carries the full spec.
	OpSubmitted Op = "submitted"
	// OpStarted: a worker began executing the job.
	OpStarted Op = "started"
	// OpLeased: the fleet coordinator handed the job to a remote worker;
	// the record's Worker field names it. Non-terminal: a coordinator crash
	// re-queues the job exactly like an interrupted local run.
	OpLeased Op = "leased"
	// OpRequeued: the leased worker died (missed heartbeats) or abandoned
	// the lease, and the coordinator put the job back on the queue; Worker
	// names the worker that lost it.
	OpRequeued Op = "requeued"
	// OpDone, OpFailed, OpCanceled: terminal transitions. The job needs no
	// recovery and is dropped at the next compaction.
	OpDone     Op = "done"
	OpFailed   Op = "failed"
	OpCanceled Op = "canceled"
)

// Terminal reports whether the op ends a job's lifecycle.
func (o Op) Terminal() bool {
	return o == OpDone || o == OpFailed || o == OpCanceled
}

// Record is one WAL line.
type Record struct {
	Seq  uint64    `json:"seq"`
	Time time.Time `json:"time"`
	Op   Op        `json:"op"`
	Job  string    `json:"job"`
	// Spec is the submission payload, carried only on OpSubmitted and
	// opaque to the journal (the serve layer stores its JobSpec here).
	Spec json.RawMessage `json:"spec,omitempty"`
	// Error carries the failure message on OpFailed.
	Error string `json:"error,omitempty"`
	// Worker names the fleet worker on OpLeased (who holds the lease) and
	// OpRequeued (who lost it).
	Worker string `json:"worker,omitempty"`
}

// State is one job's reduced state after replay: the latest lifecycle op
// plus the spec from its submission record.
type State struct {
	Job       string          `json:"job"`
	Op        Op              `json:"op"`
	Spec      json.RawMessage `json:"spec,omitempty"`
	Error     string          `json:"error,omitempty"`
	Worker    string          `json:"worker,omitempty"`
	Submitted time.Time       `json:"submitted"`
	Updated   time.Time       `json:"updated"`
}

// snapshot is the compaction file's shape.
type snapshot struct {
	LastSeq uint64  `json:"last_seq"`
	Jobs    []State `json:"jobs"`
}

// Options tunes a Journal.
type Options struct {
	// CompactBytes triggers compaction once the WAL file exceeds it
	// (default 1 MiB; every append checks). Compaction cost is linear in
	// the number of live jobs, not WAL size.
	CompactBytes int64
	// NoSync skips the per-append fsync (tests that hammer the journal).
	// Production callers leave it false: the durability guarantee — an
	// acknowledged submission survives kill -9 — is exactly that fsync.
	NoSync bool
}

const defaultCompactBytes = 1 << 20

// Journal is the open WAL. All methods are safe for concurrent use.
type Journal struct {
	dir  string
	opts Options

	mu          sync.Mutex
	f           *os.File
	w           *bufio.Writer
	seq         uint64            // last assigned seq
	size        int64             // current WAL size
	live        map[string]*State // non-terminal jobs, for compaction
	appends     uint64
	compactions uint64
}

// walPath and snapPath locate the journal's files inside dir.
func walPath(dir string) string  { return filepath.Join(dir, "journal.wal") }
func snapPath(dir string) string { return filepath.Join(dir, "journal.snap") }

// Open replays the journal in dir (creating it if absent) and returns the
// open journal plus the recovered states of every job whose last record is
// non-terminal, in submission order. The caller re-queues those.
func Open(dir string, opts Options) (*Journal, []State, error) {
	if opts.CompactBytes <= 0 {
		opts.CompactBytes = defaultCompactBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j := &Journal{dir: dir, opts: opts, live: make(map[string]*State)}

	lastSeq, err := j.loadSnapshot()
	if err != nil {
		return nil, nil, err
	}
	if err := j.replayWAL(lastSeq); err != nil {
		return nil, nil, err
	}

	f, err := os.OpenFile(walPath(dir), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("journal: %w", err)
	}
	j.f, j.w, j.size = f, bufio.NewWriter(f), st.Size()

	recovered := make([]State, 0, len(j.live))
	for _, s := range j.live {
		recovered = append(recovered, *s)
	}
	sort.Slice(recovered, func(i, k int) bool {
		if !recovered[i].Submitted.Equal(recovered[k].Submitted) {
			return recovered[i].Submitted.Before(recovered[k].Submitted)
		}
		return recovered[i].Job < recovered[k].Job
	})
	return j, recovered, nil
}

// loadSnapshot populates live from the snapshot file, returning its
// last_seq (0 when there is no snapshot). A corrupt snapshot is an error:
// silently dropping it would silently drop accepted jobs.
func (j *Journal) loadSnapshot() (uint64, error) {
	b, err := os.ReadFile(snapPath(j.dir))
	if os.IsNotExist(err) {
		return 0, nil
	}
	if err != nil {
		return 0, fmt.Errorf("journal: snapshot: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return 0, fmt.Errorf("journal: corrupt snapshot %s: %w", snapPath(j.dir), err)
	}
	for i := range snap.Jobs {
		s := snap.Jobs[i]
		if !s.Op.Terminal() {
			j.live[s.Job] = &s
		}
	}
	j.seq = snap.LastSeq
	return snap.LastSeq, nil
}

// replayWAL applies WAL records with Seq > lastSeq to live. A torn final
// line (crash mid-append) is truncated away; a torn line in the middle is
// an error, since records after it did fsync and must not be lost.
func (j *Journal) replayWAL(lastSeq uint64) error {
	b, err := os.ReadFile(walPath(j.dir))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	goodEnd := 0
	for off := 0; off < len(b); {
		nl := bytes.IndexByte(b[off:], '\n')
		if nl < 0 {
			break // torn tail: no trailing newline
		}
		line := b[off : off+nl]
		var rec Record
		if err := json.Unmarshal(line, &rec); err != nil {
			if off+nl+1 == len(b) {
				break // torn tail that happens to contain a newline-free prefix? keep goodEnd
			}
			return fmt.Errorf("journal: corrupt record at offset %d: %w", off, err)
		}
		off += nl + 1
		goodEnd = off
		if rec.Seq <= lastSeq {
			continue // already covered by the snapshot
		}
		j.apply(rec)
		if rec.Seq > j.seq {
			j.seq = rec.Seq
		}
	}
	if goodEnd < len(b) {
		if err := os.Truncate(walPath(j.dir), int64(goodEnd)); err != nil {
			return fmt.Errorf("journal: truncating torn tail: %w", err)
		}
	}
	return nil
}

// apply folds one record into the live map.
func (j *Journal) apply(rec Record) {
	switch {
	case rec.Op == OpSubmitted:
		j.live[rec.Job] = &State{
			Job: rec.Job, Op: rec.Op, Spec: rec.Spec,
			Submitted: rec.Time, Updated: rec.Time,
		}
	case rec.Op.Terminal():
		delete(j.live, rec.Job)
	default:
		if s := j.live[rec.Job]; s != nil {
			s.Op = rec.Op
			s.Error = rec.Error
			s.Worker = rec.Worker
			s.Updated = rec.Time
		}
	}
}

// Append writes one record and — unless Options.NoSync — fsyncs before
// returning, so an acknowledged append survives power loss. It triggers
// compaction when the WAL has outgrown Options.CompactBytes.
func (j *Journal) Append(op Op, jobID string, spec json.RawMessage, errMsg string) error {
	return j.append(Record{Op: op, Job: jobID, Spec: spec, Error: errMsg})
}

// AppendLease records a fleet lease transition (OpLeased/OpRequeued) with
// the worker holding — or having lost — the lease, with the same
// durability as Append.
func (j *Journal) AppendLease(op Op, jobID, worker string) error {
	return j.append(Record{Op: op, Job: jobID, Worker: worker})
}

// append assigns the record's seq/time, writes and fsyncs it, and folds it
// into the live map.
func (j *Journal) append(rec Record) error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	j.seq++
	rec.Seq, rec.Time = j.seq, time.Now().UTC()
	b, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	b = append(b, '\n')
	if _, err := j.w.Write(b); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if err := j.w.Flush(); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if !j.opts.NoSync {
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("journal: %w", err)
		}
	}
	j.size += int64(len(b))
	j.appends++
	j.apply(rec)
	if j.size > j.opts.CompactBytes {
		if err := j.compactLocked(); err != nil {
			// Compaction failure is not fatal to the append — the record is
			// durable in the WAL; the journal just stays long.
			return nil
		}
	}
	return nil
}

// Live returns the number of non-terminal jobs the journal tracks.
func (j *Journal) Live() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.live)
}

// Sizes reports the current WAL size and compaction count (metrics hook).
func (j *Journal) Sizes() (walBytes int64, appends, compactions uint64) {
	if j == nil {
		return 0, 0, 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size, j.appends, j.compactions
}

// Compact forces a compaction (tests; production compaction is automatic).
func (j *Journal) Compact() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.compactLocked()
}

// compactLocked snapshots the live jobs and restarts the WAL. Crash-safe
// ordering: snapshot.tmp is written and fsynced, renamed over the
// snapshot, and only then is the WAL truncated — a crash between rename
// and truncate merely replays records the seq filter will skip.
func (j *Journal) compactLocked() error {
	snap := snapshot{LastSeq: j.seq, Jobs: make([]State, 0, len(j.live))}
	for _, s := range j.live {
		snap.Jobs = append(snap.Jobs, *s)
	}
	sort.Slice(snap.Jobs, func(i, k int) bool { return snap.Jobs[i].Job < snap.Jobs[k].Job })
	b, err := json.Marshal(snap)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	tmp := snapPath(j.dir) + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	_, werr := f.Write(b)
	if werr == nil && !j.opts.NoSync {
		werr = f.Sync()
	}
	if cerr := f.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, snapPath(j.dir))
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("journal: %w", werr)
	}

	// Restart the WAL. O_TRUNC on the live handle keeps appends working
	// even if reopening failed; the bufio writer has no buffered bytes
	// (Append flushes every record).
	if err := j.f.Truncate(0); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	if _, err := j.f.Seek(0, io.SeekStart); err != nil {
		return fmt.Errorf("journal: %w", err)
	}
	j.size = 0
	j.compactions++
	return nil
}

// Close flushes and closes the WAL handle.
func (j *Journal) Close() error {
	if j == nil {
		return nil
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.w.Flush()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}
