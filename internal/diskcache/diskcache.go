// Package diskcache is the persistent, content-addressed result store
// layered under the experiment engine's in-memory memo cache. Each
// completed simulation is one JSON file addressed by its deterministic
// runKey, inside a directory namespaced by the producing binary's build
// identity — so identical runs are served from disk across process
// restarts and across clients, and a rebuilt binary (which may simulate
// differently) starts a fresh namespace instead of replaying stale
// results.
//
// Layout:
//
//	<root>/<build-id>/meta.json          — the full buildinfo identity
//	<root>/<build-id>/<kk>/<key>.json    — one entry; kk = key[:2]
//	<root>/<build-id>/quarantine/        — corrupt entries moved aside
//
// Writes are atomic (temp file + rename), so concurrent processes sharing
// a root — several CLIs, a server's worker pool — can only ever observe
// whole entries. Reads tolerate corruption: an unreadable or mismatched
// entry is a miss (and is quarantined for inspection, never deleted
// blind), because the store's failure mode must be "simulate again", not
// "fail the suite".
//
// The store is bounded: Options.MaxBytes caps the namespace's entry bytes,
// with least-recently-used eviction on the write path (recency is entry
// mtime, which Get refreshes on hits, so it survives restarts) and an
// optional background GC sweep that re-syncs the index with the directory,
// quarantines corrupt entries, and re-applies the budget — covering
// entries written by other processes sharing the root.
package diskcache

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"conspec/internal/buildinfo"
	"conspec/internal/pipeline"
)

// formatVersion is bumped when the entry envelope changes incompatibly;
// it participates in the namespace hash, so old entries become invisible
// rather than misread.
const formatVersion = 1

// quarantineDir is where corrupt entries are moved, inside the namespace.
const quarantineDir = "quarantine"

// Options bounds a Store.
type Options struct {
	// MaxBytes caps the total size of stored entries (meta.json and the
	// quarantine are not counted). Writes that push the store past the cap
	// evict least-recently-used entries until it fits; an entry larger
	// than the whole budget is not stored at all. 0 = unbounded.
	MaxBytes int64
	// GCInterval, when non-zero, starts a background sweep loop on Open:
	// every interval the sweep rescans the namespace (picking up entries
	// written by other processes sharing the root), quarantines corrupt
	// entries, and evicts back under MaxBytes. Stop it with Close.
	GCInterval time.Duration
}

// Stats is a snapshot of the store's activity since Open plus its current
// occupancy. Gets/Hits/Puts/PutErrs count operations; Evictions and
// EvictedBytes count LRU evictions (budget enforcement); Quarantined
// counts corrupt entries moved aside by Get or the GC sweep; Bytes and
// Entries describe what the index currently tracks.
type Stats struct {
	Gets         uint64
	Hits         uint64
	Puts         uint64
	PutErrs      uint64
	Evictions    uint64
	EvictedBytes uint64
	Quarantined  uint64
	GCSweeps     uint64
	Bytes        int64
	Entries      int
}

// Store is a persistent exp.ResultCache. The zero value is not usable;
// obtain one from Open. A nil *Store is a valid no-op cache, so callers
// can thread an optional store without nil checks at every use.
type Store struct {
	dir  string // <root>/<build-id>, created by Open
	opts Options

	mu    sync.Mutex
	index map[string]*indexEntry // key -> size + last-access
	bytes int64                  // sum of index sizes
	stats Stats

	stop chan struct{} // closes the GC loop; nil when GCInterval == 0
	done chan struct{} // GC loop exited
}

// indexEntry is the in-memory record of one on-disk entry.
type indexEntry struct {
	size  int64
	atime time.Time
}

// entry is the on-disk envelope: the key is stored redundantly so a
// misplaced or truncated file can be detected and treated as a miss.
type entry struct {
	Key     string          `json:"key"`
	SavedAt time.Time       `json:"saved_at"`
	Result  pipeline.Result `json:"result"`
}

// meta is the human-readable namespace description written next to the
// entries, for operators inspecting a cache directory.
type meta struct {
	Format   int            `json:"format"`
	Identity string         `json:"identity"`
	Build    buildinfo.Info `json:"build"`
}

// BuildID derives the namespace directory name from a build identity: a
// short hash over the identity string and the store format version.
func BuildID(info buildinfo.Info) string {
	h := sha256.Sum256([]byte(fmt.Sprintf("format=%d\n%s", formatVersion, info.Identity())))
	return hex.EncodeToString(h[:])[:16]
}

// Open creates (or reuses) the store rooted at root, namespaced by the
// running binary's build identity, with no size bound.
func Open(root string) (*Store, error) {
	return OpenWith(root, Options{})
}

// OpenWith is Open with a size budget and GC cadence.
func OpenWith(root string, opts Options) (*Store, error) {
	return OpenFor(root, buildinfo.Get(), opts)
}

// OpenFor is OpenWith with an explicit build identity (test hook, and the
// seam that makes "a rebuilt binary gets a fresh namespace" checkable
// without rebuilding).
func OpenFor(root string, info buildinfo.Info, opts Options) (*Store, error) {
	dir := filepath.Join(root, BuildID(info))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	m := meta{Format: formatVersion, Identity: info.Identity(), Build: info}
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("diskcache: %w", err)
	}
	// Racing writers produce identical bytes, so last-write-wins is fine.
	if err := writeAtomic(filepath.Join(dir, "meta.json"), b); err != nil {
		return nil, err
	}
	s := &Store{dir: dir, opts: opts, index: make(map[string]*indexEntry)}
	s.mu.Lock()
	s.rescanLocked(false)
	s.evictLocked()
	s.mu.Unlock()
	if opts.GCInterval > 0 {
		s.stop = make(chan struct{})
		s.done = make(chan struct{})
		go s.gcLoop()
	}
	return s, nil
}

// Close stops the background GC loop, if one was started. The store stays
// usable for Get/Put afterwards; Close is about the goroutine, not the
// files.
func (s *Store) Close() {
	if s == nil || s.stop == nil {
		return
	}
	s.mu.Lock()
	stop, done := s.stop, s.done
	s.stop = nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// Dir returns the namespace directory entries are stored under.
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// path maps a key to its entry file, sharding by the first two hex chars
// to keep directories small. Keys are validated defensively: anything that
// isn't plain lowercase hex of reasonable length (i.e. not a runKey) is
// rejected so a malformed key can never escape the store directory.
func (s *Store) path(key string) (string, bool) {
	if len(key) < 8 || len(key) > 128 {
		return "", false
	}
	for _, c := range key {
		if !strings.ContainsRune("0123456789abcdef", c) {
			return "", false
		}
	}
	return filepath.Join(s.dir, key[:2], key+".json"), true
}

// Get implements exp.ResultCache. Misses on nil stores, unknown keys, and
// corrupt entries (which are quarantined, not deleted — see quarantine).
func (s *Store) Get(key string) (pipeline.Result, bool) {
	if s == nil {
		return pipeline.Result{}, false
	}
	s.mu.Lock()
	s.stats.Gets++
	s.mu.Unlock()
	p, ok := s.path(key)
	if !ok {
		return pipeline.Result{}, false
	}
	b, err := os.ReadFile(p)
	if err != nil {
		return pipeline.Result{}, false
	}
	var e entry
	if err := json.Unmarshal(b, &e); err != nil || e.Key != key {
		s.quarantine(key, p)
		return pipeline.Result{}, false
	}
	now := time.Now()
	// Refresh recency on disk too, so LRU order survives restarts and is
	// visible to other processes sharing the root. Best effort.
	os.Chtimes(p, now, now)
	s.mu.Lock()
	s.stats.Hits++
	if ie := s.index[key]; ie != nil {
		ie.atime = now
	} else {
		// Another process wrote it after our last scan; adopt it.
		s.index[key] = &indexEntry{size: int64(len(b)), atime: now}
		s.bytes += int64(len(b))
	}
	s.mu.Unlock()
	return e.Result, true
}

// Put implements exp.ResultCache. Errors are swallowed by design (see the
// package comment) but counted, so an operator can notice a full disk in
// the stats rather than in silently colder caches. A successful write
// that pushes the store past Options.MaxBytes evicts least-recently-used
// entries until the budget holds again.
func (s *Store) Put(key string, res pipeline.Result) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.stats.Puts++
	s.mu.Unlock()
	p, ok := s.path(key)
	if !ok {
		s.putErr()
		return
	}
	b, err := json.Marshal(entry{Key: key, SavedAt: time.Now().UTC(), Result: res})
	if err != nil {
		s.putErr()
		return
	}
	if s.opts.MaxBytes > 0 && int64(len(b)) > s.opts.MaxBytes {
		// Larger than the whole budget: storing it would evict everything
		// and then still bust the cap. Count it as a failed write.
		s.putErr()
		return
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		s.putErr()
		return
	}
	if err := writeAtomic(p, b); err != nil {
		s.putErr()
		return
	}
	s.mu.Lock()
	if old := s.index[key]; old != nil {
		s.bytes -= old.size
	}
	s.index[key] = &indexEntry{size: int64(len(b)), atime: time.Now()}
	s.bytes += int64(len(b))
	s.evictLocked()
	s.mu.Unlock()
}

func (s *Store) putErr() {
	s.mu.Lock()
	s.stats.PutErrs++
	s.mu.Unlock()
}

// evictLocked removes least-recently-used entries until the byte budget
// holds. Caller holds s.mu.
func (s *Store) evictLocked() {
	if s.opts.MaxBytes <= 0 || s.bytes <= s.opts.MaxBytes {
		return
	}
	type cand struct {
		key   string
		size  int64
		atime time.Time
	}
	cands := make([]cand, 0, len(s.index))
	for k, ie := range s.index {
		cands = append(cands, cand{k, ie.size, ie.atime})
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].atime.Before(cands[j].atime) })
	for _, c := range cands {
		if s.bytes <= s.opts.MaxBytes {
			break
		}
		if p, ok := s.path(c.key); ok {
			os.Remove(p)
		}
		delete(s.index, c.key)
		s.bytes -= c.size
		s.stats.Evictions++
		s.stats.EvictedBytes += uint64(c.size)
	}
}

// quarantine moves a corrupt entry into the namespace's quarantine
// directory (suffixed with a timestamp so repeated offenders don't
// clobber each other) and drops it from the index.
func (s *Store) quarantine(key, p string) {
	qdir := filepath.Join(s.dir, quarantineDir)
	dst := filepath.Join(qdir, fmt.Sprintf("%s.%d", filepath.Base(p), time.Now().UnixNano()))
	moved := os.MkdirAll(qdir, 0o755) == nil && os.Rename(p, dst) == nil
	if !moved {
		// Quarantine failed (e.g. read-only fs): fall back to removal so a
		// corrupt entry cannot be served forever.
		os.Remove(p)
	}
	s.mu.Lock()
	s.stats.Quarantined++
	if ie := s.index[key]; ie != nil {
		s.bytes -= ie.size
		delete(s.index, key)
	}
	s.mu.Unlock()
}

// Stats returns a snapshot of the store's counters and occupancy. A nil
// store reports zeros.
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.stats
	st.Bytes = s.bytes
	st.Entries = len(s.index)
	return st
}

// GC runs one sweep synchronously: rescan the namespace directory
// (validating every entry and quarantining corrupt ones), then evict back
// under the byte budget. The background loop started by Options.GCInterval
// calls exactly this.
func (s *Store) GC() {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.rescanLocked(true)
	s.evictLocked()
	s.stats.GCSweeps++
	s.mu.Unlock()
}

func (s *Store) gcLoop() {
	defer close(s.done)
	t := time.NewTicker(s.opts.GCInterval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			s.GC()
		case <-s.stop:
			return
		}
	}
}

// rescanLocked rebuilds the index from the directory. With validate set it
// also parses every entry and quarantines corrupt ones (the GC sweep); the
// cheap form (Open) trusts filenames and sizes and lets Get catch rot
// lazily. Caller holds s.mu; the quarantine helper re-locks, so corrupt
// paths are collected first and moved after the walk.
func (s *Store) rescanLocked(validate bool) {
	index := make(map[string]*indexEntry)
	var total int64
	type corrupt struct{ key, path string }
	var bad []corrupt
	filepath.Walk(s.dir, func(path string, info os.FileInfo, err error) error {
		if err != nil || info.IsDir() {
			if err == nil && info.IsDir() && filepath.Base(path) == quarantineDir {
				return filepath.SkipDir
			}
			return nil
		}
		base := filepath.Base(path)
		if !strings.HasSuffix(base, ".json") || base == "meta.json" {
			return nil
		}
		key := strings.TrimSuffix(base, ".json")
		if _, ok := s.path(key); !ok {
			return nil // foreign file; leave it alone
		}
		if validate {
			b, rerr := os.ReadFile(path)
			var e entry
			if rerr != nil || len(b) == 0 || json.Unmarshal(b, &e) != nil || e.Key != key {
				bad = append(bad, corrupt{key, path})
				return nil
			}
		}
		index[key] = &indexEntry{size: info.Size(), atime: info.ModTime()}
		total += info.Size()
		return nil
	})
	s.index = index
	s.bytes = total
	if len(bad) > 0 {
		s.mu.Unlock()
		for _, c := range bad {
			s.quarantine(c.key, c.path)
		}
		s.mu.Lock()
	}
}

// Len walks the namespace and counts stored entries (operator/test
// convenience; not on any hot path).
func (s *Store) Len() int {
	if s == nil {
		return 0
	}
	n := 0
	filepath.Walk(s.dir, func(path string, info os.FileInfo, err error) error {
		if err == nil && info.IsDir() && filepath.Base(path) == quarantineDir {
			return filepath.SkipDir
		}
		if err == nil && !info.IsDir() &&
			strings.HasSuffix(path, ".json") && filepath.Base(path) != "meta.json" {
			n++
		}
		return nil
	})
	return n
}

// writeAtomic writes b to path via a same-directory temp file and rename.
func writeAtomic(path string, b []byte) error {
	f, err := os.CreateTemp(filepath.Dir(path), ".tmp-*")
	if err != nil {
		return fmt.Errorf("diskcache: %w", err)
	}
	tmp := f.Name()
	_, werr := f.Write(b)
	cerr := f.Close()
	if werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp, path)
	}
	if werr != nil {
		os.Remove(tmp)
		return fmt.Errorf("diskcache: %w", werr)
	}
	return nil
}
