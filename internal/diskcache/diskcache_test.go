package diskcache

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"conspec/internal/buildinfo"
	"conspec/internal/pipeline"
)

var testInfo = buildinfo.Info{Module: "conspec", Version: "(devel)",
	Revision: "abc123", GoVersion: "go1.24.0"}

const key = "00deadbeef00deadbeef00deadbeef00deadbeef00deadbeef00deadbeef0000"

func TestPutGetRoundTrip(t *testing.T) {
	s, err := OpenFor(t.TempDir(), testInfo)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("empty store reported a hit")
	}
	res := pipeline.Result{Cycles: 12345, Committed: 1000, Halted: true,
		Outcome: pipeline.OutcomeInstTarget, Diag: "d"}
	res.Stages.IssuedUops = 42
	s.Put(key, res)
	got, ok := s.Get(key)
	if !ok {
		t.Fatal("stored entry missed")
	}
	if got.Cycles != res.Cycles || got.Committed != res.Committed ||
		got.Halted != res.Halted || got.Outcome != res.Outcome ||
		got.Stages.IssuedUops != 42 {
		t.Errorf("round trip mismatch: got %+v want %+v", got, res)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	gets, hits, puts, putErrs := s.Stats()
	if gets != 2 || hits != 1 || puts != 1 || putErrs != 0 {
		t.Errorf("stats = %d/%d/%d/%d, want 2/1/1/0", gets, hits, puts, putErrs)
	}
}

// TestReopenSurvivesRestart is the restart half of the service's acceptance
// scenario at store granularity: a fresh Store over the same root and the
// same build identity sees the previous process's entries.
func TestReopenSurvivesRestart(t *testing.T) {
	root := t.TempDir()
	s1, err := OpenFor(root, testInfo)
	if err != nil {
		t.Fatal(err)
	}
	s1.Put(key, pipeline.Result{Cycles: 7})
	s2, err := OpenFor(root, testInfo)
	if err != nil {
		t.Fatal(err)
	}
	if got, ok := s2.Get(key); !ok || got.Cycles != 7 {
		t.Fatalf("reopened store: got %+v / %v, want cycles 7", got, ok)
	}
}

// TestBuildIdentityNamespacing: a different build identity must not see the
// old namespace's entries.
func TestBuildIdentityNamespacing(t *testing.T) {
	root := t.TempDir()
	s1, err := OpenFor(root, testInfo)
	if err != nil {
		t.Fatal(err)
	}
	s1.Put(key, pipeline.Result{Cycles: 7})

	other := testInfo
	other.Revision = "def456"
	s2, err := OpenFor(root, other)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s2.Get(key); ok {
		t.Fatal("entry leaked across build identities")
	}
	if BuildID(testInfo) == BuildID(other) {
		t.Fatal("distinct identities produced one BuildID")
	}
	dirty := testInfo
	dirty.Dirty = true
	if BuildID(testInfo) == BuildID(dirty) {
		t.Fatal("dirty flag must change the namespace")
	}
}

func TestCorruptEntryIsAMiss(t *testing.T) {
	s, err := OpenFor(t.TempDir(), testInfo)
	if err != nil {
		t.Fatal(err)
	}
	s.Put(key, pipeline.Result{Cycles: 7})
	p, _ := s.path(key)
	if err := os.WriteFile(p, []byte("{truncated"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("corrupt entry reported as hit")
	}
	if _, err := os.Stat(p); !os.IsNotExist(err) {
		t.Error("corrupt entry not removed")
	}
	// A key stored under the wrong filename is likewise a miss.
	s.Put(key, pipeline.Result{Cycles: 7})
	otherKey := "ff" + key[2:]
	dir := filepath.Join(s.Dir(), otherKey[:2])
	os.MkdirAll(dir, 0o755)
	b, _ := os.ReadFile(p)
	os.WriteFile(filepath.Join(dir, otherKey+".json"), b, 0o644)
	if _, ok := s.Get(otherKey); ok {
		t.Fatal("entry with mismatched key reported as hit")
	}
}

func TestMalformedKeysRejected(t *testing.T) {
	s, err := OpenFor(t.TempDir(), testInfo)
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range []string{"", "short", "../../../../etc/passwd",
		strings.Repeat("zz", 32), strings.Repeat("AB", 32)} {
		s.Put(bad, pipeline.Result{})
		if _, ok := s.Get(bad); ok {
			t.Errorf("malformed key %q round-tripped", bad)
		}
	}
	if s.Len() != 0 {
		t.Errorf("malformed keys created %d entries", s.Len())
	}
}

func TestNilStoreIsNoop(t *testing.T) {
	var s *Store
	s.Put(key, pipeline.Result{})
	if _, ok := s.Get(key); ok {
		t.Fatal("nil store hit")
	}
	if s.Len() != 0 || s.Dir() != "" {
		t.Fatal("nil store not inert")
	}
}
