package exp

import (
	"context"

	"conspec/internal/attack"
	"conspec/internal/config"
)

// legacyEvents adapts the old func(string) progress callbacks onto the
// typed event stream: it forwards exactly the bench-done lines the old
// Run* drivers used to emit.
func legacyEvents(progress func(string)) func(ProgressEvent) {
	if progress == nil {
		return nil
	}
	return func(ev ProgressEvent) {
		if ev.Line != "" {
			progress(ev.Line)
		}
	}
}

// legacyRunner builds a one-shot Runner for the deprecated wrappers.
func legacyRunner(progress func(string)) *Runner {
	return NewRunner(RunnerOptions{OnEvent: legacyEvents(progress)})
}

// RunEvaluation measures the named benchmarks under all four mechanisms.
//
// Deprecated: build a Runner and call [Runner.Evaluation]; a shared Runner
// deduplicates identical runs across suites and supports cancellation.
func RunEvaluation(spec RunSpec, names []string, progress func(string)) (*Evaluation, error) {
	return legacyRunner(progress).Evaluation(context.Background(), spec, names)
}

// RunTable6 regenerates Table VI on the three sensitivity cores.
//
// Deprecated: build a Runner and call [Runner.Table6].
func RunTable6(spec RunSpec, names []string, progress func(string)) ([]Table6Core, error) {
	return legacyRunner(progress).Table6(context.Background(), spec, names)
}

// RunScope measures Baseline overheads under the two matrix scopes.
//
// Deprecated: build a Runner and call [Runner.Scope].
func RunScope(spec RunSpec, names []string, progress func(string)) (*ScopeResult, error) {
	return legacyRunner(progress).Scope(context.Background(), spec, names)
}

// RunLRU measures the three §VII.A policies under CacheHit+TPBuf.
//
// Deprecated: build a Runner and call [Runner.LRU].
func RunLRU(spec RunSpec, names []string, progress func(string)) (*LRUResult, error) {
	return legacyRunner(progress).LRU(context.Background(), spec, names)
}

// RunICache measures the ICache-hit filter's additional cost.
//
// Deprecated: build a Runner and call [Runner.ICache].
func RunICache(spec RunSpec, names []string, progress func(string)) (*ICacheResult, error) {
	return legacyRunner(progress).ICache(context.Background(), spec, names)
}

// RunDTLBFilter measures the DTLB-hit filter's additional cost.
//
// Deprecated: build a Runner and call [Runner.DTLB].
func RunDTLBFilter(spec RunSpec, names []string, progress func(string)) (*DTLBResult, error) {
	return legacyRunner(progress).DTLB(context.Background(), spec, names)
}

// RunComparison measures the three defenses across the benchmarks.
//
// Deprecated: build a Runner and call [Runner.Compare].
func RunComparison(spec RunSpec, names []string, progress func(string)) (*CompareResult, error) {
	return legacyRunner(progress).Compare(context.Background(), spec, names)
}

// RunTable4 regenerates Table IV by running every attack scenario under
// every mechanism.
//
// Deprecated: build a Runner and call [Runner.Table4].
func RunTable4(cfg config.Core, progress func(string)) []attack.Outcome {
	out, _ := legacyRunner(progress).Table4(context.Background(), cfg)
	return out
}
