package pipeline

import (
	"testing"

	"conspec/internal/asm"
	"conspec/internal/core"
	"conspec/internal/isa"
)

// TestDuoMailboxCoherence: core A stores a value; core B spin-reads it and
// echoes value+1 into a reply slot; A waits for the reply. This only works
// if store-commit invalidation makes each side's polling loads observe the
// other's writes.
func TestDuoMailboxCoherence(t *testing.T) {
	const mbox, reply = 0x50000, 0x50100 // distinct lines

	a := asm.New()
	a.Li(asm.A0, mbox)
	a.Li(asm.A1, reply)
	a.Li(asm.T0, 41)
	a.St(asm.T0, asm.A0, 0)
	a.Bind("wait")
	a.Ld(asm.T1, asm.A1, 0)
	a.Beq(asm.T1, asm.Zero, "wait")
	a.Halt()
	progA := a.MustAssemble(0x1000)

	b := asm.New()
	b.Li(asm.A0, mbox)
	b.Li(asm.A1, reply)
	b.Bind("poll")
	b.Ld(asm.T0, asm.A0, 0)
	b.Beq(asm.T0, asm.Zero, "poll")
	b.Addi(asm.T0, asm.T0, 1)
	b.St(asm.T0, asm.A1, 0)
	b.Halt()
	progB := b.MustAssemble(0x8000)

	backing := isa.NewFlatMem()
	progA.Load(backing)
	progB.Load(backing)
	duo := NewDuo(smallCore(),
		SecurityConfig{Mechanism: core.Origin},
		SecurityConfig{Mechanism: core.CacheHitTPBuf},
		backing)
	duo.A.SetPC(progA.Base)
	duo.B.SetPC(progB.Base)
	duo.Run(1_000_000, func(d *Duo) bool { return d.A.Halted() && d.B.Halted() })
	if !duo.A.Halted() || !duo.B.Halted() {
		t.Fatal("handshake did not complete (coherence broken?)")
	}
	if got := duo.A.ArchReg(int(asm.T1)); got != 42 {
		t.Fatalf("A read reply %d, want 42", got)
	}
}

// TestDuoPeerInvalidation: after B warms a shared line, A's committed store
// must evict it from B's private L1 (while the shared L2 keeps a copy).
func TestDuoPeerInvalidation(t *testing.T) {
	backing := isa.NewFlatMem()
	duo := NewDuo(smallCore(),
		SecurityConfig{Mechanism: core.Origin},
		SecurityConfig{Mechanism: core.Origin},
		backing)
	const addr = 0x60000
	duo.B.Hierarchy().AccessData(addr, false)
	if !duo.B.Hierarchy().L1D.Probe(addr) {
		t.Fatal("precondition: line warm in B's L1")
	}
	duo.A.Hierarchy().StoreCommitted(addr)
	if duo.B.Hierarchy().L1D.Probe(addr) {
		t.Fatal("peer store must invalidate B's private copy")
	}
	if !duo.B.Hierarchy().L2.Probe(addr) {
		t.Fatal("shared L2 copy must survive peer invalidation")
	}
}

// TestDuoGlobalClflush: a CLFLUSH on core A must also remove the line from
// core B's private L1 (the instruction is architecturally global).
func TestDuoGlobalClflush(t *testing.T) {
	backing := isa.NewFlatMem()
	duo := NewDuo(smallCore(),
		SecurityConfig{Mechanism: core.Origin},
		SecurityConfig{Mechanism: core.Origin},
		backing)
	const addr = 0x61000
	duo.B.Hierarchy().AccessData(addr, false)
	duo.A.Hierarchy().Flush(addr)
	if duo.B.Hierarchy().L1D.Probe(addr) || duo.B.Hierarchy().L2.Probe(addr) {
		t.Fatal("global flush must clear the peer L1 and the shared levels")
	}
}
