// LRU policies: the §VII.A study. Speculative L1D hits that pass the
// cache-hit filter still refresh replacement metadata, which an attacker
// can observe; the paper proposes skipping those updates (no-update) or
// deferring them to commit (delayed-update). This example measures both on
// a handful of benchmarks and also demonstrates the eviction-order
// difference directly on a raw cache.
//
//	go run ./examples/lru_policies
package main

import (
	"context"
	"fmt"
	"log"

	"conspec/internal/exp"
	"conspec/internal/mem"
)

func main() {
	// Part 1: direct demonstration on a 2-way cache.
	fmt.Println("-- direct demonstration (2-way set, suspect hit on line A) --")
	for _, policy := range []mem.UpdatePolicy{mem.UpdateAlways, mem.UpdateNoSpec} {
		c := mem.NewCache("demo", 512, 2, 64, 2)
		a, b, d := uint64(0x000), uint64(0x100), uint64(0x200) // same set
		c.Refill(a)
		c.Refill(b)
		c.Access(a, policy == mem.UpdateAlways) // suspect speculative hit on A
		evicted, _ := c.Refill(d)
		fmt.Printf("  %-15v suspect hit on A, then refill: evicted %#x\n", policy, evicted)
	}
	fmt.Println("  (under no-update the suspect hit left A least-recently-used,")
	fmt.Println("   so the attacker learns nothing from the replacement state)")
	fmt.Println()

	// Part 2: the performance cost, as in §VII.A.
	fmt.Println("-- performance (CacheHit+TPBuf, three benchmarks) --")
	runner := exp.NewRunner(exp.RunnerOptions{OnEvent: func(ev exp.ProgressEvent) {
		if ev.Line != "" {
			fmt.Println("  ", ev.Line)
		}
	}})
	r, err := runner.LRU(context.Background(), exp.DefaultSpec(), []string{"astar", "bzip2", "sphinx3"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(exp.LRUText(r))
}
