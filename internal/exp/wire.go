package exp

import (
	"encoding/json"
	"errors"
	"time"

	"conspec/internal/obs"
)

// This file pins the JSON wire format of the engine's progress and error
// types. The serve layer streams ProgressEvents over SSE and conspec-bench
// -json emits RunErrors in its errors array; both therefore share one
// stable shape: snake_case field names, the EventPhase/outcome strings as
// they appear in the constants, errors flattened to their text, and Wall
// carried as integer nanoseconds. A decoded event is semantically
// equivalent but not pointer-identical: Err round-trips as an opaque
// errors.New of the original text.

// progressEventWire is ProgressEvent's JSON shape.
type progressEventWire struct {
	Suite     string `json:"suite,omitempty"`
	Benchmark string `json:"benchmark,omitempty"`
	Mechanism string `json:"mechanism,omitempty"`
	Phase     string `json:"phase"`
	CacheHit  bool   `json:"cache_hit,omitempty"`
	Tier      string `json:"tier,omitempty"`
	Cycles    uint64 `json:"cycles,omitempty"`
	WallNS    int64  `json:"wall_ns,omitempty"`
	Error     string `json:"error,omitempty"`
	Line      string `json:"line,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (e ProgressEvent) MarshalJSON() ([]byte, error) {
	w := progressEventWire{
		Suite:     string(e.Suite),
		Benchmark: e.Benchmark,
		Mechanism: e.Mechanism,
		Phase:     string(e.Phase),
		CacheHit:  e.CacheHit,
		Tier:      e.Tier,
		Cycles:    e.Cycles,
		WallNS:    int64(e.Wall),
		Line:      e.Line,
	}
	if e.Err != nil {
		w.Error = e.Err.Error()
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (e *ProgressEvent) UnmarshalJSON(b []byte) error {
	var w progressEventWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*e = ProgressEvent{
		Suite:     SuiteID(w.Suite),
		Benchmark: w.Benchmark,
		Mechanism: w.Mechanism,
		Phase:     EventPhase(w.Phase),
		CacheHit:  w.CacheHit,
		Tier:      w.Tier,
		Cycles:    w.Cycles,
		Wall:      time.Duration(w.WallNS),
		Line:      w.Line,
	}
	if w.Error != "" {
		e.Err = errors.New(w.Error)
	}
	return nil
}

// runErrorWire is RunError's JSON shape — the same five fields, in the same
// order, that conspec-bench -json has always emitted per failed run, plus an
// optional flight-recorder dump (absent unless the run had one armed).
type runErrorWire struct {
	Suite     string          `json:"suite"`
	Benchmark string          `json:"benchmark"`
	Mechanism string          `json:"mechanism"`
	Outcome   string          `json:"outcome"`
	Error     string          `json:"error"`
	Flight    *obs.FlightDump `json:"flight,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (e RunError) MarshalJSON() ([]byte, error) {
	w := runErrorWire{
		Suite:     string(e.Suite),
		Benchmark: e.Benchmark,
		Mechanism: e.Mechanism,
		Outcome:   e.Outcome,
		Flight:    e.Flight,
	}
	if e.Err != nil {
		w.Error = e.Err.Error()
	}
	return json.Marshal(w)
}

// UnmarshalJSON implements json.Unmarshaler.
func (e *RunError) UnmarshalJSON(b []byte) error {
	var w runErrorWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*e = RunError{
		Suite:     SuiteID(w.Suite),
		Benchmark: w.Benchmark,
		Mechanism: w.Mechanism,
		Outcome:   w.Outcome,
		Flight:    w.Flight,
	}
	if w.Error != "" {
		e.Err = errors.New(w.Error)
	}
	return nil
}
