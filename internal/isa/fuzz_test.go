package isa

import "testing"

// FuzzDecode checks that any 64-bit word decodes without panicking and that
// valid instructions re-encode to the same word.
func FuzzDecode(f *testing.F) {
	f.Add(uint64(0))
	f.Add(Encode(Inst{Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3}))
	f.Add(^uint64(0))
	f.Fuzz(func(t *testing.T, w uint64) {
		in := Decode(w)
		if Encode(in) != w {
			t.Fatalf("decode/encode mismatch for %#x", w)
		}
		_ = in.String()
		_, _ = in.Sources()
		_ = in.HasDest()
	})
}

// FuzzInterpStep runs the interpreter on arbitrary instruction words in a
// bounded arena: no input may panic it or drive memory usage unboundedly.
func FuzzInterpStep(f *testing.F) {
	f.Add(uint64(0x1122334455667788), uint64(0))
	f.Fuzz(func(t *testing.T, w1, w2 uint64) {
		m := NewFlatMem()
		m.Write(0, InstBytes, w1)
		m.Write(InstBytes, InstBytes, w2)
		in := NewInterp(m, 0)
		for i := 0; i < 4; i++ {
			if err := in.Step(); err != nil {
				return // undefined opcode is a legal outcome
			}
		}
	})
}
