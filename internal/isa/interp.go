package isa

import "fmt"

// Interp is the reference in-order interpreter: the architectural golden
// model. It executes one instruction per Step with no speculation, no caches
// and no timing, and is used for differential testing of the out-of-order
// core (both must reach identical architectural state) and for constructing
// expected results in attack harnesses.
type Interp struct {
	Regs   [NumRegs]uint64
	PC     uint64
	Mem    Memory
	Halted bool

	// InstRet counts retired instructions; it also serves as the "cycle"
	// value returned by RDCYCLE in the reference model (the golden model has
	// no timing, so any monotonic counter is a valid architectural reading).
	InstRet uint64
}

// NewInterp returns an interpreter over mem starting at pc.
func NewInterp(mem Memory, pc uint64) *Interp {
	return &Interp{Mem: mem, PC: pc}
}

// ErrBadOpcode is returned by Step when it fetches an undefined instruction,
// which almost always means the PC escaped the program.
type ErrBadOpcode struct {
	PC uint64
	Op Op
}

func (e ErrBadOpcode) Error() string {
	return fmt.Sprintf("isa: undefined opcode %d at PC %#x", uint8(e.Op), e.PC)
}

// Step executes one instruction. It is a no-op once Halted.
func (m *Interp) Step() error {
	if m.Halted {
		return nil
	}
	in := Decode(m.Mem.Read(m.PC, InstBytes))
	if !in.Valid() {
		return ErrBadOpcode{PC: m.PC, Op: in.Op}
	}
	next := m.PC + InstBytes
	a, b := m.Regs[in.Rs1], m.Regs[in.Rs2]

	switch {
	case in.Op == OpHalt:
		m.Halted = true
	case in.Op == OpNop || in.Op == OpFence || in.Op == OpClflush:
		// No architectural effect.
	case in.Op.IsLoad():
		m.setReg(in.Rd, m.Mem.Read(a+uint64(int64(in.Imm)), in.Op.MemBytes()))
	case in.Op.IsStore():
		m.Mem.Write(a+uint64(int64(in.Imm)), in.Op.MemBytes(), b)
	case in.Op.IsCondBranch():
		if BranchTaken(in.Op, a, b) {
			next = m.PC + uint64(int64(in.Imm))
		}
	case in.Op == OpJal:
		m.setReg(in.Rd, m.PC+InstBytes)
		next = m.PC + uint64(int64(in.Imm))
	case in.Op == OpJalr:
		m.setReg(in.Rd, m.PC+InstBytes)
		next = a + uint64(int64(in.Imm))
	default:
		m.setReg(in.Rd, EvalALU(in, a, b, m.InstRet))
	}

	m.PC = next
	m.InstRet++
	return nil
}

func (m *Interp) setReg(rd uint8, v uint64) {
	if rd != 0 {
		m.Regs[rd] = v
	}
}

// Run steps until HALT or max instructions, whichever comes first. It
// returns the number of instructions retired by this call.
func (m *Interp) Run(max uint64) (uint64, error) {
	start := m.InstRet
	for !m.Halted && m.InstRet-start < max {
		if err := m.Step(); err != nil {
			return m.InstRet - start, err
		}
	}
	return m.InstRet - start, nil
}
