package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"conspec/internal/core"
	"conspec/internal/exp"
	"conspec/internal/exp/report"
	"conspec/internal/obs/trace"
	"conspec/internal/workload"
)

// Status is a job's lifecycle state.
type Status string

const (
	// StatusQueued: accepted, waiting for a worker slot.
	StatusQueued Status = "queued"
	// StatusRunning: executing on a worker.
	StatusRunning Status = "running"
	// StatusDone: completed; the result document is available. Individual
	// runs may still have failed — see JobStatus.FailedRuns and the result
	// document's errors array.
	StatusDone Status = "done"
	// StatusFailed: the job could not produce a result document.
	StatusFailed Status = "failed"
	// StatusCanceled: canceled by DELETE, client disconnect (with
	// cancel_on_disconnect), or a forced server stop.
	StatusCanceled Status = "canceled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCanceled
}

// JobSpec is a submission: which suite(s) to run and the per-run budget.
// The zero value of each budget field means the server-side default, so
// {"suite":"fig5"} is a complete submission.
type JobSpec struct {
	// Suite is one of conspec-bench's suite names, or "all".
	Suite string `json:"suite"`
	// Benches restricts suites to a benchmark subset (nil = all 22).
	Benches []string `json:"benches,omitempty"`
	// Defenses restricts the defenses suite to a subset of registered
	// backends, by canonical name or alias (nil = all registered).
	Defenses []string `json:"defenses,omitempty"`
	// Warmup and Measure are committed-instruction budgets per run.
	Warmup  uint64 `json:"warmup,omitempty"`
	Measure uint64 `json:"measure,omitempty"`
	// MetricsInterval samples the obs registry every N cycles of each
	// measured phase; the result document then carries time series.
	MetricsInterval uint64 `json:"metrics_interval,omitempty"`
	// SelfCheck audits pipeline/security invariants every N cycles.
	SelfCheck uint64 `json:"selfcheck,omitempty"`
	// RunTimeoutMS bounds each simulation's wall-clock time, overriding
	// the server default (0 = inherit).
	RunTimeoutMS int64 `json:"run_timeout_ms,omitempty"`
	// Workers caps this job's concurrent simulations below the server's
	// per-job allowance (0 = inherit).
	Workers int `json:"workers,omitempty"`
	// CancelOnDisconnect cancels the job when its last event-stream
	// watcher disconnects while it is still queued or running.
	CancelOnDisconnect bool `json:"cancel_on_disconnect,omitempty"`
	// FlightWindow arms each simulation's flight recorder with a dump
	// window of that many cycles: failed runs in the result document's
	// errors array then carry the last FlightWindow cycles of
	// microarchitectural events (0 = recorder off).
	FlightWindow uint64 `json:"flight_window,omitempty"`
}

// suiteIDs validates Suite and expands "all". Table5 is omitted from the
// expansion because it is the same evaluation as fig5; AddSuite fills both
// sections from either.
func (s JobSpec) suiteIDs() ([]exp.SuiteID, error) {
	if s.Suite == "all" {
		ids := make([]exp.SuiteID, 0, len(exp.Suites))
		for _, id := range exp.Suites {
			if id != exp.SuiteTable5 {
				ids = append(ids, id)
			}
		}
		return ids, nil
	}
	for _, id := range exp.Suites {
		if exp.SuiteID(s.Suite) == id {
			return []exp.SuiteID{id}, nil
		}
	}
	return nil, fmt.Errorf("unknown suite %q", s.Suite)
}

// validate rejects a spec the workers could not execute, so submission is
// the only place a client sees a 400 rather than a failed job.
func (s JobSpec) validate() error {
	if _, err := s.suiteIDs(); err != nil {
		return err
	}
	for _, name := range s.Benches {
		if _, ok := workload.ByName(name); !ok {
			return fmt.Errorf("unknown benchmark %q", name)
		}
	}
	for _, name := range s.Defenses {
		if _, err := core.LookupDefense(name); err != nil {
			return err
		}
	}
	if s.Workers < 0 {
		return fmt.Errorf("negative workers")
	}
	if s.RunTimeoutMS < 0 {
		return fmt.Errorf("negative run_timeout_ms")
	}
	return nil
}

// JobStatus is a job's wire representation. Result is populated only on
// single-job GETs once the job is done; list responses omit it.
type JobStatus struct {
	ID      string    `json:"id"`
	Spec    JobSpec   `json:"spec"`
	Status  Status    `json:"status"`
	Created time.Time `json:"created"`
	// Recovered marks a job replayed from the durable journal after a
	// server restart: it was accepted by a previous process and re-queued
	// on startup. Its simulations re-execute idempotently — runs that
	// completed before the crash are served from the disk cache.
	Recovered bool `json:"recovered,omitempty"`
	// Worker names the fleet worker the job is (or was) leased to. Empty in
	// standalone mode, where execution is in-process.
	Worker   string     `json:"worker,omitempty"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
	Error    string     `json:"error,omitempty"`
	// FailedRuns counts simulations excluded from the result's aggregates
	// (the result document's errors array has the details).
	FailedRuns int                 `json:"failed_runs,omitempty"`
	Engine     *report.EngineStats `json:"engine,omitempty"`
	Result     *report.Report      `json:"result,omitempty"`
}

// Event is one SSE frame: either an engine ProgressEvent forwarded from
// the job's Runner ("progress") or a job lifecycle transition ("state").
// Seq is the frame's position in the job's event history, so a client that
// reconnects can detect replayed frames.
type Event struct {
	Type string `json:"type"` // "state" | "progress"
	Job  string `json:"job"`
	Seq  int    `json:"seq"`
	// Epoch identifies the server process that recorded the event. A
	// reconnecting watcher compares it against the last stream's epoch: a
	// change means the server restarted and the job's event history began
	// anew (the job was recovered from the journal), so Seq comparisons
	// against the previous stream are meaningless and the client must
	// treat every frame as fresh.
	Epoch    string             `json:"epoch,omitempty"`
	Status   Status             `json:"status,omitempty"`
	Error    string             `json:"error,omitempty"`
	Progress *exp.ProgressEvent `json:"progress,omitempty"`
}

// Terminal reports whether the event announces a final job state (the
// frame after which the stream ends).
func (e Event) Terminal() bool {
	return e.Type == "state" && e.Status.Terminal()
}

// subEventBuf bounds each subscriber's channel. A subscriber that falls
// this far behind is disconnected (channel closed) rather than allowed to
// stall the worker; the client re-fetches via GET, which never misses
// state.
const subEventBuf = 1024

// job is the server-side job record: spec, lifecycle, result, and the
// event history with its subscribers.
type job struct {
	id    string
	spec  JobSpec
	epoch string // owning server process, stamped on every event
	// recovered marks a job re-queued from the journal after a restart.
	recovered bool

	mu         sync.Mutex
	status     Status
	worker     string // fleet worker holding/last holding the lease
	created    time.Time
	started    time.Time
	finished   time.Time
	err        string
	failedRuns int
	engine     *report.EngineStats
	result     *report.Report

	events  []Event
	subs    map[int]chan Event
	nextSub int

	// cancel is armed while running; cancelASAP marks a cancel request
	// received before (or without) a running context.
	cancel     context.CancelFunc
	cancelASAP bool

	// onAbandoned is called (outside mu) when the last subscriber leaves a
	// live job that asked for cancel_on_disconnect.
	onAbandoned func()

	// Tracer spans (owned by the server's tracer): span is the job's root,
	// queueSpan covers submission to worker pickup, execSpan covers the
	// suite execution and parents the engine's suite/run/phase spans.
	span, queueSpan, execSpan trace.SpanID

	done chan struct{} // closed at terminal state
}

func newJob(id string, spec JobSpec, epoch string) *job {
	j := &job{
		id:      id,
		spec:    spec,
		epoch:   epoch,
		status:  StatusQueued,
		created: time.Now().UTC(),
		subs:    make(map[int]chan Event),
		done:    make(chan struct{}),
	}
	j.publishLocked(Event{Type: "state", Status: StatusQueued})
	return j
}

// newRecoveredJob rebuilds a journaled job for re-execution after a
// restart: same id, original submission time, recovered flag set.
func newRecoveredJob(id string, spec JobSpec, epoch string, submitted time.Time) *job {
	j := &job{
		id:        id,
		spec:      spec,
		epoch:     epoch,
		recovered: true,
		status:    StatusQueued,
		created:   submitted,
		subs:      make(map[int]chan Event),
		done:      make(chan struct{}),
	}
	j.publishLocked(Event{Type: "state", Status: StatusQueued})
	return j
}

// publishLocked appends ev to the history and fans it out. Callers must
// NOT hold j.mu for the initial newJob call; every other caller must.
func (j *job) publishLocked(ev Event) {
	ev.Job = j.id
	ev.Epoch = j.epoch
	ev.Seq = len(j.events)
	j.events = append(j.events, ev)
	for id, ch := range j.subs {
		select {
		case ch <- ev:
		default:
			// Slow consumer: close and drop rather than block the worker.
			close(ch)
			delete(j.subs, id)
		}
	}
}

// progress forwards one engine event to subscribers (the Runner serializes
// OnEvent calls, but j.mu also guards against concurrent state publishes).
func (j *job) progress(ev exp.ProgressEvent) {
	j.mu.Lock()
	defer j.mu.Unlock()
	evCopy := ev
	j.publishLocked(Event{Type: "progress", Progress: &evCopy})
}

// subscribe returns a snapshot of the history and a channel of subsequent
// events. The returned cancel func must be called exactly once; it
// unregisters the subscriber and, for cancel_on_disconnect jobs, cancels
// the job when the last watcher leaves while it is still live.
func (j *job) subscribe() (history []Event, ch chan Event, unsub func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	history = append([]Event(nil), j.events...)
	ch = make(chan Event, subEventBuf)
	id := j.nextSub
	j.nextSub++
	j.subs[id] = ch
	return history, ch, func() {
		j.mu.Lock()
		if _, ok := j.subs[id]; ok {
			delete(j.subs, id)
		}
		abandoned := j.spec.CancelOnDisconnect && len(j.subs) == 0 && !j.status.Terminal()
		cb := j.onAbandoned
		j.mu.Unlock()
		if abandoned && cb != nil {
			cb()
		}
	}
}

// setWorker records which fleet worker holds (or held) the job's lease; a
// re-lease after a worker death overwrites it.
func (j *job) setWorker(worker string) {
	j.mu.Lock()
	j.worker = worker
	j.mu.Unlock()
}

// requestCancel cancels a live job: a running job's context is canceled, a
// queued job is marked so the worker skips it the moment it is dequeued.
// Terminal jobs are left untouched (returns false).
func (j *job) requestCancel() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.Terminal() {
		return false
	}
	j.cancelASAP = true
	if j.cancel != nil {
		j.cancel()
	}
	return true
}

// begin transitions queued -> running and arms the cancel func. It returns
// false — and does nothing — if the job was canceled while queued.
func (j *job) begin(cancel context.CancelFunc) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.cancelASAP || j.status != StatusQueued {
		return false
	}
	j.status = StatusRunning
	j.started = time.Now().UTC()
	j.cancel = cancel
	j.publishLocked(Event{Type: "state", Status: StatusRunning})
	return true
}

// finish records the terminal state and result, publishes the final state
// event, disconnects subscribers after the final frame, and closes done.
func (j *job) finish(status Status, rep *report.Report, engine *report.EngineStats, failedRuns int, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.status.Terminal() {
		return
	}
	j.status = status
	j.finished = time.Now().UTC()
	j.result = rep
	j.engine = engine
	j.failedRuns = failedRuns
	j.err = errMsg
	j.cancel = nil
	j.publishLocked(Event{Type: "state", Status: status, Error: errMsg})
	for id, ch := range j.subs {
		close(ch)
		delete(j.subs, id)
	}
	close(j.done)
}

// snapshot renders the wire form. withResult includes the (potentially
// large) result document.
func (j *job) snapshot(withResult bool) JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:         j.id,
		Spec:       j.spec,
		Status:     j.status,
		Created:    j.created,
		Recovered:  j.recovered,
		Worker:     j.worker,
		Error:      j.err,
		FailedRuns: j.failedRuns,
		Engine:     j.engine,
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
	}
	if withResult {
		st.Result = j.result
	}
	return st
}
