// Command tracecheck validates the two observability artifacts the
// trace-smoke gate produces, exiting non-zero with a diagnostic when one is
// malformed:
//
//	tracecheck -flight dump.json        validate a flight-recorder dump
//	tracecheck -chrome trace.json name...  require spans in a Chrome trace
//
// -flight checks the ring invariants from the outside: events parse, are
// cycle-ordered, lie inside the dump's window [cycle-window+1, cycle], and
// first_cycle/last_cycle bracket them exactly. -chrome parses a Chrome
// trace-event document and requires at least one complete ("ph":"X") span
// per given name prefix.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"conspec/internal/obs"
)

func main() {
	flight := flag.String("flight", "", "flight-recorder dump JSON to validate")
	chrome := flag.String("chrome", "", "Chrome trace-event JSON to validate (args: required span name prefixes)")
	flag.Parse()

	var err error
	switch {
	case *flight != "":
		err = checkFlight(*flight)
	case *chrome != "":
		err = checkChrome(*chrome, flag.Args())
	default:
		err = fmt.Errorf("usage: tracecheck -flight FILE | -chrome FILE [span-prefix...]")
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracecheck: %v\n", err)
		os.Exit(1)
	}
}

func checkFlight(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var d obs.FlightDump
	if err := json.NewDecoder(f).Decode(&d); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(d.Events) == 0 {
		return fmt.Errorf("%s: dump has no events", path)
	}
	if d.Window == 0 {
		return fmt.Errorf("%s: zero window", path)
	}
	horizon := uint64(0)
	if d.Cycle >= d.Window {
		horizon = d.Cycle - d.Window + 1
	}
	prev := uint64(0)
	for i, ev := range d.Events {
		if ev.Cycle < prev {
			return fmt.Errorf("%s: event %d at cycle %d out of order (prev %d)", path, i, ev.Cycle, prev)
		}
		if ev.Cycle < horizon || ev.Cycle > d.Cycle {
			return fmt.Errorf("%s: event %d at cycle %d outside window [%d, %d]", path, i, ev.Cycle, horizon, d.Cycle)
		}
		prev = ev.Cycle
	}
	if first := d.Events[0].Cycle; d.FirstCycle != first {
		return fmt.Errorf("%s: first_cycle %d != first event cycle %d", path, d.FirstCycle, first)
	}
	if last := d.Events[len(d.Events)-1].Cycle; d.LastCycle != last {
		return fmt.Errorf("%s: last_cycle %d != last event cycle %d", path, d.LastCycle, last)
	}
	fmt.Printf("tracecheck: %s ok (%d events over cycles [%d, %d], trip at %d)\n",
		path, len(d.Events), d.FirstCycle, d.LastCycle, d.Cycle)
	return nil
}

func checkChrome(path string, prefixes []string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(f).Decode(&doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("%s: no trace events", path)
	}
	for _, want := range prefixes {
		found := 0
		for _, ev := range doc.TraceEvents {
			if ev.Ph == "X" && strings.HasPrefix(ev.Name, want) {
				found++
			}
		}
		if found == 0 {
			return fmt.Errorf("%s: no complete span named %q*", path, want)
		}
	}
	fmt.Printf("tracecheck: %s ok (%d spans)\n", path, len(doc.TraceEvents))
	return nil
}
