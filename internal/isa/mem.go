package isa

// PageBits is the log2 of the simulated page size. Physical page numbers
// (PPNs) — the tags the paper's TPBuf compares — are addr >> PageBits.
const PageBits = 12

// PageSize is the simulated page size in bytes.
const PageSize = 1 << PageBits

// Memory is the architectural backing store seen by the reference
// interpreter and, behind the cache hierarchy, by the out-of-order core.
// Reads of never-written locations return zero. Accesses may straddle page
// boundaries; size must be 1..8.
type Memory interface {
	Read(addr uint64, size int) uint64
	Write(addr uint64, size int, val uint64)
}

// FlatMem is a sparse, page-granular implementation of Memory. The zero
// value is not usable; create one with NewFlatMem.
type FlatMem struct {
	pages map[uint64]*[PageSize]byte

	// One-entry page cache: accesses are overwhelmingly sequential or
	// within a working page, so remembering the last resident page turns
	// the common case from a map lookup into one compare.
	lastPPN  uint64
	lastPage *[PageSize]byte
}

// NewFlatMem returns an empty sparse memory.
func NewFlatMem() *FlatMem {
	return &FlatMem{pages: make(map[uint64]*[PageSize]byte)}
}

func (m *FlatMem) page(ppn uint64, alloc bool) *[PageSize]byte {
	if m.lastPage != nil && m.lastPPN == ppn {
		return m.lastPage
	}
	p := m.pages[ppn]
	if p == nil && alloc {
		p = new([PageSize]byte)
		m.pages[ppn] = p
	}
	if p != nil {
		m.lastPPN, m.lastPage = ppn, p
	}
	return p
}

// ByteAt returns the byte at addr (zero if the page was never written).
func (m *FlatMem) ByteAt(addr uint64) byte {
	p := m.page(addr>>PageBits, false)
	if p == nil {
		return 0
	}
	return p[addr&(PageSize-1)]
}

// SetByte stores one byte at addr.
func (m *FlatMem) SetByte(addr uint64, b byte) {
	m.page(addr>>PageBits, true)[addr&(PageSize-1)] = b
}

// Read returns size bytes at addr, little-endian, zero-extended to 64 bits.
func (m *FlatMem) Read(addr uint64, size int) uint64 {
	off := addr & (PageSize - 1)
	if off+uint64(size) <= PageSize {
		p := m.page(addr>>PageBits, false)
		if p == nil {
			return 0
		}
		var v uint64
		for i := 0; i < size; i++ {
			v |= uint64(p[off+uint64(i)]) << (8 * i)
		}
		return v
	}
	var v uint64
	for i := 0; i < size; i++ {
		v |= uint64(m.ByteAt(addr+uint64(i))) << (8 * i)
	}
	return v
}

// Write stores the low size bytes of val at addr, little-endian.
func (m *FlatMem) Write(addr uint64, size int, val uint64) {
	off := addr & (PageSize - 1)
	if off+uint64(size) <= PageSize {
		p := m.page(addr>>PageBits, true)
		for i := 0; i < size; i++ {
			p[off+uint64(i)] = byte(val >> (8 * i))
		}
		return
	}
	for i := 0; i < size; i++ {
		m.SetByte(addr+uint64(i), byte(val>>(8*i)))
	}
}

// SetBytes copies b into memory starting at addr.
func (m *FlatMem) SetBytes(addr uint64, b []byte) {
	for i, c := range b {
		m.SetByte(addr+uint64(i), c)
	}
}

// BytesAt copies n bytes starting at addr into a fresh slice.
func (m *FlatMem) BytesAt(addr uint64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = m.ByteAt(addr + uint64(i))
	}
	return b
}

// Pages returns the number of resident (written) pages; useful in tests.
func (m *FlatMem) Pages() int { return len(m.pages) }
