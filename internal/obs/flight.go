package obs

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// The flight recorder is the black box of the simulator: a fixed-size ring
// of the most recent microarchitectural events, recorded unconditionally
// while armed at zero allocations per cycle, and rendered into a structured
// dump only on a failure path (watchdog trip, audit violation, fault
// conviction). Unlike EventSink tracers — which carry disassembly strings
// and may allocate — flight events are six machine words with no pointers,
// so recording is a ring store and nothing more.

// FlightKind classifies one flight-recorder event.
type FlightKind uint8

const (
	// Per-instruction pipeline stages (Seq/PC identify the instruction).
	FlightFetch FlightKind = iota
	FlightDispatch
	FlightIssue
	FlightWriteback
	FlightCommit
	// FlightSquash: every in-flight instruction with sequence >= Seq was
	// squashed; Aux carries the redirect PC.
	FlightSquash
	// FlightSuspectOpen: the instruction at Seq was marked suspect and
	// blocked from unsafe execution (a suspect window opened).
	FlightSuspectOpen
	// FlightSuspectClose: the instruction's suspect window closed (its
	// speculation hazards resolved); Aux is the window length in cycles.
	FlightSuspectClose
	// FlightSecRowSet: the secmatrix row in Aux recorded new dependencies
	// for the instruction at Seq.
	FlightSecRowSet
	// FlightSecRowClear: the secmatrix row/column in Aux was cleared when
	// the instruction at Seq issued.
	FlightSecRowClear
	// FlightTPBufAlloc: LSQ entry Aux allocated a trace line in the TPBuf.
	FlightTPBufAlloc
	// FlightTPBufHit: a TPBuf safety query for the load at Seq matched an
	// S-Pattern (the refill was judged unsafe); Aux is the LSQ entry.
	FlightTPBufHit
	// FlightSkipSpan: the stall skipper fast-forwarded Aux cycles ending at
	// Cycle; no events can occur inside the span by construction.
	FlightSkipSpan

	flightKindCount
)

var flightKindNames = [flightKindCount]string{
	FlightFetch:        "fetch",
	FlightDispatch:     "dispatch",
	FlightIssue:        "issue",
	FlightWriteback:    "writeback",
	FlightCommit:       "commit",
	FlightSquash:       "squash",
	FlightSuspectOpen:  "suspect-open",
	FlightSuspectClose: "suspect-close",
	FlightSecRowSet:    "secrow-set",
	FlightSecRowClear:  "secrow-clear",
	FlightTPBufAlloc:   "tpbuf-alloc",
	FlightTPBufHit:     "tpbuf-hit",
	FlightSkipSpan:     "skip-span",
}

// String returns the dump label for the kind.
func (k FlightKind) String() string {
	if k < flightKindCount {
		return flightKindNames[k]
	}
	return "unknown"
}

// MarshalJSON encodes the kind as its string label so dumps are readable
// without a decoder ring.
func (k FlightKind) MarshalJSON() ([]byte, error) {
	return json.Marshal(k.String())
}

// UnmarshalJSON decodes a string label back into the kind.
func (k *FlightKind) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err != nil {
		return err
	}
	for i, name := range flightKindNames {
		if name == s {
			*k = FlightKind(i)
			return nil
		}
	}
	return fmt.Errorf("obs: unknown flight event kind %q", s)
}

// FlightEvent is one recorded microarchitectural event. The struct holds no
// pointers or strings: recording one is a ring store, and a full ring stays
// invisible to the garbage collector.
type FlightEvent struct {
	Cycle   uint64     `json:"cycle"`
	Kind    FlightKind `json:"kind"`
	Seq     uint64     `json:"seq,omitempty"`
	PC      uint64     `json:"pc,omitempty"`
	Aux     uint64     `json:"aux,omitempty"`
	Suspect bool       `json:"suspect,omitempty"`
}

// Default flight-recorder geometry: the dump window in cycles and the event
// ring capacity. 2048 cycles comfortably covers a watchdog window's tail
// (the default no-progress limit is 4096+64*memLat), and 16384 events bound
// the ring at ~0.75 MiB.
const (
	DefaultFlightWindow   = 2048
	DefaultFlightCapacity = 16384
)

// FlightRecorder is a fixed-capacity ring of FlightEvents. All methods are
// nil-safe: a nil *FlightRecorder records nothing, so call sites on the
// cycle loop need no guard beyond the method's own receiver check.
type FlightRecorder struct {
	window  uint64
	ring    []FlightEvent
	head    int // next write slot
	count   int // live events; saturates at len(ring)
	dropped uint64
}

// NewFlightRecorder builds a recorder whose dumps cover the last window
// cycles, backed by a ring of capacity events. Zero values select
// DefaultFlightWindow / DefaultFlightCapacity.
func NewFlightRecorder(window uint64, capacity int) *FlightRecorder {
	if window == 0 {
		window = DefaultFlightWindow
	}
	if capacity <= 0 {
		capacity = DefaultFlightCapacity
	}
	return &FlightRecorder{window: window, ring: make([]FlightEvent, capacity)}
}

// Window reports the dump window in cycles.
func (f *FlightRecorder) Window() uint64 {
	if f == nil {
		return 0
	}
	return f.window
}

// Reset empties the ring (events recorded before a stats reset describe the
// discarded warmup, not the measured run).
func (f *FlightRecorder) Reset() {
	if f == nil {
		return
	}
	f.head, f.count, f.dropped = 0, 0, 0
}

// Record appends one event, overwriting the oldest when the ring is full.
// It never allocates.
func (f *FlightRecorder) Record(cycle uint64, kind FlightKind, seq, pc, aux uint64, suspect bool) {
	if f == nil {
		return
	}
	if f.count == len(f.ring) {
		f.dropped++
	} else {
		f.count++
	}
	f.ring[f.head] = FlightEvent{Cycle: cycle, Kind: kind, Seq: seq, PC: pc, Aux: aux, Suspect: suspect}
	if f.head++; f.head == len(f.ring) {
		f.head = 0
	}
}

// FlightDump is the structured rendering of the ring at a failure point:
// every retained event from the last Window cycles before Cycle, oldest
// first, plus an O3PipeView tail reconstructed from the per-instruction
// stage events (loadable in Konata next to a full -pipeview trace).
type FlightDump struct {
	Cycle      uint64        `json:"cycle"`
	Window     uint64        `json:"window"`
	Capacity   int           `json:"capacity"`
	Dropped    uint64        `json:"dropped,omitempty"`
	FirstCycle uint64        `json:"first_cycle"`
	LastCycle  uint64        `json:"last_cycle"`
	Events     []FlightEvent `json:"events"`
	PipeView   string        `json:"pipeview,omitempty"`
}

// Dump renders the ring as of cycle now. Events older than the window are
// trimmed; the ring itself is untouched, so a recorder can be dumped more
// than once. Returns nil on a nil or empty recorder. Dump allocates — it
// runs on failure paths, never on the cycle loop.
func (f *FlightRecorder) Dump(now uint64) *FlightDump {
	if f == nil || f.count == 0 {
		return nil
	}
	start := f.head - f.count
	if start < 0 {
		start += len(f.ring)
	}
	var horizon uint64
	if now > f.window {
		horizon = now - f.window + 1
	}
	events := make([]FlightEvent, 0, f.count)
	for i := 0; i < f.count; i++ {
		ev := f.ring[(start+i)%len(f.ring)]
		if ev.Cycle < horizon {
			continue
		}
		events = append(events, ev)
	}
	d := &FlightDump{
		Cycle:    now,
		Window:   f.window,
		Capacity: len(f.ring),
		Dropped:  f.dropped,
		Events:   events,
		PipeView: flightPipeView(events),
	}
	if len(events) > 0 {
		d.FirstCycle = events[0].Cycle
		d.LastCycle = events[len(events)-1].Cycle
	}
	return d
}

// flightPipeView rebuilds an O3PipeView fragment from the per-instruction
// stage events in the dump window, using the same seven-line record format
// as PipeViewSink. Flight events carry no disassembly, so the label is the
// PC; instructions squashed inside the window retire with tick 0, and
// instructions still in flight at the dump point are rendered the same way
// (they never retired).
func flightPipeView(events []FlightEvent) string {
	type rec struct {
		pc                                uint64
		fetch, dispatch, issue, writeback uint64
		retire                            uint64
		suspect                           bool
	}
	recs := make(map[uint64]*rec)
	get := func(ev FlightEvent) *rec {
		r := recs[ev.Seq]
		if r == nil {
			r = &rec{pc: ev.PC}
			recs[ev.Seq] = r
		}
		if r.pc == 0 {
			r.pc = ev.PC
		}
		return r
	}
	for _, ev := range events {
		switch ev.Kind {
		case FlightFetch:
			get(ev).fetch = ev.Cycle
		case FlightDispatch:
			get(ev).dispatch = ev.Cycle
		case FlightIssue:
			r := get(ev)
			r.issue = ev.Cycle
			r.suspect = r.suspect || ev.Suspect
		case FlightWriteback:
			get(ev).writeback = ev.Cycle
		case FlightCommit:
			get(ev).retire = ev.Cycle
		}
	}
	if len(recs) == 0 {
		return ""
	}
	seqs := make([]uint64, 0, len(recs))
	for seq := range recs {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	var sb strings.Builder
	for _, seq := range seqs {
		r := recs[seq]
		disasm := fmt.Sprintf("pc=0x%x", r.pc)
		if r.suspect {
			disasm += " [suspect]"
		}
		fmt.Fprintf(&sb, "O3PipeView:fetch:%d:0x%016x:0:%d:%s\n", r.fetch, r.pc, seq, disasm)
		fmt.Fprintf(&sb, "O3PipeView:decode:%d\n", r.dispatch)
		fmt.Fprintf(&sb, "O3PipeView:rename:%d\n", r.dispatch)
		fmt.Fprintf(&sb, "O3PipeView:dispatch:%d\n", r.dispatch)
		fmt.Fprintf(&sb, "O3PipeView:issue:%d\n", r.issue)
		fmt.Fprintf(&sb, "O3PipeView:complete:%d\n", r.writeback)
		fmt.Fprintf(&sb, "O3PipeView:retire:%d:store:0\n", r.retire)
	}
	return sb.String()
}
