package mem

import "conspec/internal/isa"

// TLB models a fully-associative translation lookaside buffer with LRU
// replacement. The simulator uses identity mapping (PPN = VA >> PageBits),
// so the TLB only contributes timing (a page-walk penalty on miss) and the
// architectural requirement the paper leans on: "the access address must be
// checked and get physical page number (PPN) using TLB first" before a TPBuf
// entry's tag is valid.
type TLB struct {
	Name    string
	entries []line
	clock   uint64
	mru     int // index of the last entry that hit; checked first
	WalkLat int // page-walk penalty charged on a miss, in cycles
	Stats   CacheStats
}

// NewTLB returns a TLB with n entries and a walk latency.
func NewTLB(name string, n, walkLat int) *TLB {
	return &TLB{Name: name, entries: make([]line, n), WalkLat: walkLat}
}

// Translate returns the physical page number for addr and the extra latency
// (0 on a TLB hit, WalkLat on a miss). Misses refill the TLB.
func (t *TLB) Translate(addr uint64) (ppn uint64, extraLat int) {
	vpn := addr >> isa.PageBits
	t.Stats.Accesses++
	t.clock++
	if e := &t.entries[t.mru]; e.valid && e.tag == vpn {
		t.Stats.Hits++
		e.lru = t.clock
		return vpn, 0 // identity mapping
	}
	for i := range t.entries {
		e := &t.entries[i]
		if e.valid && e.tag == vpn {
			t.Stats.Hits++
			e.lru = t.clock
			t.mru = i
			return vpn, 0 // identity mapping
		}
	}
	// Miss: pick the victim — the last invalid entry if any, else min-LRU
	// (same preference order the combined hit/victim scan used to produce).
	victim := 0
	for i := range t.entries {
		e := &t.entries[i]
		if !e.valid {
			victim = i
		} else if t.entries[victim].valid && e.lru < t.entries[victim].lru {
			victim = i
		}
	}
	t.Stats.Misses++
	t.Stats.Refills++
	if t.entries[victim].valid {
		t.Stats.Evictions++
	}
	t.entries[victim] = line{tag: vpn, valid: true, lru: t.clock}
	t.mru = victim
	return vpn, t.WalkLat
}

// Probe reports whether the translation is cached, without side effects.
func (t *TLB) Probe(addr uint64) bool {
	vpn := addr >> isa.PageBits
	for i := range t.entries {
		if t.entries[i].valid && t.entries[i].tag == vpn {
			return true
		}
	}
	return false
}

// InvalidateAll empties the TLB.
func (t *TLB) InvalidateAll() {
	for i := range t.entries {
		t.entries[i] = line{}
	}
}
