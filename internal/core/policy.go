package core

// Mechanism selects which Conditional Speculation variant the core runs —
// the four experiment environments of §VI.A.
type Mechanism uint8

const (
	// Origin is the unprotected out-of-order baseline: no security
	// dependence tracking at all.
	Origin Mechanism = iota
	// Baseline marks security-dependent memory accesses and blocks every
	// suspect one until its dependences clear (the conservative policy).
	Baseline
	// CacheHit additionally lets suspect loads that HIT the L1 DCache
	// proceed: they cannot change cache content (§V.C).
	CacheHit
	// CacheHitTPBuf further consults the Trusted Pages Buffer on suspect
	// L1D misses: misses that do not complete an S-Pattern are safe and may
	// refill (§V.D).
	CacheHitTPBuf
)

// InvisiSpec is NOT part of the paper's proposal: it is the related-work
// comparator (§VIII) reimplemented for head-to-head evaluation. Speculative
// loads fetch their data WITHOUT refilling any cache level (as if into a
// per-load speculative buffer); the real, cache-visible access happens at
// commit. No dependence matrix is needed — invisibility, not blocking, is
// the defense. It closes every cache-content channel (including the
// non-shared-memory rows TPBuf misses) at the cost of losing speculative
// refill reuse.
const InvisiSpec Mechanism = 100

// Fence models the software mitigation of inserting an LFENCE after every
// conditional/indirect branch: no instruction younger than an unresolved
// branch may issue. It is the most conservative comparison point — total
// serialization of speculation past branches — and needs no dependence
// matrix because nothing speculative ever reaches the memory system.
const Fence Mechanism = 101

// DelayOnMiss is the delay-based related-work point (SoK taxonomy): suspect
// loads that miss the L1D are parked in place until their security
// dependences clear, instead of being discarded and re-issued through the
// scheduler. Hits proceed as under the cache-hit filter.
const DelayOnMiss Mechanism = 102

// Mechanisms lists the paper's variants in evaluation order (InvisiSpec,
// the related-work comparator, is deliberately not included).
var Mechanisms = []Mechanism{Origin, Baseline, CacheHit, CacheHitTPBuf}

// String names the mechanism as the paper does.
func (m Mechanism) String() string {
	switch m {
	case Origin:
		return "Origin"
	case Baseline:
		return "Baseline"
	case CacheHit:
		return "Cache-hit Filter"
	case CacheHitTPBuf:
		return "Cache-hit Filter + TPBuf Filter"
	case InvisiSpec:
		return "InvisiSpec-like (comparator)"
	case Fence:
		return "LFENCE-after-branch"
	case DelayOnMiss:
		return "Delay-on-Miss"
	default:
		return "mechanism(?)"
	}
}

// TracksDependence reports whether the mechanism maintains the security
// dependence matrix at all. InvisiSpec does not: it never blocks, it hides.
func (m Mechanism) TracksDependence() bool { return m != Origin && m != InvisiSpec }

// InvisibleLoads reports whether speculative loads bypass cache refills
// entirely and perform their visible access at commit.
func (m Mechanism) InvisibleLoads() bool { return m == InvisiSpec }

// BlocksSuspectAtIssue reports whether suspect memory instructions are held
// in the issue queue until their dependences clear (Baseline only; the
// filter mechanisms let them issue and decide at the L1D).
func (m Mechanism) BlocksSuspectAtIssue() bool { return m == Baseline }

// UsesCacheHitFilter reports whether suspect loads may proceed on L1D hits.
func (m Mechanism) UsesCacheHitFilter() bool {
	return m == CacheHit || m == CacheHitTPBuf
}

// UsesTPBuf reports whether suspect L1D misses are screened by the TPBuf
// before being blocked.
func (m Mechanism) UsesTPBuf() bool { return m == CacheHitTPBuf }

// FilterStats aggregates the per-run counters behind Table V.
type FilterStats struct {
	// SuspectIssued counts memory instructions that issued carrying the
	// suspect speculation flag.
	SuspectIssued uint64
	// SuspectL1Hits counts suspect issues that hit L1D (allowed by the
	// cache-hit filter).
	SuspectL1Hits uint64
	// SuspectL1Misses counts suspect issues that missed L1D.
	SuspectL1Misses uint64
	// BlockedEvents counts block decisions (a single instruction may be
	// blocked, re-issued and blocked again; each counts).
	BlockedEvents uint64
	// BlockedInsts counts distinct dynamic instructions blocked at least
	// once that later COMMITTED — the numerator of Table V's "Blocked Rate"
	// ("blocked speculative memory accesses in the correct execution path").
	BlockedInsts uint64
	// CommittedMemInsts is the denominator: memory instructions that
	// reached commit.
	CommittedMemInsts uint64
}

// SpecHitRate returns the cache hit rate of speculative (suspect) memory
// accesses — Table V's "Cache Hit Rate of Speculative Memory Access".
func (f FilterStats) SpecHitRate() float64 {
	if f.SuspectIssued == 0 {
		return 0
	}
	return float64(f.SuspectL1Hits) / float64(f.SuspectIssued)
}

// BlockedRate returns blocked committed memory instructions over all
// committed memory instructions — Table V's "Blocked Rate".
func (f FilterStats) BlockedRate() float64 {
	if f.CommittedMemInsts == 0 {
		return 0
	}
	return float64(f.BlockedInsts) / float64(f.CommittedMemInsts)
}
