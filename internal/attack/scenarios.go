package attack

import (
	"conspec/internal/asm"
	"conspec/internal/config"
	"conspec/internal/isa"
)

// Table IV row names.
const (
	ClassFlushReloadShared = "Flush+Reload, share data"
	ClassFlushFlushShared  = "Flush+Flush, share data"
	ClassEvictReloadShared = "Evict+Reload, share data"
	ClassPrimeProbeShared  = "Prime+Probe, share data"
	ClassPrimeProbePrivate = "Prime+Probe, no shared data"
	ClassEvictTimePrivate  = "Evict+Time, no shared data"
)

// Scenarios builds every attack for the given core configuration, in
// Table IV order followed by the extra variant coverage (V2, V4).
func Scenarios(cfg config.Core) []*Harness {
	return []*Harness{
		V1FlushReload(cfg),
		V1FlushFlush(cfg),
		V1EvictReload(cfg),
		SpectrePrime(cfg),
		PrimeProbeNonShared(cfg),
		EvictTimeNonShared(cfg),
		V2FlushReload(cfg),
		V4FlushReload(cfg),
		V11FlushReload(cfg),
		RSBFlushReload(cfg),
	}
}

// ByName returns the named scenario.
func ByName(cfg config.Core, name string) (*Harness, bool) {
	for _, h := range Scenarios(cfg) {
		if h.Name == name {
			return h, true
		}
	}
	return nil, false
}

func mustProg(b *asm.Builder) *asm.Program { return b.MustAssemble(codeBase) }

// V1FlushReload is the canonical Spectre V1 PoC: bounds-check bypass
// transmitting through a shared, page-strided probe array read back with
// Flush+Reload.
func V1FlushReload(cfg config.Core) *Harness {
	b := asm.New()
	b.Jmp("main")
	emitV1Gadget(b, pageShift)
	b.Bind("main")
	emitProloguePointers(b, array2Addr)
	emitOuterLoop(b, len(defaultSecret), func() {
		emitTrainV1(b, "v1fr", 4)
		emitFlushTransmission(b, "v1fr", pageShift)
		emitFlushBound(b)
		emitTriggerV1(b, "v1fr")
		emitProbeFlushReload(b, "v1fr", pageShift)
		emitStoreResult(b)
	})
	return &Harness{
		Name: "spectre-v1/flush+reload", Class: ClassFlushReloadShared,
		SharedMemory: true, Variant: "V1",
		Prog: mustProg(b), Secret: defaultSecret,
		seed:    seedCommon(defaultSecret),
		prewarm: []uint64{secretAddr},
	}
}

// V1FlushFlush swaps the receiver for Flush+Flush: the probe times CLFLUSH
// itself (flushing a present line is slower) and never reloads, leaving no
// footprint of its own.
func V1FlushFlush(cfg config.Core) *Harness {
	b := asm.New()
	b.Jmp("main")
	emitV1Gadget(b, pageShift)
	b.Bind("main")
	emitProloguePointers(b, array2Addr)
	emitOuterLoop(b, len(defaultSecret), func() {
		emitTrainV1(b, "v1ff", 4)
		emitFlushTransmission(b, "v1ff", pageShift)
		emitFlushBound(b)
		emitTriggerV1(b, "v1ff")
		emitProbeFlushFlush(b, "v1ff", pageShift)
		emitStoreResult(b)
	})
	return &Harness{
		Name: "spectre-v1/flush+flush", Class: ClassFlushFlushShared,
		SharedMemory: true, Variant: "V1",
		Prog: mustProg(b), Secret: defaultSecret,
		seed:    seedCommon(defaultSecret),
		prewarm: []uint64{secretAddr},
	}
}

// V1EvictReload evicts the probe lines with the attacker's own conflict
// buffer instead of CLFLUSH (the receiver for environments without a flush
// instruction), then reloads with timing.
func V1EvictReload(cfg config.Core) *Harness {
	sets := cfg.Mem.L1DSize / (cfg.Mem.L1DWays * cfg.Mem.LineBytes)
	b := asm.New()
	b.Jmp("main")
	emitV1Gadget(b, pageShift)
	b.Bind("main")
	emitProloguePointers(b, array2Addr)
	emitOuterLoop(b, len(defaultSecret), func() {
		emitTrainV1(b, "v1er", 4)
		emitEvictTransmission(b, "v1er", pageShift, sets, cfg.Mem.L1DWays)
		// The eviction sweep may have displaced the victim's secret line;
		// the victim touches its own secret again (it uses it routinely).
		b.Add(asm.T2, rA1, rDelta)
		b.Ld1(asm.T3, asm.T2, 0)
		emitFlushBound(b)
		emitTriggerV1(b, "v1er")
		emitProbeFlushReload(b, "v1er", pageShift)
		emitStoreResult(b)
	})
	return &Harness{
		Name: "spectre-v1/evict+reload", Class: ClassEvictReloadShared,
		SharedMemory: true, Variant: "V1",
		Prog: mustProg(b), Secret: defaultSecret,
		seed:    seedCommon(defaultSecret),
		prewarm: []uint64{secretAddr},
	}
}

// SpectrePrime is the Prime+Probe-over-shared-data variant: the V1 gadget
// transmits at line granularity into the shared probe page and the attacker
// reads the signal out of its own primed conflict lines.
func SpectrePrime(cfg config.Core) *Harness {
	sets := cfg.Mem.L1DSize / (cfg.Mem.L1DWays * cfg.Mem.LineBytes)
	b := asm.New()
	b.Jmp("main")
	emitV1Gadget(b, setShift)
	b.Bind("main")
	emitProloguePointers(b, array2Addr)
	emitOuterLoop(b, len(defaultSecret), func() {
		emitTrainV1(b, "sp", 4)
		emitPrime(b, "sp", sets, cfg.Mem.L1DWays)
		emitFlushBound(b)
		emitTriggerV1(b, "sp")
		emitProbePrime(b, "sp", sets, cfg.Mem.L1DWays)
		emitStoreResult(b)
	})
	return &Harness{
		Name: "spectre-prime/prime+probe", Class: ClassPrimeProbeShared,
		SharedMemory: true, Variant: "SpectrePrime",
		Prog: mustProg(b), Secret: defaultSecret,
		seed:    seedCommon(defaultSecret),
		prewarm: []uint64{secretAddr},
	}
}

// PrimeProbeNonShared transmits INTO THE SECRET'S OWN PAGE at line
// granularity — no shared memory anywhere — and receives with Prime+Probe.
// Because instruction A (the secret read) and instruction B (the transmit)
// touch the same physical page, the S-Pattern never forms and the TPBuf
// filter cannot block it: this is Table IV's first ✗ row.
func PrimeProbeNonShared(cfg config.Core) *Harness {
	sets := cfg.Mem.L1DSize / (cfg.Mem.L1DWays * cfg.Mem.LineBytes)
	b := asm.New()
	b.Jmp("main")
	emitV1Gadget(b, setShift)
	b.Bind("main")
	emitProloguePointers(b, secretAddr) // transmission base = the secret page
	emitOuterLoop(b, len(defaultSecret), func() {
		emitTrainV1(b, "ppn", 4)
		emitPrime(b, "ppn", sets, cfg.Mem.L1DWays)
		emitFlushBound(b)
		emitTriggerV1(b, "ppn")
		emitProbePrime(b, "ppn", sets, cfg.Mem.L1DWays)
		emitStoreResult(b)
	})
	return &Harness{
		Name: "v1-samepage/prime+probe", Class: ClassPrimeProbePrivate,
		SharedMemory: false, Variant: "V1",
		Prog: mustProg(b), Secret: defaultSecret,
		seed:    seedCommon(defaultSecret),
		prewarm: []uint64{secretAddr},
	}
}

// EvictTimeNonShared uses the same same-page transmitter but receives by
// timing whole victim invocations after evicting one candidate set per
// round — the Evict+Time receiver. Like Prime+Probe without sharing, it
// escapes the S-Pattern (Table IV's second ✗ row).
func EvictTimeNonShared(cfg config.Core) *Harness {
	sets := cfg.Mem.L1DSize / (cfg.Mem.L1DWays * cfg.Mem.LineBytes)
	b := asm.New()
	b.Jmp("main")
	emitV1Gadget(b, setShift)
	b.Bind("main")
	emitProloguePointers(b, secretAddr)
	emitOuterLoop(b, len(defaultSecret), func() {
		emitTrainV1(b, "et", 2)
		b.Li(rBestLat, 1<<30)
		b.Li(rBestVal, 0)
		b.Li(rGuess, 1)
		b.Bind("et_loop")
		emitEvictTimeRound(b, "et", sets, cfg.Mem.L1DWays) // latency -> T4
		b.Bgeu(asm.T4, rBestLat, "et_next")
		b.Add(rBestLat, asm.T4, asm.Zero)
		b.Add(rBestVal, rGuess, asm.Zero)
		b.Bind("et_next")
		b.Addi(rGuess, rGuess, 1)
		b.Li(rTmpB, probeEntries)
		b.Blt(rGuess, rTmpB, "et_loop")
		emitStoreResult(b)
	})
	return &Harness{
		Name: "v1-samepage/evict+time", Class: ClassEvictTimePrivate,
		SharedMemory: false, Variant: "V1",
		Prog: mustProg(b), Secret: defaultSecret,
		seed:    seedCommon(defaultSecret),
		prewarm: []uint64{secretAddr},
	}
}

// V11FlushReload is Spectre V1.1 (Kiriansky & Waldspurger): the
// branch-guarded instruction is a speculative STORE that plants a pointer
// to the secret in a slot the gadget then dereferences — store-to-load
// forwarding carries the attacker's planted address to the load inside the
// same speculation window. The paper groups V1.x under the Flush+Reload
// shared-data row; all three mechanisms must stop it.
func V11FlushReload(cfg config.Core) *Harness {
	b := asm.New()
	b.Jmp("main")

	// Gadget: if (x < bound) { slot = array1+x (OOB: attacker-chosen);
	//   *slot = &secret; p = *slotHome; v = *p; transmit(v); }
	// slotHome is a fixed victim pointer slot the store overwrites when x
	// is out of bounds. A4 carries the planted pointer (the secret's
	// address) in this register-level PoC; real V1.1 computes it in the
	// window the same way.
	b.Bind("gadget")
	b.Ld(rTmpA, rBound, 0)
	b.Bgeu(asm.A0, rTmpA, "gadget_out")
	b.Add(rTmpB, rA1, asm.A0) // OOB target: &slotHome when x = slotDelta
	b.St(asm.A4, rTmpB, 0)    // speculative store plants &secret[i]
	b.Add(asm.T2, rA1, asm.Zero)
	b.Ld(asm.T3, asm.T2, int32(slotHomeOff)) // forwarded from the STQ
	b.Ld1(asm.T4, asm.T3, 0)                 // A: dereference -> secret byte
	b.Shli(asm.T5, asm.T4, pageShift)
	b.Add(asm.T5, rA2, asm.T5)
	b.Ld1(asm.T6, asm.T5, 0) // B: transmission
	b.Bind("gadget_out")
	b.Ret()

	b.Bind("main")
	emitProloguePointers(b, array2Addr)
	emitOuterLoop(b, len(defaultSecret), func() {
		emitTrainV1(b, "v11", 4)
		emitFlushTransmission(b, "v11", pageShift)
		emitFlushBound(b)
		emitGHRNormalize(b, "v11_trig")
		// Plant: A4 = &secret[byteIdx]; x = slotHomeOff (out of bounds).
		b.Add(asm.A4, rA1, rDelta)
		b.Add(asm.A4, asm.A4, rByteIdx)
		b.Li(asm.A0, int32(slotHomeOff))
		b.Jal(asm.RA, "gadget")
		b.Fence()
		emitProbeFlushReload(b, "v11", pageShift)
		emitStoreResult(b)
	})
	return &Harness{
		Name: "spectre-v1.1/flush+reload", Class: ClassFlushReloadShared,
		SharedMemory: true, Variant: "V1.1",
		Prog: mustProg(b), Secret: defaultSecret,
		seed: func(m *isa.FlatMem) {
			seedCommon(defaultSecret)(m)
			// slotHome initially points at benign in-bounds data.
			m.Write(array1Addr+slotHomeOff, 8, array1Addr)
		},
		prewarm: []uint64{secretAddr, array1Addr + slotHomeOff},
	}
}

// slotHomeOff places the victim's pointer slot past the in-bounds region of
// array1 (so overwriting it requires the bounds-check bypass).
const slotHomeOff = 512

// V2FlushReload poisons the BTB through an attacker branch that aliases the
// victim's indirect call, steering speculation into a leak gadget while the
// real target (a benign function) is still being fetched from memory.
func V2FlushReload(cfg config.Core) *Harness {
	b := asm.New()
	b.Jmp("main")

	// The leak gadget: a straight-line V2 payload (no bounds check).
	// Returns through S6, the inner-call link register.
	b.Bind("v2gadget")
	b.Add(rTmpB, rA1, asm.A0)
	b.Ld1(asm.T2, rTmpB, 0) // A: array1[x] — the secret when x is OOB
	b.Shli(asm.T3, asm.T2, pageShift)
	b.Add(asm.T4, rA2, asm.T3)
	b.Ld1(asm.T5, asm.T4, 0) // B: transmission
	b.Jalr(asm.Zero, asm.S6, 0)

	// The victim's legitimate indirect-call target.
	b.Bind("benign")
	b.Jalr(asm.Zero, asm.S6, 0)

	// The victim: loads its function pointer (flushed by the attacker, so
	// the indirect jump waits on memory) and calls through it.
	b.Bind("victim")
	b.Ld(asm.T6, rFptr, 0)
	victimJalrIdx := b.Len()
	b.Jalr(asm.S6, asm.T6, 0)
	b.Ret()

	b.Bind("main")
	emitProloguePointers(b, array2Addr)
	b.Li64(rFptr, fptrAddr)
	emitOuterLoop(b, len(defaultSecret), func() {
		// Train: four calls through the aliasing trainer branch.
		for i := 0; i < 4; i++ {
			b.Li(asm.A0, 0)
			b.Jal(asm.RA, "trainer")
		}
		emitFlushTransmission(b, "v2", pageShift)
		b.Clflush(rFptr, 0) // delay the indirect jump's target load
		b.Fence()
		b.Add(asm.A0, rDelta, rByteIdx) // attacker-controlled argument
		b.Jal(asm.RA, "victim")
		b.Fence()
		emitProbeFlushReload(b, "v2", pageShift)
		emitStoreResult(b)
	})

	// The trainer lives exactly BTBEntries instruction slots after the
	// victim's indirect jump, so the untagged BTB cannot tell them apart.
	b.Bind("trainer")
	b.LiAddr(asm.T6, "v2gadget")
	b.PadTo(victimJalrIdx + cfg.Predictor.BTBEntries)
	b.Jalr(asm.S6, asm.T6, 0) // aliases the victim's BTB entry
	b.Ret()

	h := &Harness{
		Name: "spectre-v2/flush+reload", Class: ClassFlushReloadShared,
		SharedMemory: true, Variant: "V2",
		Prog: mustProg(b), Secret: defaultSecret,
		prewarm: []uint64{secretAddr},
	}
	benign := h.Prog.Symbols["benign"]
	h.seed = func(m *isa.FlatMem) {
		seedCommon(defaultSecret)(m)
		m.Write(fptrAddr, 8, benign)
	}
	return h
}

// V4FlushReload exploits speculative store bypass: the victim overwrites
// its slot with a benign value through a store whose address depends on a
// flushed word, and the younger reload speculatively reads the STALE secret
// and transmits it before the memory-order violation squashes everything.
func V4FlushReload(cfg config.Core) *Harness {
	b := asm.New()
	b.Jmp("main")

	b.Bind("victim4")
	b.Ld(rTmpA, rShifty, 0)           // flushed: the store's address is late
	b.Add(rTmpB, rSlot, rTmpA)        // rTmpA == 0, so rTmpB == slot
	b.St1(asm.Zero, rTmpB, 0)         // store benign 0 over the slot
	b.Ld1(asm.T2, rSlot, 0)           // speculates past the store: stale secret
	b.Shli(asm.T3, asm.T2, pageShift) //
	b.Add(asm.T4, rA2, asm.T3)        //
	b.Ld1(asm.T5, asm.T4, 0)          // B: transmission
	b.Ret()

	b.Bind("main")
	emitProloguePointers(b, array2Addr)
	b.Li64(rSlot, slotAddr)
	b.Li64(rShifty, shiftyAddr)
	b.Add(asm.T6, rA1, rDelta) // T6 = secretAddr
	emitOuterLoop(b, len(defaultSecret), func() {
		// The victim refreshes its slot with the secret byte (its private
		// working value) before the attacker-influenced overwrite runs.
		b.Add(asm.T2, asm.T6, rByteIdx)
		b.Ld1(asm.T3, asm.T2, 0)
		b.St1(asm.T3, rSlot, 0)
		b.Fence()
		emitFlushTransmission(b, "v4", pageShift)
		b.Clflush(rShifty, 0)
		b.Fence()
		b.Jal(asm.RA, "victim4")
		b.Fence()
		emitProbeFlushReload(b, "v4", pageShift)
		emitStoreResult(b)
	})
	return &Harness{
		Name: "spectre-v4/flush+reload", Class: ClassFlushReloadShared,
		SharedMemory: true, Variant: "V4",
		Prog: mustProg(b), Secret: defaultSecret,
		seed:    seedCommon(defaultSecret),
		prewarm: []uint64{secretAddr},
	}
}

// ExpectedDefense returns whether the paper's Table IV (extended with the
// registered comparison backends) says mechanism defends the scenario class
// ("✓") — Origin never defends; Baseline and Cache-hit defend everything;
// TPBuf defends shared-memory rows only. The comparison points: fence and
// delay-on-miss stop every branch-speculation channel, and InvisiSpec hides
// every cache-content channel, shared memory or not.
func ExpectedDefense(class string, sharedMemory bool, mechanism string) bool {
	switch mechanism {
	case "Origin":
		return false
	case "Baseline", "Cache-hit Filter":
		return true
	case "LFENCE-after-branch", "Delay-on-Miss", "InvisiSpec-like (comparator)":
		return true
	default: // Cache-hit Filter + TPBuf Filter
		return sharedMemory
	}
}

// V1TLBChannel is the V1 attack with a receiver that times raw reloads —
// DTLB walk included. The cache filters discard a suspect miss only AFTER
// translating it (the TPBuf needs the PPN), so the secret's page walk is
// already saved and the prober reads it as a ~30-cycle difference. This is
// the channel DESIGN.md §8 documents; the DTLBFilter extension closes it.
// It is NOT part of the paper's Table IV.
func V1TLBChannel(cfg config.Core) *Harness {
	b := asm.New()
	b.Jmp("main")
	emitV1Gadget(b, pageShift)
	b.Bind("main")
	emitProloguePointers(b, array2Addr)
	emitOuterLoop(b, len(defaultSecret), func() {
		emitTrainV1(b, "vtlb", 4)
		emitFlushTransmission(b, "vtlb", pageShift)
		emitFlushBound(b)
		emitTriggerV1(b, "vtlb")
		emitProbeFlushReloadRaw(b, "vtlb", pageShift)
		emitStoreResult(b)
	})
	return &Harness{
		Name: "spectre-v1/tlb-channel", Class: "DTLB refill (extension)",
		SharedMemory: true, Variant: "V1",
		Prog: mustProg(b), Secret: defaultSecret,
		seed:    seedCommon(defaultSecret),
		prewarm: []uint64{secretAddr},
	}
}

// RSBFlushReload is the Spectre-RSB / ret2spec variant (the paper's
// reference [35], "Spectre Returns!"): the victim function spills its
// return address to memory and reloads it before returning; the attacker
// flushes the spill slot, so the RET's target register arrives late and the
// return address stack predicts a return to the ORIGINAL call site — where
// the attacker has arranged a disclosure gadget to sit. The actual return
// address (redirected to a benign path) squashes everything, but the
// gadget's transmission has already fired.
func RSBFlushReload(cfg config.Core) *Harness {
	const stackSlot = 0x6A_0000
	b := asm.New()
	b.Jmp("main")

	// The victim function: spill RA, do its work, reload RA (slow when the
	// attacker flushed the slot), return. The attacker's in-process
	// "corruption" redirects the stored RA to the benign path.
	b.Bind("victim_fn")
	b.Li64(asm.S5, stackSlot)
	b.St(asm.RA, asm.S5, 0) // spill
	// (victim work would be here)
	b.LiAddr(asm.T6, "benign_path")
	b.St(asm.T6, asm.S5, 0) // the "overwritten" return address
	b.Clflush(asm.S5, 0)    // attacker-controlled eviction of the slot
	b.Fence()
	b.Ld(asm.RA, asm.S5, 0) // reload: misses to memory
	b.Ret()                 // RAS predicts the original call site below

	b.Bind("main")
	emitProloguePointers(b, array2Addr)
	emitOuterLoop(b, len(defaultSecret), func() {
		emitFlushTransmission(b, "rsb", pageShift)
		// A0 = &secret[i] - array1 style index for the gadget below.
		b.Add(asm.A0, rDelta, rByteIdx)
		b.Jal(asm.RA, "victim_fn")
		// The disclosure gadget sits AT the call's return point: it runs
		// only speculatively (the architectural return goes elsewhere).
		b.Add(rTmpB, rA1, asm.A0)
		b.Ld1(asm.T2, rTmpB, 0) // A: the secret
		b.Shli(asm.T3, asm.T2, pageShift)
		b.Add(asm.T4, rA2, asm.T3)
		b.Ld1(asm.T5, asm.T4, 0) // B: transmission
		b.Bind("benign_path")
		b.Fence()
		emitProbeFlushReload(b, "rsb", pageShift)
		emitStoreResult(b)
	})
	return &Harness{
		Name: "spectre-rsb/flush+reload", Class: ClassFlushReloadShared,
		SharedMemory: true, Variant: "RSB",
		Prog: mustProg(b), Secret: defaultSecret,
		seed:    seedCommon(defaultSecret),
		prewarm: []uint64{secretAddr},
	}
}
