// Package mem models the simulator's memory system: set-associative caches
// with true-LRU replacement, the secure replacement-update policies of the
// paper's §VII.A, TLBs, CLFLUSH, and a multi-level hierarchy (L1I/L1D/L2/L3
// plus main memory) with per-level hit latencies.
//
// The caches track tags and replacement state only; architectural data
// always lives in the backing isa.Memory. That split is exactly what the
// paper's threat model needs: the side channel is cache *content* (which
// lines are present) and access *timing*, both of which the tag arrays
// capture, while data correctness is the backing store's job.
package mem

import "fmt"

// Level identifies where in the hierarchy an access hit.
type Level int

// Hierarchy levels, ordered nearest-first.
const (
	LevelL1 Level = iota
	LevelL2
	LevelL3
	LevelMem
)

// String returns "L1", "L2", "L3" or "Mem".
func (l Level) String() string {
	switch l {
	case LevelL1:
		return "L1"
	case LevelL2:
		return "L2"
	case LevelL3:
		return "L3"
	default:
		return "Mem"
	}
}

// UpdatePolicy selects how a cache updates its replacement metadata on
// speculative (suspect) hits — the paper's §VII.A secure update policies.
type UpdatePolicy int

const (
	// UpdateAlways is the conventional policy: every hit refreshes LRU.
	UpdateAlways UpdatePolicy = iota
	// UpdateNoSpec skips the LRU refresh for suspect speculative hits
	// (the paper's "no update policy").
	UpdateNoSpec
	// UpdateDelayed tags suspect hits with a pending update that the
	// pipeline applies when the access becomes non-speculative
	// (the paper's "delayed update policy"). The cache exposes Touch for
	// the deferred refresh; the decision of *when* is the pipeline's.
	UpdateDelayed
)

// String names the policy.
func (p UpdatePolicy) String() string {
	switch p {
	case UpdateAlways:
		return "always"
	case UpdateNoSpec:
		return "no-update"
	case UpdateDelayed:
		return "delayed-update"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

type line struct {
	tag   uint64
	valid bool
	lru   uint64 // larger = more recently used
}

// CacheStats counts cache events. Hits+Misses == Accesses.
type CacheStats struct {
	Accesses  uint64
	Hits      uint64
	Misses    uint64
	Refills   uint64
	Evictions uint64
	Flushes   uint64
}

// HitRate returns Hits/Accesses, or 0 when there were no accesses.
func (s CacheStats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Accesses)
}

// Cache is one set-associative tag array with true-LRU replacement.
type Cache struct {
	Name     string
	HitLat   int // total latency of a hit at this level, in cycles
	sets     int
	ways     int
	lineBits uint
	setBits  uint // log2(sets); sets is a power of two
	setMask  uint64
	lines    []line // sets*ways, set-major
	clock    uint64 // LRU timestamp source
	repl     ReplacementKind
	plru     *plruState
	rng      xorshift64
	Stats    CacheStats
}

// NewCache builds a cache of size bytes, the given associativity and line
// size (both powers of two), with hit latency hitLat. It panics on invalid
// geometry; configurations are program constants, not user input.
func NewCache(name string, size, ways, lineBytes, hitLat int) *Cache {
	if size <= 0 || ways <= 0 || lineBytes <= 0 || size%(ways*lineBytes) != 0 {
		panic(fmt.Sprintf("mem: invalid cache geometry %s size=%d ways=%d line=%d",
			name, size, ways, lineBytes))
	}
	sets := size / (ways * lineBytes)
	if sets&(sets-1) != 0 || lineBytes&(lineBytes-1) != 0 {
		panic(fmt.Sprintf("mem: %s sets (%d) and line size (%d) must be powers of two",
			name, sets, lineBytes))
	}
	lb := uint(0)
	for 1<<lb < lineBytes {
		lb++
	}
	sb := uint(0)
	for 1<<sb < sets {
		sb++
	}
	return &Cache{
		Name:     name,
		HitLat:   hitLat,
		sets:     sets,
		ways:     ways,
		lineBits: lb,
		setBits:  sb,
		setMask:  uint64(sets - 1),
		lines:    make([]line, sets*ways),
		rng:      xorshift64(0x9E3779B97F4A7C15),
	}
}

// SetReplacement selects the victim policy; call before first use. Tree
// PLRU requires power-of-two associativity.
func (c *Cache) SetReplacement(k ReplacementKind) *Cache {
	c.repl = k
	if k == ReplTreePLRU {
		c.plru = newPLRU(c.sets, c.ways)
	}
	return c
}

// Replacement returns the active victim policy.
func (c *Cache) Replacement() ReplacementKind { return c.repl }

// touchWay updates replacement metadata for a use of the given way.
func (c *Cache) touchWay(set, way int) {
	switch c.repl {
	case ReplTreePLRU:
		c.plru.touch(set, way)
	case ReplRandom:
		// Random keeps no use-ordering metadata.
	default:
		c.clock++
		c.lines[set*c.ways+way].lru = c.clock
	}
}

// victimWay picks the way to evict in a full set.
func (c *Cache) victimWay(set int) int {
	switch c.repl {
	case ReplTreePLRU:
		return c.plru.victim(set)
	case ReplRandom:
		return int(c.rng.next() % uint64(c.ways))
	default:
		base := set * c.ways
		victim := 0
		for i := 1; i < c.ways; i++ {
			if c.lines[base+i].lru < c.lines[base+victim].lru {
				victim = i
			}
		}
		return victim
	}
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// LineBytes returns the line size in bytes.
func (c *Cache) LineBytes() int { return 1 << c.lineBits }

// SetIndex returns the set an address maps to; exposed so attack code can
// construct eviction sets the same way real attackers do.
func (c *Cache) SetIndex(addr uint64) int {
	return int((addr >> c.lineBits) & c.setMask)
}

func (c *Cache) set(addr uint64) []line {
	s := c.SetIndex(addr)
	return c.lines[s*c.ways : (s+1)*c.ways]
}

// tag extracts the tag bits above the set index. sets is a power of two, so
// the division the formula calls for is a shift.
func (c *Cache) tag(addr uint64) uint64 {
	return addr >> (c.lineBits + c.setBits)
}

// Probe reports whether addr's line is present, without touching any state
// or statistics. Defense logic calls it on every suspect access decision,
// so the set is resolved once up front rather than per way.
func (c *Cache) Probe(addr uint64) bool {
	tag := c.tag(addr)
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			return true
		}
	}
	return false
}

// Access looks up addr, counting the access. If the line is present it
// returns true, refreshing LRU metadata only when touch is true (touch=false
// models the §VII.A no-update / delayed-update paths). Missing lines are NOT
// refilled; callers decide whether the miss may refill (Refill) — that
// decision is the entire point of Conditional Speculation.
func (c *Cache) Access(addr uint64, touch bool) bool {
	c.Stats.Accesses++
	tag := c.tag(addr)
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.Stats.Hits++
			if touch {
				c.touchWay(c.SetIndex(addr), i)
			}
			return true
		}
	}
	c.Stats.Misses++
	return false
}

// Touch refreshes LRU state for addr if present (the deferred half of the
// delayed-update policy). It does not count as an access.
func (c *Cache) Touch(addr uint64) {
	tag := c.tag(addr)
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.touchWay(c.SetIndex(addr), i)
			return
		}
	}
}

// Refill inserts addr's line, evicting the LRU way if the set is full.
// It returns the evicted line's base address when an eviction happened.
// Refilling an already-present line just refreshes its LRU state.
func (c *Cache) Refill(addr uint64) (evicted uint64, didEvict bool) {
	tag := c.tag(addr)
	setIdx := c.SetIndex(addr)
	set := c.set(addr)
	victim := -1
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			c.touchWay(setIdx, i) // already present
			return 0, false
		}
		if !set[i].valid && victim < 0 {
			victim = i
		}
	}
	if victim < 0 {
		victim = c.victimWay(setIdx)
	}
	c.Stats.Refills++
	if set[victim].valid {
		c.Stats.Evictions++
		evicted = c.lineBase(addr, set[victim].tag)
		didEvict = true
	}
	c.clock++
	set[victim] = line{tag: tag, valid: true, lru: c.clock}
	c.touchWay(setIdx, victim)
	return evicted, didEvict
}

// lineBase reconstructs a line base address from a tag and the set index of
// a probe address mapping to the same set.
func (c *Cache) lineBase(probeAddr, tag uint64) uint64 {
	set := uint64(c.SetIndex(probeAddr))
	return (tag*uint64(c.sets) + set) << c.lineBits
}

// Flush invalidates addr's line if present, returning whether it was.
func (c *Cache) Flush(addr uint64) bool {
	tag := c.tag(addr)
	set := c.set(addr)
	for i := range set {
		if set[i].valid && set[i].tag == tag {
			set[i].valid = false
			c.Stats.Flushes++
			return true
		}
	}
	return false
}

// InvalidateAll empties the cache (used between experiment phases).
func (c *Cache) InvalidateAll() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
}

// Resident returns how many valid lines the cache currently holds.
func (c *Cache) Resident() int {
	n := 0
	for i := range c.lines {
		if c.lines[i].valid {
			n++
		}
	}
	return n
}
