package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// Sampler snapshots a Registry into an in-memory time series every interval
// cycles. Rows are stored in one flat []uint64 (stride = 1 cycle column +
// one column per metric): after the backing array reaches steady-state
// capacity, sampling performs no allocation, which is what lets the cycle
// loop keep its zero-alloc guarantee with sampling enabled. Export happens
// once, outside the measured loop.
type Sampler struct {
	reg      *Registry
	interval uint64
	stride   int
	rows     []uint64
	next     uint64
}

// NewSampler builds a sampler over reg. capacityRows preallocates the
// backing array (rows beyond it grow by append, which allocates — size it
// for the measured window when the zero-alloc property matters).
func NewSampler(reg *Registry, interval uint64, capacityRows int) *Sampler {
	if interval == 0 {
		panic("obs: sampler interval must be positive")
	}
	stride := 1 + len(reg.cols)
	if capacityRows < 0 {
		capacityRows = 0
	}
	return &Sampler{
		reg:      reg,
		interval: interval,
		stride:   stride,
		rows:     make([]uint64, 0, capacityRows*stride),
		next:     interval,
	}
}

// MaybeSample records one row if cycle has reached the next interval
// boundary. Nil-safe: a detached sampler is one predicted branch.
//
// Columns registered between construction and the first sample are picked
// up here (the stride re-derives while the series is empty); registering
// after sampling has begun would silently misalign every earlier row, so
// that panics instead.
func (s *Sampler) MaybeSample(cycle uint64) {
	if s == nil || cycle < s.next {
		return
	}
	if stride := 1 + s.reg.NumColumns(); stride != s.stride {
		if len(s.rows) != 0 {
			panic("obs: columns registered after sampling began")
		}
		s.stride = stride
	}
	s.next = cycle + s.interval
	s.rows = append(s.rows, cycle)
	s.rows = s.reg.AppendSample(s.rows)
}

// NextAt returns the cycle of the next sample boundary (the smallest cycle
// at which MaybeSample would record a row). A nil sampler never samples:
// NextAt returns ^uint64(0). The stall skipper uses this to split a skipped
// span at every boundary it jumps across, so the sampled series is
// byte-identical to stepping each cycle.
func (s *Sampler) NextAt() uint64 {
	if s == nil {
		return ^uint64(0)
	}
	return s.next
}

// Reset discards every sampled row (statistics-reset boundary) without
// releasing the backing array, and re-arms the next sample at the first
// interval boundary after cycle.
func (s *Sampler) Reset(cycle uint64) {
	if s == nil {
		return
	}
	s.rows = s.rows[:0]
	s.next = cycle + s.interval
}

// Len returns the number of sampled rows.
func (s *Sampler) Len() int {
	if s == nil {
		return 0
	}
	return len(s.rows) / s.stride
}

// Series materializes the sampled rows plus the final histogram
// distributions into an exportable document.
func (s *Sampler) Series() *Series {
	if s == nil {
		return nil
	}
	n := s.Len()
	out := &Series{
		Interval: s.interval,
		Columns:  append([]string{"cycle"}, s.reg.Columns()...),
		Rows:     make([][]uint64, n),
		Hists:    s.reg.Snapshots(),
	}
	for i := 0; i < n; i++ {
		out.Rows[i] = append([]uint64(nil), s.rows[i*s.stride:(i+1)*s.stride]...)
	}
	return out
}

// Series is an exported interval time series: one row per sample boundary
// (first column is the cycle number; counters are cumulative — consumers
// difference adjacent rows for per-interval rates) plus the end-of-run
// histogram distributions.
type Series struct {
	Interval uint64              `json:"interval"`
	Columns  []string            `json:"columns"`
	Rows     [][]uint64          `json:"rows"`
	Hists    []HistogramSnapshot `json:"histograms,omitempty"`
}

// WriteJSONL writes the series as JSON lines: a header object carrying the
// column names and interval, one JSON array per row, and a trailer object
// with the histogram distributions.
func (s *Series) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	header := struct {
		Interval uint64   `json:"interval"`
		Columns  []string `json:"columns"`
	}{s.Interval, s.Columns}
	if err := enc.Encode(header); err != nil {
		return err
	}
	for _, row := range s.Rows {
		if err := enc.Encode(row); err != nil {
			return err
		}
	}
	if len(s.Hists) > 0 {
		trailer := struct {
			Histograms []HistogramSnapshot `json:"histograms"`
		}{s.Hists}
		return enc.Encode(trailer)
	}
	return nil
}

// WriteCSV writes the series as CSV: a header row of column names followed
// by one record per sample. Histogram distributions are JSONL-only.
func (s *Series) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(s.Columns); err != nil {
		return err
	}
	rec := make([]string, len(s.Columns))
	for _, row := range s.Rows {
		if len(row) != len(s.Columns) {
			return fmt.Errorf("obs: row has %d values, want %d", len(row), len(s.Columns))
		}
		for i, v := range row {
			rec[i] = strconv.FormatUint(v, 10)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
