package attack

import (
	"fmt"

	"conspec/internal/asm"
	"conspec/internal/config"
	"conspec/internal/core"
	"conspec/internal/isa"
	"conspec/internal/pipeline"
)

// Cross-core attack layout: attacker and victim are SEPARATE PROGRAMS on
// separate cores sharing L2/L3 (pipeline.Duo). They communicate only
// through a mailbox word — the IPC a real service would expose — and the
// shared probe region that makes the Flush+Reload channel possible.
const (
	victimCodeBase = 0x2_0000
	mailboxAddr    = 0x78_0000
)

// CrossCoreOutcome extends Outcome with duo-level cycle counts.
type CrossCoreOutcome struct {
	Outcome
	VictimMechanism string
	DuoCycles       uint64
}

// buildCrossCoreVictim emits the victim service: an infinite mailbox loop
// that calls the classic V1 gadget with the request's argument. Only the
// victim's own requests train its branch predictor — the attacker can only
// choose WHAT requests to send, exactly the paper's cross-process setting.
func buildCrossCoreVictim() *asm.Program {
	b := asm.New()
	b.Li64(rA1, array1Addr)
	b.Li64(rA2, array2Addr)
	b.Li64(rBound, boundAddr)
	b.Li64(asm.S4, mailboxAddr)
	b.Bind("serve")
	b.Ld(asm.A0, asm.S4, 0)
	b.Beq(asm.A0, asm.Zero, "serve") // poll for a request
	b.Addi(asm.A0, asm.A0, -1)       // request value = x+1
	emitGHRNormalize(b, "vic")
	b.Jal(asm.RA, "gadget")
	b.St(asm.Zero, asm.S4, 0) // ack: mailbox = 0
	b.Jmp("serve")
	emitV1Gadget(b, pageShift)
	return b.MustAssemble(victimCodeBase)
}

// buildCrossCoreAttacker emits the client: per secret byte it sends benign
// requests (training the victim's predictor from across the core boundary
// through the victim's OWN execution), opens the window with global
// CLFLUSHes, sends the out-of-bounds request, and reads the shared-L2
// Flush+Reload channel.
func buildCrossCoreAttacker() *asm.Program {
	b := asm.New()
	b.Jmp("main")
	b.Bind("main")
	emitProloguePointers(b, array2Addr)
	b.Li64(asm.S4, mailboxAddr)

	// request sends value in T6 and spin-waits for the ack.
	emitRequest := func(id string) {
		spin := asm.Label("spin_" + id)
		b.St(asm.T6, asm.S4, 0)
		b.Bind(spin)
		b.Ld(asm.T5, asm.S4, 0)
		b.Bne(asm.T5, asm.Zero, spin)
	}

	emitOuterLoop(b, len(defaultSecret), func() {
		for i := 0; i < 4; i++ { // benign requests: x = 0
			b.Li(asm.T6, 1)
			emitRequest(fmt.Sprintf("b%d", i))
		}
		emitFlushTransmission(b, "xc", pageShift)
		emitFlushBound(b) // global: the victim's next bound load misses
		b.Add(asm.T6, rDelta, rByteIdx)
		b.Addi(asm.T6, asm.T6, 1) // evil request: x = secret offset
		emitRequest("evil")
		emitProbeFlushReload(b, "xc", pageShift)
		emitStoreResult(b)
	})
	return b.MustAssemble(codeBase)
}

// RunCrossCore runs the two-program attack with the VICTIM's core under the
// given mechanism (the attacker always runs unprotected — defenses protect
// the defended party only).
func RunCrossCore(cfg config.Core, victim core.Mechanism) CrossCoreOutcome {
	attackerProg := buildCrossCoreAttacker()
	victimProg := buildCrossCoreVictim()

	backing := isa.NewFlatMem()
	attackerProg.Load(backing)
	victimProg.Load(backing)
	seedCommon(defaultSecret)(backing)

	duo := pipeline.NewDuo(cfg,
		pipeline.SecurityConfig{Mechanism: core.Origin},
		pipeline.SecurityConfig{Mechanism: victim},
		backing)
	// The victim has used its secret recently: warm it in the VICTIM's L1.
	duo.B.Hierarchy().AccessData(secretAddr, false)
	duo.A.SetPC(attackerProg.Base)
	duo.B.SetPC(victimProg.Base)

	cycles := duo.Run(120_000_000, func(d *pipeline.Duo) bool { return d.A.Halted() })
	if !duo.A.Halted() {
		panic("attack: cross-core attacker did not finish")
	}

	recovered := make([]byte, len(defaultSecret))
	correct := 0
	for i := range defaultSecret {
		recovered[i] = backing.ByteAt(resultAddr + uint64(i))
		if recovered[i] == defaultSecret[i] {
			correct++
		}
	}
	return CrossCoreOutcome{
		Outcome: Outcome{
			Scenario:  "cross-core-v1/flush+reload",
			Mechanism: victim.String(),
			Recovered: recovered,
			Secret:    append([]byte(nil), defaultSecret...),
			Correct:   correct,
			Leaked:    correct*2 >= len(defaultSecret),
			Cycles:    cycles,
		},
		VictimMechanism: victim.String(),
		DuoCycles:       cycles,
	}
}
