// Command conspec-asm assembles and runs guest programs written in the
// conspec ISA's text syntax. It is the developer tool for writing new
// gadgets and microbenchmarks:
//
//	conspec-asm -disasm prog.s            # assemble, print the listing
//	conspec-asm -run prog.s               # run on the out-of-order core
//	conspec-asm -run prog.s -trace        # per-event pipeline trace
//	conspec-asm -run prog.s -mech tpbuf   # under a defense mechanism
//	conspec-asm -run prog.s -golden       # cross-check vs the interpreter
//
// The program runs until HALT or -maxcycles. Final architectural register
// state is printed (non-zero registers only).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"conspec/internal/asm"
	"conspec/internal/buildinfo"
	"conspec/internal/config"
	"conspec/internal/core"
	"conspec/internal/isa"
	"conspec/internal/obs"
	"conspec/internal/pipeline"
)

func main() {
	var (
		runFile   = flag.String("run", "", "assemble and run this file")
		disasm    = flag.String("disasm", "", "assemble this file and print the listing")
		base      = flag.Uint64("base", 0x1000, "load address")
		mech      = flag.String("mech", "origin", "defense: "+strings.Join(core.DefenseNames(), "|"))
		maxCycles = flag.Uint64("maxcycles", 10_000_000, "cycle budget")
		trace     = flag.Bool("trace", false, "print a pipeline event trace")
		pipeview  = flag.String("pipeview", "", "write an O3PipeView trace (Konata-compatible) to FILE")
		golden    = flag.Bool("golden", false, "cross-check against the reference interpreter")
		version   = flag.Bool("version", false, "print build information and exit")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Short("conspec-asm"))
		return
	}

	path := *runFile
	if path == "" {
		path = *disasm
	}
	if path == "" {
		fmt.Fprintln(os.Stderr, "usage: conspec-asm -run prog.s | -disasm prog.s")
		os.Exit(2)
	}
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	b, err := asm.ParseText(string(src))
	if err != nil {
		fatal(err)
	}
	prog, err := b.Assemble(*base)
	if err != nil {
		fatal(err)
	}

	if *disasm != "" {
		fmt.Print(prog.Listing())
		return
	}

	name := *mech
	if name == "" {
		name = "origin"
	}
	d, err := core.LookupDefense(name)
	if err != nil {
		fatal(err)
	}

	backing := isa.NewFlatMem()
	prog.Load(backing)
	cpu := pipeline.NewWithMemory(config.PaperCore(),
		pipeline.SecurityConfig{Mechanism: d.Mechanism(), SSBD: d.SSBD()}, backing)
	if *trace {
		cpu.AttachTracer(os.Stderr)
	}
	if *pipeview != "" {
		f, err := os.Create(*pipeview)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		cpu.AttachSink(obs.NewPipeViewSink(f))
	}
	cpu.SetPC(prog.Base)
	res := cpu.Run(*maxCycles)
	if err := cpu.FlushSinks(); err != nil {
		fatal(err)
	}

	if !cpu.Halted() {
		fmt.Fprintf(os.Stderr, "warning: no HALT within %d cycles\n", *maxCycles)
	}
	fmt.Printf("mechanism: %v\n", d.Title())
	fmt.Printf("committed: %d instructions in %d cycles (IPC %.2f)\n",
		res.Committed, res.Cycles, res.IPC())
	fmt.Printf("L1D hit  : %.1f%%   branch mispredict: %.1f%%   squashes: %d\n",
		100*res.L1D.HitRate(), 100*res.Branch.MispredictRate(), res.Squashes)
	fmt.Println("registers (non-zero):")
	for r := 1; r < isa.NumRegs; r++ {
		if v := cpu.ArchReg(r); v != 0 {
			fmt.Printf("  x%-2d = %#x (%d)\n", r, v, v)
		}
	}

	if *golden {
		ref := isa.NewFlatMem()
		prog.Load(ref)
		in := isa.NewInterp(ref, prog.Base)
		if _, err := in.Run(50_000_000); err != nil {
			fatal(err)
		}
		mismatches := 0
		for r := 1; r < isa.NumRegs; r++ {
			if cpu.ArchReg(r) != in.Regs[r] {
				fmt.Printf("GOLDEN MISMATCH x%d: pipeline %#x, interpreter %#x\n",
					r, cpu.ArchReg(r), in.Regs[r])
				mismatches++
			}
		}
		if mismatches == 0 {
			fmt.Println("golden check: architectural state matches the interpreter")
		} else {
			os.Exit(1)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
