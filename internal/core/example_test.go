package core_test

import (
	"fmt"

	"conspec/internal/core"
)

// The dispatch-time formula and issue-time hazard check of §V.B.
func ExampleSecMatrix() {
	m := core.NewSecMatrix(8, core.ScopeBranchMem)

	// The issue queue currently holds an unresolved branch in slot 0.
	queue := make([]core.EntryState, 8)
	queue[0] = core.EntryState{Valid: true, Class: core.ClassBranch}

	// A load dispatches into slot 3: its row records the dependence.
	m.OnDispatch(3, core.ClassMem, queue)
	fmt.Println("suspect at issue:", m.HasHazard(3))

	// The branch issues; its column clears at the next clock edge.
	m.OnIssue(0)
	m.ClockEdge()
	fmt.Println("suspect after clearance:", m.Peek(3))
	// Output:
	// suspect at issue: true
	// suspect after clearance: false
}

// Table II's decision for a suspect L1D miss.
func ExampleTPBuf() {
	t := core.NewTPBuf(4)

	// Entry 0: instruction A — suspect, completed, page 0x40.
	t.Allocate(0)
	t.SetSuspect(0, true)
	t.SetPPN(0, 0x40)
	t.SetWriteback(0)

	// Entry 1: instruction B, missing the L1D.
	t.Allocate(1)
	fmt.Println("same page safe:     ", t.QuerySafe(1, 0x40))
	fmt.Println("different page safe:", t.QuerySafe(1, 0x99))
	// Output:
	// same page safe:      true
	// different page safe: false
}
