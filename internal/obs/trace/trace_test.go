package trace

import (
	"bytes"
	"encoding/json"
	"testing"
)

// chromeDoc mirrors the Chrome trace-event JSON envelope for assertions.
type chromeDoc struct {
	TraceEvents []chromeEvent `json:"traceEvents"`
}

type chromeEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	TS   float64                `json:"ts"`
	Dur  float64                `json:"dur"`
	PID  int                    `json:"pid"`
	TID  int64                  `json:"tid"`
	Args map[string]interface{} `json:"args"`
}

func decodeChrome(t *testing.T, b []byte) chromeDoc {
	t.Helper()
	var doc chromeDoc
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, b)
	}
	return doc
}

func TestTracerExport(t *testing.T) {
	tr := New(16)
	root := tr.Begin(NoSpan, "suite:fig5")
	run := tr.Begin(root, "run:lbm")
	tr.Annotate(run, "mechanism", "cachehit")
	warm := tr.Begin(run, "warmup")
	tr.End(warm)
	meas := tr.Begin(run, "measure")
	tr.End(meas)
	tr.End(run)
	tr.End(root)

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	doc := decodeChrome(t, buf.Bytes())
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("exported %d events, want 4", len(doc.TraceEvents))
	}
	byName := map[string]chromeEvent{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			t.Errorf("event %q ph = %q, want X", ev.Name, ev.Ph)
		}
		byName[ev.Name] = ev
	}
	for _, name := range []string{"suite:fig5", "run:lbm", "warmup", "measure"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("missing span %q in export", name)
		}
	}
	// Children render on the parent's track and carry its ID.
	if got := byName["run:lbm"].TID; got != byName["suite:fig5"].TID {
		t.Errorf("run tid %d != suite tid %d", got, byName["suite:fig5"].TID)
	}
	if got := byName["warmup"].Args["parent_id"].(float64); SpanID(got) != run {
		t.Errorf("warmup parent_id = %v, want %d", got, run)
	}
	if got := byName["run:lbm"].Args["mechanism"]; got != "cachehit" {
		t.Errorf("annotation mechanism = %v, want cachehit", got)
	}
	// Phases nest inside the run span's time range.
	runEv, warmEv := byName["run:lbm"], byName["warmup"]
	if warmEv.TS < runEv.TS || warmEv.TS+warmEv.Dur > runEv.TS+runEv.Dur+0.001 {
		t.Errorf("warmup [%v,+%v] not nested in run [%v,+%v]",
			warmEv.TS, warmEv.Dur, runEv.TS, runEv.Dur)
	}
}

func TestTracerSubtree(t *testing.T) {
	tr := New(16)
	jobA := tr.Begin(NoSpan, "job:a")
	childA := tr.Begin(jobA, "execute")
	grandA := tr.Begin(childA, "run")
	jobB := tr.Begin(NoSpan, "job:b")
	tr.End(grandA)
	tr.End(childA)
	tr.End(jobA)
	tr.End(jobB)

	var buf bytes.Buffer
	if err := tr.WriteChromeSubtree(&buf, jobA); err != nil {
		t.Fatalf("WriteChromeSubtree: %v", err)
	}
	doc := decodeChrome(t, buf.Bytes())
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("subtree exported %d events, want 3", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev.Name == "job:b" {
			t.Fatal("subtree export leaked an unrelated root")
		}
	}
	if err := tr.WriteChromeSubtree(&buf, NoSpan); err == nil {
		t.Fatal("expected error exporting subtree of NoSpan")
	}
}

func TestTracerRingFullDropsNotGrows(t *testing.T) {
	tr := New(2)
	a := tr.Begin(NoSpan, "a")
	b := tr.Begin(a, "b")
	c := tr.Begin(b, "c") // ring full
	if c != NoSpan {
		t.Fatalf("overflow Begin = %d, want NoSpan", c)
	}
	tr.End(c) // no-op
	tr.Annotate(c, "k", "v")
	spans, dropped := tr.Stats()
	if spans != 2 || dropped == 0 {
		t.Fatalf("Stats = (%d, %d), want (2, >0)", spans, dropped)
	}
}

func TestTracerNilSafe(t *testing.T) {
	var tr *Tracer
	id := tr.Begin(NoSpan, "x")
	if id != NoSpan {
		t.Fatalf("nil Begin = %d, want NoSpan", id)
	}
	tr.Annotate(id, "k", "v")
	tr.End(id)
	if s, d := tr.Stats(); s != 0 || d != 0 {
		t.Fatalf("nil Stats = (%d, %d)", s, d)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("nil WriteChrome: %v", err)
	}
	decodeChrome(t, buf.Bytes())
}

func TestTracerOpenSpanExports(t *testing.T) {
	tr := New(4)
	id := tr.Begin(NoSpan, "open")
	_ = id
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	doc := decodeChrome(t, buf.Bytes())
	if len(doc.TraceEvents) != 1 || doc.TraceEvents[0].Dur < 0 {
		t.Fatalf("open span export = %+v", doc.TraceEvents)
	}
}

func TestTracerHotPathAllocs(t *testing.T) {
	tr := New(1 << 16)
	n := testing.AllocsPerRun(1000, func() {
		id := tr.Begin(NoSpan, "span")
		tr.Annotate(id, "k", "v")
		tr.End(id)
	})
	if n != 0 {
		t.Fatalf("Begin/Annotate/End allocate %v per span, want 0", n)
	}
}
