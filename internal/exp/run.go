// Package exp contains the experiment drivers that regenerate every table
// and figure of the paper's evaluation: Figure 5 (normalized performance),
// Table IV (security), Table V (filter analysis), Table VI (core
// sensitivity), the §VI.C(1) matrix-scope decomposition, the §VI.E hardware
// overhead model, the §VII.A LRU policies and the §VII.B ICache filter.
package exp

import (
	"conspec/internal/config"
	"conspec/internal/isa"
	"conspec/internal/mem"
	"conspec/internal/pipeline"
	"conspec/internal/workload"
)

// RunSpec parameterizes one measurement run, mirroring the paper's
// methodology of a warmup phase followed by cycle-accurate measurement.
type RunSpec struct {
	Core      config.Core
	Sec       pipeline.SecurityConfig
	L1DUpdate mem.UpdatePolicy
	// Warmup and Measure are committed-instruction budgets.
	Warmup  uint64
	Measure uint64
	// MaxCycles bounds each phase defensively (0 = a generous default).
	MaxCycles uint64
	// MetricsInterval, when non-zero, attaches an obs metric registry for
	// the measured phase and samples it every MetricsInterval cycles; the
	// returned Result carries the time series. Zero (the default) attaches
	// nothing: the simulation is byte-identical with and without the obs
	// subsystem compiled in.
	MetricsInterval uint64
}

// DefaultSpec returns the budget used by the standard experiment suites.
// The paper warms for 1B instructions and measures 1B on gem5; the same
// shape at laptop scale is tens of thousands of warmup instructions and a
// few hundred thousand measured.
func DefaultSpec() RunSpec {
	return RunSpec{
		Core:    config.PaperCore(),
		Warmup:  20_000,
		Measure: 120_000,
	}
}

// RunWorkload builds a fresh machine, loads w, warms up, resets statistics
// and measures. The returned Result covers only the measured phase.
func RunWorkload(w *workload.Workload, spec RunSpec) pipeline.Result {
	return RunWorkloadWith(w, spec, nil)
}

// RunWorkloadWith is RunWorkload with an observability hook: setup, when
// non-nil, runs on the freshly built machine before warmup — the place to
// attach event sinks (tracers, O3PipeView writers), which then see the whole
// run. When spec.MetricsInterval is non-zero a metric registry is attached
// after warmup, so its histograms and time series cover exactly the measured
// phase, and the returned Result carries the series.
func RunWorkloadWith(w *workload.Workload, spec RunSpec, setup func(*pipeline.CPU)) pipeline.Result {
	maxCycles := spec.MaxCycles
	if maxCycles == 0 {
		maxCycles = 400 * (spec.Warmup + spec.Measure)
	}
	cfg := spec.Core
	cfg.Mem.L1DUpdate = spec.L1DUpdate

	backing := isa.NewFlatMem()
	w.Load(backing)
	cpu := pipeline.NewWithMemory(cfg, spec.Sec, backing)
	if setup != nil {
		setup(cpu)
	}
	cpu.SetPC(w.Entry)
	cpu.RunFor(spec.Warmup, maxCycles)
	cpu.ResetStats()
	var m *pipeline.Metrics
	if spec.MetricsInterval > 0 {
		m = pipeline.NewMetrics()
		m.EnableSampling(spec.MetricsInterval, 4096)
		cpu.AttachMetrics(m)
	}
	res := cpu.RunFor(spec.Measure, maxCycles)
	if m != nil {
		res.Series = m.Series()
	}
	return res
}

// Overhead returns the runtime overhead of res relative to origin runs of
// the same instruction budget: cyclesRes/cyclesOrigin - 1.
func Overhead(origin, res pipeline.Result) float64 {
	if origin.Cycles == 0 {
		return 0
	}
	return float64(res.Cycles)/float64(origin.Cycles) - 1
}
