package obs

import (
	"strings"
	"testing"
)

func TestWritePrometheusScalars(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("jobs_done_total")
	g := r.Gauge("jobs_running")
	r.GaugeFunc(
		"weird.name-1", func() uint64 { return 9 })
	c.Add(3)
	g.Set(2)

	var sb strings.Builder
	if err := WritePrometheus(&sb, "conspec_served_", r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"conspec_served_jobs_done_total 3\n",
		"conspec_served_jobs_running 2\n",
		"conspec_served_weird_name_1 9\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusHistogram(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []uint64{1, 4, 16})
	for _, v := range []uint64{1, 2, 3, 20, 100} {
		h.Observe(v)
	}
	var sb strings.Builder
	if err := WritePrometheus(&sb, "x_", r); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"# TYPE x_lat histogram\n",
		"x_lat_bucket{le=\"1\"} 1\n",
		"x_lat_bucket{le=\"4\"} 3\n",
		"x_lat_bucket{le=\"16\"} 3\n",
		"x_lat_bucket{le=\"+Inf\"} 5\n",
		"x_lat_sum 126\n",
		"x_lat_count 5\n",
		"x_lat_max 100\n", // summary column kept: buckets don't carry max
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// The flat .count/.sum summary columns must not duplicate the
	// histogram series.
	if strings.Contains(out, "x_lat_count ") && strings.Count(out, "x_lat_count") > 1 {
		t.Errorf("duplicated count series:\n%s", out)
	}
	if strings.Contains(out, "x_lat_sum ") && strings.Count(out, "x_lat_sum") > 1 {
		t.Errorf("duplicated sum series:\n%s", out)
	}
}
