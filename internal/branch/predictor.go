// Package branch implements the front-end branch prediction substrate:
// a gshare direction predictor, an untagged direct-mapped branch target
// buffer (BTB), and a return address stack (RAS), with the checkpointing the
// out-of-order core needs to recover from mis-speculation.
//
// Trainability is a feature, not a bug: Spectre V1 trains the gshare
// counters and V2 poisons the BTB, exactly as the paper's threat model
// assumes, so the predictor deliberately has no thread or process isolation.
package branch

import "fmt"

// Kind selects the direction-prediction algorithm.
type Kind int

const (
	// KindGshare is the default: PC xor global history indexes one table
	// of 2-bit counters.
	KindGshare Kind = iota
	// KindBimodal indexes by PC only (no history): cheaper, weaker on
	// correlated branches.
	KindBimodal
	// KindTournament runs bimodal and gshare side by side with a
	// PC-indexed chooser, the classic Alpha 21264 arrangement.
	KindTournament
)

// String names the predictor kind.
func (k Kind) String() string {
	switch k {
	case KindBimodal:
		return "bimodal"
	case KindTournament:
		return "tournament"
	default:
		return "gshare"
	}
}

// Config sizes the predictor structures. All counts must be powers of two.
type Config struct {
	Kind       Kind
	PHTBits    int // log2 of pattern history table entries
	GHRBits    int // global history length
	BTBEntries int
	RASEntries int
}

// DefaultConfig returns a predictor sized like a mid-range core.
func DefaultConfig() Config {
	return Config{PHTBits: 12, GHRBits: 12, BTBEntries: 1024, RASEntries: 16}
}

// Checkpoint captures the speculative predictor state at a branch so it can
// be restored on mis-speculation. It is small by design: GHR value plus RAS
// top-of-stack pointer, the standard low-cost recovery scheme.
type Checkpoint struct {
	GHR    uint64
	RASTop int
}

// Stats counts prediction events.
type Stats struct {
	CondPredicts   uint64
	CondMispredict uint64
	BTBLookups     uint64
	BTBHits        uint64
	BTBMispredict  uint64
	RASPushes      uint64
	RASPops        uint64
}

// MispredictRate returns conditional mispredictions per prediction.
func (s Stats) MispredictRate() float64 {
	if s.CondPredicts == 0 {
		return 0
	}
	return float64(s.CondMispredict) / float64(s.CondPredicts)
}

type btbEntry struct {
	valid  bool
	target uint64
}

// Predictor bundles a direction predictor (gshare, bimodal or tournament)
// with a BTB and a RAS.
type Predictor struct {
	cfg     Config
	pht     []uint8 // 2-bit saturating counters (gshare-indexed)
	bim     []uint8 // 2-bit counters, PC-indexed (bimodal / tournament)
	choose  []uint8 // tournament chooser: >=2 selects gshare
	phtMask uint64
	ghr     uint64
	ghrMask uint64
	btb     []btbEntry
	btbMask uint64
	ras     []uint64
	rasTop  int // index of next push slot
	Stats   Stats
}

// New builds a predictor; it panics on non-power-of-two sizes (configs are
// program constants).
func New(cfg Config) *Predictor {
	if cfg.PHTBits <= 0 || cfg.PHTBits > 24 || cfg.GHRBits <= 0 || cfg.GHRBits > 64 {
		panic(fmt.Sprintf("branch: bad config %+v", cfg))
	}
	if cfg.BTBEntries&(cfg.BTBEntries-1) != 0 || cfg.BTBEntries == 0 {
		panic("branch: BTB entries must be a power of two")
	}
	if cfg.RASEntries <= 0 {
		panic("branch: RAS entries must be positive")
	}
	p := &Predictor{
		cfg:     cfg,
		pht:     make([]uint8, 1<<cfg.PHTBits),
		phtMask: uint64(1<<cfg.PHTBits) - 1,
		ghrMask: func() uint64 {
			if cfg.GHRBits >= 64 {
				return ^uint64(0)
			}
			return uint64(1<<cfg.GHRBits) - 1
		}(),
		btb:     make([]btbEntry, cfg.BTBEntries),
		btbMask: uint64(cfg.BTBEntries) - 1,
		ras:     make([]uint64, cfg.RASEntries),
	}
	for i := range p.pht {
		p.pht[i] = 1 // weakly not-taken
	}
	if cfg.Kind != KindGshare {
		p.bim = make([]uint8, 1<<cfg.PHTBits)
		for i := range p.bim {
			p.bim[i] = 1
		}
	}
	if cfg.Kind == KindTournament {
		p.choose = make([]uint8, 1<<cfg.PHTBits)
		for i := range p.choose {
			p.choose[i] = 2 // weakly prefer gshare
		}
	}
	return p
}

func (p *Predictor) phtIndex(pc uint64, ghr uint64) uint64 {
	return ((pc >> 3) ^ ghr) & p.phtMask
}

func (p *Predictor) bimIndex(pc uint64) uint64 { return (pc >> 3) & p.phtMask }

// direction computes the prediction for pc under the configured kind using
// the given history value, without updating any state.
func (p *Predictor) direction(pc, ghr uint64) bool {
	switch p.cfg.Kind {
	case KindBimodal:
		return p.bim[p.bimIndex(pc)] >= 2
	case KindTournament:
		if p.choose[p.bimIndex(pc)] >= 2 {
			return p.pht[p.phtIndex(pc, ghr)] >= 2
		}
		return p.bim[p.bimIndex(pc)] >= 2
	default:
		return p.pht[p.phtIndex(pc, ghr)] >= 2
	}
}

// Checkpoint returns the current speculative state for later recovery.
func (p *Predictor) Checkpoint() Checkpoint {
	return Checkpoint{GHR: p.ghr, RASTop: p.rasTop}
}

// Restore rewinds speculative state to a checkpoint (mis-speculation).
func (p *Predictor) Restore(cp Checkpoint) {
	p.ghr = cp.GHR
	p.rasTop = ((cp.RASTop % len(p.ras)) + len(p.ras)) % len(p.ras)
}

// PredictCond predicts a conditional branch at pc and speculatively shifts
// the prediction into the GHR. The caller should take a Checkpoint *before*
// calling this if it may need to recover.
func (p *Predictor) PredictCond(pc uint64) bool {
	p.Stats.CondPredicts++
	taken := p.direction(pc, p.ghr)
	p.pushGHR(taken)
	return taken
}

func (p *Predictor) pushGHR(taken bool) {
	bit := uint64(0)
	if taken {
		bit = 1
	}
	p.ghr = ((p.ghr << 1) | bit) & p.ghrMask
}

// ResolveCond trains the direction predictor with the branch outcome. cpGHR
// is the GHR value the prediction was made with (from the pre-prediction
// Checkpoint); mispredicted causes the misprediction counter to advance and
// is the caller's cue to Restore and re-steer.
func (p *Predictor) ResolveCond(pc uint64, taken, mispredicted bool, cpGHR uint64) {
	bump := func(c uint8) uint8 {
		if taken {
			if c < 3 {
				c++
			}
		} else if c > 0 {
			c--
		}
		return c
	}
	gi := p.phtIndex(pc, cpGHR)
	if p.cfg.Kind == KindTournament {
		bi := p.bimIndex(pc)
		gRight := (p.pht[gi] >= 2) == taken
		bRight := (p.bim[bi] >= 2) == taken
		ci := p.bimIndex(pc)
		if gRight && !bRight && p.choose[ci] < 3 {
			p.choose[ci]++
		}
		if bRight && !gRight && p.choose[ci] > 0 {
			p.choose[ci]--
		}
		p.pht[gi] = bump(p.pht[gi])
		p.bim[bi] = bump(p.bim[bi])
	} else if p.cfg.Kind == KindBimodal {
		bi := p.bimIndex(pc)
		p.bim[bi] = bump(p.bim[bi])
	} else {
		p.pht[gi] = bump(p.pht[gi])
	}
	if mispredicted {
		p.Stats.CondMispredict++
	}
}

// CorrectGHRAfterRestore shifts the actual branch outcome into the GHR; call
// after Restore when recovering from a conditional-branch misprediction.
func (p *Predictor) CorrectGHRAfterRestore(taken bool) { p.pushGHR(taken) }

// PredictTarget looks up the BTB for an indirect branch at pc.
func (p *Predictor) PredictTarget(pc uint64) (uint64, bool) {
	p.Stats.BTBLookups++
	e := p.btb[(pc>>3)&p.btbMask]
	if e.valid {
		p.Stats.BTBHits++
		return e.target, true
	}
	return 0, false
}

// ResolveTarget trains the BTB with an indirect branch's actual target.
func (p *Predictor) ResolveTarget(pc, target uint64, mispredicted bool) {
	p.btb[(pc>>3)&p.btbMask] = btbEntry{valid: true, target: target}
	if mispredicted {
		p.Stats.BTBMispredict++
	}
}

// PushRAS records a call's return address (speculatively, at predict time).
func (p *Predictor) PushRAS(retAddr uint64) {
	p.ras[p.rasTop] = retAddr
	p.rasTop = (p.rasTop + 1) % len(p.ras)
	p.Stats.RASPushes++
}

// PopRAS predicts a return target. ok is false when the stack has never
// been pushed at this position (cold).
func (p *Predictor) PopRAS() (uint64, bool) {
	p.rasTop = (p.rasTop - 1 + len(p.ras)) % len(p.ras)
	p.Stats.RASPops++
	v := p.ras[p.rasTop]
	return v, v != 0
}

// GHR exposes the current global history (for tests and diagnostics).
func (p *Predictor) GHR() uint64 { return p.ghr }

// CounterAt exposes a PHT counter (for tests and attack diagnostics).
func (p *Predictor) CounterAt(pc uint64, ghr uint64) uint8 {
	return p.pht[p.phtIndex(pc, ghr)]
}
