package main

import (
	"encoding/json"
	"fmt"
	"os"

	"conspec/internal/attack"
	"conspec/internal/core"
	"conspec/internal/exp"
)

// jsonFig5Row is one benchmark's normalized runtimes.
type jsonFig5Row struct {
	Benchmark string  `json:"benchmark"`
	Baseline  float64 `json:"baseline"`
	CacheHit  float64 `json:"cachehit"`
	TPBuf     float64 `json:"tpbuf"`
}

// jsonTable5Row is one benchmark's filter analysis.
type jsonTable5Row struct {
	Benchmark       string  `json:"benchmark"`
	L1HitRate       float64 `json:"l1_hit_rate"`
	BaselineBlocked float64 `json:"baseline_blocked_rate"`
	CacheHitBlocked float64 `json:"cachehit_blocked_rate"`
	SpecHitRate     float64 `json:"speculative_hit_rate"`
	TPBufBlocked    float64 `json:"tpbuf_blocked_rate"`
	MismatchRate    float64 `json:"spattern_mismatch_rate"`
}

// jsonAttackRow is one Table IV cell.
type jsonAttackRow struct {
	Scenario  string `json:"scenario"`
	Class     string `json:"class,omitempty"`
	Mechanism string `json:"mechanism"`
	Correct   int    `json:"bytes_recovered"`
	Total     int    `json:"bytes_total"`
	Leaked    bool   `json:"leaked"`
}

// jsonReport aggregates whatever suites ran.
type jsonReport struct {
	Fig5   []jsonFig5Row   `json:"fig5,omitempty"`
	Table5 []jsonTable5Row `json:"table5,omitempty"`
	Table4 []jsonAttackRow `json:"table4,omitempty"`
}

func fig5JSON(ev *exp.Evaluation) []jsonFig5Row {
	rows := make([]jsonFig5Row, 0, len(ev.Benches))
	for _, b := range ev.Benches {
		rows = append(rows, jsonFig5Row{
			Benchmark: b.Name,
			Baseline:  1 + b.Overhead(core.Baseline),
			CacheHit:  1 + b.Overhead(core.CacheHit),
			TPBuf:     1 + b.Overhead(core.CacheHitTPBuf),
		})
	}
	return rows
}

func table5JSON(ev *exp.Evaluation) []jsonTable5Row {
	rows := make([]jsonTable5Row, 0, len(ev.Benches))
	for _, b := range ev.Benches {
		rows = append(rows, jsonTable5Row{
			Benchmark:       b.Name,
			L1HitRate:       b.Results[core.Origin].L1D.HitRate(),
			BaselineBlocked: b.Results[core.Baseline].Filter.BlockedRate(),
			CacheHitBlocked: b.Results[core.CacheHit].Filter.BlockedRate(),
			SpecHitRate:     b.Results[core.CacheHit].Filter.SpecHitRate(),
			TPBufBlocked:    b.Results[core.CacheHitTPBuf].Filter.BlockedRate(),
			MismatchRate:    b.Results[core.CacheHitTPBuf].TPBuf.MismatchRate(),
		})
	}
	return rows
}

func table4JSON(outcomes []attack.Outcome) []jsonAttackRow {
	rows := make([]jsonAttackRow, 0, len(outcomes))
	for _, o := range outcomes {
		rows = append(rows, jsonAttackRow{
			Scenario:  o.Scenario,
			Mechanism: o.Mechanism,
			Correct:   o.Correct,
			Total:     len(o.Secret),
			Leaked:    o.Leaked,
		})
	}
	return rows
}

func emitJSON(r jsonReport) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
