package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBitMatrixBasics(t *testing.T) {
	m := NewBitMatrix(70) // spans two words per row
	if m.Size() != 70 {
		t.Fatalf("size %d", m.Size())
	}
	m.Set(3, 65)
	if !m.Get(3, 65) || m.Get(3, 64) || m.Get(65, 3) {
		t.Fatal("set/get mismatch")
	}
	if !m.RowAny(3) || m.RowAny(4) {
		t.Fatal("RowAny mismatch")
	}
	m.Clear(3, 65)
	if m.Get(3, 65) || m.RowAny(3) {
		t.Fatal("clear failed")
	}
}

func TestBitMatrixClearRowCol(t *testing.T) {
	m := NewBitMatrix(8)
	for j := 0; j < 8; j++ {
		m.Set(2, j)
		m.Set(j, 5)
	}
	m.ClearRow(2)
	if m.RowAny(2) {
		t.Fatal("row not cleared")
	}
	if !m.Get(3, 5) {
		t.Fatal("ClearRow must not affect other rows")
	}
	m.ClearCol(5)
	for i := 0; i < 8; i++ {
		if m.Get(i, 5) {
			t.Fatalf("col bit [%d,5] survived ClearCol", i)
		}
	}
}

func TestBitMatrixPopCountAndReset(t *testing.T) {
	m := NewBitMatrix(10)
	m.Set(0, 0)
	m.Set(9, 9)
	m.Set(5, 7)
	if m.PopCount() != 3 {
		t.Fatalf("popcount %d", m.PopCount())
	}
	m.Reset()
	if m.PopCount() != 0 {
		t.Fatal("reset failed")
	}
}

func TestBitMatrixOutOfRangePanics(t *testing.T) {
	m := NewBitMatrix(4)
	for _, f := range []func(){
		func() { m.Set(4, 0) },
		func() { m.Get(0, -1) },
		func() { m.ClearRow(7) },
		func() { m.ClearCol(4) },
		func() { NewBitMatrix(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

// refMatrix is a trivially-correct map-based model for differential testing.
type refMatrix map[[2]int]bool

func (r refMatrix) rowAny(i, n int) bool {
	for j := 0; j < n; j++ {
		if r[[2]int{i, j}] {
			return true
		}
	}
	return false
}

// TestBitMatrixDifferential drives random operations against both the
// packed implementation and the reference model.
func TestBitMatrixDifferential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(130)
		m := NewBitMatrix(n)
		ref := refMatrix{}
		for step := 0; step < 300; step++ {
			i, j := rng.Intn(n), rng.Intn(n)
			switch rng.Intn(5) {
			case 0:
				m.Set(i, j)
				ref[[2]int{i, j}] = true
			case 1:
				m.Clear(i, j)
				delete(ref, [2]int{i, j})
			case 2:
				m.ClearRow(i)
				for k := 0; k < n; k++ {
					delete(ref, [2]int{i, k})
				}
			case 3:
				m.ClearCol(j)
				for k := 0; k < n; k++ {
					delete(ref, [2]int{k, j})
				}
			case 4:
				if m.Get(i, j) != ref[[2]int{i, j}] {
					return false
				}
				if m.RowAny(i) != ref.rowAny(i, n) {
					return false
				}
			}
		}
		if m.PopCount() != len(ref) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
