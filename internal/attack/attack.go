// Package attack implements end-to-end Spectre proofs of concept inside the
// simulator: the transient-execution variants the paper defends against
// (V1, V2, V4 and SpectrePrime) paired with the six cache side-channel
// receivers of Table IV (Flush+Reload, Flush+Flush and Evict+Reload over
// shared memory; Prime+Probe over shared and non-shared memory; Evict+Time
// over non-shared memory).
//
// Every scenario is a complete guest program written in the conspec ISA: it
// trains the predictor or poisons the BTB, constructs the long speculation
// window with CLFLUSH-evicted operands, triggers the victim gadget, reads
// the side channel with RDCYCLE, and writes the bytes it recovered into a
// result buffer that the Go harness compares against the planted secret.
// Running the same program under each Conditional Speculation mechanism
// regenerates Table IV: the attack either recovers the secret (leak) or
// reads noise (defended).
package attack

import (
	"fmt"

	"conspec/internal/asm"
	"conspec/internal/config"
	"conspec/internal/isa"
	"conspec/internal/obs"
	"conspec/internal/pipeline"
)

// Memory layout shared by all scenarios. Regions sit on distinct pages (and
// distinct L1 sets where the receivers require it).
const (
	codeBase   = 0x1_0000
	boundAddr  = 0x20_0000  // victim bound variable (flushed to open the window)
	array1Addr = 0x30_0000  // victim array1 (in-bounds data)
	secretAddr = 0x40_0000  // the victim's secret bytes
	fptrAddr   = 0x50_0000  // V2: victim's function-pointer slot
	slotAddr   = 0x60_0000  // V4: victim's store/load slot
	shiftyAddr = 0x68_0000  // V4: flushed word delaying the store address
	resultAddr = 0x70_0000  // recovered bytes, one per secret byte
	array2Addr = 0x100_0000 // shared probe region (probeEntries pages)
	evictAddr  = 0x800_0000 // attacker's private eviction buffer
)

// probeEntries is the number of guess values per secret byte. Secrets are
// 6-bit (1..63); guess 0 is excluded because training traffic warms it.
const probeEntries = 64

// pageShift is the transmission stride for shared-memory receivers: one
// page per value, the Flush+Reload layout the paper's S-Pattern targets.
const pageShift = 12

// setShift is the transmission stride for set-granular receivers
// (Prime+Probe / Evict+Time): one L1 line per value.
const setShift = 6

// defaultSecret is planted in guest memory; all values are 6-bit, non-zero.
var defaultSecret = []byte{0x1F, 0x2A, 0x33, 0x04, 0x15, 0x26, 0x37, 0x08}

// Attacker-program register conventions (beyond the asm package roles).
const (
	rByteIdx = asm.S0      // current secret byte index
	rBestLat = asm.S1      // best probe latency so far
	rBestVal = asm.S2      // argbest guess
	rGuess   = asm.S3      // probe loop counter
	rA1      = asm.Reg(24) // array1 base
	rA2      = asm.Reg(25) // transmission base
	rBound   = asm.Reg(26) // bound address
	rRes     = asm.Reg(27) // result buffer base
	rDelta   = asm.Reg(4)  // secretAddr - array1Addr (OOB index offset)
	rEvict   = asm.Reg(16) // eviction buffer base
	rSlot    = asm.Reg(3)  // V4: slot address
	rShifty  = asm.Reg(17) // V4: delay-word address
	rFptr    = asm.A1      // V2: function-pointer slot address
	rTmpA    = asm.T0
	rTmpB    = asm.T1
)

// Harness bundles a ready-to-run attack program.
type Harness struct {
	Name string
	// Class is the Table IV row this scenario belongs to.
	Class string
	// SharedMemory distinguishes the first four Table IV rows from the
	// last two.
	SharedMemory bool
	// Variant names the transient-execution trigger (V1, V2, V4, Prime).
	Variant string

	Prog      *asm.Program
	Secret    []byte
	MaxCycles uint64

	// seed populates guest memory beyond the program image.
	seed func(m *isa.FlatMem)
	// prewarm lists data addresses warmed into the cache before the run
	// (the victim's recently-used lines, e.g. its secret).
	prewarm []uint64
}

// Outcome reports one attack run.
type Outcome struct {
	Scenario  string
	Mechanism string
	Recovered []byte
	Secret    []byte
	Correct   int
	// Leaked is true when at least half the secret bytes were recovered —
	// an attack with that hit rate trivially amplifies to full recovery.
	Leaked bool
	Cycles uint64
	// Flight is the machine's flight-recorder dump at the end of a LEAKED
	// run, when the caller armed a recorder via RunWith's setup hook (e.g.
	// a fault-injection campaign convicting a silently-disabled mechanism).
	// Nil for defended runs and unarmed machines.
	Flight *obs.FlightDump
}

func (o Outcome) String() string {
	status := "DEFENDED"
	if o.Leaked {
		status = "LEAKED"
	}
	return fmt.Sprintf("%-28s %-34s %d/%d bytes  %s",
		o.Scenario, o.Mechanism, o.Correct, len(o.Secret), status)
}

// Run executes the scenario on a fresh machine under the given mechanism.
func (h *Harness) Run(cfg config.Core, sec pipeline.SecurityConfig) Outcome {
	return h.RunWith(cfg, sec, nil)
}

// RunWith is Run with an observability hook: setup (if non-nil) receives
// the freshly built CPU before the first cycle, so callers can attach
// event sinks or a metric registry and watch the attack execute. Attached
// sinks are flushed before the outcome is read.
func (h *Harness) RunWith(cfg config.Core, sec pipeline.SecurityConfig,
	setup func(*pipeline.CPU)) Outcome {
	backing := isa.NewFlatMem()
	h.Prog.Load(backing)
	if h.seed != nil {
		h.seed(backing)
	}
	cpu := pipeline.NewWithMemory(cfg, sec, backing)
	if setup != nil {
		setup(cpu)
	}
	for _, addr := range h.prewarm {
		cpu.Hierarchy().AccessData(addr, false)
	}
	cpu.SetPC(h.Prog.Base)
	maxCycles := h.MaxCycles
	if maxCycles == 0 {
		maxCycles = 30_000_000
	}
	res := cpu.Run(maxCycles)
	if !cpu.Halted() {
		msg := fmt.Sprintf("attack %s: did not halt in %d cycles", h.Name, maxCycles)
		if err := cpu.Err(); err != nil {
			msg += ": " + err.Error()
		}
		panic(msg)
	}
	if err := cpu.FlushSinks(); err != nil {
		panic(fmt.Sprintf("attack %s: flushing sinks: %v", h.Name, err))
	}

	recovered := make([]byte, len(h.Secret))
	correct := 0
	for i := range h.Secret {
		recovered[i] = backing.ByteAt(resultAddr + uint64(i))
		if recovered[i] == h.Secret[i] {
			correct++
		}
	}
	out := Outcome{
		Scenario:  h.Name,
		Mechanism: sec.Mechanism.String(),
		Recovered: recovered,
		Secret:    append([]byte(nil), h.Secret...),
		Correct:   correct,
		Leaked:    correct*2 >= len(h.Secret),
		Cycles:    res.Cycles,
	}
	if out.Leaked {
		// A conviction: snapshot the armed recorder (nil when unarmed) so
		// the dump shows the machinery that let the secret out.
		out.Flight = cpu.DumpFlight()
	}
	return out
}

// seedCommon plants the victim data every scenario shares.
func seedCommon(secret []byte) func(m *isa.FlatMem) {
	return func(m *isa.FlatMem) {
		m.Write(boundAddr, 8, 16) // bound = 16: indices 0..15 are in bounds
		for i := 0; i < 16; i++ {
			m.SetByte(array1Addr+uint64(i), 0) // benign in-bounds data
		}
		m.SetBytes(secretAddr, secret)
	}
}

// --- shared emit helpers ----------------------------------------------------

// emitProloguePointers loads the base registers every scenario uses.
func emitProloguePointers(b *asm.Builder, transBase uint64) {
	b.Li64(rA1, array1Addr)
	b.Li64(rA2, transBase)
	b.Li64(rBound, boundAddr)
	b.Li64(rRes, resultAddr)
	b.Li64(rDelta, secretAddr-array1Addr)
	b.Li64(rEvict, evictAddr)
}

// emitGHRNormalize emits a run of always-taken branches that forces the
// global history register into a known state, so the victim branch's PHT
// index is identical during training and during the triggering call no
// matter what loop control ran in between.
func emitGHRNormalize(b *asm.Builder, id string) {
	for i := 0; i < 14; i++ {
		l := asm.Label(fmt.Sprintf("ghr_%s_%d", id, i))
		b.Beq(asm.Zero, asm.Zero, l)
		b.Bind(l)
	}
}

// emitV1Gadget emits the victim's bounds-check-bypass gadget:
//
//	if (x < bound) { y = trans[array1[x] << shift]; }
//
// x arrives in A0; the gadget returns through RA. The in-bounds (taken
// fall-through) path is the one the attacker trains.
func emitV1Gadget(b *asm.Builder, shift int32) {
	b.Bind("gadget")
	b.Ld(rTmpA, rBound, 0)              // bound (flushed before the trigger)
	b.Bgeu(asm.A0, rTmpA, "gadget_out") // x >= bound: skip
	b.Add(rTmpB, rA1, asm.A0)           //
	b.Ld1(asm.T2, rTmpB, 0)             // A: array1[x] — the secret when OOB
	b.Shli(asm.T3, asm.T2, shift)       //
	b.Add(asm.T4, rA2, asm.T3)          //
	b.Ld1(asm.T5, asm.T4, 0)            // B: the transmission
	b.Bind("gadget_out")
	b.Ret()
}

// emitTrainV1 emits n in-bounds calls to the gadget (x=0), each preceded by
// the GHR normalizer so the training hits the same PHT entry as the attack.
func emitTrainV1(b *asm.Builder, id string, n int) {
	for i := 0; i < n; i++ {
		emitGHRNormalize(b, fmt.Sprintf("%s_t%d", id, i))
		b.Li(asm.A0, 0)
		b.Jal(asm.RA, "gadget")
	}
}

// emitFlushBound flushes the bound variable so the victim branch's operand
// load misses all the way to memory, opening the speculation window.
func emitFlushBound(b *asm.Builder) {
	b.Clflush(rBound, 0)
	b.Fence()
}

// emitFlushTransmission flushes every line of the shared transmission
// region (stride = 1<<shift bytes per value).
func emitFlushTransmission(b *asm.Builder, id string, shift int32) {
	l := asm.Label("flush_" + id)
	b.Li(rGuess, 0)
	b.Bind(l)
	b.Shli(rTmpA, rGuess, shift)
	b.Add(rTmpA, rA2, rTmpA)
	b.Clflush(rTmpA, 0)
	b.Addi(rGuess, rGuess, 1)
	b.Li(rTmpB, probeEntries)
	b.Blt(rGuess, rTmpB, l)
	b.Fence()
}

// emitTriggerV1 emits the out-of-bounds call: x = (secretAddr - array1Addr)
// + byteIdx, so array1[x] IS the current secret byte.
func emitTriggerV1(b *asm.Builder, id string) {
	emitGHRNormalize(b, id+"_trig")
	b.Add(asm.A0, rDelta, rByteIdx)
	b.Jal(asm.RA, "gadget")
	b.Fence() // drain the squash before probing
}

// emitStoreResult writes the recovered byte for the current secret index.
func emitStoreResult(b *asm.Builder) {
	b.Add(rTmpA, rRes, rByteIdx)
	b.St1(rBestVal, rTmpA, 0)
}

// emitOuterLoop wraps body in the per-secret-byte loop and appends HALT.
// The whole sweep runs twice: the first pass trains every cold predictor
// structure (the GHR-normalizer branches included), and the second pass —
// whose recoveries overwrite the first's — reads the channel with the
// machine in steady state, exactly how real PoCs repeat until stable.
func emitOuterLoop(b *asm.Builder, secretLen int, body func()) {
	const rPass = asm.SP // x2 is unused by attack code otherwise
	b.Li(rPass, 0)
	b.Bind("outer_pass")
	b.Li(rByteIdx, 0)
	b.Bind("outer")
	body()
	b.Addi(rByteIdx, rByteIdx, 1)
	b.Li(rTmpA, int32(secretLen))
	b.Blt(rByteIdx, rTmpA, "outer")
	b.Addi(rPass, rPass, 1)
	b.Li(rTmpA, 2)
	b.Blt(rPass, rTmpA, "outer_pass")
	b.Halt()
}
