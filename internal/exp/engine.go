package exp

import (
	"context"
	"crypto/sha256"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"conspec/internal/attack"
	"conspec/internal/config"
	"conspec/internal/core"
	"conspec/internal/mem"
	"conspec/internal/obs"
	"conspec/internal/obs/trace"
	"conspec/internal/pipeline"
	"conspec/internal/workload"
)

// SuiteID names one experiment suite, matching cmd/conspec-bench's -suite
// flag values.
type SuiteID string

const (
	SuiteFig5     SuiteID = "fig5"
	SuiteTable4   SuiteID = "table4"
	SuiteTable5   SuiteID = "table5"
	SuiteTable6   SuiteID = "table6"
	SuiteScope    SuiteID = "scope"
	SuiteLRU      SuiteID = "lru"
	SuiteICache   SuiteID = "icache"
	SuiteDTLB     SuiteID = "dtlb"
	SuiteCompare  SuiteID = "compare"
	SuiteOverhead SuiteID = "overhead"
	SuiteDefenses SuiteID = "defenses"
)

// Suites lists every suite in cmd/conspec-bench's "-suite all" order.
// SuiteDefenses is deliberately last: "suite all" output for the suites
// before it is byte-identical to what pre-registry releases printed.
var Suites = []SuiteID{SuiteFig5, SuiteTable4, SuiteTable5, SuiteTable6,
	SuiteScope, SuiteLRU, SuiteICache, SuiteDTLB, SuiteCompare, SuiteOverhead,
	SuiteDefenses}

// EventPhase classifies a ProgressEvent.
type EventPhase string

const (
	// PhaseRunStart fires when a unique simulation begins executing.
	PhaseRunStart EventPhase = "run-start"
	// PhaseRunDone fires when a unique simulation finishes; Cycles and
	// Wall are populated.
	PhaseRunDone EventPhase = "run-done"
	// PhaseCached fires when a submitted run is served from the memo
	// cache (or coalesced onto an identical in-flight run).
	PhaseCached EventPhase = "cached"
	// PhaseBenchDone fires once per benchmark per suite after all of its
	// runs complete; Line carries the human-readable summary.
	PhaseBenchDone EventPhase = "bench-done"
	// PhaseError fires when a run fails or panics; Err is populated.
	PhaseError EventPhase = "error"
)

// ProgressEvent is the typed progress stream that replaces the old
// func(string) callbacks. Engine-level events (run-start/run-done/cached)
// describe individual simulations; suites additionally emit bench-done
// events whose Line field preserves the legacy per-benchmark text.
//
// The type is JSON-serializable (wire.go) with stable phase strings, so the
// serve layer's SSE stream and in-process callbacks share one shape.
type ProgressEvent struct {
	Suite     SuiteID
	Benchmark string
	Mechanism string
	Phase     EventPhase
	CacheHit  bool
	// Tier names the cache tier that served a PhaseCached event: TierMemory
	// for the in-process memo map, TierDisk for the persistent store.
	Tier   string
	Cycles uint64
	Wall   time.Duration
	Err    error
	// Line is the pre-rendered human-readable form (bench-done events
	// only); legacy func(string) adapters forward exactly these lines.
	Line string
}

// String renders the event for verbose logs.
func (e ProgressEvent) String() string {
	if e.Line != "" {
		return e.Line
	}
	switch e.Phase {
	case PhaseCached:
		return fmt.Sprintf("[%s] %s / %s: cache hit", e.Suite, e.Benchmark, e.Mechanism)
	case PhaseRunDone:
		return fmt.Sprintf("[%s] %s / %s: %d cycles in %v", e.Suite, e.Benchmark, e.Mechanism, e.Cycles, e.Wall)
	case PhaseError:
		return fmt.Sprintf("[%s] %s / %s: error: %v", e.Suite, e.Benchmark, e.Mechanism, e.Err)
	default:
		return fmt.Sprintf("[%s] %s / %s: %s", e.Suite, e.Benchmark, e.Mechanism, e.Phase)
	}
}

// Stats counts what the Runner's scheduler did.
type Stats struct {
	// Executed is the number of unique simulations actually run.
	Executed uint64
	// Hits is the number of submitted runs served from the in-memory memo
	// map, including duplicates coalesced onto an in-flight execution.
	Hits uint64
	// DiskHits is the number of submitted runs served from the persistent
	// ResultCache (zero unless RunnerOptions.Cache is set).
	DiskHits uint64
	// Panics counts runs whose goroutine panicked (isolated into errors).
	Panics uint64
	// SkippedCycles and SkipSpans aggregate the pipeline stall skipper's
	// meta-counters across every executed simulation: how many simulated
	// cycles were fast-forwarded rather than stepped, and in how many spans.
	SkippedCycles uint64
	SkipSpans     uint64
}

// Submitted returns the total number of runs requested from the Runner.
func (s Stats) Submitted() uint64 { return s.Executed + s.Hits + s.DiskHits }

// RunnerOptions configures a Runner.
type RunnerOptions struct {
	// Workers bounds concurrently executing simulations (default:
	// runtime.GOMAXPROCS(0), so a caller that lowers GOMAXPROCS — e.g. a
	// single-threaded profiling run — gets a matching pool, unlike
	// NumCPU which ignores the cap).
	Workers int
	// OnEvent, when non-nil, receives every ProgressEvent. Calls are
	// serialized; the callback must not call back into the Runner.
	OnEvent func(ProgressEvent)
	// Timeout, when non-zero, bounds each simulation's wall-clock time; a
	// run that exceeds it is recorded as a failed run (Errors) and its
	// suite continues without it.
	Timeout time.Duration
	// Cache, when non-nil, is the persistent result tier consulted under
	// the in-memory memo map: a run missing both tiers executes once and
	// is written back, so identical runs are served from disk across
	// processes and restarts.
	Cache ResultCache
	// Trace, when non-nil, receives a span per suite ("suite:<id>"), per
	// submitted run ("run:<bench>", annotated with the mechanism and — for
	// cached submissions — the serving cache tier), and per execution phase
	// ("warmup"/"measure"). Spans from runs submitted outside RunSuite
	// parent to TraceRoot.
	Trace *trace.Tracer
	// TraceRoot, when non-zero, parents every suite span (e.g. an enclosing
	// request or job span owned by the caller).
	TraceRoot trace.SpanID
}

// RunError records one failed run: a simulation that deadlocked, failed a
// self-check audit, exceeded its cycle cap or wall-clock timeout, or
// panicked. Suites degrade gracefully — the failed run is excluded from
// their aggregates and reported here instead.
type RunError struct {
	Suite     SuiteID
	Benchmark string
	Mechanism string
	// Outcome is the pipeline outcome string ("deadlock", "audit-failed",
	// "cycle-cap-exceeded"), or "timeout" / "panic" / "generate" for
	// failures outside the cycle loop.
	Outcome string
	Err     error
	// Flight carries the run's flight-recorder dump when the failed spec
	// had one armed (RunSpec.FlightWindow): the last K cycles of
	// microarchitectural events leading up to the failure.
	Flight *obs.FlightDump
}

// Runner is the unified experiment engine: every suite submits
// RunSpec-keyed jobs to it, identical runs across suites are deduplicated
// through a memoization cache, and unique runs execute once on a bounded
// worker pool.
type Runner struct {
	workers   int
	onEvent   func(ProgressEvent)
	timeout   time.Duration
	store     ResultCache
	trace     *trace.Tracer
	traceRoot trace.SpanID
	sem       chan struct{}

	evMu sync.Mutex // serializes onEvent

	mu         sync.Mutex
	cache      map[runKey]*cacheEntry
	stats      Stats
	errors     []RunError
	suiteSpans map[SuiteID]trace.SpanID // open suite spans, for run-span parentage

	// testExec, when non-nil, replaces RunWorkload (test hook for panic
	// and determinism tests).
	testExec func(w *workload.Workload, spec RunSpec) pipeline.Result
}

type cacheEntry struct {
	done chan struct{} // closed when res/err are final
	res  pipeline.Result
	err  error
}

// NewRunner builds a Runner.
func NewRunner(opts RunnerOptions) *Runner {
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Runner{
		workers:    workers,
		onEvent:    opts.OnEvent,
		timeout:    opts.Timeout,
		store:      opts.Cache,
		trace:      opts.Trace,
		traceRoot:  opts.TraceRoot,
		sem:        make(chan struct{}, workers),
		cache:      make(map[runKey]*cacheEntry),
		suiteSpans: make(map[SuiteID]trace.SpanID),
	}
}

// suiteSpan returns the parent for a run span submitted under suite:
// the suite's open span when RunSuite is driving it, TraceRoot otherwise.
func (r *Runner) suiteSpan(suite SuiteID) trace.SpanID {
	if r.trace == nil {
		return trace.NoSpan
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if sp, ok := r.suiteSpans[suite]; ok {
		return sp
	}
	return r.traceRoot
}

// beginRunSpan opens the per-submission span under the suite span and
// stamps the identifying annotations every run shares.
func (r *Runner) beginRunSpan(suite SuiteID, p workload.Profile, spec RunSpec) trace.SpanID {
	if r.trace == nil {
		return trace.NoSpan
	}
	sp := r.trace.Begin(r.suiteSpan(suite), "run:"+p.Name)
	r.trace.Annotate(sp, "mechanism", mechLabel(spec))
	return sp
}

// Stats returns a snapshot of the scheduler counters.
func (r *Runner) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Errors returns every failed run recorded so far, in completion order.
// Callers use it after the suites finish to summarize what was skipped and
// choose a non-zero exit status.
func (r *Runner) Errors() []RunError {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]RunError(nil), r.errors...)
}

// recordError logs a failed run for end-of-suite reporting and emits the
// matching PhaseError event.
func (r *Runner) recordError(e RunError) {
	r.mu.Lock()
	r.errors = append(r.errors, e)
	r.mu.Unlock()
	r.emit(ProgressEvent{Suite: e.Suite, Benchmark: e.Benchmark,
		Mechanism: e.Mechanism, Phase: PhaseError, Err: e.Err})
}

func (r *Runner) emit(ev ProgressEvent) {
	if r.onEvent == nil {
		return
	}
	r.evMu.Lock()
	r.onEvent(ev)
	r.evMu.Unlock()
}

// runKey is the deterministic memoization key: a hash over every input that
// determines a simulation's result.
type runKey [sha256.Size]byte

// keyOf canonicalizes (core config, security config, L1D update policy,
// workload profile, instruction budgets) into the cache key. The full
// Profile — not just its name — participates, because suites derive
// variants that share a name (e.g. the fence-recompiled kernels in the
// defense comparison). Observation-only fields (FlightWindow) are
// deliberately excluded: they cannot change a result, so armed and unarmed
// submissions deduplicate onto one execution.
func keyOf(p workload.Profile, spec RunSpec) runKey {
	h := sha256.New()
	fmt.Fprintf(h, "core=%#v\nsec=%#v\nl1d=%d\nwarmup=%d\nmeasure=%d\nmaxcycles=%d\nmetricsinterval=%d\nselfcheck=%d\nworkload=%#v\n",
		spec.Core, spec.Sec, spec.L1DUpdate, spec.Warmup, spec.Measure, spec.MaxCycles, spec.MetricsInterval, spec.SelfCheck, p)
	var k runKey
	h.Sum(k[:0])
	return k
}

// mechLabel renders the run's security configuration for progress events.
func mechLabel(spec RunSpec) string {
	l := spec.Sec.Mechanism.String()
	if spec.Sec.Scope == core.ScopeBranchOnly {
		l += " (branch-only)"
	}
	if spec.Sec.ICacheFilter {
		l += " +icache-filter"
	}
	if spec.Sec.DTLBFilter {
		l += " +dtlb-filter"
	}
	switch spec.L1DUpdate {
	case mem.UpdateNoSpec:
		l += " [no-update]"
	case mem.UpdateDelayed:
		l += " [delayed-update]"
	}
	return l
}

// run executes (or recalls) one simulation. Identical submissions share a
// single execution: the first caller runs it, concurrent duplicates wait on
// the same entry, later duplicates return instantly from the memory tier.
// With a persistent store configured, the owner of a memory miss consults
// it before paying for a simulation, and writes completed runs back. Failed
// or cancelled runs are not memoized in either tier.
func (r *Runner) run(ctx context.Context, suite SuiteID, p workload.Profile, spec RunSpec) (pipeline.Result, error) {
	if err := ctx.Err(); err != nil {
		return pipeline.Result{}, err
	}
	key := keyOf(p, spec)
	r.mu.Lock()
	if e, ok := r.cache[key]; ok {
		r.stats.Hits++
		r.mu.Unlock()
		sp := r.beginRunSpan(suite, p, spec)
		r.trace.Annotate(sp, "cache", "hit")
		r.trace.Annotate(sp, "tier", TierMemory)
		r.trace.End(sp)
		r.emit(ProgressEvent{Suite: suite, Benchmark: p.Name,
			Mechanism: mechLabel(spec), Phase: PhaseCached, CacheHit: true,
			Tier: TierMemory})
		select {
		case <-e.done:
			return e.res, e.err
		case <-ctx.Done():
			return pipeline.Result{}, ctx.Err()
		}
	}
	e := &cacheEntry{done: make(chan struct{})}
	r.cache[key] = e
	r.mu.Unlock()

	// Memory miss: this goroutine owns the entry. The persistent tier is
	// read outside r.mu — duplicates wait on e.done as usual — and a hit
	// fills the entry so later submissions are memory hits.
	if r.store != nil {
		if res, ok := r.store.Get(key.String()); ok {
			e.res = res
			r.mu.Lock()
			r.stats.DiskHits++
			r.mu.Unlock()
			sp := r.beginRunSpan(suite, p, spec)
			r.trace.Annotate(sp, "cache", "hit")
			r.trace.Annotate(sp, "tier", TierDisk)
			r.trace.End(sp)
			r.emit(ProgressEvent{Suite: suite, Benchmark: p.Name,
				Mechanism: mechLabel(spec), Phase: PhaseCached, CacheHit: true,
				Tier: TierDisk})
			close(e.done)
			return e.res, nil
		}
	}

	e.res, e.err = r.execute(ctx, suite, p, spec)

	r.mu.Lock()
	if e.err != nil {
		delete(r.cache, key)
	} else {
		r.stats.Executed++
	}
	r.mu.Unlock()
	if e.err == nil && r.store != nil {
		r.store.Put(key.String(), e.res)
	}
	close(e.done)
	return e.res, e.err
}

// execute performs one unique simulation on the worker pool, isolating
// panics into errors. A run whose Outcome is not a completed one — the
// watchdog tripped, a self-check sweep failed, or the cycle cap was hit —
// comes back as an error too, so run() keeps it out of the memo cache and
// the suites keep it out of their aggregates; the failure is recorded for
// Errors(). Engine-wide cancellation is the one failure that is NOT
// recorded: it is the caller's doing, not the run's.
func (r *Runner) execute(ctx context.Context, suite SuiteID, p workload.Profile, spec RunSpec) (res pipeline.Result, err error) {
	select {
	case r.sem <- struct{}{}:
	case <-ctx.Done():
		return pipeline.Result{}, ctx.Err()
	}
	defer func() { <-r.sem }()
	sp := r.beginRunSpan(suite, p, spec)
	defer func() {
		if err != nil {
			r.trace.Annotate(sp, "error", err.Error())
		}
		r.trace.End(sp)
	}()
	defer func() {
		if rec := recover(); rec != nil {
			r.mu.Lock()
			r.stats.Panics++
			r.mu.Unlock()
			err = fmt.Errorf("exp: run %s / %s panicked: %v", p.Name, mechLabel(spec), rec)
			r.recordError(RunError{Suite: suite, Benchmark: p.Name,
				Mechanism: mechLabel(spec), Outcome: "panic", Err: err})
		}
	}()
	r.emit(ProgressEvent{Suite: suite, Benchmark: p.Name,
		Mechanism: mechLabel(spec), Phase: PhaseRunStart})
	start := time.Now()
	w, err := workload.Generate(p)
	if err != nil {
		r.recordError(RunError{Suite: suite, Benchmark: p.Name,
			Mechanism: mechLabel(spec), Outcome: "generate", Err: err})
		return pipeline.Result{}, err
	}
	if r.testExec != nil {
		res = r.testExec(w, spec)
	} else {
		runCtx := ctx
		if r.timeout > 0 {
			var cancel context.CancelFunc
			runCtx, cancel = context.WithTimeout(ctx, r.timeout)
			defer cancel()
		}
		var onPhase func(string) func()
		if r.trace != nil && sp != trace.NoSpan {
			onPhase = func(name string) func() {
				ph := r.trace.Begin(sp, name)
				return func() { r.trace.End(ph) }
			}
		}
		var runErr error
		res, runErr = RunWorkloadObs(runCtx, w, spec, nil, onPhase)
		r.mu.Lock()
		r.stats.SkippedCycles += res.Stages.SkippedCycles
		r.stats.SkipSpans += res.Stages.SkipSpans
		r.mu.Unlock()
		if runErr != nil {
			if ctx.Err() != nil {
				return pipeline.Result{}, ctx.Err()
			}
			err = fmt.Errorf("exp: run %s / %s timed out after %v (%d cycles simulated)",
				p.Name, mechLabel(spec), r.timeout, res.Cycles)
			r.recordError(RunError{Suite: suite, Benchmark: p.Name,
				Mechanism: mechLabel(spec), Outcome: "timeout", Err: err})
			return res, err
		}
	}
	switch res.Outcome {
	case pipeline.OutcomeDeadlock, pipeline.OutcomeAuditFailed, pipeline.OutcomeCycleCapExceeded:
		msg := fmt.Sprintf("exp: run %s / %s ended %s after %d cycles",
			p.Name, mechLabel(spec), res.Outcome, res.Cycles)
		if res.Diag != "" {
			msg += "\n" + res.Diag
		}
		err = errors.New(msg)
		r.recordError(RunError{Suite: suite, Benchmark: p.Name,
			Mechanism: mechLabel(spec), Outcome: res.Outcome.String(), Err: err,
			Flight: res.Flight})
		return res, err
	}
	r.emit(ProgressEvent{Suite: suite, Benchmark: p.Name,
		Mechanism: mechLabel(spec), Phase: PhaseRunDone,
		Cycles: res.Cycles, Wall: time.Since(start)})
	return res, nil
}

// suiteErr filters one run's error at suite level: a failed run is already
// recorded for Errors(), so the suite continues without it (nil); only
// engine-wide cancellation propagates and aborts the suite.
func suiteErr(ctx context.Context, err error) error {
	if err == nil || ctx.Err() != nil {
		return err
	}
	return nil
}

// resolveProfiles maps benchmark names (all 22 when nil) to profiles.
func resolveProfiles(names []string) ([]workload.Profile, error) {
	if names == nil {
		names = workload.Names()
	}
	profiles := make([]workload.Profile, len(names))
	for i, name := range names {
		p, ok := workload.ByName(name)
		if !ok {
			return nil, fmt.Errorf("exp: unknown benchmark %q", name)
		}
		profiles[i] = p
	}
	return profiles, nil
}

// eachProfile fans fn out across profiles, one goroutine per profile (the
// Runner's worker pool bounds actual simulation concurrency), joins them
// all, and returns ctx.Err() on cancellation or the first fn error
// otherwise. All goroutines have exited by the time it returns.
func (r *Runner) eachProfile(ctx context.Context, profiles []workload.Profile, fn func(p workload.Profile) error) error {
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for _, p := range profiles {
		wg.Add(1)
		go func(p workload.Profile) {
			defer wg.Done()
			if ctx.Err() != nil {
				return
			}
			if err := fn(p); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return err
	}
	return firstErr
}

// Options parameterizes RunSuite.
type Options struct {
	// Spec is the per-run budget and machine; the zero value means
	// DefaultSpec().
	Spec RunSpec
	// Benches restricts suites to a benchmark subset (nil = all 22).
	Benches []string
	// AttackCore overrides the machine used by the table4 attack suite
	// (zero Name = PaperCore with the slimmed L2/L3 the PoCs use).
	AttackCore config.Core
	// Defenses restricts the defenses suite to a subset of registered
	// backends, by canonical name or alias (nil = all registered).
	Defenses []string
}

func (o Options) spec() RunSpec {
	if o.Spec == (RunSpec{}) {
		return DefaultSpec()
	}
	return o.Spec
}

func (o Options) attackCore() config.Core {
	if o.AttackCore.Name != "" {
		return o.AttackCore
	}
	cfg := config.PaperCore()
	cfg.Mem.L2Size = 256 * 1024
	cfg.Mem.L3Size = 1024 * 1024
	return cfg
}

// SuiteResult holds the typed result of one suite run; exactly one getter
// returns non-zero data, matching the suite that produced it.
type SuiteResult struct {
	Suite SuiteID

	evaluation *Evaluation
	table6     []Table6Core
	scope      *ScopeResult
	lru        *LRUResult
	icache     *ICacheResult
	dtlb       *DTLBResult
	compare    *CompareResult
	table4     []attack.Outcome
	overhead   string
	defenses   *DefensesResult
}

// Evaluation returns the fig5/table5 dataset (nil for other suites).
func (s *SuiteResult) Evaluation() *Evaluation { return s.evaluation }

// Table6 returns the core-sensitivity results (nil for other suites).
func (s *SuiteResult) Table6() []Table6Core { return s.table6 }

// Scope returns the §VI.C(1) decomposition (nil for other suites).
func (s *SuiteResult) Scope() *ScopeResult { return s.scope }

// LRU returns the §VII.A policy study (nil for other suites).
func (s *SuiteResult) LRU() *LRUResult { return s.lru }

// ICache returns the §VII.B filter study (nil for other suites).
func (s *SuiteResult) ICache() *ICacheResult { return s.icache }

// DTLB returns the DTLB-filter study (nil for other suites).
func (s *SuiteResult) DTLB() *DTLBResult { return s.dtlb }

// Compare returns the defense comparison (nil for other suites).
func (s *SuiteResult) Compare() *CompareResult { return s.compare }

// Table4 returns the attack outcomes (nil for other suites). On
// cancellation RunSuite returns the outcomes completed so far alongside
// ctx.Err().
func (s *SuiteResult) Table4() []attack.Outcome { return s.table4 }

// Defenses returns the defense-matrix results (nil for other suites).
func (s *SuiteResult) Defenses() *DefensesResult { return s.defenses }

// Text renders the suite's result in the standard text form.
func (s *SuiteResult) Text() string {
	switch s.Suite {
	case SuiteFig5:
		return s.evaluation.Fig5Text()
	case SuiteTable5:
		return s.evaluation.Table5Text()
	case SuiteTable4:
		return Table4Text(s.table4)
	case SuiteTable6:
		return Table6Text(s.table6)
	case SuiteScope:
		return ScopeText(s.scope)
	case SuiteLRU:
		return LRUText(s.lru)
	case SuiteICache:
		return ICacheText(s.icache)
	case SuiteDTLB:
		return DTLBText(s.dtlb)
	case SuiteCompare:
		return CompareText(s.compare)
	case SuiteOverhead:
		return s.overhead
	case SuiteDefenses:
		return DefensesText(s.defenses)
	}
	return ""
}

// RunSuite runs one suite to completion (or cancellation) and returns its
// typed result. Fig5 and Table5 share the same underlying Evaluation; run
// either and read both renderings from the result.
func (r *Runner) RunSuite(ctx context.Context, id SuiteID, opts Options) (*SuiteResult, error) {
	if r.trace != nil {
		sp := r.trace.Begin(r.traceRoot, "suite:"+string(id))
		r.mu.Lock()
		r.suiteSpans[id] = sp
		r.mu.Unlock()
		defer func() {
			r.mu.Lock()
			delete(r.suiteSpans, id)
			r.mu.Unlock()
			r.trace.End(sp)
		}()
	}
	out := &SuiteResult{Suite: id}
	var err error
	switch id {
	case SuiteFig5, SuiteTable5:
		out.evaluation, err = r.Evaluation(ctx, opts.spec(), opts.Benches)
	case SuiteTable4:
		out.table4, err = r.Table4(ctx, opts.attackCore())
	case SuiteTable6:
		out.table6, err = r.Table6(ctx, opts.spec(), opts.Benches)
	case SuiteScope:
		out.scope, err = r.Scope(ctx, opts.spec(), opts.Benches)
	case SuiteLRU:
		out.lru, err = r.LRU(ctx, opts.spec(), opts.Benches)
	case SuiteICache:
		out.icache, err = r.ICache(ctx, opts.spec(), opts.Benches)
	case SuiteDTLB:
		out.dtlb, err = r.DTLB(ctx, opts.spec(), opts.Benches)
	case SuiteCompare:
		out.compare, err = r.Compare(ctx, opts.spec(), opts.Benches)
	case SuiteOverhead:
		out.overhead = OverheadText()
	case SuiteDefenses:
		out.defenses, err = r.Defenses(ctx, opts.spec(), opts.Benches, opts.Defenses, opts.attackCore())
	default:
		return nil, fmt.Errorf("exp: unknown suite %q", id)
	}
	if err != nil {
		return out, err
	}
	return out, nil
}
