package pipeline

import (
	"bytes"
	"fmt"
	"testing"

	"conspec/internal/core"
	"conspec/internal/isa"
)

// runDefenseGolden executes the alloc kernel for a fixed cycle budget and
// returns the full Result rendering plus the event trace. When ref is
// non-nil the CPU's resolved hook set is replaced before the first cycle,
// simulating the pre-refactor predicate path.
func runDefenseGolden(t *testing.T, sec SecurityConfig, ref *core.Hooks) (string, string) {
	t.Helper()
	prog := allocKernel()
	backing := isa.NewFlatMem()
	prog.Load(backing)
	cpu := NewWithMemory(smallCore(), sec, backing)
	if ref != nil {
		cpu.def = *ref
	}
	var trace bytes.Buffer
	cpu.AttachTracer(&trace)
	cpu.SetPC(prog.Base)
	res := cpu.Run(20_000)
	if err := cpu.FlushSinks(); err != nil {
		t.Fatalf("flush: %v", err)
	}
	if err := cpu.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	res.Diag = "" // free-text diagnostics are not part of the golden surface
	return fmt.Sprintf("%#v", res), trace.String()
}

// TestDefenseHooksGolden is the pipeline half of the differential golden
// test: each paper mechanism runs once with the hook set resolved through
// the Defense registry and once with the pre-refactor reference table
// (core.ReferenceHooks) forced in. Stats and the event trace must be
// byte-identical — the registry refactor changed where the flags come from,
// not what the machine does.
func TestDefenseHooksGolden(t *testing.T) {
	for _, tc := range []struct {
		name string
		sec  SecurityConfig
	}{
		{"origin", SecurityConfig{Mechanism: core.Origin}},
		{"baseline", SecurityConfig{Mechanism: core.Baseline, Scope: core.ScopeBranchMem}},
		{"cachehit", SecurityConfig{Mechanism: core.CacheHit, Scope: core.ScopeBranchMem}},
		{"cachehit+tpbuf", SecurityConfig{Mechanism: core.CacheHitTPBuf, Scope: core.ScopeBranchMem}},
		{"invisispec", SecurityConfig{Mechanism: core.InvisiSpec}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ref, ok := core.ReferenceHooks(tc.sec.Mechanism)
			if !ok {
				t.Fatalf("no reference hooks for %v", tc.sec.Mechanism)
			}
			gotStats, gotTrace := runDefenseGolden(t, tc.sec, nil)
			refStats, refTrace := runDefenseGolden(t, tc.sec, &ref)
			if gotStats != refStats {
				t.Errorf("stats diverge from the reference predicate path:\nregistry: %s\nreference: %s",
					gotStats, refStats)
			}
			if gotTrace != refTrace {
				t.Error("event trace diverges from the reference predicate path")
			}
		})
	}
}

// TestNewDefenseBackendsRun sanity-runs the three new backends on the same
// kernel: they must make forward progress, stay invariant-clean, and show
// their mechanism's signature (the fence run cannot out-run origin; the
// delay-on-miss run must block suspect misses without discarding them).
func TestNewDefenseBackendsRun(t *testing.T) {
	run := func(sec SecurityConfig) Result {
		prog := allocKernel()
		backing := isa.NewFlatMem()
		prog.Load(backing)
		cpu := NewWithMemory(smallCore(), sec, backing)
		cpu.SetPC(prog.Base)
		res := cpu.Run(20_000)
		if err := cpu.CheckInvariants(); err != nil {
			t.Fatalf("invariants: %v", err)
		}
		if res.Committed == 0 {
			t.Fatal("no forward progress")
		}
		return res
	}
	origin := run(SecurityConfig{Mechanism: core.Origin})
	fence := run(SecurityConfig{Mechanism: core.Fence})
	if fence.Committed >= origin.Committed {
		t.Errorf("LFENCE-after-branch committed %d >= origin %d in the same budget; serialization has no cost?",
			fence.Committed, origin.Committed)
	}
	dom := run(SecurityConfig{Mechanism: core.DelayOnMiss, Scope: core.ScopeBranchMem})
	if dom.Filter.SuspectIssued == 0 {
		t.Error("delay-on-miss never classified a suspect load")
	}
	run(SecurityConfig{Mechanism: core.InvisiSpec})
}
