package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// spatternSetup allocates entry 0 as instruction A (suspect access to the
// secret page) and entry 1 as instruction B (the transmitter), with A's
// result written back — the canonical S-Pattern preamble.
func spatternSetup(t *TPBuf, pageA, pageB uint64) {
	t.Allocate(0)
	t.SetSuspect(0, true)
	t.SetPPN(0, pageA)
	t.SetWriteback(0)
	t.Allocate(1)
	t.SetSuspect(1, true)
	t.SetPPN(1, pageB)
}

func TestSPatternDetected(t *testing.T) {
	b := NewTPBuf(8)
	spatternSetup(b, 0x100, 0x200) // different pages
	if b.QuerySafe(1, 0x200) {
		t.Fatal("S-Pattern (older suspect WB entry on a different page) must be unsafe")
	}
	if b.Stats.Unsafe != 1 {
		t.Fatalf("stats %+v", b.Stats)
	}
}

func TestSamePageIsSafe(t *testing.T) {
	b := NewTPBuf(8)
	spatternSetup(b, 0x100, 0x100) // same page: not an S-Pattern
	if !b.QuerySafe(1, 0x100) {
		t.Fatal("same-page accesses must be safe per Table II")
	}
}

func TestNotWrittenBackIsSafe(t *testing.T) {
	b := NewTPBuf(8)
	b.Allocate(0)
	b.SetSuspect(0, true)
	b.SetPPN(0, 0x100) // V set but W clear: A's data not yet available
	b.Allocate(1)
	if !b.QuerySafe(1, 0x200) {
		t.Fatal("without Writeback status the older entry cannot feed B's address")
	}
}

func TestNonSuspectOlderEntryIsSafe(t *testing.T) {
	b := NewTPBuf(8)
	b.Allocate(0)
	b.SetSuspect(0, false) // A was not speculative
	b.SetPPN(0, 0x100)
	b.SetWriteback(0)
	b.Allocate(1)
	if !b.QuerySafe(1, 0x200) {
		t.Fatal("non-suspect older entries do not form an S-Pattern")
	}
}

func TestInvalidPPNIsSafe(t *testing.T) {
	b := NewTPBuf(8)
	b.Allocate(0)
	b.SetSuspect(0, true)
	b.SetWriteback(0) // W without V: address never translated
	b.Allocate(1)
	if !b.QuerySafe(1, 0x200) {
		t.Fatal("entries without a valid PPN must not match")
	}
}

func TestYoungerEntriesIgnored(t *testing.T) {
	b := NewTPBuf(8)
	b.Allocate(0) // older: the QUERYING instruction
	b.Allocate(1) // younger suspect WB access on another page
	b.SetSuspect(1, true)
	b.SetPPN(1, 0x300)
	b.SetWriteback(1)
	if !b.QuerySafe(0, 0x100) {
		t.Fatal("younger entries must not make an older access unsafe")
	}
}

func TestFreeClearsEntry(t *testing.T) {
	b := NewTPBuf(8)
	spatternSetup(b, 0x100, 0x200)
	b.Free(0) // A commits/squashes
	if !b.QuerySafe(1, 0x200) {
		t.Fatal("freed entries must stop matching")
	}
	a, v, w, s, ppn := b.Entry(0)
	if a || v || w || s || ppn != 0 {
		t.Fatal("Free must clear all bits")
	}
}

func TestMaskSnapshotsProgramOrder(t *testing.T) {
	b := NewTPBuf(4)
	b.Allocate(2)
	b.Allocate(0)
	b.Allocate(3)
	// Allocation order 2,0,3: entry 3 sees 2 and 0 as older; entry 0 sees
	// only 2; entry 2 sees none.
	if !b.Older(3, 2) || !b.Older(3, 0) {
		t.Fatal("entry 3 must see 2 and 0 as older")
	}
	if !b.Older(0, 2) || b.Older(0, 3) {
		t.Fatal("entry 0 must see only 2 as older")
	}
	if b.Older(2, 0) || b.Older(2, 3) {
		t.Fatal("entry 2 is oldest")
	}
}

// TestReallocationClearsStaleMaskBits is the circular-queue corner case:
// slot i is freed and reallocated to a YOUNGER instruction; other entries'
// masks must not keep treating slot i as older.
func TestReallocationClearsStaleMaskBits(t *testing.T) {
	b := NewTPBuf(4)
	b.Allocate(0) // oldest
	b.Allocate(1) // sees 0 as older
	if !b.Older(1, 0) {
		t.Fatal("precondition")
	}
	b.Free(0)
	b.Allocate(0) // slot reused by a younger instruction
	if b.Older(1, 0) {
		t.Fatal("stale mask bit survived reallocation")
	}
	if !b.Older(0, 1) {
		t.Fatal("the new occupant must see entry 1 as older")
	}
	// And the stale-direction hazard: make the reallocated (younger) slot 0
	// a suspect WB access on another page; querying older entry 1 stays safe.
	b.SetSuspect(0, true)
	b.SetPPN(0, 0x900)
	b.SetWriteback(0)
	if !b.QuerySafe(1, 0x100) {
		t.Fatal("younger reallocated entry must not flag an older access")
	}
}

func TestMultipleOlderEntriesAnyMatchBlocks(t *testing.T) {
	b := NewTPBuf(8)
	b.Allocate(0)
	b.SetSuspect(0, false)
	b.SetPPN(0, 0x500)
	b.SetWriteback(0)
	b.Allocate(1)
	b.SetSuspect(1, true)
	b.SetPPN(1, 0x600)
	b.SetWriteback(1)
	b.Allocate(2)
	// Entry 0 is benign, entry 1 is a suspect WB access on another page:
	// reduction-OR means one match suffices.
	if b.QuerySafe(2, 0x700) {
		t.Fatal("one S-Pattern source among many must block")
	}
}

func TestMismatchRate(t *testing.T) {
	var s TPBufStats
	if s.MismatchRate() != 0 {
		t.Fatal("no queries -> 0")
	}
	s = TPBufStats{Queries: 4, Safe: 3, Unsafe: 1}
	if s.MismatchRate() != 0.75 {
		t.Fatalf("mismatch rate %v", s.MismatchRate())
	}
}

func TestTPBufPanics(t *testing.T) {
	b := NewTPBuf(2)
	for _, f := range []func(){
		func() { b.Allocate(2) },
		func() { b.QuerySafe(-1, 0) },
		func() { NewTPBuf(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			f()
		}()
	}
}

func TestTPBufReset(t *testing.T) {
	b := NewTPBuf(4)
	spatternSetup(b, 1, 2)
	b.Reset()
	for i := 0; i < 4; i++ {
		a, v, w, s, _ := b.Entry(i)
		if a || v || w || s {
			t.Fatal("reset must clear all entries")
		}
	}
}

// refTPBuf is an obviously-correct reference: it tracks allocation order
// explicitly and evaluates Table II directly.
type refTPBuf struct {
	order []int // allocation order, oldest first
	state map[int]struct {
		v, w, s bool
		ppn     uint64
	}
}

func newRefTPBuf() *refTPBuf {
	return &refTPBuf{state: make(map[int]struct {
		v, w, s bool
		ppn     uint64
	})}
}

func (r *refTPBuf) alloc(i int) {
	r.free(i)
	r.order = append(r.order, i)
	r.state[i] = struct {
		v, w, s bool
		ppn     uint64
	}{}
}

func (r *refTPBuf) free(i int) {
	for k, v := range r.order {
		if v == i {
			r.order = append(r.order[:k], r.order[k+1:]...)
			break
		}
	}
	delete(r.state, i)
}

func (r *refTPBuf) safe(i int, ppn uint64) bool {
	for _, j := range r.order {
		if j == i {
			break // everything after is younger
		}
		st, ok := r.state[j]
		if ok && st.v && st.w && st.s && st.ppn != ppn {
			return false
		}
	}
	return true
}

// TestTPBufDifferential runs random operation sequences against the
// reference model.
func TestTPBufDifferential(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		b := NewTPBuf(n)
		ref := newRefTPBuf()
		live := map[int]bool{}
		for step := 0; step < 400; step++ {
			i := rng.Intn(n)
			switch rng.Intn(6) {
			case 0:
				b.Allocate(i)
				ref.alloc(i)
				live[i] = true
			case 1:
				if live[i] {
					b.Free(i)
					ref.free(i)
					delete(live, i)
				}
			case 2:
				if live[i] {
					s := rng.Intn(2) == 0
					b.SetSuspect(i, s)
					st := ref.state[i]
					st.s = s
					ref.state[i] = st
				}
			case 3:
				if live[i] {
					ppn := uint64(rng.Intn(8))
					b.SetPPN(i, ppn)
					st := ref.state[i]
					st.v, st.ppn = true, ppn
					ref.state[i] = st
				}
			case 4:
				if live[i] {
					b.SetWriteback(i)
					st := ref.state[i]
					st.w = true
					ref.state[i] = st
				}
			case 5:
				if live[i] {
					ppn := uint64(rng.Intn(8))
					if b.QuerySafe(i, ppn) != ref.safe(i, ppn) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestMechanismPredicates(t *testing.T) {
	cases := []struct {
		m                             Mechanism
		tracks, blocks, cacheHit, tpb bool
	}{
		{Origin, false, false, false, false},
		{Baseline, true, true, false, false},
		{CacheHit, true, false, true, false},
		{CacheHitTPBuf, true, false, true, true},
	}
	for _, c := range cases {
		if c.m.TracksDependence() != c.tracks ||
			c.m.BlocksSuspectAtIssue() != c.blocks ||
			c.m.UsesCacheHitFilter() != c.cacheHit ||
			c.m.UsesTPBuf() != c.tpb {
			t.Errorf("%v predicates wrong", c.m)
		}
		if c.m.String() == "" || c.m.String() == "mechanism(?)" {
			t.Errorf("%d has no name", c.m)
		}
	}
	if len(Mechanisms) != 4 {
		t.Fatal("four mechanisms expected")
	}
}

func TestFilterStatsRates(t *testing.T) {
	f := FilterStats{SuspectIssued: 10, SuspectL1Hits: 9,
		BlockedInsts: 2, CommittedMemInsts: 50}
	if f.SpecHitRate() != 0.9 {
		t.Fatalf("spec hit rate %v", f.SpecHitRate())
	}
	if f.BlockedRate() != 0.04 {
		t.Fatalf("blocked rate %v", f.BlockedRate())
	}
	var zero FilterStats
	if zero.SpecHitRate() != 0 || zero.BlockedRate() != 0 {
		t.Fatal("zero stats must not divide by zero")
	}
}

func TestTPBufVariantNoW(t *testing.T) {
	b := NewTPBuf(8).SetVariant(VariantNoW)
	if b.Variant() != VariantNoW {
		t.Fatal("variant not set")
	}
	// Older suspect entry with V but WITHOUT W: paper says safe, no-W
	// variant says unsafe.
	b.Allocate(0)
	b.SetSuspect(0, true)
	b.SetPPN(0, 0x100)
	b.Allocate(1)
	if b.QuerySafe(1, 0x200) {
		t.Fatal("no-W variant must match in-flight suspect producers")
	}
	// Same page still safe under every variant.
	if !b.QuerySafe(1, 0x100) {
		t.Fatal("same tag must stay safe")
	}
}

func TestTPBufVariantStrings(t *testing.T) {
	if VariantPaper.String() != "paper" || VariantNoW.String() != "no-W" ||
		VariantLine.String() != "line-granular" {
		t.Fatal("variant names changed")
	}
}

// TestTPBufVariantOrdering: across random states, the no-W variant never
// calls safe something the paper variant calls unsafe (strict subset).
func TestTPBufVariantConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 300; trial++ {
		paper := NewTPBuf(8)
		now := NewTPBuf(8).SetVariant(VariantNoW)
		for i := 0; i < 6; i++ {
			paper.Allocate(i)
			now.Allocate(i)
			s := rng.Intn(2) == 0
			paper.SetSuspect(i, s)
			now.SetSuspect(i, s)
			ppn := uint64(rng.Intn(4))
			paper.SetPPN(i, ppn)
			now.SetPPN(i, ppn)
			if rng.Intn(2) == 0 {
				paper.SetWriteback(i)
				now.SetWriteback(i)
			}
		}
		q := uint64(rng.Intn(4))
		if !paper.QuerySafe(5, q) && now.QuerySafe(5, q) {
			t.Fatal("no-W variant must be at least as strict as the paper's")
		}
	}
}
