// Package profutil wires the standard Go observability hooks
// (-cpuprofile/-memprofile/-exectrace) into the CLIs, so perf regressions
// in the cycle loop can be attributed with `go tool pprof` / `go tool
// trace` instead of guesswork. The runtime trace flag is -exectrace, not
// -trace, which is reserved for the simulator's own pipeline event trace.
package profutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"runtime/trace"
)

// Flags holds the registered profiling flag values.
type Flags struct {
	CPUProfile *string
	MemProfile *string
	Trace      *string
}

// Register adds -cpuprofile, -memprofile and -exectrace to the default
// flag set. Call before flag.Parse.
func Register() *Flags {
	return &Flags{
		CPUProfile: flag.String("cpuprofile", "", "write a CPU profile to this file"),
		MemProfile: flag.String("memprofile", "", "write an allocation profile to this file on exit"),
		Trace:      flag.String("exectrace", "", "write a Go runtime execution trace to this file"),
	}
}

// Start begins CPU profiling and tracing as requested. It returns a stop
// function that must run before process exit (defer it in main); the stop
// function also writes the memory profile, after a final GC so the numbers
// reflect live steady-state heap rather than collectable garbage.
func (f *Flags) Start() (stop func(), err error) {
	var cpuF, traceF *os.File
	if *f.CPUProfile != "" {
		cpuF, err = os.Create(*f.CPUProfile)
		if err != nil {
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuF); err != nil {
			cpuF.Close()
			return nil, fmt.Errorf("cpuprofile: %w", err)
		}
	}
	if *f.Trace != "" {
		traceF, err = os.Create(*f.Trace)
		if err != nil {
			return nil, fmt.Errorf("trace: %w", err)
		}
		if err := trace.Start(traceF); err != nil {
			traceF.Close()
			return nil, fmt.Errorf("trace: %w", err)
		}
	}
	return func() {
		if cpuF != nil {
			pprof.StopCPUProfile()
			cpuF.Close()
		}
		if traceF != nil {
			trace.Stop()
			traceF.Close()
		}
		if *f.MemProfile != "" {
			mf, err := os.Create(*f.MemProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer mf.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(mf); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}, nil
}

// CapProcs lowers GOMAXPROCS to workers when 0 < workers < current, so a
// `-workers 1 -cpuprofile` run is genuinely single-threaded and every
// sample attributes to the one simulation goroutine. It returns the
// effective worker count (the Runner default should use GOMAXPROCS, not
// NumCPU, so the two stay consistent).
func CapProcs(workers int) int {
	procs := runtime.GOMAXPROCS(0)
	if workers <= 0 || workers >= procs {
		return workers
	}
	runtime.GOMAXPROCS(workers)
	return workers
}
