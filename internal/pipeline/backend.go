package pipeline

import (
	"conspec/internal/branch"
	"conspec/internal/core"
	"conspec/internal/isa"
	"conspec/internal/mem"
	"conspec/internal/obs"
)

func (c *CPU) fuLimit(f isa.FU) int {
	switch f {
	case isa.FUAlu:
		return c.cfg.ALUs
	case isa.FUMul:
		return c.cfg.MulUnits
	case isa.FUDiv:
		return c.cfg.DivUnits
	case isa.FUMem:
		return c.cfg.MemPorts
	case isa.FUBranch:
		return c.cfg.BranchUnits
	default:
		return 0
	}
}

func (c *CPU) srcReady(p int) bool { return p < 0 || c.physReady[p] }

func (c *CPU) srcVal(p int) uint64 {
	if p < 0 {
		return 0
	}
	return c.physVal[p]
}

// issueStage performs wakeup-select: the oldest ready instructions issue up
// to IssueWidth per cycle, respecting functional-unit ports, an active
// FENCE, and — this is the paper's mechanism — the security hazard check.
//
// Selection walks the incrementally maintained ready list (data-ready
// issue-queue entries, sorted oldest-first; see ready.go) instead of
// rescanning the whole queue. Every not-yet-tried candidate is still passed
// through eligible() each select iteration — not just the winner — because
// eligible() carries per-cycle side effects (security block events,
// store-set stall accounting) that the full-queue scan used to apply; this
// keeps Result values byte-identical to the pre-ready-list implementation.
func (c *CPU) issueStage() {
	c.resumeParked()
	issued := 0
	var violation *uop // oldest memory-order-violating load this cycle

	// Each select pass resumes after the previous winner instead of
	// rescanning the rejected prefix: entries older than an issued entry
	// cannot become eligible later in the same cycle (wakeups happen at
	// writeback, the security matrix only changes at dispatch and clock
	// edge, FU budgets only tighten, and a prefix load's unresolved older
	// stores are themselves stuck in the prefix), and re-running eligible
	// on them is a no-op — their filter-block and stall transitions already
	// fired on the first pass.
	start := 0
	for issued < c.cfg.IssueWidth {
		var best *uop
		bestIdx := -1
		for idx := start; idx < len(c.readyList); idx++ {
			u := c.readyList[idx]
			if u.triedCycle == c.cycle {
				continue
			}
			if c.eligible(u) && best == nil {
				best = u // list is seq-sorted: first eligible is oldest
				bestIdx = idx
			}
		}
		if best == nil {
			break
		}
		best.triedCycle = c.cycle
		fu := best.fu
		c.fuUsed[fu]++
		if v := c.tryIssue(best); v != nil {
			if violation == nil || v.seq < violation.seq {
				violation = v
			}
		}
		if best.iqIdx == -1 {
			issued++ // accepted (slot released)
		}
		if bestIdx < len(c.readyList) && c.readyList[bestIdx] == best {
			start = bestIdx + 1 // replaying in place; triedCycle skips it
		} else {
			// best left the ready list (accepted, or parked by
			// delay-on-miss) and everything after it shifted left.
			start = bestIdx
		}
	}

	c.stats.Stages.IssuedUops += uint64(issued)
	if issued == 0 && c.iqCount > 0 {
		c.stats.Stages.IssueIdleCycles++
	}

	if violation != nil {
		c.stats.MemViolations++
		if c.storeSets != nil && violation.violStorePC != 0 {
			// Train the predictor: this load/store PC pair conflicted.
			c.storeSets.merge(violation.pc, violation.violStorePC)
		}
		c.squashFrom(violation.seq, violation.pc, nil)
	}
}

// eligible applies operand readiness, FU ports, FENCE serialization, and
// the Baseline security block. Stores issue on address readiness alone —
// the data operand is delivered to the STQ entry whenever it arrives, the
// standard split-store design (and the reason a store's column in the
// security matrix clears as soon as its address resolves).
func (c *CPU) eligible(u *uop) bool {
	if !c.srcReady(u.psrc1) {
		return false
	}
	if (c.cfg.FusedStores || !u.inst.Op.IsStore()) && !c.srcReady(u.psrc2) {
		return false
	}
	if c.fenceSeq != 0 && u.seq > c.fenceSeq {
		return false
	}
	if c.serializeSeq != 0 && u.seq > c.serializeSeq {
		// Fence defense: nothing younger than an unresolved branch issues.
		// The watermark branch itself (seq == serializeSeq) stays eligible,
		// as does everything older, so resolution always makes progress.
		return false
	}
	if c.fuUsed[u.fu] >= c.fuLim[u.fu] {
		return false
	}
	if u.inst.Op.IsLoad() && c.loadMustWait(u) {
		return false
	}
	if c.sec.SSBD && u.inst.Op.IsLoad() &&
		c.unresolvedStoreSeq != 0 && c.unresolvedStoreSeq < u.seq {
		return false // SSBD: no speculative store bypass at all
	}
	if c.secmat != nil && u.class() == core.ClassMem {
		if u.blockedSec {
			// Previously blocked by a filter: wait for dependence clearance.
			if c.secmat.Peek(u.iqIdx) {
				return false
			}
			u.blockedSec = false
			u.suspect = false
			// The suspect window just closed: this instruction waited from
			// dispatch until every security dependence resolved.
			c.m.suspectWindow.Observe(c.cycle - u.dispatchCycle)
			c.fr.Record(c.cycle, obs.FlightSuspectClose, u.seq, u.pc, c.cycle-u.dispatchCycle, false)
		}
		if c.def.BlockAtIssue && c.secmat.Peek(u.iqIdx) {
			// Baseline: suspect memory instructions do not issue at all.
			if !u.blockedSec {
				u.blockedSec = true
				u.wasBlocked = true
				c.stats.Filter.BlockedEvents++
				c.fr.Record(c.cycle, obs.FlightSuspectOpen, u.seq, u.pc, 0, true)
			}
			return false
		}
	}
	return true
}

// tryIssue executes the issue attempt for u. On acceptance the IQ slot is
// released (u.iqIdx becomes -1). Loads blocked by a hazard filter, or
// replaying behind a store, keep their slot and retry on a later cycle.
// The returned uop, when non-nil, is a load that must be squashed because
// the issuing store exposed a memory-order violation.
func (c *CPU) tryIssue(u *uop) *uop {
	op := u.inst.Op
	a, b := c.srcVal(u.psrc1), c.srcVal(u.psrc2)

	// Security hazard detection (3rd select stage of Fig. 2): the issuing
	// memory instruction is tagged with the suspect speculation flag when
	// its matrix row is non-empty. Baseline never reaches here suspect.
	if c.secmat != nil && u.class() == core.ClassMem && !c.def.BlockAtIssue {
		u.suspect = c.secmat.HasHazard(u.iqIdx)
	}

	switch {
	case op.IsLoad():
		return c.issueLoad(u, a)
	case op.IsStore():
		return c.issueStore(u, a)
	case op == isa.OpClflush:
		u.memAddr = a + uint64(int64(u.inst.Imm))
		u.addrReady = true
		// CLFLUSH of a present line takes longer than of an absent one,
		// exactly the timing difference the Flush+Flush side channel reads.
		// The invalidation itself happens non-speculatively at commit.
		lat := 2
		if c.hier.ProbeL1D(u.memAddr) {
			lat = 6
		}
		c.acceptIssue(u, lat, 0)
		return nil
	case op.IsCondBranch():
		taken := isa.BranchTaken(op, a, b)
		target := u.pc + isa.InstBytes
		if taken {
			target = u.pc + uint64(int64(u.inst.Imm))
		}
		u.result = 0
		c.acceptIssue(u, 1, 0)
		u.memAddr = target // stash actual target for writeback resolve
		u.addrReady = taken
		return nil
	case op == isa.OpJalr:
		target := a + uint64(int64(u.inst.Imm))
		u.result = u.pc + isa.InstBytes // link value
		c.acceptIssue(u, 1, 0)
		u.memAddr = target
		u.addrReady = true
		return nil
	case op == isa.OpJal:
		u.result = u.pc + isa.InstBytes
		c.acceptIssue(u, 1, 0)
		return nil
	default:
		lat := 1
		switch op.Unit() {
		case isa.FUMul:
			lat = c.cfg.MulLat
		case isa.FUDiv:
			lat = c.cfg.DivLat
		}
		u.result = isa.EvalALU(u.inst, a, b, c.cycle)
		c.acceptIssue(u, lat, 0)
		return nil
	}
}

// acceptIssue releases u's issue-queue slot, clears its security column via
// the update vector register, and schedules completion after lat cycles.
func (c *CPU) acceptIssue(u *uop, lat int, extra int) {
	if c.secmat != nil && u.iqIdx >= 0 {
		c.secmat.OnIssue(u.iqIdx)
		maskClear(c.prodMask, u.iqIdx)
		c.fr.Record(c.cycle, obs.FlightSecRowClear, u.seq, u.pc, uint64(u.iqIdx), false)
	}
	if u.iqIdx >= 0 {
		c.readyRemove(u)
		c.iq[u.iqIdx] = nil
		maskSet(c.iqFree, u.iqIdx)
		u.iqIdx = -1
		c.iqCount--
	}
	u.issued = true
	if u.discardedAt != 0 {
		c.m.reissueLatency.Observe(c.cycle - u.discardedAt)
		u.discardedAt = 0
	}
	c.traceEvent(obs.EvIssue, u)
	c.fr.Record(c.cycle, obs.FlightIssue, u.seq, u.pc, 0, u.suspect)
	c.inflight = append(c.inflight, pendingExec{u: u, done: c.cycle + uint64(lat+extra)})
}

type fwdAction int

const (
	fwdNone    fwdAction = iota // go to the cache
	fwdForward                  // value forwarded from an older store
	fwdWait                     // must replay later (store data conflict)
)

// scanSTQ implements store-to-load disambiguation for a load whose address
// just resolved. Older stores with unknown addresses are speculatively
// bypassed (load speculation — the Spectre V4 ingredient).
func (c *CPU) scanSTQ(u *uop) (fwdAction, *uop) {
	var youngest *uop
	bypassed := false
	for _, s := range c.stq {
		if s == nil || s.seq >= u.seq {
			continue
		}
		if !s.addrReady {
			bypassed = true
			continue
		}
		if !overlap(s.memAddr, s.inst.Op.MemBytes(), u.memAddr, u.inst.Op.MemBytes()) {
			continue
		}
		if youngest == nil || s.seq > youngest.seq {
			youngest = s
		}
	}
	u.bypassedStore = bypassed
	if youngest == nil {
		return fwdNone, nil
	}
	if contains(youngest.memAddr, youngest.inst.Op.MemBytes(), u.memAddr, u.inst.Op.MemBytes()) &&
		youngest.dataReady {
		return fwdForward, youngest
	}
	// Partial overlap, or a covering store whose data has not arrived yet:
	// replay until it drains or the data shows up.
	return fwdWait, youngest
}

func overlap(aAddr uint64, aSize int, bAddr uint64, bSize int) bool {
	return aAddr < bAddr+uint64(bSize) && bAddr < aAddr+uint64(aSize)
}

func contains(sAddr uint64, sSize int, lAddr uint64, lSize int) bool {
	return sAddr <= lAddr && lAddr+uint64(lSize) <= sAddr+uint64(sSize)
}

// tpTag returns the TPBuf comparison tag for an access: the physical page
// number under the paper's design, the line address under the line-granular
// ablation variant.
func (c *CPU) tpTag(addr, ppn uint64) uint64 {
	if c.sec.TPBufVariant == core.VariantLine {
		return addr >> 6
	}
	return ppn
}

// issueLoad runs the full load path: AGU, disambiguation, and the
// Conditional Speculation filters at the L1D boundary.
func (c *CPU) issueLoad(u *uop, base uint64) *uop {
	u.memAddr = base + uint64(int64(u.inst.Imm))
	u.addrReady = true
	size := u.inst.Op.MemBytes()
	tp := u.ldqIdx

	action, st := c.scanSTQ(u)
	switch action {
	case fwdWait:
		// Partial overlap or unforwardable: replay after the store drains.
		return nil
	case fwdForward:
		shift := (u.memAddr - st.memAddr) * 8
		v := st.result >> shift
		if size < 8 {
			v &= (1 << (8 * size)) - 1
		}
		u.result = v
		u.fwdFromSeq = st.seq
		ppn, tlbLat := c.hier.DTLB.Translate(u.memAddr)
		c.tpbuf.SetPPN(tp, c.tpTag(u.memAddr, ppn))
		c.tpbuf.SetSuspect(tp, u.suspect)
		// Forwarded loads never touch the cache: always safe.
		c.acceptIssue(u, 1+c.hier.L1D.HitLat, tlbLat)
		return nil
	}

	// Cache path: this is where Conditional Speculation decides.
	if c.def.InvisibleLoads {
		// InvisiSpec comparator: fetch the data without touching any cache
		// level; the visible (refilling) access happens at commit.
		res := c.hier.AccessDataNoRefill(u.memAddr)
		c.tpbuf.SetPPN(tp, c.tpTag(u.memAddr, res.PPN))
		u.result = c.hier.ReadData(u.memAddr, size)
		c.acceptIssue(u, 1+res.Latency, 0)
		return nil
	}
	if u.suspect {
		if u.inst.Op.IsLoad() {
			c.stats.Filter.SuspectIssued++
		}
		if c.sec.DTLBFilter && !c.hier.DTLB.Probe(u.memAddr) {
			// TLB-hit filter: the walk itself would be an observable refill.
			// Discard the request before translating; re-issue after the
			// security dependences clear, like the cache-hit filter does.
			c.stats.DTLBFilterBlocks++
			u.blockedSec = true
			u.wasBlocked = true
			u.discardedAt = c.cycle
			c.stats.Filter.BlockedEvents++
			c.fr.Record(c.cycle, obs.FlightSuspectOpen, u.seq, u.pc, 0, true)
			return nil
		}
		res, hit := c.hier.AccessL1DHitOnly(u.memAddr, true)
		c.tpbuf.SetPPN(tp, c.tpTag(u.memAddr, res.PPN))
		if hit {
			c.stats.Filter.SuspectL1Hits++
			c.tpbuf.SetSuspect(tp, true)
			u.pendingTouch = res.PendingTouch
			u.result = c.hier.ReadData(u.memAddr, size)
			c.acceptIssue(u, 1+res.Latency, 0)
			return nil
		}
		c.stats.Filter.SuspectL1Misses++
		if c.def.TPBufFilter && c.tpbuf.QuerySafe(tp, c.tpTag(u.memAddr, res.PPN)) {
			// The miss does not complete an S-Pattern: allowed to refill.
			if !c.mshrAvailable(u.memAddr) {
				return nil
			}
			full := c.hier.AccessData(u.memAddr, true)
			c.tpbuf.SetSuspect(tp, true)
			u.result = c.hier.ReadData(u.memAddr, size)
			c.claimMSHR(u, full.Level)
			c.acceptIssue(u, 1+full.Latency, 0)
			return nil
		}
		// Unsafe: the miss request is discarded; the load waits in the
		// issue queue for its security dependences to clear (§V.C).
		if c.def.TPBufFilter {
			u.tpbufUnsafe = true
			c.fr.Record(c.cycle, obs.FlightTPBufHit, u.seq, u.pc, uint64(tp), true)
		}
		u.blockedSec = true
		u.wasBlocked = true
		u.discardedAt = c.cycle
		c.stats.Filter.BlockedEvents++
		c.fr.Record(c.cycle, obs.FlightSuspectOpen, u.seq, u.pc, 0, true)
		if c.def.DelayOnMiss {
			// Delay-on-miss: park in place instead of re-entering selection.
			// The load leaves the ready list and resumeParked retries it once
			// its security row clears (or a squash removes it).
			c.readyRemove(u)
			u.parked = true
			c.parked = append(c.parked, u)
		}
		return nil
	}

	if !c.mshrAvailable(u.memAddr) {
		return nil // all MSHRs busy: replay on a later cycle
	}
	res := c.hier.AccessData(u.memAddr, false)
	c.tpbuf.SetPPN(tp, c.tpTag(u.memAddr, res.PPN))
	c.tpbuf.SetSuspect(tp, false)
	u.result = c.hier.ReadData(u.memAddr, size)
	c.claimMSHR(u, res.Level)
	c.acceptIssue(u, 1+res.Latency, 0)
	return nil
}

// resumeParked retries delay-on-miss loads whose security dependence row
// has cleared. A resumed load re-runs the full issue path — including store
// disambiguation, which may have changed while parked — but no longer as a
// suspect, so it refills normally. Resumption happens outside wakeup-select
// and does not consume issue width or FU ports: the load issued once
// already and is draining a stalled access, not competing for a slot. A
// resume that cannot complete (store conflict, MSHRs full) stays parked and
// retries next cycle. Squashed entries never appear here: squashFrom
// filters the parked list before their uops can be recycled.
func (c *CPU) resumeParked() {
	if len(c.parked) == 0 {
		return
	}
	keep := c.parked[:0]
	for _, u := range c.parked {
		if c.secmat != nil && c.secmat.Peek(u.iqIdx) {
			keep = append(keep, u)
			continue
		}
		if u.blockedSec {
			u.blockedSec = false
			u.suspect = false
			// The suspect window just closed (cf. the re-issue path in
			// eligible): this load waited from dispatch until every security
			// dependence resolved.
			c.m.suspectWindow.Observe(c.cycle - u.dispatchCycle)
			c.fr.Record(c.cycle, obs.FlightSuspectClose, u.seq, u.pc, c.cycle-u.dispatchCycle, false)
		}
		// memAddr was computed before parking; recover the AGU input so the
		// issue path recomputes it identically.
		c.issueLoad(u, u.memAddr-uint64(int64(u.inst.Imm)))
		if u.iqIdx >= 0 {
			keep = append(keep, u) // not accepted yet: retry next cycle
		} else {
			u.parked = false // accepted: the IQ slot was released
		}
	}
	for i := len(keep); i < len(c.parked); i++ {
		c.parked[i] = nil
	}
	c.parked = keep
}

// mshrAvailable reports whether a new L1D miss may start. Hits never need
// an MSHR, but availability is checked before the access since the lookup
// itself decides hit/miss; a resident line always passes.
func (c *CPU) mshrAvailable(addr uint64) bool {
	if c.cfg.MaxMSHRs <= 0 || c.hier.ProbeL1D(addr) {
		return true
	}
	return c.outstandingMisses < c.cfg.MaxMSHRs
}

// claimMSHR accounts an accepted load against the MSHR pool if it missed.
func (c *CPU) claimMSHR(u *uop, level mem.Level) {
	if c.cfg.MaxMSHRs > 0 && level != mem.LevelL1 {
		u.holdsMSHR = true
		c.outstandingMisses++
	}
}

// issueStore resolves a store's address, records it in the STQ entry, and
// checks younger already-executed loads for memory-order violations (the
// recovery path Spectre V4 abuses). The data operand may still be pending;
// writeback parks such stores on the awaiting-data list.
func (c *CPU) issueStore(u *uop, base uint64) *uop {
	u.memAddr = base + uint64(int64(u.inst.Imm))
	u.addrReady = true
	c.noteStoreResolved(u)
	if c.srcReady(u.psrc2) {
		u.result = c.srcVal(u.psrc2)
		u.dataReady = true
	}
	ppn, tlbLat := c.hier.DTLB.Translate(u.memAddr)
	c.tpbuf.SetPPN(c.cfg.LDQ+u.stqIdx, c.tpTag(u.memAddr, ppn))
	c.tpbuf.SetSuspect(c.cfg.LDQ+u.stqIdx, u.suspect)
	c.acceptIssue(u, 1, tlbLat)

	// Violation scan: any younger load that already obtained a value from
	// an overlapping address without forwarding from this store read stale
	// data and must be squashed (along with everything after it).
	var oldest *uop
	for _, l := range c.ldq {
		if l == nil || l.seq <= u.seq || !l.addrReady || !l.issued {
			continue
		}
		if !overlap(u.memAddr, u.inst.Op.MemBytes(), l.memAddr, l.inst.Op.MemBytes()) {
			continue
		}
		if l.fwdFromSeq == u.seq {
			continue
		}
		if oldest == nil || l.seq < oldest.seq {
			oldest = l
			l.violStorePC = u.pc
		}
	}
	return oldest
}

// writebackStage completes in-flight executions whose latency elapsed:
// results become visible to the issue queue, loads mark their TPBuf W bit,
// and branches resolve (possibly squashing and re-steering fetch). It also
// delivers late store data to STQ entries whose address already issued.
func (c *CPU) writebackStage() {
	if len(c.awaitingData) > 0 {
		rest := c.awaitingData[:0]
		for _, st := range c.awaitingData {
			switch {
			case st.squashed:
			case c.srcReady(st.psrc2):
				st.result = c.srcVal(st.psrc2)
				st.dataReady = true
				st.completed = true
			default:
				rest = append(rest, st)
			}
		}
		c.awaitingData = rest
	}
	done := c.wbScratch[:0]
	rest := c.inflight[:0]
	for _, pe := range c.inflight {
		if pe.u.squashed {
			continue
		}
		if pe.done <= c.cycle {
			done = append(done, pe.u)
		} else {
			rest = append(rest, pe)
		}
	}
	c.inflight = rest
	c.wbScratch = done
	// Insertion sort by seq (unique): completions resolve oldest-first.
	// Replaces sort.Slice, whose closure allocates on every cycle; the done
	// set is small (bounded by what completes in one cycle).
	for i := 1; i < len(done); i++ {
		u := done[i]
		j := i - 1
		for j >= 0 && done[j].seq > u.seq {
			done[j+1] = done[j]
			j--
		}
		done[j+1] = u
	}

	for _, u := range done {
		if u.squashed { // squashed by an older uop's resolution this cycle
			continue
		}
		if u.pdst >= 0 {
			c.physVal[u.pdst] = u.result
			c.physReady[u.pdst] = true
			c.wake(u.pdst)
		}
		if u.inst.Op.IsStore() && !u.dataReady {
			// Address part done; the store completes when data arrives.
			c.awaitingData = append(c.awaitingData, u)
			continue
		}
		if u.holdsMSHR {
			u.holdsMSHR = false
			c.outstandingMisses--
		}
		u.completed = true
		c.traceEvent(obs.EvWriteback, u)
		c.fr.Record(c.cycle, obs.FlightWriteback, u.seq, u.pc, 0, u.suspect)
		if u.inst.Op.IsLoad() && u.ldqIdx >= 0 {
			c.tpbuf.SetWriteback(u.ldqIdx)
		}
		if u.isBranch {
			c.unresolvedBranches--
			c.resolveBranch(u)
			if u.seq == c.serializeSeq {
				// The watermark branch resolved (serializeSeq is only ever
				// non-zero under the fence defense): advance to the next
				// oldest unresolved branch, if any.
				c.rescanSerialize()
			}
		}
	}
}

// resolveBranch trains the predictor and recovers from mispredictions.
func (c *CPU) resolveBranch(u *uop) {
	if u.inst.Op.IsCondBranch() {
		actualTaken := u.addrReady // stashed at issue
		actualTarget := u.memAddr
		if !actualTaken {
			actualTarget = u.pc + isa.InstBytes
		}
		mispredicted := actualTaken != u.predTaken
		c.bp.ResolveCond(u.pc, actualTaken, mispredicted, u.ghrAtPred)
		if mispredicted {
			cp := u.bpCP
			c.squashFrom(u.seq+1, actualTarget, &cp)
			c.bp.CorrectGHRAfterRestore(actualTaken)
		}
		return
	}
	// Indirect jump.
	actualTarget := u.memAddr
	mispredicted := actualTarget != u.predTarget
	c.bp.ResolveTarget(u.pc, actualTarget, mispredicted)
	if mispredicted {
		cp := u.bpCP
		c.squashFrom(u.seq+1, actualTarget, &cp)
	}
}

// squashFrom removes every uop with seq >= fromSeq from the machine,
// restores the rename map, clears the security structures, and re-steers
// fetch to redirectPC. cp, when non-nil, restores predictor state (branch
// mispredictions; memory-order violations skip it).
func (c *CPU) squashFrom(fromSeq uint64, redirectPC uint64, cp *branch.Checkpoint) {
	c.traceSquash(fromSeq, redirectPC)
	c.fr.Record(c.cycle, obs.FlightSquash, fromSeq, 0, redirectPC, false)
	c.stats.Squashes++
	robBefore := c.robCount
	for c.robCount > 0 {
		u := c.robAt(c.robCount - 1)
		if u.seq < fromSeq {
			break
		}
		u.squashed = true
		if u.isBranch && !u.completed {
			c.unresolvedBranches--
		}
		if u.pdst >= 0 {
			c.renameMap[u.archRd] = u.oldPdst
			c.freeList = append(c.freeList, u.pdst)
		}
		if u.iqIdx >= 0 {
			if c.secmat != nil {
				c.secmat.OnSquash(u.iqIdx)
				maskClear(c.prodMask, u.iqIdx)
				c.fr.Record(c.cycle, obs.FlightSecRowClear, u.seq, u.pc, uint64(u.iqIdx), false)
			}
			c.readyRemove(u)
			c.iq[u.iqIdx] = nil
			maskSet(c.iqFree, u.iqIdx)
			u.iqIdx = -1
			c.iqCount--
		}
		if u.ldqIdx >= 0 {
			c.ldq[u.ldqIdx] = nil
			maskSet(c.ldqFree, u.ldqIdx)
			c.tpbuf.Free(u.ldqIdx)
			u.ldqIdx = -1
		}
		if u.stqIdx >= 0 {
			c.stq[u.stqIdx] = nil
			maskSet(c.stqFree, u.stqIdx)
			c.tpbuf.Free(c.cfg.LDQ + u.stqIdx)
			u.stqIdx = -1
		}
		c.rob[(c.robHead+c.robCount-1)%len(c.rob)] = nil
		c.robCount--
		// Back to the pool. Any stale wakeup registrations it leaves on
		// regWaiters are neutralized by the wait1/wait2 match in wake()
		// and truncated when the register is re-allocated; its `squashed`
		// flag stays readable for same-cycle stage logic until recycled.
		c.freeUop(u)
	}
	c.m.squashDepth.Observe(uint64(robBefore - c.robCount))
	// Drop squashed in-flight work, parked stores awaiting data, and the
	// entire fetch queue (everything in it is younger than anything in
	// the ROB).
	rest := c.inflight[:0]
	for _, pe := range c.inflight {
		if !pe.u.squashed {
			rest = append(rest, pe)
			continue
		}
		if pe.u.holdsMSHR {
			pe.u.holdsMSHR = false
			c.outstandingMisses--
		}
	}
	c.inflight = rest
	if len(c.awaitingData) > 0 {
		keep := c.awaitingData[:0]
		for _, st := range c.awaitingData {
			if !st.squashed {
				keep = append(keep, st)
			}
		}
		for i := len(keep); i < len(c.awaitingData); i++ {
			c.awaitingData[i] = nil
		}
		c.awaitingData = keep
	}
	if len(c.parked) > 0 {
		// Parked delay-on-miss loads: drop squashed entries NOW — their uops
		// return to the pool above and are recycled at the next fetch, so a
		// stale parked pointer would alias a different instruction.
		keep := c.parked[:0]
		for _, u := range c.parked {
			if !u.squashed {
				keep = append(keep, u)
			}
		}
		for i := len(keep); i < len(c.parked); i++ {
			c.parked[i] = nil
		}
		c.parked = keep
	}
	c.fqFlush()
	c.noteSquashWatermark(fromSeq)
	if cp != nil {
		c.bp.Restore(*cp)
	}
	c.fetchPC = redirectPC
	c.fetchHalted = false
	if c.fetchStallUntil < c.cycle+1 {
		c.fetchStallUntil = c.cycle + 1 // one-cycle re-steer bubble
	}
	c.rescanFence()
	c.rescanSerialize()
}

func (c *CPU) rescanFence() {
	c.fenceSeq = 0
	for i := 0; i < c.robCount; i++ {
		u := c.robAt(i)
		if u.inst.Op == isa.OpFence && !u.completed {
			c.fenceSeq = u.seq
			return
		}
	}
}

// rescanSerialize recomputes the fence-defense watermark: the seq of the
// oldest unresolved branch in the ROB (0 = none). A no-op — and always zero
// — unless the active defense serializes branches.
func (c *CPU) rescanSerialize() {
	c.serializeSeq = 0
	if !c.def.SerializeBranches {
		return
	}
	for i := 0; i < c.robCount; i++ {
		u := c.robAt(i)
		if u.isBranch && !u.completed {
			c.serializeSeq = u.seq
			return
		}
	}
}

// commitStage retires completed instructions in order, performing the
// non-speculative side effects: store writes, CLFLUSH invalidations,
// deferred LRU touches, and the HALT that ends simulation.
func (c *CPU) commitStage() {
	for n := 0; n < c.cfg.CommitWidth && c.robCount > 0; n++ {
		u := c.robAt(0)
		if u.inst.Op == isa.OpFence && !u.completed {
			// A fence completes when it reaches the ROB head: everything
			// older has committed.
			u.completed = true
			c.fenceSeq = 0
			c.rescanFence()
		}
		if !u.completed {
			return
		}
		op := u.inst.Op
		switch {
		case op.IsStore():
			c.hier.WriteData(u.memAddr, op.MemBytes(), u.result)
			c.hier.AccessData(u.memAddr, false) // non-speculative fill
			c.hier.StoreCommitted(u.memAddr)    // invalidate peer L1 copies
		case op == isa.OpClflush:
			c.hier.Flush(u.memAddr)
		case op.IsLoad():
			if c.def.InvisibleLoads {
				// InvisiSpec exposure: the load becomes architecturally
				// visible, refilling the hierarchy like a normal access.
				c.hier.AccessData(u.memAddr, false)
			}
			if u.pendingTouch {
				c.hier.TouchL1D(u.memAddr) // §VII.A delayed LRU update
			}
		}
		if u.class() == core.ClassMem && op != isa.OpClflush {
			c.stats.Filter.CommittedMemInsts++
			if u.wasBlocked {
				c.stats.Filter.BlockedInsts++
			}
			if u.tpbufUnsafe {
				// A committed load the TPBuf had flagged UNSAFE: by
				// definition benign speculation, i.e. a false positive.
				c.m.tpbufUnsafeCommitted.Inc()
			}
		}
		if u.pdst >= 0 {
			c.freeList = append(c.freeList, u.oldPdst)
		}
		if u.ldqIdx >= 0 {
			c.ldq[u.ldqIdx] = nil
			maskSet(c.ldqFree, u.ldqIdx)
			c.tpbuf.Free(u.ldqIdx)
		}
		if u.stqIdx >= 0 {
			c.stq[u.stqIdx] = nil
			maskSet(c.stqFree, u.stqIdx)
			c.tpbuf.Free(c.cfg.LDQ + u.stqIdx)
		}
		c.traceEvent(obs.EvCommit, u)
		c.fr.Record(c.cycle, obs.FlightCommit, u.seq, u.pc, 0, false)
		c.rob[c.robHead] = nil
		c.robHead = (c.robHead + 1) % len(c.rob)
		c.robCount--
		c.stats.Committed++
		// Retired: recycle. No structure references u past this point
		// (LSQ slots and TPBuf entries were released above).
		c.freeUop(u)
		if op == isa.OpHalt {
			c.halted = true
			return
		}
		if c.stats.Committed >= c.committedTarget {
			return
		}
	}
}
