// Command conspec-served runs the simulation service: an HTTP daemon that
// accepts experiment-suite jobs, executes them on a bounded worker pool,
// streams progress over SSE, and (with -cache-dir) serves repeated
// submissions from the persistent result store without simulating.
//
//	conspec-served -addr :8344 -cache-dir /var/cache/conspec
//
// Submit with conspec-ctl or plain curl:
//
//	curl -s -X POST localhost:8344/v1/jobs -d '{"suite":"fig5"}'
//	curl -N localhost:8344/v1/jobs/<id>/events
//	curl -s localhost:8344/v1/jobs/<id>
//	curl -s localhost:8344/v1/jobs/<id>/trace > job.trace.json
//
// Every request, queue wait, and job execution is span-traced; the trace
// endpoint serves a job's subtree as Perfetto-loadable JSON. -pprof mounts
// the runtime profiler under /debug/pprof/.
//
// With -data-dir the server keeps a durable job journal: every accepted
// job is fsynced before the 202, and jobs interrupted by a crash are
// re-queued on the next start (their finished simulations replayed from the
// -cache-dir store). -cache-max-bytes bounds that store with LRU eviction;
// -cache-gc-interval adds a background sweep that also quarantines corrupt
// entries.
//
// # Distributed execution
//
// -role selects the process's place in a fleet:
//
//	standalone   (default) everything in one process, as above
//	coordinator  the same public API, but jobs are leased to registered
//	             workers; /fleet/v1/ endpoints and fleet metrics appear,
//	             and -submit-rate/-submit-burst add per-client quotas
//	worker       no public API: join a coordinator with -join, lease jobs
//	             (-slots at a time), execute them against the coordinator's
//	             result store layered over the local -cache-dir, publish
//	             results back
//
//	conspec-served -role coordinator -addr :8344 -cache-dir /var/cache/conspec -data-dir /var/lib/conspec
//	conspec-served -role worker -join http://coord:8344 -slots 2 -cache-dir /var/cache/conspec-w1
//
// SIGINT/SIGTERM drains gracefully: new submissions get 503, queued and
// running jobs finish (bounded by -drain-timeout), then the process exits.
// A worker abandons its active leases on shutdown, which re-queues them at
// the coordinator immediately.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"conspec/internal/buildinfo"
	"conspec/internal/diskcache"
	"conspec/internal/fleet"
	"conspec/internal/serve"
	"conspec/internal/serve/journal"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:8344", "listen address")
		cacheDir   = flag.String("cache-dir", "", "persistent result store directory (empty = memory-only per job)")
		dataDir    = flag.String("data-dir", "", "durable job journal directory: accepted jobs survive crashes and are re-queued on restart (empty = no journal)")
		cacheMax   = flag.Int64("cache-max-bytes", 0, "result store size budget; least-recently-used entries are evicted past it (0 = unbounded)")
		cacheGC    = flag.Duration("cache-gc-interval", 0, "background cache GC sweep cadence, revalidating entries and enforcing the budget (0 = off)")
		jobWorkers = flag.Int("workers", 2, "max concurrently executing jobs (coordinator role defaults to 32: jobs only await fleet leases)")
		queueCap   = flag.Int("queue-cap", 16, "max queued jobs before submissions get 429")
		simWorkers = flag.Int("sim-workers", 0, "max concurrent simulations per job (0 = GOMAXPROCS)")
		runTmo     = flag.Duration("run-timeout", 0, "default wall-clock bound per simulation (0 = none; jobs may override)")
		drainTmo   = flag.Duration("drain-timeout", 10*time.Minute, "max time to wait for in-flight jobs on shutdown")
		keepalive  = flag.Duration("sse-keepalive", 0, "idle event-stream keepalive comment cadence (0 = 15s default); lower it below your proxy's idle timeout")
		traceSpans = flag.Int("trace-spans", 0, "span tracer ring capacity (0 = default); oldest spans are evicted when full")
		pprofF     = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		version    = flag.Bool("version", false, "print build information and exit")

		role       = flag.String("role", "standalone", "process role: standalone, coordinator, or worker")
		join       = flag.String("join", "", "coordinator base URL to join (worker role)")
		slots      = flag.Int("slots", 1, "concurrent leases to execute (worker role)")
		workerName = flag.String("worker-name", "", "stable worker name to register under (worker role; empty = coordinator assigns)")
		hbEvery    = flag.Duration("heartbeat", 2*time.Second, "worker heartbeat interval (coordinator role)")
		hbTimeout  = flag.Duration("heartbeat-timeout", 0, "silence before a worker is declared lost and its leases re-queued (coordinator role; 0 = 3x heartbeat)")
		submitRate = flag.Float64("submit-rate", 0, "per-client submissions/second quota on POST /v1/jobs (coordinator role; 0 = no quota)")
		submitBrst = flag.Int("submit-burst", 8, "per-client submission burst above -submit-rate (coordinator role)")
	)
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Short("conspec-served"))
		return
	}
	logger := log.New(os.Stderr, "conspec-served: ", log.LstdFlags)

	switch *role {
	case "standalone", "coordinator":
	case "worker":
		if *join == "" {
			logger.Fatalf("-role worker requires -join <coordinator URL>")
		}
		runWorker(logger, workerConfig{
			join:       *join,
			name:       *workerName,
			slots:      *slots,
			simWorkers: *simWorkers,
			runTimeout: *runTmo,
			cacheDir:   *cacheDir,
			cacheMax:   *cacheMax,
			cacheGC:    *cacheGC,
		})
		return
	default:
		logger.Fatalf("unknown -role %q (want standalone, coordinator, or worker)", *role)
	}

	// In coordinator mode an "executing" job is a goroutine awaiting a
	// fleet lease, not a CPU-bound simulation, so the concurrency cap
	// defaults much wider — unless the operator set -workers explicitly.
	if *role == "coordinator" {
		workersSet := false
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "workers" {
				workersSet = true
			}
		})
		if !workersSet {
			*jobWorkers = 32
		}
	}

	cfg := serve.Config{
		Workers:      *jobWorkers,
		QueueCap:     *queueCap,
		SimWorkers:   *simWorkers,
		RunTimeout:   *runTmo,
		SSEKeepalive: *keepalive,
		TraceSpans:   *traceSpans,
		Pprof:        *pprofF,
		Logf:         logger.Printf,
	}
	if *cacheDir != "" {
		store, err := diskcache.OpenWith(*cacheDir, diskcache.Options{MaxBytes: *cacheMax, GCInterval: *cacheGC})
		if err != nil {
			logger.Fatalf("open cache: %v", err)
		}
		defer store.Close()
		cfg.Cache = store
		budget := "unbounded"
		if *cacheMax > 0 {
			budget = fmt.Sprintf("%d byte budget", *cacheMax)
		}
		logger.Printf("result store: %s (%d entries for this build, %s)", store.Dir(), store.Len(), budget)
	}
	var jr *journal.Journal
	if *dataDir != "" {
		var recovered []journal.State
		var err error
		jr, recovered, err = journal.Open(*dataDir, journal.Options{})
		if err != nil {
			logger.Fatalf("open journal: %v", err)
		}
		defer jr.Close()
		cfg.Journal = jr
		cfg.Recovered = recovered
		logger.Printf("job journal: %s (%d interrupted jobs to recover)", *dataDir, len(recovered))
	}

	var coord *fleet.Coordinator
	if *role == "coordinator" {
		coord = fleet.NewCoordinator(fleet.CoordinatorOptions{
			Store:             cfg.Cache,
			Journal:           jr,
			HeartbeatInterval: *hbEvery,
			HeartbeatTimeout:  *hbTimeout,
			Logf:              logger.Printf,
		})
		defer coord.Close()
		cfg.Executor = coord
		cfg.Capacity = coord.Capacity
		if *submitRate > 0 {
			cfg.Limiter = fleet.NewLimiter(*submitRate, *submitBrst)
			logger.Printf("submit quota: %.3g/s per client (burst %d)", *submitRate, *submitBrst)
		}
	}

	srv := serve.New(cfg)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		logger.Fatalf("listen: %v", err)
	}
	handler := srv.Handler()
	if coord != nil {
		handler = coord.Handler(handler)
		logger.Printf("coordinator: leasing jobs to fleet workers (heartbeat %s)", *hbEvery)
	}
	hs := &http.Server{Handler: handler}
	logger.Printf("listening on http://%s (%s)", ln.Addr(), buildinfo.Get().Identity())

	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Printf("%s: draining (up to %s)", sig, *drainTmo)
	case err := <-errc:
		logger.Fatalf("serve: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTmo)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		logger.Printf("drain: %v (live jobs were canceled)", err)
	}
	if err := hs.Shutdown(context.Background()); err != nil && !errors.Is(err, http.ErrServerClosed) {
		logger.Printf("http shutdown: %v", err)
	}
	logger.Printf("bye")
}

// workerConfig is the subset of flags the worker role uses.
type workerConfig struct {
	join       string
	name       string
	slots      int
	simWorkers int
	runTimeout time.Duration
	cacheDir   string
	cacheMax   int64
	cacheGC    time.Duration
}

// runWorker joins a coordinator and serves leases until SIGINT/SIGTERM.
func runWorker(logger *log.Logger, wc workerConfig) {
	var local fleet.ResultStore
	if wc.cacheDir != "" {
		store, err := diskcache.OpenWith(wc.cacheDir, diskcache.Options{MaxBytes: wc.cacheMax, GCInterval: wc.cacheGC})
		if err != nil {
			logger.Fatalf("open cache: %v", err)
		}
		defer store.Close()
		local = store
		logger.Printf("local result store: %s (%d entries for this build)", store.Dir(), store.Len())
	}

	w := fleet.NewWorker(fleet.WorkerOptions{
		Coordinator: wc.join,
		Name:        wc.name,
		Slots:       wc.slots,
		SimWorkers:  wc.simWorkers,
		RunTimeout:  wc.runTimeout,
		LocalCache:  local,
		Logf:        logger.Printf,
	})
	logger.Printf("worker: joining %s (%d slots, %s)", wc.join, wc.slots, buildinfo.Get().Identity())

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- w.Run(ctx) }()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Printf("%s: abandoning active leases and leaving the fleet", sig)
		cancel()
		if err := <-done; err != nil {
			logger.Fatalf("worker: %v", err)
		}
	case err := <-done:
		cancel()
		if err != nil {
			logger.Fatalf("worker: %v", err)
		}
	}
	logger.Printf("bye")
}
