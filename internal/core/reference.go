package core

// ReferenceHooks encodes the pre-refactor predicate logic as a plain table:
// the literal truth values the inline Mechanism predicates
// (TracksDependence, BlocksSuspectAtIssue, UsesCacheHitFilter, UsesTPBuf,
// InvisibleLoads) produced before the Defense registry existed. The
// differential golden test runs every paper mechanism through both this
// table and the registered backends and asserts byte-identical simulator
// output — if a registry entry drifts from the predicates it replaced, that
// test names the divergent hook rather than failing on a stats diff.
//
// Only the mechanisms that existed before the redesign appear here; the new
// backends (fence, delay-on-miss) have no pre-refactor behavior to mirror.
func ReferenceHooks(m Mechanism) (Hooks, bool) {
	switch m {
	case Origin:
		return Hooks{}, true
	case Baseline:
		return Hooks{TracksDependence: true, BlockAtIssue: true}, true
	case CacheHit:
		return Hooks{TracksDependence: true, CacheHitFilter: true}, true
	case CacheHitTPBuf:
		return Hooks{TracksDependence: true, CacheHitFilter: true, TPBufFilter: true}, true
	case InvisiSpec:
		return Hooks{InvisibleLoads: true}, true
	default:
		return Hooks{}, false
	}
}
