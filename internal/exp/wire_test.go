package exp

import (
	"encoding/json"
	"errors"
	"testing"
	"time"
)

func TestProgressEventJSONRoundTrip(t *testing.T) {
	events := []ProgressEvent{
		{Suite: SuiteFig5, Benchmark: "astar", Mechanism: "CacheHit+TPBuf",
			Phase: PhaseRunDone, Cycles: 123456, Wall: 42 * time.Millisecond},
		{Suite: SuiteLRU, Benchmark: "lbm", Mechanism: "Origin",
			Phase: PhaseCached, CacheHit: true, Tier: TierDisk},
		{Suite: SuiteScope, Benchmark: "hmmer", Phase: PhaseBenchDone,
			Line: "hmmer  branch-only +1.0%  full +2.0%"},
		{Suite: SuiteCompare, Benchmark: "mcf", Mechanism: "Baseline",
			Phase: PhaseError, Err: errors.New("exp: run mcf timed out")},
		{Phase: PhaseRunStart},
	}
	for _, in := range events {
		b, err := json.Marshal(in)
		if err != nil {
			t.Fatalf("marshal %+v: %v", in, err)
		}
		var out ProgressEvent
		if err := json.Unmarshal(b, &out); err != nil {
			t.Fatalf("unmarshal %s: %v", b, err)
		}
		// Err round-trips by text, not identity: compare it separately.
		wantErr, gotErr := "", ""
		if in.Err != nil {
			wantErr = in.Err.Error()
		}
		if out.Err != nil {
			gotErr = out.Err.Error()
		}
		if wantErr != gotErr {
			t.Errorf("error text: got %q want %q", gotErr, wantErr)
		}
		in.Err, out.Err = nil, nil
		if in != out {
			t.Errorf("round trip mismatch:\n in: %+v\nout: %+v\nwire: %s", in, out, b)
		}
	}
}

// TestProgressEventWireFieldNames pins the snake_case field names and the
// stable phase strings: the SSE stream and any stored event logs depend on
// them not drifting.
func TestProgressEventWireFieldNames(t *testing.T) {
	ev := ProgressEvent{Suite: SuiteFig5, Benchmark: "astar", Mechanism: "Origin",
		Phase: PhaseCached, CacheHit: true, Tier: TierMemory, Cycles: 7,
		Wall: time.Microsecond, Err: errors.New("x"), Line: "l"}
	b, err := json.Marshal(ev)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"suite", "benchmark", "mechanism", "phase",
		"cache_hit", "tier", "cycles", "wall_ns", "error", "line"} {
		if _, ok := m[k]; !ok {
			t.Errorf("wire field %q missing in %s", k, b)
		}
	}
	if m["phase"] != "cached" {
		t.Errorf("phase string = %v, want cached", m["phase"])
	}
	for _, phase := range []EventPhase{PhaseRunStart, PhaseRunDone, PhaseCached,
		PhaseBenchDone, PhaseError} {
		b, _ := json.Marshal(ProgressEvent{Phase: phase})
		var out ProgressEvent
		if err := json.Unmarshal(b, &out); err != nil || out.Phase != phase {
			t.Errorf("phase %q did not survive the wire: %v %v", phase, out.Phase, err)
		}
	}
}

func TestRunErrorJSONRoundTrip(t *testing.T) {
	in := RunError{Suite: SuiteTable6, Benchmark: "sjeng", Mechanism: "Baseline",
		Outcome: "deadlock", Err: errors.New("exp: run sjeng ended deadlock")}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"suite", "benchmark", "mechanism", "outcome", "error"} {
		if _, ok := m[k]; !ok {
			t.Errorf("wire field %q missing in %s", k, b)
		}
	}
	var out RunError
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out.Suite != in.Suite || out.Benchmark != in.Benchmark ||
		out.Mechanism != in.Mechanism || out.Outcome != in.Outcome ||
		out.Err == nil || out.Err.Error() != in.Err.Error() {
		t.Errorf("round trip mismatch:\n in: %+v\nout: %+v", in, out)
	}
}
