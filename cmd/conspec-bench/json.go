package main

import (
	"encoding/json"
	"fmt"
	"os"

	"conspec/internal/attack"
	"conspec/internal/buildinfo"
	"conspec/internal/core"
	"conspec/internal/exp"
	"conspec/internal/obs"
	"conspec/internal/workload"
)

// jsonFig5Row is one benchmark's normalized runtimes.
type jsonFig5Row struct {
	Benchmark string  `json:"benchmark"`
	Baseline  float64 `json:"baseline"`
	CacheHit  float64 `json:"cachehit"`
	TPBuf     float64 `json:"tpbuf"`
}

// jsonTable5Row is one benchmark's filter analysis.
type jsonTable5Row struct {
	Benchmark       string  `json:"benchmark"`
	L1HitRate       float64 `json:"l1_hit_rate"`
	BaselineBlocked float64 `json:"baseline_blocked_rate"`
	CacheHitBlocked float64 `json:"cachehit_blocked_rate"`
	SpecHitRate     float64 `json:"speculative_hit_rate"`
	TPBufBlocked    float64 `json:"tpbuf_blocked_rate"`
	MismatchRate    float64 `json:"spattern_mismatch_rate"`
}

// jsonAttackRow is one Table IV cell.
type jsonAttackRow struct {
	Scenario  string `json:"scenario"`
	Class     string `json:"class,omitempty"`
	Mechanism string `json:"mechanism"`
	Correct   int    `json:"bytes_recovered"`
	Total     int    `json:"bytes_total"`
	Leaked    bool   `json:"leaked"`
}

// jsonTable6Row is one benchmark's overheads on one sensitivity core.
type jsonTable6Row struct {
	Benchmark string  `json:"benchmark"`
	Baseline  float64 `json:"baseline_overhead"`
	CacheHit  float64 `json:"cachehit_overhead"`
	TPBuf     float64 `json:"tpbuf_overhead"`
}

// jsonTable6Core is Table VI for one core.
type jsonTable6Core struct {
	Core    string          `json:"core"`
	Rows    []jsonTable6Row `json:"rows"`
	Average jsonTable6Row   `json:"average"`
}

// jsonScopeRow is one benchmark's §VI.C(1) decomposition.
type jsonScopeRow struct {
	Benchmark            string  `json:"benchmark"`
	BranchOnly           float64 `json:"branch_only_overhead"`
	Full                 float64 `json:"full_matrix_overhead"`
	UnresolvedBranchFrac float64 `json:"unresolved_branch_frac"`
}

// jsonScope is the §VI.C(1) suite.
type jsonScope struct {
	Rows          []jsonScopeRow `json:"rows"`
	BranchOnlyAvg float64        `json:"branch_only_avg"`
	FullAvg       float64        `json:"full_matrix_avg"`
}

// jsonLRU is the §VII.A replacement-update study.
type jsonLRU struct {
	Always   float64 `json:"conventional_update_overhead"`
	NoUpdate float64 `json:"no_update_overhead"`
	Delayed  float64 `json:"delayed_update_overhead"`
}

// jsonICache is the §VII.B filter study.
type jsonICache struct {
	Without     float64           `json:"overhead_without"`
	With        float64           `json:"overhead_with"`
	FetchStalls map[string]uint64 `json:"fetch_stalls"`
}

// jsonDTLB is the DTLB-filter study.
type jsonDTLB struct {
	Without float64           `json:"overhead_without"`
	With    float64           `json:"overhead_with"`
	Blocks  map[string]uint64 `json:"filter_blocks"`
}

// jsonCompareRow is one benchmark's defense-comparison overheads.
type jsonCompareRow struct {
	Benchmark string  `json:"benchmark"`
	TPBuf     float64 `json:"chtpbuf_overhead"`
	Invisi    float64 `json:"invisispec_overhead"`
	SWFence   float64 `json:"sw_fence_overhead"`
}

// jsonCompare is the defense comparison suite.
type jsonCompare struct {
	Rows    []jsonCompareRow `json:"rows"`
	Average jsonCompareRow   `json:"average"`
}

// jsonRunError is one failed simulation: the suites above exclude it from
// their aggregates, so consumers must treat a document with a non-empty
// errors array as partial.
type jsonRunError struct {
	Suite     string `json:"suite"`
	Benchmark string `json:"benchmark"`
	Mechanism string `json:"mechanism"`
	Outcome   string `json:"outcome"`
	Error     string `json:"error"`
}

// jsonSeriesEntry is one run's sampled metric time series (fig5/table5 runs
// with -metrics-interval only).
type jsonSeriesEntry struct {
	Benchmark string      `json:"benchmark"`
	Mechanism string      `json:"mechanism"`
	Series    *obs.Series `json:"series"`
}

// jsonReport aggregates whatever suites ran. The fig5/table5/table4 fields
// keep their original names and positions so single-suite JSON output is
// unchanged; the remaining suites follow in -suite all order. Build stamps
// the producing binary into every document.
type jsonReport struct {
	Build    buildinfo.Info    `json:"build"`
	Fig5     []jsonFig5Row     `json:"fig5,omitempty"`
	Table5   []jsonTable5Row   `json:"table5,omitempty"`
	Table4   []jsonAttackRow   `json:"table4,omitempty"`
	Table6   []jsonTable6Core  `json:"table6,omitempty"`
	Scope    *jsonScope        `json:"scope,omitempty"`
	LRU      *jsonLRU          `json:"lru,omitempty"`
	ICache   *jsonICache       `json:"icache,omitempty"`
	DTLB     *jsonDTLB         `json:"dtlb,omitempty"`
	Compare  *jsonCompare      `json:"compare,omitempty"`
	Overhead string            `json:"overhead_text,omitempty"`
	Series   []jsonSeriesEntry `json:"series,omitempty"`
	Errors   []jsonRunError    `json:"errors,omitempty"`
}

func fig5JSON(ev *exp.Evaluation) []jsonFig5Row {
	rows := make([]jsonFig5Row, 0, len(ev.Benches))
	for _, b := range ev.Benches {
		rows = append(rows, jsonFig5Row{
			Benchmark: b.Name,
			Baseline:  1 + b.Overhead(core.Baseline),
			CacheHit:  1 + b.Overhead(core.CacheHit),
			TPBuf:     1 + b.Overhead(core.CacheHitTPBuf),
		})
	}
	return rows
}

func table5JSON(ev *exp.Evaluation) []jsonTable5Row {
	rows := make([]jsonTable5Row, 0, len(ev.Benches))
	for _, b := range ev.Benches {
		rows = append(rows, jsonTable5Row{
			Benchmark:       b.Name,
			L1HitRate:       b.Results[core.Origin].L1D.HitRate(),
			BaselineBlocked: b.Results[core.Baseline].Filter.BlockedRate(),
			CacheHitBlocked: b.Results[core.CacheHit].Filter.BlockedRate(),
			SpecHitRate:     b.Results[core.CacheHit].Filter.SpecHitRate(),
			TPBufBlocked:    b.Results[core.CacheHitTPBuf].Filter.BlockedRate(),
			MismatchRate:    b.Results[core.CacheHitTPBuf].TPBuf.MismatchRate(),
		})
	}
	return rows
}

// seriesJSON collects the per-run metric time series out of an evaluation,
// in benchmark then mechanism order. Empty unless the runs were executed
// with a non-zero MetricsInterval.
func seriesJSON(ev *exp.Evaluation) []jsonSeriesEntry {
	var out []jsonSeriesEntry
	for _, b := range ev.Benches {
		for _, m := range core.Mechanisms {
			if s := b.Results[m].Series; s != nil {
				out = append(out, jsonSeriesEntry{Benchmark: b.Name, Mechanism: m.String(), Series: s})
			}
		}
	}
	return out
}

func table4JSON(outcomes []attack.Outcome) []jsonAttackRow {
	rows := make([]jsonAttackRow, 0, len(outcomes))
	for _, o := range outcomes {
		rows = append(rows, jsonAttackRow{
			Scenario:  o.Scenario,
			Mechanism: o.Mechanism,
			Correct:   o.Correct,
			Total:     len(o.Secret),
			Leaked:    o.Leaked,
		})
	}
	return rows
}

func table6JSON(cores []exp.Table6Core) []jsonTable6Core {
	out := make([]jsonTable6Core, 0, len(cores))
	for _, tc := range cores {
		jc := jsonTable6Core{
			Core: tc.Core,
			Average: jsonTable6Row{
				Benchmark: tc.Avg.Benchmark,
				Baseline:  tc.Avg.Baseline,
				CacheHit:  tc.Avg.CacheHit,
				TPBuf:     tc.Avg.TPBuf,
			},
		}
		for _, r := range tc.Rows {
			jc.Rows = append(jc.Rows, jsonTable6Row{
				Benchmark: r.Benchmark,
				Baseline:  r.Baseline,
				CacheHit:  r.CacheHit,
				TPBuf:     r.TPBuf,
			})
		}
		out = append(out, jc)
	}
	return out
}

func scopeJSON(r *exp.ScopeResult) *jsonScope {
	out := &jsonScope{BranchOnlyAvg: r.BranchOnlyAvg, FullAvg: r.FullAvg}
	for _, name := range workload.Names() {
		v, ok := r.PerBench[name]
		if !ok {
			continue
		}
		out.Rows = append(out.Rows, jsonScopeRow{
			Benchmark:            name,
			BranchOnly:           v[0],
			Full:                 v[1],
			UnresolvedBranchFrac: r.UnresolvedBranchFrac[name],
		})
	}
	return out
}

func lruJSON(r *exp.LRUResult) *jsonLRU {
	return &jsonLRU{Always: r.Always, NoUpdate: r.NoUpdate, Delayed: r.Delayed}
}

func icacheJSON(r *exp.ICacheResult) *jsonICache {
	return &jsonICache{Without: r.Without, With: r.With, FetchStalls: r.Stalls}
}

func dtlbJSON(r *exp.DTLBResult) *jsonDTLB {
	return &jsonDTLB{Without: r.Without, With: r.With, Blocks: r.Blocks}
}

func compareJSON(r *exp.CompareResult) *jsonCompare {
	out := &jsonCompare{Average: jsonCompareRow{
		Benchmark: r.Avg.Benchmark,
		TPBuf:     r.Avg.TPBuf,
		Invisi:    r.Avg.Invisi,
		SWFence:   r.Avg.SWFence,
	}}
	for _, row := range r.Rows {
		out.Rows = append(out.Rows, jsonCompareRow{
			Benchmark: row.Benchmark,
			TPBuf:     row.TPBuf,
			Invisi:    row.Invisi,
			SWFence:   row.SWFence,
		})
	}
	return out
}

func errorsJSON(errs []exp.RunError) []jsonRunError {
	out := make([]jsonRunError, 0, len(errs))
	for _, e := range errs {
		out = append(out, jsonRunError{
			Suite:     string(e.Suite),
			Benchmark: e.Benchmark,
			Mechanism: e.Mechanism,
			Outcome:   e.Outcome,
			Error:     e.Err.Error(),
		})
	}
	return out
}

func emitJSON(r jsonReport) {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(r); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
