package attack

import (
	"testing"

	"conspec/internal/config"
	"conspec/internal/core"
	"conspec/internal/mem"
	"conspec/internal/pipeline"
)

// attackCore shrinks the outer cache levels so runs stay fast while keeping
// the L1D geometry (which the set-granular receivers depend on) identical
// to the paper configuration.
func attackCore() config.Core {
	c := config.PaperCore()
	c.Mem.L2Size = 256 * 1024
	c.Mem.L3Size = 1024 * 1024
	return c
}

func runScenario(t *testing.T, h *Harness, m core.Mechanism) Outcome {
	t.Helper()
	return h.Run(attackCore(), pipeline.SecurityConfig{Mechanism: m})
}

// TestV1FlushReloadLeaksOnOrigin is the foundational sanity check: the
// attack must actually work on the unprotected machine.
func TestV1FlushReloadLeaksOnOrigin(t *testing.T) {
	o := runScenario(t, V1FlushReload(attackCore()), core.Origin)
	if o.Correct != len(o.Secret) {
		t.Fatalf("V1 F+R on Origin recovered %d/%d bytes: %x vs %x",
			o.Correct, len(o.Secret), o.Recovered, o.Secret)
	}
}

// TestTableIV regenerates the paper's Table IV: every scenario under every
// mechanism, compared against the published ✓/✗ matrix.
func TestTableIV(t *testing.T) {
	cfg := attackCore()
	for _, h := range Scenarios(cfg) {
		for _, m := range core.Mechanisms {
			o := h.Run(cfg, pipeline.SecurityConfig{Mechanism: m})
			wantDefended := ExpectedDefense(h.Class, h.SharedMemory, m.String())
			if o.Leaked == wantDefended {
				t.Errorf("%s under %v: leaked=%v (recovered %x, secret %x), Table IV expects defended=%v",
					h.Name, m, o.Leaked, o.Recovered, o.Secret, wantDefended)
			}
		}
	}
}

func TestScenarioMetadata(t *testing.T) {
	cfg := attackCore()
	ss := Scenarios(cfg)
	if len(ss) != 10 {
		t.Fatalf("expected 10 scenarios, got %d", len(ss))
	}
	classes := map[string]bool{}
	for _, h := range ss {
		if h.Name == "" || h.Class == "" || h.Variant == "" {
			t.Errorf("incomplete metadata: %+v", h)
		}
		classes[h.Class] = true
	}
	for _, c := range []string{ClassFlushReloadShared, ClassFlushFlushShared,
		ClassEvictReloadShared, ClassPrimeProbeShared,
		ClassPrimeProbePrivate, ClassEvictTimePrivate} {
		if !classes[c] {
			t.Errorf("Table IV class %q not covered", c)
		}
	}
	if _, ok := ByName(cfg, "spectre-v1/flush+reload"); !ok {
		t.Error("ByName lookup failed")
	}
	if _, ok := ByName(cfg, "no-such"); ok {
		t.Error("ByName must reject unknown scenarios")
	}
}

func TestSecretValuesValid(t *testing.T) {
	for i, s := range defaultSecret {
		if s == 0 || int(s) >= probeEntries {
			t.Errorf("secret[%d]=%#x outside (0,%d)", i, s, probeEntries)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	o := Outcome{Scenario: "x", Mechanism: "y", Secret: []byte{1, 2}, Correct: 2, Leaked: true}
	if s := o.String(); s == "" {
		t.Fatal("empty outcome string")
	}
	o.Leaked = false
	if s := o.String(); s == "" {
		t.Fatal("empty outcome string")
	}
}

// TestLRUSideChannel reproduces §VII.A's motivation end to end: suspect
// HITS leak through replacement metadata under the conventional update
// policy — a channel the cache-content filters cannot see — and the
// paper's no-update policy closes it. Delayed-update also defends: the
// speculative hit is squashed, so its deferred touch never commits.
func TestLRUSideChannel(t *testing.T) {
	h := LRUSideChannel(attackCore())
	for _, tc := range []struct {
		policy mem.UpdatePolicy
		leak   bool
	}{
		{mem.UpdateAlways, true},
		{mem.UpdateNoSpec, false},
		{mem.UpdateDelayed, false},
	} {
		cfg := attackCore()
		cfg.Mem.L1DUpdate = tc.policy
		o := h.Run(cfg, pipeline.SecurityConfig{Mechanism: core.CacheHitTPBuf})
		if o.Leaked != tc.leak {
			t.Errorf("policy %v: leaked=%v (recovered %x vs %x), want leaked=%v",
				tc.policy, o.Leaked, o.Recovered, o.Secret, tc.leak)
		}
	}
}

// TestInvisiSpecDefendsEverything: the related-work comparator hides all
// speculative refills, so every scenario — including the two non-shared
// rows that escape TPBuf, and the LRU replacement-state channel — must be
// defended.
func TestInvisiSpecDefendsEverything(t *testing.T) {
	cfg := attackCore()
	for _, h := range Scenarios(cfg) {
		o := h.Run(cfg, pipeline.SecurityConfig{Mechanism: core.InvisiSpec})
		if o.Leaked {
			t.Errorf("%s leaked under InvisiSpec: recovered %x", h.Name, o.Recovered)
		}
	}
	o := LRUSideChannel(cfg).Run(cfg, pipeline.SecurityConfig{Mechanism: core.InvisiSpec})
	if o.Leaked {
		t.Errorf("LRU channel leaked under InvisiSpec: recovered %x", o.Recovered)
	}
}

// TestStoreSetsMitigateNaiveV4: with the memory-dependence predictor on,
// the V4 PoC's second pass finds its load refusing to speculate past the
// trained store, so the two-pass attack recovers noise even on an
// otherwise-unprotected core. (Real V4 attacks must also defeat the
// predictor; the naive PoC does not.)
func TestStoreSetsMitigateNaiveV4(t *testing.T) {
	cfg := attackCore()
	cfg.StoreSets = true
	o := V4FlushReload(cfg).Run(cfg, pipeline.SecurityConfig{Mechanism: core.Origin})
	if o.Leaked {
		t.Errorf("store sets should break the naive V4 PoC, recovered %x", o.Recovered)
	}
}

// TestCrossCore runs the full two-core, two-program attack: the attacker
// process on core A leaks the victim service's secret through the shared
// L2 when the victim core is unprotected, and fails when the victim runs
// any Conditional Speculation mechanism.
func TestCrossCore(t *testing.T) {
	cfg := attackCore()
	for _, m := range core.Mechanisms {
		o := RunCrossCore(cfg, m)
		wantLeak := m == core.Origin
		if o.Leaked != wantLeak {
			t.Errorf("victim %v: leaked=%v (recovered %x vs %x), want %v",
				m, o.Leaked, o.Recovered, o.Secret, wantLeak)
		}
	}
}

// TestDTLBChannelAndFilter is the finding-to-fix arc: a raw-timing receiver
// leaks through DTLB refills even when every cache refill is blocked
// (CacheHit and TPBuf translate before discarding); Baseline never issues
// the access so it defends; and the DTLB-hit filter extension closes the
// channel for the filter mechanisms.
func TestDTLBChannelAndFilter(t *testing.T) {
	cfg := attackCore()
	h := V1TLBChannel(cfg)
	// Plain CacheHit is omitted from the leak assertions: its own blocking
	// of the probe loads (no TPBuf rescue) adds enough timing noise to mask
	// the 30-cycle walk signal — an empirical observation, not a defense
	// guarantee.
	cases := []struct {
		mech   core.Mechanism
		dtlb   bool
		leaked bool
	}{
		{core.Origin, false, true},
		{core.Baseline, false, false},
		{core.CacheHitTPBuf, false, true}, // TLB refilled despite the discard
		{core.CacheHit, true, false},      // DTLB-hit filter closes it
		{core.CacheHitTPBuf, true, false},
	}
	for _, tc := range cases {
		o := h.Run(cfg, pipeline.SecurityConfig{Mechanism: tc.mech, DTLBFilter: tc.dtlb})
		if o.Leaked != tc.leaked {
			t.Errorf("%v dtlbFilter=%v: leaked=%v (recovered %x), want %v",
				tc.mech, tc.dtlb, o.Leaked, o.Recovered, tc.leaked)
		}
	}
}

// TestTPBufVariantsStillDefend: both ablation variants are at least as
// strict as the paper's matcher on the shared-memory attack, and the
// line-granular variant still defends it too.
func TestTPBufVariantsStillDefend(t *testing.T) {
	cfg := attackCore()
	h := V1FlushReload(cfg)
	for _, v := range []core.TPBufVariant{core.VariantNoW, core.VariantLine} {
		o := h.Run(cfg, pipeline.SecurityConfig{
			Mechanism: core.CacheHitTPBuf, TPBufVariant: v})
		if o.Leaked {
			t.Errorf("variant %v leaked: %x", v, o.Recovered)
		}
	}
}

// TestSSBDStopsV4: the speculative-store-bypass-disable mitigation (§VIII)
// kills V4 on an otherwise unprotected core, and V1 remains exploitable —
// SSBD addresses exactly one variant.
func TestSSBDStopsV4(t *testing.T) {
	cfg := attackCore()
	o := V4FlushReload(cfg).Run(cfg, pipeline.SecurityConfig{Mechanism: core.Origin, SSBD: true})
	if o.Leaked {
		t.Errorf("SSBD must stop V4, recovered %x", o.Recovered)
	}
	o = V1FlushReload(cfg).Run(cfg, pipeline.SecurityConfig{Mechanism: core.Origin, SSBD: true})
	if !o.Leaked {
		t.Error("SSBD must NOT stop V1 (it is a V4-only mitigation)")
	}
}
