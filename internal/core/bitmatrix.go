// Package core implements the paper's primary contribution: the security
// dependence matrix integrated in the issue queue (§V.B), the suspect
// speculation flag, the hazard filters that decide whether a suspect memory
// access may execute speculatively — the Cache-hit filter (§V.C) and the
// Trusted Page Buffer with its S-Pattern detector (§V.D) — and the policy
// knobs that select between the paper's evaluated mechanisms (Origin,
// Baseline, Cache-hit Filter, Cache-hit + TPBuf Filter).
//
// The structures are written the way the RTL would be: an NxN bit matrix
// with row-OR hazard reduction and single-cycle column clears, and a CAM-like
// TPBuf whose safety equation is the paper's eq. (1),
//
//	safe = !( |(V & W & S & Match) )
//
// with Match the "accesses a different physical page" vector per Table II.
package core

import "fmt"

const wordBits = 64

// BitMatrix is a dense NxN bit matrix supporting the row and column
// operations the security dependence matrix needs: per-row set at dispatch,
// row-OR reduction at select, and column clear at dependence clearance.
//
// Each row keeps a set-bit count (rowCnt) maintained by every mutation, so
// RowAny — the hazard reduction the select stage evaluates for every
// candidate every cycle — is a single counter test instead of an O(words)
// OR over the row.
type BitMatrix struct {
	n      int
	words  int // words per row
	bits   []uint64
	rowCnt []int // set bits per row (cached row-OR summary)
}

// NewBitMatrix returns an n x n zero matrix.
func NewBitMatrix(n int) *BitMatrix {
	if n <= 0 {
		panic(fmt.Sprintf("core: bit matrix size %d", n))
	}
	w := (n + wordBits - 1) / wordBits
	return &BitMatrix{n: n, words: w, bits: make([]uint64, n*w), rowCnt: make([]int, n)}
}

// Size returns n.
func (m *BitMatrix) Size() int { return m.n }

func (m *BitMatrix) check(i int) {
	if i < 0 || i >= m.n {
		panic(fmt.Sprintf("core: index %d out of range [0,%d)", i, m.n))
	}
}

// Set sets bit [i,j].
func (m *BitMatrix) Set(i, j int) {
	m.check(i)
	m.check(j)
	w := &m.bits[i*m.words+j/wordBits]
	bit := uint64(1) << (uint(j) % wordBits)
	if *w&bit == 0 {
		*w |= bit
		m.rowCnt[i]++
	}
}

// Clear clears bit [i,j].
func (m *BitMatrix) Clear(i, j int) {
	m.check(i)
	m.check(j)
	w := &m.bits[i*m.words+j/wordBits]
	bit := uint64(1) << (uint(j) % wordBits)
	if *w&bit != 0 {
		*w &^= bit
		m.rowCnt[i]--
	}
}

// Get reports bit [i,j].
func (m *BitMatrix) Get(i, j int) bool {
	m.check(i)
	m.check(j)
	return m.bits[i*m.words+j/wordBits]&(1<<(uint(j)%wordBits)) != 0
}

// RowAny reports whether any bit in row i is set — the reduction-OR the
// paper uses to detect a potential security hazard for the issuing entry.
// O(1): it tests the maintained per-row set-bit count.
func (m *BitMatrix) RowAny(i int) bool {
	m.check(i)
	return m.rowCnt[i] != 0
}

// ClearRow zeroes row i (entry deallocated or squashed).
func (m *BitMatrix) ClearRow(i int) {
	m.check(i)
	if m.rowCnt[i] == 0 {
		return // already empty: skip the word walk
	}
	row := m.bits[i*m.words : (i+1)*m.words]
	for k := range row {
		row[k] = 0
	}
	m.rowCnt[i] = 0
}

// ClearCol zeroes column j across all rows — the dependence clearance that
// happens one cycle after entry j issues.
func (m *BitMatrix) ClearCol(j int) {
	m.check(j)
	w, b := j/wordBits, uint(j)%wordBits
	bit := uint64(1) << b
	for i := 0; i < m.n; i++ {
		if m.bits[i*m.words+w]&bit != 0 {
			m.bits[i*m.words+w] &^= bit
			m.rowCnt[i]--
		}
	}
}

// PopCount returns the number of set bits (diagnostics and area modelling).
func (m *BitMatrix) PopCount() int {
	n := 0
	for _, c := range m.rowCnt {
		n += c
	}
	return n
}

// Reset zeroes the whole matrix.
func (m *BitMatrix) Reset() {
	for i := range m.bits {
		m.bits[i] = 0
	}
	for i := range m.rowCnt {
		m.rowCnt[i] = 0
	}
}
