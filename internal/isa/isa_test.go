package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(op uint8, rd, rs1, rs2 uint8, imm int32) bool {
		in := Inst{Op: Op(op), Rd: rd, Rs1: rs1, Rs2: rs2, Imm: imm}
		return Decode(Encode(in)) == in
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeEncodeRoundTrip(t *testing.T) {
	f := func(w uint64) bool { return Encode(Decode(w)) == w }
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestOpClassesDisjoint(t *testing.T) {
	for o := Op(0); o < opCount; o++ {
		if o.IsLoad() && o.IsStore() {
			t.Errorf("%v is both load and store", o)
		}
		if o.IsMem() && o.IsBranch() {
			t.Errorf("%v is both mem and branch", o)
		}
		if (o.IsLoad() || o.IsStore()) && !o.IsMem() {
			t.Errorf("%v is load/store but not mem", o)
		}
		if o.IsCondBranch() && !o.IsBranch() {
			t.Errorf("%v cond branch must be branch", o)
		}
	}
}

func TestOpStringsUnique(t *testing.T) {
	seen := make(map[string]Op)
	for o := Op(0); o < opCount; o++ {
		s := o.String()
		if prev, dup := seen[s]; dup {
			t.Errorf("opcodes %d and %d share mnemonic %q", prev, o, s)
		}
		seen[s] = o
	}
}

func TestMemBytes(t *testing.T) {
	cases := map[Op]int{OpLd: 8, OpSt: 8, OpLd1: 1, OpSt1: 1, OpAdd: 0, OpBeq: 0}
	for op, want := range cases {
		if got := op.MemBytes(); got != want {
			t.Errorf("%v.MemBytes() = %d, want %d", op, got, want)
		}
	}
}

func TestHasDest(t *testing.T) {
	if (Inst{Op: OpAdd, Rd: 0}).HasDest() {
		t.Error("write to x0 must not count as a destination")
	}
	if !(Inst{Op: OpAdd, Rd: 5}).HasDest() {
		t.Error("add with rd=x5 has a destination")
	}
	if (Inst{Op: OpSt, Rd: 5}).HasDest() {
		t.Error("store has no destination")
	}
	if !(Inst{Op: OpJal, Rd: 1}).HasDest() {
		t.Error("jal x1 links")
	}
	if (Inst{Op: OpBeq, Rd: 3}).HasDest() {
		t.Error("branch has no destination")
	}
}

func TestEvalALUBasics(t *testing.T) {
	cases := []struct {
		in   Inst
		a, b uint64
		want uint64
	}{
		{Inst{Op: OpAdd}, 2, 3, 5},
		{Inst{Op: OpSub}, 2, 3, ^uint64(0)},
		{Inst{Op: OpAnd}, 0xF0, 0x3C, 0x30},
		{Inst{Op: OpOr}, 0xF0, 0x0C, 0xFC},
		{Inst{Op: OpXor}, 0xFF, 0x0F, 0xF0},
		{Inst{Op: OpShl}, 1, 12, 4096},
		{Inst{Op: OpShr}, 4096, 12, 1},
		{Inst{Op: OpSra}, ^uint64(7), 1, ^uint64(3)}, // -8 >> 1 == -4
		{Inst{Op: OpSlt}, ^uint64(0), 1, 1},          // -1 < 1 signed
		{Inst{Op: OpSltu}, ^uint64(0), 1, 0},
		{Inst{Op: OpAddi, Imm: -1}, 10, 0, 9},
		{Inst{Op: OpShli, Imm: 12}, 1, 0, 4096},
		{Inst{Op: OpLi, Imm: -5}, 0, 0, ^uint64(4)},
		{Inst{Op: OpMul}, 7, 6, 42},
		{Inst{Op: OpDiv}, 42, 6, 7},
		{Inst{Op: OpDiv}, 42, 0, ^uint64(0)},
		{Inst{Op: OpRem}, 43, 6, 1},
		{Inst{Op: OpRem}, 43, 0, 43},
	}
	for _, c := range cases {
		if got := EvalALU(c.in, c.a, c.b, 0); got != c.want {
			t.Errorf("EvalALU(%v, %d, %d) = %d, want %d", c.in.Op, c.a, c.b, got, c.want)
		}
	}
}

func TestEvalALUDivOverflow(t *testing.T) {
	minInt := uint64(1) << 63
	if got := EvalALU(Inst{Op: OpDiv}, minInt, ^uint64(0), 0); got != minInt {
		t.Errorf("MinInt64 / -1 = %#x, want dividend %#x", got, minInt)
	}
	if got := EvalALU(Inst{Op: OpRem}, minInt, ^uint64(0), 0); got != 0 {
		t.Errorf("MinInt64 %% -1 = %#x, want 0", got)
	}
}

func TestBranchTaken(t *testing.T) {
	neg := ^uint64(0)
	cases := []struct {
		op   Op
		a, b uint64
		want bool
	}{
		{OpBeq, 5, 5, true}, {OpBeq, 5, 6, false},
		{OpBne, 5, 6, true}, {OpBne, 5, 5, false},
		{OpBlt, neg, 0, true}, {OpBlt, 0, neg, false},
		{OpBge, 0, neg, true}, {OpBge, neg, 0, false},
		{OpBltu, 0, neg, true}, {OpBltu, neg, 0, false},
		{OpBgeu, neg, 0, true}, {OpBgeu, 0, neg, false},
	}
	for _, c := range cases {
		if got := BranchTaken(c.op, c.a, c.b); got != c.want {
			t.Errorf("BranchTaken(%v, %d, %d) = %v, want %v", c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestFlatMemRoundTrip(t *testing.T) {
	f := func(addr uint64, val uint64, size uint8) bool {
		m := NewFlatMem()
		n := int(size%8) + 1
		addr &= (1 << 40) - 1 // keep page map small
		m.Write(addr, n, val)
		mask := ^uint64(0)
		if n < 8 {
			mask = (1 << (8 * n)) - 1
		}
		return m.Read(addr, n) == val&mask
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFlatMemCrossPage(t *testing.T) {
	m := NewFlatMem()
	addr := uint64(PageSize - 3)
	m.Write(addr, 8, 0x0807060504030201)
	if got := m.Read(addr, 8); got != 0x0807060504030201 {
		t.Fatalf("cross-page read = %#x", got)
	}
	if m.Pages() != 2 {
		t.Fatalf("expected 2 resident pages, got %d", m.Pages())
	}
}

func TestFlatMemZeroDefault(t *testing.T) {
	m := NewFlatMem()
	if got := m.Read(0xDEAD000, 8); got != 0 {
		t.Fatalf("unwritten memory reads %#x, want 0", got)
	}
	if m.Pages() != 0 {
		t.Fatal("read must not allocate pages")
	}
}

func TestFlatMemBytes(t *testing.T) {
	m := NewFlatMem()
	data := []byte{1, 2, 3, 4, 5}
	m.SetBytes(0x1000, data)
	got := m.BytesAt(0x1000, 5)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], data[i])
		}
	}
}

// loadProgram writes instructions at base and returns an interpreter.
func loadProgram(insts []Inst, base uint64) *Interp {
	m := NewFlatMem()
	for i, in := range insts {
		m.Write(base+uint64(i)*InstBytes, InstBytes, Encode(in))
	}
	return NewInterp(m, base)
}

func TestInterpStraightLine(t *testing.T) {
	p := loadProgram([]Inst{
		{Op: OpLi, Rd: 1, Imm: 40},
		{Op: OpAddi, Rd: 2, Rs1: 1, Imm: 2},
		{Op: OpAdd, Rd: 3, Rs1: 1, Rs2: 2},
		{Op: OpHalt},
	}, 0x1000)
	if _, err := p.Run(100); err != nil {
		t.Fatal(err)
	}
	if p.Regs[3] != 82 {
		t.Fatalf("x3 = %d, want 82", p.Regs[3])
	}
	if !p.Halted {
		t.Fatal("program should have halted")
	}
	if p.InstRet != 4 {
		t.Fatalf("retired %d, want 4", p.InstRet)
	}
}

func TestInterpLoop(t *testing.T) {
	// Sum 1..10 with a backward branch.
	p := loadProgram([]Inst{
		{Op: OpLi, Rd: 1, Imm: 0},                        // 0x1000 sum
		{Op: OpLi, Rd: 2, Imm: 1},                        // 0x1008 i
		{Op: OpLi, Rd: 3, Imm: 10},                       // 0x1010 n
		{Op: OpAdd, Rd: 1, Rs1: 1, Rs2: 2},               // 0x1018 loop:
		{Op: OpAddi, Rd: 2, Rs1: 2, Imm: 1},              // 0x1020
		{Op: OpBge, Rs1: 3, Rs2: 2, Imm: -2 * InstBytes}, // 0x1028 -> loop
		{Op: OpHalt},
	}, 0x1000)
	if _, err := p.Run(1000); err != nil {
		t.Fatal(err)
	}
	if p.Regs[1] != 55 {
		t.Fatalf("sum = %d, want 55", p.Regs[1])
	}
}

func TestInterpMemoryAndX0(t *testing.T) {
	p := loadProgram([]Inst{
		{Op: OpLi, Rd: 1, Imm: 0x2000},
		{Op: OpLi, Rd: 2, Imm: 0x55},
		{Op: OpSt, Rs1: 1, Rs2: 2, Imm: 8},
		{Op: OpLd, Rd: 3, Rs1: 1, Imm: 8},
		{Op: OpSt1, Rs1: 1, Rs2: 3, Imm: 100},
		{Op: OpLd1, Rd: 4, Rs1: 1, Imm: 100},
		{Op: OpLi, Rd: 0, Imm: 99}, // write to x0 discarded
		{Op: OpAdd, Rd: 5, Rs1: 0, Rs2: 4},
		{Op: OpHalt},
	}, 0)
	if _, err := p.Run(100); err != nil {
		t.Fatal(err)
	}
	if p.Regs[3] != 0x55 || p.Regs[4] != 0x55 || p.Regs[5] != 0x55 {
		t.Fatalf("x3=%#x x4=%#x x5=%#x, want all 0x55", p.Regs[3], p.Regs[4], p.Regs[5])
	}
	if p.Regs[0] != 0 {
		t.Fatal("x0 must stay zero")
	}
}

func TestInterpJalJalr(t *testing.T) {
	// call +3; target sets x5 and returns via jalr.
	p := loadProgram([]Inst{
		{Op: OpJal, Rd: 1, Imm: 3 * InstBytes}, // 0: call 24
		{Op: OpAddi, Rd: 6, Rs1: 5, Imm: 1},    // 8: after return
		{Op: OpHalt},                           // 16
		{Op: OpLi, Rd: 5, Imm: 41},             // 24: callee
		{Op: OpJalr, Rd: 0, Rs1: 1, Imm: 0},    // 32: ret
	}, 0)
	if _, err := p.Run(100); err != nil {
		t.Fatal(err)
	}
	if p.Regs[6] != 42 {
		t.Fatalf("x6 = %d, want 42", p.Regs[6])
	}
	if p.Regs[1] != InstBytes {
		t.Fatalf("link = %#x, want %#x", p.Regs[1], uint64(InstBytes))
	}
}

func TestInterpBadOpcode(t *testing.T) {
	m := NewFlatMem()
	m.Write(0, InstBytes, Encode(Inst{Op: opCount + 5}))
	p := NewInterp(m, 0)
	if err := p.Step(); err == nil {
		t.Fatal("expected ErrBadOpcode")
	} else if _, ok := err.(ErrBadOpcode); !ok {
		t.Fatalf("got %T, want ErrBadOpcode", err)
	}
}

func TestInterpHaltedIsSticky(t *testing.T) {
	p := loadProgram([]Inst{{Op: OpHalt}}, 0)
	if _, err := p.Run(10); err != nil {
		t.Fatal(err)
	}
	pc := p.PC
	if err := p.Step(); err != nil || p.PC != pc || p.InstRet != 1 {
		t.Fatal("Step after halt must be a no-op")
	}
}

func TestInterpRdcycleMonotonic(t *testing.T) {
	p := loadProgram([]Inst{
		{Op: OpRdcycle, Rd: 1},
		{Op: OpNop},
		{Op: OpRdcycle, Rd: 2},
		{Op: OpHalt},
	}, 0)
	if _, err := p.Run(10); err != nil {
		t.Fatal(err)
	}
	if p.Regs[2] <= p.Regs[1] {
		t.Fatalf("rdcycle not monotonic: %d then %d", p.Regs[1], p.Regs[2])
	}
}

// TestInterpRandomProgramsTerminate generates random straight-line ALU
// programs (no control flow) and checks the interpreter never faults and
// always halts — a smoke property for EvalALU coverage.
func TestInterpRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	aluOps := []Op{OpAdd, OpSub, OpAnd, OpOr, OpXor, OpShl, OpShr, OpSra,
		OpSlt, OpSltu, OpAddi, OpAndi, OpOri, OpXori, OpShli, OpShri, OpSrai,
		OpLi, OpMul, OpDiv, OpRem}
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(50)
		insts := make([]Inst, 0, n+1)
		for i := 0; i < n; i++ {
			insts = append(insts, Inst{
				Op:  aluOps[rng.Intn(len(aluOps))],
				Rd:  uint8(rng.Intn(NumRegs)),
				Rs1: uint8(rng.Intn(NumRegs)),
				Rs2: uint8(rng.Intn(NumRegs)),
				Imm: int32(rng.Uint32()),
			})
		}
		insts = append(insts, Inst{Op: OpHalt})
		p := loadProgram(insts, 0x4000)
		ran, err := p.Run(uint64(n + 2))
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !p.Halted {
			t.Fatalf("trial %d: did not halt after %d insts", trial, ran)
		}
		if p.Regs[0] != 0 {
			t.Fatalf("trial %d: x0 clobbered", trial)
		}
	}
}

func TestInstValidRejectsBadRegisters(t *testing.T) {
	if (Inst{Op: OpAdd, Rd: 32}).Valid() {
		t.Error("rd out of range must be invalid")
	}
	if (Inst{Op: OpAdd, Rs1: 200}).Valid() {
		t.Error("rs1 out of range must be invalid")
	}
	if (Inst{Op: opCount}).Valid() {
		t.Error("undefined opcode must be invalid")
	}
	if !(Inst{Op: OpAdd, Rd: 31, Rs1: 31, Rs2: 31}).Valid() {
		t.Error("maximal legal registers must be valid")
	}
}

func TestInterpRejectsBadRegisterEncoding(t *testing.T) {
	m := NewFlatMem()
	m.Write(0, InstBytes, Encode(Inst{Op: OpAdd, Rd: 40}))
	p := NewInterp(m, 0)
	if err := p.Step(); err == nil {
		t.Fatal("out-of-range register field must fault")
	}
}
