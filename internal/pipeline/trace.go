package pipeline

import (
	"fmt"
	"io"
)

// AttachTracer streams a line per pipeline event (fetch, dispatch, issue,
// writeback, commit, squash) to w. Intended for debugging guest programs
// and for teaching: `conspec-asm -trace` uses it. A nil w detaches.
func (c *CPU) AttachTracer(w io.Writer) { c.tracer = w }

func (c *CPU) trace(format string, args ...any) {
	if c.tracer == nil {
		return
	}
	fmt.Fprintf(c.tracer, format, args...)
}

func (c *CPU) traceEvent(ev string, u *uop) {
	if c.tracer == nil {
		return
	}
	fmt.Fprintf(c.tracer, "%8d %-8s seq=%-6d pc=%#x  %v\n",
		c.cycle, ev, u.seq, u.pc, u.inst)
}
