package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func newSmallCache() *Cache {
	// 4 sets x 2 ways x 64B lines = 512B.
	return NewCache("t", 512, 2, 64, 2)
}

func TestCacheGeometry(t *testing.T) {
	c := NewCache("L1D", 64*1024, 4, 64, 2)
	if c.Sets() != 256 || c.Ways() != 4 || c.LineBytes() != 64 {
		t.Fatalf("geometry sets=%d ways=%d line=%d", c.Sets(), c.Ways(), c.LineBytes())
	}
}

func TestCacheInvalidGeometryPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewCache("x", 100, 2, 64, 1) }, // size not divisible
		func() { NewCache("x", 0, 2, 64, 1) },   // zero size
		func() { NewCache("x", 512, 3, 64, 1) }, // hmm: 512/(3*64) not integral -> covered
		func() { NewCache("x", 768, 2, 96, 1) }, // line not power of two
		func() { NewCache("x", 384, 2, 64, 1) }, // sets=3 not power of two
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic on invalid geometry")
				}
			}()
			f()
		}()
	}
}

func TestCacheMissThenRefillThenHit(t *testing.T) {
	c := newSmallCache()
	addr := uint64(0x1000)
	if c.Access(addr, true) {
		t.Fatal("cold cache must miss")
	}
	c.Refill(addr)
	if !c.Access(addr, true) {
		t.Fatal("refilled line must hit")
	}
	if !c.Probe(addr) {
		t.Fatal("probe must see the line")
	}
	if c.Stats.Hits != 1 || c.Stats.Misses != 1 || c.Stats.Accesses != 2 {
		t.Fatalf("stats %+v", c.Stats)
	}
}

func TestCacheSameLineDifferentOffsets(t *testing.T) {
	c := newSmallCache()
	c.Refill(0x1000)
	if !c.Probe(0x103F) {
		t.Fatal("offset 63 must be on the same 64B line")
	}
	if c.Probe(0x1040) {
		t.Fatal("offset 64 is the next line")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newSmallCache() // 2 ways
	// Three lines mapping to the same set: stride = sets*line = 4*64 = 256.
	a, b, d := uint64(0x0000), uint64(0x0100), uint64(0x0200)
	c.Refill(a)
	c.Refill(b)
	c.Access(a, true) // make a MRU
	evicted, did := c.Refill(d)
	if !did || evicted != b {
		t.Fatalf("evicted %#x (did=%v), want %#x", evicted, did, b)
	}
	if c.Probe(b) {
		t.Fatal("b must be evicted")
	}
	if !c.Probe(a) || !c.Probe(d) {
		t.Fatal("a and d must be resident")
	}
}

func TestCacheNoTouchKeepsLRUOrder(t *testing.T) {
	c := newSmallCache()
	a, b, d := uint64(0x0000), uint64(0x0100), uint64(0x0200)
	c.Refill(a)
	c.Refill(b)
	// Access a WITHOUT touch: a stays LRU, so refilling d evicts a.
	c.Access(a, false)
	evicted, did := c.Refill(d)
	if !did || evicted != a {
		t.Fatalf("evicted %#x, want %#x (no-touch access must not refresh LRU)", evicted, a)
	}
}

func TestCacheTouchRefreshes(t *testing.T) {
	c := newSmallCache()
	a, b, d := uint64(0x0000), uint64(0x0100), uint64(0x0200)
	c.Refill(a)
	c.Refill(b)
	c.Touch(a) // deferred LRU update
	evicted, _ := c.Refill(d)
	if evicted != b {
		t.Fatalf("evicted %#x, want %#x after Touch(a)", evicted, b)
	}
	// Touch on a missing line is a no-op.
	c.Touch(0x9999000)
}

func TestCacheFlush(t *testing.T) {
	c := newSmallCache()
	c.Refill(0x1000)
	if !c.Flush(0x1008) { // same line
		t.Fatal("flush must find the line")
	}
	if c.Probe(0x1000) {
		t.Fatal("flushed line still resident")
	}
	if c.Flush(0x1000) {
		t.Fatal("second flush must miss")
	}
	if c.Stats.Flushes != 1 {
		t.Fatalf("flushes = %d", c.Stats.Flushes)
	}
}

func TestCacheRefillExistingNoEvict(t *testing.T) {
	c := newSmallCache()
	c.Refill(0x1000)
	if _, did := c.Refill(0x1000); did {
		t.Fatal("refilling resident line must not evict")
	}
	if c.Stats.Refills != 1 {
		t.Fatalf("refills = %d, want 1", c.Stats.Refills)
	}
}

func TestCacheEvictedAddressMapsSameSet(t *testing.T) {
	c := NewCache("t", 4096, 2, 64, 1)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 2000; i++ {
		addr := uint64(rng.Intn(1 << 20))
		before := c.SetIndex(addr)
		if ev, did := c.Refill(addr); did {
			if c.SetIndex(ev) != before {
				t.Fatalf("evicted %#x from set %d, inserting %#x into set %d",
					ev, c.SetIndex(ev), addr, before)
			}
			if c.Probe(ev) {
				t.Fatalf("evicted line %#x still resident", ev)
			}
		}
		if !c.Probe(addr) {
			t.Fatalf("just-refilled %#x not resident", addr)
		}
	}
}

// Property: a cache never holds more than ways lines per set, and Resident
// never exceeds sets*ways.
func TestCacheCapacityInvariant(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		c := newSmallCache()
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < int(n); i++ {
			c.Refill(uint64(rng.Intn(1 << 16)))
		}
		return c.Resident() <= c.Sets()*c.Ways()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: LRU is an exact stack — with w ways, after accessing w distinct
// lines in a set, refilling a new one evicts exactly the least recently used.
func TestCacheLRUStackProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ways := 4
		c := NewCache("p", 4*ways*64, ways, 64, 1) // 4 sets
		// Work within one set: stride 4*64.
		lines := make([]uint64, ways+1)
		for i := range lines {
			lines[i] = uint64(i) * 4 * 64
		}
		for _, a := range lines[:ways] {
			c.Refill(a)
		}
		// Random access order determines LRU order.
		order := rng.Perm(ways)
		for _, i := range order {
			c.Access(lines[i], true)
		}
		evicted, did := c.Refill(lines[ways])
		return did && evicted == lines[order[0]]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestHitRate(t *testing.T) {
	var s CacheStats
	if s.HitRate() != 0 {
		t.Fatal("empty stats hit rate must be 0")
	}
	s = CacheStats{Accesses: 4, Hits: 3}
	if s.HitRate() != 0.75 {
		t.Fatalf("hit rate = %v", s.HitRate())
	}
}

func TestUpdatePolicyString(t *testing.T) {
	if UpdateAlways.String() != "always" || UpdateNoSpec.String() != "no-update" ||
		UpdateDelayed.String() != "delayed-update" {
		t.Fatal("policy names changed")
	}
	if UpdatePolicy(42).String() == "" {
		t.Fatal("unknown policy must still render")
	}
}

func TestLevelString(t *testing.T) {
	want := map[Level]string{LevelL1: "L1", LevelL2: "L2", LevelL3: "L3", LevelMem: "Mem"}
	for l, s := range want {
		if l.String() != s {
			t.Errorf("%d.String() = %q, want %q", l, l.String(), s)
		}
	}
}

func TestReplacementKindStrings(t *testing.T) {
	if ReplLRU.String() != "lru" || ReplTreePLRU.String() != "tree-plru" ||
		ReplRandom.String() != "random" {
		t.Fatal("replacement names changed")
	}
}

func TestTreePLRUBasics(t *testing.T) {
	// 4-way PLRU: touching ways 0..3 in order leaves way 0 as the victim.
	c := NewCache("p", 4*4*64, 4, 64, 1).SetReplacement(ReplTreePLRU)
	stride := uint64(4 * 64) // same-set stride
	for i := 0; i < 4; i++ {
		c.Refill(uint64(i) * stride)
	}
	ev, did := c.Refill(4 * stride)
	if !did || ev != 0 {
		t.Fatalf("PLRU evicted %#x (did=%v), want way touched longest ago (addr 0)", ev, did)
	}
}

func TestTreePLRUTouchProtects(t *testing.T) {
	c := NewCache("p", 4*4*64, 4, 64, 1).SetReplacement(ReplTreePLRU)
	stride := uint64(4 * 64)
	for i := 0; i < 4; i++ {
		c.Refill(uint64(i) * stride)
	}
	c.Access(0, true) // protect way 0
	ev, _ := c.Refill(4 * stride)
	if ev == 0 {
		t.Fatal("freshly touched line must not be the PLRU victim")
	}
}

func TestTreePLRUNoTouchLeavesVictim(t *testing.T) {
	// The §VII.A interaction holds for PLRU too: a no-touch (suspect) hit
	// leaves the tree pointing at the line.
	c := NewCache("p", 4*4*64, 4, 64, 1).SetReplacement(ReplTreePLRU)
	stride := uint64(4 * 64)
	for i := 0; i < 4; i++ {
		c.Refill(uint64(i) * stride)
	}
	c.Access(0, false) // suspect hit, no metadata update
	ev, _ := c.Refill(4 * stride)
	if ev != 0 {
		t.Fatalf("no-touch hit must leave way 0 as victim, evicted %#x", ev)
	}
}

func TestRandomReplacementBounded(t *testing.T) {
	c := NewCache("r", 4*4*64, 4, 64, 1).SetReplacement(ReplRandom)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 3000; i++ {
		c.Refill(uint64(rng.Intn(1 << 18)))
	}
	if c.Resident() > c.Sets()*c.Ways() {
		t.Fatal("capacity invariant violated under random replacement")
	}
	if c.Stats.Evictions == 0 {
		t.Fatal("random policy must evict under pressure")
	}
}

func TestPLRURejectsBadWays(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-power-of-two ways must panic for PLRU")
		}
	}()
	NewCache("p", 3*64*4, 3, 64, 1).SetReplacement(ReplTreePLRU)
}

// TestPLRUHitRateComparable: on a simple reuse pattern, PLRU should track
// LRU within a few points (it is an approximation, not a different regime).
func TestPLRUHitRateComparable(t *testing.T) {
	run := func(k ReplacementKind) float64 {
		c := NewCache("x", 16*1024, 4, 64, 1).SetReplacement(k)
		rng := rand.New(rand.NewSource(77))
		for i := 0; i < 30000; i++ {
			addr := uint64(rng.Intn(24 * 1024)) // slightly bigger than the cache
			if !c.Access(addr, true) {
				c.Refill(addr)
			}
		}
		return c.Stats.HitRate()
	}
	lru, plru := run(ReplLRU), run(ReplTreePLRU)
	if diff := lru - plru; diff < -0.1 || diff > 0.1 {
		t.Fatalf("PLRU hit rate %.3f too far from LRU %.3f", plru, lru)
	}
}
