package pipeline

import (
	"math/rand"
	"testing"

	"conspec/internal/asm"
	"conspec/internal/config"
	"conspec/internal/core"
	"conspec/internal/isa"
)

const testBase = 0x10000

// smallCore returns a paper-shaped but faster-to-simulate configuration.
func smallCore() config.Core {
	c := config.PaperCore()
	c.Mem.L1ISize = 8 * 1024
	c.Mem.L1DSize = 8 * 1024
	c.Mem.L2Size = 64 * 1024
	c.Mem.L3Size = 256 * 1024
	return c
}

func runOn(t *testing.T, cfg config.Core, sec SecurityConfig, prog *asm.Program,
	seed func(m *isa.FlatMem), maxCycles uint64) (*CPU, Result) {
	t.Helper()
	backing := isa.NewFlatMem()
	prog.Load(backing)
	if seed != nil {
		seed(backing)
	}
	cpu := NewWithMemory(cfg, sec, backing)
	cpu.SetPC(prog.Base)
	res := cpu.Run(maxCycles)
	if !cpu.Halted() {
		t.Fatalf("%v: did not halt within %d cycles", sec.Mechanism, maxCycles)
	}
	return cpu, res
}

// runAllMechanisms runs prog under every mechanism and checks architectural
// equivalence with the reference interpreter.
func runAllMechanisms(t *testing.T, prog *asm.Program, seed func(m *isa.FlatMem)) map[core.Mechanism]Result {
	t.Helper()
	// Golden model.
	ref := isa.NewFlatMem()
	prog.Load(ref)
	if seed != nil {
		seed(ref)
	}
	interp := isa.NewInterp(ref, prog.Base)
	if _, err := interp.Run(3_000_000); err != nil {
		t.Fatalf("interpreter: %v", err)
	}
	if !interp.Halted {
		t.Fatal("interpreter did not halt")
	}

	out := make(map[core.Mechanism]Result)
	for _, m := range core.Mechanisms {
		cpu, res := runOn(t, smallCore(), SecurityConfig{Mechanism: m}, prog, seed, 3_000_000)
		for r := 1; r < isa.NumRegs; r++ {
			// RDCYCLE reads differ between timing models by design.
			if progReadsCycle(prog) {
				break
			}
			if got, want := cpu.ArchReg(r), interp.Regs[r]; got != want {
				t.Errorf("%v: x%d = %#x, want %#x", m, r, got, want)
			}
		}
		if res.Committed != interp.InstRet {
			t.Errorf("%v: committed %d, interpreter retired %d", m, res.Committed, interp.InstRet)
		}
		out[m] = res
	}
	return out
}

func progReadsCycle(p *asm.Program) bool {
	for _, in := range p.Insts {
		if in.Op == isa.OpRdcycle {
			return true
		}
	}
	return false
}

func TestSumLoopAllMechanisms(t *testing.T) {
	b := asm.New()
	b.Li(asm.S0, 0)
	b.Li(asm.S1, 1)
	b.Li(asm.S2, 1000)
	b.Bind("loop")
	b.Add(asm.S0, asm.S0, asm.S1)
	b.Addi(asm.S1, asm.S1, 1)
	b.Bge(asm.S2, asm.S1, "loop")
	b.Halt()
	runAllMechanisms(t, b.MustAssemble(testBase), nil)
}

func TestMemoryKernelAllMechanisms(t *testing.T) {
	// Store then reload a sliding window; exercises forwarding and caches.
	b := asm.New()
	b.Li(asm.A0, 0x40000) // buffer
	b.Li(asm.S0, 0)       // i
	b.Li(asm.S1, 200)     // n
	b.Li(asm.S3, 0)       // checksum
	b.Bind("loop")
	b.Shli(asm.T0, asm.S0, 3)
	b.Add(asm.T1, asm.A0, asm.T0)
	b.St(asm.S0, asm.T1, 0)
	b.Ld(asm.T2, asm.T1, 0)
	b.Add(asm.S3, asm.S3, asm.T2)
	b.Ld(asm.T3, asm.A0, 0) // always touch the base line too
	b.Add(asm.S3, asm.S3, asm.T3)
	b.Addi(asm.S0, asm.S0, 1)
	b.Blt(asm.S0, asm.S1, "loop")
	b.Halt()
	runAllMechanisms(t, b.MustAssemble(testBase), nil)
}

func TestPointerChaseAllMechanisms(t *testing.T) {
	// A small pointer chase through memory seeded from Go.
	const nodes = 64
	const heap = 0x80000
	b := asm.New()
	b.Li(asm.A0, heap)
	b.Li(asm.S0, 0) // hops
	b.Li(asm.S1, 300)
	b.Li(asm.S2, 0) // accumulator
	b.Bind("loop")
	b.Ld(asm.A0, asm.A0, 0)
	b.Add(asm.S2, asm.S2, asm.A0)
	b.Addi(asm.S0, asm.S0, 1)
	b.Blt(asm.S0, asm.S1, "loop")
	b.Halt()
	seed := func(m *isa.FlatMem) {
		rng := rand.New(rand.NewSource(42))
		perm := rng.Perm(nodes)
		for i := 0; i < nodes; i++ {
			next := heap + uint64(perm[i])*64
			m.Write(heap+uint64(i)*64, 8, next)
		}
	}
	runAllMechanisms(t, b.MustAssemble(testBase), seed)
}

func TestCallReturnAllMechanisms(t *testing.T) {
	b := asm.New()
	b.Li(asm.S0, 0)
	b.Li(asm.S1, 50)
	b.Li(asm.S2, 0)
	b.Bind("loop")
	b.Jal(asm.RA, "fn")
	b.Addi(asm.S0, asm.S0, 1)
	b.Blt(asm.S0, asm.S1, "loop")
	b.Halt()
	b.Bind("fn")
	b.Addi(asm.S2, asm.S2, 7)
	b.Ret()
	runAllMechanisms(t, b.MustAssemble(testBase), nil)
}

func TestIndirectJumpTableAllMechanisms(t *testing.T) {
	// Dispatch through a jump table: exercises the BTB.
	const table = 0x60000
	b := asm.New()
	b.Li(asm.S0, 0)  // i
	b.Li(asm.S1, 60) // n
	b.Li(asm.S2, 0)  // acc
	b.Li(asm.S3, table)
	b.Bind("loop")
	b.Andi(asm.T0, asm.S0, 1) // alternate targets
	b.Shli(asm.T0, asm.T0, 3)
	b.Add(asm.T0, asm.S3, asm.T0)
	b.Ld(asm.T1, asm.T0, 0)
	b.Jalr(asm.RA, asm.T1, 0)
	b.Addi(asm.S0, asm.S0, 1)
	b.Blt(asm.S0, asm.S1, "loop")
	b.Halt()
	b.Bind("f0")
	b.Addi(asm.S2, asm.S2, 1)
	b.Ret()
	b.Bind("f1")
	b.Addi(asm.S2, asm.S2, 100)
	b.Ret()
	prog := b.MustAssemble(testBase)
	seed := func(m *isa.FlatMem) {
		m.Write(table, 8, prog.Symbols["f0"])
		m.Write(table+8, 8, prog.Symbols["f1"])
	}
	runAllMechanisms(t, prog, seed)
}

func TestStoreLoadForwarding(t *testing.T) {
	// A store immediately followed by a dependent load must forward.
	b := asm.New()
	b.Li(asm.A0, 0x30000)
	b.Li(asm.T0, 0xAB)
	b.St(asm.T0, asm.A0, 0)
	b.Ld(asm.T1, asm.A0, 0)
	b.Addi(asm.T2, asm.T1, 1)
	b.Halt()
	cpu, _ := runOn(t, smallCore(), SecurityConfig{Mechanism: core.Origin},
		b.MustAssemble(testBase), nil, 100000)
	if got := cpu.ArchReg(int(asm.T2)); got != 0xAC {
		t.Fatalf("t2 = %#x, want 0xAC", got)
	}
}

func TestPartialOverlapStoreLoad(t *testing.T) {
	// A byte store under an 8-byte load: unforwardable partial overlap.
	b := asm.New()
	b.Li(asm.A0, 0x30000)
	b.Li64(asm.T0, 0x1122334455667788)
	b.St(asm.T0, asm.A0, 0)
	b.Li(asm.T1, 0xFF)
	b.St1(asm.T1, asm.A0, 2)
	b.Ld(asm.T2, asm.A0, 0)
	b.Halt()
	for _, m := range core.Mechanisms {
		cpu, _ := runOn(t, smallCore(), SecurityConfig{Mechanism: m},
			b.MustAssemble(testBase), nil, 100000)
		want := uint64(0x1122334455FF7788) // byte 2 replaced
		if got := cpu.ArchReg(int(asm.T2)); got != want {
			t.Fatalf("%v: t2 = %#x, want %#x", m, got, want)
		}
	}
}

func TestMemoryOrderViolationRecovers(t *testing.T) {
	// A store whose address arrives late, with a younger load to the same
	// address that speculates past it: must squash and still be correct.
	b := asm.New()
	b.Li(asm.A0, 0x30000)
	b.Li(asm.T5, 999)
	b.St(asm.T5, asm.A0, 0) // initial value in memory
	b.Fence()
	// Make the store's address depend on a long chain.
	b.Li(asm.T0, 1)
	for i := 0; i < 12; i++ {
		b.Mul(asm.T0, asm.T0, asm.T0) // long dependency chain (1*1...)
	}
	b.Add(asm.T1, asm.A0, asm.T0) // T1 = A0 + 1... careful: addr offset 1
	b.Addi(asm.T1, asm.T1, -1)    // back to A0
	b.Li(asm.T2, 0x42)
	b.St(asm.T2, asm.T1, 0)  // store, address late
	b.Ld(asm.T3, asm.A0, 0)  // younger load, same address, speculates
	b.Add(asm.T4, asm.T3, 0) // dependent use
	b.Halt()
	for _, m := range core.Mechanisms {
		cpu, res := runOn(t, smallCore(), SecurityConfig{Mechanism: m},
			b.MustAssemble(testBase), nil, 100000)
		if got := cpu.ArchReg(int(asm.T3)); got != 0x42 {
			t.Fatalf("%v: load got %#x, want forwarded/replayed 0x42", m, got)
		}
		if m == core.Origin && res.MemViolations == 0 {
			t.Error("Origin: expected a memory-order violation squash")
		}
	}
}

func TestFenceRdcycleMeasuresLatency(t *testing.T) {
	// rdcycle; ld (cold, goes to memory); fence; rdcycle — the delta must
	// be at least the memory latency. Then a warm reload must be much
	// faster. This is the attack's timing primitive.
	b := asm.New()
	b.Li(asm.A0, 0x70000)
	b.Fence()
	b.Rdcycle(asm.S0)
	b.Ld(asm.T0, asm.A0, 0)
	b.Fence()
	b.Rdcycle(asm.S1)
	b.Ld(asm.T1, asm.A0, 0)
	b.Fence()
	b.Rdcycle(asm.S2)
	b.Halt()
	cfg := smallCore()
	cpu, _ := runOn(t, cfg, SecurityConfig{Mechanism: core.Origin},
		b.MustAssemble(testBase), nil, 100000)
	cold := cpu.ArchReg(int(asm.S1)) - cpu.ArchReg(int(asm.S0))
	warm := cpu.ArchReg(int(asm.S2)) - cpu.ArchReg(int(asm.S1))
	if cold < uint64(cfg.Mem.MemLat) {
		t.Fatalf("cold load measured %d cycles, want >= %d", cold, cfg.Mem.MemLat)
	}
	if warm >= cold {
		t.Fatalf("warm load (%d) must be faster than cold (%d)", warm, cold)
	}
}

// suspectScenario builds the canonical hazard: a branch waiting on a slow
// (cache-missing) operand, guarding a younger load. The branch is correctly
// predicted (not taken, cold counters), so the suspect load instance
// survives to commit. Returns the program and the younger load's address.
func suspectScenario() (*asm.Program, uint64) {
	const slowAddr = 0x90000  // branch condition lives here (cold)
	const probeAddr = 0xA0000 // the younger load's target (cold)
	b := asm.New()
	b.Li(asm.A0, slowAddr)
	b.Li(asm.A1, probeAddr)
	b.Ld(asm.T0, asm.A0, 0)          // slow load: misses to memory
	b.Bne(asm.T0, asm.Zero, "never") // waits ~200 cycles in the IQ
	b.Ld(asm.T1, asm.A1, 0)          // younger load: suspect while branch pending
	b.Halt()
	b.Bind("never")
	b.Halt()
	return b.MustAssemble(testBase), probeAddr
}

func TestSuspectLoadBlockedPerMechanism(t *testing.T) {
	prog, probeAddr := suspectScenario()
	for _, m := range core.Mechanisms {
		cpu, res := runOn(t, smallCore(), SecurityConfig{Mechanism: m}, prog, nil, 100000)
		if !cpu.Hierarchy().L1D.Probe(probeAddr) {
			// By commit time the load executed (blocked loads re-issue), so
			// the line must be present under every mechanism.
			t.Errorf("%v: probe line missing after commit", m)
		}
		switch m {
		case core.Origin:
			if res.Filter.BlockedEvents != 0 {
				t.Errorf("Origin must never block, got %d", res.Filter.BlockedEvents)
			}
		case core.Baseline, core.CacheHit:
			if res.Filter.BlockedEvents == 0 {
				t.Errorf("%v: expected the suspect miss to be blocked at least once", m)
			}
			if res.Filter.BlockedInsts == 0 {
				t.Errorf("%v: the blocked instruction committed and must count", m)
			}
		case core.CacheHitTPBuf:
			// A lone suspect miss is NOT an S-Pattern (no older suspect
			// written-back access on a different page): TPBuf rescues it.
			if res.Filter.BlockedInsts != 0 {
				t.Errorf("TPBuf: non-S-Pattern miss must pass, got %d blocked",
					res.Filter.BlockedInsts)
			}
			if res.TPBuf.Queries == 0 || res.TPBuf.Safe == 0 {
				t.Errorf("TPBuf: expected a safe query, stats %+v", res.TPBuf)
			}
		}
	}
}

// TestSPatternBlockedByTPBuf builds the full S-Pattern under a pending
// branch: suspect load A (L1 hit, different page) writes back, then suspect
// load B — data-dependent on A — misses L1. TPBuf must block B.
func TestSPatternBlockedByTPBuf(t *testing.T) {
	const slowAddr = 0x90000
	const pageA = 0xA0000 // warmed: A hits L1
	const pageB = 0xB0000 // cold: B misses
	b := asm.New()
	b.Li(asm.A0, slowAddr)
	b.Li(asm.A1, pageA)
	b.Li(asm.A2, pageB)
	b.Ld(asm.T0, asm.A0, 0)          // slow: holds the branch in the IQ
	b.Bne(asm.T0, asm.Zero, "never") // correctly predicted not-taken
	b.Ld(asm.T1, asm.A1, 0)          // A: suspect, hits L1 (cache-hit filter passes)
	b.And(asm.T2, asm.T1, asm.Zero)  // T2 = 0, data-dependent on A
	b.Add(asm.T3, asm.A2, asm.T2)    // B's address depends on A's value
	b.Ld(asm.T4, asm.T3, 0)          // B: suspect miss -> S-Pattern complete
	b.Halt()
	b.Bind("never")
	b.Halt()
	prog := b.MustAssemble(testBase)

	backing := isa.NewFlatMem()
	prog.Load(backing)
	cpu := NewWithMemory(smallCore(), SecurityConfig{Mechanism: core.CacheHitTPBuf}, backing)
	cpu.Hierarchy().AccessData(pageA, false) // warm A's line
	cpu.SetPC(prog.Base)
	res := cpu.Run(100000)
	if !cpu.Halted() {
		t.Fatal("no halt")
	}
	if res.TPBuf.Unsafe == 0 {
		t.Fatalf("TPBuf must flag the S-Pattern as unsafe; stats %+v", res.TPBuf)
	}
	if res.Filter.BlockedInsts == 0 {
		t.Fatal("the S-Pattern transmitter must commit as a blocked instruction")
	}
	if res.Filter.SuspectL1Hits == 0 {
		t.Fatal("load A should have been a suspect L1 hit")
	}
}

func TestSuspectHitPassesCacheHitFilter(t *testing.T) {
	// Same hazard shape, but the younger load's line is pre-warmed: the
	// cache-hit filter must let it through (no blocks), while Baseline
	// still blocks it.
	prog, probeAddr := suspectScenario()
	warm := func(m *isa.FlatMem) { m.Write(probeAddr, 8, 7) }

	for _, m := range []core.Mechanism{core.CacheHit, core.CacheHitTPBuf} {
		backing := isa.NewFlatMem()
		prog.Load(backing)
		warm(backing)
		cpu := NewWithMemory(smallCore(), SecurityConfig{Mechanism: m}, backing)
		cpu.Hierarchy().AccessData(probeAddr, false) // pre-warm L1D
		cpu.SetPC(prog.Base)
		res := cpu.Run(100000)
		if !cpu.Halted() {
			t.Fatalf("%v: no halt", m)
		}
		if res.Filter.SuspectL1Hits == 0 {
			t.Errorf("%v: expected a suspect L1 hit", m)
		}
		if res.Filter.BlockedInsts != 0 {
			t.Errorf("%v: suspect hit must not block (got %d blocked)", m, res.Filter.BlockedInsts)
		}
	}

	backing := isa.NewFlatMem()
	prog.Load(backing)
	warm(backing)
	cpu := NewWithMemory(smallCore(), SecurityConfig{Mechanism: core.Baseline}, backing)
	cpu.Hierarchy().AccessData(probeAddr, false)
	cpu.SetPC(prog.Base)
	res := cpu.Run(100000)
	if res.Filter.BlockedEvents == 0 {
		t.Error("Baseline: suspect memory access must be blocked even on a would-be hit")
	}
}

func TestOriginFasterThanBaseline(t *testing.T) {
	// A memory-heavy loop: Baseline must be slower than Origin, and the
	// filters must land in between (or match Origin).
	b := asm.New()
	b.Li(asm.A0, 0x40000)
	b.Li(asm.S0, 0)
	b.Li(asm.S1, 400)
	b.Bind("loop")
	b.Andi(asm.T0, asm.S0, 63)
	b.Shli(asm.T0, asm.T0, 3)
	b.Add(asm.T1, asm.A0, asm.T0)
	b.Ld(asm.T2, asm.T1, 0)
	b.Add(asm.T3, asm.T2, asm.T2)
	b.St(asm.T3, asm.T1, 256)
	b.Addi(asm.S0, asm.S0, 1)
	b.Blt(asm.S0, asm.S1, "loop")
	b.Halt()
	prog := b.MustAssemble(testBase)

	cycles := map[core.Mechanism]uint64{}
	for _, m := range core.Mechanisms {
		_, res := runOn(t, smallCore(), SecurityConfig{Mechanism: m}, prog, nil, 3_000_000)
		cycles[m] = res.Cycles
	}
	if cycles[core.Baseline] <= cycles[core.Origin] {
		t.Errorf("Baseline (%d) must cost more cycles than Origin (%d)",
			cycles[core.Baseline], cycles[core.Origin])
	}
	if cycles[core.CacheHit] > cycles[core.Baseline] {
		t.Errorf("Cache-hit filter (%d) must not be slower than Baseline (%d)",
			cycles[core.CacheHit], cycles[core.Baseline])
	}
	if cycles[core.CacheHitTPBuf] > cycles[core.Baseline] {
		t.Errorf("TPBuf (%d) must not be slower than Baseline (%d)",
			cycles[core.CacheHitTPBuf], cycles[core.Baseline])
	}
}

// TestRandomProgramsDifferential cross-checks the out-of-order core against
// the in-order golden model on randomized bounded-loop programs.
func TestRandomProgramsDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 25; trial++ {
		prog := randomProgram(rng)
		runAllMechanisms(t, prog, nil)
	}
}

// randomProgram emits a bounded loop whose body is random ALU and memory
// traffic confined to a scratch buffer, with occasional forward branches.
func randomProgram(rng *rand.Rand) *asm.Program {
	b := asm.New()
	const buf = 0x50000
	b.Li(asm.A0, buf)
	b.Li(asm.S0, 0)
	b.Li(asm.S1, int32(10+rng.Intn(40))) // iterations
	b.Bind("loop")
	tmps := []asm.Reg{asm.T0, asm.T1, asm.T2, asm.T3, asm.T4}
	skip := 0
	n := 4 + rng.Intn(12)
	for i := 0; i < n; i++ {
		rd := tmps[rng.Intn(len(tmps))]
		ra := tmps[rng.Intn(len(tmps))]
		rb := tmps[rng.Intn(len(tmps))]
		switch rng.Intn(8) {
		case 0, 1:
			b.Add(rd, ra, rb)
		case 2:
			b.Xor(rd, ra, rb)
		case 3:
			b.Mul(rd, ra, rb)
		case 4: // bounded load
			b.Andi(asm.T5, ra, 255)
			b.Shli(asm.T5, asm.T5, 3)
			b.Add(asm.T5, asm.A0, asm.T5)
			b.Ld(rd, asm.T5, 0)
		case 5: // bounded store
			b.Andi(asm.T5, ra, 255)
			b.Shli(asm.T5, asm.T5, 3)
			b.Add(asm.T5, asm.A0, asm.T5)
			b.St(rb, asm.T5, 0)
		case 6: // forward branch over one instruction
			lbl := asm.Label(string(rune('A'+skip)) + "fwd")
			skip++
			b.Beq(ra, rb, lbl)
			b.Addi(rd, rd, 3)
			b.Bind(lbl)
		case 7:
			b.Addi(rd, ra, int32(rng.Intn(1000)))
		}
	}
	b.Addi(asm.S0, asm.S0, 1)
	b.Blt(asm.S0, asm.S1, "loop")
	b.Halt()
	return b.MustAssemble(testBase)
}

func TestICacheFilterStallsFetch(t *testing.T) {
	// A branch waiting on a slow load guards a jump to a cold code page;
	// the ICache filter must record fetch stalls, and the program must
	// still complete correctly.
	b := asm.New()
	b.Li(asm.A0, 0x90000)
	b.Ld(asm.T0, asm.A0, 0)         // slow
	b.Beq(asm.T0, asm.Zero, "cold") // predicted not-taken... actually taken
	b.Nop()
	b.Bind("cold")
	// Pad so the target sits on a different, never-fetched line.
	for i := 0; i < 32; i++ {
		b.Nop()
	}
	b.Li(asm.S7, 123)
	b.Halt()
	prog := b.MustAssemble(testBase)
	cpu, res := runOn(t, smallCore(),
		SecurityConfig{Mechanism: core.CacheHitTPBuf, ICacheFilter: true},
		prog, nil, 1_000_000)
	if got := cpu.ArchReg(int(asm.S7)); got != 123 {
		t.Fatalf("s7 = %d", got)
	}
	_ = res // stall count may be zero if lines were prefetched together
}

func TestRunForStopsAtBudget(t *testing.T) {
	b := asm.New()
	b.Li(asm.S0, 0)
	b.Bind("loop")
	b.Addi(asm.S0, asm.S0, 1)
	b.Jmp("loop")
	prog := b.MustAssemble(testBase)
	backing := isa.NewFlatMem()
	prog.Load(backing)
	cpu := NewWithMemory(smallCore(), SecurityConfig{Mechanism: core.Origin}, backing)
	cpu.SetPC(prog.Base)
	res := cpu.RunFor(500, 1_000_000)
	if res.Committed < 500 || res.Committed > 510 {
		t.Fatalf("committed %d, want ~500", res.Committed)
	}
	if cpu.Halted() {
		t.Fatal("infinite loop cannot halt")
	}
	// Continue for another budget from the same state.
	res2 := cpu.RunFor(500, 1_000_000)
	if res2.Committed < 1000 {
		t.Fatalf("cumulative committed %d, want >= 1000", res2.Committed)
	}
}

func TestResetStatsKeepsState(t *testing.T) {
	b := asm.New()
	b.Li(asm.A0, 0x40000)
	b.Ld(asm.T0, asm.A0, 0)
	b.Li(asm.S0, 0)
	b.Bind("loop")
	b.Addi(asm.S0, asm.S0, 1)
	b.Li(asm.S1, 10)
	b.Blt(asm.S0, asm.S1, "loop")
	b.Halt()
	prog := b.MustAssemble(testBase)
	backing := isa.NewFlatMem()
	prog.Load(backing)
	cpu := NewWithMemory(smallCore(), SecurityConfig{Mechanism: core.CacheHitTPBuf}, backing)
	cpu.SetPC(prog.Base)
	cpu.RunFor(5, 100000)
	cpu.ResetStats()
	res := cpu.Run(100000)
	if res.Committed == 0 || res.Cycles == 0 {
		t.Fatal("post-reset stats empty")
	}
	if !cpu.Halted() {
		t.Fatal("no halt")
	}
}
