// Package asm provides a two-pass programmatic assembler for the conspec
// ISA. Workload generators and Spectre gadgets are written against the
// Builder API: instructions are appended with forward-referencable labels,
// and Assemble resolves branch offsets and lays the program out in memory.
//
// A small text front end (ParseText) accepts the same mnemonics the
// disassembler prints, so examples and tests can embed readable listings.
package asm

import (
	"fmt"

	"conspec/internal/isa"
)

// Reg is an architectural register number (0..31). Register 0 reads as zero.
type Reg = uint8

// Conventional register roles used by generated code. These are pure
// conventions; the hardware treats all registers except x0 identically.
const (
	Zero Reg = 0 // hard-wired zero
	RA   Reg = 1 // return address / link
	SP   Reg = 2 // stack pointer (unused by generators, reserved)
	T0   Reg = 5 // temporaries
	T1   Reg = 6
	T2   Reg = 7
	T3   Reg = 28
	T4   Reg = 29
	T5   Reg = 30
	T6   Reg = 31
	A0   Reg = 10 // argument/result registers
	A1   Reg = 11
	A2   Reg = 12
	A3   Reg = 13
	A4   Reg = 14
	A5   Reg = 15
	S0   Reg = 8 // saved registers: generators keep loop state here
	S1   Reg = 9
	S2   Reg = 18
	S3   Reg = 19
	S4   Reg = 20
	S5   Reg = 21
	S6   Reg = 22
	S7   Reg = 23
)

// Label names a program position. Labels may be referenced before they are
// bound; Assemble reports any label that is referenced but never bound.
type Label string

type fixupKind int

const (
	fixBranch fixupKind = iota // PC-relative byte offset into Imm
	fixAbs                     // absolute address via a 5-instruction li sequence
)

type fixup struct {
	index int   // instruction index whose Imm needs the offset
	label Label // target
	kind  fixupKind
}

// Builder accumulates instructions and resolves labels at Assemble time.
// The zero value is ready to use.
type Builder struct {
	insts  []isa.Inst
	labels map[Label]int // label -> instruction index
	fixups []fixup
	err    error

	// Initialized data regions (.data/.word/.byte/.ascii directives and the
	// DataAt/Word/Byte/Ascii builder methods).
	data       map[uint64][]byte
	dataCursor uint64
	dataActive bool
}

// New returns an empty Builder.
func New() *Builder { return &Builder{labels: make(map[Label]int)} }

func (b *Builder) setErr(err error) {
	if b.err == nil {
		b.err = err
	}
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.insts) }

// PCOf returns the address of label given the program base address.
// It is only valid after the label is bound.
func (b *Builder) PCOf(base uint64, l Label) (uint64, bool) {
	idx, ok := b.labels[l]
	if !ok {
		return 0, false
	}
	return base + uint64(idx)*isa.InstBytes, true
}

// Raw appends a pre-built instruction verbatim.
func (b *Builder) Raw(in isa.Inst) *Builder {
	b.insts = append(b.insts, in)
	return b
}

// Bind attaches the label to the next emitted instruction.
func (b *Builder) Bind(l Label) *Builder {
	if b.labels == nil {
		b.labels = make(map[Label]int)
	}
	if _, dup := b.labels[l]; dup {
		b.setErr(fmt.Errorf("asm: label %q bound twice", l))
		return b
	}
	b.labels[l] = len(b.insts)
	return b
}

func (b *Builder) ref(l Label) {
	b.fixups = append(b.fixups, fixup{index: len(b.insts) - 1, label: l})
}

// --- Data emitters ----------------------------------------------------------

// DataAt positions the data cursor; subsequent Word/Byte/Ascii calls write
// consecutively from addr. Data is materialized by Program.Load.
func (b *Builder) DataAt(addr uint64) *Builder {
	if b.data == nil {
		b.data = make(map[uint64][]byte)
	}
	b.dataCursor = addr
	b.dataActive = true
	b.data[addr] = b.data[addr] // ensure region exists
	return b
}

func (b *Builder) appendData(bytes ...byte) {
	if !b.dataActive {
		b.setErr(fmt.Errorf("asm: data emitted before DataAt/.data"))
		return
	}
	// Find the region the cursor extends (regions are keyed by start).
	for start, blob := range b.data {
		if start+uint64(len(blob)) == b.dataCursor {
			b.data[start] = append(blob, bytes...)
			b.dataCursor += uint64(len(bytes))
			return
		}
	}
	b.data[b.dataCursor] = append([]byte(nil), bytes...)
	b.dataCursor += uint64(len(bytes))
}

// Word emits a little-endian 64-bit value at the data cursor.
func (b *Builder) Word(v uint64) *Builder {
	var buf [8]byte
	for i := range buf {
		buf[i] = byte(v >> (8 * i))
	}
	b.appendData(buf[:]...)
	return b
}

// Byte emits one byte at the data cursor.
func (b *Builder) Byte(v byte) *Builder {
	b.appendData(v)
	return b
}

// Ascii emits the string's bytes (no terminator) at the data cursor.
func (b *Builder) Ascii(s string) *Builder {
	b.appendData([]byte(s)...)
	return b
}

// --- Instruction emitters -------------------------------------------------

// Nop appends a no-op.
func (b *Builder) Nop() *Builder { return b.Raw(isa.Inst{Op: isa.OpNop}) }

// Halt appends a halt.
func (b *Builder) Halt() *Builder { return b.Raw(isa.Inst{Op: isa.OpHalt}) }

// Fence appends a speculation barrier.
func (b *Builder) Fence() *Builder { return b.Raw(isa.Inst{Op: isa.OpFence}) }

// Rdcycle appends rd = cycle.
func (b *Builder) Rdcycle(rd Reg) *Builder {
	return b.Raw(isa.Inst{Op: isa.OpRdcycle, Rd: rd})
}

// R appends a register-register ALU operation rd = rs1 op rs2.
func (b *Builder) R(op isa.Op, rd, rs1, rs2 Reg) *Builder {
	return b.Raw(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// I appends a register-immediate ALU operation rd = rs1 op imm.
func (b *Builder) I(op isa.Op, rd, rs1 Reg, imm int32) *Builder {
	return b.Raw(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// Add appends rd = rs1 + rs2.
func (b *Builder) Add(rd, rs1, rs2 Reg) *Builder { return b.R(isa.OpAdd, rd, rs1, rs2) }

// Sub appends rd = rs1 - rs2.
func (b *Builder) Sub(rd, rs1, rs2 Reg) *Builder { return b.R(isa.OpSub, rd, rs1, rs2) }

// And appends rd = rs1 & rs2.
func (b *Builder) And(rd, rs1, rs2 Reg) *Builder { return b.R(isa.OpAnd, rd, rs1, rs2) }

// Or appends rd = rs1 | rs2.
func (b *Builder) Or(rd, rs1, rs2 Reg) *Builder { return b.R(isa.OpOr, rd, rs1, rs2) }

// Xor appends rd = rs1 ^ rs2.
func (b *Builder) Xor(rd, rs1, rs2 Reg) *Builder { return b.R(isa.OpXor, rd, rs1, rs2) }

// Mul appends rd = rs1 * rs2.
func (b *Builder) Mul(rd, rs1, rs2 Reg) *Builder { return b.R(isa.OpMul, rd, rs1, rs2) }

// Div appends rd = rs1 / rs2 (signed).
func (b *Builder) Div(rd, rs1, rs2 Reg) *Builder { return b.R(isa.OpDiv, rd, rs1, rs2) }

// Addi appends rd = rs1 + imm.
func (b *Builder) Addi(rd, rs1 Reg, imm int32) *Builder { return b.I(isa.OpAddi, rd, rs1, imm) }

// Andi appends rd = rs1 & imm.
func (b *Builder) Andi(rd, rs1 Reg, imm int32) *Builder { return b.I(isa.OpAndi, rd, rs1, imm) }

// Shli appends rd = rs1 << imm.
func (b *Builder) Shli(rd, rs1 Reg, imm int32) *Builder { return b.I(isa.OpShli, rd, rs1, imm) }

// Shri appends rd = rs1 >> imm (logical).
func (b *Builder) Shri(rd, rs1 Reg, imm int32) *Builder { return b.I(isa.OpShri, rd, rs1, imm) }

// Li appends rd = sign-extended 32-bit imm.
func (b *Builder) Li(rd Reg, imm int32) *Builder {
	return b.Raw(isa.Inst{Op: isa.OpLi, Rd: rd, Imm: imm})
}

// Li64 loads an arbitrary 64-bit constant, expanding to up to four
// instructions (li + shli + ori pairs). Values representable as a
// sign-extended 32-bit immediate expand to a single li.
func (b *Builder) Li64(rd Reg, v uint64) *Builder {
	if int64(int32(v)) == int64(v) {
		return b.Li(rd, int32(v))
	}
	// Build top-down: the high 32 bits via li (its sign extension is shifted
	// out by the two 16-bit shifts below), then OR in two 16-bit chunks.
	b.Li(rd, int32(v>>32))
	b.Shli(rd, rd, 16)
	if mid := int32((v >> 16) & 0xFFFF); mid != 0 {
		b.I(isa.OpOri, rd, rd, mid)
	}
	b.Shli(rd, rd, 16)
	if lo := int32(v & 0xFFFF); lo != 0 {
		b.I(isa.OpOri, rd, rd, lo)
	}
	return b
}

// LiAddr loads the absolute address of a label into rd. It always expands
// to exactly five instructions (li hi32; shl 16; ori mid16; shl 16; ori
// lo16) so the immediates can be patched at Assemble time once the label's
// address is known. Attack gadget trainers use it to materialize code
// addresses (e.g. the Spectre V2 gadget entry).
func (b *Builder) LiAddr(rd Reg, target Label) *Builder {
	b.Li(rd, 0)
	b.Shli(rd, rd, 16)
	b.I(isa.OpOri, rd, rd, 0)
	b.Shli(rd, rd, 16)
	b.I(isa.OpOri, rd, rd, 0)
	b.fixups = append(b.fixups, fixup{index: b.Len() - 5, label: target, kind: fixAbs})
	return b
}

// PadTo appends NOPs until exactly n instructions have been emitted. It is
// used to place code at controlled addresses (e.g. a branch that aliases a
// victim's BTB entry). It is an error to have already passed n.
func (b *Builder) PadTo(n int) *Builder {
	if b.Len() > n {
		b.setErr(fmt.Errorf("asm: PadTo(%d) but %d instructions already emitted", n, b.Len()))
		return b
	}
	for b.Len() < n {
		b.Nop()
	}
	return b
}

// Ld appends rd = mem64[rs1+imm].
func (b *Builder) Ld(rd, rs1 Reg, imm int32) *Builder {
	return b.Raw(isa.Inst{Op: isa.OpLd, Rd: rd, Rs1: rs1, Imm: imm})
}

// Ld1 appends rd = zero-extended mem8[rs1+imm].
func (b *Builder) Ld1(rd, rs1 Reg, imm int32) *Builder {
	return b.Raw(isa.Inst{Op: isa.OpLd1, Rd: rd, Rs1: rs1, Imm: imm})
}

// St appends mem64[rs1+imm] = rs2.
func (b *Builder) St(rs2, rs1 Reg, imm int32) *Builder {
	return b.Raw(isa.Inst{Op: isa.OpSt, Rs1: rs1, Rs2: rs2, Imm: imm})
}

// St1 appends mem8[rs1+imm] = low byte of rs2.
func (b *Builder) St1(rs2, rs1 Reg, imm int32) *Builder {
	return b.Raw(isa.Inst{Op: isa.OpSt1, Rs1: rs1, Rs2: rs2, Imm: imm})
}

// Clflush appends a line flush of address rs1+imm.
func (b *Builder) Clflush(rs1 Reg, imm int32) *Builder {
	return b.Raw(isa.Inst{Op: isa.OpClflush, Rs1: rs1, Imm: imm})
}

// Branch appends a conditional branch to label.
func (b *Builder) Branch(op isa.Op, rs1, rs2 Reg, target Label) *Builder {
	if !op.IsCondBranch() {
		b.setErr(fmt.Errorf("asm: Branch with non-branch opcode %v", op))
		return b
	}
	b.Raw(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2})
	b.ref(target)
	return b
}

// Beq appends branch-if-equal to label.
func (b *Builder) Beq(rs1, rs2 Reg, l Label) *Builder { return b.Branch(isa.OpBeq, rs1, rs2, l) }

// Bne appends branch-if-not-equal to label.
func (b *Builder) Bne(rs1, rs2 Reg, l Label) *Builder { return b.Branch(isa.OpBne, rs1, rs2, l) }

// Blt appends branch-if-signed-less to label.
func (b *Builder) Blt(rs1, rs2 Reg, l Label) *Builder { return b.Branch(isa.OpBlt, rs1, rs2, l) }

// Bge appends branch-if-signed-greater-or-equal to label.
func (b *Builder) Bge(rs1, rs2 Reg, l Label) *Builder { return b.Branch(isa.OpBge, rs1, rs2, l) }

// Bltu appends branch-if-unsigned-less to label.
func (b *Builder) Bltu(rs1, rs2 Reg, l Label) *Builder { return b.Branch(isa.OpBltu, rs1, rs2, l) }

// Bgeu appends branch-if-unsigned-greater-or-equal to label.
func (b *Builder) Bgeu(rs1, rs2 Reg, l Label) *Builder { return b.Branch(isa.OpBgeu, rs1, rs2, l) }

// Jal appends a direct jump-and-link to label.
func (b *Builder) Jal(rd Reg, target Label) *Builder {
	b.Raw(isa.Inst{Op: isa.OpJal, Rd: rd})
	b.ref(target)
	return b
}

// Jmp appends an unconditional direct jump (jal x0).
func (b *Builder) Jmp(target Label) *Builder { return b.Jal(Zero, target) }

// Jalr appends an indirect jump to rs1+imm, linking into rd.
func (b *Builder) Jalr(rd, rs1 Reg, imm int32) *Builder {
	return b.Raw(isa.Inst{Op: isa.OpJalr, Rd: rd, Rs1: rs1, Imm: imm})
}

// Ret appends a return through RA (jalr x0, 0(ra)).
func (b *Builder) Ret() *Builder { return b.Jalr(Zero, RA, 0) }

// --- Assembly --------------------------------------------------------------

// Program is an assembled instruction sequence ready to be loaded.
type Program struct {
	Base  uint64
	Insts []isa.Inst
	// Symbols maps bound labels to absolute addresses.
	Symbols map[Label]uint64
	// Data holds initialized data regions keyed by absolute start address.
	Data map[uint64][]byte
}

// Assemble resolves all label references against base and returns the
// program. The builder remains usable (more code may be appended and
// Assemble called again).
func (b *Builder) Assemble(base uint64) (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	insts := make([]isa.Inst, len(b.insts))
	copy(insts, b.insts)
	for _, f := range b.fixups {
		ti, ok := b.labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm: undefined label %q", f.label)
		}
		switch f.kind {
		case fixAbs:
			addr := base + uint64(ti)*isa.InstBytes
			if addr >= 1<<47 {
				return nil, fmt.Errorf("asm: address of %q too large for LiAddr", f.label)
			}
			insts[f.index].Imm = int32(addr >> 32)
			insts[f.index+2].Imm = int32((addr >> 16) & 0xFFFF)
			insts[f.index+4].Imm = int32(addr & 0xFFFF)
		default:
			off := int64(ti-f.index) * isa.InstBytes
			if int64(int32(off)) != off {
				return nil, fmt.Errorf("asm: branch to %q out of range", f.label)
			}
			insts[f.index].Imm = int32(off)
		}
	}
	syms := make(map[Label]uint64, len(b.labels))
	for l, i := range b.labels {
		syms[l] = base + uint64(i)*isa.InstBytes
	}
	data := make(map[uint64][]byte, len(b.data))
	for addr, blob := range b.data {
		if len(blob) > 0 {
			data[addr] = append([]byte(nil), blob...)
		}
	}
	return &Program{Base: base, Insts: insts, Symbols: syms, Data: data}, nil
}

// MustAssemble is Assemble but panics on error; for tests and generators
// whose input is program-controlled.
func (b *Builder) MustAssemble(base uint64) *Program {
	p, err := b.Assemble(base)
	if err != nil {
		panic(err)
	}
	return p
}

// Load writes the encoded program and its data regions into memory.
func (p *Program) Load(mem isa.Memory) {
	for i, in := range p.Insts {
		mem.Write(p.Base+uint64(i)*isa.InstBytes, isa.InstBytes, isa.Encode(in))
	}
	for addr, blob := range p.Data {
		for i, c := range blob {
			mem.Write(addr+uint64(i), 1, uint64(c))
		}
	}
}

// End returns the address one past the last instruction.
func (p *Program) End() uint64 {
	return p.Base + uint64(len(p.Insts))*isa.InstBytes
}

// Listing renders the program as text with addresses, for debugging.
func (p *Program) Listing() string {
	out := ""
	for i, in := range p.Insts {
		out += fmt.Sprintf("%#08x: %v\n", p.Base+uint64(i)*isa.InstBytes, in)
	}
	return out
}
