#!/bin/sh
# crash-smoke: end-to-end check of the crash-safe service tier.
#
# Phase 1 — recovery: start conspec-served with a job journal and a
# persistent result store, submit a real multi-run suite, kill -9 the
# daemon mid-run, restart it over the same directories, and assert the job
# is re-queued with the recovered flag and completes — with every
# simulation that finished before the crash served from the disk cache
# (zero lost work, verified through /metrics).
#
# Phase 2 — bounded cache: rerun the server with a byte budget far below
# the workload's footprint and assert the store evicts (counter visible in
# /metrics) while staying under the cap.
#
# Phase 3 — the journal's concurrency under the race detector.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
srv_pid=
cleanup() {
    [ -n "$srv_pid" ] && kill -9 "$srv_pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "crash-smoke: building binaries"
$GO build -o "$tmp/bin/" ./cmd/conspec-served ./cmd/conspec-ctl

log="$tmp/served.log"
start_server() {
    # start_server <extra flags...>
    : >"$log"
    "$tmp/bin/conspec-served" -addr 127.0.0.1:0 -workers 1 -sim-workers 1 "$@" >>"$log" 2>&1 &
    srv_pid=$!
    i=0
    while [ $i -lt 100 ]; do
        CONSPEC_SERVER=$(sed -n 's#.*listening on \(http://[0-9.:]*\).*#\1#p' "$log" | head -1)
        if [ -n "$CONSPEC_SERVER" ]; then
            export CONSPEC_SERVER
            return 0
        fi
        if ! kill -0 "$srv_pid" 2>/dev/null; then
            echo "crash-smoke: server exited during startup" >&2
            cat "$log" >&2
            exit 1
        fi
        i=$((i + 1))
        sleep 0.1
    done
    echo "crash-smoke: server never announced its address" >&2
    cat "$log" >&2
    exit 1
}

metric() {
    "$tmp/bin/conspec-ctl" metrics | sed -n "s/^conspec_served_$1 //p"
}

assert_metric() {
    # assert_metric <name> <expected-value>
    got=$(metric "$1")
    if [ "$got" != "$2" ]; then
        echo "crash-smoke: conspec_served_$1 = ${got:-<missing>}, want $2" >&2
        "$tmp/bin/conspec-ctl" metrics >&2
        exit 1
    fi
}

cache_entries() {
    find "$tmp/cache" -type f -name '*.json' ! -name meta.json 2>/dev/null |
        grep -cv /quarantine/ || true
}

echo "crash-smoke: phase 1 — submit, kill -9 mid-run, recover"
start_server -cache-dir "$tmp/cache" -data-dir "$tmp/data"
job=$("$tmp/bin/conspec-ctl" submit -suite lru -warmup 2000 -measure 8000)
echo "crash-smoke: job $job running; waiting for the first finished simulations"

# Wait until at least two simulations are durably cached, then pull the
# plug. -sim-workers 1 serializes the suite's ~90 runs, so the job is
# nowhere near done when the first results land.
i=0
while :; do
    n=$(cache_entries)
    [ "$n" -ge 2 ] && break
    if ! kill -0 "$srv_pid" 2>/dev/null; then
        echo "crash-smoke: server died before any simulation finished" >&2
        cat "$log" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ $i -gt 600 ]; then
        echo "crash-smoke: no cached simulations after 30s" >&2
        exit 1
    fi
    sleep 0.05
done
kill -9 "$srv_pid"
wait "$srv_pid" 2>/dev/null || true
srv_pid=
pre_crash=$(cache_entries)
echo "crash-smoke: killed -9 with $pre_crash simulations cached, job unfinished"

echo "crash-smoke: restarting over the same journal and store"
start_server -cache-dir "$tmp/cache" -data-dir "$tmp/data"
grep -q "interrupted jobs to recover" "$log" || {
    echo "crash-smoke: restart log never mentioned recovery" >&2
    cat "$log" >&2
    exit 1
}
"$tmp/bin/conspec-ctl" list | grep -F "$job" | grep -qF "[recovered]" || {
    echo "crash-smoke: recovered job not flagged in list output" >&2
    "$tmp/bin/conspec-ctl" list >&2
    exit 1
}

# watch blocks until the recovered job completes (exits non-zero otherwise).
"$tmp/bin/conspec-ctl" watch "$job" >"$tmp/result.json" 2>"$tmp/watch.log"
grep -q '"lru"' "$tmp/result.json" || {
    echo "crash-smoke: recovered job's result has no lru section" >&2
    exit 1
}
"$tmp/bin/conspec-ctl" get "$job" | grep -q '"recovered": true' || {
    echo "crash-smoke: completed job lost its recovered flag" >&2
    exit 1
}

# Zero lost work: everything cached before the kill was served from disk.
assert_metric jobs_recovered_total 1
assert_metric jobs_done_total 1
assert_metric journal_live_jobs 0
disk_hits=$(metric cache_hits_disk_total)
if [ "${disk_hits:-0}" -lt "$pre_crash" ]; then
    echo "crash-smoke: only $disk_hits disk hits after recovery, want >= $pre_crash (simulations were lost)" >&2
    exit 1
fi
kill -TERM "$srv_pid" && wait "$srv_pid" || true
srv_pid=
echo "crash-smoke: phase 1 OK (recovered job finished; $disk_hits pre-crash simulations reused)"

echo "crash-smoke: phase 2 — sustained load under a 4KB cache budget"
budget=4096
start_server -cache-dir "$tmp/cache2" -data-dir "$tmp/data2" -cache-max-bytes $budget
for measure in 8000 8800 9600; do
    "$tmp/bin/conspec-ctl" submit -suite lru -benches astar \
        -warmup 2000 -measure $measure -watch >/dev/null 2>&1
done
evictions=$(metric cache_disk_evictions_total)
bytes=$(metric cache_disk_bytes)
if [ "${evictions:-0}" -eq 0 ]; then
    echo "crash-smoke: cache never evicted under a $budget-byte budget" >&2
    "$tmp/bin/conspec-ctl" metrics >&2
    exit 1
fi
if [ "${bytes:-0}" -gt $budget ]; then
    echo "crash-smoke: cache at $bytes bytes, over the $budget-byte budget" >&2
    exit 1
fi
kill -TERM "$srv_pid" && wait "$srv_pid" || true
srv_pid=
echo "crash-smoke: phase 2 OK ($evictions evictions, $bytes bytes <= $budget)"

echo "crash-smoke: phase 3 — journal under the race detector"
$GO test -race -count=1 ./internal/serve/journal

echo "crash-smoke: OK"
