// Command conspec-ctl is the CLI for a running conspec-served instance.
//
//	conspec-ctl -server http://127.0.0.1:8344 submit -suite fig5 -watch
//	conspec-ctl watch <job-id>
//	conspec-ctl get <job-id> > fig5.json
//	conspec-ctl list
//	conspec-ctl cancel <job-id>
//	conspec-ctl trace -o suite.trace.json <job-id>
//	conspec-ctl metrics
//	conspec-ctl workers
//	conspec-ctl workers drain w1
//
// submit prints the job id (or, with -watch, streams progress to stderr and
// prints the result JSON to stdout once done, exiting non-zero if the job
// fails). get prints the job document with the embedded result — the same
// shape conspec-bench -json emits.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"conspec/internal/serve"
	"conspec/internal/serve/client"
)

func main() {
	server := flag.String("server", envOr("CONSPEC_SERVER", "http://127.0.0.1:8344"), "conspec-served base URL (env CONSPEC_SERVER)")
	retries := flag.Int("retries", client.DefaultRetry().MaxAttempts, "attempts per request on transient failures (connection refused, 429, 503); watch reconnects dropped streams with the same budget (1 = fail fast)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() == 0 {
		usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	c := client.New(*server)
	c.Retry = client.DefaultRetry()
	c.Retry.MaxAttempts = *retries
	c.Retry.OnRetry = func(attempt int, delay time.Duration, err error) {
		fmt.Fprintf(os.Stderr, "conspec-ctl: retrying in %s (attempt %d): %v\n", delay.Round(time.Millisecond), attempt, err)
	}

	cmd, args := flag.Arg(0), flag.Args()[1:]
	var err error
	switch cmd {
	case "submit":
		err = cmdSubmit(ctx, c, args)
	case "watch":
		err = cmdWatch(ctx, c, args)
	case "get":
		err = cmdGet(ctx, c, args)
	case "list":
		err = cmdList(ctx, c)
	case "cancel":
		err = cmdCancel(ctx, c, args)
	case "trace":
		err = cmdTrace(ctx, c, args)
	case "metrics":
		err = cmdMetrics(ctx, c)
	case "workers":
		err = cmdWorkers(ctx, c, args)
	default:
		fmt.Fprintf(os.Stderr, "conspec-ctl: unknown command %q\n\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "conspec-ctl: %v\n", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: conspec-ctl [-server URL] <command> [args]

commands:
  submit -suite S [-benches a,b] [-defenses d,e] [-warmup N] [-measure N] [-run-timeout D]
         [-cancel-on-disconnect] [-watch]    queue a job
  watch  <job-id>                            stream a job's progress events
  get    <job-id>                            print the job (with result JSON)
  list                                       list jobs, newest first
  cancel <job-id>                            cancel a queued or running job
  trace  [-o FILE] <job-id>                  fetch the job's span trace (Perfetto JSON)
  metrics                                    dump the server's /metrics text
  workers                                    list fleet workers (coordinator only)
  workers drain <worker-id>                  stop leasing jobs to a worker
`)
	flag.PrintDefaults()
}

func envOr(key, def string) string {
	if v := os.Getenv(key); v != "" {
		return v
	}
	return def
}

func cmdSubmit(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("submit", flag.ExitOnError)
	var (
		suite    = fs.String("suite", "all", "suite to run (fig5|table4|table5|table6|scope|lru|icache|dtlb|compare|overhead|defenses|all)")
		benches  = fs.String("benches", "", "comma-separated benchmark subset")
		defenses = fs.String("defenses", "", "comma-separated defense subset for the defenses suite")
		warmup   = fs.Uint64("warmup", 0, "warmup instructions per run (0 = server default)")
		measure  = fs.Uint64("measure", 0, "measured instructions per run (0 = server default)")
		interval = fs.Uint64("metrics-interval", 0, "metric sampling interval in cycles (0 = off)")
		selfchk  = fs.Uint64("selfcheck", 0, "invariant audit interval in cycles (0 = off)")
		runTmo   = fs.Duration("run-timeout", 0, "wall-clock bound per simulation (0 = server default)")
		workers  = fs.Int("workers", 0, "cap this job's concurrent simulations (0 = server default)")
		cod      = fs.Bool("cancel-on-disconnect", false, "cancel the job if its last watcher disconnects")
		flight   = fs.Uint64("flight-window", 0, "arm each run's flight recorder over the last N cycles (0 = off); failed runs carry the dump")
		watch    = fs.Bool("watch", false, "stream progress and print the result when done")
	)
	fs.Parse(args)
	spec := serve.JobSpec{
		Suite:              *suite,
		Warmup:             *warmup,
		Measure:            *measure,
		MetricsInterval:    *interval,
		SelfCheck:          *selfchk,
		RunTimeoutMS:       runTmo.Milliseconds(),
		Workers:            *workers,
		CancelOnDisconnect: *cod,
		FlightWindow:       *flight,
	}
	if *benches != "" {
		spec.Benches = strings.Split(*benches, ",")
	}
	if *defenses != "" {
		spec.Defenses = strings.Split(*defenses, ",")
	}
	st, err := c.Submit(ctx, spec)
	if err != nil {
		return err
	}
	if !*watch {
		fmt.Println(st.ID)
		return nil
	}
	fmt.Fprintf(os.Stderr, "job %s queued\n", st.ID)
	return watchAndPrint(ctx, c, st.ID)
}

func cmdWatch(ctx context.Context, c *client.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: watch <job-id>")
	}
	return watchAndPrint(ctx, c, args[0])
}

// watchAndPrint streams progress lines to stderr and, when the job ends,
// prints the result document to stdout. A failed or canceled job is an
// error.
func watchAndPrint(ctx context.Context, c *client.Client, id string) error {
	err := c.Watch(ctx, id, func(ev serve.Event) error {
		switch ev.Type {
		case "state":
			fmt.Fprintf(os.Stderr, "[%s] %s%s\n", ev.Job, ev.Status, suffixIf(ev.Error))
		case "progress":
			if p := ev.Progress; p != nil {
				fmt.Fprintf(os.Stderr, "[%s] %s\n", ev.Job, p.String())
			}
		}
		return nil
	})
	if err != nil {
		return err
	}
	st, err := c.Get(ctx, id)
	if err != nil {
		return err
	}
	if st.Status != serve.StatusDone {
		return fmt.Errorf("job %s: %s%s", id, st.Status, suffixIf(st.Error))
	}
	return printJSON(st.Result)
}

func suffixIf(msg string) string {
	if msg == "" {
		return ""
	}
	return ": " + msg
}

func cmdGet(ctx context.Context, c *client.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: get <job-id>")
	}
	st, err := c.Get(ctx, args[0])
	if err != nil {
		return err
	}
	return printJSON(st)
}

func cmdList(ctx context.Context, c *client.Client) error {
	jobs, err := c.List(ctx)
	if err != nil {
		return err
	}
	if len(jobs) == 0 {
		fmt.Fprintln(os.Stderr, "no jobs")
		return nil
	}
	for _, j := range jobs {
		age := time.Since(j.Created).Round(time.Second)
		recovered := ""
		if j.Recovered {
			recovered = "  [recovered]"
		}
		worker := ""
		if j.Worker != "" {
			worker = "  @" + j.Worker
		}
		fmt.Printf("%s  %-8s  %-8s  %4s ago%s%s%s\n", j.ID, j.Spec.Suite, j.Status, age, worker, recovered, suffixIf(j.Error))
	}
	return nil
}

// cmdWorkers lists the fleet ("workers") or drains one of its members
// ("workers drain <id>"). Standalone servers have no fleet and answer 404.
func cmdWorkers(ctx context.Context, c *client.Client, args []string) error {
	if len(args) == 2 && args[0] == "drain" {
		w, err := c.DrainWorker(ctx, args[1])
		if err != nil {
			return err
		}
		fmt.Printf("%s draining (%d active leases to finish)\n", w.ID, w.Active)
		return nil
	}
	if len(args) != 0 {
		return fmt.Errorf("usage: workers [drain <worker-id>]")
	}
	workers, err := c.Workers(ctx)
	if err != nil {
		return err
	}
	if len(workers) == 0 {
		fmt.Fprintln(os.Stderr, "no workers")
		return nil
	}
	for _, w := range workers {
		state := "up"
		switch {
		case w.Lost:
			state = "lost"
		case w.Draining:
			state = "draining"
		}
		fmt.Printf("%s  %-8s  %d/%d active  done %d  failed %d  last beat %s ago\n",
			w.ID, state, w.Active, w.Slots, w.Done, w.Failed, time.Since(w.LastBeat).Round(time.Second))
	}
	return nil
}

func cmdCancel(ctx context.Context, c *client.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: cancel <job-id>")
	}
	st, err := c.Cancel(ctx, args[0])
	if err != nil {
		return err
	}
	fmt.Printf("%s %s\n", st.ID, st.Status)
	return nil
}

// cmdTrace downloads a job's span trace as Chrome trace-event JSON —
// loadable at https://ui.perfetto.dev — to stdout or -o FILE.
func cmdTrace(ctx context.Context, c *client.Client, args []string) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	out := fs.String("o", "", "write the trace to FILE instead of stdout")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: trace [-o FILE] <job-id>")
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return c.Trace(ctx, fs.Arg(0), w)
}

func cmdMetrics(ctx context.Context, c *client.Client) error {
	out, err := c.Metrics(ctx)
	if err != nil {
		return err
	}
	fmt.Print(out)
	return nil
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
