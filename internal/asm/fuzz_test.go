package asm

import (
	"testing"

	"conspec/internal/isa"
)

// FuzzParseText checks the text assembler never panics and that anything it
// accepts also assembles and loads cleanly.
func FuzzParseText(f *testing.F) {
	for _, seed := range []string{
		"li a0, 1\nhalt",
		"loop: add s0, s0, s1\nbge s2, s1, loop\nhalt",
		".data 0x1000\n.word 5\n.byte 1\n.ascii \"x\"",
		"ld x1, 8(x2)\nst x3, (x4)\nclflush 0(a0)",
		"jal ra, fn\nfn: jalr x0, 0(ra)",
		"beq x1, x2, 16\n# comment\nnop ; trailing",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		b, err := ParseText(src)
		if err != nil {
			return
		}
		p, err := b.Assemble(0x1000)
		if err != nil {
			return
		}
		m := isa.NewFlatMem()
		p.Load(m)
		// Decoding every assembled instruction must round-trip.
		for i := range p.Insts {
			w := m.Read(p.Base+uint64(i)*isa.InstBytes, isa.InstBytes)
			if isa.Decode(w) != p.Insts[i] {
				t.Fatalf("inst %d does not round-trip", i)
			}
		}
	})
}
