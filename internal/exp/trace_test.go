package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"conspec/internal/obs/trace"
	"conspec/internal/workload"
)

// chromeEvent mirrors the Chrome trace-event fields the tests read back.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	TID  int64          `json:"tid"`
	Args map[string]any `json:"args"`
}

// arg reads a string annotation ("" when absent or non-string, like the
// numeric span_id/parent_id args).
func (e chromeEvent) arg(key string) string {
	s, _ := e.Args[key].(string)
	return s
}

func exportChrome(t *testing.T, tr *trace.Tracer) []chromeEvent {
	t.Helper()
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatalf("WriteChrome: %v", err)
	}
	var doc struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	return doc.TraceEvents
}

// TestRunnerSuiteTrace pins the acceptance shape of an instrumented suite
// run: the export is Perfetto-loadable JSON containing a suite span, run
// spans annotated with their mechanism nested inside it, warmup/measure
// phase spans nested inside the runs, and — after a warm re-run — cached
// run spans annotated with the serving cache tier.
func TestRunnerSuiteTrace(t *testing.T) {
	tr := trace.New(256)
	r := NewRunner(RunnerOptions{Trace: tr})
	spec := tinySpec()
	names := []string{"astar"}
	ctx := context.Background()
	for i := 0; i < 2; i++ { // second pass is served from the memo tier
		if _, err := r.RunSuite(ctx, SuiteFig5, Options{Spec: spec, Benches: names}); err != nil {
			t.Fatal(err)
		}
	}

	events := exportChrome(t, tr)
	byName := map[string][]chromeEvent{}
	for _, ev := range events {
		if ev.Ph != "X" {
			t.Fatalf("event %q has phase %q, want complete-event X", ev.Name, ev.Ph)
		}
		byName[ev.Name] = append(byName[ev.Name], ev)
	}
	if n := len(byName["suite:fig5"]); n != 2 {
		t.Fatalf("%d suite:fig5 spans, want 2", n)
	}
	runs := byName["run:astar"]
	if len(runs) != 8 { // 4 mechanisms executed + 4 memo hits
		t.Fatalf("%d run:astar spans, want 8", len(runs))
	}
	suite := byName["suite:fig5"][0]
	var executed, cached int
	for _, run := range runs {
		if run.arg("mechanism") == "" {
			t.Fatalf("run span lacks mechanism annotation: %+v", run)
		}
		if run.arg("tier") != "" {
			cached++
			if run.arg("cache") != "hit" || run.arg("tier") != TierMemory {
				t.Fatalf("cached run span has wrong annotations: %+v", run.Args)
			}
		} else {
			executed++
		}
	}
	if executed != 4 || cached != 4 {
		t.Fatalf("executed/cached run spans = %d/%d, want 4/4", executed, cached)
	}
	// Phase spans: one warmup and one measure per executed run, each nested
	// in a run span's time range on the run's thread track.
	for _, phase := range []string{"warmup", "measure"} {
		spans := byName[phase]
		if len(spans) != 4 {
			t.Fatalf("%d %s spans, want 4", len(spans), phase)
		}
		for _, ph := range spans {
			nested := false
			for _, run := range runs {
				if ph.TID == run.TID && ph.TS >= run.TS && ph.TS+ph.Dur <= run.TS+run.Dur+0.001 {
					nested = true
					break
				}
			}
			if !nested {
				t.Fatalf("%s span not nested in any run span: %+v", phase, ph)
			}
		}
	}
	// Suite span must cover its first run span.
	first := runs[0]
	if suite.TS > first.TS || suite.TS+suite.Dur < first.TS+first.Dur {
		t.Fatalf("suite span [%f,%f] does not cover run span [%f,%f]",
			suite.TS, suite.TS+suite.Dur, first.TS, first.TS+first.Dur)
	}
	if _, dropped := tr.Stats(); dropped != 0 {
		t.Fatalf("tracer dropped %d spans/annotations", dropped)
	}
}

// TestRunWorkloadObsPhases pins the phase-hook contract: warmup then
// measure, begin strictly before end, and the hook changing nothing about
// the result.
func TestRunWorkloadObsPhases(t *testing.T) {
	p, ok := workload.ByName("astar")
	if !ok {
		t.Fatal("astar profile missing")
	}
	w, err := workload.Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	spec := tinySpec()
	var log []string
	onPhase := func(name string) func() {
		log = append(log, "begin:"+name)
		return func() { log = append(log, "end:"+name) }
	}
	res, err := RunWorkloadObs(context.Background(), w, spec, nil, onPhase)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"begin:warmup", "end:warmup", "begin:measure", "end:measure"}
	if len(log) != len(want) {
		t.Fatalf("phase log %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("phase log %v, want %v", log, want)
		}
	}
	plain, err := RunWorkloadCtx(context.Background(), w, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cycles != plain.Cycles || res.Committed != plain.Committed {
		t.Fatalf("observed run differs from plain run: %d/%d cycles, %d/%d committed",
			res.Cycles, plain.Cycles, res.Committed, plain.Committed)
	}
}

// TestRunnerSkipMetaCounters: executed runs aggregate the stall skipper's
// meta-counters into engine Stats.
func TestRunnerSkipMetaCounters(t *testing.T) {
	r := NewRunner(RunnerOptions{})
	spec := tinySpec()
	if _, err := r.Evaluation(context.Background(), spec, []string{"lbm"}); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.SkippedCycles == 0 || st.SkipSpans == 0 {
		t.Fatalf("memory-bound suite skipped nothing: %+v", st)
	}
}
