package core

import (
	"math/rand"
	"testing"
)

// naiveMatrix is the obvious bool-grid reference the cached-summary
// BitMatrix is checked against.
type naiveMatrix struct {
	n int
	b [][]bool
}

func newNaive(n int) *naiveMatrix {
	m := &naiveMatrix{n: n, b: make([][]bool, n)}
	for i := range m.b {
		m.b[i] = make([]bool, n)
	}
	return m
}

func (m *naiveMatrix) set(i, j int)   { m.b[i][j] = true }
func (m *naiveMatrix) clear(i, j int) { m.b[i][j] = false }
func (m *naiveMatrix) clearRow(i int) {
	for j := range m.b[i] {
		m.b[i][j] = false
	}
}
func (m *naiveMatrix) clearCol(j int) {
	for i := range m.b {
		m.b[i][j] = false
	}
}
func (m *naiveMatrix) rowAny(i int) bool {
	for _, v := range m.b[i] {
		if v {
			return true
		}
	}
	return false
}
func (m *naiveMatrix) mergeRowMasked(i int, mask []uint64) {
	for j := 0; j < m.n; j++ {
		if mask[j/64]&(1<<(uint(j)%64)) != 0 {
			m.b[i][j] = true
		}
	}
}
func (m *naiveMatrix) clearColumnBatch(mask []uint64) {
	for j := 0; j < m.n; j++ {
		if mask[j/64]&(1<<(uint(j)%64)) != 0 {
			m.clearCol(j)
		}
	}
}
func (m *naiveMatrix) rowAndNotAny(i int, mask []uint64) bool {
	for j := 0; j < m.n; j++ {
		if m.b[i][j] && mask[j/64]&(1<<(uint(j)%64)) == 0 {
			return true
		}
	}
	return false
}
func (m *naiveMatrix) popCount() int {
	n := 0
	for i := range m.b {
		for _, v := range m.b[i] {
			if v {
				n++
			}
		}
	}
	return n
}

// opMask derives a deterministic pseudo-random column mask from the op
// coordinates (splitmix64 over each word index), so scripted and fuzzed op
// sequences exercise the batched kernels without extra input bytes.
func opMask(m *BitMatrix, i, j int) []uint64 {
	mask := make([]uint64, m.Words())
	x := uint64(i)*0x9E3779B97F4A7C15 + uint64(j) + 1
	for k := range mask {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		mask[k] = z ^ (z >> 31)
	}
	return mask
}

// applyOp drives one mutation on both implementations and cross-checks the
// queryable state. op selects the operation, i/j the coordinates.
func applyOp(t *testing.T, m *BitMatrix, ref *naiveMatrix, op, i, j int) {
	t.Helper()
	switch op % 9 {
	case 0:
		m.Set(i, j)
		ref.set(i, j)
	case 1:
		m.Clear(i, j)
		ref.clear(i, j)
	case 2:
		m.ClearRow(i)
		ref.clearRow(i)
	case 3:
		m.ClearCol(j)
		ref.clearCol(j)
	case 4:
		// Double-set then clear: exercises idempotent-set counting.
		m.Set(i, j)
		m.Set(i, j)
		ref.set(i, j)
	case 5:
		m.Reset()
		for r := 0; r < ref.n; r++ {
			ref.clearRow(r)
		}
	case 6:
		mask := opMask(m, i, j)
		m.MergeRowMasked(i, mask)
		ref.mergeRowMasked(i, mask)
	case 7:
		mask := opMask(m, j, i)
		m.ClearColumnBatch(mask)
		ref.clearColumnBatch(mask)
	case 8:
		mask := opMask(m, i+1, j)
		if got, want := m.RowAndNotAny(i, mask), ref.rowAndNotAny(i, mask); got != want {
			t.Fatalf("RowAndNotAny(%d) = %v, reference %v", i, got, want)
		}
	}
	if got, want := m.Get(i, j), ref.b[i][j]; got != want {
		t.Fatalf("Get(%d,%d) = %v, reference %v", i, j, got, want)
	}
	if got, want := m.RowAny(i), ref.rowAny(i); got != want {
		t.Fatalf("RowAny(%d) = %v, reference %v", i, got, want)
	}
	if got, want := m.PopCount(), ref.popCount(); got != want {
		t.Fatalf("PopCount = %d, reference %d", got, want)
	}
	auditCounts(t, m)
}

// auditCounts recomputes the cached row counts and checks the conservative
// column summary from the raw words. The summaries gate early-outs (RowAny,
// ClearCol's skip), so a drifted one silently corrupts later operations
// rather than failing loudly — this catches the drift at the op that
// introduced it. rowCnt must be exact; colAny must cover every non-empty
// column (a stale set bit over an empty column is legal — Clear and
// ClearRow leave it for ClearCol to self-heal — but a clear bit over a
// non-empty column would make ClearCol skip live dependences).
func auditCounts(t *testing.T, m *BitMatrix) {
	t.Helper()
	for i := 0; i < m.n; i++ {
		cnt := 0
		for j := 0; j < m.n; j++ {
			if m.Get(i, j) {
				cnt++
			}
		}
		if m.rowCnt[i] != cnt {
			t.Fatalf("rowCnt[%d] = %d, recount %d", i, m.rowCnt[i], cnt)
		}
	}
	for j := 0; j < m.n; j++ {
		any := false
		for i := 0; i < m.n; i++ {
			if m.Get(i, j) {
				any = true
				break
			}
		}
		if any && m.colAny[j/64]&(1<<(uint(j)%64)) == 0 {
			t.Fatalf("colAny[%d] clear but column has set bits", j)
		}
	}
}

// checkAll verifies every queryable cell and row summary agrees.
func checkAll(t *testing.T, m *BitMatrix, ref *naiveMatrix) {
	t.Helper()
	for i := 0; i < ref.n; i++ {
		if got, want := m.RowAny(i), ref.rowAny(i); got != want {
			t.Fatalf("RowAny(%d) = %v, reference %v", i, got, want)
		}
		for j := 0; j < ref.n; j++ {
			if got, want := m.Get(i, j), ref.b[i][j]; got != want {
				t.Fatalf("Get(%d,%d) = %v, reference %v", i, j, got, want)
			}
		}
	}
	if got, want := m.PopCount(), ref.popCount(); got != want {
		t.Fatalf("PopCount = %d, reference %d", got, want)
	}
}

// TestBitMatrixPropertyRandomOps runs long random operation sequences on
// several sizes (crossing the 64-bit word boundary) against the reference.
func TestBitMatrixPropertyRandomOps(t *testing.T) {
	for _, n := range []int{1, 7, 63, 64, 65, 97, 128} {
		rng := rand.New(rand.NewSource(int64(0xC0FFEE + n)))
		m := NewBitMatrix(n)
		ref := newNaive(n)
		for step := 0; step < 4000; step++ {
			applyOp(t, m, ref, rng.Intn(6), rng.Intn(n), rng.Intn(n))
		}
		checkAll(t, m, ref)
	}
}

// FuzzBitMatrix interprets the fuzz input as an op script over a 40-entry
// matrix (the paper's IQ size) and checks the cached row summaries against
// the naive reference after every operation.
func FuzzBitMatrix(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 4, 5, 6, 7, 8})
	f.Add([]byte{0, 0, 0, 1, 0, 0, 3, 0, 0, 2, 0, 0})
	f.Fuzz(func(t *testing.T, script []byte) {
		const n = 40
		m := NewBitMatrix(n)
		ref := newNaive(n)
		for k := 0; k+2 < len(script); k += 3 {
			applyOp(t, m, ref, int(script[k]), int(script[k+1])%n, int(script[k+2])%n)
		}
		checkAll(t, m, ref)
	})
}
