package pipeline

import (
	"conspec/internal/config"
	"conspec/internal/isa"
	"conspec/internal/mem"
)

// Duo couples two cores over a shared L2/L3 and backing store with
// write-invalidate coherence between their private L1s — the paper's threat
// model setting where attacker and victim are separate processes on the
// same machine. Each core carries its own security configuration, so a
// defended victim can face an undefended attacker.
type Duo struct {
	A, B    *CPU
	Backing *isa.FlatMem
}

// NewDuo builds two cores from the same core configuration. secA/secB are
// the per-core defense settings (the attacker typically runs Origin — the
// defense protects the victim, not the adversary).
func NewDuo(cfg config.Core, secA, secB SecurityConfig, backing *isa.FlatMem) *Duo {
	hierA := mem.NewHierarchy(cfg.Mem, backing)
	hierB := mem.NewSharedHierarchy(cfg.Mem, hierA)
	return &Duo{
		A:       New(cfg, secA, hierA),
		B:       New(cfg, secB, hierB),
		Backing: backing,
	}
}

// Run interleaves the two cores cycle by cycle until the predicate returns
// true or the cycle budget runs out; it returns the cycles consumed. The
// usual predicate is "the attacker halted" — victims are service loops that
// never halt.
func (d *Duo) Run(maxCycles uint64, done func(*Duo) bool) uint64 {
	for i := uint64(0); i < maxCycles; i++ {
		d.A.StepCycle()
		d.B.StepCycle()
		if done(d) {
			return i + 1
		}
	}
	return maxCycles
}
