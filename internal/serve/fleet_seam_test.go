package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"sync"
	"testing"
	"time"

	"conspec/internal/exp"
	"conspec/internal/exp/report"
)

// fakeLimiter denies every client after the first n submissions.
type fakeLimiter struct {
	mu    sync.Mutex
	allow int
	seen  []string
}

func (f *fakeLimiter) Allow(client string) (bool, time.Duration) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.seen = append(f.seen, client)
	if f.allow > 0 {
		f.allow--
		return true, 0
	}
	return false, 7 * time.Second
}

// TestSubmitLimiter429: a Config.Limiter denial turns into 429 with the
// limiter's Retry-After and a jobs_throttled_total increment, keyed by the
// X-Conspec-Client header.
func TestSubmitLimiter429(t *testing.T) {
	fake := newFakeExec()
	lim := &fakeLimiter{allow: 1}
	_, ts := newTestServer(t, Config{Workers: 1, Limiter: lim}, fake)

	body, _ := json.Marshal(JobSpec{Suite: "lru"})
	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("X-Conspec-Client", "alice")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d, want 202", resp.StatusCode)
	}
	<-fake.started

	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("X-Conspec-Client", "alice")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("throttled submit: status %d, want 429", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "7" {
		t.Fatalf("Retry-After = %q, want the limiter's 7", ra)
	}

	lim.mu.Lock()
	seen := append([]string(nil), lim.seen...)
	lim.mu.Unlock()
	if len(seen) != 2 || seen[0] != "alice" || seen[1] != "alice" {
		t.Fatalf("limiter saw clients %v, want [alice alice]", seen)
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mb, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !bytes.Contains(mb, []byte("conspec_served_jobs_throttled_total 1")) {
		t.Fatalf("metrics missing throttle counter:\n%s", mb)
	}
	fake.releaseAll(1)
}

// TestCapacityOverride: Config.Capacity replaces the static worker count
// in Retry-After math, degrading to 1 for an empty fleet.
func TestCapacityOverride(t *testing.T) {
	n := 0
	s := New(Config{Workers: 4, Capacity: func() int { return n }})
	defer s.Close()
	if got := s.capacity(); got != 1 {
		t.Fatalf("empty fleet capacity = %d, want the 1 floor", got)
	}
	n = 12
	if got := s.capacity(); got != 12 {
		t.Fatalf("capacity = %d, want the live 12", got)
	}

	s2 := New(Config{Workers: 4})
	defer s2.Close()
	if got := s2.capacity(); got != 4 {
		t.Fatalf("static capacity = %d, want Workers=4", got)
	}
}

// fleetishExecutor implements Executor like the fleet coordinator does:
// it reports a worker id, emits progress, and returns a report.
type fleetishExecutor struct{}

func (fleetishExecutor) Execute(ctx context.Context, job ExecJob) (*report.Report, exp.Stats, int, error) {
	if job.SetWorker != nil {
		job.SetWorker("w-test")
	}
	if job.Emit != nil {
		job.Emit(exp.ProgressEvent{Suite: exp.SuiteID(job.Spec.Suite), Benchmark: "fake", Mechanism: "fake", Phase: exp.PhaseRunDone})
	}
	return report.New(), exp.Stats{Executed: 1}, 0, nil
}

// TestExecutorSeamCarriesWorker: a Config.Executor backend executes jobs,
// and the worker it reports surfaces in GET /v1/jobs/{id} and the list —
// satellite 2's worker field.
func TestExecutorSeamCarriesWorker(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, Executor: fleetishExecutor{}}, nil)

	st := submit(t, ts.URL, JobSpec{Suite: "lru"})
	final := waitStatus(t, ts.URL, st.ID, StatusDone)
	if final.Worker != "w-test" {
		t.Fatalf("job worker = %q, want w-test", final.Worker)
	}

	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list []JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatalf("decode list: %v", err)
	}
	if len(list) != 1 || list[0].Worker != "w-test" {
		t.Fatalf("list = %+v, want one job on w-test", list)
	}
}
