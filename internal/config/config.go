// Package config defines the simulated processor configurations: the
// paper's Table III core (the main evaluation machine) and the three
// Table VI sensitivity cores (A57-like mobile, I7-like desktop, Xeon-like
// server).
package config

import (
	"conspec/internal/branch"
	"conspec/internal/mem"
)

// Core sizes one simulated out-of-order processor.
type Core struct {
	Name string

	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	// FrontendDepth is the fetch-to-dispatch latency in cycles; together
	// with execution depth it models the paper's 15-stage pipeline (deeper
	// front ends pay more per branch misprediction).
	FrontendDepth int

	ROB      int
	IQ       int
	LDQ      int
	STQ      int
	PhysRegs int

	ALUs        int
	MulUnits    int
	DivUnits    int
	MemPorts    int
	BranchUnits int

	MulLat int
	DivLat int

	// FusedStores makes stores issue only when BOTH address and data are
	// ready — gem5's O3 store model, and therefore closer to the machine
	// the paper measured. The default (split stores) issues on address
	// readiness, the modern design. The difference matters enormously for
	// the Baseline mechanism: a fused store with late data is an unissued
	// memory producer that blocks every younger suspect access.
	FusedStores bool

	// MaxMSHRs bounds concurrently outstanding L1D misses (0 = unlimited,
	// the paper's effective configuration). Lowering it throttles memory
	// level parallelism — an ablation for how much of each mechanism's cost
	// is MLP loss.
	MaxMSHRs int

	// StoreSets enables the Store Sets memory-dependence predictor
	// (ablation; the paper's machine speculates loads unconditionally).
	// StoreSetEntries sizes its PC-indexed table (power of two).
	StoreSets       bool
	StoreSetEntries int

	// Watchdog sets the forward-progress window in cycles: a run fails with
	// a deadlock outcome when no uop commits for this long. 0 (the default)
	// derives the window from the memory latency; negative disables the
	// watchdog entirely.
	Watchdog int

	Predictor branch.Config
	Mem       mem.HierarchyConfig
}

// paperMem returns the Table III memory system: 64KB 4-way L1s (2-cycle),
// 2MB 16-way L2 (10-cycle), 8MB 32-way L3 (60-cycle), 192-cycle memory,
// 64-entry TLBs.
func paperMem() mem.HierarchyConfig {
	return mem.HierarchyConfig{
		LineBytes: 64,
		L1ISize:   64 * 1024, L1IWays: 4, L1ILat: 2,
		L1DSize: 64 * 1024, L1DWays: 4, L1DLat: 2,
		L2Size: 2 * 1024 * 1024, L2Ways: 16, L2Lat: 10,
		L3Size: 8 * 1024 * 1024, L3Ways: 32, L3Lat: 60,
		MemLat:      192,
		ITLBEntries: 64, DTLBEntries: 64, PageWalkLat: 30,
	}
}

// PaperCore returns the Table III configuration: a 4-way out-of-order core
// with a 15-stage pipeline, 192-entry ROB, 64-entry issue queue, 32-entry
// LDQ and 24-entry STQ.
func PaperCore() Core {
	return Core{
		Name:            "paper",
		FetchWidth:      4,
		IssueWidth:      4,
		CommitWidth:     4,
		FrontendDepth:   8, // 15 stages ≈ 8 front-end + issue/exec/commit
		ROB:             192,
		IQ:              64,
		LDQ:             32,
		STQ:             24,
		PhysRegs:        256,
		ALUs:            4,
		MulUnits:        1,
		DivUnits:        1,
		MemPorts:        2,
		BranchUnits:     1,
		MulLat:          3,
		DivLat:          12,
		StoreSetEntries: 1024,
		Predictor:       branch.DefaultConfig(),
		Mem:             paperMem(),
	}
}

// A57Like returns the Table VI mobile-class configuration: narrow and
// shallow, with a small cache hierarchy and no L3.
func A57Like() Core {
	c := PaperCore()
	c.Name = "A57-like"
	c.FetchWidth, c.IssueWidth, c.CommitWidth = 2, 2, 2
	c.FrontendDepth = 5
	c.ROB, c.IQ, c.LDQ, c.STQ = 64, 28, 16, 12
	c.PhysRegs = 128
	c.ALUs, c.MemPorts, c.BranchUnits = 2, 1, 1
	c.Predictor = branch.Config{PHTBits: 10, GHRBits: 10, BTBEntries: 256, RASEntries: 8}
	c.Mem = mem.HierarchyConfig{
		LineBytes: 64,
		L1ISize:   32 * 1024, L1IWays: 2, L1ILat: 2,
		L1DSize: 32 * 1024, L1DWays: 2, L1DLat: 2,
		L2Size: 512 * 1024, L2Ways: 8, L2Lat: 12,
		// No real L3 on A57; model a thin 1MB with near-memory latency.
		L3Size: 1024 * 1024, L3Ways: 8, L3Lat: 40,
		MemLat:      160,
		ITLBEntries: 32, DTLBEntries: 32, PageWalkLat: 30,
	}
	return c
}

// I7Like returns the Table VI desktop-class configuration.
func I7Like() Core {
	c := PaperCore()
	c.Name = "I7-like"
	c.FetchWidth, c.IssueWidth, c.CommitWidth = 4, 4, 4
	c.FrontendDepth = 7
	c.ROB, c.IQ, c.LDQ, c.STQ = 168, 54, 28, 20
	c.PhysRegs = 224
	c.Mem.L2Size = 1024 * 1024
	c.Mem.L2Ways = 8
	c.Mem.L3Size = 6 * 1024 * 1024
	c.Mem.L3Ways = 12
	return c
}

// XeonLike returns the Table VI server-class configuration: the widest and
// deepest machine, with the largest speculation window.
func XeonLike() Core {
	c := PaperCore()
	c.Name = "Xeon-like"
	c.FetchWidth, c.IssueWidth, c.CommitWidth = 4, 6, 4
	c.FrontendDepth = 9
	c.ROB, c.IQ, c.LDQ, c.STQ = 224, 72, 40, 32
	c.PhysRegs = 288
	c.ALUs, c.MemPorts, c.BranchUnits = 6, 2, 2
	c.Mem.L3Size = 16 * 1024 * 1024
	c.Mem.L3Ways = 32
	c.Mem.L3Lat = 70
	return c
}

// SensitivityCores returns the three Table VI configurations in paper order.
func SensitivityCores() []Core {
	return []Core{A57Like(), I7Like(), XeonLike()}
}
