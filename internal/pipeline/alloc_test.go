package pipeline

import (
	"testing"

	"conspec/internal/asm"
	"conspec/internal/core"
	"conspec/internal/isa"
)

// allocKernel builds a non-terminating kernel exercising every hot path:
// dependent ALU chains, loads and stores over a strided buffer, a
// data-dependent branch (mispredicts → squashes), and a multiply.
func allocKernel() *asm.Program {
	b := asm.New()
	b.Li(asm.A0, 0x40000) // buffer
	b.Li(asm.S0, 0)       // i
	b.Li(asm.S1, 255)     // index mask
	b.Li(asm.S3, 0)       // checksum
	b.Bind("loop")
	b.And(asm.T0, asm.S0, asm.S1)
	b.Shli(asm.T0, asm.T0, 3)
	b.Add(asm.T1, asm.A0, asm.T0)
	b.St(asm.S3, asm.T1, 0)
	b.Ld(asm.T2, asm.T1, 0)
	b.Mul(asm.T3, asm.T2, asm.S1)
	b.Add(asm.S3, asm.S3, asm.T3)
	b.Addi(asm.S0, asm.S0, 1)
	// Data-dependent branch: taken when the low checksum bit is set, which
	// flips irregularly — a steady source of mispredictions and squashes.
	b.Andi(asm.T4, asm.S3, 1)
	b.Beq(asm.T4, asm.Zero, "skip")
	b.Ld(asm.T5, asm.A0, 0)
	b.Add(asm.S3, asm.S3, asm.T5)
	b.Bind("skip")
	b.Jmp("loop")
	return b.MustAssemble(testBase)
}

// TestZeroAllocSteadyState pins the tentpole property: after warmup, the
// cycle loop performs no heap allocations — the tried map, per-cycle
// scratch slices, uop churn and sort closures are all gone.
func TestZeroAllocSteadyState(t *testing.T) {
	for _, tc := range []struct {
		name    string
		sec     SecurityConfig
		metrics bool
		flight  bool
	}{
		{"origin", SecurityConfig{Mechanism: core.Origin}, false, false},
		{"cachehit-tpbuf", SecurityConfig{Mechanism: core.CacheHitTPBuf, Scope: core.ScopeBranchMem}, false, false},
		{"ssbd", SecurityConfig{Mechanism: core.Origin, SSBD: true}, false, false},
		// The new Defense backends must keep the property: the fence
		// watermark is a scalar, parked delay-on-miss loads reuse a
		// preallocated slice, and invisible loads change no bookkeeping.
		{"fence", SecurityConfig{Mechanism: core.Fence}, false, false},
		{"delay-on-miss", SecurityConfig{Mechanism: core.DelayOnMiss, Scope: core.ScopeBranchMem}, false, false},
		{"invisispec", SecurityConfig{Mechanism: core.InvisiSpec}, false, false},
		// The obs contract: an attached registry with interval sampling
		// costs array writes only — still zero allocations per cycle.
		{"origin-metrics", SecurityConfig{Mechanism: core.Origin}, true, false},
		{"cachehit-tpbuf-metrics", SecurityConfig{Mechanism: core.CacheHitTPBuf, Scope: core.ScopeBranchMem}, true, false},
		// The flight recorder's contract: an armed recorder is ring stores
		// only — still zero allocations per cycle, even alongside metrics.
		{"origin-flight", SecurityConfig{Mechanism: core.Origin}, false, true},
		{"cachehit-tpbuf-flight", SecurityConfig{Mechanism: core.CacheHitTPBuf, Scope: core.ScopeBranchMem}, true, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			prog := allocKernel()
			backing := isa.NewFlatMem()
			prog.Load(backing)
			cpu := NewWithMemory(smallCore(), tc.sec, backing)
			if tc.flight {
				cpu.ArmFlightRecorder(0, 0)
			}
			if tc.metrics {
				m := NewMetrics()
				// 30000 warmup + 21*2000 measured cycles at interval 256
				// needs ~290 rows; 1024 leaves the append path untouched.
				m.EnableSampling(256, 1024)
				cpu.AttachMetrics(m)
			}
			cpu.SetPC(prog.Base)
			// Warm up: let pools, waiter lists and scratch slices reach
			// their steady-state capacities.
			cpu.Run(30000)
			if cpu.Halted() {
				t.Fatal("kernel must not halt")
			}
			avg := testing.AllocsPerRun(20, func() {
				cpu.Run(2000)
			})
			if cpu.Halted() {
				t.Fatal("kernel must not halt during measurement")
			}
			if avg != 0 {
				t.Fatalf("steady-state cycle loop allocates: %.2f allocs per 2000 cycles", avg)
			}
			if err := cpu.CheckInvariants(); err != nil {
				t.Fatalf("invariants after run: %v", err)
			}
			if tc.flight {
				if d := cpu.DumpFlight(); d == nil || len(d.Events) == 0 {
					t.Fatal("flight recorder armed but recorded nothing")
				}
			}
			if tc.metrics {
				s := cpu.m.Series()
				if s == nil || len(s.Rows) == 0 {
					t.Fatal("metrics were attached but the sampler recorded nothing")
				}
				// The gauge columns register after EnableSampling (inside
				// AttachMetrics); every row must still align with the final
				// column set, cycle column strictly increasing.
				prev := uint64(0)
				for i, row := range s.Rows {
					if len(row) != len(s.Columns) {
						t.Fatalf("row %d has %d values for %d columns", i, len(row), len(s.Columns))
					}
					if row[0] <= prev {
						t.Fatalf("row %d cycle %d not after previous %d", i, row[0], prev)
					}
					prev = row[0]
				}
			}
		})
	}
}
