package core

import (
	"fmt"
	"math/bits"
)

// TPBuf is the Trusted Pages Buffer of §V.D: a small structure shadowing
// the load/store queue 1:1 that records, per in-flight speculative memory
// access, the physical page number (PPN) and four status bits:
//
//	A — entry allocated (tracks LSQ occupancy)
//	V — PPN valid (address translated through the TLB)
//	W — writeback: the entry's data became available to younger instructions
//	S — the access carried the suspect speculation flag
//
// plus a Mask identifying which entries are OLDER in program order
// (generated from the A bits at allocation time).
//
// Detection implements the paper's Table II: an incoming suspect L1D-miss
// request is UNSAFE iff at least one older valid entry is in Writeback
// status, is itself suspect, and accessed a DIFFERENT memory page — the
// S-Pattern's "A feeds B, B misses, A and B touch different pages" shape.
// That is eq. (1), safe = !( |(V & W & S & Match) ), with Match the
// page-differs comparator output.
// TPBufVariant selects the S-Pattern matching rule — a design-space
// ablation around the paper's eq. (1).
type TPBufVariant int

const (
	// VariantPaper is eq. (1) exactly: older & V & W & S & different page.
	VariantPaper TPBufVariant = iota
	// VariantNoW drops the Writeback condition: an older suspect access
	// matches even before its data is available. Strictly more
	// conservative (blocks a superset), closing the in-flight-producer
	// window at a performance cost.
	VariantNoW
	// VariantLine matches at LINE granularity instead of page granularity:
	// "different line" is almost always true, so nearly every suspect miss
	// with any older suspect activity blocks — it degenerates toward the
	// plain cache-hit filter and shows why the paper chose pages.
	VariantLine
)

// String names the variant.
func (v TPBufVariant) String() string {
	switch v {
	case VariantNoW:
		return "no-W"
	case VariantLine:
		return "line-granular"
	default:
		return "paper"
	}
}

type TPBuf struct {
	n       int
	variant TPBufVariant
	ppn     []uint64
	a       []bool
	v       []bool
	w       []bool
	s       []bool
	mask    [][]uint64 // mask[i] = bitvector of entries older than i
	aM      []uint64   // word mask of the A bits (allocate snapshots copy it)
	words   int
	occ     int // population count of the A bits
	Stats   TPBufStats
}

// TPBufStats counts filter events for Table V's S-Pattern mismatch rate.
type TPBufStats struct {
	Allocs  uint64
	Queries uint64 // suspect L1D misses checked against the buffer
	Unsafe  uint64 // queries matching the S-Pattern (blocked)
	Safe    uint64 // queries mismatching the S-Pattern (allowed)
}

// MismatchRate returns the fraction of queried suspect misses that did NOT
// match the S-Pattern — Table V's "S-Pattern Mismatch Rate".
func (s TPBufStats) MismatchRate() float64 {
	if s.Queries == 0 {
		return 0
	}
	return float64(s.Safe) / float64(s.Queries)
}

// SetVariant selects the S-Pattern matching rule (default VariantPaper).
func (t *TPBuf) SetVariant(v TPBufVariant) *TPBuf {
	t.variant = v
	return t
}

// Variant returns the active matching rule.
func (t *TPBuf) Variant() TPBufVariant { return t.variant }

// NewTPBuf builds a buffer with n entries (one per LSQ slot).
func NewTPBuf(n int) *TPBuf {
	if n <= 0 {
		panic(fmt.Sprintf("core: TPBuf size %d", n))
	}
	w := (n + wordBits - 1) / wordBits
	t := &TPBuf{
		n: n, words: w,
		ppn:  make([]uint64, n),
		a:    make([]bool, n),
		v:    make([]bool, n),
		w:    make([]bool, n),
		s:    make([]bool, n),
		mask: make([][]uint64, n),
		aM:   make([]uint64, w),
	}
	for i := range t.mask {
		t.mask[i] = make([]uint64, w)
	}
	return t
}

// Size returns the entry count.
func (t *TPBuf) Size() int { return t.n }

// Occupancy returns how many entries are currently allocated (the A-bit
// population count). Since the buffer shadows the LSQ 1:1, this is also the
// combined load/store queue occupancy — the obs layer samples it per cycle.
func (t *TPBuf) Occupancy() int { return t.occ }

func (t *TPBuf) checkIdx(i int) {
	if i < 0 || i >= t.n {
		panic(fmt.Sprintf("core: TPBuf index %d out of range [0,%d)", i, t.n))
	}
}

// Allocate claims entry i for a newly dispatched memory instruction. The
// entry's Mask snapshots the currently allocated (A) entries — everything
// already in the buffer is older in program order. Entry i's bit is also
// removed from every other mask: whatever occupied this slot before has
// been freed, so a stale "older" bit must not survive reallocation.
func (t *TPBuf) Allocate(i int) {
	t.checkIdx(i)
	t.Stats.Allocs++
	bit := uint64(1) << (uint(i) % wordBits)
	iw := i / wordBits
	copy(t.mask[i], t.aM)
	t.mask[i][iw] &^= bit
	for j := 0; j < t.n; j++ {
		if j != i {
			t.mask[j][iw] &^= bit
		}
	}
	if !t.a[i] {
		t.occ++
	}
	t.a[i] = true
	t.aM[iw] |= bit
	t.v[i] = false
	t.w[i] = false
	t.s[i] = false
	t.ppn[i] = 0
}

// SetSuspect records the suspect speculation flag carried by the
// instruction occupying entry i (the S bit update of §V.D).
func (t *TPBuf) SetSuspect(i int, suspect bool) {
	t.checkIdx(i)
	t.s[i] = suspect
}

// SetPPN records the translated physical page number; the V bit is set —
// the paper requires the address to have passed TLB translation before the
// tag is trusted.
func (t *TPBuf) SetPPN(i int, ppn uint64) {
	t.checkIdx(i)
	t.ppn[i] = ppn
	t.v[i] = true
}

// SetWriteback marks entry i's data as available to younger instructions
// (the W bit): from this point on, a younger access's address may be
// data-dependent on this entry's result.
func (t *TPBuf) SetWriteback(i int) {
	t.checkIdx(i)
	t.w[i] = true
}

// Free releases entry i (commit or squash along with the LSQ).
func (t *TPBuf) Free(i int) {
	t.checkIdx(i)
	if t.a[i] {
		t.occ--
	}
	t.a[i] = false
	t.aM[i/wordBits] &^= 1 << (uint(i) % wordBits)
	t.v[i] = false
	t.w[i] = false
	t.s[i] = false
	t.ppn[i] = 0
}

// QuerySafe evaluates eq. (1) for the suspect L1D-missing request occupying
// entry i with physical page ppn: it is safe unless some OLDER (Mask),
// allocated, valid (V), written-back (W), suspect (S) entry accessed a
// different page. The result feeds the Cache-hit filter's block decision.
func (t *TPBuf) QuerySafe(i int, ppn uint64) bool {
	t.checkIdx(i)
	t.Stats.Queries++
	for w, word := range t.mask[i] {
		for word != 0 {
			j := w*wordBits + bits.TrailingZeros64(word)
			word &= word - 1
			wOK := t.w[j] || t.variant == VariantNoW
			if t.a[j] && t.v[j] && wOK && t.s[j] && t.ppn[j] != ppn {
				t.Stats.Unsafe++
				return false
			}
		}
	}
	t.Stats.Safe++
	return true
}

// CorruptBit inverts one status bit of entry i — 'V', 'W', 'S' — or the low
// bit of its page tag ('P'). This is a fault-injection hook: the real
// mechanism never toggles a bit in isolation, so every use models a
// single-event upset the audit layer must catch.
func (t *TPBuf) CorruptBit(i int, field byte) {
	t.checkIdx(i)
	switch field {
	case 'V':
		t.v[i] = !t.v[i]
	case 'W':
		t.w[i] = !t.w[i]
	case 'S':
		t.s[i] = !t.s[i]
	case 'P':
		t.ppn[i] ^= 1
	}
}

// AuditSafe evaluates eq. (1) for entry i exactly like QuerySafe but
// without recording statistics — a side-effect-free readout for the in-run
// invariant auditor, which must not perturb the counters it is checking.
func (t *TPBuf) AuditSafe(i int, ppn uint64) bool {
	t.checkIdx(i)
	for j := 0; j < t.n; j++ {
		if t.mask[i][j/wordBits]&(1<<(uint(j)%wordBits)) == 0 {
			continue
		}
		wOK := t.w[j] || t.variant == VariantNoW
		if t.a[j] && t.v[j] && wOK && t.s[j] && t.ppn[j] != ppn {
			return false
		}
	}
	return true
}

// Older reports whether entry j is marked older than entry i (test hook).
func (t *TPBuf) Older(i, j int) bool {
	t.checkIdx(i)
	t.checkIdx(j)
	return t.mask[i][j/wordBits]&(1<<(uint(j)%wordBits)) != 0
}

// Entry returns the status bits of entry i (test hook).
func (t *TPBuf) Entry(i int) (a, v, w, s bool, ppn uint64) {
	t.checkIdx(i)
	return t.a[i], t.v[i], t.w[i], t.s[i], t.ppn[i]
}

// Reset clears the whole buffer between runs.
func (t *TPBuf) Reset() {
	for i := 0; i < t.n; i++ {
		t.Free(i)
		for w := 0; w < t.words; w++ {
			t.mask[i][w] = 0
		}
	}
}
