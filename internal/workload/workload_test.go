package workload

import (
	"testing"

	"conspec/internal/isa"
)

func TestProfilesCount(t *testing.T) {
	ps := Profiles()
	if len(ps) != 22 {
		t.Fatalf("expected the 22 SPEC CPU2006 benchmarks, got %d", len(ps))
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Errorf("duplicate profile %q", p.Name)
		}
		seen[p.Name] = true
	}
	for _, want := range []string{"astar", "lbm", "libquantum", "mcf", "zeusmp", "GemsFDTD"} {
		if !seen[want] {
			t.Errorf("missing profile %q", want)
		}
	}
}

func TestAllProfilesGenerate(t *testing.T) {
	for _, p := range Profiles() {
		w, err := Generate(p)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if len(w.Prog.Insts) == 0 {
			t.Fatalf("%s: empty program", p.Name)
		}
		if w.Entry != w.Prog.Base {
			t.Fatalf("%s: entry %#x != base %#x", p.Name, w.Entry, w.Prog.Base)
		}
	}
}

func TestByName(t *testing.T) {
	if p, ok := ByName("lbm"); !ok || p.Name != "lbm" {
		t.Fatal("ByName(lbm) failed")
	}
	if _, ok := ByName("nonexistent"); ok {
		t.Fatal("ByName must report unknown names")
	}
	if len(Names()) != 22 {
		t.Fatal("Names must list all profiles")
	}
}

func TestValidateRejectsBadProfiles(t *testing.T) {
	good := Profiles()[0]
	for _, mutate := range []func(*Profile){
		func(p *Profile) { p.Name = "" },
		func(p *Profile) { p.MemBlocks = 0 },
		func(p *Profile) { p.HotBytes = 48 * 1024 }, // not a power of two
		func(p *Profile) { p.ColdBytes = 0 },
		func(p *Profile) { p.ColdPattern = ColdSeq; p.ColdStride = 0 },
	} {
		p := good
		mutate(&p)
		if _, err := Generate(p); err == nil {
			t.Errorf("mutated profile %+v must fail validation", p)
		}
	}
}

// TestWorkloadsRunOnInterpreter executes each generated kernel briefly on
// the golden model: no faults, no runaway PCs, accumulator advances.
func TestWorkloadsRunOnInterpreter(t *testing.T) {
	for _, p := range Profiles() {
		w := MustGenerate(p)
		m := isa.NewFlatMem()
		w.Load(m)
		in := isa.NewInterp(m, w.Entry)
		if _, err := in.Run(20000); err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if in.Halted {
			t.Fatalf("%s: kernels are infinite loops, must not halt", p.Name)
		}
		if in.PC < w.Prog.Base || in.PC >= w.Prog.End() {
			t.Fatalf("%s: PC escaped to %#x", p.Name, in.PC)
		}
	}
}

// TestChaseRingIsCycle checks the seeded pointer ring is a single cycle.
func TestChaseRingIsCycle(t *testing.T) {
	w := MustGenerate(mustProfile(t, "mcf"))
	m := isa.NewFlatMem()
	w.Load(m)
	const step = 4096
	n := w.Profile.ColdBytes / step
	if n > 4096 {
		n = 4096
	}
	start := w.coldBase
	cur := start
	for i := 0; i < n; i++ {
		cur = m.Read(cur, 8)
		if cur == 0 {
			t.Fatalf("ring broken at hop %d", i)
		}
	}
	if cur != start {
		t.Fatalf("ring is not a single %d-cycle: ended at %#x", n, cur)
	}
}

func mustProfile(t *testing.T, name string) Profile {
	t.Helper()
	p, ok := ByName(name)
	if !ok {
		t.Fatalf("profile %s missing", name)
	}
	return p
}

func TestRatioEvery(t *testing.T) {
	cases := map[float64]int{0: 0, 1: 1, 0.5: 2, 0.25: 4, 0.33: 3, 2: 1}
	for frac, want := range cases {
		if got := ratioEvery(frac); got != want {
			t.Errorf("ratioEvery(%v) = %d, want %d", frac, got, want)
		}
	}
}

func TestICacheStressGenerates(t *testing.T) {
	p := ICacheStress()
	w := MustGenerate(p)
	// Code footprint must exceed a 64KB L1I.
	if size := len(w.Prog.Insts) * 8; size < 80*1024 {
		t.Fatalf("code footprint %d bytes, want > 80KB", size)
	}
	// All segments must be bound and the table seeded.
	m := isa.NewFlatMem()
	w.Load(m)
	for seg := 0; seg < p.CodeSegments; seg++ {
		addr := m.Read(0x3F_0000+uint64(seg)*8, 8)
		if addr < w.Prog.Base || addr >= w.Prog.End() {
			t.Fatalf("segment %d table entry %#x outside program", seg, addr)
		}
	}
	// Runs on the golden model without faults and visits several segments.
	in := isa.NewInterp(m, w.Entry)
	if _, err := in.Run(50_000); err != nil {
		t.Fatal(err)
	}
	if in.Halted {
		t.Fatal("kernel must not halt")
	}
}

func TestSegmentedKernelValidation(t *testing.T) {
	p := ICacheStress()
	p.CodeSegments = 3 // not a power of two
	if _, err := Generate(p); err == nil {
		t.Fatal("non-power-of-two CodeSegments must fail validation")
	}
}

func TestSegmentedMatchesUnsegmented(t *testing.T) {
	// A segmented kernel's per-iteration work is the same body; both forms
	// must run indefinitely with the accumulator advancing.
	p := ICacheStress()
	p.CodeSegments = 4
	p.SegmentPadding = 10
	w := MustGenerate(p)
	m := isa.NewFlatMem()
	w.Load(m)
	in := isa.NewInterp(m, w.Entry)
	if _, err := in.Run(30_000); err != nil {
		t.Fatal(err)
	}
	if in.PC < w.Prog.Base || in.PC >= w.Prog.End() {
		t.Fatalf("PC escaped: %#x", in.PC)
	}
}

// TestFenceAfterBranches: the SW-mitigated kernel contains fences, runs
// correctly, and is architecturally equivalent per-iteration to the plain
// kernel (same memory traffic intent, more serialization).
func TestFenceAfterBranches(t *testing.T) {
	p := mustProfile(t, "astar")
	p.FenceAfterBranches = true
	w := MustGenerate(p)
	fences := 0
	for _, in := range w.Prog.Insts {
		if in.Op == isa.OpFence {
			fences++
		}
	}
	if fences == 0 {
		t.Fatal("FenceAfterBranches must emit fences")
	}
	m := isa.NewFlatMem()
	w.Load(m)
	in := isa.NewInterp(m, w.Entry)
	if _, err := in.Run(20000); err != nil {
		t.Fatal(err)
	}
}

// TestProfilesHavePaperTargets ensures every profile carries its Table V
// reference value (used by EXPERIMENTS.md and the calibration test).
func TestProfilesHavePaperTargets(t *testing.T) {
	for _, p := range Profiles() {
		if p.PaperL1HitRate <= 0 || p.PaperL1HitRate > 1 {
			t.Errorf("%s: PaperL1HitRate %v out of range", p.Name, p.PaperL1HitRate)
		}
	}
}

// TestGeneratedKernelsAreDeterministic: generating the same profile twice
// yields identical programs (experiments must be reproducible).
func TestGeneratedKernelsAreDeterministic(t *testing.T) {
	for _, p := range Profiles()[:4] {
		a, b := MustGenerate(p), MustGenerate(p)
		if len(a.Prog.Insts) != len(b.Prog.Insts) {
			t.Fatalf("%s: nondeterministic length", p.Name)
		}
		for i := range a.Prog.Insts {
			if a.Prog.Insts[i] != b.Prog.Insts[i] {
				t.Fatalf("%s: instruction %d differs", p.Name, i)
			}
		}
	}
}

// TestLoadSeedsDeterministic: loading twice produces identical memory.
func TestLoadSeedsDeterministic(t *testing.T) {
	w := MustGenerate(mustProfile(t, "mcf"))
	m1, m2 := isa.NewFlatMem(), isa.NewFlatMem()
	w.Load(m1)
	w.Load(m2)
	for off := uint64(0); off < 1<<16; off += 4096 {
		if m1.Read(0x4000_0000+off, 8) != m2.Read(0x4000_0000+off, 8) {
			t.Fatal("nondeterministic seeding")
		}
	}
}
