// Package core implements the paper's primary contribution: the security
// dependence matrix integrated in the issue queue (§V.B), the suspect
// speculation flag, the hazard filters that decide whether a suspect memory
// access may execute speculatively — the Cache-hit filter (§V.C) and the
// Trusted Page Buffer with its S-Pattern detector (§V.D) — and the policy
// knobs that select between the paper's evaluated mechanisms (Origin,
// Baseline, Cache-hit Filter, Cache-hit + TPBuf Filter).
//
// The structures are written the way the RTL would be: an NxN bit matrix
// with row-OR hazard reduction and single-cycle column clears, and a CAM-like
// TPBuf whose safety equation is the paper's eq. (1),
//
//	safe = !( |(V & W & S & Match) )
//
// with Match the "accesses a different physical page" vector per Table II.
package core

import (
	"fmt"
	"math/bits"
)

const wordBits = 64

// BitMatrix is a dense NxN bit matrix supporting the row and column
// operations the security dependence matrix needs: per-row set at dispatch,
// row-OR reduction at select, and column clear at dependence clearance.
//
// Each row keeps a set-bit count (rowCnt) maintained by every mutation, so
// RowAny — the hazard reduction the select stage evaluates for every
// candidate every cycle — is a single counter test instead of an O(words)
// OR over the row.
//
// Columns keep a one-bit conservative summary (colAny): a column's bit is
// set whenever any row MAY reference it, and only ClearCol/ClearColumnBatch
// — which scan the column anyway — prove it empty and clear it. Set-side
// maintenance is therefore a word-wide OR (no per-bit loop on the dispatch
// path); clear-side operations (Clear, ClearRow) may leave the bit stale,
// costing the next ClearCol one redundant scan before it self-heals.
type BitMatrix struct {
	n      int
	words  int // words per row
	bits   []uint64
	rowCnt []int    // set bits per row (cached row-OR summary)
	colAny []uint64 // conservative per-column non-empty summary, 1 bit/col
}

// NewBitMatrix returns an n x n zero matrix.
func NewBitMatrix(n int) *BitMatrix {
	if n <= 0 {
		panic(fmt.Sprintf("core: bit matrix size %d", n))
	}
	w := (n + wordBits - 1) / wordBits
	return &BitMatrix{
		n: n, words: w,
		bits:   make([]uint64, n*w),
		rowCnt: make([]int, n),
		colAny: make([]uint64, w),
	}
}

// Size returns n.
func (m *BitMatrix) Size() int { return m.n }

// Words returns the number of 64-bit words in a row (and in the column
// masks consumed by the batched kernels below).
func (m *BitMatrix) Words() int { return m.words }

func (m *BitMatrix) check(i int) {
	if i < 0 || i >= m.n {
		panic(fmt.Sprintf("core: index %d out of range [0,%d)", i, m.n))
	}
}

// Set sets bit [i,j].
func (m *BitMatrix) Set(i, j int) {
	m.check(i)
	m.check(j)
	w := &m.bits[i*m.words+j/wordBits]
	bit := uint64(1) << (uint(j) % wordBits)
	if *w&bit == 0 {
		*w |= bit
		m.rowCnt[i]++
	}
	m.colAny[j/wordBits] |= bit
}

// Clear clears bit [i,j]. The column summary is left as is: other rows may
// still reference the column, and ClearCol self-heals a stale bit.
func (m *BitMatrix) Clear(i, j int) {
	m.check(i)
	m.check(j)
	w := &m.bits[i*m.words+j/wordBits]
	bit := uint64(1) << (uint(j) % wordBits)
	if *w&bit != 0 {
		*w &^= bit
		m.rowCnt[i]--
	}
}

// Get reports bit [i,j].
func (m *BitMatrix) Get(i, j int) bool {
	m.check(i)
	m.check(j)
	return m.bits[i*m.words+j/wordBits]&(1<<(uint(j)%wordBits)) != 0
}

// RowAny reports whether any bit in row i is set — the reduction-OR the
// paper uses to detect a potential security hazard for the issuing entry.
// O(1): it tests the maintained per-row set-bit count.
func (m *BitMatrix) RowAny(i int) bool {
	m.check(i)
	return m.rowCnt[i] != 0
}

// ClearRow zeroes row i (entry deallocated or squashed).
func (m *BitMatrix) ClearRow(i int) {
	m.check(i)
	if m.rowCnt[i] == 0 {
		return // already empty: skip the word walk
	}
	row := m.bits[i*m.words : (i+1)*m.words]
	for k := range row {
		row[k] = 0
	}
	m.rowCnt[i] = 0
}

// ClearCol zeroes column j across all rows — the dependence clearance that
// happens one cycle after entry j issues.
func (m *BitMatrix) ClearCol(j int) {
	m.check(j)
	w, b := j/wordBits, uint(j)%wordBits
	bit := uint64(1) << b
	if m.colAny[w]&bit == 0 {
		return // no row can reference this column: skip the strided walk
	}
	for i := 0; i < m.n; i++ {
		if m.rowCnt[i] == 0 {
			continue // empty row: skip the strided column read
		}
		if m.bits[i*m.words+w]&bit != 0 {
			m.bits[i*m.words+w] &^= bit
			m.rowCnt[i]--
		}
	}
	m.colAny[w] &^= bit
}

func (m *BitMatrix) checkMask(mask []uint64) {
	if len(mask) != m.words {
		panic(fmt.Sprintf("core: mask has %d words, matrix rows have %d", len(mask), m.words))
	}
}

// MergeRowMasked ORs a whole column mask into row i in one word-wide pass
// and returns the number of newly set bits — the batched form of the
// per-entry Set loop the dispatch stage used to run. Mask bits at positions
// >= Size() are ignored.
func (m *BitMatrix) MergeRowMasked(i int, mask []uint64) int {
	m.check(i)
	m.checkMask(mask)
	row := m.bits[i*m.words : (i+1)*m.words]
	added := 0
	for k, w := range mask {
		if k == m.words-1 {
			w &= m.tailMask()
		}
		nw := w &^ row[k]
		if nw != 0 {
			row[k] |= nw
			m.colAny[k] |= nw
			added += bits.OnesCount64(nw)
		}
	}
	m.rowCnt[i] += added
	return added
}

// ClearColumnBatch clears every column whose bit is set in mask, across all
// rows, using one ANDN+popcount pass per non-empty row. It is equivalent to
// calling ClearCol once per set mask bit.
func (m *BitMatrix) ClearColumnBatch(mask []uint64) {
	m.checkMask(mask)
	for i := 0; i < m.n; i++ {
		if m.rowCnt[i] == 0 {
			continue
		}
		row := m.bits[i*m.words : (i+1)*m.words]
		cleared := 0
		for k, w := range mask {
			hit := row[k] & w
			if hit != 0 {
				row[k] &^= hit
				cleared += bits.OnesCount64(hit)
			}
		}
		m.rowCnt[i] -= cleared
	}
	// Every masked column is now provably empty.
	for k, w := range mask {
		m.colAny[k] &^= w
	}
}

// RowAndNotAny reports whether row i has any bit set OUTSIDE mask — the
// word-wide AND-NOT reduction audits use to ask "does this row reference a
// column it should not?".
func (m *BitMatrix) RowAndNotAny(i int, mask []uint64) bool {
	m.check(i)
	m.checkMask(mask)
	if m.rowCnt[i] == 0 {
		return false
	}
	row := m.bits[i*m.words : (i+1)*m.words]
	for k, w := range row {
		if w&^mask[k] != 0 {
			return true
		}
	}
	return false
}

// tailMask returns the valid-bit mask for the final word of a row.
func (m *BitMatrix) tailMask() uint64 {
	if r := uint(m.n) % wordBits; r != 0 {
		return (uint64(1) << r) - 1
	}
	return ^uint64(0)
}

// PopCount returns the number of set bits (diagnostics and area modelling).
func (m *BitMatrix) PopCount() int {
	n := 0
	for _, c := range m.rowCnt {
		n += c
	}
	return n
}

// Reset zeroes the whole matrix.
func (m *BitMatrix) Reset() {
	for i := range m.bits {
		m.bits[i] = 0
	}
	for i := range m.rowCnt {
		m.rowCnt[i] = 0
	}
	for i := range m.colAny {
		m.colAny[i] = 0
	}
}
