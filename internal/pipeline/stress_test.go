package pipeline

import (
	"math/rand"
	"testing"

	"conspec/internal/asm"
	"conspec/internal/branch"
	"conspec/internal/config"
	"conspec/internal/core"
	"conspec/internal/isa"
	"conspec/internal/mem"
)

// tinyCore shrinks every structure to its minimum useful size so structural
// stalls (full ROB/IQ/LSQ, no free registers) happen constantly.
func tinyCore() config.Core {
	c := config.PaperCore()
	c.FetchWidth, c.IssueWidth, c.CommitWidth = 2, 2, 2
	c.FrontendDepth = 2
	c.ROB, c.IQ, c.LDQ, c.STQ = 8, 4, 2, 2
	c.PhysRegs = isa.NumRegs + c.ROB
	c.ALUs, c.MulUnits, c.DivUnits, c.MemPorts, c.BranchUnits = 1, 1, 1, 1, 1
	c.Predictor = branch.Config{PHTBits: 6, GHRBits: 6, BTBEntries: 16, RASEntries: 2}
	c.Mem.L1ISize, c.Mem.L1DSize = 1024, 1024
	c.Mem.L1IWays, c.Mem.L1DWays = 2, 2
	c.Mem.L2Size, c.Mem.L2Ways = 4096, 2
	c.Mem.L3Size, c.Mem.L3Ways = 16384, 2
	c.Mem.ITLBEntries, c.Mem.DTLBEntries = 2, 2
	return c
}

// TestTinyCoreDifferential: the most stall-prone machine possible must still
// produce architecturally identical results to the golden model under every
// mechanism.
func TestTinyCoreDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 15; trial++ {
		prog := randomProgram(rng)

		ref := isa.NewFlatMem()
		prog.Load(ref)
		interp := isa.NewInterp(ref, prog.Base)
		if _, err := interp.Run(5_000_000); err != nil || !interp.Halted {
			t.Fatalf("interpreter trial %d: err=%v halted=%v", trial, err, interp.Halted)
		}

		for _, m := range core.Mechanisms {
			backing := isa.NewFlatMem()
			prog.Load(backing)
			cpu := NewWithMemory(tinyCore(), SecurityConfig{Mechanism: m}, backing)
			cpu.SetPC(prog.Base)
			cpu.Run(10_000_000)
			if !cpu.Halted() {
				t.Fatalf("trial %d %v: tiny core did not halt (deadlock?)", trial, m)
			}
			for r := 1; r < isa.NumRegs; r++ {
				if got, want := cpu.ArchReg(r), interp.Regs[r]; got != want {
					t.Fatalf("trial %d %v: x%d = %#x, want %#x", trial, m, r, got, want)
				}
			}
		}
	}
}

// TestBaselineConvoyNoDeadlock builds the nastiest Baseline case: a dense
// chain of dependent memory operations where every access is suspect and
// blocked behind the previous one. Forward progress is the assertion.
func TestBaselineConvoyNoDeadlock(t *testing.T) {
	b := asm.New()
	b.Li(asm.A0, 0x100000)
	b.Li(asm.S0, 0)
	b.Li(asm.S1, 100)
	b.Bind("loop")
	// Chain: each address depends on the previous load's value.
	cur := asm.Reg(asm.T0)
	b.Add(cur, asm.A0, asm.Zero)
	for i := 0; i < 6; i++ {
		b.Andi(asm.T1, cur, 0xFF8)
		b.Add(asm.T1, asm.A0, asm.T1)
		b.Ld(cur, asm.T1, 0)
		b.St(cur, asm.T1, 8)
	}
	b.Addi(asm.S0, asm.S0, 1)
	b.Blt(asm.S0, asm.S1, "loop")
	b.Halt()
	prog := b.MustAssemble(testBase)

	for _, m := range core.Mechanisms {
		backing := isa.NewFlatMem()
		prog.Load(backing)
		cpu := NewWithMemory(tinyCore(), SecurityConfig{Mechanism: m}, backing)
		cpu.SetPC(prog.Base)
		cpu.Run(5_000_000)
		if !cpu.Halted() {
			t.Fatalf("%v: convoy deadlocked", m)
		}
	}
}

func TestFenceSerializes(t *testing.T) {
	// Two independent loads separated by a fence cannot overlap: total time
	// must be at least 2x the single-miss latency. Without the fence they
	// overlap and finish in ~1x.
	build := func(withFence bool) *asm.Program {
		b := asm.New()
		b.Li(asm.A0, 0x200000)
		b.Li(asm.A1, 0x300000)
		b.Ld(asm.T0, asm.A0, 0)
		if withFence {
			b.Fence()
		}
		b.Ld(asm.T1, asm.A1, 0)
		b.Halt()
		return b.MustAssemble(testBase)
	}
	run := func(p *asm.Program) uint64 {
		backing := isa.NewFlatMem()
		p.Load(backing)
		cpu := NewWithMemory(smallCore(), SecurityConfig{Mechanism: core.Origin}, backing)
		cpu.SetPC(p.Base)
		res := cpu.Run(100000)
		if !cpu.Halted() {
			t.Fatal("no halt")
		}
		return res.Cycles
	}
	noFence, fence := run(build(false)), run(build(true))
	memLat := uint64(smallCore().Mem.MemLat)
	if fence < noFence+memLat/2 {
		t.Fatalf("fence run (%d cycles) should be ~a memory latency slower than overlap (%d)",
			fence, noFence)
	}
}

func TestDeepCallStackRASOverflow(t *testing.T) {
	// Recursion deeper than the RAS: returns mispredict but must stay
	// architecturally correct.
	b := asm.New()
	b.Li(asm.A0, 12) // depth > RAS entries (tiny core: 2)
	b.Li(asm.A1, 0x400000)
	b.Add(asm.A2, asm.A1, asm.Zero) // stack pointer
	b.Jal(asm.RA, "rec")
	b.Halt()
	b.Bind("rec")
	b.St(asm.RA, asm.A2, 0) // push return address
	b.Addi(asm.A2, asm.A2, 8)
	b.Addi(asm.S0, asm.S0, 1) // count calls
	b.Addi(asm.A0, asm.A0, -1)
	b.Beq(asm.A0, asm.Zero, "base")
	b.Jal(asm.RA, "rec")
	b.Bind("base")
	b.Addi(asm.A2, asm.A2, -8)
	b.Ld(asm.RA, asm.A2, 0) // pop
	b.Ret()
	prog := b.MustAssemble(testBase)

	backing := isa.NewFlatMem()
	prog.Load(backing)
	cpu := NewWithMemory(tinyCore(), SecurityConfig{Mechanism: core.CacheHitTPBuf}, backing)
	cpu.SetPC(prog.Base)
	cpu.Run(5_000_000)
	if !cpu.Halted() {
		t.Fatal("recursion did not complete")
	}
	if got := cpu.ArchReg(int(asm.S0)); got != 12 {
		t.Fatalf("made %d calls, want 12", got)
	}
}

func TestDivergentWrongPathStores(t *testing.T) {
	// Wrong-path stores must never reach memory: a mispredicted branch
	// guards a store to a sentinel location.
	b := asm.New()
	b.Li(asm.A0, 0x500000) // sentinel
	b.Li(asm.A1, 0x600000) // slow condition word (cold)
	b.Li(asm.T1, 0xDEAD)
	b.Ld(asm.T0, asm.A1, 0)         // slow load, value 0
	b.Bne(asm.T0, asm.Zero, "skip") // actually NOT taken...
	b.Jmp("done")                   // correct path jumps over the store
	b.Bind("skip")
	b.St(asm.T1, asm.A0, 0) // must never commit
	b.Bind("done")
	b.Halt()
	prog := b.MustAssemble(testBase)
	for _, m := range core.Mechanisms {
		backing := isa.NewFlatMem()
		prog.Load(backing)
		cpu := NewWithMemory(smallCore(), SecurityConfig{Mechanism: m}, backing)
		// Train the branch TAKEN so the wrong path (with the store) runs.
		bp := cpu.Predictor()
		for i := 0; i < 8; i++ {
			bp.ResolveCond(prog.Base+4*isa.InstBytes, true, false, 0)
		}
		cpu.SetPC(prog.Base)
		cpu.Run(100000)
		if !cpu.Halted() {
			t.Fatalf("%v: no halt", m)
		}
		if got := backing.Read(0x500000, 8); got != 0 {
			t.Fatalf("%v: wrong-path store leaked to memory: %#x", m, got)
		}
	}
}

func TestL1DUpdatePolicyPlumbing(t *testing.T) {
	// The pipeline must honor the configured LRU policy end to end: under
	// delayed-update, a committed suspect hit applies its touch at commit.
	cfg := smallCore()
	cfg.Mem.L1DUpdate = mem.UpdateDelayed
	prog, probeAddr := suspectScenario()
	backing := isa.NewFlatMem()
	prog.Load(backing)
	cpu := New(cfg, SecurityConfig{Mechanism: core.CacheHitTPBuf},
		mem.NewHierarchy(cfg.Mem, backing))
	cpu.Hierarchy().AccessData(probeAddr, false) // pre-warm: suspect load hits
	cpu.SetPC(prog.Base)
	res := cpu.Run(100000)
	if !cpu.Halted() {
		t.Fatal("no halt")
	}
	if res.Filter.SuspectL1Hits == 0 {
		t.Fatal("expected a suspect hit under delayed-update policy")
	}
}

// TestManyMechanismsLongRun is a smoke/endurance test: a workload-sized
// program runs a few hundred thousand cycles per mechanism without
// violating internal invariants (exercised implicitly: no panics, halting,
// identical commit counts).
func TestManyMechanismsLongRun(t *testing.T) {
	if testing.Short() {
		t.Skip("long run")
	}
	b := asm.New()
	b.Li64(asm.A0, 0x1000000)
	b.Li64(asm.A4, 6364136223846793005)
	b.Li64(asm.S2, 0x9E3779B97F4A7C15)
	b.Li(asm.S0, 0)
	b.Li(asm.S1, 4000)
	b.Bind("loop")
	b.Mul(asm.S2, asm.S2, asm.A4)
	b.Addi(asm.S2, asm.S2, 12345)
	b.Shri(asm.T0, asm.S2, 20)
	b.Andi(asm.T0, asm.T0, 0x7FF8)
	b.Add(asm.T0, asm.A0, asm.T0)
	b.Ld(asm.T1, asm.T0, 0)
	b.St(asm.T1, asm.T0, 8)
	b.Shri(asm.T2, asm.S2, 40)
	b.Andi(asm.T2, asm.T2, 1)
	b.Beq(asm.T2, asm.Zero, "even")
	b.Addi(asm.S3, asm.S3, 1)
	b.Bind("even")
	b.Addi(asm.S0, asm.S0, 1)
	b.Blt(asm.S0, asm.S1, "loop")
	b.Halt()
	prog := b.MustAssemble(testBase)

	var committed []uint64
	for _, m := range core.Mechanisms {
		backing := isa.NewFlatMem()
		prog.Load(backing)
		cpu := NewWithMemory(smallCore(), SecurityConfig{Mechanism: m}, backing)
		cpu.SetPC(prog.Base)
		res := cpu.Run(10_000_000)
		if !cpu.Halted() {
			t.Fatalf("%v: did not halt", m)
		}
		committed = append(committed, res.Committed)
	}
	for i := 1; i < len(committed); i++ {
		if committed[i] != committed[0] {
			t.Fatalf("mechanisms disagree on committed count: %v", committed)
		}
	}
}

// TestMSHRCapThrottlesMLP: with one MSHR, independent cold loads serialize;
// unlimited MSHRs overlap them. Architectural results stay identical.
func TestMSHRCapThrottlesMLP(t *testing.T) {
	b := asm.New()
	b.Li(asm.A0, 0x200000)
	for i := 0; i < 8; i++ {
		b.Ld(asm.Reg(5+i), asm.A0, int32(i*isa.PageSize)) // independent cold misses
	}
	b.Halt()
	prog := b.MustAssemble(testBase)
	run := func(mshrs int) uint64 {
		cfg := smallCore()
		cfg.MaxMSHRs = mshrs
		backing := isa.NewFlatMem()
		prog.Load(backing)
		cpu := NewWithMemory(cfg, SecurityConfig{Mechanism: core.Origin}, backing)
		cpu.SetPC(prog.Base)
		res := cpu.Run(1_000_000)
		if !cpu.Halted() {
			t.Fatal("no halt")
		}
		return res.Cycles
	}
	unlimited, one := run(0), run(1)
	if one < 4*unlimited/2 {
		t.Fatalf("1 MSHR (%d cycles) should be far slower than unlimited (%d)", one, unlimited)
	}
}

// TestInvariantsUnderRandomPrograms drives random programs and validates the
// machine's internal bookkeeping mid-run and at completion.
func TestInvariantsUnderRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 10; trial++ {
		prog := randomProgram(rng)
		for _, m := range core.Mechanisms {
			backing := isa.NewFlatMem()
			prog.Load(backing)
			cfg := tinyCore()
			cfg.MaxMSHRs = 2
			cpu := NewWithMemory(cfg, SecurityConfig{Mechanism: m}, backing)
			cpu.SetPC(prog.Base)
			for !cpu.Halted() {
				res := cpu.RunFor(200, 500_000)
				if err := cpu.CheckInvariants(); err != nil {
					t.Fatalf("trial %d %v mid-run: %v", trial, m, err)
				}
				if res.Cycles > 2_000_000 {
					t.Fatalf("trial %d %v: runaway", trial, m)
				}
			}
			if err := cpu.CheckInvariants(); err != nil {
				t.Fatalf("trial %d %v final: %v", trial, m, err)
			}
		}
	}
}

// TestInvariantsAfterAttack checks bookkeeping after the most squash-heavy
// execution in the repo: a full Spectre run.
func TestInvariantsAfterWorkload(t *testing.T) {
	b := asm.New()
	b.Li(asm.A0, 0x90000)
	b.Li(asm.S0, 0)
	b.Li(asm.S1, 300)
	b.Bind("loop")
	b.Ld(asm.T0, asm.A0, 0)
	b.Bne(asm.T0, asm.Zero, "never")
	b.Ld(asm.T1, asm.A0, 4096)
	b.St(asm.T1, asm.A0, 8192)
	b.Addi(asm.S0, asm.S0, 1)
	b.Blt(asm.S0, asm.S1, "loop")
	b.Bind("never")
	b.Halt()
	prog := b.MustAssemble(testBase)
	for _, m := range core.Mechanisms {
		backing := isa.NewFlatMem()
		prog.Load(backing)
		cpu := NewWithMemory(smallCore(), SecurityConfig{Mechanism: m}, backing)
		cpu.SetPC(prog.Base)
		cpu.Run(2_000_000)
		if !cpu.Halted() {
			t.Fatalf("%v: no halt", m)
		}
		if err := cpu.CheckInvariants(); err != nil {
			t.Fatalf("%v: %v", m, err)
		}
	}
}

// TestSSBDCostsPerformance: disabling store bypass serializes loads behind
// slow-address stores.
func TestSSBDCostsPerformance(t *testing.T) {
	prog := violationProgram(60)
	run := func(ssbd bool) uint64 {
		backing := isa.NewFlatMem()
		prog.Load(backing)
		cpu := NewWithMemory(smallCore(),
			SecurityConfig{Mechanism: core.Origin, SSBD: ssbd}, backing)
		cpu.SetPC(prog.Base)
		res := cpu.Run(3_000_000)
		if !cpu.Halted() {
			t.Fatal("no halt")
		}
		if ssbd && res.MemViolations != 0 {
			t.Fatalf("SSBD must eliminate memory-order violations, got %d", res.MemViolations)
		}
		return res.Cycles
	}
	baseline := run(false)
	_ = baseline
	run(true) // correctness assertions inside; cost varies with the kernel
}

// TestSelfCheckStressAllMechanisms runs the random-program corpus under
// every mechanism — plus SSBD — with a self-check sweep every cycle: the
// security-structure audits (secmatrix residency, TPBuf shadowing, the
// eq. (1) recheck) must stay silent on a healthy machine no matter how the
// queues churn.
func TestSelfCheckStressAllMechanisms(t *testing.T) {
	configs := []struct {
		name string
		sec  SecurityConfig
	}{
		{"origin", SecurityConfig{Mechanism: core.Origin}},
		{"baseline", SecurityConfig{Mechanism: core.Baseline}},
		{"cachehit", SecurityConfig{Mechanism: core.CacheHit}},
		{"cachehit-tpbuf", SecurityConfig{Mechanism: core.CacheHitTPBuf}},
		{"ssbd", SecurityConfig{Mechanism: core.Origin, SSBD: true}},
	}
	trials := 6
	if testing.Short() {
		trials = 2
	}
	rng := rand.New(rand.NewSource(777))
	for trial := 0; trial < trials; trial++ {
		prog := randomProgram(rng)
		for _, tc := range configs {
			backing := isa.NewFlatMem()
			prog.Load(backing)
			cfg := tinyCore()
			cfg.MaxMSHRs = 2
			cpu := NewWithMemory(cfg, tc.sec, backing)
			cpu.SetSelfCheck(1)
			cpu.SetPC(prog.Base)
			for !cpu.Halted() {
				res := cpu.RunFor(200, 500_000)
				if err := cpu.Err(); err != nil {
					t.Fatalf("trial %d %s: %v\n%s", trial, tc.name, err, res.Diag)
				}
				if res.Cycles > 2_000_000 {
					t.Fatalf("trial %d %s: runaway", trial, tc.name)
				}
			}
			res := cpu.Result()
			if res.Outcome != OutcomeHalted {
				t.Fatalf("trial %d %s: outcome %v", trial, tc.name, res.Outcome)
			}
			if res.Hardening.SelfCheckViolations != 0 {
				t.Fatalf("trial %d %s: %d violations", trial, tc.name, res.Hardening.SelfCheckViolations)
			}
		}
	}
}

// TestFusedStoresAblation: under the gem5-style fused-store model, a store
// whose data chains on a cold load stays unissued in the IQ, so Baseline
// blocks younger memory accesses far longer than with split stores.
// Architectural results stay identical.
func TestFusedStoresAblation(t *testing.T) {
	b := asm.New()
	b.Li(asm.A0, 0x200000)
	b.Li(asm.A1, 0x300000)
	b.Li(asm.S0, 0)
	b.Li(asm.S1, 60)
	b.Bind("loop")
	b.Andi(asm.T0, asm.S0, 63)
	b.Shli(asm.T0, asm.T0, 12)
	b.Add(asm.T0, asm.A1, asm.T0)
	b.Ld(asm.T1, asm.T0, 0)  // cold load
	b.St(asm.T1, asm.A0, 0)  // store DATA chains on the cold load
	b.Ld(asm.T2, asm.A0, 64) // younger load: suspect behind the store
	b.Add(asm.S2, asm.S2, asm.T2)
	b.Addi(asm.S0, asm.S0, 1)
	b.Blt(asm.S0, asm.S1, "loop")
	b.Halt()
	prog := b.MustAssemble(testBase)

	run := func(fused bool) uint64 {
		cfg := smallCore()
		cfg.FusedStores = fused
		backing := isa.NewFlatMem()
		prog.Load(backing)
		cpu := NewWithMemory(cfg, SecurityConfig{Mechanism: core.Baseline}, backing)
		cpu.SetPC(prog.Base)
		res := cpu.Run(5_000_000)
		if !cpu.Halted() {
			t.Fatal("no halt")
		}
		if got := cpu.ArchReg(int(asm.S2)); got != 0 {
			t.Fatalf("fused=%v: checksum %d, want 0 (cold memory reads zero)", fused, got)
		}
		return res.Cycles
	}
	split, fused := run(false), run(true)
	if fused < split+split/10 {
		t.Fatalf("fused stores under Baseline should cost markedly more: split=%d fused=%d",
			split, fused)
	}
}
