package serve

import (
	"io"
	"sync"

	"conspec/internal/exp"
	"conspec/internal/obs"
)

// serverMetrics aggregates server-level counters into an obs.Registry and
// renders them on demand. The obs registry's counters are plain (non-atomic)
// uint64 columns — the registry contract makes synchronization the caller's
// job — so every write and the exposition read happen under mu.
type serverMetrics struct {
	mu  sync.Mutex
	reg *obs.Registry

	submittedC *obs.Counter
	rejectedC  *obs.Counter
	doneC      *obs.Counter
	failedC    *obs.Counter
	canceledC  *obs.Counter

	executedC *obs.Counter
	memHitsC  *obs.Counter
	diskHitsC *obs.Counter

	queuedG  *obs.Gauge
	runningG *obs.Gauge
}

func newServerMetrics() *serverMetrics {
	reg := obs.NewRegistry()
	return &serverMetrics{
		reg:        reg,
		submittedC: reg.Counter("jobs_submitted_total"),
		rejectedC:  reg.Counter("jobs_rejected_total"),
		doneC:      reg.Counter("jobs_done_total"),
		failedC:    reg.Counter("jobs_failed_total"),
		canceledC:  reg.Counter("jobs_canceled_total"),
		executedC:  reg.Counter("runs_executed_total"),
		memHitsC:   reg.Counter("cache_hits_memory_total"),
		diskHitsC:  reg.Counter("cache_hits_disk_total"),
		queuedG:    reg.Gauge("jobs_queued"),
		runningG:   reg.Gauge("jobs_running"),
	}
}

func (m *serverMetrics) submitted() {
	m.mu.Lock()
	m.submittedC.Add(1)
	m.mu.Unlock()
}

func (m *serverMetrics) rejected() {
	m.mu.Lock()
	m.rejectedC.Add(1)
	m.mu.Unlock()
}

// jobFinished records a terminal job plus its engine-level run accounting.
func (m *serverMetrics) jobFinished(status Status, st exp.Stats) {
	m.mu.Lock()
	defer m.mu.Unlock()
	switch status {
	case StatusDone:
		m.doneC.Add(1)
	case StatusFailed:
		m.failedC.Add(1)
	case StatusCanceled:
		m.canceledC.Add(1)
	}
	m.executedC.Add(st.Executed)
	m.memHitsC.Add(st.Hits)
	m.diskHitsC.Add(st.DiskHits)
}

func (m *serverMetrics) setQueue(queued, running int) {
	m.mu.Lock()
	m.queuedG.Set(uint64(queued))
	m.runningG.Set(uint64(running))
	m.mu.Unlock()
}

func (m *serverMetrics) write(w io.Writer) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return obs.WritePrometheus(w, "conspec_served_", m.reg)
}
