package pipeline

import "fmt"

// CheckInvariants validates the machine's internal bookkeeping and returns
// the first violation found (nil if consistent). Tests call it between and
// after runs; it is not called on the hot path.
//
// Invariants checked:
//
//   - register accounting: the free list, the rename map and in-flight
//     destinations partition the physical register file (no leaks, no
//     double allocation);
//   - the rename map holds distinct, in-range registers, with x0 pinned
//     to physical register 0;
//   - every issue-queue / LDQ / STQ slot points at a uop that agrees about
//     its own position;
//   - the MSHR counter equals the number of in-flight loads holding one.
func (c *CPU) CheckInvariants() error {
	// Rename map: in range, x0 pinned, no duplicates.
	seen := make(map[int]int)
	for r, p := range c.renameMap {
		if p < 0 || p >= len(c.physVal) {
			return fmt.Errorf("renameMap[x%d] = %d out of range", r, p)
		}
		if prev, dup := seen[p]; dup {
			return fmt.Errorf("renameMap: x%d and x%d both map to p%d", prev, r, p)
		}
		seen[p] = r
	}
	if c.renameMap[0] != 0 {
		return fmt.Errorf("x0 must stay mapped to p0, got p%d", c.renameMap[0])
	}

	// Register accounting: mapped + free + (pdst or oldPdst of live ROB
	// entries, whichever is not the mapped one) must cover the file exactly.
	used := make(map[int]string)
	for r, p := range c.renameMap {
		used[p] = fmt.Sprintf("renameMap[x%d]", r)
	}
	for i, p := range c.freeList {
		if p < 0 || p >= len(c.physVal) {
			return fmt.Errorf("freeList[%d] = %d out of range", i, p)
		}
		if who, dup := used[p]; dup {
			return fmt.Errorf("p%d on the free list but also %s", p, who)
		}
		used[p] = "freeList"
	}
	for i := 0; i < c.robCount; i++ {
		u := c.robAt(i)
		if u.pdst >= 0 {
			// A live entry owns its oldPdst (it will be freed at commit);
			// its pdst is the current mapping (already counted) unless a
			// younger entry re-renamed the register, in which case the
			// pdst is owned here.
			for _, p := range []int{u.pdst, u.oldPdst} {
				if _, counted := used[p]; !counted {
					used[p] = fmt.Sprintf("ROB seq %d", u.seq)
				}
			}
		}
	}
	for p := 0; p < len(c.physVal); p++ {
		if _, counted := used[p]; !counted {
			return fmt.Errorf("physical register p%d leaked (not mapped, free, or ROB-owned)", p)
		}
	}

	// Structure back-pointers.
	for i, u := range c.iq {
		if u != nil && u.iqIdx != i {
			return fmt.Errorf("iq[%d] holds uop with iqIdx=%d", i, u.iqIdx)
		}
	}
	for i, u := range c.ldq {
		if u != nil && u.ldqIdx != i {
			return fmt.Errorf("ldq[%d] holds uop with ldqIdx=%d", i, u.ldqIdx)
		}
	}
	for i, u := range c.stq {
		if u != nil && u.stqIdx != i {
			return fmt.Errorf("stq[%d] holds uop with stqIdx=%d", i, u.stqIdx)
		}
	}

	// MSHR accounting.
	holding := 0
	for _, pe := range c.inflight {
		if pe.u.holdsMSHR {
			holding++
		}
	}
	if c.cfg.MaxMSHRs > 0 && holding != c.outstandingMisses {
		return fmt.Errorf("MSHR count %d but %d in-flight holders", c.outstandingMisses, holding)
	}
	if c.outstandingMisses < 0 {
		return fmt.Errorf("negative outstanding misses: %d", c.outstandingMisses)
	}

	// Issue-queue occupancy counter.
	occ := 0
	for _, u := range c.iq {
		if u != nil {
			occ++
		}
	}
	if occ != c.iqCount {
		return fmt.Errorf("iqCount=%d but %d occupied slots", c.iqCount, occ)
	}

	// Ready list: sorted by seq, marked, and exactly the issue-queue
	// entries whose issue operands are ready (waitCnt == 0).
	for i, u := range c.readyList {
		if i > 0 && c.readyList[i-1].seq >= u.seq {
			return fmt.Errorf("readyList not seq-sorted at %d", i)
		}
		if !u.inReady {
			return fmt.Errorf("readyList[%d] (seq %d) not marked inReady", i, u.seq)
		}
		if u.iqIdx < 0 || c.iq[u.iqIdx] != u {
			return fmt.Errorf("readyList[%d] (seq %d) not a live IQ entry", i, u.seq)
		}
		if u.waitCnt != 0 {
			return fmt.Errorf("readyList[%d] (seq %d) has waitCnt=%d", i, u.seq, u.waitCnt)
		}
	}
	for _, u := range c.iq {
		if u == nil {
			continue
		}
		ready := c.srcReady(u.psrc1) &&
			((!c.cfg.FusedStores && u.inst.Op.IsStore()) || c.srcReady(u.psrc2))
		if ready && !u.inReady && !u.parked {
			return fmt.Errorf("IQ seq %d is data-ready but not on the ready list", u.seq)
		}
		if !ready && u.inReady {
			return fmt.Errorf("IQ seq %d is on the ready list but not data-ready", u.seq)
		}
		if u.waitCnt < 0 || u.waitCnt > 2 {
			return fmt.Errorf("IQ seq %d has waitCnt=%d", u.seq, u.waitCnt)
		}
	}

	// SSBD watermark: oldest unresolved STQ address, or 0.
	want := uint64(0)
	for _, st := range c.stq {
		if st != nil && !st.addrReady && (want == 0 || st.seq < want) {
			want = st.seq
		}
	}
	if c.unresolvedStoreSeq != want {
		return fmt.Errorf("unresolvedStoreSeq=%d, expected %d", c.unresolvedStoreSeq, want)
	}

	// Fence-defense watermark: oldest unresolved branch in the ROB, or 0.
	wantSer := uint64(0)
	if c.def.SerializeBranches {
		for i := 0; i < c.robCount; i++ {
			u := c.robAt(i)
			if u.isBranch && !u.completed {
				wantSer = u.seq
				break
			}
		}
	}
	if c.serializeSeq != wantSer {
		return fmt.Errorf("serializeSeq=%d, expected %d", c.serializeSeq, wantSer)
	}

	// Parked delay-on-miss loads: the parked list holds exactly the live IQ
	// entries flagged parked, each off the ready list and not yet issued.
	parkedFlagged := 0
	for _, u := range c.iq {
		if u != nil && u.parked {
			parkedFlagged++
		}
	}
	if len(c.parked) != parkedFlagged {
		return fmt.Errorf("parked list has %d entries but %d IQ entries are flagged parked",
			len(c.parked), parkedFlagged)
	}
	for i, u := range c.parked {
		if !u.parked {
			return fmt.Errorf("parked[%d] (seq %d) not flagged parked", i, u.seq)
		}
		if u.iqIdx < 0 || c.iq[u.iqIdx] != u {
			return fmt.Errorf("parked[%d] (seq %d) not a live IQ entry", i, u.seq)
		}
		if u.inReady {
			return fmt.Errorf("parked[%d] (seq %d) still on the ready list", i, u.seq)
		}
		if u.issued {
			return fmt.Errorf("parked[%d] (seq %d) marked issued", i, u.seq)
		}
	}

	// Fetch ring bounds.
	if c.fqLen < 0 || c.fqLen > c.fetchQCap || c.fqHead < 0 || c.fqHead >= c.fetchQCap {
		return fmt.Errorf("fetch ring out of bounds: head=%d len=%d cap=%d", c.fqHead, c.fqLen, c.fetchQCap)
	}

	// Free-slot bitmaps: bit set iff the slot is nil.
	for name, pair := range map[string]struct {
		q    []*uop
		free []uint64
	}{"iq": {c.iq, c.iqFree}, "ldq": {c.ldq, c.ldqFree}, "stq": {c.stq, c.stqFree}} {
		for i, u := range pair.q {
			if maskHas(pair.free, i) != (u == nil) {
				return fmt.Errorf("%sFree bit %d disagrees with slot occupancy", name, i)
			}
		}
	}

	// Unresolved-branch counter vs the ROB scan it replaced.
	unresolved := 0
	for i := 0; i < c.robCount; i++ {
		u := c.robAt(i)
		if u.isBranch && !u.completed {
			unresolved++
		}
	}
	if c.unresolvedBranches != unresolved {
		return fmt.Errorf("unresolvedBranches=%d but ROB holds %d uncompleted branches",
			c.unresolvedBranches, unresolved)
	}

	// Security producer mask: bit j iff iq[j] is an unissued producer-class
	// entry; and no matrix row may reference a column outside the producer
	// mask except columns with a clear still pending in the update vector
	// (word-wide RowAndNotAny audit).
	if c.secmat != nil {
		for j, u := range c.iq {
			want := u != nil && !u.issued && c.secmat.IsProducer(u.class())
			if maskHas(c.prodMask, j) != want {
				return fmt.Errorf("prodMask bit %d disagrees with iq[%d]", j, j)
			}
		}
		allowed := make([]uint64, len(c.prodMask))
		copy(allowed, c.prodMask)
		for j := range c.iq {
			if c.secmat.UpdatePending(j) {
				maskSet(allowed, j)
			}
		}
		for x := range c.iq {
			if c.secmat.RowOutside(x, allowed) {
				return fmt.Errorf("secmatrix row %d references a column outside producers+pending", x)
			}
		}
	}

	// Security structures (secmatrix, TPBuf) against the queues they shadow.
	return c.auditSecurity()
}
