package asm_test

import (
	"fmt"

	"conspec/internal/asm"
	"conspec/internal/isa"
)

// Build, assemble and run a loop on the reference interpreter.
func ExampleBuilder() {
	b := asm.New()
	b.Li(asm.S0, 0)
	b.Li(asm.S1, 1)
	b.Li(asm.S2, 5)
	b.Bind("loop")
	b.Add(asm.S0, asm.S0, asm.S1)
	b.Addi(asm.S1, asm.S1, 1)
	b.Bge(asm.S2, asm.S1, "loop")
	b.Halt()

	prog := b.MustAssemble(0x1000)
	mem := isa.NewFlatMem()
	prog.Load(mem)
	cpu := isa.NewInterp(mem, prog.Base)
	cpu.Run(1000)
	fmt.Println("sum:", cpu.Regs[asm.S0])
	// Output: sum: 15
}

// The text front end accepts the disassembler's syntax plus directives.
func ExampleParseText() {
	b, _ := asm.ParseText(`
		.data 0x2000
		.word 42
		li  a0, 0x2000
		ld  a1, 0(a0)
		halt
	`)
	prog := b.MustAssemble(0x100)
	mem := isa.NewFlatMem()
	prog.Load(mem)
	cpu := isa.NewInterp(mem, prog.Base)
	cpu.Run(100)
	fmt.Println("loaded:", cpu.Regs[asm.A1])
	// Output: loaded: 42
}
