package obs

import (
	"reflect"
	"strings"
	"testing"
)

func TestCounterGaugeNilSafe(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var s *Sampler
	c.Inc()
	c.Add(5)
	g.Set(3)
	h.Observe(7)
	s.MaybeSample(100)
	s.Reset(0)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || s.Len() != 0 {
		t.Fatal("nil metrics must read as zero")
	}
	if s.Series() != nil {
		t.Fatal("nil sampler must yield a nil series")
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []uint64{1, 4, 16})
	for _, v := range []uint64{0, 1, 2, 4, 5, 16, 17, 1000} {
		h.Observe(v)
	}
	snap := r.Snapshots()
	if len(snap) != 1 {
		t.Fatalf("got %d snapshots, want 1", len(snap))
	}
	// Buckets: <=1 -> {0,1}, <=4 -> {2,4}, <=16 -> {5,16}, overflow -> {17,1000}.
	want := []uint64{2, 2, 2, 2}
	if !reflect.DeepEqual(snap[0].Counts, want) {
		t.Fatalf("counts = %v, want %v", snap[0].Counts, want)
	}
	if h.Count() != 8 || h.Max() != 1000 || h.Sum() != 0+1+2+4+5+16+17+1000 {
		t.Fatalf("summary wrong: count=%d sum=%d max=%d", h.Count(), h.Sum(), h.Max())
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration must panic")
		}
	}()
	r := NewRegistry()
	r.Counter("x")
	r.Counter("x")
}

func TestSamplerRowsAndColumns(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("committed")
	ext := uint64(0)
	r.GaugeFunc("external", func() uint64 { return ext })
	h := r.Histogram("occ", []uint64{4, 8})

	s := NewSampler(r, 10, 16)
	for cycle := uint64(1); cycle <= 35; cycle++ {
		c.Inc()
		ext = cycle * 2
		h.Observe(cycle % 5)
		s.MaybeSample(cycle)
	}
	series := s.Series()
	wantCols := []string{"cycle", "committed", "external", "occ.count", "occ.sum", "occ.max"}
	if !reflect.DeepEqual(series.Columns, wantCols) {
		t.Fatalf("columns = %v, want %v", series.Columns, wantCols)
	}
	if len(series.Rows) != 3 {
		t.Fatalf("got %d rows, want 3 (cycles 10, 20, 30)", len(series.Rows))
	}
	first := series.Rows[0]
	if first[0] != 10 || first[1] != 10 || first[2] != 20 {
		t.Fatalf("first row = %v", first)
	}
	if len(series.Hists) != 1 || series.Hists[0].Name != "occ" {
		t.Fatalf("histogram snapshot missing: %+v", series.Hists)
	}
}

// TestSamplerLateColumns pins the registration window: columns added
// between sampler construction and the first sample are included (the
// stride re-derives while the series is empty), and registering after
// sampling has begun panics instead of silently misaligning earlier rows.
func TestSamplerLateColumns(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("early")
	s := NewSampler(r, 10, 16)
	r.GaugeFunc("late", func() uint64 { return 7 }) // after NewSampler, before sampling

	c.Inc()
	s.MaybeSample(10)
	s.MaybeSample(20)
	series := s.Series()
	wantCols := []string{"cycle", "early", "late"}
	if !reflect.DeepEqual(series.Columns, wantCols) {
		t.Fatalf("columns = %v, want %v", series.Columns, wantCols)
	}
	if len(series.Rows) != 2 {
		t.Fatalf("got %d rows, want 2", len(series.Rows))
	}
	for i, row := range series.Rows {
		if len(row) != len(wantCols) {
			t.Fatalf("row %d has %d values for %d columns", i, len(row), len(wantCols))
		}
		if row[2] != 7 {
			t.Fatalf("row %d late gauge = %d, want 7", i, row[2])
		}
	}

	r.Counter("too_late")
	defer func() {
		if recover() == nil {
			t.Fatal("sampling after a post-start registration must panic")
		}
	}()
	s.MaybeSample(30)
}

func TestSamplerSteadyStateAllocFree(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n")
	h := r.Histogram("occ", DefaultBounds)
	s := NewSampler(r, 100, 2048)
	cycle := uint64(0)
	avg := testing.AllocsPerRun(50, func() {
		for i := 0; i < 1000; i++ {
			cycle++
			c.Inc()
			h.Observe(cycle % 64)
			s.MaybeSample(cycle)
		}
	})
	if avg != 0 {
		t.Fatalf("sampling allocates: %.2f allocs per 1000 cycles", avg)
	}
}

func TestSamplerReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("n")
	s := NewSampler(r, 10, 4)
	for cycle := uint64(1); cycle <= 25; cycle++ {
		s.MaybeSample(cycle)
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d, want 2", s.Len())
	}
	s.Reset(25)
	if s.Len() != 0 {
		t.Fatalf("len after reset = %d, want 0", s.Len())
	}
	s.MaybeSample(30) // still before 25+10
	if s.Len() != 0 {
		t.Fatal("sampled before re-armed boundary")
	}
	s.MaybeSample(35)
	if s.Len() != 1 {
		t.Fatalf("len = %d, want 1", s.Len())
	}
}

func TestSeriesExport(t *testing.T) {
	s := &Series{
		Interval: 10,
		Columns:  []string{"cycle", "a"},
		Rows:     [][]uint64{{10, 1}, {20, 3}},
		Hists: []HistogramSnapshot{{
			Name: "h", Bounds: []uint64{1}, Counts: []uint64{1, 0},
			Count: 1, Sum: 1, Max: 1,
		}},
	}
	var jb strings.Builder
	if err := s.WriteJSONL(&jb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(jb.String(), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("jsonl has %d lines, want 4 (header, 2 rows, trailer):\n%s", len(lines), jb.String())
	}
	if !strings.Contains(lines[0], `"columns":["cycle","a"]`) {
		t.Fatalf("header line: %s", lines[0])
	}
	if lines[1] != "[10,1]" || lines[2] != "[20,3]" {
		t.Fatalf("row lines: %q %q", lines[1], lines[2])
	}
	if !strings.Contains(lines[3], `"histograms"`) {
		t.Fatalf("trailer line: %s", lines[3])
	}

	var cb strings.Builder
	if err := s.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	want := "cycle,a\n10,1\n20,3\n"
	if cb.String() != want {
		t.Fatalf("csv = %q, want %q", cb.String(), want)
	}
}
