package exp

import (
	"fmt"
	"io"
	"strings"
)

// table is a minimal aligned-column text table writer.
type table struct {
	w    io.Writer
	rows [][]string
	seps map[int]bool
}

func newTable(w io.Writer) *table {
	return &table{w: w, seps: make(map[int]bool)}
}

func (t *table) row(cols ...string) {
	t.rows = append(t.rows, cols)
}

// sep inserts a horizontal rule before the next row.
func (t *table) sep() {
	t.seps[len(t.rows)] = true
}

func (t *table) flush() {
	widths := []int{}
	for _, r := range t.rows {
		for i, c := range r {
			if i >= len(widths) {
				widths = append(widths, 0)
			}
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	for i, r := range t.rows {
		if t.seps[i] {
			fmt.Fprintln(t.w, strings.Repeat("-", total))
		}
		for j, c := range r {
			pad := widths[j] - len(c)
			if j == 0 {
				fmt.Fprintf(t.w, "%s%s  ", c, strings.Repeat(" ", pad))
			} else {
				fmt.Fprintf(t.w, "%s%s  ", strings.Repeat(" ", pad), c)
			}
		}
		fmt.Fprintln(t.w)
	}
	if t.seps[len(t.rows)] {
		fmt.Fprintln(t.w, strings.Repeat("-", total))
	}
}
