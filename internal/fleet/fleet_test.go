package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"conspec/internal/exp"
	"conspec/internal/exp/report"
	"conspec/internal/pipeline"
	"conspec/internal/serve"
)

// newTestCoordinator builds a coordinator with a fast reaper clock and no
// journal.
func newTestCoordinator(t *testing.T, opts CoordinatorOptions) *Coordinator {
	t.Helper()
	if opts.Identity == "" {
		opts.Identity = "test-identity"
	}
	if opts.HeartbeatInterval == 0 {
		opts.HeartbeatInterval = 50 * time.Millisecond
	}
	c := NewCoordinator(opts)
	t.Cleanup(c.Close)
	return c
}

func mustRegister(t *testing.T, c *Coordinator, name string, slots int) string {
	t.Helper()
	resp, err := c.register(RegisterRequest{Name: name, Identity: c.opts.Identity, Slots: slots})
	if err != nil {
		t.Fatalf("register %s: %v", name, err)
	}
	return resp.Worker
}

// startExec launches c.Execute for a job and returns a channel carrying
// its outcome.
type execOutcome struct {
	rep    *report.Report
	stats  exp.Stats
	failed int
	err    error
}

func startExec(c *Coordinator, ctx context.Context, job serve.ExecJob) chan execOutcome {
	ch := make(chan execOutcome, 1)
	go func() {
		rep, stats, failed, err := c.Execute(ctx, job)
		ch <- execOutcome{rep, stats, failed, err}
	}()
	return ch
}

func testReportJSON(t *testing.T) json.RawMessage {
	t.Helper()
	b, err := json.Marshal(report.New())
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return b
}

func waitGrant(t *testing.T, c *Coordinator, worker string) *LeaseGrant {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		g, err := c.leaseNext(worker, 200*time.Millisecond)
		if err != nil {
			t.Fatalf("leaseNext(%s): %v", worker, err)
		}
		if g != nil {
			return g
		}
	}
	t.Fatalf("no grant for %s within deadline", worker)
	return nil
}

// TestRegisterIdentityMismatch covers satellite 1: a worker built from a
// different commit is refused with a typed 409 naming both identities —
// over the protocol methods and over HTTP.
func TestRegisterIdentityMismatch(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorOptions{Identity: "coord-abc"})

	_, err := c.register(RegisterRequest{Name: "w1", Identity: "worker-xyz", Slots: 1})
	var mismatch *IdentityMismatchError
	if !errors.As(err, &mismatch) {
		t.Fatalf("want *IdentityMismatchError, got %v", err)
	}
	if mismatch.CoordinatorIdentity != "coord-abc" || mismatch.WorkerIdentity != "worker-xyz" {
		t.Fatalf("mismatch identities wrong: %+v", mismatch)
	}
	if !strings.Contains(mismatch.Error(), "coord-abc") || !strings.Contains(mismatch.Error(), "worker-xyz") {
		t.Fatalf("Error() should name both identities: %s", mismatch.Error())
	}

	// Same over HTTP: 409 with the JSON body.
	srv := httptest.NewServer(c.Handler(http.NotFoundHandler()))
	defer srv.Close()
	body, _ := json.Marshal(RegisterRequest{Name: "w1", Identity: "worker-xyz", Slots: 1})
	resp, err := http.Post(srv.URL+"/fleet/v1/register", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("POST register: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("status = %d, want 409", resp.StatusCode)
	}
	var wire IdentityMismatchError
	if err := json.NewDecoder(resp.Body).Decode(&wire); err != nil {
		t.Fatalf("decode 409 body: %v", err)
	}
	if wire.CoordinatorIdentity != "coord-abc" || wire.WorkerIdentity != "worker-xyz" {
		t.Fatalf("409 body identities wrong: %+v", wire)
	}

	// And the Worker client surfaces it as a terminal error.
	w := NewWorker(WorkerOptions{Coordinator: srv.URL, Identity: "worker-xyz"})
	runErr := w.Run(context.Background())
	if !errors.As(runErr, &mismatch) {
		t.Fatalf("Worker.Run: want *IdentityMismatchError, got %v", runErr)
	}
}

// TestWorkerKilledMidLease covers the core recovery invariant: a lease
// whose holder dies is re-queued exactly once, the replacement's result
// is accepted, and the dead worker's late post (stale generation) is
// ignored — one result, not two.
func TestWorkerKilledMidLease(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorOptions{HeartbeatTimeout: 100 * time.Millisecond})
	w1 := mustRegister(t, c, "w1", 1)

	ctx := context.Background()
	out := startExec(c, ctx, serve.ExecJob{ID: "job-1", Spec: serve.JobSpec{Suite: "defenses"}})

	g1 := waitGrant(t, c, w1)
	if g1.Lease != "job-1" || g1.Gen != 1 {
		t.Fatalf("grant = %+v, want job-1 gen 1", g1)
	}

	// w1 goes silent; the reaper declares it lost and re-queues the lease.
	c.reap(time.Now().Add(time.Second))

	c.mu.Lock()
	requeued := c.requeued
	c.mu.Unlock()
	if requeued != 1 {
		t.Fatalf("requeued = %d, want 1", requeued)
	}

	w2 := mustRegister(t, c, "w2", 1)
	g2 := waitGrant(t, c, w2)
	if g2.Lease != "job-1" || g2.Gen != 2 {
		t.Fatalf("regrant = %+v, want job-1 gen 2", g2)
	}

	// The replacement's result lands...
	rep2, err := c.finishLease("job-1", ResultPost{
		Worker: w2, Gen: 2, Status: ResultDone, Report: testReportJSON(t),
		Engine: exp.Stats{Executed: 7},
	})
	if err != nil || !rep2.Accepted {
		t.Fatalf("gen-2 result: accepted=%v err=%v, want accepted", rep2.Accepted, err)
	}

	// ...and the dead worker's late post is ignored, not duplicated.
	rep1, err := c.finishLease("job-1", ResultPost{
		Worker: w1, Gen: 1, Status: ResultDone, Report: testReportJSON(t),
		Engine: exp.Stats{Executed: 99},
	})
	if err != nil || rep1.Accepted {
		t.Fatalf("gen-1 result: accepted=%v err=%v, want ignored", rep1.Accepted, err)
	}

	res := <-out
	if res.err != nil {
		t.Fatalf("Execute: %v", res.err)
	}
	if res.stats.Executed != 7 {
		t.Fatalf("stats.Executed = %d, want the gen-2 result's 7", res.stats.Executed)
	}
}

// TestRequeueGivesUpAfterMax: a job bounced across MaxRequeues worker
// deaths fails terminally instead of looping forever.
func TestRequeueGivesUpAfterMax(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorOptions{HeartbeatTimeout: 50 * time.Millisecond, MaxRequeues: 2})
	out := startExec(c, context.Background(), serve.ExecJob{ID: "job-1", Spec: serve.JobSpec{Suite: "defenses"}})
	for i := 0; i < 3; i++ {
		w := mustRegister(t, c, "w1", 1) // same name: each registration replaces the lost one
		g := waitGrant(t, c, w)
		if g.Lease != "job-1" {
			t.Fatalf("round %d: grant %+v", i, g)
		}
		c.reap(time.Now().Add(time.Second))
	}
	res := <-out
	if res.err == nil || !strings.Contains(res.err.Error(), "giving up") {
		t.Fatalf("Execute err = %v, want terminal giving-up failure", res.err)
	}
}

// TestDuplicateSpecCoalesced: two jobs with byte-identical specs share
// one lease and one execution, fleet-wide.
func TestDuplicateSpecCoalesced(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorOptions{})
	w1 := mustRegister(t, c, "w1", 2)

	spec := serve.JobSpec{Suite: "defenses", Defenses: []string{"fence"}, Measure: 1000}
	var worker1 string
	var mu sync.Mutex
	outA := startExec(c, context.Background(), serve.ExecJob{
		ID: "job-a", Spec: spec,
		SetWorker: func(w string) { mu.Lock(); worker1 = w; mu.Unlock() },
	})
	waitGrant(t, c, w1) // job-a leased

	outB := startExec(c, context.Background(), serve.ExecJob{ID: "job-b", Spec: spec})

	// job-b must coalesce, not queue: no second grant appears.
	if g, err := c.leaseNext(w1, 100*time.Millisecond); err != nil || g != nil {
		t.Fatalf("second grant = %+v err=%v, want none (coalesced)", g, err)
	}
	c.mu.Lock()
	coalesced := c.coalesced
	c.mu.Unlock()
	if coalesced != 1 {
		t.Fatalf("coalesced = %d, want 1", coalesced)
	}

	reply, err := c.finishLease("job-a", ResultPost{
		Worker: w1, Gen: 1, Status: ResultDone, Report: testReportJSON(t),
		Engine: exp.Stats{Executed: 3},
	})
	if err != nil || !reply.Accepted {
		t.Fatalf("result: accepted=%v err=%v", reply.Accepted, err)
	}

	resA, resB := <-outA, <-outB
	if resA.err != nil || resB.err != nil {
		t.Fatalf("Execute errs: %v / %v", resA.err, resB.err)
	}
	if resA.rep == nil || resA.rep != resB.rep {
		t.Fatalf("coalesced jobs should share the same result document")
	}
	mu.Lock()
	defer mu.Unlock()
	if worker1 != w1 {
		t.Fatalf("SetWorker saw %q, want %q", worker1, w1)
	}
}

// TestHeartbeatRacesCancel: a client cancel (job context death) racing
// the holder's heartbeat must converge — the worker learns about the
// cancel on some heartbeat, posts canceled, and the lease finishes. Run
// under -race this also exercises the locking on both paths.
func TestHeartbeatRacesCancel(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorOptions{})
	w1 := mustRegister(t, c, "w1", 1)

	ctx, cancel := context.WithCancel(context.Background())
	out := startExec(c, ctx, serve.ExecJob{ID: "job-1", Spec: serve.JobSpec{Suite: "defenses"}})
	g := waitGrant(t, c, w1)

	// Fire the cancel and a burst of heartbeats concurrently.
	var wg sync.WaitGroup
	wg.Add(2)
	canceledSeen := make(chan struct{}, 1)
	go func() {
		defer wg.Done()
		cancel()
	}()
	go func() {
		defer wg.Done()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			resp, err := c.heartbeat(HeartbeatRequest{Worker: w1})
			if err != nil {
				t.Errorf("heartbeat: %v", err)
				return
			}
			for _, id := range resp.Canceled {
				if id == g.Lease {
					select {
					case canceledSeen <- struct{}{}:
					default:
					}
					return
				}
			}
			time.Sleep(time.Millisecond)
		}
		t.Error("heartbeat never reported the canceled lease")
	}()
	wg.Wait()

	res := <-out
	if !errors.Is(res.err, context.Canceled) {
		t.Fatalf("Execute err = %v, want context.Canceled", res.err)
	}
	select {
	case <-canceledSeen:
	default:
		t.Fatal("cancel never reached the heartbeat reply")
	}

	// The worker acknowledges with a canceled result; the lease is gone.
	reply, err := c.finishLease(g.Lease, ResultPost{Worker: w1, Gen: g.Gen, Status: ResultCanceled})
	if err != nil {
		t.Fatalf("canceled result: %v", err)
	}
	_ = reply // accepted or already finished; both are fine — what matters:
	c.mu.Lock()
	live := len(c.leases)
	c.mu.Unlock()
	if live != 0 {
		t.Fatalf("live leases = %d, want 0", live)
	}
}

// TestAbandonedLeaseRequeuedImmediately: a worker shutting down posts
// abandoned, and the job is back on the queue without waiting for the
// heartbeat timeout.
func TestAbandonedLeaseRequeuedImmediately(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorOptions{HeartbeatTimeout: time.Hour})
	w1 := mustRegister(t, c, "w1", 1)
	out := startExec(c, context.Background(), serve.ExecJob{ID: "job-1", Spec: serve.JobSpec{Suite: "defenses"}})
	g := waitGrant(t, c, w1)

	reply, err := c.finishLease(g.Lease, ResultPost{Worker: w1, Gen: g.Gen, Status: ResultAbandoned})
	if err != nil || !reply.Accepted {
		t.Fatalf("abandon: accepted=%v err=%v", reply.Accepted, err)
	}

	w2 := mustRegister(t, c, "w2", 1)
	g2 := waitGrant(t, c, w2)
	if g2.Lease != "job-1" || g2.Gen != 2 {
		t.Fatalf("regrant = %+v, want job-1 gen 2", g2)
	}
	if _, err := c.finishLease(g2.Lease, ResultPost{
		Worker: w2, Gen: g2.Gen, Status: ResultDone, Report: testReportJSON(t),
	}); err != nil {
		t.Fatalf("result: %v", err)
	}
	if res := <-out; res.err != nil {
		t.Fatalf("Execute: %v", res.err)
	}
}

// TestEndToEndWorker drives a real Worker (with a stubbed execution path)
// against a coordinator over HTTP: registration, lease, progress
// forwarding, result post, and the metrics merge.
func TestEndToEndWorker(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorOptions{
		Identity:          "e2e",
		HeartbeatInterval: 20 * time.Millisecond,
	})
	srv := httptest.NewServer(c.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Stand-in for the serve handler: /metrics base exposition.
		if r.URL.Path == "/metrics" {
			w.Write([]byte("# TYPE conspec_served_jobs_done_total counter\nconspec_served_jobs_done_total 0\n"))
			return
		}
		http.NotFound(w, r)
	})))
	defer srv.Close()

	w := NewWorker(WorkerOptions{
		Coordinator:   srv.URL,
		Name:          "e2e-w1",
		Identity:      "e2e",
		Slots:         1,
		ProgressFlush: 10 * time.Millisecond,
		execOverride: func(ctx context.Context, spec serve.JobSpec, emit func(exp.ProgressEvent)) (*report.Report, exp.Stats, int, error) {
			emit(exp.ProgressEvent{Benchmark: "spectre-v1", Mechanism: "fence"})
			emit(exp.ProgressEvent{Benchmark: "spectre-v1", Mechanism: "fence", Phase: exp.PhaseBenchDone})
			return report.New(), exp.Stats{Executed: 2}, 0, nil
		},
	})
	wctx, wcancel := context.WithCancel(context.Background())
	defer wcancel()
	workerDone := make(chan error, 1)
	go func() { workerDone <- w.Run(wctx) }()

	var mu sync.Mutex
	var events []exp.ProgressEvent
	var seenWorker string
	out := startExec(c, context.Background(), serve.ExecJob{
		ID:   "job-e2e",
		Spec: serve.JobSpec{Suite: "defenses"},
		Emit: func(ev exp.ProgressEvent) {
			mu.Lock()
			events = append(events, ev)
			mu.Unlock()
		},
		SetWorker: func(id string) {
			mu.Lock()
			seenWorker = id
			mu.Unlock()
		},
	})

	select {
	case res := <-out:
		if res.err != nil {
			t.Fatalf("Execute: %v", res.err)
		}
		if res.rep == nil || res.stats.Executed != 2 {
			t.Fatalf("result = rep=%v stats=%+v", res.rep, res.stats)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Execute did not finish")
	}

	mu.Lock()
	nEvents, worker := len(events), seenWorker
	mu.Unlock()
	if nEvents != 2 {
		t.Fatalf("forwarded events = %d, want 2", nEvents)
	}
	if worker != "e2e-w1" {
		t.Fatalf("SetWorker saw %q, want e2e-w1", worker)
	}

	// After a heartbeat, the worker's pushed counters show up in /metrics
	// with the worker label, appended after the base exposition.
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(srv.URL + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		text := string(b)
		if strings.Contains(text, `conspec_served_worker_leases_done_total{worker="e2e-w1"} 1`) {
			if !strings.Contains(text, "conspec_served_jobs_done_total 0") {
				t.Fatalf("base exposition missing:\n%s", text)
			}
			if !strings.Contains(text, "conspec_served_fleet_workers 1") {
				t.Fatalf("fleet gauges missing:\n%s", text)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("worker metrics never appeared in /metrics:\n%s", text)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Graceful worker shutdown exits Run cleanly.
	wcancel()
	select {
	case err := <-workerDone:
		if err != nil {
			t.Fatalf("Worker.Run: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("worker did not shut down")
	}
}

// TestWorkerAbandonsOnShutdown: killing the worker's context mid-lease
// posts abandoned (not canceled), so the coordinator re-queues at once.
func TestWorkerAbandonsOnShutdown(t *testing.T) {
	c := newTestCoordinator(t, CoordinatorOptions{Identity: "e2e", HeartbeatTimeout: time.Hour})
	srv := httptest.NewServer(c.Handler(http.NotFoundHandler()))
	defer srv.Close()

	started := make(chan struct{})
	w := NewWorker(WorkerOptions{
		Coordinator: srv.URL, Name: "w1", Identity: "e2e", Slots: 1,
		execOverride: func(ctx context.Context, spec serve.JobSpec, emit func(exp.ProgressEvent)) (*report.Report, exp.Stats, int, error) {
			close(started)
			<-ctx.Done()
			return nil, exp.Stats{}, 0, ctx.Err()
		},
	})
	wctx, wcancel := context.WithCancel(context.Background())
	workerDone := make(chan error, 1)
	go func() { workerDone <- w.Run(wctx) }()

	out := startExec(c, context.Background(), serve.ExecJob{ID: "job-1", Spec: serve.JobSpec{Suite: "defenses"}})
	<-started
	wcancel()
	if err := <-workerDone; err != nil {
		t.Fatalf("Worker.Run: %v", err)
	}

	// The lease must be pending again (gen 2), not dead with the worker.
	c.mu.Lock()
	requeued := c.requeued
	pending := len(c.pending)
	c.mu.Unlock()
	if requeued != 1 || pending != 1 {
		t.Fatalf("requeued=%d pending=%d, want 1/1", requeued, pending)
	}

	// A fresh worker finishes the job.
	w2 := mustRegister(t, c, "w2", 1)
	g := waitGrant(t, c, w2)
	if g.Gen != 2 {
		t.Fatalf("gen = %d, want 2", g.Gen)
	}
	if _, err := c.finishLease(g.Lease, ResultPost{
		Worker: w2, Gen: g.Gen, Status: ResultDone, Report: testReportJSON(t),
	}); err != nil {
		t.Fatalf("result: %v", err)
	}
	if res := <-out; res.err != nil {
		t.Fatalf("Execute: %v", res.err)
	}
}

// mapStore is an in-memory ResultStore for tests.
type mapStore struct {
	mu sync.Mutex
	m  map[string]pipeline.Result
}

func newMapStore() *mapStore { return &mapStore{m: make(map[string]pipeline.Result)} }

func (s *mapStore) Get(key string) (pipeline.Result, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.m[key]
	return r, ok
}

func (s *mapStore) Put(key string, res pipeline.Result) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = res
}

// TestRemoteAndTieredStore: workers reach the coordinator's store over
// HTTP; the tiered view copies remote hits through to the local tier.
func TestRemoteAndTieredStore(t *testing.T) {
	store := newMapStore()
	c := newTestCoordinator(t, CoordinatorOptions{Store: store})
	srv := httptest.NewServer(c.Handler(http.NotFoundHandler()))
	defer srv.Close()

	remote := NewRemoteStore(srv.URL, nil)

	if _, ok := remote.Get("deadbeef"); ok {
		t.Fatal("miss expected on empty store")
	}
	want := pipeline.Result{Cycles: 12345, Committed: 99, Halted: true}
	remote.Put("deadbeef", want)
	got, ok := remote.Get("deadbeef")
	if !ok || got.Cycles != 12345 || got.Committed != 99 || !got.Halted {
		t.Fatalf("remote round-trip = %+v ok=%v", got, ok)
	}
	if rs := remote.Stats(); rs.Puts != 1 || rs.Hits != 1 || rs.Gets != 2 {
		t.Fatalf("remote stats = %+v", rs)
	}

	local := newMapStore()
	tiered := &TieredStore{Local: local, Remote: remote}
	got, ok = tiered.Get("deadbeef") // remote hit, copied through
	if !ok || got.Cycles != 12345 {
		t.Fatalf("tiered get = %+v ok=%v", got, ok)
	}
	if _, ok := local.Get("deadbeef"); !ok {
		t.Fatal("remote hit not copied through to local tier")
	}
	if _, ok = tiered.Get("deadbeef"); !ok {
		t.Fatal("want local hit")
	}
	ts := tiered.Stats()
	if ts.RemoteHits != 1 || ts.LocalHits != 1 {
		t.Fatalf("tiered stats = %+v", ts)
	}

	tiered.Put("cafe", pipeline.Result{Cycles: 1})
	if _, ok := local.Get("cafe"); !ok {
		t.Fatal("put missed local tier")
	}
	if _, ok := store.Get("cafe"); !ok {
		t.Fatal("put missed coordinator store")
	}
}

// TestLimiter: per-client token buckets — bursts pass, floods get a
// Retry-After, clients are independent, and tokens refill over time.
func TestLimiter(t *testing.T) {
	l := NewLimiter(1, 3)
	now := time.Unix(1000, 0)
	l.now = func() time.Time { return now }

	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("alice"); !ok {
			t.Fatalf("burst allowance %d denied", i)
		}
	}
	ok, wait := l.Allow("alice")
	if ok || wait < time.Second {
		t.Fatalf("over-budget allow = %v wait=%v", ok, wait)
	}
	if ok, _ := l.Allow("bob"); !ok {
		t.Fatal("independent client throttled")
	}
	now = now.Add(1500 * time.Millisecond) // refills 1.5 tokens
	if ok, _ := l.Allow("alice"); !ok {
		t.Fatal("refilled token denied")
	}
	ok, _ = l.Allow("alice")
	if ok {
		t.Fatal("half a token should not allow")
	}
}

// TestJobKeyCoalescingKey: specs differing in any result-affecting field
// must not coalesce.
func TestJobKeyCoalescingKey(t *testing.T) {
	a := serve.JobSpec{Suite: "defenses", Defenses: []string{"fence"}}
	b := serve.JobSpec{Suite: "defenses", Defenses: []string{"fence"}}
	if jobKeyOf(a) != jobKeyOf(b) {
		t.Fatal("identical specs should share a key")
	}
	b.Measure = 5000
	if jobKeyOf(a) == jobKeyOf(b) {
		t.Fatal("different measure budgets must not coalesce")
	}
}
