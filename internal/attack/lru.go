package attack

import (
	"conspec/internal/asm"
	"conspec/internal/config"
)

// LRUSideChannel is the §VII.A attack: Conditional Speculation lets suspect
// loads that HIT the L1D proceed, and on a conventional cache every hit
// refreshes the replacement metadata. The attacker arranges each monitored
// set so the victim's line is the eviction candidate, triggers a
// speculative suspect HIT (which, under the conventional policy, promotes
// the secret's line to most-recently-used), inserts one conflict line per
// set, and then checks which victim line SURVIVED — that set index is the
// secret. No cache line is ever refilled by the speculation itself, so the
// cache-content filters cannot see it; only the paper's no-update /
// delayed-update replacement policies close the channel.
//
// Transmission layout: one line per value on a single shared page
// (trans[v] = transBase + v*64), all pre-warmed so the speculative access
// is a HIT. The L1 set of trans[v] is v (transBase is set-0 aligned).
func LRUSideChannel(cfg config.Core) *Harness {
	sets := cfg.Mem.L1DSize / (cfg.Mem.L1DWays * cfg.Mem.LineBytes)
	ways := cfg.Mem.L1DWays
	wayStride := int32(sets * 64)
	setMask := int32(sets-1) << 6

	b := asm.New()
	b.Jmp("main")
	emitV1Gadget(b, setShift)
	b.Bind("main")
	emitProloguePointers(b, array2Addr)
	emitOuterLoop(b, len(defaultSecret), func() {
		emitTrainV1(b, "lru", 4)

		// Phase 1: per monitored set, make the victim line the LRU way:
		// touch trans[c] first, then fill the remaining ways-1 slots with
		// attacker conflict lines.
		b.Li(rGuess, 1)
		b.Bind("lru_prime")
		b.Shli(rTmpA, rGuess, setShift)
		b.Add(rTmpA, rA2, rTmpA)
		b.Ld1(asm.T2, rTmpA, 0) // victim line: now resident and oldest-to-be
		b.Andi(rTmpA, rTmpA, setMask)
		b.Add(rTmpA, rEvict, rTmpA)
		b.Li(asm.T5, 0)
		b.Bind("lru_fill")
		b.Ld(asm.T6, rTmpA, 0)
		b.Addi(rTmpA, rTmpA, wayStride)
		b.Addi(asm.T5, asm.T5, 1)
		b.Li(rTmpB, int32(ways-1))
		b.Blt(asm.T5, rTmpB, "lru_fill")
		b.Addi(rGuess, rGuess, 1)
		b.Li(rTmpB, probeEntries)
		b.Blt(rGuess, rTmpB, "lru_prime")
		b.Fence()

		// Phase 2: open the window and trigger. The gadget's transmission
		// HITS trans[secret]; under the conventional update policy that hit
		// promotes the line to MRU. Under no-update it stays LRU.
		emitFlushBound(b)
		emitTriggerV1(b, "lru")

		// Phase 3: one more conflict line per set evicts each set's LRU
		// way — the victim line everywhere EXCEPT (conventional policy
		// only) the secret's set.
		b.Li(rGuess, 1)
		b.Bind("lru_evict")
		b.Shli(rTmpA, rGuess, setShift)
		b.Add(rTmpA, rA2, rTmpA)
		b.Andi(rTmpA, rTmpA, setMask)
		b.Add(rTmpA, rEvict, rTmpA)
		// The (ways-1)-th way slot is the one conflict line phase 1 did not
		// use: loading it forces an eviction of the set's current LRU way.
		b.Addi(rTmpA, rTmpA, int32(ways-1)*wayStride)
		b.Ld(asm.T6, rTmpA, 0)
		b.Addi(rGuess, rGuess, 1)
		b.Li(rTmpB, probeEntries)
		b.Blt(rGuess, rTmpB, "lru_evict")
		b.Fence()

		// Phase 4: reload each victim line; the SURVIVOR (fast) is the
		// secret — an argmin probe over the same single page (TLB-neutral).
		emitProbeFlushReload(b, "lru", setShift)
		emitStoreResult(b)
	})
	return &Harness{
		Name:         "v1-lru/replacement-state",
		Class:        "LRU update, share data (§VII.A)",
		SharedMemory: true,
		Variant:      "V1",
		Prog:         mustProg(b),
		Secret:       defaultSecret,
		seed:         seedCommon(defaultSecret),
		prewarm:      []uint64{secretAddr},
	}
}
