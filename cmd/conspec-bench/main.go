// Command conspec-bench regenerates the paper's evaluation artifacts:
//
//	-suite fig5     Figure 5  (normalized performance, 22 benchmarks)
//	-suite table4   Table IV  (security: attacks vs mechanisms)
//	-suite table5   Table V   (filter analysis)
//	-suite table6   Table VI  (A57/I7/Xeon sensitivity)
//	-suite scope    §VI.C(1)  (branch-only vs branch+memory matrix)
//	-suite lru      §VII.A    (secure replacement-update policies)
//	-suite icache   §VII.B    (ICache-hit filter extension)
//	-suite dtlb     extension (DTLB-hit filter)
//	-suite compare  extension (CH+TPBuf vs InvisiSpec-like vs LFENCE baseline)
//	-suite overhead §VI.E     (area/timing model)
//	-suite all      everything above
//
// Figure 5 and Table V come from the same runs and are always printed
// together. Use -benches to restrict to a comma-separated subset and
// -measure to change the per-run instruction budget.
//
// All suites submit their runs to one exp.Runner, which deduplicates
// identical (core, security, policy, workload, budget) simulations across
// suites — `-suite all` executes each unique run exactly once. SIGINT
// cancels the engine: completed suite results are flushed and the process
// exits non-zero.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"conspec/internal/buildinfo"
	"conspec/internal/exp"
	"conspec/internal/profutil"
)

func main() {
	var (
		suite    = flag.String("suite", "all", "fig5|table4|table5|table6|scope|lru|icache|dtlb|compare|overhead|all")
		benches  = flag.String("benches", "", "comma-separated benchmark subset (default: all 22)")
		warmup   = flag.Uint64("warmup", 20_000, "warmup instructions per run")
		measure  = flag.Uint64("measure", 120_000, "measured instructions per run")
		interval = flag.Uint64("metrics-interval", 0, "sample the obs metric registry every N cycles of the measured phase; the -json fig5/table5 output then carries the per-run time series (0 = off)")
		selfchk  = flag.Uint64("selfcheck", 0, "audit pipeline and security invariants every N cycles of every run; a violation fails that run (0 = off)")
		runTmo   = flag.Duration("run-timeout", 0, "wall-clock bound per simulation; a run exceeding it is recorded as failed and its suite continues (0 = none)")
		workers  = flag.Int("workers", 0, "max concurrent simulations (0 = GOMAXPROCS); values below GOMAXPROCS also cap GOMAXPROCS so -workers 1 -cpuprofile profiles a single attributable thread")
		verbose  = flag.Bool("v", false, "print per-run progress")
		asJSON   = flag.Bool("json", false, "emit results as JSON instead of text")
		version  = flag.Bool("version", false, "print build information and exit")
	)
	prof := profutil.Register()
	flag.Parse()
	if *version {
		fmt.Println(buildinfo.Short("conspec-bench"))
		return
	}
	profStop, err := prof.Start()
	if err != nil {
		fatal(err)
	}
	defer profStop()
	*workers = profutil.CapProcs(*workers)

	var names []string
	if *benches != "" {
		names = strings.Split(*benches, ",")
	}
	spec := exp.DefaultSpec()
	spec.Warmup = *warmup
	spec.Measure = *measure
	spec.MetricsInterval = *interval
	spec.SelfCheck = *selfchk

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var onEvent func(exp.ProgressEvent)
	if *verbose {
		onEvent = func(ev exp.ProgressEvent) {
			if ev.Line != "" {
				fmt.Fprintln(os.Stderr, ev.Line)
			}
		}
	}
	runner := exp.NewRunner(exp.RunnerOptions{Workers: *workers, OnEvent: onEvent, Timeout: *runTmo})
	opts := exp.Options{Spec: spec, Benches: names}

	want := func(s string) bool { return *suite == "all" || *suite == s }
	start := time.Now()

	var report jsonReport
	report.Build = buildinfo.Get()
	// fail flushes whatever completed and exits. On SIGINT the JSON
	// document holds every suite that finished before cancellation.
	fail := func(err error) {
		profStop() // os.Exit skips deferred handlers: flush profiles first
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "interrupted: flushing completed suite results")
			if *asJSON {
				emitJSON(report)
			}
			printEngineStats(runner, start)
			os.Exit(1)
		}
		fatal(err)
	}

	if want("fig5") || want("table5") {
		res, err := runner.RunSuite(ctx, exp.SuiteFig5, opts)
		if err != nil {
			fail(err)
		}
		ev := res.Evaluation()
		if *asJSON {
			report.Fig5 = fig5JSON(ev)
			report.Table5 = table5JSON(ev)
			report.Series = seriesJSON(ev)
		} else {
			fmt.Println("=== Figure 5: runtime normalized to Origin ===")
			fmt.Println(ev.Fig5Text())
			fmt.Println("=== Table V: filter analysis ===")
			fmt.Println(ev.Table5Text())
		}
	}
	if want("table4") {
		res, err := runner.RunSuite(ctx, exp.SuiteTable4, opts)
		if err != nil {
			fail(err)
		}
		if *asJSON {
			report.Table4 = table4JSON(res.Table4())
		} else {
			fmt.Println("=== Table IV: security analysis ===")
			fmt.Println(exp.Table4Text(res.Table4()))
		}
	}
	if want("table6") {
		res, err := runner.RunSuite(ctx, exp.SuiteTable6, opts)
		if err != nil {
			fail(err)
		}
		if *asJSON {
			report.Table6 = table6JSON(res.Table6())
		} else {
			fmt.Println("=== Table VI: core sensitivity ===")
			fmt.Println(exp.Table6Text(res.Table6()))
		}
	}
	if want("scope") {
		res, err := runner.RunSuite(ctx, exp.SuiteScope, opts)
		if err != nil {
			fail(err)
		}
		if *asJSON {
			report.Scope = scopeJSON(res.Scope())
		} else {
			fmt.Println("=== §VI.C(1): matrix scope decomposition ===")
			fmt.Println(exp.ScopeText(res.Scope()))
		}
	}
	if want("lru") {
		res, err := runner.RunSuite(ctx, exp.SuiteLRU, opts)
		if err != nil {
			fail(err)
		}
		if *asJSON {
			report.LRU = lruJSON(res.LRU())
		} else {
			fmt.Println("=== §VII.A: secure replacement-update policies ===")
			fmt.Println(exp.LRUText(res.LRU()))
		}
	}
	if want("icache") {
		res, err := runner.RunSuite(ctx, exp.SuiteICache, opts)
		if err != nil {
			fail(err)
		}
		if *asJSON {
			report.ICache = icacheJSON(res.ICache())
		} else {
			fmt.Println("=== §VII.B: ICache-hit filter extension ===")
			fmt.Println(exp.ICacheText(res.ICache()))
		}
	}
	if want("dtlb") {
		res, err := runner.RunSuite(ctx, exp.SuiteDTLB, opts)
		if err != nil {
			fail(err)
		}
		if *asJSON {
			report.DTLB = dtlbJSON(res.DTLB())
		} else {
			fmt.Println("=== DTLB-hit filter extension ===")
			fmt.Println(exp.DTLBText(res.DTLB()))
		}
	}
	if want("compare") {
		res, err := runner.RunSuite(ctx, exp.SuiteCompare, opts)
		if err != nil {
			fail(err)
		}
		if *asJSON {
			report.Compare = compareJSON(res.Compare())
		} else {
			fmt.Println("=== Defense comparison: CH+TPBuf vs InvisiSpec vs SW fence ===")
			fmt.Println(exp.CompareText(res.Compare()))
		}
	}
	if want("overhead") {
		if *asJSON {
			report.Overhead = exp.OverheadText()
		} else {
			fmt.Println("=== §VI.E: hardware overhead model ===")
			fmt.Println(exp.OverheadText())
		}
	}
	// Failed runs (deadlocks, audit violations, cycle caps, timeouts) were
	// excluded from the suite aggregates above; summarize them here and make
	// the process exit non-zero so CI notices degraded output.
	failed := runner.Errors()
	if len(failed) > 0 {
		fmt.Fprintf(os.Stderr, "%d run(s) failed and were excluded from the aggregates:\n", len(failed))
		for _, e := range failed {
			fmt.Fprintf(os.Stderr, "  [%s] %s / %s: %s\n", e.Suite, e.Benchmark, e.Mechanism, e.Outcome)
		}
	}
	if *asJSON {
		report.Errors = errorsJSON(failed)
		emitJSON(report)
	}
	printEngineStats(runner, start)
	if len(failed) > 0 {
		profStop()
		os.Exit(1)
	}
}

// printEngineStats reports the scheduler's deduplication work and the wall
// time on stderr, next to the timing line the tool has always printed.
func printEngineStats(runner *exp.Runner, start time.Time) {
	st := runner.Stats()
	if st.Submitted() > 0 {
		fmt.Fprintf(os.Stderr, "engine: %d unique simulations, %d cache hits (%d submitted)\n",
			st.Executed, st.Hits, st.Submitted())
	}
	fmt.Fprintf(os.Stderr, "total wall time: %v\n", time.Since(start))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
