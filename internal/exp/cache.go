package exp

import (
	"encoding/hex"

	"conspec/internal/pipeline"
)

// Cache tier labels carried by PhaseCached events' Tier field.
const (
	// TierMemory marks a hit in the Runner's in-process memo map,
	// including duplicates coalesced onto an in-flight execution.
	TierMemory = "memory"
	// TierDisk marks a hit in the persistent ResultCache configured via
	// RunnerOptions.Cache.
	TierDisk = "disk"
)

// ResultCache is the persistent tier layered under the Runner's in-memory
// memo map. Keys are the hex form of the deterministic runKey, so identical
// (core, security, policy, workload, budget) runs share an entry across
// processes and restarts. Implementations must be safe for concurrent use;
// the in-memory tier already coalesces identical in-flight submissions, so
// a given key is Get/Put by at most one goroutine of one Runner at a time,
// but several Runners (server jobs, parallel CLIs) may share one store.
//
// Get returns the cached Result and true on a hit. A miss — including an
// unreadable or corrupt entry — returns false; it must not fail the run.
// Put persists a successfully completed run; errors are the store's to
// swallow (a full disk degrades to a smaller cache, not a failed suite).
type ResultCache interface {
	Get(key string) (pipeline.Result, bool)
	Put(key string, res pipeline.Result)
}

// String returns the hex form of the key used by persistent stores.
func (k runKey) String() string { return hex.EncodeToString(k[:]) }
