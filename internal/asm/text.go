package asm

import (
	"fmt"
	"strconv"
	"strings"

	"conspec/internal/isa"
)

// ParseText assembles a textual listing into a Builder. The syntax matches
// the disassembler output of isa.Inst.String, one instruction per line:
//
//	loop:                     ; label (also accepted on the same line)
//	  li   x1, 4096
//	  ld   x2, 8(x1)
//	  add  x3, x2, x1
//	  beq  x3, x0, done
//	  jal  x0, loop
//	done:
//	  halt
//
// '#' and ';' start comments. Branch and jal targets may be labels or
// numeric byte offsets. Register names are x0..x31 or the ABI aliases
// (zero, ra, sp, t0-t6, a0-a5, s0-s7).
func ParseText(src string) (*Builder, error) {
	b := New()
	for ln, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, "#;"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		// Leading "name:" binds a label; the rest of the line may continue.
		for {
			i := strings.Index(line, ":")
			if i < 0 || strings.ContainsAny(line[:i], " \t,()") {
				break
			}
			b.Bind(Label(strings.TrimSpace(line[:i])))
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, ".") {
			if err := parseDirective(b, line); err != nil {
				return nil, fmt.Errorf("asm: line %d: %w", ln+1, err)
			}
			continue
		}
		if err := parseInst(b, line); err != nil {
			return nil, fmt.Errorf("asm: line %d: %w", ln+1, err)
		}
	}
	if b.err != nil {
		return nil, b.err
	}
	return b, nil
}

var regAlias = map[string]Reg{
	"zero": Zero, "ra": RA, "sp": SP,
	"t0": T0, "t1": T1, "t2": T2, "t3": T3, "t4": T4, "t5": T5, "t6": T6,
	"a0": A0, "a1": A1, "a2": A2, "a3": A3, "a4": A4, "a5": A5,
	"s0": S0, "s1": S1, "s2": S2, "s3": S3, "s4": S4, "s5": S5, "s6": S6, "s7": S7,
}

func parseReg(s string) (Reg, error) {
	s = strings.TrimSpace(s)
	if r, ok := regAlias[s]; ok {
		return r, nil
	}
	if strings.HasPrefix(s, "x") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < isa.NumRegs {
			return Reg(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseImm(s string) (int32, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if int64(int32(v)) != v {
		return 0, fmt.Errorf("immediate %d out of 32-bit range", v)
	}
	return int32(v), nil
}

// parseMemOperand parses "imm(reg)" or "(reg)".
func parseMemOperand(s string) (Reg, int32, error) {
	s = strings.TrimSpace(s)
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	var imm int32
	if pre := strings.TrimSpace(s[:open]); pre != "" {
		v, err := parseImm(pre)
		if err != nil {
			return 0, 0, err
		}
		imm = v
	}
	r, err := parseReg(s[open+1 : len(s)-1])
	return r, imm, err
}

// parseDirective handles assembler directives:
//
//	.data ADDR      position the data cursor
//	.word V         emit a 64-bit little-endian value
//	.byte V         emit one byte
//	.ascii "text"   emit string bytes (Go quoting)
func parseDirective(b *Builder, line string) error {
	fields := strings.SplitN(line, " ", 2)
	arg := ""
	if len(fields) == 2 {
		arg = strings.TrimSpace(fields[1])
	}
	switch fields[0] {
	case ".data":
		addr, err := strconv.ParseUint(arg, 0, 64)
		if err != nil {
			return fmt.Errorf("bad .data address %q", arg)
		}
		b.DataAt(addr)
	case ".word":
		v, err := strconv.ParseUint(arg, 0, 64)
		if err != nil {
			sv, serr := strconv.ParseInt(arg, 0, 64)
			if serr != nil {
				return fmt.Errorf("bad .word value %q", arg)
			}
			v = uint64(sv)
		}
		b.Word(v)
	case ".byte":
		v, err := strconv.ParseUint(arg, 0, 8)
		if err != nil {
			return fmt.Errorf("bad .byte value %q", arg)
		}
		b.Byte(byte(v))
	case ".ascii":
		str, err := strconv.Unquote(arg)
		if err != nil {
			return fmt.Errorf("bad .ascii string %q", arg)
		}
		b.Ascii(str)
	default:
		return fmt.Errorf("unknown directive %q", fields[0])
	}
	if b.err != nil {
		return b.err
	}
	return nil
}

var opByName = func() map[string]isa.Op {
	m := make(map[string]isa.Op)
	for o := isa.Op(0); o.Valid(); o++ {
		m[o.String()] = o
	}
	return m
}()

func parseInst(b *Builder, line string) error {
	fields := strings.SplitN(line, " ", 2)
	mn := strings.ToLower(strings.TrimSpace(fields[0]))
	op, ok := opByName[mn]
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mn)
	}
	var args []string
	if len(fields) == 2 {
		for _, a := range strings.Split(fields[1], ",") {
			args = append(args, strings.TrimSpace(a))
		}
	}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s expects %d operands, got %d", mn, n, len(args))
		}
		return nil
	}
	switch {
	case op == isa.OpNop || op == isa.OpHalt || op == isa.OpFence:
		if err := need(0); err != nil {
			return err
		}
		b.Raw(isa.Inst{Op: op})
	case op == isa.OpRdcycle:
		if err := need(1); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		b.Rdcycle(rd)
	case op == isa.OpLi:
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		// Allow full 64-bit constants; expand via Li64 when needed.
		v, perr := strconv.ParseUint(strings.TrimSpace(args[1]), 0, 64)
		if perr != nil {
			sv, serr := strconv.ParseInt(strings.TrimSpace(args[1]), 0, 64)
			if serr != nil {
				return fmt.Errorf("bad immediate %q", args[1])
			}
			v = uint64(sv)
		}
		b.Li64(rd, v)
	case op.IsLoad():
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs1, imm, err := parseMemOperand(args[1])
		if err != nil {
			return err
		}
		b.Raw(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
	case op.IsStore():
		if err := need(2); err != nil {
			return err
		}
		rs2, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs1, imm, err := parseMemOperand(args[1])
		if err != nil {
			return err
		}
		b.Raw(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: imm})
	case op == isa.OpClflush:
		if err := need(1); err != nil {
			return err
		}
		rs1, imm, err := parseMemOperand(args[0])
		if err != nil {
			return err
		}
		b.Clflush(rs1, imm)
	case op.IsCondBranch():
		if err := need(3); err != nil {
			return err
		}
		rs1, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs2, err := parseReg(args[1])
		if err != nil {
			return err
		}
		if imm, err := parseImm(args[2]); err == nil {
			b.Raw(isa.Inst{Op: op, Rs1: rs1, Rs2: rs2, Imm: imm})
		} else {
			b.Branch(op, rs1, rs2, Label(args[2]))
		}
	case op == isa.OpJal:
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		if imm, err := parseImm(args[1]); err == nil {
			b.Raw(isa.Inst{Op: op, Rd: rd, Imm: imm})
		} else {
			b.Jal(rd, Label(args[1]))
		}
	case op == isa.OpJalr:
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs1, imm, err := parseMemOperand(args[1])
		if err != nil {
			return err
		}
		b.Jalr(rd, rs1, imm)
	default:
		// Remaining ops are ALU. Distinguish R-type from I-type by the
		// third operand: register vs number.
		if err := need(3); err != nil {
			return err
		}
		rd, err := parseReg(args[0])
		if err != nil {
			return err
		}
		rs1, err := parseReg(args[1])
		if err != nil {
			return err
		}
		if rs2, rerr := parseReg(args[2]); rerr == nil {
			b.Raw(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
		} else {
			imm, ierr := parseImm(args[2])
			if ierr != nil {
				return fmt.Errorf("operand %q is neither register nor immediate", args[2])
			}
			b.Raw(isa.Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
		}
	}
	return nil
}
