// Spectre V1 end to end: the canonical bounds-check-bypass attack with a
// Flush+Reload receiver runs against each Conditional Speculation
// mechanism. On the unprotected Origin machine the attacker recovers the
// victim's secret byte for byte; under every defense mechanism the probe
// reads noise.
//
//	go run ./examples/spectre_v1
package main

import (
	"fmt"

	"conspec/internal/attack"
	"conspec/internal/config"
	"conspec/internal/core"
	"conspec/internal/pipeline"
)

func main() {
	cfg := config.PaperCore()
	// Slim outer caches: the PoC does not need 10MB of simulated SRAM.
	cfg.Mem.L2Size = 256 * 1024
	cfg.Mem.L3Size = 1024 * 1024

	h := attack.V1FlushReload(cfg)
	fmt.Printf("scenario: %s (%s)\n", h.Name, h.Class)
	fmt.Printf("planted secret: %x\n\n", h.Secret)

	for _, m := range core.Mechanisms {
		o := h.Run(cfg, pipeline.SecurityConfig{Mechanism: m})
		verdict := "DEFENDED — the probe read noise"
		if o.Leaked {
			verdict = "LEAKED — secret recovered through the cache side channel"
		}
		fmt.Printf("%-34s recovered %x  (%d/%d bytes)\n", m, o.Recovered, o.Correct, len(o.Secret))
		fmt.Printf("%34s %s\n\n", "", verdict)
	}

	fmt.Println("Try the TPBuf escape the paper documents in Table IV:")
	fmt.Println("  go run ./cmd/conspec-attack -scenario v1-samepage/prime+probe")
}
