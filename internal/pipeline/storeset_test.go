package pipeline

import (
	"testing"

	"conspec/internal/asm"
	"conspec/internal/core"
	"conspec/internal/isa"
)

// violationProgram makes the same load/store pair conflict every iteration:
// the store's address depends on a long multiply chain, and the younger
// load reads the same slot speculatively.
func violationProgram(iters int32) *asm.Program {
	b := asm.New()
	b.Li(asm.A0, 0x30000)
	b.Li(asm.S0, 0)
	b.Li(asm.S1, iters)
	b.Bind("loop")
	b.Li(asm.T0, 1)
	for i := 0; i < 8; i++ {
		b.Mul(asm.T0, asm.T0, asm.T0) // delay the store address
	}
	b.Add(asm.T1, asm.A0, asm.T0)
	b.Addi(asm.T1, asm.T1, -1) // == A0
	b.Addi(asm.T2, asm.S0, 7)
	b.St(asm.T2, asm.T1, 0) // store, address late
	b.Ld(asm.T3, asm.A0, 0) // same address, speculates past the store
	b.Add(asm.S2, asm.S2, asm.T3)
	b.Addi(asm.S0, asm.S0, 1)
	b.Blt(asm.S0, asm.S1, "loop")
	b.Halt()
	return b.MustAssemble(testBase)
}

func TestStoreSetsEliminateRepeatViolations(t *testing.T) {
	prog := violationProgram(50)
	run := func(storeSets bool) Result {
		cfg := smallCore()
		cfg.StoreSets = storeSets
		backing := isa.NewFlatMem()
		prog.Load(backing)
		cpu := NewWithMemory(cfg, SecurityConfig{Mechanism: core.Origin}, backing)
		cpu.SetPC(prog.Base)
		res := cpu.Run(3_000_000)
		if !cpu.Halted() {
			t.Fatal("no halt")
		}
		// Architectural result must be identical either way.
		if got := cpu.ArchReg(int(asm.S2)); got != 50*7+(49*50/2) {
			t.Fatalf("storeSets=%v: checksum %d", storeSets, got)
		}
		return res
	}
	without := run(false)
	with := run(true)
	if without.MemViolations < 40 {
		t.Fatalf("expected ~50 violations without the predictor, got %d", without.MemViolations)
	}
	if with.MemViolations > 5 {
		t.Fatalf("store sets should eliminate repeat violations, got %d", with.MemViolations)
	}
	if with.StoreSetStalls == 0 {
		t.Fatal("predictor should have deferred load issues")
	}
	if with.Cycles >= without.Cycles {
		t.Fatalf("eliminating squashes should be faster: %d vs %d cycles",
			with.Cycles, without.Cycles)
	}
}

func TestStoreSetsOffByDefault(t *testing.T) {
	prog := violationProgram(5)
	backing := isa.NewFlatMem()
	prog.Load(backing)
	cpu := NewWithMemory(smallCore(), SecurityConfig{Mechanism: core.Origin}, backing)
	cpu.SetPC(prog.Base)
	res := cpu.Run(1_000_000)
	if res.StoreSetStalls != 0 {
		t.Fatal("store sets must be disabled by default (paper machine)")
	}
}
