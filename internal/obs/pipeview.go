package obs

import (
	"bufio"
	"fmt"
	"io"
	"sort"
)

// PipeViewSink renders the event stream in gem5's O3PipeView trace format,
// which the Konata pipeline visualizer opens directly. Each retired (or
// squashed) instruction becomes one seven-line record:
//
//	O3PipeView:fetch:<tick>:0x<pc>:0:<seq>:<disasm>
//	O3PipeView:decode:<tick>
//	O3PipeView:rename:<tick>
//	O3PipeView:dispatch:<tick>
//	O3PipeView:issue:<tick>
//	O3PipeView:complete:<tick>
//	O3PipeView:retire:<tick>:store:0
//
// Ticks are simulator cycle numbers (cycles start at 1, so 0 is the "stage
// never reached" sentinel Konata expects for squashed instructions; a
// retire tick of 0 marks the instruction as flushed). This simulator has no
// separate decode/rename stages — both carry the dispatch cycle, preserving
// the frontend-depth gap Konata draws between fetch and dispatch. Suspect
// and filter-blocked instructions get a " [suspect]" / " [blocked]" marker
// appended to the disassembly, visible in Konata's label pane.
//
// Records accumulate from events and are written at retire/squash time, so
// attaching the sink mid-run is safe: events for instructions fetched
// before attachment are ignored.
type PipeViewSink struct {
	w    *bufio.Writer
	recs map[uint64]*pvRecord
}

type pvRecord struct {
	pc       uint64
	disasm   string
	fetch    uint64
	dispatch uint64
	issue    uint64
	complete uint64
	suspect  bool
	blocked  bool
}

// NewPipeViewSink builds an O3PipeView sink writing to w.
func NewPipeViewSink(w io.Writer) *PipeViewSink {
	return &PipeViewSink{
		w:    bufio.NewWriter(w),
		recs: make(map[uint64]*pvRecord),
	}
}

// Event accumulates stage timestamps and emits the record when the
// instruction leaves the machine.
func (p *PipeViewSink) Event(ev TraceEvent) {
	switch ev.Kind {
	case EvFetch:
		p.recs[ev.Seq] = &pvRecord{pc: ev.PC, disasm: ev.Disasm, fetch: ev.Cycle}
	case EvDispatch:
		if r := p.recs[ev.Seq]; r != nil {
			r.dispatch = ev.Cycle
		}
	case EvIssue:
		if r := p.recs[ev.Seq]; r != nil {
			r.issue = ev.Cycle
			r.suspect = r.suspect || ev.Suspect
			r.blocked = r.blocked || ev.Blocked
		}
	case EvWriteback:
		if r := p.recs[ev.Seq]; r != nil {
			r.complete = ev.Cycle
		}
	case EvCommit:
		if r := p.recs[ev.Seq]; r != nil {
			r.blocked = r.blocked || ev.Blocked
			p.emit(ev.Seq, r, ev.Cycle)
			delete(p.recs, ev.Seq)
		}
	case EvSquash:
		// Range squash: every pending record at or above the squash point
		// retires with tick 0, which Konata draws as a flushed instruction.
		p.flushFrom(ev.Seq)
	}
}

// flushFrom emits every pending record with seq >= from as squashed, in
// sequence order so the output is deterministic.
func (p *PipeViewSink) flushFrom(from uint64) {
	var seqs []uint64
	for seq := range p.recs {
		if seq >= from {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs {
		p.emit(seq, p.recs[seq], 0)
		delete(p.recs, seq)
	}
}

func (p *PipeViewSink) emit(seq uint64, r *pvRecord, retire uint64) {
	disasm := r.disasm
	if r.suspect {
		disasm += " [suspect]"
	}
	if r.blocked {
		disasm += " [blocked]"
	}
	fmt.Fprintf(p.w, "O3PipeView:fetch:%d:0x%016x:0:%d:%s\n", r.fetch, r.pc, seq, disasm)
	fmt.Fprintf(p.w, "O3PipeView:decode:%d\n", r.dispatch)
	fmt.Fprintf(p.w, "O3PipeView:rename:%d\n", r.dispatch)
	fmt.Fprintf(p.w, "O3PipeView:dispatch:%d\n", r.dispatch)
	fmt.Fprintf(p.w, "O3PipeView:issue:%d\n", r.issue)
	fmt.Fprintf(p.w, "O3PipeView:complete:%d\n", r.complete)
	fmt.Fprintf(p.w, "O3PipeView:retire:%d:store:0\n", retire)
}

// Flush emits every still-pending record as squashed (the run ended with
// them in flight) and drains the write buffer.
func (p *PipeViewSink) Flush() error {
	p.flushFrom(0)
	return p.w.Flush()
}
