package pipeline

import "conspec/internal/obs"

// Flight-recorder attachment. The recorder is an observer, not machine
// state: arming it changes no simulated behavior, so it deliberately does
// NOT participate in the stall skipper's activity signature (skip.go). A
// cycle the skipper proves inert fires no pipeline events by definition,
// and skipped spans are recorded explicitly by fastForward, so the ring's
// contents are equivalent whether or not spans were skipped — modulo the
// skip-span events themselves, which, like the SkippedCycles meta-counters,
// describe the simulator rather than the machine.

// ArmFlightRecorder attaches a flight recorder covering the last window
// cycles with an event ring of the given capacity (zero values select the
// obs defaults). Recording costs zero allocations per cycle; the ring is
// the only allocation and happens here. Re-arming replaces the ring.
func (c *CPU) ArmFlightRecorder(window uint64, capacity int) *obs.FlightRecorder {
	c.fr = obs.NewFlightRecorder(window, capacity)
	return c.fr
}

// DisarmFlightRecorder detaches the recorder; every record site reverts to
// a nil-receiver no-op.
func (c *CPU) DisarmFlightRecorder() { c.fr = nil }

// FlightRecorder returns the armed recorder (nil when disarmed).
func (c *CPU) FlightRecorder() *obs.FlightRecorder { return c.fr }

// DumpFlight renders the armed recorder's ring as of the current cycle —
// the explicit hook for convictions the machine cannot see itself, like an
// attack harness's leak check over a fault-injected run. Watchdog trips and
// audit failures dump automatically into Result.Flight. Returns nil when no
// recorder is armed or nothing was recorded.
func (c *CPU) DumpFlight() *obs.FlightDump { return c.fr.Dump(c.cycle) }
