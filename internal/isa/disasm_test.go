package isa

import (
	"strings"
	"testing"
)

// TestStringCoversEveryOpcode renders every opcode with plausible operands
// and checks the mnemonic appears and the format is parseable-looking.
func TestStringCoversEveryOpcode(t *testing.T) {
	for o := Op(0); o < opCount; o++ {
		in := Inst{Op: o, Rd: 1, Rs1: 2, Rs2: 3, Imm: 16}
		s := in.String()
		if s == "" {
			t.Fatalf("%v renders empty", o)
		}
		if !strings.HasPrefix(s, o.String()) {
			t.Errorf("%v: %q does not start with its mnemonic", o, s)
		}
	}
}

func TestStringFormats(t *testing.T) {
	cases := map[string]Inst{
		"ld x1, 16(x2)":   {Op: OpLd, Rd: 1, Rs1: 2, Imm: 16},
		"st x3, 16(x2)":   {Op: OpSt, Rs1: 2, Rs2: 3, Imm: 16},
		"clflush 16(x2)":  {Op: OpClflush, Rs1: 2, Imm: 16},
		"beq x2, x3, 16":  {Op: OpBeq, Rs1: 2, Rs2: 3, Imm: 16},
		"jal x1, 16":      {Op: OpJal, Rd: 1, Imm: 16},
		"jalr x1, 16(x2)": {Op: OpJalr, Rd: 1, Rs1: 2, Imm: 16},
		"li x1, 16":       {Op: OpLi, Rd: 1, Imm: 16},
		"rdcycle x1":      {Op: OpRdcycle, Rd: 1},
		"addi x1, x2, 16": {Op: OpAddi, Rd: 1, Rs1: 2, Imm: 16},
		"add x1, x2, x3":  {Op: OpAdd, Rd: 1, Rs1: 2, Rs2: 3},
		"fence":           {Op: OpFence},
	}
	for want, in := range cases {
		if got := in.String(); got != want {
			t.Errorf("%+v renders %q, want %q", in, got, want)
		}
	}
}

func TestOpUnitCoversAll(t *testing.T) {
	for o := Op(0); o < opCount; o++ {
		u := o.Unit()
		if u >= FUCount {
			t.Errorf("%v has invalid unit %d", o, u)
		}
		if o.IsMem() && u != FUMem {
			t.Errorf("%v: memory op must use the memory unit", o)
		}
		if o.IsControl() && u != FUBranch {
			t.Errorf("%v: control op must use the branch unit", o)
		}
	}
}
