package pipeline

import (
	"testing"

	"conspec/internal/core"
	"conspec/internal/isa"
)

// TestStageStatsInvariants pins the cross-counter relationships of the
// cycle-accounting stats across every mechanism family. The bounds are
// structural — a ready uop sits in the IQ, an IQ slot maps to a ROB entry,
// a structure can never integrate more occupancy than capacity×cycles — so
// any violation means a counter is sampled at the wrong point in step() or
// double-counted.
func TestStageStatsInvariants(t *testing.T) {
	for _, tc := range []struct {
		name string
		sec  SecurityConfig
	}{
		{"origin", SecurityConfig{Mechanism: core.Origin}},
		{"cachehit", SecurityConfig{Mechanism: core.CacheHit, Scope: core.ScopeBranchMem}},
		{"tpbuf", SecurityConfig{Mechanism: core.CacheHitTPBuf, Scope: core.ScopeBranchMem}},
		{"ssbd", SecurityConfig{Mechanism: core.Origin, SSBD: true}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			cfg := smallCore()
			prog := allocKernel()
			backing := isa.NewFlatMem()
			prog.Load(backing)
			cpu := NewWithMemory(cfg, tc.sec, backing)
			cpu.SetPC(prog.Base)
			res := cpu.Run(50_000)
			if cpu.Halted() {
				t.Fatal("kernel must not halt")
			}
			if err := cpu.CheckInvariants(); err != nil {
				t.Fatalf("pipeline invariants: %v", err)
			}

			st := res.Stages
			cyc := res.Cycles
			if res.Committed == 0 || st.IssuedUops == 0 || st.ROBOccupancy == 0 {
				t.Fatalf("dead run: committed=%d issued=%d robOcc=%d",
					res.Committed, st.IssuedUops, st.ROBOccupancy)
			}

			// Containment: ready ⊆ IQ, and both IQ slots and in-flight
			// executions hold live ROB entries.
			if st.ReadyOccupancy > st.IQOccupancy {
				t.Errorf("ready occupancy %d exceeds IQ occupancy %d",
					st.ReadyOccupancy, st.IQOccupancy)
			}
			if st.IQOccupancy > st.ROBOccupancy {
				t.Errorf("IQ occupancy %d exceeds ROB occupancy %d",
					st.IQOccupancy, st.ROBOccupancy)
			}
			if st.ExecInflight > st.ROBOccupancy {
				t.Errorf("exec in-flight %d exceeds ROB occupancy %d",
					st.ExecInflight, st.ROBOccupancy)
			}

			// Capacity: an occupancy integral can never exceed size×cycles.
			fetchQCap := uint64(cfg.FetchWidth * (cfg.FrontendDepth + 2))
			if st.FetchQOccupancy > fetchQCap*cyc {
				t.Errorf("fetchq occupancy %d exceeds capacity %d over %d cycles",
					st.FetchQOccupancy, fetchQCap, cyc)
			}
			if st.IQOccupancy > uint64(cfg.IQ)*cyc {
				t.Errorf("IQ occupancy %d exceeds capacity %d over %d cycles",
					st.IQOccupancy, cfg.IQ, cyc)
			}
			if st.ROBOccupancy > uint64(cfg.ROB)*cyc {
				t.Errorf("ROB occupancy %d exceeds capacity %d over %d cycles",
					st.ROBOccupancy, cfg.ROB, cyc)
			}

			// Bandwidth: issue and commit are width-limited, and the stall
			// counters count cycles, so neither can exceed the cycle count.
			if st.IssuedUops > uint64(cfg.IssueWidth)*cyc {
				t.Errorf("issued %d uops exceeds issue width %d over %d cycles",
					st.IssuedUops, cfg.IssueWidth, cyc)
			}
			if st.IssueIdleCycles > cyc {
				t.Errorf("issue idle cycles %d exceed total cycles %d", st.IssueIdleCycles, cyc)
			}
			if st.CommitStalls > cyc {
				t.Errorf("commit stalls %d exceed total cycles %d", st.CommitStalls, cyc)
			}
			if max := uint64(cfg.CommitWidth) * (cyc - st.CommitStalls); res.Committed > max {
				t.Errorf("committed %d exceeds commit bandwidth %d (width %d × %d non-stall cycles)",
					res.Committed, max, cfg.CommitWidth, cyc-st.CommitStalls)
			}

			// Every committed uop was issued; squashed issues make the
			// inequality strict in practice, but ≥ is the invariant.
			if st.IssuedUops < res.Committed {
				t.Errorf("issued %d uops but committed %d instructions",
					st.IssuedUops, res.Committed)
			}
		})
	}
}
