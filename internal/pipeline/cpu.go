// Package pipeline implements the cycle-driven out-of-order core the paper
// evaluates on: speculative fetch with branch prediction, register renaming,
// an issue queue with data/age/security-dependence selection, a load/store
// queue with store-to-load forwarding and memory-order violation recovery,
// and in-order commit. Wrong-path execution is modelled for real — loads on
// a mis-speculated path genuinely access and refill the caches, which is
// precisely the side channel Conditional Speculation exists to close.
//
// The security machinery from internal/core hooks in at three points:
//
//	dispatch — security dependence matrix row initialization (§V.B)
//	issue    — row-OR hazard detection assigns the suspect flag; Baseline
//	           refuses to select suspect memory instructions at all
//	L1D      — the Cache-hit filter (§V.C) discards suspect miss requests;
//	           the TPBuf filter (§V.D) rescues misses that do not complete
//	           an S-Pattern
package pipeline

import (
	"fmt"

	"conspec/internal/branch"
	"conspec/internal/config"
	"conspec/internal/core"
	"conspec/internal/isa"
	"conspec/internal/mem"
	"conspec/internal/obs"
)

// SecurityConfig selects the defense configuration under evaluation.
type SecurityConfig struct {
	Mechanism core.Mechanism
	Scope     core.Scope
	// ICacheFilter enables the §VII.B extension: next-PC fetch requests are
	// unsafe while an unresolved branch is in flight, and unsafe L1I misses
	// stall fetch instead of refilling.
	ICacheFilter bool
	// TPBufVariant selects the S-Pattern matching rule (design-space
	// ablation; VariantPaper is eq. (1)).
	TPBufVariant core.TPBufVariant
	// SSBD (speculative store bypass disable) is the V4 software/firmware
	// mitigation §VIII discusses: loads may not issue while any older store
	// in the store queue still has an unresolved address. It kills V4 at
	// the cost of all load-over-store reordering.
	SSBD bool
	// DTLBFilter enables this reproduction's own §VII.B-style extension:
	// a suspect data access whose translation MISSES the DTLB is blocked
	// before the page walk, closing the TLB-refill side channel that the
	// cache filters leave open (a discarded suspect miss still translates,
	// and a page-granular prober can time the saved walk — see DESIGN.md §8).
	DTLBFilter bool
}

// uop is one dynamic instruction flowing through the pipeline.
type uop struct {
	seq  uint64
	pc   uint64
	inst isa.Inst
	fu   isa.FU // inst.Op.Unit(), decoded once at fetch for the select loop

	// Rename state. Physical register -1 means "none"/"not needed".
	pdst, psrc1, psrc2 int
	oldPdst            int
	archRd             uint8

	// Structure indices; -1 when not allocated.
	iqIdx  int
	ldqIdx int
	stqIdx int

	// Execution state.
	dispatched bool
	issued     bool
	completed  bool
	squashed   bool
	readyAt    uint64 // frontend: earliest dispatch cycle
	// triedCycle stamps the last cycle the select logic attempted this
	// entry, replacing a per-cycle "tried" set (cycle numbers start at 1,
	// so the zero value never matches a live cycle).
	triedCycle uint64
	// ssStallCycle stamps the last cycle a store-set conflict was tallied
	// for this load, so repeated select passes count one stall per cycle.
	ssStallCycle uint64

	// Wakeup state (see ready.go). wait1/wait2 name the physical registers
	// this issue-queue entry is registered on (-1 = none); waitCnt is how
	// many are still pending; inReady marks ready-list membership.
	wait1, wait2 int
	waitCnt      int
	inReady      bool

	// Branch state.
	isBranch   bool
	predTaken  bool
	predTarget uint64
	bpCP       branch.Checkpoint
	ghrAtPred  uint64

	// Memory state.
	holdsMSHR     bool // this in-flight load occupies an MSHR
	memAddr       uint64
	addrReady     bool
	dataReady     bool   // stores: data operand delivered to the STQ entry
	fwdFromSeq    uint64 // seq of the store this load forwarded from (0 none)
	bypassedStore bool   // load issued past an older store with unknown address
	violStorePC   uint64 // PC of the store that exposed this load's violation

	// Security state.
	suspect      bool
	blockedSec   bool // currently blocked waiting for dependence clearance
	wasBlocked   bool // blocked at least once (Table V blocked-rate numerator)
	tpbufUnsafe  bool // a TPBuf UNSAFE verdict blocked this load at least once
	pendingTouch bool // deferred LRU update owed at commit (§VII.A delayed)
	parked       bool // delay-on-miss: waiting in place, off the ready list

	// Observability stamps (cycle numbers; 0 = never happened, cycles
	// start at 1). dispatchCycle anchors the suspect-window histogram;
	// discardedAt anchors the re-issue latency of filter-discarded misses.
	dispatchCycle uint64
	discardedAt   uint64

	result uint64
}

func (u *uop) class() core.Class {
	switch {
	case u.inst.Op.IsMem():
		return core.ClassMem
	case u.inst.Op.IsBranch():
		return core.ClassBranch
	default:
		return core.ClassOther
	}
}

// Result summarizes one simulation run.
type Result struct {
	Cycles    uint64
	Committed uint64
	Halted    bool

	Branch branch.Stats
	Filter core.FilterStats
	SecMat core.SecMatrixStats
	TPBuf  core.TPBufStats

	L1I, L1D, L2, L3 mem.CacheStats

	Squashes      uint64
	MemViolations uint64
	// UnresolvedBranchAtDispatch counts instructions dispatched while at
	// least one unresolved branch was in flight (§VI.C(1) analysis).
	UnresolvedBranchAtDispatch uint64
	// StoreSetStalls counts load issues deferred by the Store Sets
	// predictor (zero unless Core.StoreSets is enabled).
	StoreSetStalls uint64
	// FetchStallsICacheFilter counts cycles the §VII.B ICache-hit filter
	// stalled fetch.
	FetchStallsICacheFilter uint64
	// DTLBFilterBlocks counts suspect accesses blocked by the DTLB-hit
	// filter before their page walk (zero unless DTLBFilter is enabled).
	DTLBFilterBlocks uint64

	// Stages is the per-stage cycle-accounting counter set.
	Stages StageStats

	// Outcome classifies how the producing Run/RunFor call ended; Diag
	// carries the watchdog/audit diagnostic dump for failed outcomes (empty
	// otherwise). Hardening counts the self-checking layer's activity. All
	// three stay zero for healthy runs with the hardening layer disabled.
	Outcome   RunOutcome     `json:",omitempty"`
	Diag      string         `json:",omitempty"`
	Hardening HardeningStats `json:",omitempty"`

	// Flight is the flight recorder's dump of the last K cycles of
	// microarchitectural events, populated on the same failure paths that
	// fill Diag (watchdog trip, audit failure) when a recorder is armed.
	// Nil for healthy runs and disarmed machines.
	Flight *obs.FlightDump `json:",omitempty"`

	// Series is the sampled metric time series, populated by the exp layer
	// after the run when interval sampling was enabled (never by the cycle
	// loop itself — materializing it allocates). Nil otherwise.
	Series *obs.Series `json:",omitempty"`
}

// StageStats is a per-stage cycle-accounting counter set: occupancy
// integrals (divide by Cycles for an average) plus activity counts that
// show where cycles go without attaching a tracer. Occupancies are sampled
// at the end of each simulated cycle.
type StageStats struct {
	FetchQOccupancy uint64 // Σ fetch-queue entries per cycle
	IQOccupancy     uint64 // Σ occupied issue-queue slots per cycle
	ReadyOccupancy  uint64 // Σ ready-list (data-ready IQ) entries per cycle
	ROBOccupancy    uint64 // Σ occupied ROB entries per cycle
	ExecInflight    uint64 // Σ in-flight executions per cycle
	IssuedUops      uint64 // accepted issues
	IssueIdleCycles uint64 // cycles with a non-empty IQ and no accepted issue
	CommitStalls    uint64 // cycles with a non-empty ROB and no commit

	// Stall-skipper meta-counters (see skip.go): simulated cycles the
	// event-driven fast-forward credited without stepping, and the number
	// of skipped spans. These describe the simulator, not the machine —
	// every other statistic is byte-identical whether or not they are
	// non-zero.
	SkippedCycles uint64
	SkipSpans     uint64
}

// IPC returns committed instructions per cycle.
func (r Result) IPC() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Committed) / float64(r.Cycles)
}

// CPU is one simulated core.
type CPU struct {
	cfg  config.Core
	sec  SecurityConfig
	hier *mem.Hierarchy
	bp   *branch.Predictor

	// def is sec.Mechanism's defense contract, resolved once at construction
	// from the core defense registry (see defense.go). The cycle loop reads
	// these plain flags instead of dispatching through the Defense interface,
	// which is what keeps the steady state allocation- and virtual-call-free.
	def core.Hooks

	secmat *core.SecMatrix
	tpbuf  *core.TPBuf

	cycle uint64
	seq   uint64

	// Fetch. fetchQ is a fixed-capacity ring buffer (fqHead = oldest entry,
	// fqLen = occupancy) so steady-state fetch/dispatch never reallocates.
	fetchPC         uint64
	fetchHalted     bool
	fetchStallUntil uint64
	fetchQ          []*uop
	fqHead, fqLen   int
	fetchQCap       int

	// Rename.
	renameMap [isa.NumRegs]int
	physVal   []uint64
	physReady []bool
	freeList  []int

	// Reorder buffer (circular).
	rob      []*uop
	robHead  int
	robCount int

	// Issue queue: fixed slots, nil = free. iqCount tracks occupancy;
	// readyList holds the data-ready entries sorted by seq (see ready.go);
	// regWaiters[p] lists entries waiting on physical register p.
	iq         []*uop
	iqCount    int
	readyList  []*uop
	regWaiters [][]*uop

	// Free-slot bitmaps (bit set = slot free) replacing the O(N) nil scans
	// at dispatch; lowest set bit preserves the scans' lowest-index policy.
	iqFree  []uint64
	ldqFree []uint64
	stqFree []uint64

	// prodMask mirrors the issue queue for the security matrix: bit j is set
	// iff iq[j] holds a valid, unissued entry of a producer class under the
	// matrix scope. Maintained at dispatch, issue, and squash; it is the
	// word-wide operand of SecMatrix.OnDispatchMask. Nil when secmat is nil.
	prodMask []uint64

	// unresolvedBranches counts dispatched, uncompleted branches — the O(1)
	// replacement for the per-dispatch ROB scan (incremented at dispatch,
	// decremented at branch writeback and at squash of uncompleted branches).
	unresolvedBranches int

	// Load/store queues: fixed slots, nil = free. TPBuf entry i maps to
	// LDQ slot i; entry LDQ+j maps to STQ slot j.
	ldq []*uop
	stq []*uop

	// In-flight executions waiting for their completion cycle.
	inflight []pendingExec
	// Stores whose address issued but whose data operand is still pending.
	awaitingData []*uop
	// Parked suspect-miss loads (delay-on-miss backend): held in their IQ
	// slot, off the ready list, retried by resumeParked when their security
	// dependence row clears. Capacity LDQ — each parked load owns an LDQ slot.
	parked []*uop

	// Per-cycle functional unit usage (reset each cycle).
	fuUsed [isa.FUCount]int
	fuLim  [isa.FUCount]int // per-FU port limits, flattened from cfg at New

	// Active FENCE tracking: the oldest uncommitted fence's seq (0 = none).
	fenceSeq uint64

	// Serialization watermark (fence defense backend): seq of the oldest
	// unresolved branch (0 = none). While set, nothing younger may issue —
	// the LFENCE-after-branch model. Maintained at dispatch, branch
	// writeback, and squash; always 0 unless def.SerializeBranches.
	serializeSeq uint64

	// SSBD watermark: seq of the oldest STQ entry with an unresolved
	// address (0 = all resolved). Maintained in ready.go; replaces the
	// per-eligibility-check STQ scan.
	unresolvedStoreSeq uint64

	// Steady-state allocation elision: retired/squashed uops are pooled
	// and recycled at fetch; wbScratch is the writeback stage's completed
	// list.
	uopPool   []*uop
	wbScratch []*uop

	// Optional Store Sets memory-dependence predictor (ablation).
	storeSets *storeSets

	// outstandingMisses tracks in-flight L1D load misses for the MSHR cap.
	outstandingMisses int

	halted bool

	// Forward-progress watchdog (see watchdog.go): lastProgress is the most
	// recent committing cycle; the run fails with OutcomeDeadlock when
	// cycle-lastProgress reaches watchdogLimit (0 = disabled). runErr is the
	// sticky terminal error of a failed run. selfCheckEvery > 0 audits the
	// machine's invariants every that many cycles. faultHook, when non-nil,
	// runs once per cycle after the stages and the security clock edge —
	// the fault-injection attachment point (see fault.go).
	lastProgress   uint64
	watchdogLimit  uint64
	selfCheckEvery uint64
	runErr         error
	runOutcome     RunOutcome
	faultHook      func(*CPU)

	// sinks, when non-empty, receive one obs.TraceEvent per pipeline event
	// (see trace.go).
	sinks []obs.EventSink

	// fr, when armed, records compact microarchitectural events into a
	// fixed ring at zero allocations per cycle; failure paths dump it into
	// Result.Flight (see flight.go). Nil when disarmed — every record site
	// is a nil-receiver no-op.
	fr *obs.FlightRecorder

	// m is the attached metric set, held by value so detached metrics are
	// nil pointers and each record site is a nil-receiver no-op (see
	// metrics.go). Zero value = no metrics.
	m Metrics

	// Event-driven stall skipping (see skip.go). skipArmed is true only
	// inside a RunFor with skipping engaged (never under StepCycle, a fault
	// hook, or per-cycle self-checks); the signature pair detects inert
	// steps, and inert hands RunFor the fast-forward decision.
	skipDisabled bool
	skipArmed    bool
	sigValid     bool
	inert        bool
	sigs         [2]stepSig // alternating capture slots; sigCur indexes the next
	sigCur       int

	stats Result
	// committedTarget lets RunFor stop exactly at an instruction budget.
	committedTarget uint64
}

type pendingExec struct {
	u    *uop
	done uint64
}

// New builds a CPU over the given hierarchy. The hierarchy must have been
// created with the same mem configuration as cfg.Mem (callers typically use
// NewWithMemory or build both from the same config).
func New(cfg config.Core, sec SecurityConfig, hier *mem.Hierarchy) *CPU {
	if cfg.PhysRegs < isa.NumRegs+cfg.ROB {
		panic(fmt.Sprintf("pipeline: %d physical registers cannot cover %d arch + %d ROB",
			cfg.PhysRegs, isa.NumRegs, cfg.ROB))
	}
	fetchQCap := cfg.FetchWidth * (cfg.FrontendDepth + 2)
	c := &CPU{
		cfg:          cfg,
		sec:          sec,
		hier:         hier,
		bp:           branch.New(cfg.Predictor),
		physVal:      make([]uint64, cfg.PhysRegs),
		physReady:    make([]bool, cfg.PhysRegs),
		freeList:     make([]int, 0, cfg.PhysRegs),
		rob:          make([]*uop, cfg.ROB),
		iq:           make([]*uop, cfg.IQ),
		ldq:          make([]*uop, cfg.LDQ),
		stq:          make([]*uop, cfg.STQ),
		fetchQ:       make([]*uop, fetchQCap),
		fetchQCap:    fetchQCap,
		readyList:    make([]*uop, 0, cfg.IQ),
		regWaiters:   make([][]*uop, cfg.PhysRegs),
		inflight:     make([]pendingExec, 0, cfg.ROB),
		wbScratch:    make([]*uop, 0, cfg.ROB),
		awaitingData: make([]*uop, 0, cfg.STQ),
		parked:       make([]*uop, 0, cfg.LDQ),
	}
	c.skipDisabled = skipDefaultDisabled.Load()
	for f := isa.FU(0); f < isa.FUCount; f++ {
		c.fuLim[f] = c.fuLimit(f)
	}
	c.iqFree = newFullMask(cfg.IQ)
	c.ldqFree = newFullMask(cfg.LDQ)
	c.stqFree = newFullMask(cfg.STQ)
	c.def = resolveHooks(sec)
	if c.def.TracksDependence {
		c.secmat = core.NewSecMatrix(cfg.IQ, sec.Scope)
		c.prodMask = make([]uint64, c.secmat.Words())
	}
	if cfg.StoreSets {
		entries := cfg.StoreSetEntries
		if entries == 0 {
			entries = 1024
		}
		c.storeSets = newStoreSets(entries)
	}
	c.tpbuf = core.NewTPBuf(cfg.LDQ + cfg.STQ).SetVariant(sec.TPBufVariant)
	c.committedTarget = ^uint64(0)
	switch {
	case cfg.Watchdog < 0:
		c.watchdogLimit = 0
	case cfg.Watchdog == 0:
		c.watchdogLimit = defaultWatchdogLimit(cfg.Mem.MemLat)
	default:
		c.watchdogLimit = uint64(cfg.Watchdog)
	}
	// Registers x0..x31 start mapped to physical 0..31; all ready. Physical
	// register 0 is pinned to zero for x0.
	for r := 0; r < isa.NumRegs; r++ {
		c.renameMap[r] = r
		c.physReady[r] = true
	}
	for p := isa.NumRegs; p < cfg.PhysRegs; p++ {
		c.freeList = append(c.freeList, p)
		c.physReady[p] = true
	}
	return c
}

// NewWithMemory builds a fresh hierarchy from cfg.Mem over backing and a CPU
// on top of it.
func NewWithMemory(cfg config.Core, sec SecurityConfig, backing *isa.FlatMem) *CPU {
	return New(cfg, sec, mem.NewHierarchy(cfg.Mem, backing))
}

// Hierarchy returns the memory system (attack harnesses probe it directly).
func (c *CPU) Hierarchy() *mem.Hierarchy { return c.hier }

// Predictor exposes the branch predictor (attack harnesses train it).
func (c *CPU) Predictor() *branch.Predictor { return c.bp }

// Cycle returns the current cycle count.
func (c *CPU) Cycle() uint64 { return c.cycle }

// Halted reports whether a HALT has committed.
func (c *CPU) Halted() bool { return c.halted }

// SetPC steers fetch; call before running or after a drain.
func (c *CPU) SetPC(pc uint64) {
	c.fetchPC = pc
	c.fetchHalted = false
	c.halted = false
}

// ArchReg reads architectural register r through the rename map. The value
// is the committed state only when the pipeline is drained (after Run
// returns with Halted), which is how tests use it.
func (c *CPU) ArchReg(r int) uint64 {
	if r == 0 {
		return 0
	}
	return c.physVal[c.renameMap[r]]
}

// ResetStats zeroes all statistics counters (after cache warmup) without
// touching microarchitectural state.
func (c *CPU) ResetStats() {
	c.stats = Result{}
	c.bp.Stats = branch.Stats{}
	if c.secmat != nil {
		c.secmat.Stats = core.SecMatrixStats{}
	}
	c.tpbuf.Stats = core.TPBufStats{}
	c.hier.L1I.Stats = mem.CacheStats{}
	c.hier.L1D.Stats = mem.CacheStats{}
	c.hier.L2.Stats = mem.CacheStats{}
	c.hier.L3.Stats = mem.CacheStats{}
	c.m.sampler.Reset(c.cycle)
}

func (c *CPU) snapshotResult() Result {
	r := c.stats
	if c.storeSets != nil {
		r.StoreSetStalls = c.storeSets.Stalls
	}
	r.Branch = c.bp.Stats
	if c.secmat != nil {
		r.SecMat = c.secmat.Stats
	}
	r.TPBuf = c.tpbuf.Stats
	r.L1I = c.hier.L1I.Stats
	r.L1D = c.hier.L1D.Stats
	r.L2 = c.hier.L2.Stats
	r.L3 = c.hier.L3.Stats
	return r
}

// Run executes until HALT commits or maxCycles elapse, and returns the
// accumulated statistics since the last ResetStats.
func (c *CPU) Run(maxCycles uint64) Result {
	return c.RunFor(^uint64(0), maxCycles)
}

// RunFor executes until `insts` more instructions commit, HALT commits,
// maxCycles elapse, or the machine fails (watchdog trip or self-check
// violation — see Result.Outcome and CPU.Err).
func (c *CPU) RunFor(insts, maxCycles uint64) Result {
	c.committedTarget = c.stats.Committed + insts
	if c.committedTarget < c.stats.Committed { // overflow: no limit
		c.committedTarget = ^uint64(0)
	}
	start := c.cycle
	// Each RunFor call grants a fresh no-progress grace window; the commit
	// history of a previous (possibly drained) run must not count against it.
	if c.lastProgress < c.cycle {
		c.lastProgress = c.cycle
	}
	// Arm the stall skipper (skip.go) unless an observer needs every cycle.
	c.skipArmed = !c.skipDisabled && c.faultHook == nil && c.selfCheckEvery == 0
	c.sigValid = false
	c.inert = false
	capCycle := start + maxCycles
	if capCycle < start {
		capCycle = ^uint64(0) // saturate
	}
	for !c.halted && c.runErr == nil && c.cycle-start < maxCycles && c.stats.Committed < c.committedTarget {
		c.step()
		if c.inert {
			c.inert = false
			c.fastForward(capCycle)
		}
	}
	c.skipArmed = false
	switch {
	case c.runErr != nil:
		// tripWatchdog/failAudit set stats.Outcome at trip time, but an
		// intervening ResetStats clears it; the sticky copy survives.
		c.stats.Outcome = c.runOutcome
	case c.halted:
		c.stats.Outcome = OutcomeHalted
	case c.stats.Committed >= c.committedTarget:
		c.stats.Outcome = OutcomeInstTarget
	default:
		c.stats.Outcome = OutcomeCycleCapExceeded
	}
	return c.snapshotResult()
}

// StepCycle advances the machine by exactly one cycle; multi-core harnesses
// (Duo) interleave cores with it. Single-core users should prefer Run.
func (c *CPU) StepCycle() {
	if !c.halted && c.runErr == nil {
		c.step()
	}
}

// Result returns the statistics accumulated since the last ResetStats.
func (c *CPU) Result() Result { return c.snapshotResult() }

// step advances the machine by one cycle. Stages run back-to-front so that
// same-cycle structural hazards resolve the way real pipelines do.
func (c *CPU) step() {
	c.cycle++
	c.stats.Cycles++
	for i := range c.fuUsed {
		c.fuUsed[i] = 0
	}
	committedBefore := c.stats.Committed
	c.commitStage()
	if c.halted {
		return
	}
	if c.robCount > 0 && c.stats.Committed == committedBefore {
		c.stats.Stages.CommitStalls++
	}
	c.writebackStage()
	c.issueStage()
	c.dispatchStage()
	c.fetchStage()
	if c.secmat != nil {
		c.secmat.ClockEdge()
	}
	st := &c.stats.Stages
	st.FetchQOccupancy += uint64(c.fqLen)
	st.IQOccupancy += uint64(c.iqCount)
	st.ReadyOccupancy += uint64(len(c.readyList))
	st.ROBOccupancy += uint64(c.robCount)
	st.ExecInflight += uint64(len(c.inflight))
	if c.m.enabled() {
		c.sampleCycle()
	}
	// Hardening layer. The fault hook fires after the stages and the
	// security clock edge, immediately before the checks, so a same-cycle
	// self-check sweep sees an injected corruption before any stage logic
	// can react to (or mask) it. Steady-state cost with everything
	// disabled/healthy: two predicted branches and one compare.
	if c.faultHook != nil {
		c.faultHook(c)
	}
	if c.stats.Committed != committedBefore {
		c.lastProgress = c.cycle
	} else if c.watchdogLimit != 0 && c.cycle-c.lastProgress >= c.watchdogLimit {
		c.tripWatchdog()
	}
	if c.selfCheckEvery != 0 && c.cycle%c.selfCheckEvery == 0 && c.runErr == nil {
		c.stats.Hardening.SelfCheckSweeps++
		c.m.selfcheckSweeps.Inc()
		if err := c.CheckInvariants(); err != nil {
			c.stats.Hardening.SelfCheckViolations++
			c.m.selfcheckViolations.Inc()
			c.failAudit(err)
		}
	}
	if c.skipArmed && c.runErr == nil {
		c.noteSig()
	}
}

// robAt returns the uop at ROB position (head+i)%size.
func (c *CPU) robAt(i int) *uop {
	return c.rob[(c.robHead+i)%len(c.rob)]
}

// robFull reports whether the ROB has no free entry.
func (c *CPU) robFull() bool { return c.robCount == len(c.rob) }

func (c *CPU) robPush(u *uop) {
	c.rob[(c.robHead+c.robCount)%len(c.rob)] = u
	c.robCount++
}

// unresolvedBranchInFlight reports whether any dispatched branch has not
// completed — the §VII.B ICache filter's "unsafe NPC" condition and the
// §VI.C(1) unresolved-branch statistic. O(1): the counter is maintained at
// dispatch, branch writeback, and squash (CheckInvariants recomputes it
// from the ROB).
func (c *CPU) unresolvedBranchInFlight() bool {
	return c.unresolvedBranches > 0
}
