package pipeline

import "conspec/internal/obs"

// Metrics is the pipeline's typed view of an obs.Registry: the
// security-attribution distributions the paper's evaluation is built on
// (suspect windows, discarded-miss re-issue latencies, TPBuf activity,
// squash depths) plus structure-occupancy histograms and gauge-func bridges
// into the statistics the machine already maintains.
//
// A CPU with no metrics attached holds the zero Metrics value: every
// recording field is nil and each record site is one nil-check branch (see
// internal/obs). With metrics attached, recording is array writes only, so
// the cycle loop keeps its zero-allocation guarantee.
type Metrics struct {
	// Registry is the underlying metric registry; callers may register
	// additional metrics on it before attaching.
	Registry *obs.Registry

	// The sampler is built lazily in AttachMetrics, after bindCPU has
	// registered the gauge columns, so its stride and row preallocation
	// see the final column set.
	sampler        *obs.Sampler
	sampleInterval uint64
	sampleRows     int
	bound          bool

	// Security-hazard distributions (the §VIII attribution data).
	suspectWindow  *obs.Histogram // dispatch -> dependence-clear cycles
	reissueLatency *obs.Histogram // filter discard -> successful re-issue
	squashDepth    *obs.Histogram // ROB entries removed per squash
	dataAccessLat  *obs.Histogram // refilling data-access latency (mem-side)

	// Structure occupancies, observed once per cycle.
	fetchQOcc *obs.Histogram
	iqOcc     *obs.Histogram
	readyOcc  *obs.Histogram
	robOcc    *obs.Histogram
	tpbufOcc  *obs.Histogram // TPBuf shadows the LSQ 1:1, so this is LSQ occupancy too

	// tpbufUnsafeCommitted counts committed loads that a TPBuf UNSAFE
	// verdict blocked — architecturally benign blocks, i.e. the filter's
	// false positives.
	tpbufUnsafeCommitted *obs.Counter

	// Hardening-layer activity (see watchdog.go and fault.go): all zero on
	// healthy runs with selfcheck off and no injector attached.
	watchdogTrips       *obs.Counter
	selfcheckSweeps     *obs.Counter
	selfcheckViolations *obs.Counter
	faultsInjected      *obs.Counter

	// Stall-skipper activity (see skip.go). Registered unsampled: they
	// describe the simulator, not the simulated machine, and must not make
	// the sampled series differ between skip-enabled and -disabled runs.
	skippedCycles *obs.Counter
	skipSpans     *obs.Counter
}

// NewMetrics builds a registry populated with the pipeline's standard
// metric set. Attach it to a CPU with AttachMetrics; call EnableSampling
// first to also record the interval time series.
func NewMetrics() *Metrics {
	r := obs.NewRegistry()
	return &Metrics{
		Registry:             r,
		suspectWindow:        r.Histogram("suspect_window_cycles", obs.DefaultBounds),
		reissueLatency:       r.Histogram("reissue_latency_cycles", obs.DefaultBounds),
		squashDepth:          r.Histogram("squash_depth", obs.DefaultBounds),
		dataAccessLat:        r.Histogram("data_access_latency_cycles", obs.DefaultBounds),
		fetchQOcc:            r.Histogram("fetchq_occupancy", obs.DefaultBounds),
		iqOcc:                r.Histogram("iq_occupancy", obs.DefaultBounds),
		readyOcc:             r.Histogram("ready_occupancy", obs.DefaultBounds),
		robOcc:               r.Histogram("rob_occupancy", obs.DefaultBounds),
		tpbufOcc:             r.Histogram("tpbuf_occupancy", obs.DefaultBounds),
		tpbufUnsafeCommitted: r.Counter("tpbuf_unsafe_committed"),
		watchdogTrips:        r.Counter("watchdog_trips"),
		selfcheckSweeps:      r.Counter("selfcheck_sweeps"),
		selfcheckViolations:  r.Counter("selfcheck_violations"),
		faultsInjected:       r.Counter("faults_injected"),
		skippedCycles:        r.CounterUnsampled("skipped_cycles"),
		skipSpans:            r.CounterUnsampled("skip_spans"),
	}
}

// EnableSampling arms the interval time series: every interval cycles the
// registry is snapshotted into one row. capacityRows preallocates the row
// storage — size it to cover the measured window when the run must stay
// allocation-free (rows beyond capacity grow by append). Call before
// AttachMetrics, which constructs the sampler once the CPU's gauge columns
// are registered.
func (m *Metrics) EnableSampling(interval uint64, capacityRows int) {
	m.sampleInterval, m.sampleRows = interval, capacityRows
}

// Series exports the sampled time series plus final histogram
// distributions (nil when sampling was not enabled).
func (m *Metrics) Series() *obs.Series { return m.sampler.Series() }

// enabled reports whether this is a live metric set (used by per-cycle
// grouped record sites; individual sites rely on nil-safe methods).
func (m *Metrics) enabled() bool { return m.Registry != nil }

// AttachMetrics wires m into the CPU: recording sites start writing into
// its histograms/counters, the per-run statistics the machine already
// keeps (Result counters, cache/branch/TPBuf stats) are registered as
// sampled gauge readouts, and the memory hierarchy's latency histogram is
// attached. A nil m detaches. A Metrics instance observes one CPU for one
// run; build a fresh one per machine.
func (c *CPU) AttachMetrics(m *Metrics) {
	if m == nil {
		c.m = Metrics{}
		c.hier.DataLat = nil
		return
	}
	if !m.bound {
		m.bound = true
		m.bindCPU(c)
	}
	if m.sampleInterval > 0 && m.sampler == nil {
		m.sampler = obs.NewSampler(m.Registry, m.sampleInterval, m.sampleRows)
	}
	c.m = *m
	c.hier.DataLat = m.dataAccessLat
}

// bindCPU registers gauge-func readouts over the statistics the machine
// maintains anyway — the sampler calls them only at interval boundaries,
// so the hot path pays nothing for them.
func (m *Metrics) bindCPU(c *CPU) {
	r := m.Registry
	r.GaugeFunc("committed", func() uint64 { return c.stats.Committed })
	r.GaugeFunc("squashes", func() uint64 { return c.stats.Squashes })
	r.GaugeFunc("mem_violations", func() uint64 { return c.stats.MemViolations })
	r.GaugeFunc("issued_uops", func() uint64 { return c.stats.Stages.IssuedUops })
	r.GaugeFunc("issue_idle_cycles", func() uint64 { return c.stats.Stages.IssueIdleCycles })
	r.GaugeFunc("commit_stalls", func() uint64 { return c.stats.Stages.CommitStalls })

	r.GaugeFunc("suspect_issued", func() uint64 { return c.stats.Filter.SuspectIssued })
	r.GaugeFunc("suspect_l1_hits", func() uint64 { return c.stats.Filter.SuspectL1Hits })
	r.GaugeFunc("suspect_l1_misses", func() uint64 { return c.stats.Filter.SuspectL1Misses })
	r.GaugeFunc("blocked_events", func() uint64 { return c.stats.Filter.BlockedEvents })
	r.GaugeFunc("blocked_insts", func() uint64 { return c.stats.Filter.BlockedInsts })
	r.GaugeFunc("committed_mem_insts", func() uint64 { return c.stats.Filter.CommittedMemInsts })
	r.GaugeFunc("dtlb_filter_blocks", func() uint64 { return c.stats.DTLBFilterBlocks })

	r.GaugeFunc("tpbuf_queries", func() uint64 { return c.tpbuf.Stats.Queries })
	r.GaugeFunc("tpbuf_unsafe", func() uint64 { return c.tpbuf.Stats.Unsafe })
	r.GaugeFunc("tpbuf_safe", func() uint64 { return c.tpbuf.Stats.Safe })
	r.GaugeFunc("tpbuf_allocs", func() uint64 { return c.tpbuf.Stats.Allocs })

	r.GaugeFunc("branch_cond_predicts", func() uint64 { return c.bp.Stats.CondPredicts })
	r.GaugeFunc("branch_cond_mispredicts", func() uint64 { return c.bp.Stats.CondMispredict })

	r.GaugeFunc("l1d_accesses", func() uint64 { return c.hier.L1D.Stats.Accesses })
	r.GaugeFunc("l1d_misses", func() uint64 { return c.hier.L1D.Stats.Misses })
	r.GaugeFunc("l1i_misses", func() uint64 { return c.hier.L1I.Stats.Misses })
	r.GaugeFunc("l2_misses", func() uint64 { return c.hier.L2.Stats.Misses })
	r.GaugeFunc("l3_misses", func() uint64 { return c.hier.L3.Stats.Misses })
}

// sampleCycle records the per-cycle occupancy observations and gives the
// sampler its chance to snapshot; called once per cycle from step() when a
// metric set is attached.
func (c *CPU) sampleCycle() {
	m := &c.m
	m.fetchQOcc.Observe(uint64(c.fqLen))
	m.iqOcc.Observe(uint64(c.iqCount))
	m.readyOcc.Observe(uint64(len(c.readyList)))
	m.robOcc.Observe(uint64(c.robCount))
	m.tpbufOcc.Observe(uint64(c.tpbuf.Occupancy()))
	m.sampler.MaybeSample(c.cycle)
}
