package mem

import (
	"testing"

	"conspec/internal/isa"
)

func testConfig() HierarchyConfig {
	return HierarchyConfig{
		LineBytes: 64,
		L1ISize:   4 * 1024, L1IWays: 4, L1ILat: 2,
		L1DSize: 4 * 1024, L1DWays: 4, L1DLat: 2,
		L2Size: 32 * 1024, L2Ways: 8, L2Lat: 10,
		L3Size: 128 * 1024, L3Ways: 8, L3Lat: 60,
		MemLat:      192,
		ITLBEntries: 8, DTLBEntries: 8, PageWalkLat: 30,
	}
}

func newTestHierarchy(p UpdatePolicy) *Hierarchy {
	cfg := testConfig()
	cfg.L1DUpdate = p
	return NewHierarchy(cfg, isa.NewFlatMem())
}

func TestHierarchyColdMissWarmsAllLevels(t *testing.T) {
	h := newTestHierarchy(UpdateAlways)
	addr := uint64(0x10000)
	r := h.AccessData(addr, false)
	if r.Level != LevelMem {
		t.Fatalf("cold access hit %v", r.Level)
	}
	if r.Latency < h.MemLat {
		t.Fatalf("cold latency %d < memory latency %d", r.Latency, h.MemLat)
	}
	if !h.L1D.Probe(addr) || !h.L2.Probe(addr) || !h.L3.Probe(addr) {
		t.Fatal("refill must install the line at every level")
	}
	r2 := h.AccessData(addr, false)
	if r2.Level != LevelL1 || r2.Latency != h.L1D.HitLat {
		t.Fatalf("warm access: level %v lat %d", r2.Level, r2.Latency)
	}
	if r.PPN != addr>>isa.PageBits {
		t.Fatalf("PPN = %#x", r.PPN)
	}
}

func TestHierarchyLatencyOrdering(t *testing.T) {
	h := newTestHierarchy(UpdateAlways)
	addr := uint64(0x40000)
	memLat := h.AccessData(addr, false).Latency // cold: TLB walk + mem
	l1Lat := h.AccessData(addr, false).Latency
	h.L1D.Flush(addr)
	l2Lat := h.AccessData(addr, false).Latency
	h.L1D.Flush(addr)
	h.L2.Flush(addr)
	l3Lat := h.AccessData(addr, false).Latency
	if !(l1Lat < l2Lat && l2Lat < l3Lat && l3Lat < memLat) {
		t.Fatalf("latency ordering violated: L1=%d L2=%d L3=%d Mem=%d",
			l1Lat, l2Lat, l3Lat, memLat)
	}
}

func TestHierarchyFlushRemovesEverywhere(t *testing.T) {
	h := newTestHierarchy(UpdateAlways)
	addr := uint64(0x2000)
	h.AccessData(addr, false)
	h.Flush(addr)
	if h.L1D.Probe(addr) || h.L2.Probe(addr) || h.L3.Probe(addr) {
		t.Fatal("flush must clear all levels")
	}
	if r := h.AccessData(addr, false); r.Level != LevelMem {
		t.Fatalf("after flush access hit %v", r.Level)
	}
}

func TestHitOnlyAccessDiscardssMiss(t *testing.T) {
	h := newTestHierarchy(UpdateAlways)
	addr := uint64(0x3000)
	if _, ok := h.AccessL1DHitOnly(addr, true); ok {
		t.Fatal("cold hit-only access must miss")
	}
	// The defining property: the discarded miss refilled NOTHING.
	if h.L1D.Probe(addr) || h.L2.Probe(addr) || h.L3.Probe(addr) {
		t.Fatal("discarded miss must not change cache content")
	}
	// Warm the line normally; hit-only now succeeds.
	h.AccessData(addr, false)
	r, ok := h.AccessL1DHitOnly(addr, true)
	if !ok || r.Level != LevelL1 {
		t.Fatalf("expected L1 hit, got ok=%v level=%v", ok, r.Level)
	}
}

func TestNoSpecUpdatePolicy(t *testing.T) {
	h := newTestHierarchy(UpdateNoSpec)
	// Fill one L1D set (4 ways); stride = sets*64.
	stride := uint64(h.L1D.Sets() * h.L1D.LineBytes())
	base := uint64(0)
	for i := 0; i < 4; i++ {
		h.AccessData(base+uint64(i)*stride, false)
	}
	// Suspect hit on way 0 must NOT refresh LRU...
	r := h.AccessData(base, true)
	if r.Level != LevelL1 || r.PendingTouch {
		t.Fatalf("unexpected result %+v", r)
	}
	// ...so a new line evicts way 0 despite the recent suspect hit.
	h.AccessData(base+4*stride, false)
	if h.L1D.Probe(base) {
		t.Fatal("no-update policy: suspect hit must not protect the line")
	}
}

func TestDelayedUpdatePolicy(t *testing.T) {
	h := newTestHierarchy(UpdateDelayed)
	stride := uint64(h.L1D.Sets() * h.L1D.LineBytes())
	base := uint64(0)
	for i := 0; i < 4; i++ {
		h.AccessData(base+uint64(i)*stride, false)
	}
	r := h.AccessData(base, true)
	if !r.PendingTouch {
		t.Fatal("delayed policy must report a pending touch on suspect hits")
	}
	// Pipeline applies the touch when the access becomes non-speculative.
	h.TouchL1D(base)
	h.AccessData(base+4*stride, false)
	if !h.L1D.Probe(base) {
		t.Fatal("after deferred touch the line must be MRU-protected")
	}
}

func TestAlwaysPolicySuspectHitTouches(t *testing.T) {
	h := newTestHierarchy(UpdateAlways)
	stride := uint64(h.L1D.Sets() * h.L1D.LineBytes())
	for i := 0; i < 4; i++ {
		h.AccessData(uint64(i)*stride, false)
	}
	r := h.AccessData(0, true) // suspect hit under conventional policy
	if r.PendingTouch {
		t.Fatal("always policy never defers")
	}
	h.AccessData(4*stride, false)
	if !h.L1D.Probe(0) {
		t.Fatal("always policy: suspect hit protects the line")
	}
}

func TestAccessInstWarmsL1I(t *testing.T) {
	h := newTestHierarchy(UpdateAlways)
	pc := uint64(0x1000)
	r := h.AccessInst(pc)
	if r.Level != LevelMem {
		t.Fatalf("cold fetch hit %v", r.Level)
	}
	r = h.AccessInst(pc)
	if r.Level != LevelL1 {
		t.Fatalf("warm fetch hit %v", r.Level)
	}
	if !h.ProbeL1I(pc) {
		t.Fatal("ProbeL1I must see the line")
	}
	if h.L1D.Probe(pc) {
		t.Fatal("instruction fetch must not pollute L1D")
	}
}

func TestTLBMissChargesWalk(t *testing.T) {
	h := newTestHierarchy(UpdateAlways)
	addr := uint64(0x5000)
	cold := h.AccessData(addr, false)
	warm := h.AccessData(addr+8, false) // same page, now TLB-warm, L1-warm line? +8 same line
	if cold.Latency-warm.Latency < h.DTLB.WalkLat {
		t.Fatalf("cold=%d warm=%d: TLB walk not charged", cold.Latency, warm.Latency)
	}
}

func TestTLBLRUAndProbe(t *testing.T) {
	tlb := NewTLB("t", 2, 30)
	a, b, c := uint64(0), uint64(1)<<isa.PageBits, uint64(2)<<isa.PageBits
	tlb.Translate(a)
	tlb.Translate(b)
	if !tlb.Probe(a) || !tlb.Probe(b) {
		t.Fatal("both pages must be cached")
	}
	tlb.Translate(a) // a MRU
	tlb.Translate(c) // evicts b
	if tlb.Probe(b) {
		t.Fatal("b must have been evicted (LRU)")
	}
	if !tlb.Probe(a) || !tlb.Probe(c) {
		t.Fatal("a and c must remain")
	}
	if ppn, lat := tlb.Translate(a); ppn != 0 || lat != 0 {
		t.Fatalf("hit translate = %d lat %d", ppn, lat)
	}
	tlb.InvalidateAll()
	if tlb.Probe(a) {
		t.Fatal("invalidate-all must clear entries")
	}
}

func TestHierarchyDataReadWrite(t *testing.T) {
	h := newTestHierarchy(UpdateAlways)
	h.WriteData(0x8000, 8, 0xABCD)
	if got := h.ReadData(0x8000, 8); got != 0xABCD {
		t.Fatalf("read %#x", got)
	}
}

func TestInvalidateAll(t *testing.T) {
	h := newTestHierarchy(UpdateAlways)
	h.AccessData(0x1234, false)
	h.AccessInst(0x5678)
	h.InvalidateAll()
	if h.L1D.Resident()+h.L1I.Resident()+h.L2.Resident()+h.L3.Resident() != 0 {
		t.Fatal("caches not empty after InvalidateAll")
	}
}

func TestNextLinePrefetch(t *testing.T) {
	cfg := testConfig()
	cfg.NextLinePrefetch = true
	h := NewHierarchy(cfg, isa.NewFlatMem())
	addr := uint64(0x10000)
	h.AccessData(addr, false) // miss: fills addr and prefetches addr+64
	if !h.L1D.Probe(addr + 64) {
		t.Fatal("next line not prefetched")
	}
	if h.Prefetches != 1 {
		t.Fatalf("prefetch count %d", h.Prefetches)
	}
	// The prefetched line must now hit without a miss.
	if r := h.AccessData(addr+64, false); r.Level != LevelL1 {
		t.Fatalf("prefetched line hit at %v", r.Level)
	}
	// Resident prefetch targets are not refilled again.
	h.AccessData(addr+8, false) // same first line: hit, no prefetch issued?
	if h.Prefetches != 1 {
		t.Fatalf("hits must not prefetch, count %d", h.Prefetches)
	}
}

func TestPrefetchOffByDefault(t *testing.T) {
	h := newTestHierarchy(UpdateAlways)
	h.AccessData(0x9000, false)
	if h.L1D.Probe(0x9040) || h.Prefetches != 0 {
		t.Fatal("prefetcher must default off (paper configuration)")
	}
}

func TestNoRefillAccessInvisible(t *testing.T) {
	h := newTestHierarchy(UpdateAlways)
	addr := uint64(0x7000)
	r := h.AccessDataNoRefill(addr)
	if r.Level != LevelMem {
		t.Fatalf("cold invisible access hit %v", r.Level)
	}
	if h.L1D.Probe(addr) || h.L2.Probe(addr) || h.L3.Probe(addr) {
		t.Fatal("invisible access must not refill anything")
	}
	// Warm via a normal access: the invisible access then reports L1 and
	// still changes nothing (LRU untouched is covered by cache tests).
	h.AccessData(addr, false)
	if r := h.AccessDataNoRefill(addr); r.Level != LevelL1 {
		t.Fatalf("invisible access on warm line hit %v", r.Level)
	}
}
