#!/bin/sh
# fleet-smoke: end-to-end check of the distributed execution tier.
#
# Phase 1 — speedup: a batch of six jobs — the eight registered defenses
# split into three disjoint subset jobs, submitted by two "clients"
# concurrently (so each subset appears twice) — first on a standalone
# memory-only server, then on a coordinator with three leased workers.
# The fleet spreads the subsets across its workers AND coalesces the
# duplicate submissions onto single leases, so it must finish the batch
# strictly faster even on one CPU; the result document must be identical
# to the standalone one (modulo engine cache accounting).
#
# Phase 2 — durability: submit a long serialized suite to the fleet, wait
# until its worker has published some finished simulations to the
# coordinator's result store, then kill -9 that worker mid-lease. The job
# must be re-queued to a surviving worker and complete with ZERO lost
# results — every simulation published before the kill comes back as a
# remote store hit, never re-executed — all verified through /metrics.
#
# Phase 3 — drain: conspec-ctl workers drain takes a worker out of rotation.
set -eu

GO=${GO:-go}
tmp=$(mktemp -d)
pids=""
cleanup() {
    for p in $pids; do kill -9 "$p" 2>/dev/null || true; done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

echo "fleet-smoke: building binaries"
$GO build -o "$tmp/bin/" ./cmd/conspec-served ./cmd/conspec-ctl

ctl() { "$tmp/bin/conspec-ctl" "$@"; }
now_ms() { date +%s%N | cut -c1-13; }

wait_listening() {
    # wait_listening <logfile> -> exports CONSPEC_SERVER
    i=0
    while [ $i -lt 100 ]; do
        CONSPEC_SERVER=$(sed -n 's#.*listening on \(http://[0-9.:]*\).*#\1#p' "$1" | head -1)
        if [ -n "$CONSPEC_SERVER" ]; then
            export CONSPEC_SERVER
            return 0
        fi
        i=$((i + 1))
        sleep 0.1
    done
    echo "fleet-smoke: server never announced its address" >&2
    cat "$1" >&2
    exit 1
}

metric() { ctl metrics | sed -n "s/^conspec_served_$1 //p"; }

# Sum of one pushed per-worker counter across the whole fleet.
worker_metric_sum() {
    ctl metrics | awk -v m="conspec_served_worker_$1" \
        'index($0, m "{") == 1 { s += $2 } END { print s + 0 }'
}

# The three jobs partition the eight registered defense backends.
SUBSET1="origin,baseline,cachehit"
SUBSET2="cachehit+tpbuf,ssbd,fence"
SUBSET3="delay-on-miss,invisispec"
BENCH=astar
WARMUP=5000
MEASURE=400000

submit_subset() {
    ctl submit -suite defenses -benches $BENCH -defenses "$1" \
        -warmup $WARMUP -measure $MEASURE
}

# Engine cache accounting legitimately differs between a cold standalone
# run and a fleet run (fleet workers publish every simulation to the
# coordinator store); strip it before comparing result documents.
strip_engine_stats() {
    grep -v '"executed"\|"mem_hits"\|"disk_hits"\|"submitted"\|"skipped_cycles"\|"skip_spans"' "$1"
}

echo "fleet-smoke: phase 1a — three defense-subset jobs on a standalone server"
solo_log="$tmp/solo.log"
"$tmp/bin/conspec-served" -addr 127.0.0.1:0 -workers 1 -sim-workers 1 >"$solo_log" 2>&1 &
solo_pid=$!
pids="$pids $solo_pid"
wait_listening "$solo_log"

solo_t0=$(now_ms)
j1=$(submit_subset "$SUBSET1")
j2=$(submit_subset "$SUBSET2")
j3=$(submit_subset "$SUBSET3")
d1=$(submit_subset "$SUBSET1")
d2=$(submit_subset "$SUBSET2")
d3=$(submit_subset "$SUBSET3")
ctl watch "$j1" >"$tmp/solo1.json" 2>/dev/null
for j in "$j2" "$j3" "$d1" "$d2" "$d3"; do
    ctl watch "$j" >/dev/null 2>&1
done
solo_ms=$(($(now_ms) - solo_t0))
# Standalone jobs report no worker assignment — the field is fleet-only.
if ctl get "$j1" | grep -q '"worker"'; then
    echo "fleet-smoke: standalone job unexpectedly carries a worker field" >&2
    exit 1
fi
kill -TERM "$solo_pid" && wait "$solo_pid" 2>/dev/null || true
echo "fleet-smoke: standalone batch took ${solo_ms}ms"

echo "fleet-smoke: phase 1b — the same batch on a coordinator with 3 workers"
coord_log="$tmp/coord.log"
"$tmp/bin/conspec-served" -role coordinator -addr 127.0.0.1:0 \
    -cache-dir "$tmp/coord-cache" -data-dir "$tmp/coord-data" \
    -heartbeat 500ms -heartbeat-timeout 2s >"$coord_log" 2>&1 &
coord_pid=$!
pids="$pids $coord_pid"
wait_listening "$coord_log"

for i in 1 2 3; do
    "$tmp/bin/conspec-served" -role worker -join "$CONSPEC_SERVER" \
        -worker-name "w$i" -slots 1 -sim-workers 1 \
        -cache-dir "$tmp/w$i-cache" >"$tmp/w$i.log" 2>&1 &
    eval "w${i}_pid=$!"
    pids="$pids $!"
done

i=0
while [ "$(ctl workers 2>/dev/null | grep -c ' up ')" -lt 3 ]; do
    i=$((i + 1))
    if [ $i -gt 100 ]; then
        echo "fleet-smoke: 3 workers never registered" >&2
        ctl workers >&2 || true
        cat "$tmp"/w*.log >&2
        exit 1
    fi
    sleep 0.1
done

fleet_t0=$(now_ms)
f1=$(submit_subset "$SUBSET1")
f2=$(submit_subset "$SUBSET2")
f3=$(submit_subset "$SUBSET3")
g1=$(submit_subset "$SUBSET1")
g2=$(submit_subset "$SUBSET2")
g3=$(submit_subset "$SUBSET3")
ctl watch "$f1" >"$tmp/fleet1.json" 2>/dev/null
for j in "$f2" "$f3" "$g1" "$g2" "$g3"; do
    ctl watch "$j" >/dev/null 2>&1
done
fleet_ms=$(($(now_ms) - fleet_t0))
echo "fleet-smoke: fleet batch took ${fleet_ms}ms"

if [ "$fleet_ms" -ge "$solo_ms" ]; then
    echo "fleet-smoke: fleet (${fleet_ms}ms) was not faster than standalone (${solo_ms}ms)" >&2
    exit 1
fi
# The duplicate submissions must have coalesced onto the first three
# leases instead of executing again.
coalesced=$(metric fleet_leases_coalesced_total)
if [ "${coalesced:-0}" -lt 3 ]; then
    echo "fleet-smoke: fleet_leases_coalesced_total = ${coalesced:-0}, want >= 3" >&2
    exit 1
fi

# Fleet jobs carry their executing worker in the job document and listing.
worker1=$(ctl get "$f1" | sed -n 's/.*"worker": "\([^"]*\)".*/\1/p' | head -1)
case "$worker1" in
w1 | w2 | w3) ;;
*)
    echo "fleet-smoke: job $f1 has no worker assignment (got '$worker1')" >&2
    exit 1
    ;;
esac
ctl list | grep -F "$f1" | grep -q "@$worker1" || {
    echo "fleet-smoke: list output missing @$worker1 annotation" >&2
    ctl list >&2
    exit 1
}

if ! strip_engine_stats "$tmp/solo1.json" >"$tmp/solo1.stripped" ||
    ! strip_engine_stats "$tmp/fleet1.json" >"$tmp/fleet1.stripped" ||
    ! cmp -s "$tmp/solo1.stripped" "$tmp/fleet1.stripped"; then
    echo "fleet-smoke: fleet result differs from standalone result" >&2
    diff "$tmp/solo1.stripped" "$tmp/fleet1.stripped" >&2 || true
    exit 1
fi
echo "fleet-smoke: phase 1 OK (fleet ${fleet_ms}ms < standalone ${solo_ms}ms, identical results)"

echo "fleet-smoke: phase 2 — kill -9 a worker mid-lease"
puts_before=$(metric fleet_result_puts_total)
remote_hits_before=$(worker_metric_sum cache_hits_remote_total)

# A long serialized suite: enough runs that the worker is nowhere near
# done when the first results land in the coordinator store.
lru=$(ctl submit -suite lru -benches $BENCH -warmup 2000 -measure 300000)
# Find the worker executing it, then wait until it has durably published a
# few finished simulations to the coordinator.
i=0
victim=""
while [ -z "$victim" ]; do
    victim=$(ctl get "$lru" | sed -n 's/.*"worker": "\([^"]*\)".*/\1/p' | head -1)
    i=$((i + 1))
    [ $i -gt 300 ] && { echo "fleet-smoke: lru job never leased" >&2; exit 1; }
    sleep 0.1
done
i=0
while :; do
    puts=$(metric fleet_result_puts_total)
    [ $((puts - puts_before)) -ge 3 ] && break
    i=$((i + 1))
    [ $i -gt 600 ] && { echo "fleet-smoke: no results published before kill" >&2; exit 1; }
    sleep 0.05
done
pre_kill=$((puts - puts_before))

eval "victim_pid=\$${victim}_pid"
kill -9 "$victim_pid"
echo "fleet-smoke: killed -9 worker $victim (pid $victim_pid) with $pre_kill simulations published"

# The job must still complete (re-queued to a surviving worker)...
ctl watch "$lru" >"$tmp/lru.json" 2>/dev/null
grep -q '"lru"' "$tmp/lru.json" || {
    echo "fleet-smoke: recovered lru job produced no lru section" >&2
    exit 1
}
# ...on a different worker...
worker2=$(ctl get "$lru" | sed -n 's/.*"worker": "\([^"]*\)".*/\1/p' | head -1)
if [ "$worker2" = "$victim" ] || [ -z "$worker2" ]; then
    echo "fleet-smoke: job finished on '$worker2', expected a surviving worker" >&2
    exit 1
fi
# ...via exactly the lease-requeue path...
requeued=$(metric fleet_leases_requeued_total)
if [ "${requeued:-0}" -lt 1 ]; then
    echo "fleet-smoke: fleet_leases_requeued_total = ${requeued:-0}, want >= 1" >&2
    exit 1
fi
# ...and with zero lost results: everything published before the kill was
# fetched back from the coordinator store instead of re-executed.
remote_hits=$(worker_metric_sum cache_hits_remote_total)
if [ $((remote_hits - remote_hits_before)) -lt "$pre_kill" ]; then
    echo "fleet-smoke: only $((remote_hits - remote_hits_before)) remote hits after recovery, want >= $pre_kill (results were lost)" >&2
    ctl metrics >&2
    exit 1
fi
ctl workers | grep -E "^$victim +lost" >/dev/null || {
    echo "fleet-smoke: $victim not marked lost" >&2
    ctl workers >&2
    exit 1
}
echo "fleet-smoke: phase 2 OK (job finished on $worker2; $pre_kill pre-kill simulations reused from the store)"

echo "fleet-smoke: phase 3 — drain a worker"
ctl workers drain "$worker2" >/dev/null
ctl workers | grep -E "^$worker2 +draining" >/dev/null || {
    echo "fleet-smoke: $worker2 not draining after ctl workers drain" >&2
    ctl workers >&2
    exit 1
}

echo "fleet-smoke: OK"
