#!/bin/sh
# lint_defense.sh — enforce the Defense-registry boundary.
#
# The pipeline must be mechanism-agnostic: it reads the core.Hooks flag
# struct resolved once at CPU construction (internal/pipeline/defense.go)
# and never names a concrete mechanism. A new `case core.CacheHit:` creeping
# into a pipeline stage would silently bypass the registry, so this script
# fails if any non-test pipeline source outside the bridge file references a
# concrete mechanism constant.
set -eu
cd "$(dirname "$0")/.."

pattern='core\.(Origin|Baseline|CacheHit|CacheHitTPBuf|InvisiSpec|Fence|DelayOnMiss)\b'
bad=0
for f in internal/pipeline/*.go; do
    case "$f" in
    *_test.go | internal/pipeline/defense.go) continue ;;
    esac
    if grep -En "$pattern" "$f"; then
        bad=1
    fi
done
if [ "$bad" -ne 0 ]; then
    echo "defense lint: the files above reference concrete mechanism constants." >&2
    echo "Pipeline code must consult the resolved core.Hooks (c.def) instead;" >&2
    echo "only internal/pipeline/defense.go may touch the registry." >&2
    exit 1
fi
echo "defense lint: internal/pipeline is mechanism-agnostic"
