package core

import (
	"fmt"
	"sort"
	"strings"
)

// Hooks is a defense's compiled-down contract with the pipeline: a flat
// struct of booleans the cycle loop reads directly. Devirtualizing the
// Defense interface into plain flags at CPU construction keeps the steady
// state at zero allocations and zero dynamic dispatch — the pipeline never
// holds a Defense value, only its Hooks.
//
// The hook points, in pipeline order:
//
//   - TracksDependence: maintain the security dependence matrix (suspect
//     tagging at dispatch, row clears at branch resolution/squash). Off for
//     defenses that do not classify loads (origin, fence, invisispec).
//   - SerializeBranches: no instruction younger than an unresolved branch
//     may leave the issue queue (the LFENCE-after-branch model).
//   - BlockAtIssue: suspect memory instructions are held in the issue queue
//     until their dependences clear (the paper's Baseline policy).
//   - CacheHitFilter: suspect loads probe the L1D without refilling; hits
//     proceed (they cannot change cache content, §V.C), misses fall through
//     to the miss policy below.
//   - TPBufFilter: suspect L1D misses consult the Trusted Pages Buffer; a
//     miss that does not complete an S-Pattern may refill (§V.D).
//   - DelayOnMiss: suspect L1D misses (not rescued by the TPBuf) park in
//     place and retry when their row clears, instead of being discarded and
//     re-dispatched through the scheduler.
//   - InvisibleLoads: speculative loads fetch data without refilling any
//     cache level; the visible access replays at commit (InvisiSpec model).
type Hooks struct {
	TracksDependence  bool
	SerializeBranches bool
	BlockAtIssue      bool
	CacheHitFilter    bool
	TPBufFilter       bool
	DelayOnMiss       bool
	InvisibleLoads    bool
}

// Defense is one registered defense backend: a named configuration of
// pipeline hooks plus the run-key identity (Mechanism, SSBD) the experiment
// layer caches under. Implementations must be stateless values — the same
// Defense is shared by every simulation.
type Defense interface {
	// Name is the canonical registry key ("cachehit+tpbuf"); every CLI flag
	// and JobSpec field resolves through it.
	Name() string
	// Title is the display name used in tables and attack verdicts; for the
	// paper variants it equals Mechanism().String().
	Title() string
	// Describe is a one-line summary for help text and error messages.
	Describe() string
	// Hooks returns the pipeline contract (see Hooks).
	Hooks() Hooks
	// Mechanism is the enum value carried in SecurityConfig — the memo run
	// key for existing mechanisms must not change, so defenses map onto
	// Mechanism constants rather than replacing them.
	Mechanism() Mechanism
	// SSBD reports whether the backend also enables Speculative Store
	// Bypass Disable (the store-queue watermark).
	SSBD() bool
}

// defense is the built-in Defense implementation: a plain value struct.
type defense struct {
	name     string
	title    string // display override; empty = mech.String()
	describe string
	hooks    Hooks
	mech     Mechanism
	ssbd     bool
}

func (d defense) Name() string { return d.name }
func (d defense) Title() string {
	if d.title != "" {
		return d.title
	}
	return d.mech.String()
}
func (d defense) Describe() string     { return d.describe }
func (d defense) Hooks() Hooks         { return d.hooks }
func (d defense) Mechanism() Mechanism { return d.mech }
func (d defense) SSBD() bool           { return d.ssbd }

var (
	defenseOrder []Defense          // registration order, canonical names only
	defenseByKey map[string]Defense // canonical names and aliases
	defenseAlias map[string]string  // alias -> canonical name
)

// RegisterDefense adds d to the registry under its canonical Name plus any
// aliases. It panics on a duplicate key — registration is an init-time,
// programmer-error-only path.
func RegisterDefense(d Defense, aliases ...string) {
	if defenseByKey == nil {
		defenseByKey = make(map[string]Defense)
		defenseAlias = make(map[string]string)
	}
	name := d.Name()
	if name == "" {
		panic("core: RegisterDefense with empty name")
	}
	if _, dup := defenseByKey[name]; dup {
		panic(fmt.Sprintf("core: duplicate defense %q", name))
	}
	defenseByKey[name] = d
	defenseOrder = append(defenseOrder, d)
	for _, a := range aliases {
		if _, dup := defenseByKey[a]; dup {
			panic(fmt.Sprintf("core: duplicate defense alias %q", a))
		}
		defenseByKey[a] = d
		defenseAlias[a] = name
	}
}

// LookupDefense resolves a canonical name or alias (case-insensitively) to
// its Defense. Unknown names return an error listing the registry contents,
// so every CLI and the serve JobSpec reject typos with the same message.
func LookupDefense(name string) (Defense, error) {
	key := strings.ToLower(strings.TrimSpace(name))
	if d, ok := defenseByKey[key]; ok {
		return d, nil
	}
	return nil, fmt.Errorf("unknown defense %q (registered: %s)", name, strings.Join(DefenseNames(), ", "))
}

// Defenses lists the registered backends in registration order (paper
// variants first, then SSBD, then the comparison points).
func Defenses() []Defense {
	out := make([]Defense, len(defenseOrder))
	copy(out, defenseOrder)
	return out
}

// DefenseNames lists the canonical registry keys in registration order.
func DefenseNames() []string {
	names := make([]string, len(defenseOrder))
	for i, d := range defenseOrder {
		names[i] = d.Name()
	}
	return names
}

// DefenseAliases maps each alias to its canonical name, sorted by alias —
// for help text.
func DefenseAliases() [][2]string {
	out := make([][2]string, 0, len(defenseAlias))
	for a, n := range defenseAlias {
		out = append(out, [2]string{a, n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// HooksFor resolves the pipeline contract for a bare Mechanism value — the
// path SecurityConfig takes into the pipeline, where only the enum travels
// (the memo run key hashes SecurityConfig, so it cannot carry a Defense).
// The first registered non-SSBD defense with that mechanism wins; SSBD is
// excluded because it is a SecurityConfig flag orthogonal to the mechanism.
func HooksFor(m Mechanism) (Hooks, bool) {
	for _, d := range defenseOrder {
		if d.Mechanism() == m && !d.SSBD() {
			return d.Hooks(), true
		}
	}
	return Hooks{}, false
}

func init() {
	// The four paper variants (§VI.A), under the names the CLIs have always
	// accepted; the per-CLI spellings become aliases.
	RegisterDefense(defense{
		name:     "origin",
		describe: "unprotected out-of-order baseline (no defense)",
		mech:     Origin,
	})
	RegisterDefense(defense{
		name:     "baseline",
		describe: "block every suspect memory access at issue until dependences clear",
		hooks:    Hooks{TracksDependence: true, BlockAtIssue: true},
		mech:     Baseline,
	})
	RegisterDefense(defense{
		name:     "cachehit",
		describe: "suspect loads proceed on L1D hits; misses are blocked (§V.C)",
		hooks:    Hooks{TracksDependence: true, CacheHitFilter: true},
		mech:     CacheHit,
	}, "cache-hit")
	RegisterDefense(defense{
		name:     "cachehit+tpbuf",
		describe: "cache-hit filter plus Trusted Pages Buffer screening of misses (§V.D)",
		hooks:    Hooks{TracksDependence: true, CacheHitFilter: true, TPBufFilter: true},
		mech:     CacheHitTPBuf,
	}, "tpbuf", "cachehit-tpbuf")
	// SSBD rides on Origin's mechanism: the store-queue watermark is a
	// SecurityConfig flag, not a Mechanism, so the run key stays
	// {Mechanism: Origin, SSBD: true} — exactly what existing caches hold.
	RegisterDefense(defense{
		name:     "ssbd",
		title:    "SSBD (store bypass disable)",
		describe: "Speculative Store Bypass Disable: loads wait for older store addresses",
		mech:     Origin,
		ssbd:     true,
	})
	// Comparison points.
	RegisterDefense(defense{
		name:     "fence",
		describe: "LFENCE after every branch: nothing issues past an unresolved branch",
		hooks:    Hooks{SerializeBranches: true},
		mech:     Fence,
	}, "lfence")
	RegisterDefense(defense{
		name:     "delay-on-miss",
		describe: "suspect L1D misses park until their dependences clear (no re-issue)",
		hooks:    Hooks{TracksDependence: true, CacheHitFilter: true, DelayOnMiss: true},
		mech:     DelayOnMiss,
	}, "delayonmiss", "dom")
	RegisterDefense(defense{
		name:     "invisispec",
		describe: "speculative loads skip refills; the visible access replays at commit",
		hooks:    Hooks{InvisibleLoads: true},
		mech:     InvisiSpec,
	}, "invisi")
}
