package pipeline

import (
	"fmt"

	"conspec/internal/core"
	"conspec/internal/isa"
)

// auditSecurity validates the security structures against the pipeline
// state they shadow. Called from CheckInvariants, so it runs between tests
// and — under -selfcheck K — every K cycles during a run. The checks are
// recomputations from first principles, not reads of the mechanism's own
// bookkeeping, so a single corrupted bit (cosmic ray or injected fault)
// shows up as a divergence:
//
//   - secmatrix rows are consistent with IQ residency: row x of a live
//     memory instruction holds exactly the live older producers (§V.B's
//     dispatch formula re-evaluated against the current queue, using the
//     fact that bits only clear after dispatch);
//   - non-memory instructions and suspect flags: a row exists only for
//     memory instructions, and a once-blocked instruction runs unblocked
//     only after every producer issued (empty row);
//   - TPBuf shadows the LSQ 1:1: A bits match occupancy, V/W/S/page bits
//     match the occupant's execution state, the age mask matches sequence
//     numbers;
//   - eq. (1) re-evaluated: the buffer's safety verdict for every valid
//     load entry equals an independent recomputation over sequence numbers
//     and status bits.
func (c *CPU) auditSecurity() error {
	if err := c.auditSecMatrix(); err != nil {
		return err
	}
	return c.auditTPBuf()
}

func (c *CPU) auditSecMatrix() error {
	sm := c.secmat
	if sm == nil {
		return nil
	}
	for x, u := range c.iq {
		if u == nil {
			continue
		}
		if u.class() != core.ClassMem {
			if sm.Peek(x) {
				return fmt.Errorf("secmatrix: non-memory IQ entry %d (seq %d, %v) has a non-empty row",
					x, u.seq, u.inst.Op)
			}
			continue
		}
		// A live IQ entry is by construction unissued, and row bits are set
		// only at dispatch and cleared when the producer issues, squashes, or
		// is reallocated — so post-ClockEdge the row must equal exactly the
		// set of live older producers.
		for y := 0; y < sm.Size(); y++ {
			p := c.iq[y]
			want := y != x && p != nil && sm.IsProducer(p.class()) && p.seq < u.seq
			if got := sm.Get(x, y); got != want {
				return fmt.Errorf("secmatrix: bit (%d,%d) = %v, want %v (consumer seq %d, column %s)",
					x, y, got, want, u.seq, describeIQ(p))
			}
		}
		if u.blockedSec && !u.wasBlocked {
			return fmt.Errorf("secmatrix: IQ entry %d (seq %d) blockedSec without wasBlocked", x, u.seq)
		}
		if u.blockedSec && u.issued {
			return fmt.Errorf("secmatrix: IQ entry %d (seq %d) blockedSec but issued", x, u.seq)
		}
		// The suspect window closes only when every producer has issued: a
		// once-blocked instruction running unblocked must have an empty row
		// (rows never gain bits after dispatch).
		if u.wasBlocked && !u.blockedSec && sm.Peek(x) {
			return fmt.Errorf("secmatrix: IQ entry %d (seq %d) unblocked with dependences still set", x, u.seq)
		}
	}
	return nil
}

func describeIQ(u *uop) string {
	if u == nil {
		return "free"
	}
	return fmt.Sprintf("seq %d %v issued=%v", u.seq, u.inst.Op, u.issued)
}

func (c *CPU) auditTPBuf() error {
	t := c.tpbuf
	if t == nil {
		return nil
	}
	occ := 0
	for i := 0; i < t.Size(); i++ {
		u := c.tpOccupant(i)
		a, v, w, s, ppn := t.Entry(i)
		if a != (u != nil) {
			return fmt.Errorf("tpbuf: entry %d A=%v but LSQ slot %s", i, a, describeIQ(u))
		}
		if u == nil {
			continue
		}
		occ++
		isLoad := i < c.cfg.LDQ
		switch {
		case isLoad && w != u.completed:
			return fmt.Errorf("tpbuf: load entry %d (seq %d) W=%v but completed=%v", i, u.seq, w, u.completed)
		case !isLoad && w:
			return fmt.Errorf("tpbuf: store entry %d (seq %d) has W set", i, u.seq)
		}
		if u.issued && !v {
			return fmt.Errorf("tpbuf: entry %d (seq %d) issued without V", i, u.seq)
		}
		if v && !u.addrReady {
			return fmt.Errorf("tpbuf: entry %d (seq %d) V set before address resolved", i, u.seq)
		}
		if v {
			// The DTLB is an identity mapping, so the recorded tag is a pure
			// function of the address: recompute and compare.
			if want := c.tpTag(u.memAddr, u.memAddr>>isa.PageBits); ppn != want {
				return fmt.Errorf("tpbuf: entry %d (seq %d) page tag %#x, want %#x for addr %#x",
					i, u.seq, ppn, want, u.memAddr)
			}
		}
		// InvisiSpec-style comparators never mark loads suspect in the
		// buffer; everything else records the issuing uop's suspect flag.
		if u.issued && !(isLoad && c.def.InvisibleLoads) && s != u.suspect {
			return fmt.Errorf("tpbuf: entry %d (seq %d) S=%v but uop suspect=%v", i, u.seq, s, u.suspect)
		}
	}
	if got := t.Occupancy(); got != occ {
		return fmt.Errorf("tpbuf: occupancy %d but %d allocated entries", got, occ)
	}
	// Age mask vs. sequence numbers: allocation follows program order, so
	// "j older than i" must agree with seq comparison for every live pair.
	for i := 0; i < t.Size(); i++ {
		ui := c.tpOccupant(i)
		if ui == nil {
			continue
		}
		for j := 0; j < t.Size(); j++ {
			uj := c.tpOccupant(j)
			if uj == nil || i == j {
				continue
			}
			if got, want := t.Older(i, j), uj.seq < ui.seq; got != want {
				return fmt.Errorf("tpbuf: age mask says entry %d older than %d = %v, want %v (seq %d vs %d)",
					j, i, got, want, uj.seq, ui.seq)
			}
		}
	}
	// Eq. (1) recheck: the buffer's own verdict for every valid load entry
	// must match a from-scratch recomputation over seq order and status bits.
	for i := 0; i < c.cfg.LDQ; i++ {
		ui := c.tpOccupant(i)
		_, v, _, _, ppn := t.Entry(i)
		if ui == nil || !v {
			continue
		}
		safe := true
		for j := 0; j < t.Size(); j++ {
			uj := c.tpOccupant(j)
			if uj == nil || uj.seq >= ui.seq {
				continue
			}
			_, vj, wj, sj, ppnj := t.Entry(j)
			wOK := wj || t.Variant() == core.VariantNoW
			if vj && wOK && sj && ppnj != ppn {
				safe = false
				break
			}
		}
		if got := t.AuditSafe(i, ppn); got != safe {
			return fmt.Errorf("tpbuf: eq.(1) verdict for load entry %d (seq %d) = safe:%v, recomputed safe:%v",
				i, ui.seq, got, safe)
		}
	}
	return nil
}

// tpOccupant returns the uop occupying TPBuf entry i: the LDQ for the first
// LDQ indices, the STQ above them (the buffer shadows the LSQ 1:1).
func (c *CPU) tpOccupant(i int) *uop {
	if i < c.cfg.LDQ {
		return c.ldq[i]
	}
	return c.stq[i-c.cfg.LDQ]
}
