// Package buildinfo exposes the build metadata stamped into conspec
// binaries: module version, VCS revision, and dirty-tree flag, read from
// the Go build info the toolchain embeds automatically. Every CLI's
// -version flag and every machine-readable output (conspec-bench -json,
// benchmark snapshots) carries it, so a result file always identifies the
// code that produced it.
package buildinfo

import (
	"fmt"
	"runtime"
	"runtime/debug"
)

// Info is the build identity of the running binary.
type Info struct {
	// Module is the main module path (e.g. "conspec").
	Module string `json:"module,omitempty"`
	// Version is the main module version ("(devel)" for tree builds).
	Version string `json:"version,omitempty"`
	// Revision is the VCS commit hash, when the binary was built inside a
	// checkout with a VCS stamp (empty under `go test` and plain `go run`).
	Revision string `json:"revision,omitempty"`
	// Dirty reports uncommitted changes in the stamped checkout.
	Dirty bool `json:"dirty,omitempty"`
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
}

// Get reads the embedded build information. It never fails: binaries built
// without VCS stamping simply yield empty Revision.
func Get() Info {
	info := Info{GoVersion: runtime.Version()}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.Module = bi.Main.Path
	info.Version = bi.Main.Version
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.modified":
			info.Dirty = s.Value == "true"
		}
	}
	return info
}

// Identity returns the canonical one-line identity string used to
// namespace persistent result stores: module, version, revision, dirty
// flag and toolchain joined with spaces. Two binaries with equal Identity
// are assumed to produce identical simulation results for identical run
// keys; unstamped builds (go test, plain go run) collapse to the same
// "(devel)" identity, which matches the development workflow of rebuilding
// in place and re-using the warm cache.
func (i Info) Identity() string {
	dirty := "clean"
	if i.Dirty {
		dirty = "dirty"
	}
	return fmt.Sprintf("%s %s %s %s %s", i.Module, i.Version, i.Revision, dirty, i.GoVersion)
}

// Short renders the one-line form the CLIs print for -version:
//
//	conspec-sim conspec (devel) rev 1a2b3c4d (dirty) go1.22.0
func Short(tool string) string {
	i := Get()
	s := tool
	if i.Module != "" {
		s += " " + i.Module
	}
	if i.Version != "" {
		s += " " + i.Version
	}
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " rev " + rev
		if i.Dirty {
			s += " (dirty)"
		}
	}
	return fmt.Sprintf("%s %s", s, i.GoVersion)
}
