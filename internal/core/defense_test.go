package core

import (
	"strings"
	"testing"
)

// TestDefenseRegistry pins the registry's public contract: the paper
// variants and the comparison backends are registered under their canonical
// names, in registration order, with the documented aliases.
func TestDefenseRegistry(t *testing.T) {
	want := []string{"origin", "baseline", "cachehit", "cachehit+tpbuf",
		"ssbd", "fence", "delay-on-miss", "invisispec"}
	got := DefenseNames()
	if len(got) != len(want) {
		t.Fatalf("DefenseNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("DefenseNames()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if len(Defenses()) != len(want) {
		t.Fatalf("Defenses() has %d entries, want %d", len(Defenses()), len(want))
	}
}

// TestLookupDefense covers canonical names, aliases, normalization, and the
// unknown-name error that lists the registry contents.
func TestLookupDefense(t *testing.T) {
	for alias, canon := range map[string]string{
		"origin":         "origin",
		"tpbuf":          "cachehit+tpbuf",
		"cachehit-tpbuf": "cachehit+tpbuf",
		"cache-hit":      "cachehit",
		"lfence":         "fence",
		"dom":            "delay-on-miss",
		"delayonmiss":    "delay-on-miss",
		"invisi":         "invisispec",
		"  CacheHit  ":   "cachehit", // trimmed, case-insensitive
	} {
		d, err := LookupDefense(alias)
		if err != nil {
			t.Errorf("LookupDefense(%q): %v", alias, err)
			continue
		}
		if d.Name() != canon {
			t.Errorf("LookupDefense(%q) = %q, want %q", alias, d.Name(), canon)
		}
	}

	_, err := LookupDefense("nope")
	if err == nil {
		t.Fatal("unknown defense must be rejected")
	}
	for _, name := range DefenseNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("unknown-defense error does not list %q: %v", name, err)
		}
	}
}

// TestDefenseAliases checks the help-text listing maps every alias to its
// canonical name.
func TestDefenseAliases(t *testing.T) {
	pairs := DefenseAliases()
	if len(pairs) == 0 {
		t.Fatal("no aliases registered")
	}
	for _, p := range pairs {
		d, err := LookupDefense(p[0])
		if err != nil {
			t.Fatalf("alias %q does not resolve: %v", p[0], err)
		}
		if d.Name() != p[1] {
			t.Errorf("alias %q -> %q, listing says %q", p[0], d.Name(), p[1])
		}
	}
}

// TestHooksMatchReference is the registry half of the differential golden
// test: every paper mechanism's registered hook set must equal the
// pre-refactor predicate table (ReferenceHooks). The pipeline half runs the
// simulator under both (see pipeline's TestDefenseHooksGolden).
func TestHooksMatchReference(t *testing.T) {
	for _, m := range []Mechanism{Origin, Baseline, CacheHit, CacheHitTPBuf, InvisiSpec} {
		ref, ok := ReferenceHooks(m)
		if !ok {
			t.Fatalf("no reference hooks for %v", m)
		}
		reg, ok := HooksFor(m)
		if !ok {
			t.Fatalf("no registered defense for %v", m)
		}
		if reg != ref {
			t.Errorf("%v: registry hooks %+v != reference %+v", m, reg, ref)
		}
	}
}

// TestHooksMatchPredicates cross-checks the registry against the legacy
// Mechanism predicate methods the CLIs used before the Defense interface.
func TestHooksMatchPredicates(t *testing.T) {
	for _, m := range []Mechanism{Origin, Baseline, CacheHit, CacheHitTPBuf, InvisiSpec} {
		h, ok := HooksFor(m)
		if !ok {
			t.Fatalf("no registered defense for %v", m)
		}
		if h.TracksDependence != m.TracksDependence() {
			t.Errorf("%v: TracksDependence hook %v != predicate %v", m, h.TracksDependence, m.TracksDependence())
		}
		if h.BlockAtIssue != m.BlocksSuspectAtIssue() {
			t.Errorf("%v: BlockAtIssue hook %v != predicate %v", m, h.BlockAtIssue, m.BlocksSuspectAtIssue())
		}
		if h.CacheHitFilter != m.UsesCacheHitFilter() {
			t.Errorf("%v: CacheHitFilter hook %v != predicate %v", m, h.CacheHitFilter, m.UsesCacheHitFilter())
		}
		if h.TPBufFilter != m.UsesTPBuf() {
			t.Errorf("%v: TPBufFilter hook %v != predicate %v", m, h.TPBufFilter, m.UsesTPBuf())
		}
		if h.InvisibleLoads != m.InvisibleLoads() {
			t.Errorf("%v: InvisibleLoads hook %v != predicate %v", m, h.InvisibleLoads, m.InvisibleLoads())
		}
	}
}

// TestDefenseTitles pins the display names tables and attack verdicts use.
func TestDefenseTitles(t *testing.T) {
	for name, title := range map[string]string{
		"origin":         "Origin",
		"baseline":       "Baseline",
		"cachehit":       "Cache-hit Filter",
		"cachehit+tpbuf": "Cache-hit Filter + TPBuf Filter",
		"ssbd":           "SSBD (store bypass disable)",
		"fence":          "LFENCE-after-branch",
		"delay-on-miss":  "Delay-on-Miss",
		"invisispec":     "InvisiSpec-like (comparator)",
	} {
		d, err := LookupDefense(name)
		if err != nil {
			t.Fatalf("LookupDefense(%q): %v", name, err)
		}
		if d.Title() != title {
			t.Errorf("%s: Title() = %q, want %q", name, d.Title(), title)
		}
		if d.Describe() == "" {
			t.Errorf("%s: empty Describe()", name)
		}
	}
}
