package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"conspec/internal/buildinfo"
	"conspec/internal/exp"
	"conspec/internal/exp/report"
	"conspec/internal/pipeline"
	"conspec/internal/serve"
	"conspec/internal/serve/journal"
)

// CoordinatorOptions parameterizes a Coordinator.
type CoordinatorOptions struct {
	// Identity is the coordinator binary's build identity; registrations
	// with a different identity are refused with 409 (a mismatched binary
	// would poison the content-addressed result store). Defaults to the
	// running binary's buildinfo identity.
	Identity string
	// Store is the coordinator's persistent result store, served to
	// workers via GET/PUT /fleet/v1/results/{key}. May be nil (workers
	// then only have their local caches; kill -9 durability is lost).
	Store ResultStore
	// Journal, when non-nil, receives OpLeased/OpRequeued records so lease
	// state survives a coordinator crash (the serve layer already journals
	// submit/terminal transitions on the same WAL).
	Journal *journal.Journal
	// HeartbeatInterval is the cadence workers are told to beat at
	// (default 2s); HeartbeatTimeout is how long a silent worker stays
	// registered before it is declared lost and its leases re-queued
	// (default 3× the interval).
	HeartbeatInterval time.Duration
	HeartbeatTimeout  time.Duration
	// LeaseWait caps how long POST /fleet/v1/lease long-polls for work
	// (default 10s); workers may ask for less.
	LeaseWait time.Duration
	// MaxRequeues bounds how many times one job is re-queued after worker
	// deaths before it fails terminally (default 3).
	MaxRequeues int
	// Logf, when non-nil, receives one line per fleet event.
	Logf func(format string, args ...any)
}

// Coordinator owns the fleet: the worker registry, the lease table, and
// the remote side of the result store. It implements serve.Executor, so a
// serve.Server built with Config.Executor pointing here keeps its whole
// public API while execution happens on leased workers. Create with
// NewCoordinator, wrap the server's handler with Handler, stop with Close.
type Coordinator struct {
	opts CoordinatorOptions

	mu      sync.Mutex
	workers map[string]*workerState
	leases  map[string]*lease // live (pending|leased) by lease id
	byKey   map[string]*lease // job-spec coalescing
	pending []*lease          // FIFO; re-queued leases go to the front
	wake    chan struct{}     // closed+replaced when pending grows

	// counters (under mu)
	coalesced   uint64
	requeued    uint64
	workersLost uint64
	resultGets  uint64
	resultHits  uint64
	resultPuts  uint64

	closed chan struct{}
	reaped chan struct{}
}

// workerState is the coordinator's record of one registered worker.
type workerState struct {
	id         string
	slots      int
	registered time.Time
	lastBeat   time.Time
	draining   bool
	lost       bool
	active     int
	done       uint64
	failed     uint64
	metrics    map[string]uint64 // last heartbeat-pushed counters
}

// leaseState is a lease's position in its lifecycle.
type leaseState int

const (
	leasePending leaseState = iota // queued, waiting for a worker
	leaseLeased                    // executing on lease.worker
	leaseDone                      // terminal; result recorded
)

// attachment is one serve job riding a lease (the first submitter plus
// any coalesced duplicates).
type attachment struct {
	emit      func(exp.ProgressEvent)
	setWorker func(string)
}

// lease is one unit of fleet work: a job spec waiting for, or executing
// on, a worker.
type lease struct {
	id        string // == the first submitter's job id
	key       string
	spec      serve.JobSpec
	recovered bool

	state    leaseState
	worker   string
	gen      int
	requeues int
	// cancelRequested is set when every attached job has gone away; the
	// holding worker learns at its next progress flush or heartbeat.
	cancelRequested bool

	refs   int
	attach []*attachment

	result *leaseResult
	done   chan struct{}
}

// leaseResult is the terminal outcome handed back to Execute.
type leaseResult struct {
	worker     string
	status     string
	report     *report.Report
	stats      exp.Stats
	failedRuns int
	errMsg     string
}

// NewCoordinator builds a Coordinator and starts its reaper loop.
func NewCoordinator(opts CoordinatorOptions) *Coordinator {
	if opts.Identity == "" {
		opts.Identity = buildinfo.Get().Identity()
	}
	if opts.HeartbeatInterval <= 0 {
		opts.HeartbeatInterval = 2 * time.Second
	}
	if opts.HeartbeatTimeout <= 0 {
		opts.HeartbeatTimeout = 3 * opts.HeartbeatInterval
	}
	if opts.LeaseWait <= 0 {
		opts.LeaseWait = 10 * time.Second
	}
	if opts.MaxRequeues <= 0 {
		opts.MaxRequeues = 3
	}
	c := &Coordinator{
		opts:    opts,
		workers: make(map[string]*workerState),
		leases:  make(map[string]*lease),
		byKey:   make(map[string]*lease),
		wake:    make(chan struct{}),
		closed:  make(chan struct{}),
		reaped:  make(chan struct{}),
	}
	go c.reaper()
	return c
}

// Close stops the reaper. Pending Execute calls are not unwound — the
// owning serve.Server drains them first.
func (c *Coordinator) Close() {
	select {
	case <-c.closed:
		return
	default:
	}
	close(c.closed)
	<-c.reaped
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// journalLease records a lease transition; failures degrade to
// re-execution on recovery, exactly like the serve layer's non-submit ops.
func (c *Coordinator) journalLease(op journal.Op, jobID, worker string) {
	if c.opts.Journal == nil {
		return
	}
	if err := c.opts.Journal.AppendLease(op, jobID, worker); err != nil {
		c.logf("fleet: journal %s for %s: %v", op, jobID, err)
	}
}

// wakeLocked signals every long-polling lease request that the pending
// queue changed. Caller holds c.mu.
func (c *Coordinator) wakeLocked() {
	close(c.wake)
	c.wake = make(chan struct{})
}

// Capacity reports the fleet's live slot count (registered, non-draining,
// non-lost workers × their slots) — the Config.Capacity feed that keeps
// the serve layer's Retry-After hints honest in coordinator mode.
func (c *Coordinator) Capacity() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, w := range c.workers {
		if !w.lost && !w.draining {
			n += w.slots
		}
	}
	return n
}

// ---- serve.Executor ----

// Execute implements serve.Executor: it queues the job for lease (or
// attaches it to an identical in-flight lease) and blocks until a worker
// publishes the result or ctx is canceled.
func (c *Coordinator) Execute(ctx context.Context, job serve.ExecJob) (*report.Report, exp.Stats, int, error) {
	l, att, holder := c.acquire(job)
	if holder != "" && job.SetWorker != nil {
		job.SetWorker(holder) // attached to a lease already executing
	}
	select {
	case <-l.done:
	case <-ctx.Done():
		c.release(l, att)
		return nil, exp.Stats{}, 0, ctx.Err()
	}
	res := l.result
	if job.SetWorker != nil && res.worker != "" {
		job.SetWorker(res.worker)
	}
	switch res.status {
	case ResultDone:
		return res.report, res.stats, res.failedRuns, nil
	case ResultCanceled:
		return nil, res.stats, res.failedRuns, context.Canceled
	default:
		msg := res.errMsg
		if msg == "" {
			msg = "lease failed"
		}
		return nil, res.stats, res.failedRuns, errors.New(msg)
	}
}

// acquire creates a pending lease for the job, or attaches it to a live
// lease with an identical spec (fleet-wide coalescing). It returns the
// lease, this job's attachment (for release), and the holding worker if
// the lease is already executing.
func (c *Coordinator) acquire(job serve.ExecJob) (*lease, *attachment, string) {
	key := jobKeyOf(job.Spec)
	att := &attachment{emit: job.Emit, setWorker: job.SetWorker}
	c.mu.Lock()
	if key != "" {
		if l := c.byKey[key]; l != nil && l.state != leaseDone {
			l.refs++
			l.attach = append(l.attach, att)
			c.coalesced++
			holder := l.worker
			c.mu.Unlock()
			c.logf("fleet: job %s coalesced onto lease %s (identical spec)", job.ID, l.id)
			return l, att, holder
		}
	}
	l := &lease{
		id:        job.ID,
		key:       key,
		spec:      job.Spec,
		recovered: job.Recovered,
		state:     leasePending,
		gen:       1,
		refs:      1,
		attach:    []*attachment{att},
		done:      make(chan struct{}),
	}
	c.leases[l.id] = l
	if key != "" {
		c.byKey[key] = l
	}
	c.pending = append(c.pending, l)
	c.wakeLocked()
	c.mu.Unlock()
	return l, att, ""
}

// release detaches one canceled job from its lease. When the last job
// goes away, a pending lease is finished immediately and a leased one is
// flagged so the worker cancels at its next progress flush or heartbeat.
func (c *Coordinator) release(l *lease, att *attachment) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, a := range l.attach {
		if a == att {
			l.attach = append(l.attach[:i], l.attach[i+1:]...)
			break
		}
	}
	l.refs--
	if l.refs > 0 || l.state == leaseDone {
		return
	}
	l.cancelRequested = true
	if l.state == leasePending {
		c.dropPendingLocked(l)
		c.finishLocked(l, leaseResult{status: ResultCanceled})
		c.logf("fleet: lease %s canceled while pending", l.id)
	}
	// leaseLeased: the worker is told via heartbeat/progress and posts a
	// canceled result, which finishes the lease.
}

// dropPendingLocked removes l from the pending queue. Caller holds c.mu.
func (c *Coordinator) dropPendingLocked(l *lease) {
	for i, p := range c.pending {
		if p == l {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return
		}
	}
}

// finishLocked records the lease's terminal result and releases waiters.
// Caller holds c.mu.
func (c *Coordinator) finishLocked(l *lease, res leaseResult) {
	if l.state == leaseDone {
		return
	}
	l.state = leaseDone
	l.result = &res
	delete(c.leases, l.id)
	if l.key != "" && c.byKey[l.key] == l {
		delete(c.byKey, l.key)
	}
	close(l.done)
}

// requeueLocked puts a lease lost by worker back at the front of the
// queue with a bumped generation — stale progress/result posts from the
// old holder no longer match. Past MaxRequeues the job fails terminally
// instead of ping-ponging across a dying fleet. Caller holds c.mu.
func (c *Coordinator) requeueLocked(l *lease, worker string) {
	l.gen++
	l.requeues++
	l.worker = ""
	if l.requeues > c.opts.MaxRequeues {
		c.finishLocked(l, leaseResult{
			status: ResultFailed,
			errMsg: fmt.Sprintf("lease re-queued %d times after worker deaths; giving up", l.requeues-1),
		})
		return
	}
	l.state = leasePending
	c.pending = append([]*lease{l}, c.pending...)
	c.requeued++
	c.journalLease(journal.OpRequeued, l.id, worker)
	c.wakeLocked()
}

// markLostLocked declares a worker dead and disposes of its leases:
// cancel-requested ones finish as canceled, the rest are re-queued.
// Caller holds c.mu.
func (c *Coordinator) markLostLocked(w *workerState) {
	w.lost = true
	w.active = 0
	c.workersLost++
	for _, l := range c.leases {
		if l.state != leaseLeased || l.worker != w.id {
			continue
		}
		if l.cancelRequested {
			c.finishLocked(l, leaseResult{worker: w.id, status: ResultCanceled})
			continue
		}
		c.requeueLocked(l, w.id)
		c.logf("fleet: lease %s re-queued (worker %s lost, gen now %d)", l.id, w.id, l.gen)
	}
}

// reaper periodically declares workers that stopped heartbeating lost.
func (c *Coordinator) reaper() {
	defer close(c.reaped)
	tick := c.opts.HeartbeatTimeout / 4
	if tick < 50*time.Millisecond {
		tick = 50 * time.Millisecond
	}
	if tick > 5*time.Second {
		tick = 5 * time.Second
	}
	t := time.NewTicker(tick)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			c.reap(time.Now())
		case <-c.closed:
			return
		}
	}
}

// reap is one reaper pass (exposed to tests via the clock argument).
func (c *Coordinator) reap(now time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, w := range c.workers {
		if !w.lost && now.Sub(w.lastBeat) > c.opts.HeartbeatTimeout {
			c.logf("fleet: worker %s lost (no heartbeat for %v)", w.id, now.Sub(w.lastBeat).Round(time.Millisecond))
			c.markLostLocked(w)
		}
	}
}

// ---- worker-facing operations (behind the HTTP handlers) ----

// errUnknownWorker makes lease/heartbeat calls from unregistered (or
// declared-lost) workers answer 410, telling the worker to re-register.
var errUnknownWorker = errors.New("unknown worker (re-register)")

// register admits a worker. A re-registration under a live name replaces
// the old worker, re-queueing anything it held.
func (c *Coordinator) register(req RegisterRequest) (RegisterResponse, error) {
	if req.Identity != c.opts.Identity {
		return RegisterResponse{}, &IdentityMismatchError{
			Err:                 "build identity mismatch",
			CoordinatorIdentity: c.opts.Identity,
			WorkerIdentity:      req.Identity,
		}
	}
	slots := req.Slots
	if slots < 1 {
		slots = 1
	}
	c.mu.Lock()
	name := req.Name
	if name == "" {
		name = "w" + randSuffix()
		for c.workers[name] != nil {
			name = "w" + randSuffix()
		}
	}
	if old := c.workers[name]; old != nil && !old.lost {
		c.logf("fleet: worker %s re-registered; re-queueing its leases", name)
		c.markLostLocked(old)
		c.workersLost-- // a replacement, not a loss
	}
	now := time.Now()
	c.workers[name] = &workerState{id: name, slots: slots, registered: now, lastBeat: now}
	c.mu.Unlock()
	c.logf("fleet: worker %s registered (%d slots)", name, slots)
	return RegisterResponse{
		Worker:      name,
		HeartbeatMS: c.opts.HeartbeatInterval.Milliseconds(),
		Identity:    c.opts.Identity,
	}, nil
}

// heartbeat refreshes a worker's liveness, absorbs its pushed metrics,
// and returns pending control signals (canceled leases, drain).
func (c *Coordinator) heartbeat(req HeartbeatRequest) (HeartbeatResponse, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[req.Worker]
	if w == nil || w.lost {
		return HeartbeatResponse{}, errUnknownWorker
	}
	w.lastBeat = time.Now()
	if req.Metrics != nil {
		w.metrics = req.Metrics
	}
	var resp HeartbeatResponse
	resp.Draining = w.draining
	for _, l := range c.leases {
		if l.state == leaseLeased && l.worker == req.Worker && l.cancelRequested {
			resp.Canceled = append(resp.Canceled, l.id)
		}
	}
	sort.Strings(resp.Canceled)
	return resp, nil
}

// leaseNext hands the requesting worker a job, long-polling up to wait
// for one to arrive. A nil grant with nil error means no work (204).
func (c *Coordinator) leaseNext(workerID string, wait time.Duration) (*LeaseGrant, error) {
	if wait < 0 {
		wait = 0
	}
	if wait > c.opts.LeaseWait {
		wait = c.opts.LeaseWait
	}
	deadline := time.Now().Add(wait)
	for {
		c.mu.Lock()
		w := c.workers[workerID]
		if w == nil || w.lost {
			c.mu.Unlock()
			return nil, errUnknownWorker
		}
		w.lastBeat = time.Now()
		if w.draining {
			c.mu.Unlock()
			return nil, nil
		}
		if l := c.pickLocked(workerID); l != nil {
			l.state = leaseLeased
			l.worker = workerID
			w.active++
			grant := &LeaseGrant{Lease: l.id, Gen: l.gen, Spec: l.spec, Recovered: l.recovered}
			setters := setWorkerFuncs(l)
			c.journalLease(journal.OpLeased, l.id, workerID)
			c.mu.Unlock()
			for _, set := range setters {
				set(workerID)
			}
			c.logf("fleet: lease %s -> worker %s (gen %d)", l.id, workerID, l.gen)
			return grant, nil
		}
		wake := c.wake
		c.mu.Unlock()
		remain := time.Until(deadline)
		if remain <= 0 {
			return nil, nil
		}
		t := time.NewTimer(remain)
		select {
		case <-wake:
		case <-t.C:
		case <-c.closed:
		}
		t.Stop()
		select {
		case <-c.closed:
			return nil, nil
		default:
		}
	}
}

// setWorkerFuncs snapshots a lease's non-nil setWorker callbacks (called
// outside c.mu — they take the serve job's lock).
func setWorkerFuncs(l *lease) []func(string) {
	fns := make([]func(string), 0, len(l.attach))
	for _, a := range l.attach {
		if a.setWorker != nil {
			fns = append(fns, a.setWorker)
		}
	}
	return fns
}

// pickLocked chooses the pending lease for a worker: the oldest one whose
// rendezvous-preferred worker is the requester (cache affinity — repeated
// identical specs land where their run results are already on local
// disk), else the oldest outright (work conservation beats affinity).
// Caller holds c.mu.
func (c *Coordinator) pickLocked(workerID string) *lease {
	if len(c.pending) == 0 {
		return nil
	}
	for i, l := range c.pending {
		if c.preferredLocked(l.key) == workerID {
			c.pending = append(c.pending[:i], c.pending[i+1:]...)
			return l
		}
	}
	l := c.pending[0]
	c.pending = c.pending[1:]
	return l
}

// preferredLocked is the rendezvous (highest-random-weight) shard of a
// lease key across the live, non-draining workers. Caller holds c.mu.
func (c *Coordinator) preferredLocked(key string) string {
	var best string
	var bestH uint64
	for id, w := range c.workers {
		if w.lost || w.draining {
			continue
		}
		h := fnv.New64a()
		io.WriteString(h, key)
		h.Write([]byte{0})
		io.WriteString(h, id)
		if s := h.Sum64(); best == "" || s > bestH {
			best, bestH = id, s
		}
	}
	return best
}

// progress forwards a batch of worker progress events to the lease's
// attached jobs. The reply tells the worker whether the lease was
// canceled meanwhile.
func (c *Coordinator) progress(leaseID string, post ProgressPost) (ProgressReply, error) {
	c.mu.Lock()
	l := c.leases[leaseID]
	if l == nil || l.state != leaseLeased || l.gen != post.Gen || l.worker != post.Worker {
		c.mu.Unlock()
		// Unknown or stale: tell the worker to stop wasting cycles on it.
		return ProgressReply{Canceled: true}, nil
	}
	if w := c.workers[post.Worker]; w != nil {
		w.lastBeat = time.Now()
	}
	emits := make([]func(exp.ProgressEvent), 0, len(l.attach))
	for _, a := range l.attach {
		if a.emit != nil {
			emits = append(emits, a.emit)
		}
	}
	canceled := l.cancelRequested
	c.mu.Unlock()
	for _, ev := range post.Events {
		for _, emit := range emits {
			emit(ev)
		}
	}
	return ProgressReply{Canceled: canceled}, nil
}

// finishLease accepts a worker's terminal post for a lease. Stale
// generations and duplicate posts are ignored (idempotent), which is what
// keeps a recovered lease's result single: the re-queued execution's post
// carries the bumped gen, the dead worker's late post does not.
func (c *Coordinator) finishLease(leaseID string, post ResultPost) (ResultReply, error) {
	var rep *report.Report
	if post.Status == ResultDone {
		rep = &report.Report{}
		if err := json.Unmarshal(post.Report, rep); err != nil {
			// The worker produced an unreadable document; fail the job
			// rather than hand serve a nil report marked done.
			post.Status = ResultFailed
			post.Error = "unreadable result document: " + err.Error()
			rep = nil
		}
	}
	c.mu.Lock()
	l := c.leases[leaseID]
	if l == nil || l.state != leaseLeased || l.gen != post.Gen || l.worker != post.Worker {
		c.mu.Unlock()
		return ResultReply{}, nil
	}
	w := c.workers[post.Worker]
	if w != nil {
		w.lastBeat = time.Now()
		if w.active > 0 {
			w.active--
		}
	}
	if post.Status == ResultAbandoned {
		// The worker is shutting down mid-lease: put the job back on the
		// queue right away instead of waiting out the heartbeat timeout.
		c.requeueLocked(l, post.Worker)
		c.mu.Unlock()
		c.logf("fleet: lease %s abandoned by worker %s; re-queued", leaseID, post.Worker)
		return ResultReply{Accepted: true}, nil
	}
	if w != nil {
		if post.Status == ResultFailed {
			w.failed++
		} else {
			w.done++
		}
	}
	c.finishLocked(l, leaseResult{
		worker:     post.Worker,
		status:     post.Status,
		report:     rep,
		stats:      post.Engine,
		failedRuns: post.FailedRuns,
		errMsg:     post.Error,
	})
	c.mu.Unlock()
	c.logf("fleet: lease %s %s (worker %s, executed %d)", leaseID, post.Status, post.Worker, post.Engine.Executed)
	return ResultReply{Accepted: true}, nil
}

// workerInfos snapshots the registry for GET /fleet/v1/workers.
func (c *Coordinator) workerInfos() []WorkerInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]WorkerInfo, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerInfo{
			ID: w.id, Slots: w.slots, Active: w.active,
			Done: w.done, Failed: w.failed,
			Draining: w.draining, Lost: w.lost,
			Registered: w.registered, LastBeat: w.lastBeat,
		})
	}
	sort.Slice(out, func(i, k int) bool { return out[i].ID < out[k].ID })
	return out
}

// drainWorker marks a worker draining: it finishes its active leases and
// receives no new ones (and stops counting toward fleet capacity).
func (c *Coordinator) drainWorker(id string) (WorkerInfo, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[id]
	if w == nil {
		return WorkerInfo{}, false
	}
	w.draining = true
	return WorkerInfo{
		ID: w.id, Slots: w.slots, Active: w.active,
		Done: w.done, Failed: w.failed,
		Draining: w.draining, Lost: w.lost,
		Registered: w.registered, LastBeat: w.lastBeat,
	}, true
}

// randSuffix returns 8 hex chars for generated worker names.
func randSuffix() string {
	var b [4]byte
	// crypto/rand via the same helper pattern serve uses would be
	// overkill here; fnv over time is enough for a display name, but
	// collisions must be impossible — use the time and a counter.
	nameMu.Lock()
	nameCounter++
	n := nameCounter
	nameMu.Unlock()
	t := time.Now().UnixNano()
	b[0] = byte(t >> 24)
	b[1] = byte(t >> 8)
	b[2] = byte(n >> 8)
	b[3] = byte(n)
	const hexdigits = "0123456789abcdef"
	out := make([]byte, 8)
	for i, v := range b {
		out[2*i] = hexdigits[v>>4]
		out[2*i+1] = hexdigits[v&0xf]
	}
	return string(out)
}

var (
	nameMu      sync.Mutex
	nameCounter uint64
)

// ---- HTTP plumbing ----

// maxResultBody bounds PUT /fleet/v1/results and lease result posts
// (result documents are JSON in the tens of KB; 64 MiB is a generous
// ceiling, not a working size).
const maxResultBody = 64 << 20

type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// Handler routes /fleet/v1/* to the coordinator, merges the fleet series
// into GET /metrics after the wrapped server's exposition, and forwards
// everything else to next (the serve.Server handler).
func (c *Coordinator) Handler(next http.Handler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /fleet/v1/register", c.handleRegister)
	mux.HandleFunc("POST /fleet/v1/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("POST /fleet/v1/lease", c.handleLease)
	mux.HandleFunc("POST /fleet/v1/leases/{id}/progress", c.handleProgress)
	mux.HandleFunc("POST /fleet/v1/leases/{id}/result", c.handleResult)
	mux.HandleFunc("GET /fleet/v1/workers", c.handleWorkers)
	mux.HandleFunc("POST /fleet/v1/workers/{id}/drain", c.handleDrain)
	mux.HandleFunc("GET /fleet/v1/results/{key}", c.handleResultGet)
	mux.HandleFunc("PUT /fleet/v1/results/{key}", c.handleResultPut)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/fleet/v1/") {
			mux.ServeHTTP(w, r)
			return
		}
		if r.Method == http.MethodGet && r.URL.Path == "/metrics" {
			next.ServeHTTP(w, r)
			c.writeMetrics(w)
			return
		}
		next.ServeHTTP(w, r)
	})
}

func (c *Coordinator) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad register request: " + err.Error()})
		return
	}
	resp, err := c.register(req)
	if err != nil {
		var mismatch *IdentityMismatchError
		if errors.As(err, &mismatch) {
			writeJSON(w, http.StatusConflict, mismatch)
			return
		}
		writeJSON(w, http.StatusBadRequest, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	var req HeartbeatRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad heartbeat: " + err.Error()})
		return
	}
	resp, err := c.heartbeat(req)
	if err != nil {
		writeJSON(w, http.StatusGone, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (c *Coordinator) handleLease(w http.ResponseWriter, r *http.Request) {
	var req LeaseRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad lease request: " + err.Error()})
		return
	}
	grant, err := c.leaseNext(req.Worker, time.Duration(req.WaitMS)*time.Millisecond)
	if err != nil {
		writeJSON(w, http.StatusGone, apiError{Error: err.Error()})
		return
	}
	if grant == nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	writeJSON(w, http.StatusOK, grant)
}

func (c *Coordinator) handleProgress(w http.ResponseWriter, r *http.Request) {
	var post ProgressPost
	if err := json.NewDecoder(io.LimitReader(r.Body, maxResultBody)).Decode(&post); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad progress post: " + err.Error()})
		return
	}
	reply, err := c.progress(r.PathValue("id"), post)
	if err != nil {
		writeJSON(w, http.StatusGone, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, reply)
}

func (c *Coordinator) handleResult(w http.ResponseWriter, r *http.Request) {
	var post ResultPost
	if err := json.NewDecoder(io.LimitReader(r.Body, maxResultBody)).Decode(&post); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad result post: " + err.Error()})
		return
	}
	reply, err := c.finishLease(r.PathValue("id"), post)
	if err != nil {
		writeJSON(w, http.StatusGone, apiError{Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, reply)
}

func (c *Coordinator) handleWorkers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, c.workerInfos())
}

func (c *Coordinator) handleDrain(w http.ResponseWriter, r *http.Request) {
	info, ok := c.drainWorker(r.PathValue("id"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such worker"})
		return
	}
	c.logf("fleet: worker %s draining", info.ID)
	writeJSON(w, http.StatusOK, info)
}

func (c *Coordinator) handleResultGet(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	c.resultGets++
	c.mu.Unlock()
	if c.opts.Store == nil {
		writeJSON(w, http.StatusNotFound, apiError{Error: "coordinator has no result store"})
		return
	}
	res, ok := c.opts.Store.Get(r.PathValue("key"))
	if !ok {
		writeJSON(w, http.StatusNotFound, apiError{Error: "no such result"})
		return
	}
	c.mu.Lock()
	c.resultHits++
	c.mu.Unlock()
	writeJSON(w, http.StatusOK, res)
}

func (c *Coordinator) handleResultPut(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	c.resultPuts++
	c.mu.Unlock()
	if c.opts.Store == nil {
		w.WriteHeader(http.StatusNoContent) // accepted and dropped, like a nil cache
		return
	}
	var res pipeline.Result
	if err := json.NewDecoder(io.LimitReader(r.Body, maxResultBody)).Decode(&res); err != nil {
		writeJSON(w, http.StatusBadRequest, apiError{Error: "bad result body: " + err.Error()})
		return
	}
	c.opts.Store.Put(r.PathValue("key"), res)
	w.WriteHeader(http.StatusNoContent)
}

// writeMetrics appends the fleet series to a /metrics exposition: fleet
// gauges/counters plus every worker's last heartbeat-pushed counters,
// labeled by worker.
func (c *Coordinator) writeMetrics(w io.Writer) {
	c.mu.Lock()
	type ws struct {
		id      string
		metrics map[string]uint64
	}
	var (
		workers, draining, capacity, pendingN, active int
		lost                                          = c.workersLost
		coalesced                                     = c.coalesced
		requeued                                      = c.requeued
		gets, hits, puts                              = c.resultGets, c.resultHits, c.resultPuts
		pushed                                        []ws
	)
	for _, wk := range c.workers {
		if wk.lost {
			continue
		}
		workers++
		if wk.draining {
			draining++
		} else {
			capacity += wk.slots
		}
		active += wk.active
		if len(wk.metrics) > 0 {
			pushed = append(pushed, ws{wk.id, wk.metrics})
		}
	}
	pendingN = len(c.pending)
	c.mu.Unlock()

	gauge := func(name string, v uint64) {
		fmt.Fprintf(w, "# TYPE conspec_served_%s gauge\nconspec_served_%s %d\n", name, name, v)
	}
	counter := func(name string, v uint64) {
		fmt.Fprintf(w, "# TYPE conspec_served_%s counter\nconspec_served_%s %d\n", name, name, v)
	}
	gauge("fleet_workers", uint64(workers))
	gauge("fleet_workers_draining", uint64(draining))
	gauge("fleet_capacity_slots", uint64(capacity))
	gauge("fleet_leases_pending", uint64(pendingN))
	gauge("fleet_leases_active", uint64(active))
	counter("fleet_workers_lost_total", lost)
	counter("fleet_leases_coalesced_total", coalesced)
	counter("fleet_leases_requeued_total", requeued)
	counter("fleet_result_gets_total", gets)
	counter("fleet_result_hits_total", hits)
	counter("fleet_result_puts_total", puts)

	sort.Slice(pushed, func(i, k int) bool { return pushed[i].id < pushed[k].id })
	seen := map[string]bool{}
	for _, p := range pushed {
		names := make([]string, 0, len(p.metrics))
		for name := range p.metrics {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if !validMetricName(name) {
				continue
			}
			if !seen[name] {
				fmt.Fprintf(w, "# TYPE conspec_served_worker_%s counter\n", name)
				seen[name] = true
			}
			fmt.Fprintf(w, "conspec_served_worker_%s{worker=%q} %d\n", name, p.id, p.metrics[name])
		}
	}
}

// validMetricName keeps pushed worker metric names inside the Prometheus
// exposition grammar, since they travel over the wire from workers.
func validMetricName(s string) bool {
	if s == "" || len(s) > 128 {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}
