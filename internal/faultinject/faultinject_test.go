package faultinject_test

import (
	"errors"
	"strings"
	"testing"

	"conspec/internal/asm"
	"conspec/internal/attack"
	"conspec/internal/config"
	"conspec/internal/core"
	"conspec/internal/faultinject"
	"conspec/internal/isa"
	"conspec/internal/mem"
	"conspec/internal/pipeline"
)

const progBase = 0x10000

// testCore shrinks the outer cache levels of the paper core so runs stay
// fast; geometry otherwise matches the evaluation machine.
func testCore() config.Core {
	c := config.PaperCore()
	c.Mem.L1ISize = 8 * 1024
	c.Mem.L1DSize = 8 * 1024
	c.Mem.L2Size = 64 * 1024
	c.Mem.L3Size = 256 * 1024
	return c
}

// suspectKernel loops forever generating exactly the state the injector
// needs victims from: a cold strided load feeds a slow-resolving branch (an
// unissued security producer), so the hot loads behind it issue suspect and
// populate secmatrix rows and TPBuf S bits every iteration.
func suspectKernel() *asm.Program {
	b := asm.New()
	b.Li(asm.A0, 0x40000)  // hot buffer: warms, then suspect HITs
	b.Li(asm.A1, 0x400000) // cold strided pointer: always misses
	b.Bind("loop")
	b.Ld(asm.T0, asm.A1, 0)
	b.Addi(asm.A1, asm.A1, 4096)
	b.Beq(asm.T0, asm.Zero, "next") // waits ~MemLat: unissued producer
	b.Bind("next")
	b.Ld(asm.T1, asm.A0, 0) // suspect load
	b.Add(asm.S3, asm.S3, asm.T1)
	b.St(asm.S3, asm.A0, 8)
	b.Jmp("loop")
	return b.MustAssemble(progBase)
}

// wedgeProgram is a straight-line dependence chain behind a cold miss: no
// branches, so a dropped wakeup can never be rescued by a squash.
func wedgeProgram() *asm.Program {
	b := asm.New()
	b.Li(asm.A0, 0x200000)
	b.Ld(asm.T0, asm.A0, 0)
	b.Add(asm.T1, asm.T0, asm.A0)
	for i := 0; i < 40; i++ {
		b.Add(asm.T1, asm.T1, asm.A0)
	}
	b.Halt()
	return b.MustAssemble(progBase)
}

func newMachine(prog *asm.Program) *pipeline.CPU {
	backing := isa.NewFlatMem()
	prog.Load(backing)
	cpu := pipeline.NewWithMemory(testCore(),
		pipeline.SecurityConfig{Mechanism: core.CacheHitTPBuf, Scope: core.ScopeBranchMem}, backing)
	cpu.SetPC(prog.Base)
	return cpu
}

// TestAuditCaughtFaults covers the fault classes whose corruption breaks a
// recomputable invariant: with a self-check sweep every cycle, detection is
// the same cycle the fault lands, and the run must end OutcomeAuditFailed
// with a violation naming the corrupted structure.
func TestAuditCaughtFaults(t *testing.T) {
	cases := []struct {
		name string
		cfg  faultinject.Config
		want string // substring of the violation
	}{
		{"secmatrix-bit", faultinject.Config{Class: faultinject.SecMatrixBit, Seed: 11, Start: 2000}, "secmatrix"},
		{"suspect-clear", faultinject.Config{Class: faultinject.SuspectClear, Seed: 12, Start: 2000}, "tpbuf"},
		{"tpbuf-v", faultinject.Config{Class: faultinject.TPBufBit, Seed: 13, Start: 2000, Field: 'V'}, "tpbuf"},
		{"tpbuf-w", faultinject.Config{Class: faultinject.TPBufBit, Seed: 14, Start: 2000, Field: 'W'}, "tpbuf"},
		{"tpbuf-s", faultinject.Config{Class: faultinject.TPBufBit, Seed: 15, Start: 2000, Field: 'S'}, "tpbuf"},
		{"tpbuf-page", faultinject.Config{Class: faultinject.TPBufBit, Seed: 16, Start: 2000, Field: 'P'}, "tpbuf"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cpu := newMachine(suspectKernel())
			inj := faultinject.New(tc.cfg)
			cpu.SetFaultHook(inj.Hook())
			cpu.SetSelfCheck(1)
			res := cpu.Run(300_000)
			if inj.Injected == 0 {
				t.Fatal("no fault was ever injected — vacuous run")
			}
			if res.Outcome != pipeline.OutcomeAuditFailed {
				t.Fatalf("outcome %v, want audit-failed (err %v)", res.Outcome, cpu.Err())
			}
			err := cpu.Err()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("violation %v does not name %q", err, tc.want)
			}
			if res.Hardening.SelfCheckViolations == 0 || res.Hardening.FaultsInjected == 0 {
				t.Fatalf("hardening stats not recorded: %+v", res.Hardening)
			}
			if res.Diag == "" {
				t.Fatal("audit failure must carry a diagnostic dump")
			}
		})
	}
}

// TestDroppedWakeupCaught: a dropped wakeup wedges one issue-queue entry.
// The ready-list audit sees it the moment its operand becomes ready; with
// self-checking off, the forward-progress watchdog is the backstop.
func TestDroppedWakeupCaught(t *testing.T) {
	t.Run("selfcheck", func(t *testing.T) {
		cpu := newMachine(wedgeProgram())
		inj := faultinject.New(faultinject.Config{Class: faultinject.DroppedWakeup, Seed: 21, Start: 20})
		cpu.SetFaultHook(inj.Hook())
		cpu.SetSelfCheck(1)
		res := cpu.Run(300_000)
		if inj.Injected == 0 {
			t.Fatal("no fault was ever injected")
		}
		if res.Outcome != pipeline.OutcomeAuditFailed {
			t.Fatalf("outcome %v, want audit-failed (err %v)", res.Outcome, cpu.Err())
		}
		if err := cpu.Err(); !strings.Contains(err.Error(), "ready") {
			t.Fatalf("violation %v does not name the ready list", err)
		}
	})
	t.Run("watchdog", func(t *testing.T) {
		cpu := newMachine(wedgeProgram())
		inj := faultinject.New(faultinject.Config{Class: faultinject.DroppedWakeup, Seed: 21, Start: 20})
		cpu.SetFaultHook(inj.Hook())
		res := cpu.Run(10_000_000)
		if inj.Injected == 0 {
			t.Fatal("no fault was ever injected")
		}
		if res.Outcome != pipeline.OutcomeDeadlock {
			t.Fatalf("outcome %v, want deadlock (err %v)", res.Outcome, cpu.Err())
		}
		if !errors.Is(cpu.Err(), pipeline.ErrNoProgress) {
			t.Fatalf("Err() = %v, want ErrNoProgress", cpu.Err())
		}
		if !strings.Contains(res.Diag, "rob head") {
			t.Fatalf("dump does not name the blocked uop:\n%s", res.Diag)
		}
	})
}

// TestPersistentFaultsLeak covers the two classes whose persistent form
// leaves every pipeline invariant intact — the mechanism is simply *off* —
// so only the attack harness's end-to-end leak check can convict them.
func TestPersistentFaultsLeak(t *testing.T) {
	sec := pipeline.SecurityConfig{Mechanism: core.CacheHitTPBuf}

	t.Run("suspect-clear", func(t *testing.T) {
		cfg := config.PaperCore()
		cfg.Mem.L2Size = 256 * 1024
		cfg.Mem.L3Size = 1024 * 1024
		h := attack.V1FlushReload(cfg)
		if base := h.Run(cfg, sec); base.Leaked {
			t.Fatal("baseline must be defended before the fault means anything")
		}
		inj := faultinject.New(faultinject.Config{Class: faultinject.SuspectClear, Seed: 31, Persistent: true})
		out := h.RunWith(cfg, sec, func(c *pipeline.CPU) {
			c.ArmFlightRecorder(0, 0)
			c.SetFaultHook(inj.Hook())
		})
		if inj.Injected == 0 {
			t.Fatal("no fault was ever injected")
		}
		if !out.Leaked {
			t.Fatalf("clearing every S bit must re-open the Flush+Reload leak (recovered %x of %x)",
				out.Recovered, out.Secret)
		}
		// A conviction with an armed recorder carries the flight dump.
		if out.Flight == nil || len(out.Flight.Events) == 0 {
			t.Fatal("leak conviction did not produce a flight dump")
		}
		if out.Flight.LastCycle > out.Cycles {
			t.Fatalf("flight dump last cycle %d beyond run end %d", out.Flight.LastCycle, out.Cycles)
		}
	})

	t.Run("lru-skew", func(t *testing.T) {
		cfg := config.PaperCore()
		cfg.Mem.L2Size = 256 * 1024
		cfg.Mem.L3Size = 1024 * 1024
		cfg.Mem.L1DUpdate = mem.UpdateDelayed
		h := attack.LRUSideChannel(cfg)
		if base := h.Run(cfg, sec); base.Leaked {
			t.Fatal("delayed-update baseline must be defended")
		}
		inj := faultinject.New(faultinject.Config{Class: faultinject.LRUSkew, Seed: 32, Persistent: true})
		out := h.RunWith(cfg, sec, func(c *pipeline.CPU) { c.SetFaultHook(inj.Hook()) })
		if inj.Injected == 0 {
			t.Fatal("no fault was ever injected")
		}
		if !out.Leaked {
			t.Fatalf("applying deferred LRU touches speculatively must re-open the replacement-state leak (recovered %x of %x)",
				out.Recovered, out.Secret)
		}
	})
}

// TestCorpusCoversAllClasses pins the acceptance criterion: every fault
// class the injector can produce has a detection test in this file. Adding
// a class without teaching the corpus about it fails here.
func TestCorpusCoversAllClasses(t *testing.T) {
	covered := map[faultinject.Class]string{
		faultinject.SecMatrixBit:  "TestAuditCaughtFaults/secmatrix-bit",
		faultinject.SuspectClear:  "TestAuditCaughtFaults/suspect-clear + TestPersistentFaultsLeak/suspect-clear",
		faultinject.TPBufBit:      "TestAuditCaughtFaults/tpbuf-*",
		faultinject.DroppedWakeup: "TestDroppedWakeupCaught",
		faultinject.LRUSkew:       "TestPersistentFaultsLeak/lru-skew",
	}
	for _, c := range faultinject.Classes {
		if covered[c] == "" {
			t.Errorf("fault class %v has no detection test in the corpus", c)
		}
	}
	if len(faultinject.Classes) < 5 {
		t.Fatalf("corpus must cover >= 5 fault classes, have %d", len(faultinject.Classes))
	}
	for _, name := range []string{"secmatrix-bit", "suspect-clear", "tpbuf-bit", "dropped-wakeup", "lru-skew"} {
		if _, err := faultinject.ByName(name); err != nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := faultinject.ByName("no-such"); err == nil {
		t.Error("ByName must reject unknown classes")
	}
}
