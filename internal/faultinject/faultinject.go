// Package faultinject perturbs one microarchitectural fact per run to
// mutation-test the defense: if the secmatrix, the TPBuf, the wakeup
// network, or the delayed-LRU policy silently rots, something — the in-run
// invariant auditor, the forward-progress watchdog, or the attack harness's
// leak check — must notice. A corpus test (see faultinject_test.go) asserts
// exactly that for every fault class.
//
// The injector is deterministic: the same seed, start cycle, and workload
// reproduce the same corruption, so a caught fault's diagnostic dump can be
// replayed (EXPERIMENTS.md has the recipe). It attaches behind the CPU's
// fault hook, which the cycle loop consults with a single nil check, so a
// machine without an injector keeps the zero-allocation hot path.
package faultinject

import (
	"fmt"
	"math/rand"

	"conspec/internal/pipeline"
)

// Class names one fault class — one kind of microarchitectural fact to
// corrupt.
type Class int

const (
	// SecMatrixBit flips one bit in a live memory instruction's security
	// dependence row. Caught by the secmatrix row audit.
	SecMatrixBit Class = iota
	// SuspectClear clears TPBuf suspect (S) bits. One-shot is caught by the
	// S-vs-uop audit; persistent disables S-Pattern detection entirely and
	// is caught by the attack harness (the secret leaks).
	SuspectClear
	// TPBufBit flips a TPBuf V/W/S/page bit (Config.Field selects which).
	// Caught by the TPBuf shadowing audit.
	TPBufBit
	// DroppedWakeup removes a pending wakeup registration, wedging one
	// issue-queue entry forever. Caught by the ready-list audit or, with
	// self-checking off, the forward-progress watchdog.
	DroppedWakeup
	// LRUSkew applies deferred (§VII.A delayed-update) LRU refreshes while
	// the owing loads are still speculative. No pipeline invariant ties
	// replacement state to the queues, so only the attack harness's leak
	// check can catch it.
	LRUSkew
)

// Classes lists every fault class, in declaration order.
var Classes = []Class{SecMatrixBit, SuspectClear, TPBufBit, DroppedWakeup, LRUSkew}

// String names the class.
func (c Class) String() string {
	switch c {
	case SecMatrixBit:
		return "secmatrix-bit"
	case SuspectClear:
		return "suspect-clear"
	case TPBufBit:
		return "tpbuf-bit"
	case DroppedWakeup:
		return "dropped-wakeup"
	case LRUSkew:
		return "lru-skew"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// ByName resolves a class name as printed by String (CLI flag form).
func ByName(name string) (Class, error) {
	for _, c := range Classes {
		if c.String() == name {
			return c, nil
		}
	}
	return 0, fmt.Errorf("faultinject: unknown class %q", name)
}

// Config describes one deterministic fault campaign.
type Config struct {
	Class Class
	// Seed drives victim selection; the same seed reproduces the same run.
	Seed int64
	// Start is the first cycle eligible for injection (0 = immediately).
	// Injection may land later: a primitive with no eligible victim on a
	// given cycle retries on the next.
	Start uint64
	// Persistent re-injects every cycle instead of stopping after the first
	// applied fault. SuspectClear and LRUSkew use it to model a *disabled*
	// mechanism rather than a one-off upset — the mode whose only witness is
	// the attack harness.
	Persistent bool
	// Field selects the TPBuf bit for TPBufBit: 'V', 'W', 'S' or 'P'
	// (page-tag). Ignored by other classes.
	Field byte
}

// Injector applies one fault campaign to a CPU via its fault hook.
type Injector struct {
	cfg Config
	rng *rand.Rand
	// Injected counts applied corruptions (0 means no eligible victim ever
	// appeared — the corpus test treats that as a failure too).
	Injected uint64
}

// New builds an injector for the campaign.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Hook returns the per-cycle function to install with CPU.SetFaultHook.
func (in *Injector) Hook() func(*pipeline.CPU) {
	return func(c *pipeline.CPU) {
		if c.Cycle() < in.cfg.Start {
			return
		}
		if !in.cfg.Persistent && in.Injected > 0 {
			return
		}
		n := in.rng.Intn(1 << 20)
		var applied bool
		switch in.cfg.Class {
		case SecMatrixBit:
			applied = c.InjectSecMatrixBitFlip(n)
		case SuspectClear:
			if in.cfg.Persistent {
				n = -1
			}
			applied = c.InjectSuspectClear(n)
		case TPBufBit:
			applied = c.InjectTPBufBit(n, in.cfg.Field)
		case DroppedWakeup:
			applied = c.InjectDropWakeup(n)
		case LRUSkew:
			if in.cfg.Persistent {
				n = -1
			}
			applied = c.InjectLRUTouch(n)
		}
		if applied {
			in.Injected++
		}
	}
}
