package obs

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders every metric of r in Prometheus text exposition
// format (version 0.0.4), prefixing each name with prefix and sanitizing
// the registry's dotted column names into the [a-zA-Z0-9_:] charset
// ("suspect_window.count" -> "suspect_window_count").
//
// The registry does not distinguish counters from gauges at read time —
// both reduce to sampled columns — so scalar columns are exported as
// untyped samples, which Prometheus treats like gauges. Histograms are
// exported in the native histogram text format: cumulative _bucket series
// with le labels, plus _sum and _count.
//
// The caller owns synchronization: the registry itself is not locked, so a
// server exposing live counters must hold whatever mutex guards its
// writers for the duration of the call.
func WritePrometheus(w io.Writer, prefix string, r *Registry) error {
	// Histogram summary columns (<name>.count/.sum/.max) are emitted by
	// the histogram exposition below; suppress the flat duplicates except
	// .max, which the bucket format does not carry.
	histCol := make(map[string]string, 3*len(r.hists))
	for _, name := range r.hname {
		histCol[name+".count"] = ""
		histCol[name+".sum"] = ""
		histCol[name+".max"] = "max"
	}
	for _, c := range r.cols {
		kind, isHist := histCol[c.name]
		if isHist && kind == "" {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", promName(prefix, c.name), c.read()); err != nil {
			return err
		}
	}
	for _, c := range r.unsampled {
		if _, err := fmt.Fprintf(w, "%s %d\n", promName(prefix, c.name), c.read()); err != nil {
			return err
		}
	}
	for i, h := range r.hists {
		name := promName(prefix, r.hname[i])
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
		cum := uint64(0)
		for j, bound := range h.bounds {
			cum += h.counts[j]
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", name, bound, cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)]
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
			name, cum, name, h.sum, name, h.count); err != nil {
			return err
		}
	}
	return nil
}

// promName sanitizes a registry column name into a Prometheus metric name.
func promName(prefix, name string) string {
	var sb strings.Builder
	sb.WriteString(prefix)
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c == ':':
			sb.WriteRune(c)
		case c >= '0' && c <= '9' && (i > 0 || prefix != ""):
			sb.WriteRune(c)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}
