// Package isa defines the 64-bit RISC instruction set interpreted by the
// conspec simulator, together with a reference in-order interpreter that
// serves as the golden architectural model for differential testing.
//
// The ISA is deliberately small: integer ALU operations, 1- and 8-byte loads
// and stores, conditional branches, direct and indirect jumps, and the three
// primitives Spectre proof-of-concept code needs — CLFLUSH (evict a line from
// the whole hierarchy), FENCE (serialize speculation) and RDCYCLE (read the
// cycle counter, the timing side-channel receiver).
//
// Instructions occupy eight bytes in simulated memory:
//
//	bits 63..56 opcode
//	bits 55..48 rd
//	bits 47..40 rs1
//	bits 39..32 rs2
//	bits 31..0  imm (signed 32-bit)
//
// The program counter advances by InstBytes (8) per instruction. Branch and
// JAL immediates are byte offsets relative to the instruction's own PC.
package isa

import "fmt"

// InstBytes is the size of one encoded instruction in memory.
const InstBytes = 8

// NumRegs is the number of architectural integer registers. Register 0 is
// hard-wired to zero: writes to it are discarded.
const NumRegs = 32

// Op enumerates the instruction opcodes.
type Op uint8

// Opcode space. The order groups instructions by functional class; use the
// classification helpers (IsLoad, IsStore, ...) rather than numeric ranges.
const (
	OpNop Op = iota
	OpHalt

	// Register-register ALU.
	OpAdd
	OpSub
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr // logical right shift
	OpSra // arithmetic right shift
	OpSlt // set if signed less-than
	OpSltu

	// Register-immediate ALU.
	OpAddi
	OpAndi
	OpOri
	OpXori
	OpShli
	OpShri
	OpSrai
	OpLi // rd = sign-extended imm

	// Long-latency integer.
	OpMul
	OpDiv // signed divide; division by zero yields all-ones, like RISC-V
	OpRem

	// Memory. Effective address is rs1+imm.
	OpLd  // rd = mem64[rs1+imm]
	OpLd1 // rd = zero-extended mem8[rs1+imm]
	OpSt  // mem64[rs1+imm] = rs2
	OpSt1 // mem8[rs1+imm] = low byte of rs2

	// Control flow. Conditional branches compare rs1 against rs2.
	OpBeq
	OpBne
	OpBlt
	OpBge
	OpBltu
	OpBgeu
	OpJal  // rd = PC+8; PC += imm
	OpJalr // rd = PC+8; PC = rs1+imm (indirect)

	// System.
	OpClflush // flush the line containing rs1+imm from all cache levels
	OpFence   // speculation barrier: younger instructions wait for commit
	OpRdcycle // rd = current cycle count

	opCount // sentinel; keep last
)

var opNames = [...]string{
	OpNop: "nop", OpHalt: "halt",
	OpAdd: "add", OpSub: "sub", OpAnd: "and", OpOr: "or", OpXor: "xor",
	OpShl: "shl", OpShr: "shr", OpSra: "sra", OpSlt: "slt", OpSltu: "sltu",
	OpAddi: "addi", OpAndi: "andi", OpOri: "ori", OpXori: "xori",
	OpShli: "shli", OpShri: "shri", OpSrai: "srai", OpLi: "li",
	OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpLd: "ld", OpLd1: "ld1", OpSt: "st", OpSt1: "st1",
	OpBeq: "beq", OpBne: "bne", OpBlt: "blt", OpBge: "bge",
	OpBltu: "bltu", OpBgeu: "bgeu",
	OpJal: "jal", OpJalr: "jalr",
	OpClflush: "clflush", OpFence: "fence", OpRdcycle: "rdcycle",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < opCount }

// IsLoad reports whether o reads data memory.
func (o Op) IsLoad() bool { return o == OpLd || o == OpLd1 }

// IsStore reports whether o writes data memory.
func (o Op) IsStore() bool { return o == OpSt || o == OpSt1 }

// IsMem reports whether o is a data-memory access (load or store).
// CLFLUSH is also treated as a memory-class instruction: it occupies the
// memory pipeline and participates in security dependences as instruction i.
func (o Op) IsMem() bool { return o.IsLoad() || o.IsStore() || o == OpClflush }

// IsCondBranch reports whether o is a conditional branch.
func (o Op) IsCondBranch() bool { return o >= OpBeq && o <= OpBgeu }

// IsIndirect reports whether o is an indirect control transfer.
func (o Op) IsIndirect() bool { return o == OpJalr }

// IsBranch reports whether o speculatively redirects control flow: all
// conditional branches and indirect jumps. Direct JAL is decode-resolved and
// never mis-speculates, so it is excluded — it cannot be instruction i of a
// security dependence.
func (o Op) IsBranch() bool { return o.IsCondBranch() || o.IsIndirect() }

// IsControl reports whether o changes the PC non-sequentially at all.
func (o Op) IsControl() bool { return o.IsCondBranch() || o == OpJal || o == OpJalr }

// MemBytes returns the access width in bytes for memory instructions, or 0.
func (o Op) MemBytes() int {
	switch o {
	case OpLd, OpSt:
		return 8
	case OpLd1, OpSt1:
		return 1
	}
	return 0
}

// FU identifies the functional-unit class an instruction executes on.
type FU uint8

// Functional-unit classes.
const (
	FUAlu FU = iota
	FUMul
	FUDiv
	FUMem
	FUBranch
	FUNone // nop, halt, fence
	FUCount
)

// Unit returns the functional-unit class for the opcode.
func (o Op) Unit() FU {
	switch {
	case o == OpMul:
		return FUMul
	case o == OpDiv || o == OpRem:
		return FUDiv
	case o.IsMem():
		return FUMem
	case o.IsControl():
		return FUBranch
	case o == OpNop || o == OpHalt || o == OpFence:
		return FUNone
	default:
		return FUAlu
	}
}

// Inst is one decoded instruction.
type Inst struct {
	Op       Op
	Rd       uint8
	Rs1, Rs2 uint8
	Imm      int32
}

// Encode packs the instruction into its 64-bit memory representation.
func Encode(in Inst) uint64 {
	return uint64(in.Op)<<56 |
		uint64(in.Rd)<<48 |
		uint64(in.Rs1)<<40 |
		uint64(in.Rs2)<<32 |
		uint64(uint32(in.Imm))
}

// Decode unpacks a 64-bit memory word into an instruction.
func Decode(w uint64) Inst {
	return Inst{
		Op:  Op(w >> 56),
		Rd:  uint8(w >> 48),
		Rs1: uint8(w >> 40),
		Rs2: uint8(w >> 32),
		Imm: int32(uint32(w)),
	}
}

// Valid reports whether the instruction is well-formed: a defined opcode
// and register fields within range (the encoding reserves the upper bits of
// each register byte; set bits there make the word an illegal instruction,
// which is what keeps wrong-path fetch of arbitrary data safe).
func (in Inst) Valid() bool {
	return in.Op.Valid() && in.Rd < NumRegs && in.Rs1 < NumRegs && in.Rs2 < NumRegs
}

// HasDest reports whether the instruction writes an architectural register.
// Writes to register 0 are architecturally discarded, so rd==0 means no dest.
func (in Inst) HasDest() bool {
	if in.Rd == 0 {
		return false
	}
	switch in.Op {
	case OpNop, OpHalt, OpSt, OpSt1, OpBeq, OpBne, OpBlt, OpBge, OpBltu, OpBgeu,
		OpClflush, OpFence:
		return false
	}
	return true
}

// Sources returns which source registers the instruction actually reads.
func (in Inst) Sources() (useRs1, useRs2 bool) {
	switch in.Op {
	case OpNop, OpHalt, OpLi, OpJal, OpRdcycle, OpFence:
		return false, false
	case OpAddi, OpAndi, OpOri, OpXori, OpShli, OpShri, OpSrai,
		OpLd, OpLd1, OpJalr, OpClflush:
		return true, false
	case OpSt, OpSt1:
		return true, true // rs1 = base, rs2 = data
	default:
		return true, true
	}
}

// String renders the instruction in assembler syntax.
func (in Inst) String() string {
	r := func(i uint8) string { return fmt.Sprintf("x%d", i) }
	switch {
	case in.Op == OpNop || in.Op == OpHalt || in.Op == OpFence:
		return in.Op.String()
	case in.Op == OpLi:
		return fmt.Sprintf("%s %s, %d", in.Op, r(in.Rd), in.Imm)
	case in.Op == OpRdcycle:
		return fmt.Sprintf("%s %s", in.Op, r(in.Rd))
	case in.Op.IsLoad():
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, r(in.Rd), in.Imm, r(in.Rs1))
	case in.Op.IsStore():
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, r(in.Rs2), in.Imm, r(in.Rs1))
	case in.Op == OpClflush:
		return fmt.Sprintf("%s %d(%s)", in.Op, in.Imm, r(in.Rs1))
	case in.Op.IsCondBranch():
		return fmt.Sprintf("%s %s, %s, %d", in.Op, r(in.Rs1), r(in.Rs2), in.Imm)
	case in.Op == OpJal:
		return fmt.Sprintf("%s %s, %d", in.Op, r(in.Rd), in.Imm)
	case in.Op == OpJalr:
		return fmt.Sprintf("%s %s, %d(%s)", in.Op, r(in.Rd), in.Imm, r(in.Rs1))
	case in.Op >= OpAddi && in.Op <= OpSrai:
		return fmt.Sprintf("%s %s, %s, %d", in.Op, r(in.Rd), r(in.Rs1), in.Imm)
	default:
		return fmt.Sprintf("%s %s, %s, %s", in.Op, r(in.Rd), r(in.Rs1), r(in.Rs2))
	}
}

// EvalALU computes the result of a non-memory, non-control instruction given
// its source operand values. It is shared by the reference interpreter and
// the out-of-order core's execute stage so the two cannot diverge.
func EvalALU(in Inst, a, b uint64, cycle uint64) uint64 {
	imm := uint64(int64(in.Imm))
	switch in.Op {
	case OpAdd:
		return a + b
	case OpSub:
		return a - b
	case OpAnd:
		return a & b
	case OpOr:
		return a | b
	case OpXor:
		return a ^ b
	case OpShl:
		return a << (b & 63)
	case OpShr:
		return a >> (b & 63)
	case OpSra:
		return uint64(int64(a) >> (b & 63))
	case OpSlt:
		if int64(a) < int64(b) {
			return 1
		}
		return 0
	case OpSltu:
		if a < b {
			return 1
		}
		return 0
	case OpAddi:
		return a + imm
	case OpAndi:
		return a & imm
	case OpOri:
		return a | imm
	case OpXori:
		return a ^ imm
	case OpShli:
		return a << (uint64(in.Imm) & 63)
	case OpShri:
		return a >> (uint64(in.Imm) & 63)
	case OpSrai:
		return uint64(int64(a) >> (uint64(in.Imm) & 63))
	case OpLi:
		return imm
	case OpMul:
		return a * b
	case OpDiv:
		if b == 0 {
			return ^uint64(0)
		}
		if int64(a) == -1<<63 && int64(b) == -1 {
			return a // overflow: result is the dividend, like RISC-V
		}
		return uint64(int64(a) / int64(b))
	case OpRem:
		if b == 0 {
			return a
		}
		if int64(a) == -1<<63 && int64(b) == -1 {
			return 0
		}
		return uint64(int64(a) % int64(b))
	case OpRdcycle:
		return cycle
	}
	return 0
}

// BranchTaken evaluates a conditional branch's predicate on operand values.
func BranchTaken(op Op, a, b uint64) bool {
	switch op {
	case OpBeq:
		return a == b
	case OpBne:
		return a != b
	case OpBlt:
		return int64(a) < int64(b)
	case OpBge:
		return int64(a) >= int64(b)
	case OpBltu:
		return a < b
	case OpBgeu:
		return a >= b
	}
	return false
}
