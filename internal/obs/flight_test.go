package obs

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestFlightRecorderRingAndTrim(t *testing.T) {
	f := NewFlightRecorder(100, 4)
	if got := f.Window(); got != 100 {
		t.Fatalf("Window() = %d, want 100", got)
	}
	// Six events into a 4-slot ring: the first two are overwritten.
	for i := uint64(1); i <= 6; i++ {
		f.Record(i*10, FlightFetch, i, 0x1000+i, 0, false)
	}
	d := f.Dump(60)
	if d == nil {
		t.Fatal("Dump returned nil on a populated recorder")
	}
	if d.Dropped != 2 {
		t.Fatalf("Dropped = %d, want 2", d.Dropped)
	}
	if len(d.Events) != 4 {
		t.Fatalf("len(Events) = %d, want 4", len(d.Events))
	}
	if d.Events[0].Cycle != 30 || d.Events[3].Cycle != 60 {
		t.Fatalf("event cycles = %d..%d, want 30..60", d.Events[0].Cycle, d.Events[3].Cycle)
	}
	if d.FirstCycle != 30 || d.LastCycle != 60 {
		t.Fatalf("First/LastCycle = %d/%d, want 30/60", d.FirstCycle, d.LastCycle)
	}
	// A dump far in the future trims everything outside the window.
	if d := f.Dump(1000); d == nil || len(d.Events) != 0 {
		t.Fatalf("out-of-window dump = %+v, want zero events", d)
	}
	// Dumping twice must not consume the ring.
	if d := f.Dump(60); len(d.Events) != 4 {
		t.Fatalf("second dump len = %d, want 4", len(d.Events))
	}
	f.Reset()
	if d := f.Dump(60); d != nil {
		t.Fatalf("dump after Reset = %+v, want nil", d)
	}
}

func TestFlightRecorderNilSafe(t *testing.T) {
	var f *FlightRecorder
	f.Record(1, FlightCommit, 1, 0, 0, false) // must not panic
	f.Reset()
	if f.Window() != 0 {
		t.Fatal("nil Window() != 0")
	}
	if d := f.Dump(10); d != nil {
		t.Fatalf("nil Dump = %+v, want nil", d)
	}
}

func TestFlightRecorderDefaults(t *testing.T) {
	f := NewFlightRecorder(0, 0)
	if f.Window() != DefaultFlightWindow {
		t.Fatalf("default window = %d, want %d", f.Window(), DefaultFlightWindow)
	}
	f.Record(1, FlightFetch, 1, 0, 0, false)
	if d := f.Dump(1); d.Capacity != DefaultFlightCapacity {
		t.Fatalf("default capacity = %d, want %d", d.Capacity, DefaultFlightCapacity)
	}
}

// TestFlightDumpGoldenRoundTrip pins the dump's JSON wire shape: a dump
// marshals, unmarshals, and compares deep-equal, and the encoded form uses
// the stable string labels for event kinds.
func TestFlightDumpGoldenRoundTrip(t *testing.T) {
	f := NewFlightRecorder(64, 32)
	f.Record(10, FlightFetch, 7, 0x400, 0, false)
	f.Record(11, FlightDispatch, 7, 0x400, 0, false)
	f.Record(11, FlightSecRowSet, 7, 0x400, 3, false)
	f.Record(12, FlightSuspectOpen, 7, 0x400, 0, true)
	f.Record(20, FlightSuspectClose, 7, 0x400, 8, false)
	f.Record(20, FlightIssue, 7, 0x400, 0, true)
	f.Record(21, FlightSecRowClear, 7, 0x400, 3, false)
	f.Record(25, FlightTPBufAlloc, 7, 0x400, 2, false)
	f.Record(26, FlightTPBufHit, 7, 0x400, 2, true)
	f.Record(30, FlightWriteback, 7, 0x400, 0, false)
	f.Record(31, FlightCommit, 7, 0x400, 0, false)
	f.Record(40, FlightSkipSpan, 0, 0, 17, false)
	f.Record(60, FlightSquash, 9, 0, 0x440, false)
	d := f.Dump(60)

	b, err := json.Marshal(d)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, label := range []string{`"kind":"suspect-open"`, `"kind":"skip-span"`, `"kind":"tpbuf-hit"`, `"kind":"secrow-set"`} {
		if !strings.Contains(string(b), label) {
			t.Errorf("encoded dump missing %s:\n%s", label, b)
		}
	}
	var back FlightDump
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(*d, back) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", back, *d)
	}

	// The O3PipeView tail reconstructs the instruction's full stage record.
	for _, line := range []string{
		"O3PipeView:fetch:10:0x0000000000000400:0:7:pc=0x400 [suspect]",
		"O3PipeView:issue:20",
		"O3PipeView:retire:31:store:0",
	} {
		if !strings.Contains(d.PipeView, line) {
			t.Errorf("pipeview missing %q:\n%s", line, d.PipeView)
		}
	}
}

func TestFlightKindUnmarshalUnknown(t *testing.T) {
	var k FlightKind
	if err := json.Unmarshal([]byte(`"warp-drive"`), &k); err == nil {
		t.Fatal("expected error for unknown kind label")
	}
}

func TestFlightRecordZeroAlloc(t *testing.T) {
	f := NewFlightRecorder(128, 64)
	n := testing.AllocsPerRun(1000, func() {
		f.Record(1, FlightIssue, 2, 3, 4, true)
	})
	if n != 0 {
		t.Fatalf("Record allocates %v per call, want 0", n)
	}
}
